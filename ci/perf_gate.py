#!/usr/bin/env python3
"""CI perf-regression gate.

Compares freshly regenerated ``BENCH_*.json`` artifacts at the repo root
against the committed baselines in ``ci/baselines/``. Points are matched by
``(label, nodes)``; the gate fails when a fresh ``zones_per_us`` falls more
than ``--tolerance`` (default 15%) below its baseline.

Scaling-curve artifacts (``{"points": [...]}``) are fully gated: those
numbers come from the deterministic machine performance model, so a drop is
a real modeling/code regression, not scheduler noise. Wall-clock metric
artifacts (``{"metrics": [...]}``) are mostly reported without gating — the
exception is ``batch_speedup`` labels, which are same-run throughput ratios
(batched vs scalar burns on the same machine in the same process), so the
machine speed cancels and a drop below tolerance means the SoA batcher
itself regressed. ``overlap_efficiency`` labels are likewise gated: they
come from the deterministic machine model's overlapped-stepping term, so a
drop means the overlap pricing (or the comm measurement feeding it)
regressed, not the host.

A baseline metric may also carry a ``"max"`` field: an *absolute upper
bound* on the fresh value, independent of the baseline value and of any
tolerance. This is how same-run overhead percentages are gated — e.g.
``graph_trace_on/overhead`` in ``BENCH_telemetry.json`` must stay below
2.0 (%): the ratio cancels machine speed, so exceeding the bound means
the instrumentation itself got more expensive.

Usage:
    python3 ci/perf_gate.py [--tolerance 0.15] [--baseline-dir ci/baselines]
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop in zones/us (default 0.15)")
    ap.add_argument("--metric-tolerance", type=float, default=0.25,
                    help="allowed fractional drop for gated wall-clock "
                         "metric labels like batch_speedup (default 0.25: "
                         "the ratio cancels machine speed but not load "
                         "transients within a run)")
    ap.add_argument("--baseline-dir", default=None,
                    help="directory of committed baselines (default ci/baselines)")
    ap.add_argument("--fresh-dir", default=None,
                    help="directory of fresh BENCH_*.json (default repo root)")
    args = ap.parse_args()

    root = pathlib.Path(__file__).resolve().parent.parent
    baseline_dir = pathlib.Path(args.baseline_dir or root / "ci" / "baselines")
    fresh_dir = pathlib.Path(args.fresh_dir or root)

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"perf gate: no baselines in {baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for bpath in baselines:
        base = load(bpath)
        fpath = fresh_dir / bpath.name
        if not fpath.exists():
            failures.append(f"{bpath.name}: fresh artifact missing at {fpath}")
            continue
        fresh = load(fpath)
        if "points" not in base:
            # Gated metric labels: batch_speedup (same-run ratio, machine
            # speed cancels → --metric-tolerance) and jobs_per_hour /
            # goodput (scheduler throughput — plain and under injected
            # node failures — against baselines committed far below any
            # healthy run → the tighter --tolerance).
            gated = [m for m in base.get("metrics", [])
                     if "max" in m
                     or "batch_speedup" in m["label"]
                     or "jobs_per_hour" in m["label"]
                     or "goodput" in m["label"]
                     or "overlap_efficiency" in m["label"]]
            if not gated:
                print(f"{bpath.name}: metrics-style artifact, not gated")
                continue
            fresh_metrics = {m["label"]: m for m in fresh.get("metrics", [])}
            for m in gated:
                fm = fresh_metrics.get(m["label"])
                if fm is None:
                    failures.append(
                        f"{bpath.name}: label {m['label']} missing from fresh run")
                    continue
                compared += 1
                if "max" in m:
                    # Absolute upper bound: no tolerance, no baseline
                    # scaling — the number itself is the contract.
                    status = "OK"
                    if fm["value"] > m["max"]:
                        status = "REGRESSION"
                        failures.append(
                            f"{bpath.name}: {m['label']}: "
                            f"{fm['value']:.2f} > max {m['max']:.2f}"
                        )
                    print(f"{bpath.name}: {m['label']:>26} "
                          f"max      {m['max']:>8.2f}  "
                          f"fresh {fm['value']:>8.2f}  {status}")
                    continue
                deterministic = ("jobs_per_hour" in m["label"]
                                 or "goodput" in m["label"]
                                 or "overlap_efficiency" in m["label"])
                tol = args.tolerance if deterministic else args.metric_tolerance
                floor = m["value"] * (1.0 - tol)
                status = "OK"
                if fm["value"] < floor:
                    status = "REGRESSION"
                    failures.append(
                        f"{bpath.name}: {m['label']}: "
                        f"{fm['value']:.2f} < floor {floor:.2f} "
                        f"(baseline {m['value']:.2f}, "
                        f"tolerance {tol:.0%})"
                    )
                print(f"{bpath.name}: {m['label']:>26} "
                      f"baseline {m['value']:>8.2f}  "
                      f"fresh {fm['value']:>8.2f}  {status}")
            continue
        fresh_pts = {(p["label"], p["nodes"]): p for p in fresh.get("points", [])}
        for p in base["points"]:
            key = (p["label"], p["nodes"])
            fp = fresh_pts.get(key)
            if fp is None:
                failures.append(f"{bpath.name}: point {key} missing from fresh run")
                continue
            b_tp, f_tp = p["zones_per_us"], fp["zones_per_us"]
            if b_tp is None or f_tp is None:
                continue
            compared += 1
            floor = b_tp * (1.0 - args.tolerance)
            status = "OK"
            if f_tp < floor:
                status = "REGRESSION"
                failures.append(
                    f"{bpath.name}: {key[0]}@{key[1]} nodes: "
                    f"{f_tp:.2f} zones/us < floor {floor:.2f} "
                    f"(baseline {b_tp:.2f}, tolerance {args.tolerance:.0%})"
                )
            print(f"{bpath.name}: {key[0]:>10}@{key[1]:<4} "
                  f"baseline {b_tp:>10.2f}  fresh {f_tp:>10.2f}  {status}")

    if failures:
        print(f"\nperf gate: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if compared == 0:
        print("perf gate: no comparable points found", file=sys.stderr)
        return 1
    print(f"\nperf gate: OK ({compared} points within {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
