#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
#
# The workspace has no registry dependencies (proptest/criterion are
# vendored shims under crates/), so --offline keeps CI honest about that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace -q --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== rustfmt check =="
cargo fmt --all --check

echo "tier-1: OK"
