#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
#
# The workspace has no registry dependencies (proptest/criterion are
# vendored shims under crates/), so --offline keeps CI honest about that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace -q --offline

echo "== restart round-trip smoke =="
# The survival demo kills itself mid-run three times, corrupts a
# checkpoint, and must still reproduce the uninterrupted digest.
cargo run --release --offline --example restart | tee /tmp/restart_smoke.log
grep -q "RESTART OK" /tmp/restart_smoke.log

echo "== fault-injection smoke =="
# ~1% of burn zones are forced to fail and must be rescued by the retry
# ladder (retries visible in the profiler report); a second phase with
# unrecoverable faults must degrade to an emergency checkpoint plus a
# structured error, never a panic.
cargo run --release --offline --example fault_injection | tee /tmp/fault_smoke.log
grep -q "FAULT RECOVERY OK" /tmp/fault_smoke.log
grep -q "EMERGENCY CHECKPOINT OK" /tmp/fault_smoke.log

echo "== burner bench smoke (test mode) =="
# Dense-vs-sparse Newton comparison in smoke mode: tiny sample counts, no
# timing assertions — but the BENCH_burner.json artifact must be valid JSON
# with the expected schema.
cargo bench --offline -p exastro-bench --bench burner -- --test >/tmp/burner_smoke.log
python3 - <<'EOF'
import json
d = json.load(open("BENCH_burner.json"))
assert d["bench"] == "burner", d
labels = {m["label"] for m in d["metrics"]}
for need in ("iso7/newton_solve_speedup", "aprox13/newton_solve_speedup"):
    assert need in labels, f"missing {need} in {sorted(labels)}"
print(f"BENCH_burner.json OK ({len(d['metrics'])} metrics)")
EOF

echo "== clippy (deny warnings, deny deprecated) =="
# -D deprecated keeps the repo itself off the integrate_with_stats shim
# (and any future deprecation) while external callers get a soft warning.
cargo clippy --workspace --all-targets --offline -- -D warnings -D deprecated

echo "== rustfmt check =="
cargo fmt --all --check

echo "tier-1: OK"
