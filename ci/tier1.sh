#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
#
# The workspace has no registry dependencies (proptest/criterion are
# vendored shims under crates/), so --offline keeps CI honest about that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace -q --offline

echo "== restart round-trip smoke =="
# The survival demo kills itself mid-run three times, corrupts a
# checkpoint, and must still reproduce the uninterrupted digest.
cargo run --release --offline --example restart | tee /tmp/restart_smoke.log
grep -q "RESTART OK" /tmp/restart_smoke.log

echo "== fault-injection smoke =="
# ~1% of burn zones are forced to fail and must be rescued by the retry
# ladder (retries visible in the profiler report); a second phase with
# unrecoverable faults must degrade to an emergency checkpoint plus a
# structured error, never a panic.
cargo run --release --offline --example fault_injection | tee /tmp/fault_smoke.log
grep -q "FAULT RECOVERY OK" /tmp/fault_smoke.log
grep -q "EMERGENCY CHECKPOINT OK" /tmp/fault_smoke.log

echo "== burner bench smoke (test mode) =="
# Dense-vs-sparse Newton comparison plus batched SoA throughput in smoke
# mode: tiny sample counts, no timing assertions here — but the
# BENCH_burner.json artifact must be valid JSON with the expected schema,
# and the batched path must actually beat the scalar ladder (speedup > 1;
# the quantitative floor lives in the perf gate below).
cargo bench --offline -p exastro-bench --bench burner -- --test >/tmp/burner_smoke.log
python3 - <<'EOF'
import json
d = json.load(open("BENCH_burner.json"))
assert d["bench"] == "burner", d
labels = {m["label"] for m in d["metrics"]}
for need in ("iso7/newton_solve_speedup", "aprox13/newton_solve_speedup",
             "iso7/zones_per_us_scalar", "aprox13/zones_per_us_scalar",
             "iso7/zones_per_us_batch8", "aprox13/zones_per_us_batch8",
             "iso7/batch_speedup_w8", "aprox13/batch_speedup_w8"):
    assert need in labels, f"missing {need} in {sorted(labels)}"
by = {m["label"]: m["value"] for m in d["metrics"]}
for net in ("iso7", "aprox13"):
    s = by[f"{net}/batch_speedup_w8"]
    assert s > 1.0, f"{net}: batched burns slower than scalar ({s:.2f}x)"
print(f"BENCH_burner.json OK ({len(d['metrics'])} metrics)")
EOF

echo "== telemetry smoke (quickstart --trace --metrics --graph-trace) =="
# A short quickstart run with every telemetry sink on: the Chrome trace
# must be valid JSON with balanced, name-matched B/E pairs, id-paired s/f
# flow arrows, and monotonic per-thread timestamps; the step-metrics
# stream must carry the full schema with 1-based ordinals; and the
# critical-path summary must reconcile measured overlap vs the machine
# model per graph.
QUICKSTART_STEPS=12 cargo run --release --offline --example quickstart -- \
  --trace /tmp/quickstart_trace.json --metrics /tmp/quickstart_steps.jsonl \
  --graph-trace /tmp/quickstart_graphs.json \
  >/tmp/quickstart_smoke.log
python3 - <<'EOF'
import json
d = json.load(open("/tmp/quickstart_trace.json"))
evs = d["traceEvents"]
assert evs, "empty trace"
stacks, last_ts, flows = {}, {}, {}
for e in evs:
    assert e["ph"] in ("B", "E", "s", "f"), e
    assert e["pid"] == 1
    tid = e["tid"]
    assert e["ts"] >= last_ts.get(tid, 0.0), f"non-monotonic ts on tid {tid}"
    last_ts[tid] = e["ts"]
    if e["ph"] == "B":
        stacks.setdefault(tid, []).append(e["name"])
    elif e["ph"] == "E":
        assert stacks.get(tid), f"stray E on tid {tid}"
        top = stacks[tid].pop()
        assert top == e["name"], f"mismatched E {e['name']} vs open {top}"
    else:
        # Flow arrows bind an edge across tasks: one s and one f per id,
        # each inside an open slice, f with bp=e so Perfetto attaches it
        # to the enclosing slice end.
        assert stacks.get(tid), f"flow {e['ph']} outside any open slice"
        if e["ph"] == "f":
            assert e.get("bp") == "e", f"f without bp=e: {e}"
        flows.setdefault(e["id"], []).append((e["ph"], e["ts"]))
for tid, s in stacks.items():
    assert not s, f"unbalanced B on tid {tid}: {s}"
assert flows, "graph tracing produced no flow arrows"
for fid, parts in flows.items():
    phs = sorted(p for p, _ in parts)
    assert phs == ["f", "s"], f"flow {fid} not an s/f pair: {phs}"
    ts = {p: t for p, t in parts}
    assert ts["s"] <= ts["f"], f"flow {fid} travels backward in time"
print(f"trace OK ({len(evs)} events, {len(last_ts)} thread(s), "
      f"{len(flows)} flow(s), dropped {d.get('droppedEventCount', 0)})")
g = json.load(open("/tmp/quickstart_graphs.json"))
assert g["schema"] == "exastro.graphtrace.v1", g.get("schema")
assert g["graphs"], "no graph summaries recorded"
for s in g["graphs"]:
    need = {"label", "tasks", "edges", "workers", "wall_us", "total_run_us",
            "total_queue_wait_us", "critical_path_us", "critical_path",
            "comm_us", "compute_us", "hidden_comm_us",
            "measured_overlap_efficiency", "predicted_overlap_efficiency",
            "overlap_drift"}
    assert need <= set(s), f"graph summary missing {need - set(s)}"
    assert s["tasks"] > 0 and s["critical_path_us"] > 0
    assert s["critical_path"], "critical path must be non-empty"
    assert s["critical_path_us"] <= s["total_run_us"] + 1e-9, (
        "critical path cannot exceed total work")
    if s["measured_overlap_efficiency"] is not None:
        m, p = s["measured_overlap_efficiency"], s["predicted_overlap_efficiency"]
        assert 0.0 <= m <= 1.0, m
        assert p is not None and s["overlap_drift"] is not None, (
            "summaries must be reconciled against the overlap model")
        assert abs((m - p) - s["overlap_drift"]) < 1e-12
    # per-task slack: on-critical-path tasks have zero slack
    for t in s["task_stats"]:
        assert t["slack_us"] >= 0.0
        if t["on_critical_path"]:
            assert t["slack_us"] < 1e-9, f"critical task with slack: {t}"
print(f"graphs.json OK ({len(g['graphs'])} graph(s), "
      f"{sum(s['tasks'] for s in g['graphs'])} task(s))")
need = {"driver", "step", "t", "dt", "wall_ns", "zones", "zones_per_us",
        "newton_iters", "bdf_steps", "burn_retries", "recovered_relaxed",
        "recovered_subcycle", "recovered_offload", "step_rejections",
        "checkpoint_bytes", "arena_live_bytes", "arena_peak_bytes"}
recs = [json.loads(l) for l in open("/tmp/quickstart_steps.jsonl")]
assert len(recs) == 12, f"expected 12 steps, got {len(recs)}"
for i, r in enumerate(recs):
    assert need <= set(r), f"missing keys: {need - set(r)}"
    assert r["step"] == i + 1
    assert r["driver"] == "castro"
print(f"steps.jsonl OK ({len(recs)} records)")
EOF

echo "== service smoke (multi-tenant job runtime) =="
# Mixed tenant population over the two-node pool: a rigged-to-fail burn
# must be contained to its own job, the high-priority arrival must
# checkpoint-preempt somebody, the report JSON must carry the full
# schema, and every job's steps.jsonl must have exactly steps_done
# records with contiguous 1-based ordinals — including the tenants that
# were preempted, migrated, and resumed mid-run.
rm -rf /tmp/service_jobs
cargo run --release --offline --example service -- \
  --report /tmp/service_report.json --jsonl-dir /tmp/service_jobs \
  | tee /tmp/service_smoke.log
grep -q "SERVICE OK" /tmp/service_smoke.log
python3 - <<'EOF'
import json, pathlib
r = json.load(open("/tmp/service_report.json"))
need = {"wall_s", "submitted", "rejected", "completed", "failed",
        "preemptions", "queue_peak", "queue_bound", "total_ranks",
        "rank_utilization", "jobs_per_hour", "latency_p50_s",
        "latency_p99_s", "jobs"}
assert need <= set(r), f"report missing keys: {need - set(r)}"
assert r["completed"] == 5 and r["failed"] == 1, (r["completed"], r["failed"])
assert r["preemptions"] >= 1, "high-priority arrival must have preempted"
jneed = {"id", "scenario", "network", "priority", "resolution", "nodes",
         "ranks", "steps_done", "steps_requested", "outcome", "preemptions",
         "latency_s", "deadline_met", "ckpt_every", "final_digest",
         "sim_us", "zones", "step_records"}
failed = [j for j in r["jobs"] if j["outcome"] == "failed"]
assert len(failed) == 1 and "error" in failed[0], failed
drivers = {"sedov_blast": "castro", "wd_collision": "castro",
           "xrb_flame": "castro", "reacting_bubble": "maestro"}
for j in r["jobs"]:
    assert jneed <= set(j), f"{j['id']}: missing {jneed - set(j)}"
    if j["outcome"] == "completed":
        assert j["steps_done"] == j["steps_requested"], j
    path = pathlib.Path("/tmp/service_jobs") / f"{j['id']}.steps.jsonl"
    assert path.exists(), f"missing per-job stream {path}"
    recs = [json.loads(l) for l in open(path)]
    assert len(recs) == j["steps_done"], (
        f"{j['id']}: {len(recs)} records vs {j['steps_done']} steps")
    for i, rec in enumerate(recs):
        assert rec["step"] == i + 1, f"{j['id']}: ordinal gap at {i}"
        assert rec["driver"] == drivers[j["scenario"]], rec
high = [j for j in r["jobs"] if j["priority"] == "high"]
assert high and high[0]["deadline_met"] is True, high
print(f"service report OK ({len(r['jobs'])} jobs, "
      f"{r['preemptions']} preemption(s), 1 contained failure)")
EOF

echo "== chaos smoke (self-healing under node failures) =="
# The chaos drill arms the seeded NodeFaultModel (node kills with repair
# plus a straggler wave) over a mixed tenant population: the run must
# show real failures and recoveries, and every completed job's digest is
# checked in-process against a fault-free solo run — zero corruption.
cargo run --release --offline --example chaos -- \
  --report /tmp/chaos_report.json --events /tmp/chaos_events.jsonl \
  | tee /tmp/chaos_smoke.log
grep -q "CHAOS OK" /tmp/chaos_smoke.log
python3 - <<'EOF'
import json
r = json.load(open("/tmp/chaos_report.json"))
need = {"wall_s", "submitted", "completed", "failed", "quarantined",
        "node_failures", "lease_revocations", "recoveries",
        "straggler_migrations", "total_ranks", "ranks_in_service", "jobs"}
assert need <= set(r), f"chaos report missing keys: {need - set(r)}"
assert r["node_failures"] >= 3, r["node_failures"]
assert r["lease_revocations"] >= 1 and r["recoveries"] >= 1, (
    r["lease_revocations"], r["recoveries"])
assert r["straggler_migrations"] >= 1, r["straggler_migrations"]
assert r["failed"] == 0, "chaos must never surface as a driver failure"
jneed = {"id", "outcome", "recoveries", "migrations", "final_digest",
         "steps_done", "steps_requested"}
for j in r["jobs"]:
    assert jneed <= set(j), f"{j['id']}: missing {jneed - set(j)}"
    assert j["outcome"] in ("completed", "quarantined"), j
    if j["outcome"] == "completed":
        assert j["steps_done"] == j["steps_requested"], j
    else:
        assert j.get("reason"), f"{j['id']}: quarantine needs a reason"
recovered = [j for j in r["jobs"] if j["recoveries"] > 0]
assert recovered, "at least one job must have recovered from a node kill"
print(f"chaos report OK ({len(r['jobs'])} jobs, {r['node_failures']} kill(s), "
      f"{r['recoveries']} recovery(ies), {r['straggler_migrations']} migration(s))")

# The structured event log: schema-valid line by line, and its derived
# counts must agree with the report (the exact-reproduction guarantee
# lives in crates/service/tests/events.rs; this smoke cross-checks the
# example's artifact).
kinds_seen = {}
events = []
prev_sim = -1.0
for line in open("/tmp/chaos_events.jsonl"):
    e = json.loads(line)
    events.append(e)
    assert e["schema"] == "exastro.event.v1", e
    for k in ("sim_us", "tick", "kind"):
        assert k in e, f"event missing {k}: {e}"
    assert e["sim_us"] >= prev_sim, "event timestamps must be nondecreasing"
    prev_sim = e["sim_us"]
    kinds_seen[e["kind"]] = kinds_seen.get(e["kind"], 0) + 1
for need_kind in ("admit", "lease", "start", "checkpoint", "node_fail",
                  "revoke", "recover"):
    assert kinds_seen.get(need_kind), f"no {need_kind} events in the storm"
assert kinds_seen["node_fail"] == r["node_failures"]
assert kinds_seen["revoke"] == r["lease_revocations"]
assert kinds_seen["recover"] == r["recoveries"]
assert kinds_seen.get("migrate", 0) == r["straggler_migrations"]
for e in events:
    if e["kind"] == "recover":
        assert e.get("mttr_s") is not None, "recover must carry mttr_s"
    if e["kind"] == "revoke":
        assert e.get("lost_steps") is not None, "revoke must price lost work"
    if e["kind"] == "start":
        assert e.get("queue_wait_s") is not None
terminal = [e for e in events
            if e["kind"] in ("complete", "fail", "quarantine")]
assert len(terminal) == len(r["jobs"]), (len(terminal), len(r["jobs"]))
print(f"chaos_events.jsonl OK ({len(events)} events, "
      f"{len(kinds_seen)} kinds: {sorted(kinds_seen)})")
EOF

echo "== task-graph overlap ablation smoke (test mode) =="
# The tentpole's ablation: the modeled 512-node efficiency with the
# overlapped exchange must beat bulk-synchronous stepping, and the real
# graph-overlapped Castro advance (bit-identical results, asserted in the
# castro tests) must not be slower than sync beyond noise.
cargo bench --offline -p exastro-bench --bench ablation_taskgraph -- --test >/tmp/taskgraph_smoke.log
python3 - <<'EOF'
import json
d = json.load(open("BENCH_taskgraph.json"))
assert d["bench"] == "taskgraph", d
by = {m["label"]: m["value"] for m in d["metrics"]}
for need in ("taskgraph/overlap_efficiency", "taskgraph/sync_efficiency",
             "taskgraph/efficiency_gain",
             "taskgraph/scheduler_overhead_us_per_task",
             "taskgraph/wall_speedup_sedov32",
             "taskgraph/measured_overlap_eff", "taskgraph/model_drift"):
    assert need in by, f"missing {need} in {sorted(by)}"
assert by["taskgraph/overlap_efficiency"] > by["taskgraph/sync_efficiency"], (
    "overlap must improve modeled 512-node efficiency")
assert by["taskgraph/efficiency_gain"] > 1.0
assert by["taskgraph/scheduler_overhead_us_per_task"] < 100.0, (
    "scheduler overhead implausibly high")
assert by["taskgraph/wall_speedup_sedov32"] > 0.7, (
    "graph-overlapped advance should not be drastically slower than sync")
assert 0.0 <= by["taskgraph/measured_overlap_eff"] <= 1.0, (
    "measured overlap efficiency is a fraction")
# model_drift's tolerance band is asserted in
# crates/bench/tests/overlap_reconcile.rs; the artifact just records it.
print(f"BENCH_taskgraph.json OK ({len(d['metrics'])} metrics)")
EOF

echo "== perf gate (deterministic scaling curves vs committed baselines) =="
# fig2/fig3 throughputs come from the machine performance model, so they
# are bit-reproducible; any drop beyond tolerance is a real regression.
# The service bench adds scheduler throughput (jobs/hour) against a
# deliberately conservative floor.
cargo bench --offline -p exastro-bench --bench fig2_sedov_weak_scaling -- --test >/tmp/fig2_smoke.log
cargo bench --offline -p exastro-bench --bench fig3_bubble_weak_scaling -- --test >/tmp/fig3_smoke.log
cargo bench --offline -p exastro-bench --bench service -- --test >/tmp/service_bench_smoke.log
cargo bench --offline -p exastro-bench --bench chaos -- --test >/tmp/chaos_bench_smoke.log
# Telemetry overhead (including graph tracing) regenerates
# BENCH_telemetry.json; its baseline gates the overhead percentages
# against an absolute 2% ceiling ("max" rule in perf_gate.py).
cargo bench --offline -p exastro-bench --bench ablation_telemetry -- --test >/tmp/telemetry_smoke.log
python3 - <<'EOF'
import json
d = json.load(open("BENCH_service.json"))
assert d["bench"] == "service", d
by = {m["label"]: m["value"] for m in d["metrics"]}
for need in ("service/jobs_per_hour", "service/latency_p50",
             "service/latency_p99", "service/rank_utilization_2x_oversub",
             "service/queue_peak", "service/preemptions"):
    assert need in by, f"missing {need} in {sorted(by)}"
assert by["service/jobs_per_hour"] > 0
assert by["service/preemptions"] > 0, "the bench's high wave must preempt"
assert 0.0 < by["service/rank_utilization_2x_oversub"] <= 1.0
print(f"BENCH_service.json OK ({len(d['metrics'])} metrics)")
c = json.load(open("BENCH_chaos.json"))
assert c["bench"] == "chaos", c
cby = {m["label"]: m["value"] for m in c["metrics"]}
for need in ("chaos/goodput_jobs_per_hour", "chaos/completion_rate_immortal",
             "chaos/completion_rate_moderate", "chaos/completion_rate_harsh",
             "chaos/node_failures_moderate", "chaos/recoveries_moderate"):
    assert need in cby, f"missing {need} in {sorted(cby)}"
assert cby["chaos/goodput_jobs_per_hour"] > 0
assert cby["chaos/completion_rate_immortal"] == 1.0, (
    "no failures injected -> everything completes")
assert cby["chaos/node_failures_moderate"] >= 1, (
    "the moderate schedule must actually inject failures")
print(f"BENCH_chaos.json OK ({len(c['metrics'])} metrics)")
EOF
python3 ci/perf_gate.py

echo "== clippy (deny warnings, deny deprecated) =="
# -D deprecated keeps the repo itself off any deprecated API (the last
# holder, the integrate_with_stats shim, is gone) while external callers
# of a future deprecation get a soft warning.
cargo clippy --workspace --all-targets --offline -- -D warnings -D deprecated

echo "== rustfmt check =="
cargo fmt --all --check

echo "tier-1: OK"
