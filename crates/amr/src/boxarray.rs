//! Domain decomposition: the [`BoxArray`].
//!
//! AMReX stores data in blocks ("boxes") rather than individual zones, so
//! work cannot be divided arbitrarily among processors: the domain is chopped
//! into boxes constrained by a maximum grid size and a blocking factor, and
//! the boxes are then distributed over ranks (§IV-A). The maximum box width
//! is the key tuning knob behind the "best case"/"worst case" envelopes of
//! Figure 2.

use exastro_parallel::{IndexBox, IntVect};

/// An ordered collection of (possibly touching, never overlapping) boxes
/// covering part of index space at one refinement level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoxArray {
    boxes: Vec<IndexBox>,
}

impl BoxArray {
    /// Build from an explicit list of boxes.
    pub fn from_boxes(boxes: Vec<IndexBox>) -> Self {
        BoxArray { boxes }
    }

    /// Decompose `domain` into boxes no wider than `max_size` per dimension,
    /// with every box width a multiple of `blocking_factor` where possible
    /// (domain edges may produce remainders if the domain itself is not a
    /// multiple).
    ///
    /// Mirrors AMReX's `maxSize` chop: boxes are split recursively along
    /// their longest dimension at a blocking-factor-aligned midpoint until
    /// all satisfy the width bound. The decomposition "tends to prefer larger
    /// boxes" exactly as the paper notes.
    pub fn decompose(domain: IndexBox, max_size: i32, blocking_factor: i32) -> Self {
        assert!(max_size >= 1 && blocking_factor >= 1);
        let mut work = vec![domain];
        let mut done = Vec::new();
        while let Some(bx) = work.pop() {
            if bx.is_empty() {
                continue;
            }
            let d = bx.longest_dir();
            if bx.length(d) <= max_size {
                done.push(bx);
                continue;
            }
            // Split at an aligned point as close to the middle as possible.
            let len = bx.length(d);
            let half = len / 2;
            let aligned = (half / blocking_factor).max(1) * blocking_factor;
            let at = bx.lo()[d] + aligned.min(len - 1);
            let (a, b) = bx.chop(d, at);
            work.push(a);
            work.push(b);
        }
        // Deterministic order: sort by (z, y, x) of the low corner.
        done.sort_by_key(|b| (b.lo().z(), b.lo().y(), b.lo().x()));
        BoxArray { boxes: done }
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True if there are no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The `i`-th box.
    pub fn get(&self, i: usize) -> IndexBox {
        self.boxes[i]
    }

    /// Iterate over the boxes.
    pub fn iter(&self) -> impl Iterator<Item = &IndexBox> {
        self.boxes.iter()
    }

    /// Total zones across all boxes.
    pub fn total_zones(&self) -> i64 {
        self.boxes.iter().map(|b| b.num_zones()).sum()
    }

    /// The minimal box enclosing every box in the array.
    pub fn bounding_box(&self) -> IndexBox {
        self.boxes
            .iter()
            .fold(IndexBox::empty(), |acc, b| acc.union_hull(b))
    }

    /// Indices of boxes intersecting `bx`.
    pub fn intersecting(&self, bx: &IndexBox) -> Vec<usize> {
        self.boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(bx))
            .map(|(i, _)| i)
            .collect()
    }

    /// True if `iv` lies in some box of the array.
    pub fn contains(&self, iv: IntVect) -> bool {
        self.boxes.iter().any(|b| b.contains(iv))
    }

    /// A new array with every box refined by `ratio`.
    pub fn refine(&self, ratio: i32) -> BoxArray {
        BoxArray {
            boxes: self.boxes.iter().map(|b| b.refine(ratio)).collect(),
        }
    }

    /// A new array with every box coarsened by `ratio`.
    pub fn coarsen(&self, ratio: i32) -> BoxArray {
        BoxArray {
            boxes: self.boxes.iter().map(|b| b.coarsen(ratio)).collect(),
        }
    }

    /// Verify the invariant that boxes do not overlap (O(n²); debug tool).
    pub fn is_disjoint(&self) -> bool {
        for (i, a) in self.boxes.iter().enumerate() {
            for b in &self.boxes[i + 1..] {
                if a.intersects(b) {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<usize> for BoxArray {
    type Output = IndexBox;
    fn index(&self, i: usize) -> &IndexBox {
        &self.boxes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_covers_domain_disjointly() {
        let domain = IndexBox::cube(256);
        let ba = BoxArray::decompose(domain, 64, 32);
        assert_eq!(ba.total_zones(), domain.num_zones());
        assert!(ba.is_disjoint());
        assert_eq!(ba.len(), 64); // 4^3 boxes of 64^3
        for b in ba.iter() {
            assert!(b.size().max_component() <= 64);
            assert_eq!(b.size(), IntVect::splat(64));
        }
    }

    #[test]
    fn decompose_respects_max_size_on_odd_domains() {
        let domain = IndexBox::sized(IntVect::new(96, 48, 80));
        let ba = BoxArray::decompose(domain, 32, 16);
        assert_eq!(ba.total_zones(), domain.num_zones());
        assert!(ba.is_disjoint());
        for b in ba.iter() {
            assert!(b.size().max_component() <= 32, "{b:?}");
        }
    }

    #[test]
    fn single_box_when_domain_fits() {
        let ba = BoxArray::decompose(IndexBox::cube(32), 64, 8);
        assert_eq!(ba.len(), 1);
    }

    #[test]
    fn larger_max_size_means_fewer_boxes() {
        let domain = IndexBox::cube(128);
        let n32 = BoxArray::decompose(domain, 32, 32).len();
        let n64 = BoxArray::decompose(domain, 64, 32).len();
        let n128 = BoxArray::decompose(domain, 128, 32).len();
        assert!(n32 > n64 && n64 > n128);
        assert_eq!(n128, 1);
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let ba = BoxArray::decompose(IndexBox::cube(64), 32, 16);
        assert_eq!(ba.refine(2).coarsen(2), ba);
        assert_eq!(ba.refine(2).total_zones(), ba.total_zones() * 8);
    }

    #[test]
    fn intersecting_finds_neighbors() {
        let ba = BoxArray::decompose(IndexBox::cube(64), 32, 32);
        // Grown first box overlaps itself plus neighbours.
        let probe = ba.get(0).grow(1);
        let hits = ba.intersecting(&probe);
        assert!(hits.contains(&0));
        assert_eq!(hits.len(), 8); // corner box of a 2x2x2 decomposition
    }

    #[test]
    fn bounding_box_and_contains() {
        let domain = IndexBox::cube(64);
        let ba = BoxArray::decompose(domain, 16, 16);
        assert_eq!(ba.bounding_box(), domain);
        assert!(ba.contains(IntVect::splat(63)));
        assert!(!ba.contains(IntVect::splat(64)));
    }
}
