//! Error tagging and grid generation: turning a set of tagged zones into a
//! set of refinement boxes (a simplified Berger–Rigoutsos clusterer).

use exastro_parallel::{IndexBox, IntVect};

/// Parameters for grid generation.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Maximum box width per dimension, in the tagging level's index space.
    pub max_size: i32,
    /// Minimum acceptable ratio of tagged zones to box volume before a box
    /// is split further (AMReX `grid_eff`, typically 0.7).
    pub min_efficiency: f64,
    /// Generated boxes are snapped outward to multiples of this factor.
    pub blocking_factor: i32,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            max_size: 32,
            min_efficiency: 0.7,
            blocking_factor: 4,
        }
    }
}

fn bounding_box(tags: &[IntVect]) -> IndexBox {
    let mut lo = tags[0];
    let mut hi = tags[0];
    for &t in &tags[1..] {
        lo = lo.min(t);
        hi = hi.max(t);
    }
    IndexBox::new(lo, hi)
}

/// Find a good cut plane along dimension `d` within `bx` using the tag
/// signature (count of tags per plane): prefer an empty plane ("hole"),
/// otherwise the steepest inflection, otherwise the midpoint. Returns the
/// index at which to chop, or `None` if the box is too thin to cut.
fn find_cut(tags: &[IntVect], bx: IndexBox, d: usize) -> Option<i32> {
    let len = bx.length(d);
    if len < 2 {
        return None;
    }
    let lo = bx.lo()[d];
    let mut sig = vec![0i64; len as usize];
    for t in tags {
        sig[(t[d] - lo) as usize] += 1;
    }
    // Interior hole: an empty plane strictly inside.
    for p in 1..(len - 1) as usize {
        if sig[p] == 0 {
            return Some(lo + p as i32);
        }
    }
    // Steepest change in the discrete Laplacian of the signature.
    let mut best = None;
    let mut best_mag = 0i64;
    for p in 1..(len as usize - 1) {
        let lap = sig[p - 1] - 2 * sig[p] + sig[p + 1];
        let prev = if p > 1 {
            sig[p - 2] - 2 * sig[p - 1] + sig[p]
        } else {
            lap
        };
        if lap.signum() != prev.signum() {
            let mag = (lap - prev).abs();
            if mag > best_mag {
                best_mag = mag;
                best = Some(lo + p as i32);
            }
        }
    }
    Some(best.unwrap_or(lo + len / 2))
}

fn cluster_recursive(tags: &[IntVect], params: &ClusterParams, out: &mut Vec<IndexBox>) {
    if tags.is_empty() {
        return;
    }
    let bbox = bounding_box(tags);
    let eff = tags.len() as f64 / bbox.num_zones() as f64;
    let fits = bbox.size().max_component() <= params.max_size;
    if fits && (eff >= params.min_efficiency || bbox.num_zones() <= 8) {
        out.push(bbox);
        return;
    }
    // Cut along the longest dimension (required if over max_size).
    let d = bbox.longest_dir();
    let Some(at) = find_cut(tags, bbox, d) else {
        out.push(bbox);
        return;
    };
    let (mut below, mut above) = (Vec::new(), Vec::new());
    for &t in tags {
        if t[d] < at {
            below.push(t);
        } else {
            above.push(t);
        }
    }
    if below.is_empty() || above.is_empty() {
        // Degenerate cut; accept the box rather than loop forever.
        out.push(bbox);
        return;
    }
    cluster_recursive(&below, params, out);
    cluster_recursive(&above, params, out);
}

/// Cluster tagged zones into boxes.
///
/// The tags and resulting boxes live in the index space of the level being
/// tagged; callers refine the boxes by the refinement ratio to create the
/// next finer level. Boxes are disjoint, cover every tag, respect
/// `max_size` (up to blocking-factor snapping), and are snapped outward to
/// `blocking_factor` multiples.
pub fn cluster(tags: &[IntVect], params: &ClusterParams) -> Vec<IndexBox> {
    if tags.is_empty() {
        return Vec::new();
    }
    // Work in blocking-factor-coarsened space so that snapping outward at
    // the end cannot create overlaps.
    let bf = params.blocking_factor.max(1);
    let mut coarse_tags: Vec<IntVect> =
        tags.iter().map(|t| t.coarsen(IntVect::splat(bf))).collect();
    coarse_tags.sort();
    coarse_tags.dedup();
    let coarse_params = ClusterParams {
        max_size: (params.max_size / bf).max(1),
        blocking_factor: 1,
        ..*params
    };
    let mut out = Vec::new();
    cluster_recursive(&coarse_tags, &coarse_params, &mut out);
    let mut boxes: Vec<IndexBox> = out.into_iter().map(|b| b.refine(bf)).collect();
    boxes.sort_by_key(|b| (b.lo().z(), b.lo().y(), b.lo().x()));
    boxes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(boxes: &[IndexBox], tags: &[IntVect]) -> bool {
        tags.iter().all(|t| boxes.iter().any(|b| b.contains(*t)))
    }

    fn disjoint(boxes: &[IndexBox]) -> bool {
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                if a.intersects(b) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn single_blob_single_box() {
        let tags: Vec<IntVect> = IndexBox::new(IntVect::splat(4), IntVect::splat(7))
            .iter()
            .collect();
        let boxes = cluster(&tags, &ClusterParams::default());
        assert_eq!(boxes.len(), 1);
        assert!(covers_all(&boxes, &tags));
        assert!(boxes[0].lo()[0] % 4 == 0, "blocking alignment");
    }

    #[test]
    fn two_separated_blobs_two_boxes() {
        let mut tags: Vec<IntVect> = IndexBox::new(IntVect::splat(0), IntVect::splat(3))
            .iter()
            .collect();
        tags.extend(IndexBox::new(IntVect::splat(40), IntVect::splat(43)).iter());
        let boxes = cluster(&tags, &ClusterParams::default());
        assert_eq!(boxes.len(), 2, "{boxes:?}");
        assert!(covers_all(&boxes, &tags));
        assert!(disjoint(&boxes));
    }

    #[test]
    fn respects_max_size() {
        // A long thin run of tags must be chopped.
        let tags: Vec<IntVect> = (0..100).map(|i| IntVect::new(i, 0, 0)).collect();
        let params = ClusterParams {
            max_size: 16,
            min_efficiency: 0.5,
            blocking_factor: 4,
        };
        let boxes = cluster(&tags, &params);
        assert!(boxes.len() >= 6);
        assert!(covers_all(&boxes, &tags));
        assert!(disjoint(&boxes));
        for b in &boxes {
            assert!(b.size().max_component() <= 16 + 4, "{b:?}");
        }
    }

    #[test]
    fn efficiency_splits_l_shape() {
        // An L-shaped tag set is poorly covered by its bounding box.
        let mut tags: Vec<IntVect> = Vec::new();
        for i in 0..16 {
            tags.push(IntVect::new(i, 0, 0));
            tags.push(IntVect::new(0, i, 0));
        }
        let params = ClusterParams {
            max_size: 32,
            min_efficiency: 0.7,
            blocking_factor: 1,
        };
        let boxes = cluster(&tags, &params);
        assert!(boxes.len() >= 2, "bounding box would be only 12% efficient");
        assert!(covers_all(&boxes, &tags));
        assert!(disjoint(&boxes));
        let covered: i64 = boxes.iter().map(|b| b.num_zones()).sum();
        assert!(covered < 16 * 16, "should not cover the whole bounding box");
    }

    #[test]
    fn empty_tags_empty_boxes() {
        assert!(cluster(&[], &ClusterParams::default()).is_empty());
    }

    #[test]
    fn blocking_factor_snaps_outward() {
        let tags = vec![IntVect::new(5, 9, 2)];
        let params = ClusterParams {
            max_size: 32,
            min_efficiency: 0.1,
            blocking_factor: 8,
        };
        let boxes = cluster(&tags, &params);
        assert_eq!(boxes.len(), 1);
        let b = boxes[0];
        assert_eq!(b.lo(), IntVect::new(0, 8, 0));
        assert_eq!(b.hi(), IntVect::new(7, 15, 7));
    }
}
