//! Distribution mappings: assignment of boxes to MPI ranks.
//!
//! Castro and MAESTROeX run one MPI rank per GPU (6 per Summit node), so the
//! quality of the box→rank assignment directly sets the load balance — the
//! paper's fiducial Sedov case (64 boxes over 6 ranks per node) is explicitly
//! *not* optimal. AMReX's strategies are reproduced here: round-robin,
//! knapsack (greedy longest-processing-time), and a Morton space-filling
//! curve that preserves locality.

use crate::boxarray::BoxArray;
use exastro_parallel::IntVect;

/// How to assign boxes to ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistStrategy {
    /// Box `i` goes to rank `i % nranks`.
    RoundRobin,
    /// Greedy LPT by zone count: heaviest box to the lightest rank.
    Knapsack,
    /// Order boxes along a Morton (Z-order) curve, then split the curve into
    /// `nranks` contiguous chunks of roughly equal weight.
    Sfc,
}

/// The box→rank assignment for one level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributionMapping {
    owner: Vec<usize>,
    nranks: usize,
}

/// Interleave the low 21 bits of x, y, z into a 63-bit Morton key.
fn morton_key(iv: IntVect) -> u64 {
    #[inline]
    fn spread(v: u64) -> u64 {
        // Spread the low 21 bits out to every third bit.
        let mut x = v & 0x1f_ffff;
        x = (x | (x << 32)) & 0x1f00000000ffff;
        x = (x | (x << 16)) & 0x1f0000ff0000ff;
        x = (x | (x << 8)) & 0x100f00f00f00f00f;
        x = (x | (x << 4)) & 0x10c30c30c30c30c3;
        x = (x | (x << 2)) & 0x1249249249249249;
        x
    }
    // Offset to keep coordinates non-negative (boxes near the origin).
    let off = 1 << 20;
    let x = (iv.x() as i64 + off) as u64;
    let y = (iv.y() as i64 + off) as u64;
    let z = (iv.z() as i64 + off) as u64;
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

impl DistributionMapping {
    /// Create a mapping of `ba`'s boxes across `nranks` ranks with the given
    /// strategy.
    pub fn new(ba: &BoxArray, nranks: usize, strategy: DistStrategy) -> Self {
        assert!(nranks >= 1, "need at least one rank");
        let n = ba.len();
        let mut owner = vec![0usize; n];
        match strategy {
            DistStrategy::RoundRobin => {
                for (i, o) in owner.iter_mut().enumerate() {
                    *o = i % nranks;
                }
            }
            DistStrategy::Knapsack => {
                // Heaviest-first into the currently lightest rank.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(ba.get(i).num_zones()));
                let mut load = vec![0i64; nranks];
                for i in order {
                    let r = (0..nranks).min_by_key(|&r| load[r]).unwrap();
                    owner[i] = r;
                    load[r] += ba.get(i).num_zones();
                }
            }
            DistStrategy::Sfc => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| morton_key(ba.get(i).lo()));
                let total: i64 = ba.total_zones();
                let per_rank = (total as f64 / nranks as f64).max(1.0);
                let mut acc = 0i64;
                for i in order {
                    let r = ((acc as f64 / per_rank) as usize).min(nranks - 1);
                    owner[i] = r;
                    acc += ba.get(i).num_zones();
                }
            }
        }
        DistributionMapping { owner, nranks }
    }

    /// All boxes on rank 0 (serial runs).
    pub fn all_local(ba: &BoxArray) -> Self {
        DistributionMapping {
            owner: vec![0; ba.len()],
            nranks: 1,
        }
    }

    /// Rank owning box `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.owner[i]
    }

    /// Number of ranks in the mapping.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of boxes mapped.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// True if no boxes are mapped.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Indices of the boxes owned by `rank`.
    pub fn boxes_on(&self, rank: usize) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == rank)
            .map(|(i, _)| i)
            .collect()
    }

    /// Zone count per rank for `ba` under this mapping.
    pub fn loads(&self, ba: &BoxArray) -> Vec<i64> {
        let mut loads = vec![0i64; self.nranks];
        for (i, &o) in self.owner.iter().enumerate() {
            loads[o] += ba.get(i).num_zones();
        }
        loads
    }

    /// Load imbalance: max rank load divided by mean rank load (1.0 is
    /// perfect). This is the quantity that makes the paper's 64-boxes-over-
    /// 6-ranks fiducial case suboptimal.
    pub fn imbalance(&self, ba: &BoxArray) -> f64 {
        let loads = self.loads(ba);
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = ba.total_zones() as f64 / self.nranks as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_parallel::IndexBox;

    fn ba_256_64() -> BoxArray {
        BoxArray::decompose(IndexBox::cube(256), 64, 32)
    }

    #[test]
    fn round_robin_covers_all_ranks() {
        let ba = ba_256_64();
        let dm = DistributionMapping::new(&ba, 6, DistStrategy::RoundRobin);
        for r in 0..6 {
            assert!(!dm.boxes_on(r).is_empty());
        }
        let total: usize = (0..6).map(|r| dm.boxes_on(r).len()).sum();
        assert_eq!(total, ba.len());
    }

    #[test]
    fn fiducial_sedov_case_is_imbalanced() {
        // 64 equal boxes over 6 ranks: ceil(64/6)=11 vs mean 10.67.
        let ba = ba_256_64();
        let dm = DistributionMapping::new(&ba, 6, DistStrategy::Knapsack);
        let imb = dm.imbalance(&ba);
        assert!((imb - 11.0 / (64.0 / 6.0)).abs() < 1e-12, "imb = {imb}");
        assert!(imb > 1.03);
    }

    #[test]
    fn knapsack_no_worse_than_round_robin() {
        // Mixed box sizes stress the balancers.
        let boxes = vec![
            IndexBox::cube(32),
            IndexBox::cube(16).shift(IntVect::splat(100)),
            IndexBox::cube(48).shift(IntVect::splat(200)),
            IndexBox::cube(8).shift(IntVect::splat(300)),
            IndexBox::cube(40).shift(IntVect::splat(400)),
            IndexBox::cube(24).shift(IntVect::splat(500)),
            IndexBox::cube(60).shift(IntVect::splat(600)),
        ];
        let ba = BoxArray::from_boxes(boxes);
        let rr = DistributionMapping::new(&ba, 3, DistStrategy::RoundRobin).imbalance(&ba);
        let ks = DistributionMapping::new(&ba, 3, DistStrategy::Knapsack).imbalance(&ba);
        assert!(ks <= rr + 1e-12, "knapsack {ks} vs round-robin {rr}");
    }

    #[test]
    fn perfect_division_balances_exactly() {
        let ba = BoxArray::decompose(IndexBox::cube(128), 32, 32); // 64 boxes
        for strat in [
            DistStrategy::RoundRobin,
            DistStrategy::Knapsack,
            DistStrategy::Sfc,
        ] {
            let dm = DistributionMapping::new(&ba, 8, strat);
            assert!((dm.imbalance(&ba) - 1.0).abs() < 1e-12, "{strat:?}");
        }
    }

    #[test]
    fn sfc_assigns_contiguous_spatial_chunks() {
        let ba = BoxArray::decompose(IndexBox::cube(128), 32, 32);
        let dm = DistributionMapping::new(&ba, 4, DistStrategy::Sfc);
        // Every rank gets an equal share.
        let loads = dm.loads(&ba);
        assert!(loads.iter().all(|&l| l == ba.total_zones() / 4));
        // Morton ordering keeps each rank's boxes clustered: the bounding
        // box of each rank's set should be much smaller than the domain for
        // at least some rank (locality), unlike round-robin which scatters.
        let rank_bbox_zones: Vec<i64> = (0..4)
            .map(|r| {
                dm.boxes_on(r)
                    .iter()
                    .fold(IndexBox::empty(), |acc, &i| acc.union_hull(&ba.get(i)))
                    .num_zones()
            })
            .collect();
        let domain_zones = IndexBox::cube(128).num_zones();
        assert!(rank_bbox_zones.iter().all(|&z| z <= domain_zones / 2));
    }

    #[test]
    fn morton_key_orders_locally() {
        // Nearby points have nearer keys than distant ones.
        let a = morton_key(IntVect::new(0, 0, 0));
        let b = morton_key(IntVect::new(1, 0, 0));
        let c = morton_key(IntVect::new(64, 64, 64));
        assert!(b.abs_diff(a) < c.abs_diff(a));
    }
}
