//! [`FArrayBox`]: a multi-component array of `Real` on a box, plus the
//! [`Array4`]/[`Array4Mut`] accessor views used inside `parallel_for` kernels.
//!
//! Memory layout matches AMReX/Fortran: `x` fastest, then `y`, `z`, and the
//! component index slowest, so a stride-1 inner loop over `i` walks
//! contiguous memory.
//!
//! # Safety
//!
//! This is the one module in the suite containing `unsafe` code.
//! [`Array4Mut`] is the Rust analogue of AMReX's `Array4<Real>`: a raw view
//! that can be written through a shared reference so that kernels launched by
//! [`exastro_parallel::ExecSpace::par_for`] can mutate the fab from multiple
//! threads. The safety contract is exactly the paper's programming model
//! (§III): *every kernel must be embarrassingly parallel over zones* — for a
//! given `par_for`, no two invocations of the closure may write the same
//! `(i, j, k, component)` slot, and no invocation may read a slot that
//! another writes. All bounds are checked with `debug_assert!` in debug
//! builds.

use exastro_parallel::{IndexBox, IntVect, Real};
use std::marker::PhantomData;

/// A dense array over `bx` with `ncomp` components.
#[derive(Clone, Debug, PartialEq)]
pub struct FArrayBox {
    bx: IndexBox,
    ncomp: usize,
    data: Vec<Real>,
}

impl FArrayBox {
    /// Allocate a zero-filled fab on `bx` with `ncomp` components.
    pub fn new(bx: IndexBox, ncomp: usize) -> Self {
        assert!(!bx.is_empty(), "cannot allocate a fab on an empty box");
        assert!(ncomp >= 1);
        let n = bx.num_zones() as usize * ncomp;
        FArrayBox {
            bx,
            ncomp,
            data: vec![0.0; n],
        }
    }

    /// The index box the fab covers (including any ghost zones — the fab
    /// itself does not distinguish valid from ghost).
    pub fn index_box(&self) -> IndexBox {
        self.bx
    }

    /// Number of components.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Bytes of payload.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<Real>()) as u64
    }

    #[inline]
    fn offset(&self, iv: IntVect, comp: usize) -> usize {
        debug_assert!(self.bx.contains(iv), "{iv:?} outside {:?}", self.bx);
        debug_assert!(comp < self.ncomp);
        comp * self.bx.num_zones() as usize + self.bx.linear_index(iv)
    }

    /// Read one value.
    #[inline]
    pub fn get(&self, iv: IntVect, comp: usize) -> Real {
        self.data[self.offset(iv, comp)]
    }

    /// Write one value.
    #[inline]
    pub fn set(&mut self, iv: IntVect, comp: usize, v: Real) {
        let o = self.offset(iv, comp);
        self.data[o] = v;
    }

    /// Set every value of component `comp` to `v`.
    pub fn set_val(&mut self, comp: usize, v: Real) {
        let n = self.bx.num_zones() as usize;
        self.data[comp * n..(comp + 1) * n].fill(v);
    }

    /// Set every value of every component to `v`.
    pub fn set_val_all(&mut self, v: Real) {
        self.data.fill(v);
    }

    /// Copy component `src_comp` of `src` into component `dst_comp` of
    /// `self` over the intersection of `region` with both fabs.
    pub fn copy_from(
        &mut self,
        src: &FArrayBox,
        region: IndexBox,
        src_comp: usize,
        dst_comp: usize,
        ncomp: usize,
    ) {
        let r = region.intersection(&self.bx).intersection(&src.bx);
        for c in 0..ncomp {
            for iv in r.iter() {
                let v = src.get(iv, src_comp + c);
                self.set(iv, dst_comp + c, v);
            }
        }
    }

    /// Copy from `src` shifted by `shift`: `self[iv] = src[iv - shift]` over
    /// `region` (in destination index space). Used for periodic ghost fills.
    pub fn copy_shifted(
        &mut self,
        src: &FArrayBox,
        region: IndexBox,
        shift: IntVect,
        ncomp: usize,
    ) {
        let r = region.intersection(&self.bx);
        for c in 0..ncomp {
            for iv in r.iter() {
                let siv = iv - shift;
                debug_assert!(src.bx.contains(siv));
                let v = src.get(siv, c);
                self.set(iv, c, v);
            }
        }
    }

    /// Immutable kernel view.
    pub fn array(&self) -> Array4<'_> {
        Array4 {
            data: &self.data,
            bx: self.bx,
            ncomp: self.ncomp,
        }
    }

    /// Mutable (shared) kernel view. See the module-level safety contract.
    pub fn array_mut(&mut self) -> Array4Mut<'_> {
        Array4Mut {
            ptr: self.data.as_mut_ptr(),
            len: self.data.len(),
            bx: self.bx,
            ncomp: self.ncomp,
            _marker: PhantomData,
        }
    }

    /// Raw data slice (component-major).
    pub fn data(&self) -> &[Real] {
        &self.data
    }

    /// Mutable raw data slice (component-major).
    pub fn data_mut(&mut self) -> &mut [Real] {
        &mut self.data
    }

    /// Max |value| of component `comp` over `region`.
    pub fn norm_inf(&self, region: IndexBox, comp: usize) -> Real {
        let r = region.intersection(&self.bx);
        r.iter()
            .map(|iv| self.get(iv, comp).abs())
            .fold(0.0, Real::max)
    }

    /// Sum of component `comp` over `region`.
    pub fn sum(&self, region: IndexBox, comp: usize) -> Real {
        let r = region.intersection(&self.bx);
        r.iter().map(|iv| self.get(iv, comp)).sum()
    }
}

/// Immutable view of a fab for use inside kernels. `Copy`, cheap to capture.
#[derive(Clone, Copy)]
pub struct Array4<'a> {
    data: &'a [Real],
    bx: IndexBox,
    ncomp: usize,
}

impl<'a> Array4<'a> {
    /// View a raw component-major slice (e.g. an arena scratch buffer) as a
    /// fab over `bx`. `data.len()` must equal `bx.num_zones() * ncomp`.
    pub fn from_slice(data: &'a [Real], bx: IndexBox, ncomp: usize) -> Self {
        assert_eq!(data.len(), bx.num_zones() as usize * ncomp);
        Array4 { data, bx, ncomp }
    }

    #[inline]
    fn offset(&self, i: i32, j: i32, k: i32, c: usize) -> usize {
        let iv = IntVect::new(i, j, k);
        debug_assert!(self.bx.contains(iv), "({i},{j},{k}) outside {:?}", self.bx);
        debug_assert!(c < self.ncomp);
        c * self.bx.num_zones() as usize + self.bx.linear_index(iv)
    }

    /// Value at `(i, j, k)` component `c`.
    #[inline]
    pub fn at(&self, i: i32, j: i32, k: i32, c: usize) -> Real {
        self.data[self.offset(i, j, k, c)]
    }

    /// The box this view covers.
    pub fn index_box(&self) -> IndexBox {
        self.bx
    }

    /// Number of components.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }
}

/// Mutable kernel view writable through `&self`, so it can be captured by
/// the `Fn + Sync` closures that `par_for` requires.
///
/// # Safety contract
///
/// Within one `par_for`, distinct closure invocations must touch disjoint
/// `(i, j, k, c)` slots (the embarrassingly-parallel contract of §III). The
/// view must not outlive the fab (enforced by the lifetime) and no other
/// view of the same fab may be used concurrently.
pub struct Array4Mut<'a> {
    ptr: *mut Real,
    len: usize,
    bx: IndexBox,
    ncomp: usize,
    _marker: PhantomData<&'a mut [Real]>,
}

// SAFETY: Array4Mut is a raw view into a uniquely borrowed fab. Concurrent
// use from multiple threads is sound iff callers honour the documented
// disjoint-writes contract, which all kernels in the suite do by
// construction (each (i,j,k) zone is written by exactly one closure call).
unsafe impl Send for Array4Mut<'_> {}
unsafe impl Sync for Array4Mut<'_> {}

impl<'a> Array4Mut<'a> {
    /// View a raw mutable component-major slice (e.g. an arena scratch
    /// buffer) as a fab over `bx`, writable under the same disjoint-access
    /// contract as [`FArrayBox::array_mut`].
    pub fn from_slice(data: &'a mut [Real], bx: IndexBox, ncomp: usize) -> Self {
        assert_eq!(data.len(), bx.num_zones() as usize * ncomp);
        Array4Mut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            bx,
            ncomp,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn offset(&self, i: i32, j: i32, k: i32, c: usize) -> usize {
        let iv = IntVect::new(i, j, k);
        debug_assert!(self.bx.contains(iv), "({i},{j},{k}) outside {:?}", self.bx);
        debug_assert!(c < self.ncomp);
        let o = c * self.bx.num_zones() as usize + self.bx.linear_index(iv);
        debug_assert!(o < self.len);
        o
    }

    /// Read the value at `(i, j, k)` component `c`.
    #[inline]
    pub fn at(&self, i: i32, j: i32, k: i32, c: usize) -> Real {
        let o = self.offset(i, j, k, c);
        // SAFETY: offset is in-bounds (debug-asserted; guaranteed by
        // construction from a live Vec) and callers honour the
        // disjoint-access contract.
        unsafe { *self.ptr.add(o) }
    }

    /// Write `v` at `(i, j, k)` component `c`.
    #[inline]
    pub fn set(&self, i: i32, j: i32, k: i32, c: usize, v: Real) {
        let o = self.offset(i, j, k, c);
        // SAFETY: as for `at`; each slot is written by at most one kernel
        // invocation per the module contract.
        unsafe {
            *self.ptr.add(o) = v;
        }
    }

    /// Add `v` into `(i, j, k)` component `c`.
    #[inline]
    pub fn add(&self, i: i32, j: i32, k: i32, c: usize, v: Real) {
        self.set(i, j, k, c, self.at(i, j, k, c) + v);
    }

    /// The box this view covers.
    pub fn index_box(&self) -> IndexBox {
        self.bx
    }

    /// Number of components.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_parallel::{ExecSpace, TiledExec};

    #[test]
    fn fab_get_set_roundtrip() {
        let bx = IndexBox::new(IntVect::new(-2, 0, 1), IntVect::new(3, 4, 5));
        let mut fab = FArrayBox::new(bx, 3);
        for (n, iv) in bx.iter().enumerate() {
            fab.set(iv, 1, n as Real);
        }
        for (n, iv) in bx.iter().enumerate() {
            assert_eq!(fab.get(iv, 1), n as Real);
            assert_eq!(fab.get(iv, 0), 0.0);
            assert_eq!(fab.get(iv, 2), 0.0);
        }
    }

    #[test]
    fn set_val_per_component() {
        let mut fab = FArrayBox::new(IndexBox::cube(4), 2);
        fab.set_val(0, 1.5);
        fab.set_val(1, -2.5);
        assert_eq!(fab.sum(IndexBox::cube(4), 0), 1.5 * 64.0);
        assert_eq!(fab.sum(IndexBox::cube(4), 1), -2.5 * 64.0);
        assert_eq!(fab.norm_inf(IndexBox::cube(4), 1), 2.5);
    }

    #[test]
    fn copy_from_intersection_only() {
        let mut dst = FArrayBox::new(IndexBox::cube(4), 1);
        let mut src = FArrayBox::new(IndexBox::cube(8).shift(IntVect::splat(2)), 1);
        src.set_val(0, 9.0);
        dst.copy_from(&src, IndexBox::cube(8), 0, 0, 1);
        // Only the overlap [2,3]^3 was copied.
        assert_eq!(dst.sum(IndexBox::cube(4), 0), 9.0 * 8.0);
        assert_eq!(dst.get(IntVect::zero(), 0), 0.0);
        assert_eq!(dst.get(IntVect::splat(3), 0), 9.0);
    }

    #[test]
    fn copy_shifted_maps_source_indices() {
        let mut dst = FArrayBox::new(IndexBox::cube(4), 1);
        let mut src = FArrayBox::new(IndexBox::cube(4), 1);
        for iv in IndexBox::cube(4).iter() {
            src.set(iv, 0, (iv.x() + 10 * iv.y()) as Real);
        }
        // dst[iv] = src[iv - (1,0,0)] over the column i=1..3
        let region = IndexBox::new(IntVect::new(1, 0, 0), IntVect::new(3, 3, 3));
        dst.copy_shifted(&src, region, IntVect::new(1, 0, 0), 1);
        assert_eq!(
            dst.get(IntVect::new(1, 2, 0), 0),
            src.get(IntVect::new(0, 2, 0), 0)
        );
        assert_eq!(
            dst.get(IntVect::new(3, 3, 3), 0),
            src.get(IntVect::new(2, 3, 3), 0)
        );
    }

    #[test]
    fn array4_mut_parallel_write_disjoint() {
        let bx = IndexBox::cube(16);
        let mut fab = FArrayBox::new(bx, 2);
        let arr = fab.array_mut();
        let ex = ExecSpace::Tiled(TiledExec {
            nthreads: 4,
            tile_size: IntVect::new(8, 8, 4),
        });
        ex.par_for(bx, |i, j, k| {
            arr.set(i, j, k, 0, (i + j + k) as Real);
            arr.set(i, j, k, 1, (i * j * k) as Real);
        });
        for iv in bx.iter() {
            assert_eq!(fab.get(iv, 0), (iv.x() + iv.y() + iv.z()) as Real);
            assert_eq!(fab.get(iv, 1), (iv.x() * iv.y() * iv.z()) as Real);
        }
    }

    #[test]
    fn array4_reads_match_fab() {
        let bx = IndexBox::cube(5);
        let mut fab = FArrayBox::new(bx, 1);
        for iv in bx.iter() {
            fab.set(iv, 0, (iv.x() * 100 + iv.y() * 10 + iv.z()) as Real);
        }
        let a = fab.array();
        for iv in bx.iter() {
            assert_eq!(a.at(iv.x(), iv.y(), iv.z(), 0), fab.get(iv, 0));
        }
    }

    #[test]
    fn array4_mut_add_accumulates() {
        let bx = IndexBox::cube(2);
        let mut fab = FArrayBox::new(bx, 1);
        let arr = fab.array_mut();
        arr.add(0, 0, 0, 0, 1.0);
        arr.add(0, 0, 0, 0, 2.5);
        assert_eq!(fab.get(IntVect::zero(), 0), 3.5);
    }

    #[test]
    fn fab_bytes() {
        let fab = FArrayBox::new(IndexBox::cube(4), 3);
        assert_eq!(fab.bytes(), 64 * 3 * 8);
    }
}
