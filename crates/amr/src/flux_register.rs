//! Flux registers: restoring conservation at coarse–fine boundaries.
//!
//! When a coarse level and the fine level above it are advanced with
//! independently computed face fluxes, the coarse zones *outside* the fine
//! region have seen a coarse flux through the coarse–fine interface while
//! the fine region used (more accurate) fine fluxes. Refluxing replaces the
//! coarse flux with the area-averaged fine flux on those interface faces so
//! that total mass/energy/etc. is conserved to round-off.

use crate::boxarray::BoxArray;
use crate::multifab::MultiFab;
use exastro_parallel::{IntVect, Real};
use std::collections::HashMap;

/// Identifies a coarse face: dimension `d` and the index of the zone on the
/// *high* side of the face (i.e. face `(d, iv)` separates `iv - e_d` from
/// `iv`).
type FaceKey = (usize, IntVect);

/// Accumulates coarse and fine fluxes on the coarse–fine interface of one
/// fine level, then applies the conservative correction to the coarse state.
#[derive(Clone, Debug)]
pub struct FluxRegister {
    ratio: i32,
    ncomp: usize,
    /// Accumulated `F_fine_avg - F_coarse`, oriented along +d, per face.
    delta: HashMap<FaceKey, Vec<Real>>,
    /// The set of interface faces (precomputed from the fine box array).
    faces: Vec<FaceKey>,
}

impl FluxRegister {
    /// Build the register for a fine level described by `fine_ba` (fine
    /// index space) nested in a coarse level; `ratio` is the refinement
    /// ratio and `ncomp` the number of flux components.
    pub fn new(fine_ba: &BoxArray, ratio: i32, ncomp: usize) -> Self {
        let cba = fine_ba.coarsen(ratio);
        let mut faces = Vec::new();
        // A coarse face is on the coarse–fine interface iff exactly one of
        // the two zones it separates is covered by the (coarsened) fine
        // grids.
        for bi in 0..cba.len() {
            let b = cba.get(bi);
            for d in 0..3 {
                let e = IntVect::dim_vec(d);
                // Low faces of this box: face index = zone on high side.
                for iv in face_plane(b, d, true) {
                    if !cba.contains(iv - e) {
                        faces.push((d, iv));
                    }
                }
                // High faces: the face above the last zone.
                for iv in face_plane(b, d, false) {
                    if !cba.contains(iv) {
                        faces.push((d, iv));
                    }
                }
            }
        }
        faces.sort_by_key(|(d, iv)| (*d, iv.z(), iv.y(), iv.x()));
        faces.dedup();
        let delta = faces.iter().map(|f| (*f, vec![0.0; ncomp])).collect();
        FluxRegister {
            ratio,
            ncomp,
            delta,
            faces,
        }
    }

    /// Number of interface faces being tracked.
    pub fn nfaces(&self) -> usize {
        self.faces.len()
    }

    /// Reset all accumulated flux differences to zero.
    pub fn reset(&mut self) {
        for v in self.delta.values_mut() {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// True if `(d, civ)` is a tracked interface face.
    pub fn is_interface(&self, d: usize, civ: IntVect) -> bool {
        self.delta.contains_key(&(d, civ))
    }

    /// Record the coarse flux through coarse face `(d, civ)` (subtracted).
    pub fn crse_add(&mut self, d: usize, civ: IntVect, flux: &[Real], scale: Real) {
        if let Some(acc) = self.delta.get_mut(&(d, civ)) {
            for c in 0..self.ncomp {
                acc[c] -= scale * flux[c];
            }
        }
    }

    /// Record a fine flux through fine face `(d, fiv)`; it is area-averaged
    /// onto its coarse parent face (added).
    pub fn fine_add(&mut self, d: usize, fiv: IntVect, flux: &[Real], scale: Real) {
        // The coarse face containing fine face (d, fiv): the normal index
        // divides exactly; transverse indices coarsen.
        let mut civ = fiv.coarsen(IntVect::splat(self.ratio));
        civ[d] = fiv[d].div_euclid(self.ratio);
        let area_frac = 1.0 / (self.ratio as Real).powi(2);
        if let Some(acc) = self.delta.get_mut(&(d, civ)) {
            for c in 0..self.ncomp {
                acc[c] += scale * flux[c] * area_frac;
            }
        }
    }

    /// Apply the correction to the coarse state: for each interface face,
    /// the *uncovered* coarse zone's update is repaired by
    /// `±(dt/dx_d) * (F_fine_avg - F_coarse)`. `dt_dx` supplies `dt/dx_d`
    /// per dimension. Zones covered by the fine level are skipped (they are
    /// overwritten by `average_down`).
    pub fn reflux(&self, coarse: &mut MultiFab, fine_ba: &BoxArray, dt_dx: [Real; 3]) {
        let cba_fine = fine_ba.coarsen(self.ratio);
        for &(d, civ) in &self.faces {
            let acc = &self.delta[&(d, civ)];
            let e = IntVect::dim_vec(d);
            let lo_zone = civ - e;
            let hi_zone = civ;
            // Exactly one side is uncovered by construction.
            let (zone, sign) = if cba_fine.contains(hi_zone) {
                (lo_zone, -1.0)
            } else {
                (hi_zone, 1.0)
            };
            for i in 0..coarse.nfabs() {
                if coarse.valid_box(i).contains(zone) {
                    for c in 0..self.ncomp {
                        let v = coarse.fab(i).get(zone, c) + sign * dt_dx[d] * acc[c];
                        coarse.fab_mut(i).set(zone, c, v);
                    }
                    break;
                }
            }
        }
    }
}

/// The coarse face indices of one side of box `b` in dimension `d`:
/// `low = true` gives the faces below `b`'s first zone plane (face index =
/// that zone), `low = false` the faces above its last zone plane.
fn face_plane(b: exastro_parallel::IndexBox, d: usize, low: bool) -> Vec<IntVect> {
    let mut out = Vec::new();
    let (lo, hi) = (b.lo(), b.hi());
    let plane = if low { lo[d] } else { hi[d] + 1 };
    let mut iv = lo;
    iv[d] = plane;
    let mut hi2 = hi;
    hi2[d] = plane;
    let pb = exastro_parallel::IndexBox::new(iv, hi2);
    for z in pb.iter() {
        out.push(z);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionMapping;
    use exastro_parallel::IndexBox;

    fn fine_ba() -> BoxArray {
        // One fine box covering coarse zones [2,5]^3 at ratio 2.
        BoxArray::from_boxes(vec![IndexBox::new(IntVect::splat(4), IntVect::splat(11))])
    }

    #[test]
    fn face_count_is_surface_area() {
        let fr = FluxRegister::new(&fine_ba(), 2, 1);
        // Coarse image is a 4^3 cube: 6 faces of 16 coarse faces each.
        assert_eq!(fr.nfaces(), 6 * 16);
    }

    #[test]
    fn matching_fluxes_cancel() {
        let mut fr = FluxRegister::new(&fine_ba(), 2, 1);
        let ba = BoxArray::decompose(IndexBox::cube(8), 8, 8);
        let dm = DistributionMapping::all_local(&ba);
        let mut state = MultiFab::new(ba, dm, 1, 0);
        state.set_val(0, 1.0);
        // Constant flux F=3 through every face, both coarse and fine.
        for &(d, civ) in fr.faces.clone().iter() {
            fr.crse_add(d, civ, &[3.0], 1.0);
        }
        // Each coarse face has ratio^2 fine faces.
        for &(d, civ) in fr.faces.clone().iter() {
            for fiv in fine_faces_of(d, civ, 2) {
                fr.fine_add(d, fiv, &[3.0], 1.0);
            }
        }
        let before = state.sum(0);
        fr.reflux(&mut state, &fine_ba(), [0.1; 3]);
        assert_eq!(
            state.sum(0),
            before,
            "identical fluxes must not change state"
        );
    }

    fn fine_faces_of(d: usize, civ: IntVect, r: i32) -> Vec<IntVect> {
        let mut out = Vec::new();
        let mut t = [0usize; 2];
        let mut n = 0;
        for dd in 0..3 {
            if dd != d {
                t[n] = dd;
                n += 1;
            }
        }
        for a in 0..r {
            for b in 0..r {
                let mut f = civ;
                f[d] = civ[d] * r;
                f[t[0]] = civ[t[0]] * r + a;
                f[t[1]] = civ[t[1]] * r + b;
                out.push(f);
            }
        }
        out
    }

    #[test]
    fn reflux_conserves_total() {
        // If the fine flux differs from the coarse flux on the interface,
        // reflux changes uncovered zones by exactly the flux mismatch. The
        // *total* of (uncovered correction) must equal the net interface
        // mismatch: with a uniform mismatch the corrections on opposite
        // faces cancel in the sum.
        let mut fr = FluxRegister::new(&fine_ba(), 2, 1);
        let ba = BoxArray::decompose(IndexBox::cube(8), 8, 8);
        let mut state = MultiFab::local(ba, 1, 0);
        state.set_val(0, 5.0);
        for &(d, civ) in fr.faces.clone().iter() {
            fr.crse_add(d, civ, &[1.0], 1.0);
            for fiv in fine_faces_of(d, civ, 2) {
                fr.fine_add(d, fiv, &[2.0], 1.0); // fine flux disagrees
            }
        }
        let before = state.sum(0);
        fr.reflux(&mut state, &fine_ba(), [0.25; 3]);
        // Uniform mismatch δF=1 on all faces: +dt/dx on each low-side
        // uncovered zone, -dt/dx on each high-side: net zero.
        assert!((state.sum(0) - before).abs() < 1e-12);
        // But individual zones did change: δF = +1 in the +x sense, so the
        // zone below the fine region loses through its high face and the
        // zone above gains through its low face.
        let probe = IntVect::new(1, 3, 3); // zone just below the fine region in x
        assert!((state.value_at(probe, 0) - (5.0 - 0.25)).abs() < 1e-12);
        let probe_hi = IntVect::new(6, 3, 3);
        assert!((state.value_at(probe_hi, 0) - (5.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn interior_faces_not_tracked() {
        let fr = FluxRegister::new(&fine_ba(), 2, 1);
        // A face in the middle of the fine region is not an interface.
        assert!(!fr.is_interface(0, IntVect::splat(4)));
        // A face on the boundary is.
        assert!(fr.is_interface(0, IntVect::new(2, 3, 3)));
    }

    #[test]
    fn two_adjacent_fine_boxes_share_no_interface() {
        let ba = BoxArray::from_boxes(vec![
            IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
            IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(15, 7, 7)),
        ]);
        let fr = FluxRegister::new(&ba, 2, 1);
        // The plane x=4 (coarse) between the boxes is interior.
        assert!(!fr.is_interface(0, IntVect::new(4, 1, 1)));
        // Outer surface: 2x1x1 arrangement of 4^3 cubes = surface 2*(4*4)*... :
        // total faces = 2*(16) (x ends) + 2*(8*4)(y) + 2*(8*4)(z) = 32+64+64
        assert_eq!(fr.nfaces(), 160);
    }
}
