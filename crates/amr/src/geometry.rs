//! Problem geometry: the mapping between index space and physical space.

use exastro_parallel::{IndexBox, IntVect, Real, SPACEDIM};

/// Coordinate system. The astro codes support Cartesian and axisymmetric
/// cylindrical (used for the 2-D white-dwarf merger studies, §V); this
/// reproduction implements Cartesian volumes and exposes the coordinate tag
/// for problem setups that need it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordSys {
    /// Cartesian x/y/z.
    Cartesian,
    /// Axisymmetric r/z (2-D); the third index is degenerate.
    CylindricalRZ,
}

/// Geometry of one refinement level: index-space domain, physical extent,
/// periodicity, and coordinate system.
#[derive(Clone, Debug)]
pub struct Geometry {
    domain: IndexBox,
    prob_lo: [Real; SPACEDIM],
    prob_hi: [Real; SPACEDIM],
    periodic: [bool; SPACEDIM],
    coord: CoordSys,
    dx: [Real; SPACEDIM],
}

impl Geometry {
    /// Create a geometry for `domain` spanning `[prob_lo, prob_hi]`.
    pub fn new(
        domain: IndexBox,
        prob_lo: [Real; SPACEDIM],
        prob_hi: [Real; SPACEDIM],
        periodic: [bool; SPACEDIM],
        coord: CoordSys,
    ) -> Self {
        assert!(!domain.is_empty(), "geometry domain must be non-empty");
        let size = domain.size();
        let mut dx = [0.0; SPACEDIM];
        for d in 0..SPACEDIM {
            assert!(
                prob_hi[d] > prob_lo[d],
                "prob_hi must exceed prob_lo in dim {d}"
            );
            dx[d] = (prob_hi[d] - prob_lo[d]) / size[d] as Real;
        }
        Geometry {
            domain,
            prob_lo,
            prob_hi,
            periodic,
            coord,
            dx,
        }
    }

    /// Convenience: a fully periodic cubic Cartesian unit-ish domain.
    pub fn cube(n: i32, width: Real, periodic: bool) -> Self {
        Geometry::new(
            IndexBox::cube(n),
            [0.0; SPACEDIM],
            [width; SPACEDIM],
            [periodic; SPACEDIM],
            CoordSys::Cartesian,
        )
    }

    /// The index-space domain box.
    pub fn domain(&self) -> IndexBox {
        self.domain
    }

    /// Zone width in each dimension.
    pub fn dx(&self) -> [Real; SPACEDIM] {
        self.dx
    }

    /// Smallest zone width over the dimensions.
    pub fn min_dx(&self) -> Real {
        self.dx.iter().copied().fold(Real::INFINITY, Real::min)
    }

    /// Physical lower corner.
    pub fn prob_lo(&self) -> [Real; SPACEDIM] {
        self.prob_lo
    }

    /// Physical upper corner.
    pub fn prob_hi(&self) -> [Real; SPACEDIM] {
        self.prob_hi
    }

    /// Physical domain extent per dimension.
    pub fn prob_length(&self, d: usize) -> Real {
        self.prob_hi[d] - self.prob_lo[d]
    }

    /// Periodicity flags.
    pub fn periodic(&self) -> [bool; SPACEDIM] {
        self.periodic
    }

    /// True if any dimension is periodic.
    pub fn any_periodic(&self) -> bool {
        self.periodic.iter().any(|&p| p)
    }

    /// Coordinate system tag.
    pub fn coord(&self) -> CoordSys {
        self.coord
    }

    /// Physical coordinates of the *center* of zone `iv`.
    #[inline]
    pub fn cell_center(&self, iv: IntVect) -> [Real; SPACEDIM] {
        let mut x = [0.0; SPACEDIM];
        for d in 0..SPACEDIM {
            x[d] = self.prob_lo[d] + (iv[d] as Real + 0.5) * self.dx[d];
        }
        x
    }

    /// Physical coordinates of the lower corner of zone `iv`.
    #[inline]
    pub fn cell_lo(&self, iv: IntVect) -> [Real; SPACEDIM] {
        let mut x = [0.0; SPACEDIM];
        for d in 0..SPACEDIM {
            x[d] = self.prob_lo[d] + iv[d] as Real * self.dx[d];
        }
        x
    }

    /// Zone volume (Cartesian).
    pub fn cell_volume(&self) -> Real {
        self.dx[0] * self.dx[1] * self.dx[2]
    }

    /// The geometry of the next finer level (same physical extent, `ratio`×
    /// the zones).
    pub fn refine(&self, ratio: i32) -> Geometry {
        Geometry::new(
            self.domain.refine(ratio),
            self.prob_lo,
            self.prob_hi,
            self.periodic,
            self.coord,
        )
    }

    /// The index shifts that map a box onto its periodic images, including
    /// the identity shift. Non-periodic dimensions contribute no shifts.
    pub fn periodic_shifts(&self) -> Vec<IntVect> {
        let n = self.domain.size();
        let mut shifts = vec![IntVect::zero()];
        for d in 0..SPACEDIM {
            if self.periodic[d] {
                let mut extended = Vec::new();
                for s in &shifts {
                    let mut plus = *s;
                    plus[d] += n[d];
                    let mut minus = *s;
                    minus[d] -= n[d];
                    extended.push(plus);
                    extended.push(minus);
                }
                shifts.extend(extended);
            }
        }
        shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dx_and_centers() {
        let g = Geometry::cube(10, 1.0, false);
        assert!((g.dx()[0] - 0.1).abs() < 1e-15);
        let c = g.cell_center(IntVect::zero());
        assert!((c[0] - 0.05).abs() < 1e-15);
        let c = g.cell_center(IntVect::splat(9));
        assert!((c[2] - 0.95).abs() < 1e-15);
        assert!((g.cell_volume() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn refine_preserves_extent() {
        let g = Geometry::cube(8, 2.0, true);
        let f = g.refine(4);
        assert_eq!(f.domain().num_zones(), 8 * 8 * 8 * 64);
        assert!((f.dx()[0] - g.dx()[0] / 4.0).abs() < 1e-15);
        assert_eq!(f.prob_hi(), g.prob_hi());
    }

    #[test]
    fn periodic_shift_count() {
        let g = Geometry::cube(4, 1.0, true);
        assert_eq!(g.periodic_shifts().len(), 27);
        let g = Geometry::cube(4, 1.0, false);
        assert_eq!(g.periodic_shifts().len(), 1);
        let g = Geometry::new(
            IndexBox::cube(4),
            [0.0; 3],
            [1.0; 3],
            [true, false, false],
            CoordSys::Cartesian,
        );
        assert_eq!(g.periodic_shifts().len(), 3);
    }
}
