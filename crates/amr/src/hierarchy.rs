//! The multi-level AMR hierarchy: levels, regridding, and fill-patch.

use crate::boxarray::BoxArray;
use crate::cluster::{cluster, ClusterParams};
use crate::distribution::{DistStrategy, DistributionMapping};
use crate::geometry::Geometry;
use crate::multifab::{BcSpec, MultiFab};
use exastro_parallel::{IntVect, Real};

/// One refinement level: geometry, grids, and their distribution.
#[derive(Clone, Debug)]
pub struct AmrLevel {
    /// The level geometry (domain refined from the base).
    pub geom: Geometry,
    /// Grids at this level.
    pub ba: BoxArray,
    /// Box → rank assignment.
    pub dm: DistributionMapping,
    /// Refinement ratio to the next *coarser* level (1 at the base).
    pub ratio_to_coarser: i32,
}

/// A static description of an AMR grid hierarchy. State data lives outside
/// (each code stores its own `MultiFab`s per level); the hierarchy owns the
/// mesh: geometries, box arrays, and distribution maps.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<AmrLevel>,
    nranks: usize,
    strategy: DistStrategy,
    max_grid_size: i32,
}

impl Hierarchy {
    /// Create a single-level hierarchy covering `geom`'s domain.
    pub fn single_level(
        geom: Geometry,
        max_grid_size: i32,
        blocking_factor: i32,
        nranks: usize,
        strategy: DistStrategy,
    ) -> Self {
        let ba = BoxArray::decompose(geom.domain(), max_grid_size, blocking_factor);
        let dm = DistributionMapping::new(&ba, nranks, strategy);
        Hierarchy {
            levels: vec![AmrLevel {
                geom,
                ba,
                dm,
                ratio_to_coarser: 1,
            }],
            nranks,
            strategy,
            max_grid_size,
        }
    }

    /// Rebuild a hierarchy from explicit levels (the checkpoint-restore
    /// path: the mesh comes from disk, not from decomposition/regridding).
    /// `levels` must be coarsest-first with base `ratio_to_coarser == 1`.
    /// Subsequent [`Hierarchy::regrid`] calls use the given distribution
    /// parameters.
    pub fn from_levels(
        levels: Vec<AmrLevel>,
        nranks: usize,
        strategy: DistStrategy,
        max_grid_size: i32,
    ) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        assert_eq!(
            levels[0].ratio_to_coarser, 1,
            "base level has no coarser level"
        );
        Hierarchy {
            levels,
            nranks,
            strategy,
            max_grid_size,
        }
    }

    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// Level `l` (0 = coarsest).
    pub fn level(&self, l: usize) -> &AmrLevel {
        &self.levels[l]
    }

    /// All levels.
    pub fn levels(&self) -> &[AmrLevel] {
        &self.levels
    }

    /// Total zones over all levels.
    pub fn total_zones(&self) -> i64 {
        self.levels.iter().map(|l| l.ba.total_zones()).sum()
    }

    /// Add (or replace) the level above `base_level` from a set of tagged
    /// zones in `base_level`'s index space. Any finer levels are dropped
    /// (regridding proceeds coarse-to-fine). Returns the new level index,
    /// or `None` if there were no tags.
    pub fn regrid(
        &mut self,
        base_level: usize,
        tags: &[IntVect],
        ratio: i32,
        params: &ClusterParams,
    ) -> Option<usize> {
        self.levels.truncate(base_level + 1);
        if tags.is_empty() {
            return None;
        }
        let coarse = &self.levels[base_level];
        let coarse_boxes = cluster(tags, params);
        // Clip to the coarse domain, refine into the fine index space, and
        // re-chop to the max grid size.
        let mut fine_boxes = Vec::new();
        for b in coarse_boxes {
            let clipped = b.intersection(&coarse.geom.domain());
            if clipped.is_empty() {
                continue;
            }
            let fine = clipped.refine(ratio);
            let sub = BoxArray::decompose(fine, self.max_grid_size, params.blocking_factor);
            fine_boxes.extend(sub.iter().copied());
        }
        if fine_boxes.is_empty() {
            return None;
        }
        let ba = BoxArray::from_boxes(fine_boxes);
        let dm = DistributionMapping::new(&ba, self.nranks, self.strategy);
        let geom = coarse.geom.refine(ratio);
        self.levels.push(AmrLevel {
            geom,
            ba,
            dm,
            ratio_to_coarser: ratio,
        });
        Some(self.levels.len() - 1)
    }

    /// Allocate a zero multifab on level `l`.
    pub fn make_multifab(&self, l: usize, ncomp: usize, ngrow: i32) -> MultiFab {
        let lev = &self.levels[l];
        MultiFab::new(lev.ba.clone(), lev.dm.clone(), ncomp, ngrow)
    }
}

/// Monotonized-central limited slope.
#[inline]
fn mc_slope(vm: Real, v0: Real, vp: Real) -> Real {
    let dc = 0.5 * (vp - vm);
    let dl = 2.0 * (v0 - vm);
    let dr = 2.0 * (vp - v0);
    if dl * dr <= 0.0 {
        0.0
    } else {
        dc.abs().min(dl.abs()).min(dr.abs()) * dc.signum()
    }
}

/// Fill `fine`'s ghost zones (and any valid zones not covered — none, by
/// construction) from: (1) same-level neighbour exchange, (2) conservative
/// linear interpolation from `coarse` where no fine data exists, and (3)
/// physical boundary conditions at domain edges.
///
/// `coarse` must carry at least one ghost zone; its ghosts are filled here.
/// This is the AMReX `FillPatchTwoLevels` pattern used before every fine-
/// level advance.
pub fn fill_patch_two_levels(
    fine: &mut MultiFab,
    fine_geom: &Geometry,
    coarse: &mut MultiFab,
    coarse_geom: &Geometry,
    ratio: i32,
    bc: &BcSpec,
) {
    assert!(coarse.ngrow() >= 1);
    // Intra-level traces are priced by the drivers' own step exchanges; the
    // fill_patch fills are inter-level plumbing and deliberately untraced.
    let _ = coarse.fill_boundary(coarse_geom);
    coarse.fill_physical_bc(coarse_geom, bc);
    let _ = fine.fill_boundary(fine_geom);

    let ncomp = fine.ncomp();
    let fine_domain = fine_geom.domain();
    let r = ratio as Real;
    // Ghost zones covered by fine valid data were handled by fill_boundary;
    // interpolate the rest from the coarse level.
    for fi in 0..fine.nfabs() {
        let vb = fine.valid_box(fi);
        let gb = fine.grown_box(fi);
        let mut targets: Vec<IntVect> = Vec::new();
        for iv in gb.iter() {
            if vb.contains(iv) || !fine_domain.contains(iv) {
                continue;
            }
            if fine.box_array().contains(iv) {
                continue; // same-level data already copied
            }
            targets.push(iv);
        }
        for fiv in targets {
            let civ = fiv.coarsen(IntVect::splat(ratio));
            // Locate the coarse fab whose valid box holds civ.
            let mut val = [0.0; 64];
            let mut found = false;
            for ci in 0..coarse.nfabs() {
                if !coarse.valid_box(ci).contains(civ) {
                    continue;
                }
                let cfab = coarse.fab(ci);
                for c in 0..ncomp {
                    let v0 = cfab.get(civ, c);
                    let mut v = v0;
                    for d in 0..3 {
                        let e = IntVect::dim_vec(d);
                        let s = mc_slope(cfab.get(civ - e, c), v0, cfab.get(civ + e, c));
                        let frac = ((fiv[d] - civ[d] * ratio) as Real + 0.5) / r - 0.5;
                        v += s * frac;
                    }
                    val[c] = v;
                }
                found = true;
                break;
            }
            assert!(
                found,
                "fill_patch: coarse zone {civ:?} (for fine ghost {fiv:?}) not found; \
                 fine levels must be properly nested"
            );
            for c in 0..ncomp {
                fine.fab_mut(fi).set(fiv, c, val[c]);
            }
        }
    }
    fine.fill_physical_bc(fine_geom, bc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_parallel::IndexBox;

    #[test]
    fn single_level_covers_domain() {
        let h =
            Hierarchy::single_level(Geometry::cube(64, 1.0, true), 32, 16, 4, DistStrategy::Sfc);
        assert_eq!(h.nlevels(), 1);
        assert_eq!(h.total_zones(), 64 * 64 * 64);
        assert_eq!(h.level(0).ba.len(), 8);
    }

    #[test]
    fn regrid_creates_nested_fine_level() {
        let mut h = Hierarchy::single_level(
            Geometry::cube(32, 1.0, true),
            16,
            4,
            1,
            DistStrategy::RoundRobin,
        );
        // Tag a central blob.
        let tags: Vec<IntVect> = IndexBox::new(IntVect::splat(12), IntVect::splat(19))
            .iter()
            .collect();
        let l = h.regrid(0, &tags, 2, &ClusterParams::default());
        assert_eq!(l, Some(1));
        assert_eq!(h.nlevels(), 2);
        let fine = h.level(1);
        assert_eq!(fine.ratio_to_coarser, 2);
        // Fine grids nested within the refined tag region.
        for b in fine.ba.iter() {
            assert!(h.level(0).geom.domain().refine(2).contains_box(b));
            for t in &tags {
                let _ = t;
            }
        }
        // Every tag is covered by the fine level (after coarsening back).
        for t in &tags {
            assert!(fine.ba.coarsen(2).contains(*t), "tag {t:?} uncovered");
        }
        // Refined geometry has half the zone width.
        assert!((fine.geom.dx()[0] - h.level(0).geom.dx()[0] / 2.0).abs() < 1e-15);
    }

    #[test]
    fn regrid_with_no_tags_drops_fine_levels() {
        let mut h = Hierarchy::single_level(
            Geometry::cube(32, 1.0, true),
            16,
            4,
            1,
            DistStrategy::RoundRobin,
        );
        let tags: Vec<IntVect> = IndexBox::cube(8).iter().collect();
        h.regrid(0, &tags, 2, &ClusterParams::default());
        assert_eq!(h.nlevels(), 2);
        h.regrid(0, &[], 2, &ClusterParams::default());
        assert_eq!(h.nlevels(), 1);
    }

    #[test]
    fn fill_patch_interpolates_smooth_field() {
        let cgeom = Geometry::cube(16, 1.0, true);
        let mut h = Hierarchy::single_level(cgeom.clone(), 16, 4, 1, DistStrategy::RoundRobin);
        let tags: Vec<IntVect> = IndexBox::new(IntVect::splat(4), IntVect::splat(11))
            .iter()
            .collect();
        h.regrid(
            0,
            &tags,
            2,
            &ClusterParams {
                max_size: 16,
                min_efficiency: 0.5,
                blocking_factor: 4,
            },
        );
        let fgeom = h.level(1).geom.clone();
        let mut coarse = h.make_multifab(0, 1, 1);
        let mut fine = h.make_multifab(1, 1, 2);
        // A linear function of physical position is reproduced exactly by
        // conservative linear interpolation.
        let f = |x: [Real; 3]| 3.0 * x[0] - 2.0 * x[1] + 0.5 * x[2];
        for i in 0..coarse.nfabs() {
            let vb = coarse.valid_box(i);
            for iv in vb.iter() {
                let v = f(cgeom.cell_center(iv));
                coarse.fab_mut(i).set(iv, 0, v);
            }
        }
        for i in 0..fine.nfabs() {
            let vb = fine.valid_box(i);
            for iv in vb.iter() {
                let v = f(fgeom.cell_center(iv));
                fine.fab_mut(i).set(iv, 0, v);
            }
        }
        fill_patch_two_levels(
            &mut fine,
            &fgeom,
            &mut coarse,
            &cgeom,
            2,
            &BcSpec::periodic(),
        );
        // Every fine ghost zone inside the domain now matches the analytic
        // linear field (coarse interp of a linear function is exact; note
        // periodic wrap makes the *field* discontinuous at the domain edge,
        // so only check ghosts interior to the domain).
        for i in 0..fine.nfabs() {
            let vb = fine.valid_box(i);
            let gb = fine.grown_box(i);
            for iv in gb.iter() {
                if vb.contains(iv) || !fgeom.domain().contains(iv) {
                    continue;
                }
                let expect = f(fgeom.cell_center(iv));
                let got = fine.fab(i).get(iv, 0);
                assert!(
                    (got - expect).abs() < 1e-12,
                    "ghost {iv:?}: {got} vs {expect}"
                );
            }
        }
    }
}
