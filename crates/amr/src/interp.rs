//! Inter-level transfer operators: conservative prolongation (coarse → fine)
//! and restriction / average-down (fine → coarse).

use crate::multifab::MultiFab;
use exastro_parallel::{IntVect, Real};

/// Piecewise-constant injection: every fine zone gets its coarse parent's
/// value. Exactly conservative and positivity-preserving.
pub fn prolong_pc(coarse: &MultiFab, fine: &mut MultiFab, ratio: i32) {
    assert_eq!(coarse.ncomp(), fine.ncomp());
    let ncomp = fine.ncomp();
    for fi in 0..fine.nfabs() {
        let fvb = fine.valid_box(fi);
        let cvb = fvb.coarsen(ratio);
        for ci in 0..coarse.nfabs() {
            let isect = cvb.intersection(&coarse.valid_box(ci));
            if isect.is_empty() {
                continue;
            }
            for civ in isect.iter() {
                let fregion = crate::fine_zones_of(civ, ratio).intersection(&fvb);
                for c in 0..ncomp {
                    let v = coarse.fab(ci).get(civ, c);
                    for fiv in fregion.iter() {
                        fine.fab_mut(fi).set(fiv, c, v);
                    }
                }
            }
        }
    }
}

/// Monotonized-central slope used by the linear prolongation.
#[inline]
fn mc_slope(vm: Real, v0: Real, vp: Real) -> Real {
    let dc = 0.5 * (vp - vm);
    let dl = 2.0 * (v0 - vm);
    let dr = 2.0 * (vp - v0);
    if dl * dr <= 0.0 {
        0.0
    } else {
        dc.abs().min(dl.abs()).min(dr.abs()) * dc.signum()
    }
}

/// Piecewise-linear conservative prolongation with limited slopes, the
/// default AMReX `cell_cons_interp`. The coarse multifab must have at least
/// one ghost zone filled so slopes can be computed at patch edges.
pub fn prolong_lin(coarse: &MultiFab, fine: &mut MultiFab, ratio: i32) {
    assert_eq!(coarse.ncomp(), fine.ncomp());
    assert!(
        coarse.ngrow() >= 1,
        "linear prolongation needs coarse ghosts"
    );
    let ncomp = fine.ncomp();
    let r = ratio as Real;
    for fi in 0..fine.nfabs() {
        let fvb = fine.valid_box(fi);
        let cvb = fvb.coarsen(ratio);
        for ci in 0..coarse.nfabs() {
            let isect = cvb.intersection(&coarse.valid_box(ci));
            if isect.is_empty() {
                continue;
            }
            let cfab = coarse.fab(ci);
            for civ in isect.iter() {
                let fregion = crate::fine_zones_of(civ, ratio).intersection(&fvb);
                for c in 0..ncomp {
                    let v0 = cfab.get(civ, c);
                    let mut slope = [0.0; 3];
                    for d in 0..3 {
                        let e = IntVect::dim_vec(d);
                        slope[d] = mc_slope(cfab.get(civ - e, c), v0, cfab.get(civ + e, c));
                    }
                    for fiv in fregion.iter() {
                        // Offset of the fine zone centre within the coarse
                        // zone, in coarse-zone units, in (-1/2, 1/2).
                        let mut v = v0;
                        for d in 0..3 {
                            let frac = ((fiv[d] - civ[d] * ratio) as Real + 0.5) / r - 0.5;
                            v += slope[d] * frac;
                        }
                        fine.fab_mut(fi).set(fiv, c, v);
                    }
                }
            }
        }
    }
}

/// Volume-weighted average of fine zones onto their coarse parents
/// (restriction). Exactly undoes both prolongations for conserved fields.
pub fn average_down(fine: &MultiFab, coarse: &mut MultiFab, ratio: i32) {
    assert_eq!(coarse.ncomp(), fine.ncomp());
    let ncomp = fine.ncomp();
    let inv_vol = 1.0 / (ratio as Real).powi(3);
    for ci in 0..coarse.nfabs() {
        let cvb = coarse.valid_box(ci);
        for fi in 0..fine.nfabs() {
            let fvb = fine.valid_box(fi);
            let overlap = cvb.intersection(&fvb.coarsen(ratio));
            if overlap.is_empty() {
                continue;
            }
            for civ in overlap.iter() {
                let fregion = crate::fine_zones_of(civ, ratio).intersection(&fvb);
                for c in 0..ncomp {
                    let mut acc = 0.0;
                    for fiv in fregion.iter() {
                        acc += fine.fab(fi).get(fiv, c);
                    }
                    coarse.fab_mut(ci).set(civ, c, acc * inv_vol);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxarray::BoxArray;
    use crate::geometry::Geometry;
    use exastro_parallel::IndexBox;

    fn setup(ratio: i32) -> (MultiFab, MultiFab, Geometry) {
        let cgeom = Geometry::cube(8, 1.0, true);
        let cba = BoxArray::decompose(cgeom.domain(), 8, 8);
        let coarse = MultiFab::local(cba.clone(), 1, 1);
        let fba = cba.refine(ratio);
        let fine = MultiFab::local(fba, 1, 0);
        (coarse, fine, cgeom)
    }

    #[test]
    fn pc_prolong_then_average_down_roundtrips() {
        let (mut coarse, mut fine, _g) = setup(2);
        for iv in IndexBox::cube(8).iter() {
            coarse
                .fab_mut(0)
                .set(iv, 0, (iv.x() * 3 + iv.y() - iv.z()) as Real);
        }
        prolong_pc(&coarse, &mut fine, 2);
        let mut back = coarse.clone();
        back.set_val(0, 0.0);
        average_down(&fine, &mut back, 2);
        for iv in IndexBox::cube(8).iter() {
            assert_eq!(back.fab(0).get(iv, 0), coarse.fab(0).get(iv, 0));
        }
    }

    #[test]
    fn lin_prolong_is_conservative() {
        let (mut coarse, mut fine, geom) = setup(4);
        for iv in IndexBox::cube(8).iter() {
            let v = ((iv.x() as Real).sin() + (iv.y() as Real * 0.7).cos()) * 2.0;
            coarse.fab_mut(0).set(iv, 0, v);
        }
        let _ = coarse.fill_boundary(&geom);
        prolong_lin(&coarse, &mut fine, 4);
        // Conservation: sum over fine = ratio^3 * sum over coarse.
        let cs = coarse.sum(0);
        let fs = fine.sum(0);
        assert!(
            (fs - 64.0 * cs).abs() < 1e-9 * cs.abs().max(1.0),
            "{fs} vs {}",
            64.0 * cs
        );
        // And average_down recovers the coarse data exactly.
        let mut back = coarse.clone();
        back.set_val(0, 0.0);
        average_down(&fine, &mut back, 4);
        for iv in IndexBox::cube(8).iter() {
            assert!((back.fab(0).get(iv, 0) - coarse.fab(0).get(iv, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn lin_prolong_reproduces_linear_fields_exactly() {
        let (mut coarse, mut fine, geom) = setup(2);
        // A globally linear field should be reproduced exactly (away from
        // limiter activation, which a linear field never triggers).
        for iv in IndexBox::cube(8).grow(1).iter() {
            coarse
                .fab_mut(0)
                .set(iv, 0, 2.0 * iv.x() as Real + 0.5 * iv.y() as Real);
        }
        let _ = geom;
        prolong_lin(&coarse, &mut fine, 2);
        // Fine zone (i,j,k) centre sits at coarse coordinate (i+0.5)/2 etc.
        for fiv in IndexBox::cube(16).iter() {
            let xc = (fiv.x() as Real + 0.5) / 2.0 - 0.5;
            let yc = (fiv.y() as Real + 0.5) / 2.0 - 0.5;
            let expect = 2.0 * xc + 0.5 * yc;
            let got = fine.fab(0).get(fiv, 0);
            assert!((got - expect).abs() < 1e-12, "{fiv:?}: {got} vs {expect}");
        }
    }

    #[test]
    fn limiter_preserves_monotonicity_at_jumps() {
        let (mut coarse, mut fine, geom) = setup(2);
        // Step function in x.
        for iv in IndexBox::cube(8).grow(1).iter() {
            let v = if iv.x() < 4 { 1.0 } else { 10.0 };
            coarse.fab_mut(0).set(iv, 0, v);
        }
        let _ = geom;
        prolong_lin(&coarse, &mut fine, 2);
        let (mn, mx) = (fine.min(0), fine.max(0));
        assert!(
            mn >= 1.0 - 1e-12 && mx <= 10.0 + 1e-12,
            "overshoot: {mn} {mx}"
        );
    }
}
