//! Checkpoint and plotfile I/O.
//!
//! In the GPU-resident design, writing a checkpoint is one of only two
//! places data crosses back to the host ("When we write a checkpoint file,
//! it involves making a copy to CPU memory, not migrating the data", §III).
//! The format here is a simple self-describing directory — a `Header` text
//! file in the spirit of AMReX plotfiles plus one little-endian binary blob
//! per fab — sufficient for restart round-trips and offline analysis.

use crate::boxarray::BoxArray;
use crate::distribution::DistributionMapping;
use crate::geometry::{CoordSys, Geometry};
use crate::multifab::MultiFab;
use exastro_parallel::{IndexBox, IntVect, Real};
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// I/O errors.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed header or payload.
    Format(String),
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            IoError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

fn write_box(w: &mut impl Write, b: IndexBox) -> Result<(), IoError> {
    writeln!(
        w,
        "{} {} {} {} {} {}",
        b.lo().x(),
        b.lo().y(),
        b.lo().z(),
        b.hi().x(),
        b.hi().y(),
        b.hi().z()
    )?;
    Ok(())
}

fn parse_box(line: &str) -> Result<IndexBox, IoError> {
    let v: Vec<i32> = line
        .split_whitespace()
        .map(|t| t.parse::<i32>())
        .collect::<Result<_, _>>()
        .map_err(|e| IoError::Format(format!("bad box line '{line}': {e}")))?;
    if v.len() != 6 {
        return Err(IoError::Format(format!("bad box line '{line}'")));
    }
    Ok(IndexBox::new(
        IntVect::new(v[0], v[1], v[2]),
        IntVect::new(v[3], v[4], v[5]),
    ))
}

/// Write `state` (with its geometry and simulation time) as a checkpoint
/// directory at `path`. Ghost zones are not stored; a restart refills them.
///
/// The write is atomic: everything is staged in a hidden sibling directory
/// with the payload blobs written *before* the `Header` (the header is the
/// commit record — a reader never sees a header pointing at absent blobs),
/// fsynced, and renamed into place. A crash at any point leaves either the
/// old checkpoint or an ignorable `.{name}.inflight.*` directory, never a
/// half-written `path`.
pub fn write_checkpoint(
    path: &Path,
    state: &MultiFab,
    geom: &Geometry,
    time: Real,
    variable_names: &[&str],
) -> Result<(), IoError> {
    assert_eq!(variable_names.len(), state.ncomp());
    let name = path
        .file_name()
        .ok_or_else(|| IoError::Format("checkpoint path has no file name".into()))?
        .to_string_lossy()
        .into_owned();
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(parent)?;
    let tmp = parent.join(format!(".{name}.inflight.{}", std::process::id()));
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    fs::create_dir_all(&tmp)?;

    // Payload first: one binary file per fab, valid-region data only,
    // component-major little-endian f64.
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        let mut f = BufWriter::new(fs::File::create(tmp.join(format!("fab_{i:05}.bin")))?);
        for c in 0..state.ncomp() {
            for iv in vb.iter() {
                f.write_all(&state.fab(i).get(iv, c).to_le_bytes())?;
            }
        }
        f.flush()?;
        f.get_ref().sync_all()?;
    }

    let mut h = BufWriter::new(fs::File::create(tmp.join("Header"))?);
    writeln!(h, "exastro-checkpoint-v1")?;
    writeln!(h, "time {time:e}")?;
    writeln!(h, "ncomp {}", state.ncomp())?;
    writeln!(h, "ngrow {}", state.ngrow())?;
    writeln!(h, "variables {}", variable_names.join(" "))?;
    writeln!(
        h,
        "prob_lo {:e} {:e} {:e}",
        geom.prob_lo()[0],
        geom.prob_lo()[1],
        geom.prob_lo()[2]
    )?;
    writeln!(
        h,
        "prob_hi {:e} {:e} {:e}",
        geom.prob_hi()[0],
        geom.prob_hi()[1],
        geom.prob_hi()[2]
    )?;
    writeln!(
        h,
        "periodic {} {} {}",
        geom.periodic()[0] as u8,
        geom.periodic()[1] as u8,
        geom.periodic()[2] as u8
    )?;
    writeln!(h, "domain")?;
    write_box(&mut h, geom.domain())?;
    writeln!(h, "nfabs {}", state.nfabs())?;
    for i in 0..state.nfabs() {
        write_box(&mut h, state.valid_box(i))?;
    }
    h.flush()?;
    h.get_ref().sync_all()?;
    if let Ok(d) = fs::File::open(&tmp) {
        let _ = d.sync_all();
    }

    // Publish: replace any previous checkpoint in one rename.
    if path.exists() {
        fs::remove_dir_all(path)?;
    }
    fs::rename(&tmp, path)?;
    if let Ok(d) = fs::File::open(parent) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A restored checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    /// The restored state (ghost zones zeroed; refill after restart).
    pub state: MultiFab,
    /// The restored geometry.
    pub geom: Geometry,
    /// Simulation time at the checkpoint.
    pub time: Real,
    /// Variable names.
    pub variables: Vec<String>,
}

/// Read a checkpoint directory written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, IoError> {
    let f = fs::File::open(path.join("Header"))?;
    let mut lines = BufReader::new(f).lines();
    let mut next = || -> Result<String, IoError> {
        lines
            .next()
            .ok_or_else(|| IoError::Format("truncated header".into()))?
            .map_err(IoError::Io)
    };
    let magic = next()?;
    if magic != "exastro-checkpoint-v1" {
        return Err(IoError::Format(format!("bad magic '{magic}'")));
    }
    let field = |line: String, key: &str| -> Result<String, IoError> {
        line.strip_prefix(key)
            .map(|s| s.trim().to_string())
            .ok_or_else(|| IoError::Format(format!("expected '{key}', got '{line}'")))
    };
    let time: Real = field(next()?, "time")?
        .parse()
        .map_err(|e| IoError::Format(format!("bad time: {e}")))?;
    let ncomp: usize = field(next()?, "ncomp")?
        .parse()
        .map_err(|e| IoError::Format(format!("bad ncomp: {e}")))?;
    let ngrow: i32 = field(next()?, "ngrow")?
        .parse()
        .map_err(|e| IoError::Format(format!("bad ngrow: {e}")))?;
    let variables: Vec<String> = field(next()?, "variables")?
        .split_whitespace()
        .map(String::from)
        .collect();
    let parse3 = |s: String| -> Result<[Real; 3], IoError> {
        let v: Vec<Real> = s
            .split_whitespace()
            .map(|t| t.parse::<Real>())
            .collect::<Result<_, _>>()
            .map_err(|e| IoError::Format(format!("bad triple: {e}")))?;
        if v.len() != 3 {
            return Err(IoError::Format("bad triple".into()));
        }
        Ok([v[0], v[1], v[2]])
    };
    let prob_lo = parse3(field(next()?, "prob_lo")?)?;
    let prob_hi = parse3(field(next()?, "prob_hi")?)?;
    let per = parse3(field(next()?, "periodic")?)?;
    let _ = field(next()?, "domain")?;
    let domain = parse_box(&next()?)?;
    let nfabs: usize = field(next()?, "nfabs")?
        .parse()
        .map_err(|e| IoError::Format(format!("bad nfabs: {e}")))?;
    let mut boxes = Vec::with_capacity(nfabs);
    for _ in 0..nfabs {
        boxes.push(parse_box(&next()?)?);
    }
    let geom = Geometry::new(
        domain,
        prob_lo,
        prob_hi,
        [per[0] != 0.0, per[1] != 0.0, per[2] != 0.0],
        CoordSys::Cartesian,
    );
    let ba = BoxArray::from_boxes(boxes);
    let dm = DistributionMapping::all_local(&ba);
    let mut state = MultiFab::new(ba, dm, ncomp, ngrow);
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        let blob = path.join(format!("fab_{i:05}.bin"));
        // The blob length is fully determined by the header: anything else
        // is a truncated or overgrown payload, i.e. a format violation.
        let expect = vb.num_zones() as u64 * ncomp as u64 * 8;
        let actual = fs::metadata(&blob)?.len();
        if actual != expect {
            return Err(IoError::Format(format!(
                "fab {i}: blob is {actual} bytes, header implies {expect}"
            )));
        }
        let mut f = BufReader::new(fs::File::open(&blob)?);
        let mut buf = [0u8; 8];
        for c in 0..ncomp {
            for iv in vb.iter() {
                f.read_exact(&mut buf)?;
                let v = Real::from_le_bytes(buf);
                if !v.is_finite() {
                    return Err(IoError::Format(format!(
                        "fab {i}: non-finite value {v} at {iv:?} comp {c}"
                    )));
                }
                state.fab_mut(i).set(iv, c, v);
            }
        }
    }
    Ok(Checkpoint {
        state,
        geom,
        time,
        variables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistStrategy;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("exastro_io_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything() {
        let geom = Geometry::cube(16, 2.5, true);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let dm = DistributionMapping::new(&ba, 3, DistStrategy::Sfc);
        let mut mf = MultiFab::new(ba, dm, 3, 2);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                for c in 0..3 {
                    let v = (iv.x() * 7 + iv.y() * 13 - iv.z() * 3 + c as i32 * 1000) as Real
                        * 1.0e-3
                        + 0.125;
                    mf.fab_mut(i).set(iv, c, v);
                }
            }
        }
        let dir = tmpdir("roundtrip");
        write_checkpoint(&dir, &mf, &geom, 3.75, &["rho", "mx", "eden"]).unwrap();
        let ck = read_checkpoint(&dir).unwrap();
        assert_eq!(ck.time, 3.75);
        assert_eq!(ck.variables, vec!["rho", "mx", "eden"]);
        assert_eq!(ck.geom.domain(), geom.domain());
        assert_eq!(ck.geom.prob_hi(), geom.prob_hi());
        assert_eq!(ck.geom.periodic(), geom.periodic());
        assert_eq!(ck.state.nfabs(), mf.nfabs());
        assert_eq!(ck.state.ncomp(), 3);
        assert_eq!(ck.state.ngrow(), 2);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            assert_eq!(ck.state.valid_box(i), vb);
            for iv in vb.iter() {
                for c in 0..3 {
                    assert_eq!(ck.state.fab(i).get(iv, c), mf.fab(i).get(iv, c));
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = tmpdir("badmagic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("Header"), "not-a-checkpoint\n").unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(IoError::Format(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    fn small_checkpoint(name: &str) -> std::path::PathBuf {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut mf = MultiFab::local(ba, 1, 0);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                mf.fab_mut(i).set(iv, 0, 1.0 + iv.x() as Real);
            }
        }
        let dir = tmpdir(name);
        write_checkpoint(&dir, &mf, &geom, 0.5, &["rho"]).unwrap();
        dir
    }

    #[test]
    fn write_leaves_no_inflight_directory() {
        let dir = small_checkpoint("atomic");
        let parent = dir.parent().unwrap();
        let leftovers: Vec<_> = fs::read_dir(parent)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".inflight."))
            .collect();
        assert!(leftovers.is_empty(), "staging dir leaked: {leftovers:?}");
        // Rewriting over an existing checkpoint also succeeds atomically.
        let ck = read_checkpoint(&dir).unwrap();
        write_checkpoint(&dir, &ck.state, &ck.geom, 1.0, &["rho"]).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().time, 1.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_header_is_a_format_error() {
        let dir = small_checkpoint("trunchdr");
        let header = fs::read_to_string(dir.join("Header")).unwrap();
        let cut: String = header.lines().take(3).collect::<Vec<_>>().join("\n");
        fs::write(dir.join("Header"), cut).unwrap();
        match read_checkpoint(&dir) {
            Err(IoError::Format(_)) => {}
            other => panic!("expected Format error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nfabs_mismatch_is_a_format_error() {
        let dir = small_checkpoint("nfabs");
        // Claim one more fab than there are box lines.
        let header = fs::read_to_string(dir.join("Header")).unwrap();
        let bumped = header.replace("nfabs 1", "nfabs 2");
        assert_ne!(bumped, header);
        fs::write(dir.join("Header"), bumped).unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(IoError::Format(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_and_oversized_blobs_are_format_errors() {
        let dir = small_checkpoint("blobsize");
        let blob = dir.join("fab_00000.bin");
        let good = fs::read(&blob).unwrap();
        // Short: a crashed writer's partial blob.
        fs::write(&blob, &good[..good.len() - 8]).unwrap();
        match read_checkpoint(&dir) {
            Err(IoError::Format(m)) => assert!(m.contains("bytes"), "{m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        // Oversized: stale bytes appended past the real payload.
        let mut long = good.clone();
        long.extend_from_slice(&[0u8; 16]);
        fs::write(&blob, long).unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(IoError::Format(_))));
        // Restored exactly → reads again.
        fs::write(&blob, good).unwrap();
        read_checkpoint(&dir).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_payload_is_a_format_error() {
        let dir = small_checkpoint("nonfinite");
        let blob = dir.join("fab_00000.bin");
        let mut data = fs::read(&blob).unwrap();
        data[0..8].copy_from_slice(&Real::NAN.to_le_bytes());
        fs::write(&blob, data).unwrap();
        match read_checkpoint(&dir) {
            Err(IoError::Format(m)) => assert!(m.contains("non-finite"), "{m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_payload_is_an_io_error() {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mf = MultiFab::local(ba, 1, 0);
        let dir = tmpdir("missing");
        write_checkpoint(&dir, &mf, &geom, 0.0, &["rho"]).unwrap();
        fs::remove_file(dir.join("fab_00000.bin")).unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(IoError::Io(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
