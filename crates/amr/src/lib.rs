//! # exastro-amr
//!
//! A block-structured adaptive-mesh-refinement framework in the style of
//! AMReX (Zhang et al. 2019), the substrate beneath Castro and MAESTROeX.
//!
//! * [`geometry`] — index-space ↔ physical-space mapping, periodicity;
//! * [`boxarray`] — domain decomposition into boxes (`max_grid_size` chop);
//! * [`distribution`] — box → rank assignment (round-robin / knapsack /
//!   Morton space-filling curve);
//! * [`fab`] — `FArrayBox` dense arrays and the `Array4` kernel views;
//! * [`multifab`] — the distributed field container, ghost-zone exchange
//!   with communication tracing, physical boundary conditions, reductions;
//! * [`interp`] — conservative prolongation and restriction;
//! * [`mod@cluster`] — error tagging → grid generation (Berger–Rigoutsos style);
//! * [`hierarchy`] — multi-level meshes, regridding, `fill_patch`;
//! * [`flux_register`] — conservation repair at coarse–fine boundaries.

#![warn(missing_docs)]
// Indexed loops over small fixed-extent arrays (species, dims, stencil
// points) are the house style in this numerical code; iterator rewrites
// obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod boxarray;
pub mod cluster;
pub mod distribution;
pub mod fab;
pub mod flux_register;
pub mod geometry;
pub mod hierarchy;
pub mod interp;
pub mod io;
pub mod multifab;

pub use boxarray::BoxArray;
pub use cluster::{cluster, ClusterParams};
pub use distribution::{DistStrategy, DistributionMapping};
pub use fab::{Array4, Array4Mut, FArrayBox};
pub use flux_register::FluxRegister;
pub use geometry::{CoordSys, Geometry};
pub use hierarchy::{fill_patch_two_levels, AmrLevel, Hierarchy};
pub use interp::{average_down, prolong_lin, prolong_pc};
pub use io::{read_checkpoint, write_checkpoint, Checkpoint, IoError};
pub use multifab::{apply_physical_bc, BcKind, BcSpec, CommTrace, Message, MultiFab, PendingComm};

// Re-export the index primitives so downstream crates have one import path.
pub use exastro_parallel::{IndexBox, IntVect, Real, SPACEDIM};

/// The box of fine zones covered by coarse zone `civ` at refinement `ratio`.
#[inline]
pub fn fine_zones_of(civ: IntVect, ratio: i32) -> IndexBox {
    let lo = civ.scale(IntVect::splat(ratio));
    IndexBox::new(lo, lo + IntVect::splat(ratio - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_zones_cover_refined_box() {
        let civ = IntVect::new(2, -1, 0);
        let fz = fine_zones_of(civ, 4);
        assert_eq!(fz.num_zones(), 64);
        assert_eq!(fz.lo(), IntVect::new(8, -4, 0));
        assert_eq!(fz.coarsen(4), IndexBox::new(civ, civ));
    }
}
