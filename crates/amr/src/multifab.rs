//! [`MultiFab`]: the core data container — one fab per box of a
//! [`BoxArray`], distributed over ranks by a [`DistributionMapping`].
//!
//! In a real MPI run each rank allocates only its own fabs; this
//! reproduction holds every fab in one address space (there is no MPI here)
//! but keeps the ownership information, and `fill_boundary` returns a
//! [`CommTrace`] recording exactly which rank pairs exchanged how many bytes.
//! The `exastro-machine` cluster simulator charges its network model from
//! these traces, so the communication volumes behind the weak-scaling
//! figures come from the *actual* ghost-exchange pattern of the real data.

use crate::boxarray::BoxArray;
use crate::distribution::DistributionMapping;
use crate::fab::{Array4Mut, FArrayBox};
use crate::geometry::Geometry;
use exastro_parallel::{
    par_each_mut, par_each_mut_bounded, par_index_each, par_map_fold, IndexBox, IntVect, Profiler,
    Real, WorkerPool, SPACEDIM,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One point-to-point message in a communication trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A record of the communication performed by one collective operation.
#[derive(Clone, Debug, Default)]
pub struct CommTrace {
    /// Off-rank messages (src != dst).
    pub messages: Vec<Message>,
    /// Bytes moved between boxes on the same rank (no network cost).
    pub local_bytes: u64,
}

impl CommTrace {
    /// Total bytes crossing the network.
    pub fn network_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Merge another trace into this one.
    pub fn merge(&mut self, other: &CommTrace) {
        self.messages.extend_from_slice(&other.messages);
        self.local_bytes += other.local_bytes;
    }

    /// Bytes sent by each rank (length `nranks`).
    pub fn bytes_sent_per_rank(&self, nranks: usize) -> Vec<u64> {
        let mut out = vec![0u64; nranks];
        for m in &self.messages {
            out[m.src] += m.bytes;
        }
        out
    }
}

/// One planned ghost-zone copy: fill `region` (destination index space) of
/// fab `dst` from fab `src`, reading `iv - shift` (periodic image shift).
#[derive(Clone, Copy, Debug)]
struct GhostOp {
    src: usize,
    dst: usize,
    region: IndexBox,
    shift: IntVect,
}

/// An in-flight ghost exchange: the first phase of the two-phase comm API.
///
/// Produced by [`MultiFab::post_fill_boundary`] (planned **and** packed — the
/// MPI-isend analogue) or [`MultiFab::plan_fill_boundary`] (planned only, for
/// task-graph callers that stage packing as tasks). Carries the partial
/// [`CommTrace`], priced at planning time: the exchange pattern depends only
/// on the box layout, so the trace is complete before any data moves and is
/// byte-identical to the bulk-synchronous trace.
///
/// Completion paths:
/// * [`PendingComm::wait`] — pack anything still pending, unpack every ghost
///   region into the target multifab, return the trace. `post` + `wait` is
///   exactly the old one-shot `fill_boundary`.
/// * [`PendingComm::pack_op`] / [`PendingComm::unpack_fab`] +
///   [`PendingComm::finish`] — per-task staging for the graph scheduler:
///   pack ops and per-fab unpacks become graph nodes with ghost-exchange
///   edges, and `finish` returns the trace once every op has completed.
///
/// Buffers are individually locked so graph tasks can pack/unpack disjoint
/// ops concurrently; per-destination unpacks apply ops in planning order, so
/// the result is bit-identical under any legal schedule.
#[must_use = "an unfinished exchange fills no ghosts and loses its CommTrace"]
pub struct PendingComm {
    ops: Vec<GhostOp>,
    bufs: Vec<Mutex<Vec<Real>>>,
    packed: Vec<AtomicBool>,
    /// Op indices targeting each destination fab, in planning order.
    per_dst: Vec<Vec<usize>>,
    trace: CommTrace,
    ba: BoxArray,
    ncomp: usize,
    ngrow: i32,
}

impl PendingComm {
    /// Number of planned copy ops.
    pub fn nops(&self) -> usize {
        self.ops.len()
    }

    /// `(src fab, dst fab)` of op `o` — the graph builder's edge endpoints.
    pub fn op_endpoints(&self, o: usize) -> (usize, usize) {
        (self.ops[o].src, self.ops[o].dst)
    }

    /// The partial trace carried by this exchange (complete at post time).
    pub fn trace(&self) -> &CommTrace {
        &self.trace
    }

    /// Pack op `o`'s buffer by reading source-fab data through `read`
    /// (`read(iv, c)` must return fab `src`'s value at `iv`, a *valid* zone
    /// of the source box). Safe to call concurrently for distinct ops.
    pub fn pack_op<F: Fn(IntVect, usize) -> Real>(&self, o: usize, read: F) {
        let op = &self.ops[o];
        let mut buf = self.bufs[o].lock().unwrap();
        buf.clear();
        for c in 0..self.ncomp {
            for iv in op.region.iter() {
                buf.push(read(iv - op.shift, c));
            }
        }
        self.packed[o].store(true, Ordering::Release);
    }

    /// Unpack every op targeting fab `fab_index`, in planning order, through
    /// `write(iv, c, value)`. All of the fab's incoming ops must already be
    /// packed (the graph's ghost-exchange edges guarantee it). Safe to call
    /// concurrently for distinct fabs.
    pub fn unpack_fab<F: FnMut(IntVect, usize, Real)>(&self, fab_index: usize, mut write: F) {
        for &oi in &self.per_dst[fab_index] {
            debug_assert!(
                self.packed[oi].load(Ordering::Acquire),
                "unpacking op {oi} before it was packed"
            );
            let op = &self.ops[oi];
            let buf = self.bufs[oi].lock().unwrap();
            let mut idx = 0;
            for c in 0..self.ncomp {
                for iv in op.region.iter() {
                    write(iv, c, buf[idx]);
                    idx += 1;
                }
            }
        }
    }

    /// Phase two: complete the exchange into `mf` (normally the multifab
    /// that posted it, but any multifab on the same box layout works — the
    /// low-Mach driver completes into its advection snapshot). Ops not yet
    /// packed are packed from `mf`'s current valid data; every ghost region
    /// is then unpacked in planning order. Returns the full trace.
    #[must_use = "the CommTrace prices this exchange in the machine model; merge it into the step trace"]
    pub fn wait(self, mf: &mut MultiFab) -> CommTrace {
        assert_eq!(self.ba, mf.ba, "wait() target has a different box layout");
        assert_eq!(self.ncomp, mf.ncomp, "wait() target ncomp mismatch");
        assert_eq!(self.ngrow, mf.ngrow, "wait() target ngrow mismatch");
        for (o, op) in self.ops.iter().enumerate() {
            if !self.packed[o].load(Ordering::Acquire) {
                let sfab = &mf.fabs[op.src];
                self.pack_op(o, |iv, c| sfab.get(iv, c));
            }
        }
        // Unpack in parallel over destination fabs (disjoint mutable
        // access). The cap is *computed* — fabs with pending ops — and can
        // be 0 on an exchange with no ghost traffic.
        let cap = self.per_dst.iter().filter(|v| !v.is_empty()).count();
        let pending = &self;
        par_each_mut_bounded(WorkerPool::global(), &mut mf.fabs, cap, |fi, dfab| {
            pending.unpack_fab(fi, |iv, c, v| dfab.set(iv, c, v));
        });
        self.trace
    }

    /// Complete a fully staged exchange (every op packed and unpacked by
    /// graph tasks) and return the trace.
    #[must_use = "the CommTrace prices this exchange in the machine model; merge it into the step trace"]
    pub fn finish(self) -> CommTrace {
        debug_assert!(
            self.packed.iter().all(|p| p.load(Ordering::Acquire)),
            "finish() with unpacked ops: the graph missed pack tasks"
        );
        self.trace
    }
}

/// Physical boundary condition kinds for non-periodic domain faces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcKind {
    /// Handled by periodic ghost exchange; `fill_physical_bc` skips the face.
    Periodic,
    /// Zero-gradient extrapolation (copy the nearest interior zone).
    Outflow,
    /// Mirror symmetry; components registered as odd flip sign.
    Reflect,
}

/// Boundary-condition specification for a state: a kind per (dimension,
/// side), plus the set of components that are odd under reflection in a
/// given dimension (normal velocities/momenta).
#[derive(Clone, Debug)]
pub struct BcSpec {
    /// `kind[d][0]` is the low face of dimension `d`, `kind[d][1]` the high.
    pub kind: [[BcKind; 2]; SPACEDIM],
    /// `(component, dimension)` pairs that flip sign under reflection in
    /// that dimension.
    pub reflect_odd: Vec<(usize, usize)>,
}

impl BcSpec {
    /// All faces the same kind, no odd components.
    pub fn uniform(kind: BcKind) -> Self {
        BcSpec {
            kind: [[kind; 2]; SPACEDIM],
            reflect_odd: Vec::new(),
        }
    }

    /// All faces outflow.
    pub fn outflow() -> Self {
        Self::uniform(BcKind::Outflow)
    }

    /// All faces periodic (ghost fill handles everything).
    pub fn periodic() -> Self {
        Self::uniform(BcKind::Periodic)
    }

    fn is_odd(&self, comp: usize, dim: usize) -> bool {
        self.reflect_odd.iter().any(|&(c, d)| c == comp && d == dim)
    }
}

/// A distributed multi-component field at one refinement level.
#[derive(Clone, Debug)]
pub struct MultiFab {
    ba: BoxArray,
    dm: DistributionMapping,
    ncomp: usize,
    ngrow: i32,
    fabs: Vec<FArrayBox>,
}

impl MultiFab {
    /// Allocate a zero-filled multifab: `ncomp` components on every box of
    /// `ba`, each grown by `ngrow` ghost zones.
    pub fn new(ba: BoxArray, dm: DistributionMapping, ncomp: usize, ngrow: i32) -> Self {
        assert_eq!(ba.len(), dm.len(), "box array and distribution must agree");
        assert!(ngrow >= 0);
        let fabs = ba
            .iter()
            .map(|b| FArrayBox::new(b.grow(ngrow), ncomp))
            .collect();
        MultiFab {
            ba,
            dm,
            ncomp,
            ngrow,
            fabs,
        }
    }

    /// Single-rank convenience constructor.
    pub fn local(ba: BoxArray, ncomp: usize, ngrow: i32) -> Self {
        let dm = DistributionMapping::all_local(&ba);
        MultiFab::new(ba, dm, ncomp, ngrow)
    }

    /// The box array.
    pub fn box_array(&self) -> &BoxArray {
        &self.ba
    }

    /// The distribution mapping.
    pub fn dist_map(&self) -> &DistributionMapping {
        &self.dm
    }

    /// Components per zone.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Ghost zones per side.
    pub fn ngrow(&self) -> i32 {
        self.ngrow
    }

    /// Number of fabs (= boxes).
    pub fn nfabs(&self) -> usize {
        self.fabs.len()
    }

    /// Valid (ghost-free) box of fab `i`.
    pub fn valid_box(&self, i: usize) -> IndexBox {
        self.ba.get(i)
    }

    /// Grown (ghosted) box of fab `i`.
    pub fn grown_box(&self, i: usize) -> IndexBox {
        self.ba.get(i).grow(self.ngrow)
    }

    /// Fab `i`, immutable.
    pub fn fab(&self, i: usize) -> &FArrayBox {
        &self.fabs[i]
    }

    /// Fab `i`, mutable.
    pub fn fab_mut(&mut self, i: usize) -> &mut FArrayBox {
        &mut self.fabs[i]
    }

    /// Mutable access to several fabs at once is impossible through indices;
    /// physics code iterates instead. This yields `(index, valid box)` pairs
    /// in deterministic order — the analogue of AMReX's `MFIter`.
    pub fn iter_boxes(&self) -> impl Iterator<Item = (usize, IndexBox)> + '_ {
        (0..self.fabs.len()).map(|i| (i, self.ba.get(i)))
    }

    /// One kernel view per fab, all live at once — what the task-graph
    /// scheduler hands its box tasks so that (for example) fab 3's unpack
    /// can write ghosts while fab 5's interior kernel reads valid zones.
    /// Callers own the disjointness argument: concurrent tasks must touch
    /// disjoint `(zone, component)` slots (see [`Array4Mut`]).
    pub fn fab_views_mut(&mut self) -> Vec<Array4Mut<'_>> {
        self.fabs.iter_mut().map(|f| f.array_mut()).collect()
    }

    /// Total bytes of payload across all fabs.
    pub fn bytes(&self) -> u64 {
        self.fabs.iter().map(|f| f.bytes()).sum()
    }

    /// Set every zone (including ghosts) of component `comp` to `v`.
    pub fn set_val(&mut self, comp: usize, v: Real) {
        par_each_mut(&mut self.fabs, |_i, f| f.set_val(comp, v));
    }

    /// Set every zone of every component to `v`.
    pub fn set_val_all(&mut self, v: Real) {
        par_each_mut(&mut self.fabs, |_i, f| f.set_val_all(v));
    }

    /// Value at zone `iv`, component `comp`, searching the valid regions.
    /// Panics if no box contains `iv`. Intended for tests and diagnostics.
    pub fn value_at(&self, iv: IntVect, comp: usize) -> Real {
        for (i, b) in self.iter_boxes() {
            if b.contains(iv) {
                return self.fabs[i].get(iv, comp);
            }
        }
        panic!("zone {iv:?} not in any valid box");
    }

    /// `self[c] += a * other[c]` over valid regions, for each component.
    pub fn saxpy(&mut self, a: Real, other: &MultiFab) {
        assert_eq!(self.ba, other.ba);
        assert_eq!(self.ncomp, other.ncomp);
        let ba = &self.ba;
        let ncomp = self.ncomp;
        par_each_mut(&mut self.fabs, |i, fab| {
            let vb = ba.get(i);
            for c in 0..ncomp {
                for iv in vb.iter() {
                    let v = fab.get(iv, c) + a * other.fabs[i].get(iv, c);
                    fab.set(iv, c, v);
                }
            }
        });
    }

    /// Copy all components from `other` (same box array) over valid regions.
    pub fn copy_from(&mut self, other: &MultiFab) {
        assert_eq!(self.ba, other.ba);
        assert_eq!(self.ncomp, other.ncomp);
        let ba = &self.ba;
        let ncomp = self.ncomp;
        par_each_mut(&mut self.fabs, |i, fab| {
            let vb = ba.get(i);
            fab.copy_from(&other.fabs[i], vb, 0, 0, ncomp);
        });
    }

    /// Parallel copy from a multifab on a *different* box array covering the
    /// same index space: copies over every intersection. Returns the
    /// communication trace.
    pub fn copy_from_other_ba(&mut self, other: &MultiFab, comp: usize, ncomp: usize) -> CommTrace {
        let mut trace = CommTrace::default();
        for di in 0..self.fabs.len() {
            let dvb = self.ba.get(di);
            for si in 0..other.fabs.len() {
                let svb = other.ba.get(si);
                let isect = dvb.intersection(&svb);
                if isect.is_empty() {
                    continue;
                }
                self.fabs[di].copy_from(&other.fabs[si], isect, comp, comp, ncomp);
                let bytes = isect.num_zones() as u64 * ncomp as u64 * 8;
                let (sr, dr) = (other.dm.owner(si), self.dm.owner(di));
                if sr == dr {
                    trace.local_bytes += bytes;
                } else {
                    trace.messages.push(Message {
                        src: sr,
                        dst: dr,
                        bytes,
                    });
                }
            }
        }
        trace
    }

    /// Fill ghost zones of every fab from the valid regions of neighbouring
    /// fabs, honouring periodic boundaries. Returns the communication trace.
    ///
    /// This is the nearest-neighbour exchange that dominates Castro's MPI
    /// time at scale (Figure 2); the trace feeds the machine model. The call
    /// is now a thin wrapper over the two-phase surface:
    /// [`MultiFab::post_fill_boundary`] followed by [`PendingComm::wait`].
    /// Overlapping callers use the two phases directly and run interior
    /// kernels between them.
    #[must_use = "the CommTrace prices this exchange in the machine model; merge it into the step trace"]
    pub fn fill_boundary(&mut self, geom: &Geometry) -> CommTrace {
        self.post_fill_boundary(geom).wait(self)
    }

    /// Plan the ghost exchange without moving any data: compute the copy
    /// ops, allocate (empty) pack buffers, and price the traffic. The
    /// returned [`PendingComm`] carries the partial [`CommTrace`].
    ///
    /// This is the entry point for task-graph callers that stage
    /// [`PendingComm::pack_op`] / [`PendingComm::unpack_fab`] as graph
    /// tasks; plain two-phase callers want [`MultiFab::post_fill_boundary`].
    #[must_use = "the plan holds the exchange state; wait() or finish() it"]
    pub fn plan_fill_boundary(&self, geom: &Geometry) -> PendingComm {
        let _prof = Profiler::region("fill_boundary");
        let mut ops = Vec::new();
        if self.ngrow > 0 {
            let shifts = geom.periodic_shifts();
            for dst in 0..self.fabs.len() {
                let gbox = self.grown_box(dst);
                let vbox = self.ba.get(dst);
                for src in 0..self.fabs.len() {
                    let svb = self.ba.get(src);
                    for &shift in &shifts {
                        if src == dst && shift == IntVect::zero() {
                            continue;
                        }
                        let image = svb.shift(shift);
                        let isect = gbox.intersection(&image);
                        if isect.is_empty() {
                            continue;
                        }
                        // Only fill true ghost zones, never the valid region.
                        for region in isect.difference(&vbox) {
                            ops.push(GhostOp {
                                src,
                                dst,
                                region,
                                shift,
                            });
                        }
                    }
                }
            }
        }
        // Price the exchange now: the plan (not the data) determines the
        // traffic, so the partial trace is complete at post time and is
        // deterministic in planning order.
        let mut trace = CommTrace::default();
        let mut ghost_zones = 0u64;
        for op in &ops {
            let n = op.region.num_zones() as usize;
            ghost_zones += n as u64;
            let bytes = (n * self.ncomp * 8) as u64;
            let (sr, dr) = (self.dm.owner(op.src), self.dm.owner(op.dst));
            if sr == dr {
                trace.local_bytes += bytes;
            } else {
                trace.messages.push(Message {
                    src: sr,
                    dst: dr,
                    bytes,
                });
            }
        }
        Profiler::record_zones(ghost_zones);
        let ncomp = self.ncomp;
        let bufs = ops
            .iter()
            .map(|op| Mutex::new(Vec::with_capacity(op.region.num_zones() as usize * ncomp)))
            .collect();
        let packed = ops.iter().map(|_| AtomicBool::new(false)).collect();
        let mut per_dst: Vec<Vec<usize>> = vec![Vec::new(); self.fabs.len()];
        for (oi, op) in ops.iter().enumerate() {
            per_dst[op.dst].push(oi);
        }
        PendingComm {
            ops,
            bufs,
            packed,
            per_dst,
            trace,
            ba: self.ba.clone(),
            ncomp,
            ngrow: self.ngrow,
        }
    }

    /// Phase one of the ghost exchange: plan the copies and pack every
    /// send buffer from the *current* valid data — the analogue of posting
    /// MPI isends, whose buffers capture the data at post time. The state
    /// may then be mutated (interior kernels) before [`PendingComm::wait`]
    /// unpacks the ghosts.
    #[must_use = "dropping a posted exchange loses the ghost fill; call wait()"]
    pub fn post_fill_boundary(&self, geom: &Geometry) -> PendingComm {
        let pending = self.plan_fill_boundary(geom);
        let fabs = &self.fabs;
        let pref = &pending;
        par_index_each(pending.ops.len(), pending.ops.len(), |o| {
            let sfab = &fabs[pref.ops[o].src];
            pref.pack_op(o, |iv, c| sfab.get(iv, c));
        });
        pending
    }

    /// Fill ghost zones that lie outside the problem domain on non-periodic
    /// faces, according to `bc`. Call after [`MultiFab::fill_boundary`].
    pub fn fill_physical_bc(&mut self, geom: &Geometry, bc: &BcSpec) {
        if self.ngrow == 0 {
            return;
        }
        for i in 0..self.fabs.len() {
            apply_physical_bc(&self.fabs[i].array_mut(), geom, bc);
        }
    }

    /// Max |value| of `comp` over all valid regions.
    ///
    /// Like every reduction below, per-fab partials are computed in parallel
    /// on the worker pool and folded serially in fab order, so results are
    /// bitwise identical run to run (and to the old serial loops).
    pub fn norm_inf(&self, comp: usize) -> Real {
        par_map_fold(
            self.fabs.len(),
            0.0,
            |i| self.fabs[i].norm_inf(self.ba.get(i), comp),
            Real::max,
        )
    }

    /// L1 norm (sum of |value|) of `comp` over valid regions.
    pub fn norm_l1(&self, comp: usize) -> Real {
        par_map_fold(
            self.fabs.len(),
            0.0,
            |i| {
                self.ba
                    .get(i)
                    .iter()
                    .map(|iv| self.fabs[i].get(iv, comp).abs())
                    .sum::<Real>()
            },
            |a, b| a + b,
        )
    }

    /// L2 norm of `comp` over valid regions.
    pub fn norm_l2(&self, comp: usize) -> Real {
        par_map_fold(
            self.fabs.len(),
            0.0,
            |i| {
                self.ba
                    .get(i)
                    .iter()
                    .map(|iv| {
                        let v = self.fabs[i].get(iv, comp);
                        v * v
                    })
                    .sum::<Real>()
            },
            |a, b| a + b,
        )
        .sqrt()
    }

    /// Sum of `comp` over valid regions.
    pub fn sum(&self, comp: usize) -> Real {
        par_map_fold(
            self.fabs.len(),
            0.0,
            |i| self.fabs[i].sum(self.ba.get(i), comp),
            |a, b| a + b,
        )
    }

    /// Minimum of `comp` over valid regions.
    pub fn min(&self, comp: usize) -> Real {
        par_map_fold(
            self.fabs.len(),
            Real::INFINITY,
            |i| {
                self.ba
                    .get(i)
                    .iter()
                    .map(|iv| self.fabs[i].get(iv, comp))
                    .fold(Real::INFINITY, Real::min)
            },
            Real::min,
        )
    }

    /// Maximum of `comp` over valid regions.
    pub fn max(&self, comp: usize) -> Real {
        par_map_fold(
            self.fabs.len(),
            Real::NEG_INFINITY,
            |i| {
                self.ba
                    .get(i)
                    .iter()
                    .map(|iv| self.fabs[i].get(iv, comp))
                    .fold(Real::NEG_INFINITY, Real::max)
            },
            Real::max,
        )
    }

    /// Dot product of component `comp` with the same component of `other`
    /// over valid regions.
    pub fn dot(&self, other: &MultiFab, comp: usize) -> Real {
        assert_eq!(self.ba, other.ba);
        par_map_fold(
            self.fabs.len(),
            0.0,
            |i| {
                self.ba
                    .get(i)
                    .iter()
                    .map(|iv| self.fabs[i].get(iv, comp) * other.fabs[i].get(iv, comp))
                    .sum::<Real>()
            },
            |a, b| a + b,
        )
    }
}

/// Apply physical boundary conditions to one fab through a kernel view —
/// the per-fab body of [`MultiFab::fill_physical_bc`], exposed so task-graph
/// unpack tasks can fold the physical fill into their own node (disjoint
/// slots: each fab's BC only touches that fab's ghost zones).
///
/// Within one fab the writes are ordered (corner ghosts read zones filled by
/// an earlier dimension's pass), so a task must call this serially, after
/// the fab's ghost ops are unpacked — the same ordering the bulk-synchronous
/// path uses.
pub fn apply_physical_bc(arr: &Array4Mut<'_>, geom: &Geometry, bc: &BcSpec) {
    let gbox = arr.index_box();
    let ncomp = arr.ncomp();
    let domain = geom.domain();
    for d in 0..SPACEDIM {
        for side in 0..2 {
            let kind = bc.kind[d][side];
            if kind == BcKind::Periodic || geom.periodic()[d] {
                continue;
            }
            // Ghost region beyond this domain face, clipped to gbox.
            let region = if side == 0 {
                if gbox.lo()[d] >= domain.lo()[d] {
                    continue;
                }
                let mut hi = gbox.hi();
                hi[d] = domain.lo()[d] - 1;
                IndexBox::new(gbox.lo(), hi)
            } else {
                if gbox.hi()[d] <= domain.hi()[d] {
                    continue;
                }
                let mut lo = gbox.lo();
                lo[d] = domain.hi()[d] + 1;
                IndexBox::new(lo, gbox.hi())
            };
            if region.is_empty() {
                continue;
            }
            for c in 0..ncomp {
                let sign = if kind == BcKind::Reflect && bc.is_odd(c, d) {
                    -1.0
                } else {
                    1.0
                };
                for iv in region.iter() {
                    let mut siv = iv;
                    match kind {
                        BcKind::Outflow => {
                            siv[d] = siv[d].clamp(domain.lo()[d], domain.hi()[d]);
                            // Clamp the transverse dims into the fab
                            // too, for corner ghosts.
                        }
                        BcKind::Reflect => {
                            siv[d] = if side == 0 {
                                2 * domain.lo()[d] - 1 - siv[d]
                            } else {
                                2 * domain.hi()[d] + 1 - siv[d]
                            };
                        }
                        BcKind::Periodic => unreachable!(),
                    }
                    // Transverse corner zones may still be outside
                    // the fab's coverage after mirroring; clamp to
                    // the grown box (those zones were filled by the
                    // pass over their own dimension).
                    for t in 0..SPACEDIM {
                        siv[t] = siv[t].clamp(gbox.lo()[t], gbox.hi()[t]);
                    }
                    if siv == iv {
                        continue;
                    }
                    let v = arr.at(siv[0], siv[1], siv[2], c) * sign;
                    arr.set(iv[0], iv[1], iv[2], c, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CoordSys;

    fn periodic_geom(n: i32) -> Geometry {
        Geometry::cube(n, 1.0, true)
    }

    /// Fill a multifab with a globally defined function of the zone index
    /// (periodic-aware reference available analytically).
    fn fill_linear(mf: &mut MultiFab) {
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                let v = (iv.x() + 100 * iv.y() + 10_000 * iv.z()) as Real;
                mf.fab_mut(i).set(iv, 0, v);
            }
        }
    }

    #[test]
    fn fill_boundary_interior_ghosts_match_neighbors() {
        let geom = periodic_geom(16);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 1, 2);
        fill_linear(&mut mf);
        let _ = mf.fill_boundary(&geom);
        // Every interior ghost zone must equal the valid value of the box
        // that owns that zone.
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            let gb = mf.grown_box(i);
            for iv in gb.iter() {
                if vb.contains(iv) || !geom.domain().contains(iv) {
                    continue;
                }
                let expect = (iv.x() + 100 * iv.y() + 10_000 * iv.z()) as Real;
                assert_eq!(mf.fab(i).get(iv, 0), expect, "ghost {iv:?} of fab {i}");
            }
        }
    }

    #[test]
    fn fill_boundary_periodic_wraps() {
        let geom = periodic_geom(8);
        let ba = BoxArray::decompose(geom.domain(), 8, 8); // single box
        let mut mf = MultiFab::local(ba, 1, 1);
        fill_linear(&mut mf);
        let _ = mf.fill_boundary(&geom);
        // Ghost at i = -1 must equal valid at i = 7.
        let g = mf.fab(0).get(IntVect::new(-1, 3, 4), 0);
        let v = mf.fab(0).get(IntVect::new(7, 3, 4), 0);
        assert_eq!(g, v);
        // Corner ghost wraps in all three dims.
        let g = mf.fab(0).get(IntVect::new(8, 8, 8), 0);
        let v = mf.fab(0).get(IntVect::new(0, 0, 0), 0);
        assert_eq!(g, v);
    }

    #[test]
    fn fill_boundary_is_idempotent() {
        let geom = periodic_geom(16);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 2, 2);
        fill_linear(&mut mf);
        let _ = mf.fill_boundary(&geom);
        let snapshot: Vec<Vec<Real>> = (0..mf.nfabs()).map(|i| mf.fab(i).data().to_vec()).collect();
        let _ = mf.fill_boundary(&geom);
        for i in 0..mf.nfabs() {
            assert_eq!(mf.fab(i).data(), &snapshot[i][..], "fab {i} changed");
        }
    }

    #[test]
    fn fill_boundary_trace_counts_ranks() {
        let geom = periodic_geom(32);
        let ba = BoxArray::decompose(geom.domain(), 16, 16); // 8 boxes
        let dm = DistributionMapping::new(&ba, 4, DistStrategy::RoundRobin);
        let mut mf = MultiFab::new(ba, dm, 1, 1);
        let trace = mf.fill_boundary(&geom);
        assert!(!trace.messages.is_empty());
        assert!(trace.local_bytes > 0);
        for m in &trace.messages {
            assert_ne!(m.src, m.dst);
            assert!(m.src < 4 && m.dst < 4);
            assert!(m.bytes > 0);
        }
        // Ghost width 1, 8 boxes of 16^3: each box face region is 16x16x1
        // plus edges/corners; total network+local bytes must equal the total
        // ghost-fill volume, which is the same for every box: grown minus
        // valid = 18^3 - 16^3 zones.
        let per_box = (18i64.pow(3) - 16i64.pow(3)) as u64 * 8;
        assert_eq!(trace.network_bytes() + trace.local_bytes, per_box * 8);
    }

    use crate::distribution::DistStrategy;

    #[test]
    fn outflow_bc_copies_nearest_interior() {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 1, 2);
        fill_linear(&mut mf);
        let _ = mf.fill_boundary(&geom);
        mf.fill_physical_bc(&geom, &BcSpec::outflow());
        // Ghost at i=-1 and i=-2 equal interior i=0 value.
        for gi in [-1, -2] {
            assert_eq!(
                mf.fab(0).get(IntVect::new(gi, 3, 3), 0),
                mf.fab(0).get(IntVect::new(0, 3, 3), 0)
            );
        }
        // High side similarly.
        assert_eq!(
            mf.fab(0).get(IntVect::new(9, 3, 3), 0),
            mf.fab(0).get(IntVect::new(7, 3, 3), 0)
        );
    }

    #[test]
    fn reflect_bc_mirrors_and_flips_odd() {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 2, 2);
        for iv in geom.domain().iter() {
            mf.fab_mut(0).set(iv, 0, (iv.x() + 1) as Real); // even comp
            mf.fab_mut(0).set(iv, 1, (iv.x() + 1) as Real); // odd comp (x-mom)
        }
        let bc = BcSpec {
            kind: [[BcKind::Reflect; 2]; SPACEDIM],
            reflect_odd: vec![(1, 0)],
        };
        mf.fill_physical_bc(&geom, &bc);
        // Ghost i=-1 mirrors i=0; i=-2 mirrors i=1.
        assert_eq!(mf.fab(0).get(IntVect::new(-1, 3, 3), 0), 1.0);
        assert_eq!(mf.fab(0).get(IntVect::new(-2, 3, 3), 0), 2.0);
        assert_eq!(mf.fab(0).get(IntVect::new(-1, 3, 3), 1), -1.0);
        assert_eq!(mf.fab(0).get(IntVect::new(-2, 3, 3), 1), -2.0);
        // High face: ghost i=8 mirrors i=7.
        assert_eq!(mf.fab(0).get(IntVect::new(8, 3, 3), 0), 8.0);
        assert_eq!(mf.fab(0).get(IntVect::new(8, 3, 3), 1), -8.0);
    }

    #[test]
    fn two_phase_post_wait_matches_one_shot() {
        let geom = periodic_geom(16);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut sync = MultiFab::local(ba.clone(), 2, 2);
        fill_linear(&mut sync);
        let mut overlapped = sync.clone();
        let t1 = sync.fill_boundary(&geom);
        // Post, then mutate the valid data *between* the phases: the packed
        // buffers must carry post-time values (MPI isend semantics), so the
        // ghosts still reflect the pre-mutation state.
        let pending = overlapped.post_fill_boundary(&geom);
        let t2 = pending.wait(&mut overlapped);
        for i in 0..sync.nfabs() {
            assert_eq!(sync.fab(i).data(), overlapped.fab(i).data(), "fab {i}");
        }
        // Identical traces: same messages, same local volume.
        assert_eq!(t1.messages, t2.messages);
        assert_eq!(t1.local_bytes, t2.local_bytes);
    }

    #[test]
    fn post_buffers_capture_data_at_post_time() {
        let geom = periodic_geom(8);
        let ba = BoxArray::decompose(geom.domain(), 8, 8); // single box
        let mut mf = MultiFab::local(ba, 1, 1);
        fill_linear(&mut mf);
        let pending = mf.post_fill_boundary(&geom);
        // Overwrite the valid data after posting: the ghost fill must still
        // deliver the *posted* values.
        let expect = mf.fab(0).get(IntVect::new(7, 3, 4), 0);
        mf.fab_mut(0).set(IntVect::new(7, 3, 4), 0, -999.0);
        let _ = pending.wait(&mut mf);
        assert_eq!(mf.fab(0).get(IntVect::new(-1, 3, 4), 0), expect);
    }

    #[test]
    fn plan_then_staged_pack_unpack_matches_one_shot() {
        let geom = periodic_geom(16);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut sync = MultiFab::local(ba.clone(), 2, 2);
        fill_linear(&mut sync);
        let mut staged = sync.clone();
        let t1 = sync.fill_boundary(&geom);
        // Stage every op by hand, the way graph tasks do, then finish.
        let pending = staged.plan_fill_boundary(&geom);
        assert!(pending.nops() > 0);
        for o in 0..pending.nops() {
            let (src, _dst) = pending.op_endpoints(o);
            let sfab = staged.fab(src);
            pending.pack_op(o, |iv, c| sfab.get(iv, c));
        }
        for fi in 0..staged.nfabs() {
            let arr = staged.fab_mut(fi).array_mut();
            pending.unpack_fab(fi, |iv, c, v| arr.set(iv[0], iv[1], iv[2], c, v));
        }
        let t2 = pending.finish();
        for i in 0..sync.nfabs() {
            assert_eq!(sync.fab(i).data(), staged.fab(i).data(), "fab {i}");
        }
        assert_eq!(t1.messages, t2.messages);
        assert_eq!(t1.local_bytes, t2.local_bytes);
    }

    #[test]
    fn wait_can_target_a_clone_on_the_same_layout() {
        let geom = periodic_geom(16);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 1, 2);
        fill_linear(&mut mf);
        let mut reference = mf.clone();
        let _ = reference.fill_boundary(&geom);
        // Post from mf, complete into a clone (the low-Mach driver's
        // advection-snapshot pattern).
        let pending = mf.post_fill_boundary(&geom);
        let mut old = mf.clone();
        let _ = pending.wait(&mut old);
        for i in 0..mf.nfabs() {
            assert_eq!(old.fab(i).data(), reference.fab(i).data(), "fab {i}");
        }
    }

    #[test]
    fn trace_merge_accumulates_across_phases() {
        let geom = periodic_geom(16);
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 1, 1);
        let mut total = CommTrace::default();
        let t1 = mf.fill_boundary(&geom);
        total.merge(&t1);
        let t2 = mf.fill_boundary(&geom);
        total.merge(&t2);
        assert_eq!(total.local_bytes, t1.local_bytes + t2.local_bytes);
        assert_eq!(
            total.network_bytes(),
            t1.network_bytes() + t2.network_bytes()
        );
        assert_eq!(total.messages.len(), t1.messages.len() + t2.messages.len());
    }

    #[test]
    fn norms_and_reductions() {
        let geom = periodic_geom(8);
        let ba = BoxArray::decompose(geom.domain(), 4, 4);
        let mut mf = MultiFab::local(ba, 1, 1);
        mf.set_val(0, -2.0);
        let n = geom.domain().num_zones() as Real;
        assert_eq!(mf.sum(0), -2.0 * n);
        assert_eq!(mf.norm_l1(0), 2.0 * n);
        assert_eq!(mf.norm_inf(0), 2.0);
        assert!((mf.norm_l2(0) - (4.0 * n).sqrt()).abs() < 1e-12);
        assert_eq!(mf.min(0), -2.0);
        assert_eq!(mf.max(0), -2.0);
        let other = mf.clone();
        assert_eq!(mf.dot(&other, 0), 4.0 * n);
    }

    #[test]
    fn saxpy_and_copy() {
        let ba = BoxArray::decompose(IndexBox::cube(8), 4, 4);
        let mut a = MultiFab::local(ba.clone(), 2, 0);
        let mut b = MultiFab::local(ba, 2, 0);
        a.set_val(0, 1.0);
        a.set_val(1, 2.0);
        b.set_val(0, 10.0);
        b.set_val(1, 20.0);
        a.saxpy(0.5, &b);
        assert_eq!(a.max(0), 6.0);
        assert_eq!(a.max(1), 12.0);
        a.copy_from(&b);
        assert_eq!(a.max(0), 10.0);
    }

    #[test]
    fn parallel_copy_between_box_arrays() {
        let domain = IndexBox::cube(16);
        let ba1 = BoxArray::decompose(domain, 8, 8);
        let ba2 = BoxArray::decompose(domain, 4, 4);
        let mut src = MultiFab::local(ba1, 1, 0);
        for i in 0..src.nfabs() {
            let vb = src.valid_box(i);
            for iv in vb.iter() {
                src.fab_mut(i)
                    .set(iv, 0, (iv.x() * iv.y() + iv.z()) as Real);
            }
        }
        let mut dst = MultiFab::local(ba2, 1, 0);
        let trace = dst.copy_from_other_ba(&src, 0, 1);
        assert_eq!(trace.local_bytes, domain.num_zones() as u64 * 8);
        for iv in domain.iter() {
            assert_eq!(dst.value_at(iv, 0), (iv.x() * iv.y() + iv.z()) as Real);
        }
    }

    #[test]
    fn nonperiodic_geometry_does_not_wrap() {
        let geom = Geometry::new(
            IndexBox::cube(8),
            [0.0; 3],
            [1.0; 3],
            [false; 3],
            CoordSys::Cartesian,
        );
        let ba = BoxArray::decompose(geom.domain(), 8, 8);
        let mut mf = MultiFab::local(ba, 1, 1);
        fill_linear(&mut mf);
        let before = mf.fab(0).get(IntVect::new(-1, 0, 0), 0);
        let _ = mf.fill_boundary(&geom);
        // No periodic images: domain-boundary ghosts are untouched.
        assert_eq!(mf.fab(0).get(IntVect::new(-1, 0, 0), 0), before);
    }
}
