//! Property-based tests for the AMR framework: decomposition laws,
//! ghost-fill correctness against a naive reference, distribution balance,
//! and inter-level transfer conservation.

use exastro_amr::{
    average_down, prolong_lin, prolong_pc, BoxArray, DistStrategy, DistributionMapping, Geometry,
    IndexBox, IntVect, MultiFab,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decomposition_partitions_any_domain(
        nx in 8i32..48,
        ny in 8i32..48,
        nz in 8i32..48,
        max_size in 8i32..32,
    ) {
        let domain = IndexBox::sized(IntVect::new(nx, ny, nz));
        let ba = BoxArray::decompose(domain, max_size, 4);
        prop_assert_eq!(ba.total_zones(), domain.num_zones());
        prop_assert!(ba.is_disjoint());
        for b in ba.iter() {
            prop_assert!(domain.contains_box(b));
            prop_assert!(b.size().max_component() <= max_size);
        }
    }

    #[test]
    fn distribution_covers_every_box_once(
        n in 16i32..64,
        nranks in 1usize..16,
        strat_idx in 0usize..3,
    ) {
        let strat = [DistStrategy::RoundRobin, DistStrategy::Knapsack, DistStrategy::Sfc][strat_idx];
        let ba = BoxArray::decompose(IndexBox::cube(n), 16, 4);
        let dm = DistributionMapping::new(&ba, nranks, strat);
        let total: usize = (0..nranks).map(|r| dm.boxes_on(r).len()).sum();
        prop_assert_eq!(total, ba.len());
        for i in 0..ba.len() {
            prop_assert!(dm.owner(i) < nranks);
        }
        // Imbalance is bounded: no rank holds more than all zones.
        prop_assert!(dm.imbalance(&ba) >= 1.0 - 1e-12);
        prop_assert!(dm.imbalance(&ba) <= nranks as f64 + 1e-12);
    }

    #[test]
    fn fill_boundary_matches_naive_reference(
        n in prop::sample::select(vec![8i32, 12, 16]),
        max_grid in prop::sample::select(vec![4i32, 8]),
        ngrow in 1i32..3,
        seed in 0u64..1000,
    ) {
        let geom = Geometry::cube(n, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), max_grid, 4);
        let mut mf = MultiFab::local(ba, 1, ngrow);
        // Deterministic pseudo-random valid data, defined globally.
        let val = |iv: IntVect| -> f64 {
            let h = (iv.x() as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((iv.y() as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
                .wrapping_add((iv.z() as u64).wrapping_mul(0x165667B19E3779F9))
                .wrapping_add(seed);
            (h >> 16) as f64 / (1u64 << 40) as f64
        };
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                mf.fab_mut(i).set(iv, 0, val(iv));
            }
        }
        let _ = mf.fill_boundary(&geom);
        // Naive reference: every ghost zone must hold the periodic image's
        // global value.
        let nn = geom.domain().size();
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            let gb = mf.grown_box(i);
            for iv in gb.iter() {
                if vb.contains(iv) {
                    continue;
                }
                let wrapped = IntVect::new(
                    iv.x().rem_euclid(nn.x()),
                    iv.y().rem_euclid(nn.y()),
                    iv.z().rem_euclid(nn.z()),
                );
                prop_assert_eq!(mf.fab(i).get(iv, 0), val(wrapped));
            }
        }
    }

    #[test]
    fn prolong_restrict_conserves_any_field(
        seed in 0u64..1000,
        ratio in prop::sample::select(vec![2i32, 4]),
    ) {
        let geom = Geometry::cube(8, 1.0, true);
        let cba = BoxArray::decompose(geom.domain(), 4, 4);
        let mut coarse = MultiFab::local(cba.clone(), 1, 1);
        let mut s = seed;
        for i in 0..coarse.nfabs() {
            let vb = coarse.valid_box(i);
            for iv in vb.iter() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                coarse.fab_mut(i).set(iv, 0, ((s >> 33) as f64 / 1e9) - 4.0);
            }
        }
        let _ = coarse.fill_boundary(&geom);
        let fba = cba.refine(ratio);
        for prolong_kind in 0..2 {
            let mut fine = MultiFab::local(fba.clone(), 1, 0);
            if prolong_kind == 0 {
                prolong_pc(&coarse, &mut fine, ratio);
            } else {
                prolong_lin(&coarse, &mut fine, ratio);
            }
            // Conservation: fine sum = ratio³ × coarse sum.
            let cs = coarse.sum(0);
            let fs = fine.sum(0);
            prop_assert!((fs - (ratio as f64).powi(3) * cs).abs() < 1e-8 * cs.abs().max(1.0));
            // Restriction inverts prolongation on the coarse data.
            let mut back = coarse.clone();
            back.set_val(0, 0.0);
            average_down(&fine, &mut back, ratio);
            for i in 0..back.nfabs() {
                let vb = back.valid_box(i);
                for iv in vb.iter() {
                    prop_assert!((back.fab(i).get(iv, 0) - coarse.fab(i).get(iv, 0)).abs() < 1e-11);
                }
            }
        }
    }

    #[test]
    fn saxpy_linear_combination_laws(a in -3.0f64..3.0, seed in 0u64..100) {
        let ba = BoxArray::decompose(IndexBox::cube(8), 4, 4);
        let mut x = MultiFab::local(ba.clone(), 1, 0);
        let mut y = MultiFab::local(ba, 1, 0);
        let mut s = seed;
        for i in 0..x.nfabs() {
            let vb = x.valid_box(i);
            for iv in vb.iter() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                x.fab_mut(i).set(iv, 0, ((s >> 40) as f64) / 1e6);
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                y.fab_mut(i).set(iv, 0, ((s >> 40) as f64) / 1e6 - 8.0);
            }
        }
        let sum_x = x.sum(0);
        let sum_y = y.sum(0);
        let mut z = x.clone();
        z.saxpy(a, &y);
        prop_assert!((z.sum(0) - (sum_x + a * sum_y)).abs() < 1e-7 * (sum_x.abs() + sum_y.abs() + 1.0));
        // Norm positivity and scaling sanity.
        prop_assert!(z.norm_l2(0) >= 0.0);
        prop_assert!(z.norm_inf(0) <= z.norm_l1(0) + 1e-12);
    }

    #[test]
    fn sfc_balance_is_tight_for_uniform_boxes(
        pow in 1u32..3,
        nranks in 1usize..9,
    ) {
        // 8^pow uniform boxes: SFC splits contiguous equal-weight chunks,
        // so the imbalance is bounded by ceil/floor of boxes-per-rank.
        let side = 16 * (1 << pow) / 2;
        let ba = BoxArray::decompose(IndexBox::cube(side), 8, 8);
        let dm = DistributionMapping::new(&ba, nranks, DistStrategy::Sfc);
        let per = ba.len() as f64 / nranks as f64;
        let max_boxes = (0..nranks).map(|r| dm.boxes_on(r).len()).max().unwrap();
        prop_assert!(max_boxes as f64 <= per.ceil() + 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Two-phase exchange vs bulk-synchronous fill on adversarial topologies.
// ---------------------------------------------------------------------------

mod two_phase_props {
    use exastro_amr::{
        BoxArray, CoordSys, DistStrategy, DistributionMapping, Geometry, IndexBox, IntVect,
        MultiFab,
    };
    use proptest::prelude::*;

    /// Deterministic global field so any zone's expected value is known.
    fn val(iv: IntVect, c: usize, seed: u64) -> f64 {
        let h = (iv.x() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((iv.y() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add((iv.z() as u64).wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add((c as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(seed);
        (h >> 16) as f64 / (1u64 << 40) as f64 - 0.5
    }

    /// The adversarial box layouts: the shapes most likely to break a
    /// two-phase exchange (self-wrap, long chains, boxes with no
    /// neighbours at all).
    fn topology(kind: usize) -> (Vec<IndexBox>, IndexBox) {
        match kind {
            // A chain of thin slabs along x: every box talks only to its
            // two neighbours, maximizing exchange fan-in order sensitivity.
            0 => {
                let boxes = (0..6)
                    .map(|i| {
                        IndexBox::new(IntVect::new(4 * i, 0, 0), IntVect::new(4 * i + 3, 7, 7))
                    })
                    .collect();
                (
                    boxes,
                    IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(23, 7, 7)),
                )
            }
            // Isolated boxes: gaps wider than any ghost region, so the
            // exchange plan must be empty between them.
            1 => {
                let boxes = vec![
                    IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(5, 5, 5)),
                    IndexBox::new(IntVect::new(12, 0, 0), IntVect::new(17, 5, 5)),
                    IndexBox::new(IntVect::new(0, 12, 0), IntVect::new(5, 17, 5)),
                ];
                (
                    boxes,
                    IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(17, 17, 5)),
                )
            }
            // A single box: with periodic wrap every ghost is its own image.
            2 => {
                let b = IndexBox::cube(8);
                (vec![b], b)
            }
            // A 2x2x2 block tiling, the plain case as control.
            _ => {
                let domain = IndexBox::cube(12);
                (
                    BoxArray::decompose(domain, 6, 2).iter().copied().collect(),
                    domain,
                )
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn two_phase_exchange_is_bit_identical_to_bulk(
            kind in 0usize..4,
            ngrow in 1i32..3,
            ncomp in 1usize..3,
            periodic_bit in 0u8..2,
            nranks in 1usize..4,
            seed in 0u64..10_000,
        ) {
            let periodic = periodic_bit == 1;
            let (boxes, domain) = topology(kind);
            let ba = BoxArray::from_boxes(boxes);
            let geom = Geometry::new(
                domain,
                [0.0; 3],
                [1.0; 3],
                [periodic; 3],
                CoordSys::Cartesian,
            );
            let dm = DistributionMapping::new(&ba, nranks, DistStrategy::Sfc);
            let mut bulk = MultiFab::new(ba, dm, ncomp, ngrow);
            // Sentinel ghosts + deterministic valid data, identically in
            // both copies (unreached ghosts must match too).
            for i in 0..bulk.nfabs() {
                let gb = bulk.grown_box(i);
                let vb = bulk.valid_box(i);
                for iv in gb.iter() {
                    for c in 0..ncomp {
                        let v = if vb.contains(iv) { val(iv, c, seed) } else { -7777.0 };
                        bulk.fab_mut(i).set(iv, c, v);
                    }
                }
            }
            let mut two_phase = bulk.clone();

            let bulk_trace = bulk.fill_boundary(&geom);
            let pending = two_phase.post_fill_boundary(&geom);
            let split_trace = pending.wait(&mut two_phase);

            for i in 0..bulk.nfabs() {
                let gb = bulk.grown_box(i);
                for iv in gb.iter() {
                    for c in 0..ncomp {
                        let a = bulk.fab(i).get(iv, c);
                        let b = two_phase.fab(i).get(iv, c);
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "divergence: topo {} fab {} {:?} comp {} ({} vs {})",
                            kind, i, iv, c, a, b
                        );
                    }
                }
            }
            // The priced ledger must be identical too: same messages,
            // same bytes, regardless of which API produced it.
            prop_assert_eq!(bulk_trace.network_bytes(), split_trace.network_bytes());
            prop_assert_eq!(bulk_trace.local_bytes, split_trace.local_bytes);
            prop_assert_eq!(bulk_trace.messages.len(), split_trace.messages.len());
            // Isolated boxes must exchange nothing box-to-box.
            if kind == 1 && !periodic {
                prop_assert_eq!(split_trace.local_bytes, 0);
                prop_assert_eq!(split_trace.network_bytes(), 0);
            }
        }
    }
}
