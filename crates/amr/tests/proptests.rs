//! Property-based tests for the AMR framework: decomposition laws,
//! ghost-fill correctness against a naive reference, distribution balance,
//! and inter-level transfer conservation.

use exastro_amr::{
    average_down, prolong_lin, prolong_pc, BoxArray, DistStrategy, DistributionMapping, Geometry,
    IndexBox, IntVect, MultiFab,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decomposition_partitions_any_domain(
        nx in 8i32..48,
        ny in 8i32..48,
        nz in 8i32..48,
        max_size in 8i32..32,
    ) {
        let domain = IndexBox::sized(IntVect::new(nx, ny, nz));
        let ba = BoxArray::decompose(domain, max_size, 4);
        prop_assert_eq!(ba.total_zones(), domain.num_zones());
        prop_assert!(ba.is_disjoint());
        for b in ba.iter() {
            prop_assert!(domain.contains_box(b));
            prop_assert!(b.size().max_component() <= max_size);
        }
    }

    #[test]
    fn distribution_covers_every_box_once(
        n in 16i32..64,
        nranks in 1usize..16,
        strat_idx in 0usize..3,
    ) {
        let strat = [DistStrategy::RoundRobin, DistStrategy::Knapsack, DistStrategy::Sfc][strat_idx];
        let ba = BoxArray::decompose(IndexBox::cube(n), 16, 4);
        let dm = DistributionMapping::new(&ba, nranks, strat);
        let total: usize = (0..nranks).map(|r| dm.boxes_on(r).len()).sum();
        prop_assert_eq!(total, ba.len());
        for i in 0..ba.len() {
            prop_assert!(dm.owner(i) < nranks);
        }
        // Imbalance is bounded: no rank holds more than all zones.
        prop_assert!(dm.imbalance(&ba) >= 1.0 - 1e-12);
        prop_assert!(dm.imbalance(&ba) <= nranks as f64 + 1e-12);
    }

    #[test]
    fn fill_boundary_matches_naive_reference(
        n in prop::sample::select(vec![8i32, 12, 16]),
        max_grid in prop::sample::select(vec![4i32, 8]),
        ngrow in 1i32..3,
        seed in 0u64..1000,
    ) {
        let geom = Geometry::cube(n, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), max_grid, 4);
        let mut mf = MultiFab::local(ba, 1, ngrow);
        // Deterministic pseudo-random valid data, defined globally.
        let val = |iv: IntVect| -> f64 {
            let h = (iv.x() as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((iv.y() as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
                .wrapping_add((iv.z() as u64).wrapping_mul(0x165667B19E3779F9))
                .wrapping_add(seed);
            (h >> 16) as f64 / (1u64 << 40) as f64
        };
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                mf.fab_mut(i).set(iv, 0, val(iv));
            }
        }
        mf.fill_boundary(&geom);
        // Naive reference: every ghost zone must hold the periodic image's
        // global value.
        let nn = geom.domain().size();
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            let gb = mf.grown_box(i);
            for iv in gb.iter() {
                if vb.contains(iv) {
                    continue;
                }
                let wrapped = IntVect::new(
                    iv.x().rem_euclid(nn.x()),
                    iv.y().rem_euclid(nn.y()),
                    iv.z().rem_euclid(nn.z()),
                );
                prop_assert_eq!(mf.fab(i).get(iv, 0), val(wrapped));
            }
        }
    }

    #[test]
    fn prolong_restrict_conserves_any_field(
        seed in 0u64..1000,
        ratio in prop::sample::select(vec![2i32, 4]),
    ) {
        let geom = Geometry::cube(8, 1.0, true);
        let cba = BoxArray::decompose(geom.domain(), 4, 4);
        let mut coarse = MultiFab::local(cba.clone(), 1, 1);
        let mut s = seed;
        for i in 0..coarse.nfabs() {
            let vb = coarse.valid_box(i);
            for iv in vb.iter() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                coarse.fab_mut(i).set(iv, 0, ((s >> 33) as f64 / 1e9) - 4.0);
            }
        }
        coarse.fill_boundary(&geom);
        let fba = cba.refine(ratio);
        for prolong_kind in 0..2 {
            let mut fine = MultiFab::local(fba.clone(), 1, 0);
            if prolong_kind == 0 {
                prolong_pc(&coarse, &mut fine, ratio);
            } else {
                prolong_lin(&coarse, &mut fine, ratio);
            }
            // Conservation: fine sum = ratio³ × coarse sum.
            let cs = coarse.sum(0);
            let fs = fine.sum(0);
            prop_assert!((fs - (ratio as f64).powi(3) * cs).abs() < 1e-8 * cs.abs().max(1.0));
            // Restriction inverts prolongation on the coarse data.
            let mut back = coarse.clone();
            back.set_val(0, 0.0);
            average_down(&fine, &mut back, ratio);
            for i in 0..back.nfabs() {
                let vb = back.valid_box(i);
                for iv in vb.iter() {
                    prop_assert!((back.fab(i).get(iv, 0) - coarse.fab(i).get(iv, 0)).abs() < 1e-11);
                }
            }
        }
    }

    #[test]
    fn saxpy_linear_combination_laws(a in -3.0f64..3.0, seed in 0u64..100) {
        let ba = BoxArray::decompose(IndexBox::cube(8), 4, 4);
        let mut x = MultiFab::local(ba.clone(), 1, 0);
        let mut y = MultiFab::local(ba, 1, 0);
        let mut s = seed;
        for i in 0..x.nfabs() {
            let vb = x.valid_box(i);
            for iv in vb.iter() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                x.fab_mut(i).set(iv, 0, ((s >> 40) as f64) / 1e6);
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                y.fab_mut(i).set(iv, 0, ((s >> 40) as f64) / 1e6 - 8.0);
            }
        }
        let sum_x = x.sum(0);
        let sum_y = y.sum(0);
        let mut z = x.clone();
        z.saxpy(a, &y);
        prop_assert!((z.sum(0) - (sum_x + a * sum_y)).abs() < 1e-7 * (sum_x.abs() + sum_y.abs() + 1.0));
        // Norm positivity and scaling sanity.
        prop_assert!(z.norm_l2(0) >= 0.0);
        prop_assert!(z.norm_inf(0) <= z.norm_l1(0) + 1e-12);
    }

    #[test]
    fn sfc_balance_is_tight_for_uniform_boxes(
        pow in 1u32..3,
        nranks in 1usize..9,
    ) {
        // 8^pow uniform boxes: SFC splits contiguous equal-weight chunks,
        // so the imbalance is bounded by ceil/floor of boxes-per-rank.
        let side = 16 * (1 << pow) / 2;
        let ba = BoxArray::decompose(IndexBox::cube(side), 8, 8);
        let dm = DistributionMapping::new(&ba, nranks, DistStrategy::Sfc);
        let per = ba.len() as f64 / nranks as f64;
        let max_boxes = (0..nranks).map(|r| dm.boxes_on(r).len()).max().unwrap();
        prop_assert!(max_boxes as f64 <= per.ceil() + 1e-12);
    }
}
