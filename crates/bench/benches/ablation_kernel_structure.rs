//! **§III ablation**: legacy (staged slope arrays) vs flat (fused per-zone
//! recompute) kernel structure.
//!
//! The paper's refactor made every kernel embarrassingly parallel by
//! recomputing slopes redundantly instead of staging them; this cut the
//! memory footprint enough to speed the code up *even on CPUs*. Here both
//! structures run the identical Sedov sweep: Criterion reports real
//! wall-clock, and the simulated device reports the modelled GPU times
//! (where the staged variant's extra traffic and the flat variant's
//! occupancy advantage are priced).

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{bench_castro, sedov_fixture};
use exastro_castro::KernelStructure;
use exastro_parallel::{DeviceConfig, KernelProfile, SimDevice};

fn print_device_model() {
    println!("\n=== §III kernel-structure ablation (simulated V100) ===");
    let dev = SimDevice::new(DeviceConfig::v100());
    let zones = 64i64.pow(3);
    // Profiles mirror crates/castro/src/hydro.rs::flux_kernel_profile.
    let flat = KernelProfile::new(1.1, 132);
    let legacy = KernelProfile::new(1.4, 88);
    // Legacy additionally launches the slope-staging kernel and reads the
    // slope array back (extra traffic is folded into its higher cost).
    let t_flat = dev.kernel_time_us(zones, &flat) + dev.config().launch_overhead_us;
    let t_legacy = 2.0 * dev.config().launch_overhead_us
        + dev.kernel_time_us(zones, &KernelProfile::new(0.5, 64)) // staging pass
        + dev.kernel_time_us(zones, &legacy);
    println!("flat   (fused, recompute): {t_flat:>9.1} µs per 64³ sweep");
    println!("legacy (staged slopes)   : {t_legacy:>9.1} µs per 64³ sweep");
    println!("model speedup            : {:.2}×\n", t_legacy / t_flat);
}

fn bench(c: &mut Criterion) {
    print_device_model();
    let (geom, state, _layout, eos, net) = sedov_fixture(32, 32);
    let mut g = c.benchmark_group("kernel_structure");
    g.sample_size(10);
    for structure in [KernelStructure::Flat, KernelStructure::Legacy] {
        let castro = bench_castro(&eos, &net, structure);
        let dt = castro.estimate_dt(&state, &geom);
        g.bench_function(format!("{structure:?}"), |b| {
            b.iter(|| {
                let mut s = state.clone();
                std::hint::black_box(castro.advance_level(&mut s, &geom, dt))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
