//! **§VI future-work ablation**: hybrid CPU/GPU burning of outlier zones.
//!
//! "In the extreme case where one zone in a box is igniting while all of
//! the others are quiescent, the computational cost may vary by multiple
//! orders of magnitude across zones … We are currently investigating a
//! strategy that involves identifying those outlier zones … and performing
//! their ODE solves on the CPU, while the GPU handles the rest."
//!
//! The per-zone costs here are *real*: a box of quiescent carbon with a
//! hot igniting spot is burned with the actual BDF integrator, and the
//! measured per-zone step counts feed the device latency-hiding model.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_castro::hybrid_offload_estimate;
use exastro_microphysics::{CBurn2, PlainBurner, StellarEos};
use exastro_parallel::{DeviceConfig, SimDevice};

/// Burn a distribution of zones and return the per-zone integrator step
/// counts (the real cost signal).
fn measured_zone_costs(hot_fraction: f64, nzones: usize) -> Vec<f64> {
    let net = CBurn2::new();
    let eos = StellarEos;
    let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
    let n_hot = ((nzones as f64) * hot_fraction).round() as usize;
    let mut costs = Vec::with_capacity(nzones);
    // One representative quiescent and one representative igniting burn;
    // replicated (every quiescent zone costs the same by construction).
    let quiet = burner.burn(5e7, 5e8, &[1.0, 0.0], 1e-6).unwrap().stats;
    let hot = burner.burn(5e7, 3.2e9, &[1.0, 0.0], 1e-6).unwrap().stats;
    for _ in 0..(nzones - n_hot) {
        costs.push(quiet.steps.max(1) as f64);
    }
    for _ in 0..n_hot {
        costs.push(hot.steps.max(1) as f64);
    }
    costs
}

fn print_study() {
    println!("\n=== §VI CPU-outlier-offload ablation ===");
    let dev = SimDevice::new(DeviceConfig::v100());
    let costs = measured_zone_costs(0.002, 64 * 64 * 16);
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let max = costs.iter().cloned().fold(0.0, f64::max);
    println!(
        "measured burn costs: mean {:.1} BDF steps/zone, outlier max {:.0} ({}× the mean)",
        mean,
        max,
        (max / mean).round()
    );
    println!(
        "{:>22} {:>14} {:>14} {:>9}",
        "outlier cutoff", "GPU-only [µs]", "hybrid [µs]", "speedup"
    );
    for cutoff in [2.0, 5.0, 10.0, 50.0] {
        let (gpu, hybrid) = hybrid_offload_estimate(&dev, &costs, cutoff, 0.05, 320);
        println!(
            "{:>18} × mean {:>14.0} {:>14.0} {:>8.2}×",
            cutoff,
            gpu,
            hybrid,
            gpu / hybrid
        );
    }
    // Control: uniform work → no benefit.
    let uniform = vec![mean; costs.len()];
    let (gpu_u, hyb_u) = hybrid_offload_estimate(&dev, &uniform, 10.0, 0.05, 320);
    println!(
        "uniform-work control: GPU {gpu_u:.0} µs vs hybrid {hyb_u:.0} µs (speedup {:.2}× — none, as expected)\n",
        gpu_u / hyb_u
    );
}

fn bench(c: &mut Criterion) {
    print_study();
    let dev = SimDevice::new(DeviceConfig::v100());
    let costs = measured_zone_costs(0.002, 64 * 64 * 16);
    let mut g = c.benchmark_group("outlier_offload");
    g.sample_size(20);
    g.bench_function("estimate_sweep", |b| {
        b.iter(|| std::hint::black_box(hybrid_offload_estimate(&dev, &costs, 10.0, 0.05, 320)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
