//! **§IV-A ablation**: GPU memory oversubscription.
//!
//! "When the dataset size is larger than the GPU's memory capacity …
//! CUDA Unified Memory can automatically handle this case … However in
//! practice the performance of this case is currently quite poor on
//! Summit." The simulated device prices unified-memory eviction as a
//! bandwidth collapse once the resident set exceeds capacity; this bench
//! sweeps the working set through the 16 GiB boundary.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_parallel::{DeviceConfig, KernelProfile, SimDevice};

fn print_sweep() {
    println!("\n=== §IV-A oversubscription sweep (simulated V100, 16 GiB) ===");
    println!(
        "{:>12} {:>10} {:>14} {:>10}",
        "resident", "fits?", "zones/µs", "slowdown"
    );
    let prof = KernelProfile::new(1.2, 160);
    let zones = 128i64.pow(3);
    let mut base = 0.0;
    for gib in [4u64, 8, 12, 15, 17, 24, 32] {
        let dev = SimDevice::new(DeviceConfig::v100());
        dev.malloc(gib * (1 << 30));
        let t = dev.kernel_time_us(zones, &prof);
        let tput = zones as f64 / t;
        if base == 0.0 {
            base = tput;
        }
        println!(
            "{:>9} GiB {:>10} {:>14.2} {:>9.1}×",
            gib,
            if dev.oversubscribed() {
                "evicting"
            } else {
                "yes"
            },
            tput,
            base / tput
        );
    }
    println!("(the paper declined to strong-scale for exactly this reason: only a");
    println!(" narrow range of box sizes makes sense on a GPU)\n");
}

fn bench(c: &mut Criterion) {
    print_sweep();
    let mut g = c.benchmark_group("oversubscription");
    g.sample_size(10);
    let prof = KernelProfile::new(1.2, 160);
    for (name, gib) in [("fits_8GiB", 8u64), ("oversubscribed_24GiB", 24)] {
        g.bench_function(name, |b| {
            let dev = SimDevice::new(DeviceConfig::v100());
            dev.malloc(gib * (1 << 30));
            b.iter(|| std::hint::black_box(dev.kernel_time_us(128i64.pow(3), &prof)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
