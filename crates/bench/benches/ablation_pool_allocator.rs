//! **§III ablation**: the caching (pool) allocator vs per-call device
//! allocation in the timestep loop.
//!
//! The paper: per-timestep scratch allocation is "tolerable on CPUs but
//! disastrous in CUDA, where memory allocation is orders of magnitude
//! slower" — fixed by making AMReX's caching arena the CUDA default. Here
//! the actual hydro scratch churn of a Sedov step runs against both arenas
//! while the simulated device charges `cudaMalloc`/`cudaFree` latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{bench_castro, sedov_fixture};
use exastro_castro::KernelStructure;
use exastro_parallel::{Arena, DeviceConfig, MallocArena, PoolArena, SimDevice};
use std::sync::Arc;

fn print_device_model() {
    println!("\n=== §III pool-allocator ablation (simulated device accounting) ===");
    // One timestep allocates ~6 scratch buffers (primitives + slopes per
    // sweep); run 50 steps through each arena and compare simulated time.
    let steps = 50;
    let buf = 70 * 70 * 70 * 9; // grown-box primitive scratch
    for (name, pool) in [("malloc-per-call", false), ("pool (caching)", true)] {
        let dev = SimDevice::new(DeviceConfig::v100());
        let arena: Box<dyn Arena> = if pool {
            Box::new(PoolArena::new(Some(dev.clone())))
        } else {
            Box::new(MallocArena::new(Some(dev.clone())))
        };
        for _ in 0..steps {
            for _ in 0..6 {
                let b = arena.alloc(buf);
                std::hint::black_box(&b);
            }
        }
        let s = dev.stats();
        println!(
            "{name:>16}: {:>5} device allocs, {:>5} frees, {:>10.0} µs of allocation stalls",
            s.allocs, s.frees, s.alloc_us
        );
    }
    println!("(the pool reaches zero device allocations in steady state — the paper's fix)\n");
}

fn bench(c: &mut Criterion) {
    print_device_model();
    let (geom, state, _layout, eos, net) = sedov_fixture(32, 32);
    let mut g = c.benchmark_group("pool_allocator");
    g.sample_size(10);
    for (name, use_pool) in [("pool", true), ("malloc", false)] {
        let mut castro = bench_castro(&eos, &net, KernelStructure::Flat);
        castro.arena = if use_pool {
            Arc::new(PoolArena::new(None))
        } else {
            Arc::new(MallocArena::new(None))
        };
        let dt = castro.estimate_dt(&state, &geom);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = state.clone();
                std::hint::black_box(castro.advance_level(&mut s, &geom, dt))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
