//! **§VI future-work ablation**: dense vs sparsity-pattern-compiled Newton
//! solves in the aprox13 burner.
//!
//! "We can straightforwardly replace the dense linear system with a sparse
//! linear system. We know what the sparsity pattern is … it is even
//! possible to write the exact sequence of operations needed for the
//! linear solve using code generation tools." `CompiledLu` is exactly that
//! pre-generated operation sequence; this bench times identical aprox13
//! burns through both solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_microphysics::{Aprox13, BdfOptions, Network, NewtonSolver, PlainBurner, StellarEos};

fn burn_once(net: &Aprox13, eos: &StellarEos, solver: NewtonSolver) -> (f64, u64) {
    let opts = BdfOptions::builder()
        .rtol(1e-8)
        .atol(1e-12)
        .solver(solver)
        .build()
        .expect("bench options are valid");
    let burner = PlainBurner::new(net, eos, opts);
    let mut x = vec![0.0; net.nspec()];
    x[net.index_of("c12")] = 0.5;
    x[net.index_of("o16")] = 0.5;
    let out = burner.burn(5e7, 2.8e9, &x, 1e-7).expect("burn");
    (out.t, out.stats.newton_iters)
}

fn print_comparison() {
    let net = Aprox13::new();
    let eos = StellarEos;
    let p = net.sparsity();
    println!("\n=== §VI sparse-Jacobian ablation (aprox13, 14×14 system) ===");
    println!(
        "pattern: {} of {} entries structurally nonzero ({:.0}% empty; paper: ~40% empty)",
        p.nnz(),
        p.dim() * p.dim(),
        p.empty_fraction() * 100.0
    );
    let (td, id) = burn_once(&net, &eos, NewtonSolver::Dense);
    let (ts, is_) = burn_once(&net, &eos, NewtonSolver::Sparse(net.sparsity_csr()));
    println!("dense  LU: T_final = {td:.6e} K, {id} Newton iterations");
    println!("sparse LU: T_final = {ts:.6e} K, {is_} Newton iterations");
    println!(
        "ΔT = {:.2e} K (identical physics, fewer flops)\n",
        (td - ts).abs()
    );
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let net = Aprox13::new();
    let eos = StellarEos;
    let mut g = c.benchmark_group("sparse_jacobian");
    g.sample_size(20);
    g.bench_function("dense", |b| {
        b.iter(|| std::hint::black_box(burn_once(&net, &eos, NewtonSolver::Dense)))
    });
    let csr = net.sparsity_csr();
    g.bench_function("analytic_sparse", |b| {
        b.iter(|| std::hint::black_box(burn_once(&net, &eos, NewtonSolver::Sparse(csr.clone()))))
    });
    let pattern = net.sparsity();
    // Raw solver kernels, isolated.
    use exastro_microphysics::{CompiledLu, DenseLu};
    let n = 14;
    let mut a = vec![0.0; n * n];
    for (r, c2) in pattern.entries() {
        a[r * n + c2] = if r == c2 { 4.0 } else { -0.1 };
    }
    g.bench_function("raw_dense_factor_solve", |b| {
        b.iter(|| {
            let lu = DenseLu::factor(&a, n).unwrap();
            let mut rhs = vec![1.0; n];
            lu.solve(&mut rhs);
            std::hint::black_box(rhs)
        })
    });
    let comp = CompiledLu::compile(&pattern);
    g.bench_function("raw_compiled_factor_solve", |b| {
        let mut work = vec![0.0; comp.nnz_filled()];
        b.iter(|| {
            let mut rhs = vec![1.0; n];
            comp.factor_solve(&a, &mut rhs, &mut work).unwrap();
            std::hint::black_box(rhs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
