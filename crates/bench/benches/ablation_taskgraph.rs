//! **Tentpole ablation**: task-graph overlapped ghost exchange vs
//! bulk-synchronous stepping.
//!
//! Three measurements isolate the overlap machinery:
//!
//! * the *modeled* 512-node weak-scaling efficiency with and without the
//!   overlapped exchange (deterministic machine model — gated in CI);
//! * the *measured* per-task scheduling overhead of [`TaskGraph::run`]
//!   on a no-op graph (what the model charges as `scheduler_overhead_us`);
//! * the *measured* wall-clock of a real graph-overlapped Castro advance
//!   against the same advance run bulk-synchronously — bit-identical
//!   results (asserted in `castro`'s tests), so any wall-clock difference
//!   is pure scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{bench_castro, sedov_fixture, write_metrics_json, MetricPoint};
use exastro_castro::KernelStructure;
use exastro_machine::{canonical_series, hydro_overlap, overlapped_series, Machine};
use exastro_parallel::{TaskGraph, WorkerPool};
use exastro_telemetry::{graphtrace, Telemetry};

/// No-op tasks in the scheduler-overhead probe graph.
const PROBE_TASKS: usize = 2048;

fn scheduler_overhead_us() -> f64 {
    // A chain-of-chains graph: 8 independent chains of 256 tasks keeps
    // the ready queue shallow (the worst case for wakeup overhead).
    let mut g = TaskGraph::new();
    for _ in 0..8 {
        let mut prev = g.add_task();
        for _ in 0..(PROBE_TASKS / 8 - 1) {
            prev = g.add_task_after(&[prev]);
        }
    }
    let pool = WorkerPool::global();
    // Warm the pool before timing.
    g.run(pool, 4, |_| {}).unwrap();
    let start = std::time::Instant::now();
    let reps = 20;
    for _ in 0..reps {
        g.run(pool, 4, |_| {}).unwrap();
    }
    let us = start.elapsed().as_secs_f64() * 1e6;
    us / (reps * PROBE_TASKS) as f64
}

fn print_ablation() {
    let m = Machine::summit();
    println!("\n=== Task-graph overlap ablation ===");
    let sync = canonical_series(&m, &[1, 512]);
    let ovl = overlapped_series(&m, &[1, 512]);
    println!(
        "modeled 512-node efficiency: sync {:.3} -> overlapped {:.3}",
        sync[1].normalized, ovl[1].normalized
    );

    let overhead = scheduler_overhead_us();
    println!("measured scheduler overhead: {overhead:.3} µs/task ({PROBE_TASKS}-task probe)");

    // Real advance, both paths, identical physics (bit-identity is
    // asserted in the castro test suite; here we only time it).
    let (geom, state, _layout, eos, net) = sedov_fixture(32, 8);
    let mut castro_sync = bench_castro(&eos, &net, KernelStructure::Flat);
    castro_sync.hydro.overlap = false;
    let castro_ovl = bench_castro(&eos, &net, KernelStructure::Flat);
    let dt = castro_sync.estimate_dt(&state, &geom);
    let time_advance = |c: &exastro_castro::Castro<'_>| {
        let mut s = state.clone();
        // Warm caches/pool.
        let _ = c.advance_level(&mut s, &geom, dt);
        let start = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let mut s = state.clone();
            let _ = c.advance_level(&mut s, &geom, dt);
        }
        start.elapsed().as_secs_f64() * 1e6 / reps as f64
    };
    let us_sync = time_advance(&castro_sync);
    let us_ovl = time_advance(&castro_ovl);
    let wall_speedup = us_sync / us_ovl;
    println!(
        "measured 32³ Sedov advance: sync {us_sync:.0} µs, overlapped {us_ovl:.0} µs \
         ({wall_speedup:.2}×)"
    );

    // *Measured* overlap efficiency: one more overlapped advance with
    // graph tracing armed, each sweep graph summarized and reconciled
    // against the machine model's predicted hidden fraction for these
    // boxes. The drift (measured − predicted) is what the modeling
    // earlier PRs only asserted; now it is a number in the artifact.
    Telemetry::enable_graph_trace();
    graphtrace::clear();
    {
        let mut s = state.clone();
        let _ = castro_ovl.advance_level(&mut s, &geom, dt);
    }
    let model = hydro_overlap(8);
    let mut summaries: Vec<graphtrace::GraphSummary> = graphtrace::take()
        .iter()
        .map(graphtrace::summarize)
        .collect();
    for s in &mut summaries {
        let p = model.predicted_hidden_fraction(s.compute_us, s.comm_us);
        s.reconcile(p);
    }
    Telemetry::disable_graph_trace();
    Telemetry::reset();
    let measured = graphtrace::overall_efficiency(&summaries).unwrap_or(0.0);
    let total_comm: f64 = summaries.iter().map(|s| s.comm_us).sum();
    let predicted = if total_comm > 0.0 {
        summaries
            .iter()
            .map(|s| model.predicted_hidden_fraction(s.compute_us, s.comm_us) * s.comm_us)
            .sum::<f64>()
            / total_comm
    } else {
        0.0
    };
    let drift = measured - predicted;
    println!(
        "measured overlap efficiency: {measured:.3} vs modeled {predicted:.3} \
         (drift {drift:+.3} over {} traced graph(s))",
        summaries.len()
    );

    let metrics = vec![
        MetricPoint::new("taskgraph/overlap_efficiency", ovl[1].normalized, "frac"),
        MetricPoint::new("taskgraph/sync_efficiency", sync[1].normalized, "frac"),
        MetricPoint::new(
            "taskgraph/efficiency_gain",
            ovl[1].normalized / sync[1].normalized,
            "x",
        ),
        MetricPoint::new("taskgraph/scheduler_overhead_us_per_task", overhead, "us"),
        MetricPoint::new("taskgraph/wall_speedup_sedov32", wall_speedup, "x"),
        // Deliberately not gated (host-dependent: a serial pool measures
        // ~0); the reconciliation *test* in tests/overlap_reconcile.rs
        // bounds the drift, the artifact just records it.
        MetricPoint::new("taskgraph/measured_overlap_eff", measured, "frac"),
        MetricPoint::new("taskgraph/model_drift", drift, "frac"),
    ];
    match write_metrics_json("taskgraph", &metrics) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH_taskgraph.json not written: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let (geom, state, _layout, eos, net) = sedov_fixture(32, 8);
    let mut g = c.benchmark_group("taskgraph");
    g.sample_size(10);
    let mut castro_sync = bench_castro(&eos, &net, KernelStructure::Flat);
    castro_sync.hydro.overlap = false;
    let castro_ovl = bench_castro(&eos, &net, KernelStructure::Flat);
    let dt = castro_sync.estimate_dt(&state, &geom);
    g.bench_function("advance_sync", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro_sync.advance_level(&mut s, &geom, dt))
        })
    });
    g.bench_function("advance_overlapped", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro_ovl.advance_level(&mut s, &geom, dt))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
