//! **Observability ablation**: the cost of leaving telemetry on.
//!
//! The telemetry subsystem promises to be free when disabled (one relaxed
//! atomic load per profiler region) and cheap when enabled (a shard-local
//! ring-buffer push per region plus one `StepMetrics` record per step).
//! This bench drives the same Castro Sedov advance four ways — telemetry
//! disabled, trace spans enabled, trace + step metrics enabled, and
//! full graph tracing (per-task timestamps + flow arrows on every
//! overlapped sweep graph) — and reports the relative overhead. The
//! acceptance target is < 2% overhead with everything on (graph tracing
//! included); the result is written to `BENCH_telemetry.json` and the CI
//! perf gate holds the overhead percentages under an absolute 2% ceiling
//! (the `max` rule against `ci/baselines/BENCH_telemetry.json`).
//!
//! Measurement shape: the four configurations are timed **interleaved**,
//! round-robin, taking the per-configuration minimum across rounds. A
//! sequential best-of-N is biased by ambient load drift (whatever else
//! the host does during configuration 4 but not configuration 1 shows up
//! as fake "overhead"); interleaving samples every configuration under
//! the same drift, so the minima are comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{bench_castro, sedov_fixture, write_metrics_json, MetricPoint};
use exastro_castro::{Castro, KernelStructure};
use exastro_telemetry::{graphtrace, NullSink, Telemetry};
use std::sync::Arc;

/// Rounds of the interleaved minimum. Each round times one advance per
/// configuration, so the estimator is best-of-ROUNDS per configuration.
const ROUNDS: usize = 12;

fn bench(c: &mut Criterion) {
    let n = 24;
    let (geom, state, _layout, eos, net) = sedov_fixture(n, 12);
    // One driver without a metrics sink (configurations 1–2) and one
    // with (3–4): attaching is one-way, so the sinkless configurations
    // need their own instance.
    let castro = bench_castro(&eos, &net, KernelStructure::Flat);
    let mut castro_sink = bench_castro(&eos, &net, KernelStructure::Flat);
    castro_sink.telemetry.attach_sink(Arc::new(NullSink));
    let dt = castro.estimate_dt(&state, &geom);
    let zones = (n as f64).powi(3);

    let time_one = |c: &Castro<'_>| {
        let mut s = state.clone();
        let t0 = std::time::Instant::now();
        std::hint::black_box(c.advance_level_safe(&mut s, &geom, dt).unwrap());
        t0.elapsed().as_secs_f64()
    };

    Telemetry::disable();
    // Warm caches and the worker pool so round 0 is not charged with
    // one-time startup cost.
    for _ in 0..2 {
        time_one(&castro);
    }

    // Interleaved best-of-rounds: [off, trace, trace+metrics, graph].
    let mut best = [f64::INFINITY; 4];
    for _ in 0..ROUNDS {
        Telemetry::disable();
        best[0] = best[0].min(time_one(&castro));
        Telemetry::enable();
        best[1] = best[1].min(time_one(&castro));
        best[2] = best[2].min(time_one(&castro_sink));
        // Everything on: per-task ready/start/end stamps plus flow
        // arrows on each overlapped sweep graph. Drain the bounded
        // registry each round so the probe measures recording cost, not
        // a saturated buffer.
        Telemetry::enable_graph_trace();
        best[3] = best[3].min(time_one(&castro_sink));
        Telemetry::disable_graph_trace();
        graphtrace::clear();
    }
    Telemetry::disable();
    Telemetry::reset();
    let [off, trace, full, graph] = best;

    // A criterion group over the same configurations for the usual
    // min/median/mean display (not what the artifact gates on).
    let mut g = c.benchmark_group("telemetry_ablation");
    g.sample_size(5);
    g.bench_function("advance_telemetry_off", |b| b.iter(|| time_one(&castro)));
    Telemetry::enable();
    g.bench_function("advance_trace_on", |b| b.iter(|| time_one(&castro)));
    g.bench_function("advance_trace_and_metrics_on", |b| {
        b.iter(|| time_one(&castro_sink))
    });
    Telemetry::enable_graph_trace();
    g.bench_function("advance_graph_trace_on", |b| {
        b.iter(|| {
            let t = time_one(&castro_sink);
            graphtrace::clear();
            t
        })
    });
    g.finish();
    Telemetry::disable_graph_trace();
    Telemetry::disable();
    Telemetry::reset();

    let overhead_trace = (trace / off - 1.0) * 100.0;
    let overhead_full = (full / off - 1.0) * 100.0;
    let overhead_graph = (graph / off - 1.0) * 100.0;
    println!("=== telemetry ablation (Castro Sedov {n}^3 advance, best of {ROUNDS} interleaved rounds) ===");
    println!(
        "telemetry off:             {:.2} ms  ({:.1} zones/µs)",
        off * 1e3,
        zones / (off * 1e6)
    );
    println!(
        "trace spans on:            {:.2} ms  ({:+.2}% vs off)",
        trace * 1e3,
        overhead_trace
    );
    println!(
        "trace + step metrics on:   {:.2} ms  ({:+.2}% vs off, target < 2%)",
        full * 1e3,
        overhead_full
    );
    println!(
        "graph tracing on:          {:.2} ms  ({:+.2}% vs off, target < 2%)",
        graph * 1e3,
        overhead_graph
    );
    let metrics = vec![
        MetricPoint::new("telemetry_off/zones_per_us", zones / (off * 1e6), "z/us"),
        MetricPoint::new("trace_on/overhead", overhead_trace, "%"),
        MetricPoint::new("trace_and_metrics_on/overhead", overhead_full, "%"),
        MetricPoint::new("graph_trace_on/overhead", overhead_graph, "%"),
    ];
    match write_metrics_json("telemetry", &metrics) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH_telemetry.json not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
