//! **Observability ablation**: the cost of leaving telemetry on.
//!
//! The telemetry subsystem promises to be free when disabled (one relaxed
//! atomic load per profiler region) and cheap when enabled (a shard-local
//! ring-buffer push per region plus one `StepMetrics` record per step).
//! This bench drives the same Castro Sedov advance three ways — telemetry
//! disabled, trace spans enabled, trace + step metrics enabled — and
//! reports the relative overhead. The acceptance target is < 2% overhead
//! with everything on; the result is written to `BENCH_telemetry.json` so
//! the CI perf gate can watch it drift.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{bench_castro, sedov_fixture, write_metrics_json, MetricPoint};
use exastro_castro::KernelStructure;
use exastro_telemetry::{NullSink, Telemetry};
use std::sync::Arc;

/// Best-of-N wall time: the minimum is the standard estimator for "what the
/// code costs without scheduler interference", and overhead in the few-
/// percent range is invisible under this machine's ±15% median jitter.
fn min_secs(c: &Criterion, suffix: &str) -> f64 {
    c.samples
        .iter()
        .find(|s| s.id.ends_with(suffix))
        .unwrap_or_else(|| panic!("missing sample {suffix}"))
        .times
        .iter()
        .min()
        .expect("at least one sample")
        .as_secs_f64()
}

fn bench(c: &mut Criterion) {
    let n = 24;
    let (geom, state, _layout, eos, net) = sedov_fixture(n, 12);
    let mut castro = bench_castro(&eos, &net, KernelStructure::Flat);
    let dt = castro.estimate_dt(&state, &geom);
    let zones = (n as f64).powi(3);

    Telemetry::disable();
    // Warm caches and the worker pool so the first timed group is not
    // charged with one-time startup cost.
    for _ in 0..2 {
        let mut s = state.clone();
        castro.advance_level_safe(&mut s, &geom, dt).unwrap();
    }
    let mut g = c.benchmark_group("telemetry_ablation");
    g.sample_size(15);
    g.bench_function("advance_telemetry_off", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro.advance_level_safe(&mut s, &geom, dt).unwrap());
        })
    });
    g.finish();

    Telemetry::enable();
    let mut g = c.benchmark_group("telemetry_ablation");
    g.sample_size(15);
    g.bench_function("advance_trace_on", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro.advance_level_safe(&mut s, &geom, dt).unwrap());
        })
    });
    g.finish();

    castro.telemetry.attach_sink(Arc::new(NullSink));
    let mut g = c.benchmark_group("telemetry_ablation");
    g.sample_size(15);
    g.bench_function("advance_trace_and_metrics_on", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro.advance_level_safe(&mut s, &geom, dt).unwrap());
        })
    });
    g.finish();
    Telemetry::disable();
    Telemetry::reset();

    let off = min_secs(c, "advance_telemetry_off");
    let trace = min_secs(c, "advance_trace_on");
    let full = min_secs(c, "advance_trace_and_metrics_on");
    let overhead_trace = (trace / off - 1.0) * 100.0;
    let overhead_full = (full / off - 1.0) * 100.0;
    println!("=== telemetry ablation (Castro Sedov {n}^3 advance) ===");
    println!(
        "telemetry off:             {:.2} ms  ({:.1} zones/µs)",
        off * 1e3,
        zones / (off * 1e6)
    );
    println!(
        "trace spans on:            {:.2} ms  ({:+.2}% vs off)",
        trace * 1e3,
        overhead_trace
    );
    println!(
        "trace + step metrics on:   {:.2} ms  ({:+.2}% vs off, target < 2%)",
        full * 1e3,
        overhead_full
    );
    let metrics = vec![
        MetricPoint::new("telemetry_off/zones_per_us", zones / (off * 1e6), "z/us"),
        MetricPoint::new("trace_on/overhead", overhead_trace, "%"),
        MetricPoint::new("trace_and_metrics_on/overhead", overhead_full, "%"),
    ];
    match write_metrics_json("telemetry", &metrics) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH_telemetry.json not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
