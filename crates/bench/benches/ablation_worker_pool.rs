//! **Runtime ablation**: the persistent worker pool vs spawning fresh OS
//! threads for every `parallel_for`.
//!
//! Before the pool, `ExecSpace::Tiled` paid one OS thread spawn + join per
//! team member per kernel launch — hundreds of microseconds of churn wrapped
//! around kernels that often run for less. This bench drives the same tiled
//! `par_for` on a 32³ box through both paths, first with a null kernel (the
//! standard launch-latency measurement: all overhead, no compute) and then
//! with a cheap stencil body. The acceptance bar is the pooled path beating
//! the spawn-per-call baseline by ≥5× on per-launch overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_parallel::{ExecSpace, IndexBox, IntVect, TiledExec, WorkerPool};

// An OpenMP-style team width typical of production configs (Cori KNL runs
// used 8-16 threads per rank). The spawn-per-call path pays one OS thread
// spawn per team member per launch; the pool path caps at the resident
// worker count and pays none.
const NTHREADS: usize = 8;

fn tiled() -> ExecSpace {
    ExecSpace::Tiled(TiledExec {
        nthreads: NTHREADS,
        tile_size: IntVect::new(32, 8, 8),
    })
}

fn stencil(i: i32, j: i32, k: i32) -> f64 {
    (i as f64).mul_add(1.5, (j * k) as f64)
}

fn median(c: &Criterion, suffix: &str) -> f64 {
    c.samples
        .iter()
        .find(|s| s.id.ends_with(suffix))
        .unwrap_or_else(|| panic!("missing sample {suffix}"))
        .median_secs()
}

fn bench(c: &mut Criterion) {
    let bx = IndexBox::cube(32);
    let ex = tiled();
    // Warm the global pool so both measurements see steady state.
    ex.par_for(bx, |_, _, _| {});
    let spawned_before = WorkerPool::global().stats().threads_spawned;

    let mut g = c.benchmark_group("worker_pool_32cube");
    g.sample_size(20);
    g.bench_function("null_pool", |b| b.iter(|| ex.par_for(bx, |_, _, _| {})));
    g.bench_function("null_spawn", |b| {
        b.iter(|| ex.par_for_spawn_per_call(bx, |_, _, _| {}))
    });
    g.bench_function("stencil_pool", |b| {
        b.iter(|| {
            ex.par_for(bx, |i, j, k| {
                std::hint::black_box(stencil(i, j, k));
            })
        })
    });
    g.bench_function("stencil_spawn", |b| {
        b.iter(|| {
            ex.par_for_spawn_per_call(bx, |i, j, k| {
                std::hint::black_box(stencil(i, j, k));
            })
        })
    });
    g.finish();

    let null_pool = median(c, "null_pool");
    let null_spawn = median(c, "null_spawn");
    let st_pool = median(c, "stencil_pool");
    let st_spawn = median(c, "stencil_spawn");
    let spawned_after = WorkerPool::global().stats().threads_spawned;
    println!("=== worker-pool ablation (tiled par_for, 32^3 box, {NTHREADS} threads) ===");
    println!(
        "launch overhead (null kernel): spawn-per-call {:.2} µs  pool {:.2} µs  -> {:.1}x (target >= 5x)",
        null_spawn * 1e6,
        null_pool * 1e6,
        null_spawn / null_pool
    );
    println!(
        "cheap stencil kernel:          spawn-per-call {:.2} µs  pool {:.2} µs  -> {:.1}x",
        st_spawn * 1e6,
        st_pool * 1e6,
        st_spawn / st_pool
    );
    println!(
        "pool threads spawned during timing: {}",
        spawned_after - spawned_before
    );
    assert_eq!(
        spawned_after, spawned_before,
        "pool must not spawn threads in steady state"
    );
    assert!(
        null_spawn / null_pool >= 5.0,
        "persistent pool must cut per-launch overhead by >= 5x (got {:.1}x)",
        null_spawn / null_pool
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
