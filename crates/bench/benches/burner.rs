//! **Burner Newton-solve comparison**: dense LU vs the analytic
//! sparse-Jacobian path (`microphysics::sparse`) behind the unified
//! `Burner` API, on the iso7 and aprox13 networks.
//!
//! The paper's §VI: "we can straightforwardly replace the dense linear
//! system with a sparse linear system. We know what the sparsity pattern
//! is … it is even possible to write the exact sequence of operations
//! needed for the linear solve." `SparseLu` compiles exactly that
//! operation sequence from the network's declared pattern (symbolic
//! factorization with min-degree ordering, once per network); this bench
//! measures what it buys per Newton solve and per complete burn.
//!
//! Emits `BENCH_burner.json` at the workspace root. Pass `--test` for the
//! CI smoke mode (tiny sample counts; the JSON is still written).

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{write_metrics_json, MetricPoint};
use exastro_microphysics::{
    Aprox13, Burner, BurnerConfig, DenseNewton, Iso7, LinearSolver, Network, PlainBurner,
    SolverChoice, SparseNewton, StellarEos, ZoneBurn,
};
use std::sync::Arc;
use std::time::Instant;

/// CI smoke mode: the vendored criterion shim ignores CLI arguments, so
/// the bench itself honours `--test`.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn co_fuel(net: &dyn Network) -> Vec<f64> {
    let mut x = vec![0.0; net.nspec()];
    x[net.index_of("c12")] = 0.5;
    x[net.index_of("o16")] = 0.5;
    x
}

/// A representative burner Jacobian at detonation conditions (the species
/// block; the burner's temperature row stays zero, which is inside the
/// declared pattern, so it exercises the same slot schedule).
fn newton_matrix(net: &dyn Network) -> Vec<f64> {
    let n = net.nspec();
    let m = n + 1;
    let x = co_fuel(net);
    let mut y = vec![0.0; m];
    exastro_microphysics::mass_to_molar(net.species(), &x, &mut y[..n]);
    y[n] = 2.8e9;
    let mut jac = vec![0.0; m * m];
    net.jac(5e7, 2.8e9, &y[..n], &mut jac);
    jac
}

/// Median wall time in ns of one Newton linear-algebra cycle (one factor
/// of I − γJ + two back-solves, VODE's typical per-step ratio) through the
/// `LinearSolver` trait — the isolated quantity the sparse path targets.
fn newton_cycle_ns(solver: &mut dyn LinearSolver, jac: &[f64], m: usize, samples: usize) -> f64 {
    let gamma = 1e-9; // keeps I − γJ strongly diagonally dominant
    let inner = 64;
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for k in 0..inner {
            solver.factor(jac, gamma).expect("factor");
            let mut b1 = vec![1.0; m];
            solver.solve(&mut b1);
            let mut b2 = vec![0.5; m];
            solver.solve(&mut b2);
            std::hint::black_box((k, &b1, &b2));
        }
        times.push(start.elapsed().as_secs_f64() * 1e9 / inner as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Burn the network once with the given solver policy; returns
/// (final T, Newton iterations, integrator-attributed solve ns).
fn burn_once(net: &dyn Network, eos: &StellarEos, choice: SolverChoice) -> (f64, u64, u64) {
    let cfg = BurnerConfig {
        solver: choice,
        ..Default::default()
    };
    let burner = PlainBurner::new(net, eos, cfg.bdf_for(net));
    let out = burner.burn(5e7, 2.8e9, &co_fuel(net), 1e-7).expect("burn");
    (out.t, out.stats.newton_iters, out.stats.solve_ns)
}

/// A field of detonation-adjacent zones with a deterministic ±2% spread in
/// (ρ, T) so every SIMD lane carries distinct state and the shared batch
/// controller has real work to arbitrate.
fn zone_set(net: &dyn Network, count: usize) -> Vec<ZoneBurn> {
    let x0 = co_fuel(net);
    (0..count)
        .map(|i| {
            let f = (i as f64 * 0.37).sin() * 0.02;
            ZoneBurn {
                zone: i as u64,
                rho: 5e7 * (1.0 + f),
                t0: 2.8e9 * (1.0 - f),
                x0: x0.clone(),
            }
        })
        .collect()
}

/// Best-of-`samples` aggregate throughput (zones/µs) of the scalar retry
/// ladder and of the batched SoA path at each lane width, over the same
/// zone field. One *round* measures every configuration back-to-back
/// before the next round starts, so a machine-load transient degrades the
/// scalar and batched numbers together and the best-of speedup *ratio*
/// stays stable even on a noisy box.
fn throughput_sweep(
    net: &dyn Network,
    eos: &StellarEos,
    widths: &[usize],
    zones: &[ZoneBurn],
    dt: f64,
    samples: usize,
) -> (f64, Vec<f64>) {
    let scalar = BurnerConfig {
        solver: SolverChoice::Sparse,
        ..Default::default()
    }
    .build(net, eos);
    let batched: Vec<_> = widths
        .iter()
        .map(|&width| {
            BurnerConfig {
                solver: SolverChoice::Sparse,
                batch_width: width,
                ..Default::default()
            }
            .build_batched(net, eos)
        })
        .collect();
    let mut scalar_best = 0.0f64;
    let mut batch_best = vec![0.0f64; widths.len()];
    for _ in 0..samples {
        let start = Instant::now();
        for z in zones {
            let rec = scalar
                .burn_zone(z.zone, z.rho, z.t0, &z.x0, dt)
                .expect("burn");
            std::hint::black_box(&rec);
        }
        let us = start.elapsed().as_secs_f64() * 1e6;
        scalar_best = scalar_best.max(zones.len() as f64 / us);
        for (best, burner) in batch_best.iter_mut().zip(&batched) {
            let start = Instant::now();
            let recs = burner.burn_all(zones, dt);
            let us = start.elapsed().as_secs_f64() * 1e6;
            for rec in &recs {
                assert!(rec.is_ok(), "batched burn failed");
            }
            std::hint::black_box(&recs);
            *best = (*best).max(zones.len() as f64 / us);
        }
    }
    (scalar_best, batch_best)
}

fn bench(c: &mut Criterion) {
    let smoke = test_mode();
    let samples = if smoke { 3 } else { 25 };
    let eos = StellarEos;
    let iso7 = Iso7::new();
    let aprox13 = Aprox13::new();
    let nets: [(&str, &dyn Network); 2] = [("iso7", &iso7), ("aprox13", &aprox13)];

    let mut metrics: Vec<MetricPoint> = Vec::new();
    println!("=== burner Newton-solve: dense vs analytic sparse (§VI) ===");
    for (name, net) in nets {
        let m = net.nspec() + 1;
        let csr = net.sparsity_csr();
        let lu = exastro_microphysics::SparseLu::compile(&csr);
        println!(
            "{name}: {m}×{m}, {} pattern nnz ({:.0}% empty), {} fill-in under min-degree",
            csr.nnz(),
            csr.empty_fraction() * 100.0,
            lu.fill_in()
        );
        metrics.push(MetricPoint::new(
            &format!("{name}/pattern_nnz"),
            csr.nnz() as f64,
            "entries",
        ));
        metrics.push(MetricPoint::new(
            &format!("{name}/fill_in"),
            lu.fill_in() as f64,
            "entries",
        ));

        // Isolated Newton cycle: factor + 2 solves through both solvers.
        let jac = newton_matrix(net);
        let mut dense = DenseNewton::new(m);
        let mut sparse = SparseNewton::new(Arc::new(lu));
        let dense_ns = newton_cycle_ns(&mut dense, &jac, m, samples);
        let sparse_ns = newton_cycle_ns(&mut sparse, &jac, m, samples);
        let speedup = dense_ns / sparse_ns;
        println!(
            "{name}: Newton cycle dense {dense_ns:.0} ns, sparse {sparse_ns:.0} ns \
             → {speedup:.2}× speedup"
        );
        metrics.push(MetricPoint::new(
            &format!("{name}/dense_newton_cycle"),
            dense_ns,
            "ns",
        ));
        metrics.push(MetricPoint::new(
            &format!("{name}/sparse_newton_cycle"),
            sparse_ns,
            "ns",
        ));
        metrics.push(MetricPoint::new(
            &format!("{name}/newton_solve_speedup"),
            speedup,
            "x",
        ));

        // Complete burns end-to-end: same physics, integrator-attributed
        // linear-algebra time from BdfStats::solve_ns.
        let (td, iters_d, solve_d) = burn_once(net, &eos, SolverChoice::Dense);
        let (ts, iters_s, solve_s) = burn_once(net, &eos, SolverChoice::Sparse);
        println!(
            "{name}: burn ΔT = {:.2e} K ({iters_d} vs {iters_s} Newton iters); \
             in-burn solve time {solve_d} ns dense, {solve_s} ns sparse",
            (td - ts).abs()
        );
        metrics.push(MetricPoint::new(
            &format!("{name}/burn_delta_t"),
            (td - ts).abs(),
            "K",
        ));
        metrics.push(MetricPoint::new(
            &format!("{name}/burn_solve_ns_dense"),
            solve_d as f64,
            "ns",
        ));
        metrics.push(MetricPoint::new(
            &format!("{name}/burn_solve_ns_sparse"),
            solve_s as f64,
            "ns",
        ));
    }

    // Batched SoA throughput: aggregate zones/µs over a perturbed zone
    // field, scalar ladder vs SIMD lane widths. The paper's batching
    // argument: one Nordsieck history and one amortized Jacobian per
    // batch turns the per-zone Newton loop into lane-inner SIMD sweeps.
    let zone_count = if smoke { 32 } else { 256 };
    let throughput_samples = if smoke { 3 } else { 5 };
    let burn_dt = 1e-7;
    let widths = [4usize, 8, 16];
    println!("=== batched SoA burner: aggregate zones/µs ({zone_count} zones) ===");
    for (name, net) in nets {
        let zones = zone_set(net, zone_count);
        let (scalar, batched) =
            throughput_sweep(net, &eos, &widths, &zones, burn_dt, throughput_samples);
        metrics.push(MetricPoint::new(
            &format!("{name}/zones_per_us_scalar"),
            scalar,
            "zones/us",
        ));
        print!("{name}: scalar {scalar:.4} zones/µs");
        for (&width, &tp) in widths.iter().zip(&batched) {
            let speedup = tp / scalar;
            print!(", w{width} {tp:.4} ({speedup:.2}×)");
            metrics.push(MetricPoint::new(
                &format!("{name}/zones_per_us_batch{width}"),
                tp,
                "zones/us",
            ));
            metrics.push(MetricPoint::new(
                &format!("{name}/batch_speedup_w{width}"),
                speedup,
                "x",
            ));
        }
        println!();
    }

    let path = write_metrics_json("burner", &metrics).expect("write BENCH_burner.json");
    println!("wrote {}\n", path.display());

    let mut g = c.benchmark_group("burner");
    g.sample_size(if smoke { 2 } else { 15 });
    for (name, net) in nets {
        g.bench_function(format!("{name}/dense"), |b| {
            b.iter(|| std::hint::black_box(burn_once(net, &eos, SolverChoice::Dense)))
        });
        g.bench_function(format!("{name}/sparse"), |b| {
            b.iter(|| std::hint::black_box(burn_once(net, &eos, SolverChoice::Sparse)))
        });
        let zones = zone_set(net, if smoke { 8 } else { 64 });
        let batched = BurnerConfig {
            solver: SolverChoice::Sparse,
            ..Default::default()
        }
        .build_batched(net, &eos);
        g.bench_function(format!("{name}/batch8"), |b| {
            b.iter(|| std::hint::black_box(batched.burn_all(&zones, 1e-7)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
