//! **Chaos goodput**: the self-healing service (`crates/service`) under
//! injected node failures — goodput (completed jobs/hour) and
//! job-completion rate as the failure rate rises from zero to harsh.
//!
//! At full scale node failure is the expected case (PAPER §V); the
//! question for a serving layer is not *whether* it survives but *how
//! much throughput survives with it*. This bench drives the same
//! campaign at three failure rates over the same seeded fault schedule:
//!
//! - **immortal** — no fault model (the PR 7 baseline shape);
//! - **moderate** — node MTBF ≈ 25× a job's runtime, repairs land;
//! - **harsh**    — node MTBF ≈ 6× a job's runtime plus straggler waves.
//!
//! Emits `BENCH_chaos.json` at the workspace root. The
//! `chaos/goodput_jobs_per_hour` label (goodput at the *moderate* rate —
//! the production-like regime) is perf-gated against `ci/baselines/` at
//! the tight tolerance; completion rates and recovery counts are
//! reported, not gated. Pass `--test` for the CI smoke mode (small
//! campaign; JSON still written).

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{write_metrics_json, MetricPoint};
use exastro_machine::NodeFaultConfig;
use exastro_service::{JobSpec, Service, ServiceConfig};
use std::time::Instant;

/// CI smoke mode: the vendored criterion shim ignores CLI arguments, so
/// the bench itself honours `--test`.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn chaos_config(tag: &str, jobs: usize, faults: Option<NodeFaultConfig>) -> ServiceConfig {
    ServiceConfig {
        nodes: 4,
        queue_bound: jobs + 8,
        quarantine_limit: 10,
        idle_tick_sim_us: 2_000.0,
        faults,
        ckpt_root: std::env::temp_dir()
            .join(format!("exastro_bench_chaos_{tag}_{}", std::process::id())),
        ..Default::default()
    }
}

fn fault_profile(node_mtbf_s: f64, stragglers: bool) -> NodeFaultConfig {
    NodeFaultConfig {
        seed: 0xC4A05,
        node_mtbf_s,
        repair_s: Some(0.020),
        straggler_mtbf_s: if stragglers { 0.040 } else { f64::INFINITY },
        straggler_factor: 4.0,
        straggler_duration_s: 0.040,
        ..Default::default()
    }
}

struct ChaosResult {
    goodput_jobs_per_hour: f64,
    completion_rate: f64,
    node_failures: u64,
    recoveries: u64,
    migrations: u64,
    quarantined: usize,
}

/// One campaign: `jobs` identical 1-node tenants over the 4-node pool
/// (steady 1.5–2× oversubscription while the backlog drains), under the
/// given fault schedule.
fn run_campaign(tag: &str, jobs: usize, faults: Option<NodeFaultConfig>) -> ChaosResult {
    let mut svc = Service::new(chaos_config(tag, jobs, faults));
    for i in 0..jobs {
        svc.submit(JobSpec {
            resolution: 8,
            steps: 4 + (i as u64 % 3),
            ..Default::default()
        })
        .expect("backlog admits");
    }
    assert!(svc.run_until_idle(1_000_000), "campaign must drain");
    let report = svc.report();
    assert_eq!(report.failed, 0, "chaos must never surface as Failed");
    let terminal = report.completed + report.quarantined;
    assert_eq!(terminal, jobs, "every job must reach a terminal state");
    ChaosResult {
        goodput_jobs_per_hour: report.jobs_per_hour,
        completion_rate: report.completed as f64 / jobs as f64,
        node_failures: report.node_failures,
        recoveries: report.recoveries,
        migrations: report.straggler_migrations,
        quarantined: report.quarantined,
    }
}

fn bench(c: &mut Criterion) {
    let smoke = test_mode();
    let jobs = if smoke { 12 } else { 48 };

    let rates: [(&str, Option<NodeFaultConfig>); 3] = [
        ("immortal", None),
        ("moderate", Some(fault_profile(0.100, false))),
        ("harsh", Some(fault_profile(0.025, true))),
    ];
    let mut metrics = Vec::new();
    let mut moderate_goodput = 0.0;
    for (name, faults) in rates {
        let start = Instant::now();
        let r = run_campaign(name, jobs, faults);
        println!(
            "chaos/{name}: {jobs} jobs in {:.2}s wall -> goodput {:.0} jobs/h, \
             completion {:.0}%, {} kill(s), {} recovery(ies), {} migration(s), \
             {} quarantined",
            start.elapsed().as_secs_f64(),
            r.goodput_jobs_per_hour,
            100.0 * r.completion_rate,
            r.node_failures,
            r.recoveries,
            r.migrations,
            r.quarantined
        );
        if name == "moderate" {
            moderate_goodput = r.goodput_jobs_per_hour;
            assert!(
                r.node_failures >= 1,
                "the moderate schedule must actually inject failures"
            );
        }
        metrics.push(MetricPoint::new(
            &format!("chaos/completion_rate_{name}"),
            r.completion_rate,
            "frac",
        ));
        metrics.push(MetricPoint::new(
            &format!("chaos/node_failures_{name}"),
            r.node_failures as f64,
            "events",
        ));
        metrics.push(MetricPoint::new(
            &format!("chaos/recoveries_{name}"),
            r.recoveries as f64,
            "events",
        ));
        metrics.push(MetricPoint::new(
            &format!("chaos/migrations_{name}"),
            r.migrations as f64,
            "events",
        ));
    }
    // The gated label: goodput at the production-like moderate rate.
    metrics.push(MetricPoint::new(
        "chaos/goodput_jobs_per_hour",
        moderate_goodput,
        "jobs/h",
    ));

    let path = write_metrics_json("chaos", &metrics).expect("write BENCH_chaos.json");
    println!("wrote {}\n", path.display());

    let mut g = c.benchmark_group("chaos");
    g.sample_size(2);
    g.bench_function("mini_storm", |b| {
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            std::hint::black_box(run_campaign(
                &format!("mini{n}"),
                6,
                Some(fault_profile(0.050, true)),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
