//! **Figure 2**: Castro Sedov–Taylor weak scaling (canonical + best/worst
//! envelopes) on the simulated Summit.
//!
//! Prints the three series of the figure, then Criterion-times the 64-node
//! workload construction + simulation (the cost of one scaling data point).

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{write_bench_json, BenchPoint};
use exastro_machine::{
    canonical_series, envelope_series, overlapped_series, sedov_workload,
    sedov_workload_overlapped, Machine,
};

fn print_figure() {
    let m = Machine::summit();
    println!("\n=== Figure 2: Weak scaling of Castro Sedov ===");
    println!("canonical (256³/node, 64³ boxes):");
    println!("{:>6} {:>12} {:>11}", "nodes", "zones/µs", "normalized");
    let mut points = Vec::new();
    for p in canonical_series(&m, &[1, 8, 64, 512]) {
        println!(
            "{:>6} {:>12.1} {:>11.3}",
            p.nodes, p.throughput, p.normalized
        );
        points.push(BenchPoint::new(
            "canonical",
            p.nodes,
            p.throughput,
            p.normalized,
        ));
    }
    println!("\ncanonical + task-graph overlapped exchange:");
    println!("{:>6} {:>12} {:>11}", "nodes", "zones/µs", "normalized");
    for p in overlapped_series(&m, &[1, 8, 64, 512]) {
        println!(
            "{:>6} {:>12.1} {:>11.3}",
            p.nodes, p.throughput, p.normalized
        );
        points.push(BenchPoint::new(
            "overlapped",
            p.nodes,
            p.throughput,
            p.normalized,
        ));
    }
    let nodes: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let (best, worst) = envelope_series(&m, &nodes);
    println!("\nenvelopes:");
    println!("{:>6} {:>11} {:>11}", "nodes", "best", "worst");
    for (b, w) in best.iter().zip(&worst) {
        println!(
            "{:>6} {:>11.3} {:>11.3}",
            b.nodes, b.normalized, w.normalized
        );
        points.push(BenchPoint::new("best", b.nodes, b.throughput, b.normalized));
        points.push(BenchPoint::new(
            "worst",
            w.nodes,
            w.throughput,
            w.normalized,
        ));
    }
    match write_bench_json("fig2", &points) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nBENCH_fig2.json not written: {e}"),
    }
    println!("\npaper: 130 zones/µs at 1 node; ~42000 zones/µs and ~63% efficiency at 512 nodes\n");
}

fn bench(c: &mut Criterion) {
    print_figure();
    let m = Machine::summit();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("simulate_64_node_point", |b| {
        b.iter(|| {
            let w = sedov_workload(&m, 64, 1024, 64, 32);
            std::hint::black_box(m.simulate_step(&w))
        })
    });
    g.bench_function("simulate_64_node_point_overlapped", |b| {
        b.iter(|| {
            let w = sedov_workload_overlapped(&m, 64, 1024, 64, 32);
            std::hint::black_box(m.simulate_step(&w))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
