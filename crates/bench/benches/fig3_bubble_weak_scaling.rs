//! **Figure 3**: MAESTROeX reacting-bubble weak scaling on the simulated
//! Summit, plus a real single-box low-Mach step (projection + burn) to
//! validate the phase anatomy the model assumes.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_amr::{BoxArray, DistStrategy, DistributionMapping, Geometry, IndexBox, MultiFab};
use exastro_bench::{write_bench_json, BenchPoint};
use exastro_machine::{bubble_point, bubble_series, bubble_series_overlapped, Machine};
use exastro_maestro::{bubble_maestro, init_bubble, BubbleParams, LmLayout};
use exastro_microphysics::{CBurn2, Network, StellarEos};

fn print_figure() {
    let m = Machine::summit();
    println!("\n=== Figure 3: Weak scaling of MAESTROeX reacting bubble ===");
    println!(
        "{:>6} {:>10} {:>11} {:>12} {:>12} {:>9}",
        "nodes", "zones/µs", "normalized", "react [µs]", "mgrid [µs]", "mg/react"
    );
    let mut points = Vec::new();
    for p in bubble_series(&m, &[1, 8, 27, 64, 125]) {
        println!(
            "{:>6} {:>10.2} {:>11.3} {:>12.0} {:>12.0} {:>9.2}",
            p.nodes,
            p.throughput,
            p.normalized,
            p.react_us,
            p.multigrid_us,
            p.multigrid_us / p.react_us
        );
        points.push(BenchPoint::new(
            "bubble",
            p.nodes,
            p.throughput,
            p.normalized,
        ));
    }
    println!("\nwith task-graph overlapped exchange:");
    for p in bubble_series_overlapped(&m, &[1, 8, 27, 64, 125]) {
        println!(
            "{:>6} {:>10.2} {:>11.3} {:>12.0} {:>12.0} {:>9.2}",
            p.nodes,
            p.throughput,
            p.normalized,
            p.react_us,
            p.multigrid_us,
            p.multigrid_us / p.react_us
        );
        points.push(BenchPoint::new(
            "bubble_overlapped",
            p.nodes,
            p.throughput,
            p.normalized,
        ));
    }
    match write_bench_json("fig3", &points) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nBENCH_fig3.json not written: {e}"),
    }
    println!("\npaper: 11 zones/µs at 1 node (~20× CPU); reactions ≈ multigrid at 1 node;");
    println!("multigrid ≈ 6× reactions at 125 nodes\n");
}

fn bench(c: &mut Criterion) {
    print_figure();

    // Real solver micro-reference: one low-Mach step on a 16³ bubble.
    static EOS: StellarEos = StellarEos;
    let net = Box::leak(Box::new(CBurn2::new()));
    let geom = Geometry::new(
        IndexBox::cube(16),
        [0.0; 3],
        [3.6e7; 3],
        [true, true, false],
        exastro_amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let dm = DistributionMapping::new(&ba, 1, DistStrategy::Sfc);
    let layout = LmLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 1);
    let base = init_bubble(
        &mut state,
        &geom,
        &layout,
        &EOS,
        net,
        &BubbleParams::default(),
    );
    let maestro = bubble_maestro(&EOS, net, base);

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("lowmach_step_16cubed", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(maestro.advance(&mut s, &geom, 1e-3))
        })
    });
    let m = Machine::summit();
    g.bench_function("simulate_125_node_point", |b| {
        b.iter(|| std::hint::black_box(bubble_point(&m, 125, None)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
