//! **Figure 4**: the white-dwarf head-on collision at two resolutions.
//!
//! The paper's result: the *higher*-resolution run (contact point refined
//! 16×) ignites **earlier** than the 50-km uniform-grid run — the opposite
//! of the "maybe later ignition will save the supernova interpretation"
//! hope — and both remain numerically unresolved (burning timescale below
//! the heat-transfer timescale).
//!
//! Here the same collision is run at two uniform resolutions (the
//! substitution for 512³ + AMR, DESIGN.md): a coarse and a 2× finer grid
//! with identical physics. We report the ignition time of each, the
//! contact-region density at ignition, and the stability diagnostic.
//! Expected shape: fine ignites earlier; diagnostic ratio < 1 (unresolved).

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_amr::{BcSpec, BoxArray, DistributionMapping, Geometry, IndexBox, MultiFab};
use exastro_castro::{
    contact_diagnostics, detonation_stability, init_collision, BurnOptions, Castro,
    CollisionParams, Gravity, GravityMode, StateLayout, T_IGNITION,
};
use exastro_microphysics::{CBurn2, Network, StellarEos};

fn collision_params() -> CollisionParams {
    CollisionParams {
        // A faster approach than the default keeps the bench runtime sane
        // while preserving the contact-heating physics.
        v_approach: 6e8,
        separation: 3.0,
        ..Default::default()
    }
}

struct RunResult {
    ignition_time: Option<f64>,
    contact_density: f64,
    min_stability_ratio: f64,
    steps: usize,
}

fn run_collision(n: i32, max_steps: usize) -> RunResult {
    let params = collision_params();
    let half_width = 2.5 * params.radius;
    let geom = Geometry::new(
        IndexBox::cube(n),
        [-half_width; 3],
        [half_width; 3],
        [false; 3],
        exastro_amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), (n / 2).max(8), 4);
    let dm = DistributionMapping::all_local(&ba);
    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    init_collision(&mut state, &geom, &layout, &eos, &net, &params);

    let mut castro = Castro::new(&eos, &net);
    castro.hydro.cfl = 0.2;
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        n_bins: 128,
    };
    castro.burn = Some(BurnOptions {
        min_temp: 8e8,
        min_dens: 1e4,
        ..Default::default()
    });
    castro.bc = BcSpec::outflow();

    let mut t = 0.0;
    for step in 0..max_steps {
        let dt0 = castro.estimate_dt(&state, &geom);
        let (stats, dt) = castro
            .advance_level_safe(&mut state, &geom, dt0)
            .expect("collision step unrecoverable");
        t += dt;
        if stats.max_temp >= T_IGNITION {
            let d = contact_diagnostics(&state, &geom);
            let rep = detonation_stability(&state, &geom, &layout, &eos, &net, 1e14);
            return RunResult {
                ignition_time: Some(t),
                contact_density: d.max_dens,
                min_stability_ratio: rep.min_ratio,
                steps: step + 1,
            };
        }
    }
    let d = contact_diagnostics(&state, &geom);
    RunResult {
        ignition_time: None,
        contact_density: d.max_dens,
        min_stability_ratio: f64::INFINITY,
        steps: max_steps,
    }
}

fn print_figure() {
    println!("\n=== Figure 4: WD collision, ignition vs. resolution ===");
    let params = collision_params();
    let dx_of = |n: i32| 5.0 * params.radius / n as f64 / 1e5;
    let coarse = run_collision(16, 800);
    println!(
        "coarse  grid (16³, dx = {:>6.0} km): ignition t = {:?} s after {} steps; \
         contact rho = {:.2e}; min τ_burn/τ_transfer = {:.2e}",
        dx_of(16),
        coarse.ignition_time,
        coarse.steps,
        coarse.contact_density,
        coarse.min_stability_ratio
    );
    let fine = run_collision(32, 1600);
    println!(
        "refined grid (32³, dx = {:>6.0} km): ignition t = {:?} s after {} steps; \
         contact rho = {:.2e}; min τ_burn/τ_transfer = {:.2e}",
        dx_of(32),
        fine.ignition_time,
        fine.steps,
        fine.contact_density,
        fine.min_stability_ratio
    );
    match (coarse.ignition_time, fine.ignition_time) {
        (Some(tc), Some(tf)) => {
            println!(
                "\nshape check: fine/coarse ignition-time ratio = {:.3}",
                tf / tc
            );
            println!(
                "reproduced: ignition time and contact density change materially with \
                 resolution — the paper's core point that unconverged runs are \
                 qualitatively untrustworthy."
            );
            println!(
                "deviation: in the paper the 16×-refined run ignites *earlier*; at our \
                 16–32³ grids (stars ~6 zones across vs ~200 in the paper) the smeared \
                 stellar surface makes effective contact earlier on the *coarse* grid, \
                 which wins. See EXPERIMENTS.md §Fig4."
            );
        }
        _ => println!("\n(one or both runs did not ignite within the step budget)"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    // Time one coarse advance step (the unit of the study).
    let params = collision_params();
    let half_width = 2.5 * params.radius;
    let geom = Geometry::new(
        IndexBox::cube(16),
        [-half_width; 3],
        [half_width; 3],
        [false; 3],
        exastro_amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let dm = DistributionMapping::all_local(&ba);
    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    init_collision(&mut state, &geom, &layout, &eos, &net, &params);
    let mut castro = Castro::new(&eos, &net);
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        n_bins: 128,
    };
    castro.bc = BcSpec::outflow();
    let dt = castro.estimate_dt(&state, &geom);
    g.bench_function("collision_step_16cubed", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro.advance_level(&mut s, &geom, dt))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
