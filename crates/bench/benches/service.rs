//! **Multi-tenant service throughput**: the job runtime (`crates/service`)
//! under sustained load — a 200+-job backlog at 2× rank oversubscription
//! with a late high-priority wave that forces checkpoint-preemptions.
//!
//! The paper's target workflow is not one hero run but campaigns of many
//! independent simulations sharing a machine (§IV); this bench measures
//! the serving layer itself: jobs/hour through the scheduler, p50/p99
//! job latency with ≥200 jobs queued, and rank utilization while the
//! backlog holds demand at twice the pool.
//!
//! Emits `BENCH_service.json` at the workspace root; the `jobs_per_hour`
//! label is perf-gated against `ci/baselines/` (the latency and
//! utilization labels are reported, not gated — they move with machine
//! speed in ways the conservative throughput floor already covers).
//! Pass `--test` for the CI smoke mode (small backlog; JSON still
//! written).

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{write_metrics_json, MetricPoint};
use exastro_service::{JobSpec, PriorityClass, Scenario, Service, ServiceConfig};
use std::time::Instant;

/// CI smoke mode: the vendored criterion shim ignores CLI arguments, so
/// the bench itself honours `--test`.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn svc_config(tag: &str, queue_bound: usize) -> ServiceConfig {
    ServiceConfig {
        nodes: 2, // 12-rank pool; every 1-node job leases 6 → 2 run at once
        queue_bound,
        ckpt_root: std::env::temp_dir().join(format!(
            "exastro_bench_service_{tag}_{}",
            std::process::id()
        )),
        ..Default::default()
    }
}

fn backlog_spec(i: usize) -> JobSpec {
    JobSpec {
        scenario: Scenario::SedovBlast,
        resolution: 8,
        steps: 2 + (i as u64 % 2),
        priority: if i.is_multiple_of(3) {
            PriorityClass::Batch
        } else {
            PriorityClass::Normal
        },
        ..Default::default()
    }
}

struct LoadResult {
    jobs_per_hour: f64,
    p50_s: f64,
    p99_s: f64,
    utilization: f64,
    queue_peak: usize,
    preemptions: u64,
    completed: usize,
}

/// Drive one full campaign: `backlog` jobs queued up front (every running
/// job needs 6 of 12 ranks while the queue holds ≥ `backlog − 2` more —
/// demand far beyond 2× the pool for the whole run), then a
/// high-priority wave arriving mid-flight that preempts the running
/// batch/normal tenants.
fn run_campaign(tag: &str, backlog: usize, high_wave: usize) -> LoadResult {
    let mut svc = Service::new(svc_config(tag, backlog + high_wave + 8));
    for i in 0..backlog {
        svc.submit(backlog_spec(i)).expect("backlog admits");
    }
    assert!(
        svc.queue_depth() >= backlog,
        "backlog must actually be queued"
    );
    // Let the pool fill and the first tenants make progress...
    for _ in 0..3 {
        svc.tick();
    }
    // ...then the deadline wave lands and preempts its way on.
    for _ in 0..high_wave {
        svc.submit(JobSpec {
            priority: PriorityClass::High,
            resolution: 8,
            steps: 2,
            ..Default::default()
        })
        .expect("high wave admits");
    }
    assert!(svc.run_until_idle(1_000_000), "campaign must drain");
    let report = svc.report();
    assert_eq!(report.failed, 0, "campaign jobs must not fail");
    LoadResult {
        jobs_per_hour: report.jobs_per_hour,
        p50_s: report.latency_p50_s,
        p99_s: report.latency_p99_s,
        utilization: report.rank_utilization,
        queue_peak: report.queue_peak,
        preemptions: report.preemptions,
        completed: report.completed,
    }
}

fn bench(c: &mut Criterion) {
    let smoke = test_mode();
    let backlog = if smoke { 24 } else { 208 };
    let high_wave = if smoke { 4 } else { 24 };

    println!("=== service: {backlog}-job backlog + {high_wave}-job deadline wave ===");
    let start = Instant::now();
    let r = run_campaign("campaign", backlog, high_wave);
    println!(
        "drained {} jobs in {:.2}s wall: {:.0} jobs/hour, latency p50 {:.3}s p99 {:.3}s",
        r.completed,
        start.elapsed().as_secs_f64(),
        r.jobs_per_hour,
        r.p50_s,
        r.p99_s
    );
    println!(
        "queue peak {} (≥200 requirement: {}), rank utilization {:.1}%, {} preemption(s)",
        r.queue_peak,
        if smoke { "waived in smoke" } else { "met" },
        100.0 * r.utilization,
        r.preemptions
    );
    if !smoke {
        assert!(
            r.queue_peak >= 200,
            "latency must be measured under a 200+ backlog"
        );
    }
    assert!(r.preemptions > 0, "the high wave must preempt");

    let metrics = vec![
        MetricPoint::new("service/jobs_per_hour", r.jobs_per_hour, "jobs/h"),
        MetricPoint::new("service/latency_p50", r.p50_s, "s"),
        MetricPoint::new("service/latency_p99", r.p99_s, "s"),
        MetricPoint::new("service/rank_utilization_2x_oversub", r.utilization, "frac"),
        MetricPoint::new("service/queue_peak", r.queue_peak as f64, "jobs"),
        MetricPoint::new("service/preemptions", r.preemptions as f64, "events"),
    ];
    let path = write_metrics_json("service", &metrics).expect("write BENCH_service.json");
    println!("wrote {}\n", path.display());

    let mut g = c.benchmark_group("service");
    g.sample_size(2);
    g.bench_function("mini_campaign", |b| {
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            std::hint::black_box(run_campaign(&format!("mini{n}"), 8, 2))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
