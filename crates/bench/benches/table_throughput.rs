//! **§IV in-text throughput numbers**: the zones/µs table.
//!
//! The paper reports: Castro ≈ 25 zones/µs per V100 under optimal
//! conditions; 130 zones/µs per Summit node on the canonical Sedov; the
//! MAESTROeX bubble at 11 zones/µs per node, ~20× a CPU node. This bench
//! prints the simulated-device equivalents plus the *real* wall-clock
//! throughput of the Rust kernels on the host CPU for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use exastro_bench::{
    bench_castro, measure_throughput, sedov_fixture, write_bench_json, BenchPoint,
};
use exastro_castro::KernelStructure;
use exastro_machine::{bubble_point, sedov_workload, CpuNodeReference, Machine};
use exastro_parallel::{DeviceConfig, KernelProfile, SimDevice};

fn print_table() {
    println!("\n=== §IV throughput table (zones/µs) ===");
    let m = Machine::summit();

    // Single V100, optimally fed (one big box, pure hydro).
    let dev = SimDevice::new(DeviceConfig::v100());
    let zones = 128i64.pow(3);
    let prof = KernelProfile::new(1.2, 160); // full hydro update cost
    let t = dev.kernel_time_us(zones, &prof) + 12.0 * dev.config().launch_overhead_us;
    println!(
        "sim V100, optimal hydro      : {:>8.1}   (paper: ~25)",
        zones as f64 / t
    );

    // A Titan-era K20X for context: Cholla reported 7 zones/µs on Titan's
    // K20X GPUs for a similar hydro algorithm (§IV).
    let k20 = SimDevice::new(DeviceConfig::k20x());
    let tk = k20.kernel_time_us(zones, &prof) + 12.0 * k20.config().launch_overhead_us;
    println!(
        "sim K20X, optimal hydro      : {:>8.1}   (Cholla on Titan: ~7)",
        zones as f64 / tk
    );

    // One Summit node, canonical Sedov.
    let w = sedov_workload(&m, 1, 256, 64, 32);
    let sedov_1 = m.simulate_step(&w).throughput;
    println!("sim node, canonical Sedov    : {sedov_1:>8.1}   (paper: 130)");

    // 512 nodes.
    let w512 = sedov_workload(&m, 512, 2048, 64, 32);
    let sedov_512 = m.simulate_step(&w512).throughput;
    println!("sim 512 nodes, Sedov         : {sedov_512:>8.1}   (paper: ~42000)");

    // Bubble.
    let p = bubble_point(&m, 1, None);
    println!(
        "sim node, reacting bubble    : {:>8.2}   (paper: 11)",
        p.throughput
    );

    // GPU-node vs CPU-node ratios (paper: ~20× for the bubble; hydro
    // zones/µs is "O(1)" on a CPU node).
    let cpu = CpuNodeReference::default();
    println!(
        "GPU/CPU node ratio, Sedov    : {:>8.1}   (CPU ref {:.1} zones/µs)",
        sedov_1 / cpu.sedov_zones_per_us,
        cpu.sedov_zones_per_us
    );
    println!(
        "GPU/CPU node ratio, bubble   : {:>8.1}   (paper: ~20; CPU ref {:.2} zones/µs)",
        p.throughput / cpu.bubble_zones_per_us,
        cpu.bubble_zones_per_us
    );

    // Real Rust kernel on this host (single core) for reference.
    let (geom, state, _layout, eos, net) = sedov_fixture(32, 32);
    let castro = bench_castro(&eos, &net, KernelStructure::Flat);
    let dt = castro.estimate_dt(&state, &geom);
    let mut s = state.clone();
    let tput = measure_throughput(geom.domain().num_zones(), || {
        castro.advance_level(&mut s, &geom, dt).unwrap();
    });
    println!("host CPU core, real hydro    : {tput:>8.3}   (one core of this machine)\n");

    // Machine-readable artifact: every zones/µs row keyed by node count,
    // with efficiency relative to ideal scaling off the 1-node Sedov point.
    let points = vec![
        BenchPoint::new("sim_v100_optimal_hydro", 1, zones as f64 / t, 1.0),
        BenchPoint::new("sim_k20x_optimal_hydro", 1, zones as f64 / tk, 1.0),
        BenchPoint::new("sim_node_canonical_sedov", 1, sedov_1, 1.0),
        BenchPoint::new(
            "sim_512_nodes_sedov",
            512,
            sedov_512,
            sedov_512 / (512.0 * sedov_1),
        ),
        BenchPoint::new("sim_node_reacting_bubble", 1, p.throughput, 1.0),
        BenchPoint::new("host_cpu_core_real_hydro", 1, tput, 1.0),
    ];
    match write_bench_json("table", &points) {
        Ok(path) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("BENCH_table.json not written: {e}\n"),
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let (geom, state, layout, eos, net) = sedov_fixture(32, 32);
    let _ = layout;
    let castro = bench_castro(&eos, &net, KernelStructure::Flat);
    let dt = castro.estimate_dt(&state, &geom);
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    g.bench_function("hydro_step_32cubed", |b| {
        b.iter(|| {
            let mut s = state.clone();
            std::hint::black_box(castro.advance_level(&mut s, &geom, dt))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
