//! # exastro-bench
//!
//! Benchmark and figure-regeneration harnesses. Each Criterion bench under
//! `benches/` regenerates one table or figure from *Preparing Nuclear
//! Astrophysics for Exascale* (printing the series the paper plots) and
//! then times a representative kernel. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured comparisons.

#![forbid(unsafe_code)]

use exastro_amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro_castro::{Castro, Floors, Hydro, KernelStructure, StateLayout};
use exastro_microphysics::{CBurn2, GammaLaw, Network};
use exastro_parallel::Real;

/// Build a ready-to-run Sedov state for kernel benchmarking.
pub fn sedov_fixture(n: i32, max_grid: i32) -> (Geometry, MultiFab, StateLayout, GammaLaw, CBurn2) {
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), max_grid, 8);
    let dm = DistributionMapping::all_local(&ba);
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    exastro_castro::init_sedov(
        &mut state,
        &geom,
        &layout,
        &eos,
        &exastro_castro::SedovParams::default(),
    );
    (geom, state, layout, eos, net)
}

/// A Castro driver configured for dimensionless benchmark problems.
pub fn bench_castro<'a>(
    eos: &'a GammaLaw,
    net: &'a CBurn2,
    structure: KernelStructure,
) -> Castro<'a> {
    let mut c = Castro::new(eos, net);
    c.hydro = Hydro {
        cfl: 0.4,
        structure,
        floors: Floors::dimensionless(),
    };
    c.bc = BcSpec::outflow();
    c
}

/// Wall-clock zones/µs of `f` advancing `zones` zones.
pub fn measure_throughput<F: FnMut()>(zones: i64, mut f: F) -> Real {
    let start = std::time::Instant::now();
    f();
    let us = start.elapsed().as_secs_f64() * 1e6;
    zones as Real / us
}
