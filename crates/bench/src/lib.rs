//! # exastro-bench
//!
//! Benchmark and figure-regeneration harnesses. Each Criterion bench under
//! `benches/` regenerates one table or figure from *Preparing Nuclear
//! Astrophysics for Exascale* (printing the series the paper plots) and
//! then times a representative kernel. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured comparisons.

#![forbid(unsafe_code)]

use exastro_amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro_castro::{Castro, Floors, Hydro, KernelStructure, StateLayout};
use exastro_microphysics::{CBurn2, GammaLaw, Network};
use exastro_parallel::Real;
use std::io::Write;
use std::path::PathBuf;

/// One machine-readable data point destined for a `BENCH_*.json` artifact:
/// a node count mapped to its absolute throughput and parallel efficiency.
#[derive(Clone, Debug)]
pub struct BenchPoint {
    /// Row label (series name for figures, row name for tables).
    pub label: String,
    /// Simulated node count.
    pub nodes: usize,
    /// Absolute throughput in zones/µs.
    pub zones_per_us: f64,
    /// Efficiency normalized to the ideal 1-node scaling (1.0 = perfect).
    pub efficiency: f64,
}

impl BenchPoint {
    /// Convenience constructor.
    pub fn new(label: &str, nodes: usize, zones_per_us: f64, efficiency: f64) -> Self {
        Self {
            label: label.to_string(),
            nodes,
            zones_per_us,
            efficiency,
        }
    }
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Infinity tokens; clamp them to null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize `points` and write `BENCH_{name}.json` at the workspace root
/// (benches run with the crate directory as cwd, so we walk up two levels).
/// Returns the path written. Serialization is hand-rolled: the container
/// has no serde, and the schema is four fields.
pub fn write_bench_json(name: &str, points: &[BenchPoint]) -> std::io::Result<PathBuf> {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let path = root.join(format!("BENCH_{name}.json"));
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{name}\",\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"nodes\": {}, \"zones_per_us\": {}, \"efficiency\": {}}}{sep}\n",
            p.label,
            p.nodes,
            json_f64(p.zones_per_us),
            json_f64(p.efficiency)
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(out.as_bytes())?;
    Ok(path)
}

/// One named scalar measurement destined for a `BENCH_*.json` artifact —
/// the schema for benches whose results are not scaling curves (solver
/// timings, speedups, agreement errors).
#[derive(Clone, Debug)]
pub struct MetricPoint {
    /// Metric name, e.g. `aprox13/newton_solve_speedup`.
    pub label: String,
    /// The measured value.
    pub value: f64,
    /// Unit string, e.g. `ns`, `x`, `K`.
    pub unit: String,
}

impl MetricPoint {
    /// Convenience constructor.
    pub fn new(label: &str, value: f64, unit: &str) -> Self {
        Self {
            label: label.to_string(),
            value,
            unit: unit.to_string(),
        }
    }
}

/// Serialize scalar `metrics` and write `BENCH_{name}.json` at the
/// workspace root. Same hand-rolled serialization rationale as
/// [`write_bench_json`].
pub fn write_metrics_json(name: &str, metrics: &[MetricPoint]) -> std::io::Result<PathBuf> {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let path = root.join(format!("BENCH_{name}.json"));
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{name}\",\n"));
    out.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{sep}\n",
            m.label,
            json_f64(m.value),
            m.unit
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(out.as_bytes())?;
    Ok(path)
}

/// Build a ready-to-run Sedov state for kernel benchmarking.
pub fn sedov_fixture(n: i32, max_grid: i32) -> (Geometry, MultiFab, StateLayout, GammaLaw, CBurn2) {
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), max_grid, 8);
    let dm = DistributionMapping::all_local(&ba);
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    exastro_castro::init_sedov(
        &mut state,
        &geom,
        &layout,
        &eos,
        &exastro_castro::SedovParams::default(),
    );
    (geom, state, layout, eos, net)
}

/// A Castro driver configured for dimensionless benchmark problems.
pub fn bench_castro<'a>(
    eos: &'a GammaLaw,
    net: &'a CBurn2,
    structure: KernelStructure,
) -> Castro<'a> {
    let mut c = Castro::new(eos, net);
    c.hydro = Hydro {
        cfl: 0.4,
        structure,
        overlap: true,
        floors: Floors::dimensionless(),
    };
    c.bc = BcSpec::outflow();
    c
}

/// Wall-clock zones/µs of `f` advancing `zones` zones.
pub fn measure_throughput<F: FnMut()>(zones: i64, mut f: F) -> Real {
    let start = std::time::Instant::now();
    f();
    let us = start.elapsed().as_secs_f64() * 1e6;
    zones as Real / us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_lands_at_workspace_root_and_parses() {
        let pts = vec![
            BenchPoint::new("canonical", 1, 130.0, 1.0),
            BenchPoint::new("canonical", 512, 42000.0, 0.63),
        ];
        let path = write_bench_json("selftest", &pts).unwrap();
        assert!(path.ends_with("BENCH_selftest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"nodes\": 512"));
        assert!(text.contains("\"zones_per_us\": 42000"));
        // Same number of opening and closing braces -> structurally sane.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced JSON: {text}"
        );
        // Non-finite values must degrade to null, not invalid tokens.
        let bad = vec![BenchPoint::new("x", 1, f64::NAN, f64::INFINITY)];
        let p2 = write_bench_json("selftest", &bad).unwrap();
        let t2 = std::fs::read_to_string(&p2).unwrap();
        assert!(t2.contains("\"zones_per_us\": null"));
        assert!(!t2.contains("NaN") && !t2.contains("inf"));
        std::fs::remove_file(p2).unwrap();
    }

    #[test]
    fn metrics_json_round_trips_structurally() {
        let ms = vec![
            MetricPoint::new("aprox13/newton_solve_speedup", 2.5, "x"),
            MetricPoint::new("aprox13/delta_t", f64::NAN, "K"),
        ];
        let path = write_metrics_json("metrics_selftest", &ms).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"label\": \"aprox13/newton_solve_speedup\""));
        assert!(text.contains("\"value\": 2.5"));
        assert!(text.contains("\"unit\": \"x\""));
        assert!(text.contains("\"value\": null"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        std::fs::remove_file(path).unwrap();
    }
}
