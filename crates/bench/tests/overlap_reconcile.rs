//! Measured-vs-modeled overlap reconciliation (the PR's acceptance test).
//!
//! Runs a fig2-style graph-overlapped Castro advance with graph tracing
//! armed, computes the *measured* overlap efficiency (comm wall time
//! hidden behind compute, from per-task timestamps), reconciles it
//! against [`exastro_machine::OverlapModel::predicted_hidden_fraction`],
//! and bounds the drift:
//!
//! * with ≥ 2 workers the machinery can actually overlap, so the
//!   measurement must land within a generous band of the model
//!   (|drift| ≤ 0.6 — the model prices an idealized NIC, the
//!   measurement sees a real scheduler on a possibly-loaded host);
//! * on a serial pool nothing can overlap, so the measurement must not
//!   *exceed* the prediction (measured ≈ 0 ≤ predicted).
//!
//! The same reconciliation lands in `BENCH_taskgraph.json` (labels
//! `taskgraph/measured_overlap_eff`, `taskgraph/model_drift`) via the
//! `ablation_taskgraph` bench.

use exastro_bench::{bench_castro, sedov_fixture};
use exastro_castro::KernelStructure;
use exastro_machine::hydro_overlap;
use exastro_telemetry::{graphtrace, Telemetry};

#[test]
fn measured_overlap_reconciles_with_the_machine_model() {
    let (geom, state, _layout, eos, net) = sedov_fixture(32, 8);
    let castro = bench_castro(&eos, &net, KernelStructure::Flat);
    assert!(castro.hydro.overlap, "fixture must use the overlapped path");
    let dt = castro.estimate_dt(&state, &geom);

    // Warm the worker pool and caches outside the traced window so the
    // measurement sees steady-state scheduling, not thread spawn.
    {
        let mut s = state.clone();
        let _ = castro.advance_level(&mut s, &geom, dt);
    }

    Telemetry::enable_graph_trace();
    graphtrace::clear();
    {
        let mut s = state.clone();
        let _ = castro.advance_level(&mut s, &geom, dt);
    }
    let traces = graphtrace::take();
    Telemetry::disable_graph_trace();
    Telemetry::reset();
    assert!(
        !traces.is_empty(),
        "an overlapped advance must record its sweep graphs"
    );

    let model = hydro_overlap(8);
    let mut summaries: Vec<graphtrace::GraphSummary> =
        traces.iter().map(graphtrace::summarize).collect();
    for s in &mut summaries {
        let p = model.predicted_hidden_fraction(s.compute_us, s.comm_us);
        assert!((0.0..=1.0).contains(&p), "prediction is a fraction: {p}");
        s.reconcile(p);
        if s.measured_overlap_efficiency.is_some() {
            assert!(
                s.overlap_drift.is_some(),
                "reconcile must derive a per-graph drift"
            );
        }
    }

    let measured =
        graphtrace::overall_efficiency(&summaries).expect("sweep graphs carry comm tasks");
    assert!(
        (0.0..=1.0 + 1e-12).contains(&measured),
        "measured efficiency is a fraction: {measured}"
    );
    let total_comm: f64 = summaries.iter().map(|s| s.comm_us).sum();
    let predicted = summaries
        .iter()
        .map(|s| model.predicted_hidden_fraction(s.compute_us, s.comm_us) * s.comm_us)
        .sum::<f64>()
        / total_comm;
    let drift = measured - predicted;
    let workers = summaries.iter().map(|s| s.workers).max().unwrap_or(0);
    eprintln!(
        "overlap reconciliation: measured {measured:.3} vs modeled {predicted:.3} \
         (drift {drift:+.3}, {workers} worker(s), {} graph(s))",
        summaries.len()
    );

    if workers >= 2 {
        assert!(
            drift.abs() <= 0.6,
            "measured overlap {measured:.3} drifted {drift:+.3} from the model's \
             {predicted:.3} — beyond the reconciliation band"
        );
    } else {
        // A serial pool interleaves nothing: the measurement must sit at
        // (or below) the model, never above it.
        assert!(
            measured <= predicted + 1e-9,
            "a serial schedule measured more overlap ({measured:.3}) than the \
             model predicts ({predicted:.3})"
        );
    }
}
