//! Strang-split nuclear burning of the hydro state.
//!
//! Each zone's (ρ, T, X) is handed to the microphysics burner for `dt/2`
//! before and after the hydrodynamics (Strang splitting). The burn is the
//! most register-hungry kernel on the device (§IV-B: "with N ~ 10 isotopes
//! the Jacobian of the system alone is enough to fill up these registers"),
//! and the most *nonuniform*: an igniting zone can cost orders of magnitude
//! more than a quiescent one (§VI) — the burn returns per-zone cost
//! statistics so the hybrid CPU/GPU ablation can exploit exactly that.

use crate::state::StateLayout;
use exastro_amr::{Geometry, IntVect, MultiFab, Real};
use exastro_microphysics::{
    BurnFailure, BurnFaultConfig, BurnTally, Burner, BurnerConfig, Eos, Network, RetryLadder,
    SolverChoice, ZoneBurn,
};
use exastro_parallel::{ExecSpace, KernelProfile, SimDevice};

/// Burn statistics for one multifab sweep.
#[derive(Clone, Debug, Default)]
pub struct BurnStats {
    /// Zones burned.
    pub zones: u64,
    /// Zones skipped by the temperature/density cutoffs.
    pub skipped: u64,
    /// Total integrator steps over all zones (the cost proxy).
    pub total_steps: u64,
    /// The largest single-zone step count (the "outlier" of §VI).
    pub max_steps: u64,
    /// Total Newton iterations over all zones.
    pub newton_iters: u64,
    /// Total nuclear energy released, erg.
    pub energy_released: Real,
    /// Retry-ladder attempts beyond the first, summed over zones.
    pub retries: u64,
    /// Zones that needed at least one retry to burn.
    pub recovered: u64,
    /// Zones whose winning rung was relaxed-tolerance.
    pub recovered_relaxed: u64,
    /// Zones whose winning rung was subcycling.
    pub recovered_subcycle: u64,
    /// Zones rescued by the §VI outlier-offload rung.
    pub offloaded: u64,
}

impl BurnStats {
    /// Merge another sweep's statistics into this one (the two Strang
    /// halves of a step report combined).
    pub fn merge(&mut self, o: &BurnStats) {
        self.zones += o.zones;
        self.skipped += o.skipped;
        self.total_steps += o.total_steps;
        self.max_steps = self.max_steps.max(o.max_steps);
        self.newton_iters += o.newton_iters;
        self.energy_released += o.energy_released;
        self.retries += o.retries;
        self.recovered += o.recovered;
        self.recovered_relaxed += o.recovered_relaxed;
        self.recovered_subcycle += o.recovered_subcycle;
        self.offloaded += o.offloaded;
    }
}

/// Burning options.
#[derive(Clone, Debug)]
pub struct BurnOptions {
    /// Skip zones cooler than this (burning is negligible).
    pub min_temp: Real,
    /// Skip zones less dense than this.
    pub min_dens: Real,
    /// Device register demand per burn thread; ~N² Jacobian entries for an
    /// N-species network easily exceeds the 255-register file (§IV-B).
    pub registers_per_thread: u32,
    /// Step budget for the direct burn path (`None` = integrator default).
    pub max_steps: Option<usize>,
    /// Newton linear-solver policy (dense LU or the pattern-specialized
    /// sparse path), resolved against the network at burner construction.
    pub solver: SolverChoice,
    /// The failure-recovery ladder (see [`exastro_microphysics::recovery`]).
    pub ladder: RetryLadder,
    /// Deterministic fault injection for tests and CI smoke runs.
    pub faults: Option<BurnFaultConfig>,
    /// Lane width of the batched SoA burn path: the sweep's burnable zones
    /// are grouped by temperature and advanced `batch_width` at a time
    /// through one shared BDF history (see [`exastro_microphysics::batch`]).
    /// Width < 2 burns every zone through the scalar ladder.
    pub batch_width: usize,
}

impl Default for BurnOptions {
    fn default() -> Self {
        BurnOptions {
            min_temp: 5e7,
            min_dens: 1e3,
            registers_per_thread: 320,
            max_steps: None,
            solver: SolverChoice::default(),
            ladder: RetryLadder::default(),
            faults: None,
            batch_width: 8,
        }
    }
}

/// Burn every zone of `state` for `dt` with the given network.
///
/// The sweep gathers every zone that passes the cutoffs, groups them by
/// temperature, and advances them [`BurnOptions::batch_width`] at a time
/// through the batched SoA BDF path (lanes that diverge fall back to the
/// scalar retry ladder — see [`exastro_microphysics::batch`]); the device
/// cost model still charges the launch with a per-zone cost derived from
/// the actual integrator work, capturing the latency-hiding problem of
/// nonuniform burns.
///
/// A zone whose integration fails is pushed through the retry ladder
/// ([`BurnOptions::ladder`]); only if every rung fails does the sweep
/// return an error — and then it finishes the sweep first and reports
/// **all** failed zones, so the driver's step rejection sees the complete
/// picture. On `Err` the state is partially burned and must be discarded
/// (the drivers restore their pre-step snapshot).
#[allow(clippy::too_many_arguments)]
pub fn burn_state(
    state: &mut MultiFab,
    dt: Real,
    net: &dyn Network,
    eos: &dyn Eos,
    layout: &StateLayout,
    opts: &BurnOptions,
    ex: &ExecSpace,
    geom: &Geometry,
) -> Result<BurnStats, Vec<BurnFailure>> {
    let mut cfg = BurnerConfig {
        solver: opts.solver,
        ladder: opts.ladder.clone(),
        faults: opts.faults.clone(),
        batch_width: opts.batch_width,
        ..Default::default()
    };
    if let Some(ms) = opts.max_steps {
        cfg.bdf.max_steps = ms;
    }
    let burner = cfg.build_batched(net, eos);
    let mut tally = BurnTally::default();
    let mut energy_released: Real = 0.0;
    let mut failures: Vec<BurnFailure> = Vec::new();
    let nspec = layout.nspec;
    assert_eq!(nspec, net.nspec());
    let vol = geom.cell_volume();
    // Gather pass: collect every burnable zone. The flat zone index is
    // deterministic in sweep order — the fault-injection predicate and
    // failure reports key on it, and it is identical between the two
    // Strang halves of a step and between batch widths.
    let mut zones: Vec<ZoneBurn> = Vec::new();
    let mut sites: Vec<(usize, IntVect)> = Vec::new();
    let mut zone_id = 0u64;
    for fi in 0..state.nfabs() {
        let vb = state.valid_box(fi);
        let fab = state.fab(fi);
        for iv in vb.iter() {
            let zone = zone_id;
            zone_id += 1;
            let rho = fab.get(iv, StateLayout::RHO);
            let t = fab.get(iv, StateLayout::TEMP);
            if t < opts.min_temp || rho < opts.min_dens {
                tally.skip();
                continue;
            }
            let mut x = vec![0.0; nspec];
            for s in 0..nspec {
                x[s] = (fab.get(iv, layout.spec(s)) / rho).clamp(0.0, 1.0);
            }
            zones.push(ZoneBurn {
                zone,
                rho,
                t0: t,
                x0: x,
            });
            sites.push((fi, iv));
        }
    }
    // Burn pass: SoA batches with scalar-ladder fallback.
    let recs = burner.burn_all(&zones, dt);
    // Scatter pass: results come back in input order.
    for (((fi, iv), zb), res) in sites.into_iter().zip(&zones).zip(recs) {
        let rec = match res {
            Ok(r) => r,
            Err(f) => {
                failures.push(*f);
                continue;
            }
        };
        tally.record(&rec);
        let out = rec.outcome;
        let rho = zb.rho;
        energy_released += out.enuc * rho * vol;
        let fab = state.fab_mut(fi);
        for s in 0..nspec {
            fab.set(iv, layout.spec(s), rho * out.x[s]);
        }
        fab.set(iv, StateLayout::TEMP, out.t);
        // Deposit the released specific energy.
        fab.set(
            iv,
            StateLayout::EINT,
            fab.get(iv, StateLayout::EINT) + rho * out.enuc,
        );
        fab.set(
            iv,
            StateLayout::EDEN,
            fab.get(iv, StateLayout::EDEN) + rho * out.enuc,
        );
    }
    // Charge the device once per fab-sized launch with a cost reflecting
    // the mean per-zone work; the max/mean ratio is what breaks latency
    // hiding (§VI), so the profile cost scales with the *maximum*.
    if let Some(dev) = ex.device() {
        let zones: i64 = (0..state.nfabs())
            .map(|i| state.valid_box(i).num_zones())
            .sum();
        let mean = tally.total_steps.max(1) as f64 / tally.zones.max(1) as f64;
        let imbalance = tally.max_steps.max(1) as f64 / mean;
        // Warp-level serialization: effective cost per zone grows with the
        // outlier ratio (bounded).
        let cost = 5.0 * mean.max(1.0).log2().max(1.0) * imbalance.sqrt().min(32.0);
        let us = dev.launch(zones, &KernelProfile::new(cost, opts.registers_per_thread));
        exastro_parallel::Profiler::record_device_us(us);
    }
    if failures.is_empty() {
        Ok(BurnStats {
            zones: tally.zones,
            skipped: tally.skipped,
            total_steps: tally.total_steps,
            max_steps: tally.max_steps,
            newton_iters: tally.newton_iters,
            energy_released,
            retries: tally.retries,
            recovered: tally.recovered,
            recovered_relaxed: tally.recovered_relaxed,
            recovered_subcycle: tally.recovered_subcycle,
            offloaded: tally.offloaded,
        })
    } else {
        Err(failures)
    }
}

/// The §VI "outlier zone" claim, made directly observable: probe-burn every
/// zone of `state` for `dt` **without modifying it** and return a
/// single-component `MultiFab` holding each zone's burn cost in BDF steps
/// (0 for zones the cutoffs skip; the accumulated attempt cost for zones
/// that fail every ladder rung). Rendered as a slice, this is the spatial
/// heatmap showing the handful of igniting zones that cost orders of
/// magnitude more than their quiescent neighbours.
pub fn burn_cost_multifab(
    state: &MultiFab,
    dt: Real,
    net: &dyn Network,
    eos: &dyn Eos,
    layout: &StateLayout,
    opts: &BurnOptions,
) -> MultiFab {
    let mut cfg = BurnerConfig {
        solver: opts.solver,
        ladder: opts.ladder.clone(),
        faults: opts.faults.clone(),
        ..Default::default()
    };
    if let Some(ms) = opts.max_steps {
        cfg.bdf.max_steps = ms;
    }
    let burner = cfg.build(net, eos);
    let nspec = layout.nspec;
    let mut cost = MultiFab::new(state.box_array().clone(), state.dist_map().clone(), 1, 0);
    let mut zone_id = 0u64;
    for fi in 0..state.nfabs() {
        let vb = state.valid_box(fi);
        let fab = state.fab(fi);
        for iv in vb.iter() {
            let zone = zone_id;
            zone_id += 1;
            let rho = fab.get(iv, StateLayout::RHO);
            let t = fab.get(iv, StateLayout::TEMP);
            if t < opts.min_temp || rho < opts.min_dens {
                continue; // skipped zones cost 0
            }
            let mut x = vec![0.0; nspec];
            for s in 0..nspec {
                x[s] = (fab.get(iv, layout.spec(s)) / rho).clamp(0.0, 1.0);
            }
            let steps = match burner.burn_zone(zone, rho, t, &x, dt) {
                Ok(rec) => rec.outcome.stats.steps,
                Err(f) => f.stats.steps,
            };
            cost.fab_mut(fi).set(iv, 0, steps as Real);
        }
    }
    cost
}

/// Estimate the device time (µs) a burn launch would take if outlier zones
/// above `cutoff × mean cost` were instead done on the host CPU — the §VI
/// hybrid strategy. Returns `(gpu_only_us, hybrid_us)` for comparison.
pub fn hybrid_offload_estimate(
    dev: &SimDevice,
    zone_costs: &[f64],
    cutoff: f64,
    cpu_zone_rate_per_us: f64,
    registers: u32,
) -> (f64, f64) {
    let n = zone_costs.len() as f64;
    if zone_costs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = zone_costs.iter().sum::<f64>() / n;
    let max = zone_costs.iter().cloned().fold(0.0, f64::max);
    // GPU-only: the whole launch is gated by the slowest warp → effective
    // per-zone cost approaches the max for strong outliers.
    let gpu_cost = mean + (max - mean) * 0.5; // partial latency hiding
    let gpu_only = dev.kernel_time_us(
        zone_costs.len() as i64,
        &KernelProfile::new(gpu_cost, registers),
    ) + dev.config().launch_overhead_us;
    // Hybrid: outliers to the CPU, the rest keeps a uniform cost profile.
    let threshold = cutoff * mean;
    let outliers: Vec<f64> = zone_costs
        .iter()
        .cloned()
        .filter(|&c| c > threshold)
        .collect();
    let bulk: Vec<f64> = zone_costs
        .iter()
        .cloned()
        .filter(|&c| c <= threshold)
        .collect();
    let bulk_mean = if bulk.is_empty() {
        0.0
    } else {
        bulk.iter().sum::<f64>() / bulk.len() as f64
    };
    let bulk_max = bulk.iter().cloned().fold(0.0, f64::max);
    let gpu_part = dev.kernel_time_us(
        bulk.len() as i64,
        &KernelProfile::new(bulk_mean + (bulk_max - bulk_mean) * 0.5, registers),
    ) + dev.config().launch_overhead_us;
    // CPU does the outliers concurrently with the GPU bulk.
    let cpu_part = outliers.iter().sum::<f64>() / cpu_zone_rate_per_us;
    let hybrid = gpu_part.max(cpu_part);
    (gpu_only, hybrid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{BoxArray, DistributionMapping, IntVect};
    use exastro_microphysics::{CBurn2, StellarEos};
    use exastro_parallel::DeviceConfig;

    fn carbon_state(n: i32, hot_center: bool) -> (Geometry, MultiFab, StateLayout) {
        let geom = Geometry::cube(n, 1e8, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let dm = DistributionMapping::all_local(&ba);
        let layout = StateLayout::new(2);
        let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let center = IntVect::splat(n / 2);
                let d = iv - center;
                let hot = hot_center && d.product().abs() < 2 && d.sum().abs() < 3;
                let rho = 5e7;
                let t = if hot { 3.0e9 } else { 1e7 };
                state.fab_mut(i).set(iv, StateLayout::RHO, rho);
                state.fab_mut(i).set(iv, StateLayout::TEMP, t);
                state.fab_mut(i).set(iv, layout.spec(0), rho); // pure C12
                state.fab_mut(i).set(iv, StateLayout::EINT, rho * 1e17);
                state.fab_mut(i).set(iv, StateLayout::EDEN, rho * 1e17);
            }
        }
        (geom, state, layout)
    }

    #[test]
    fn cold_state_is_all_skipped() {
        let (geom, mut state, layout) = carbon_state(8, false);
        let net = CBurn2::new();
        let eos = StellarEos;
        let ex = ExecSpace::Serial;
        let stats = burn_state(
            &mut state,
            1e-6,
            &net,
            &eos,
            &layout,
            &BurnOptions::default(),
            &ex,
            &geom,
        )
        .unwrap();
        assert_eq!(stats.zones, 0);
        assert_eq!(stats.skipped, 512);
        assert_eq!(stats.energy_released, 0.0);
    }

    #[test]
    fn hot_zones_burn_and_release_energy() {
        let (geom, mut state, layout) = carbon_state(8, true);
        let net = CBurn2::new();
        let eos = StellarEos;
        let ex = ExecSpace::Serial;
        let e_before = state.sum(StateLayout::EDEN);
        let stats = burn_state(
            &mut state,
            1e-8,
            &net,
            &eos,
            &layout,
            &BurnOptions::default(),
            &ex,
            &geom,
        )
        .unwrap();
        assert!(stats.zones > 0);
        assert!(stats.energy_released > 0.0);
        assert!(state.sum(StateLayout::EDEN) > e_before);
        // Mass is conserved (species converted, not destroyed).
        for iv in geom.domain().iter() {
            let rho = state.value_at(iv, StateLayout::RHO);
            let sum_x: Real = (0..2).map(|s| state.value_at(iv, layout.spec(s))).sum();
            assert!((sum_x / rho - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn burn_cost_is_nonuniform_with_hot_outliers() {
        let (geom, mut state, layout) = carbon_state(8, true);
        let net = CBurn2::new();
        let eos = StellarEos;
        let ex = ExecSpace::Serial;
        let stats = burn_state(
            &mut state,
            1e-8,
            &net,
            &eos,
            &layout,
            &BurnOptions {
                min_temp: 1e6, // burn everything, even quiescent zones
                ..Default::default()
            },
            &ex,
            &geom,
        )
        .unwrap();
        let mean = stats.total_steps as f64 / stats.zones as f64;
        assert!(
            stats.max_steps as f64 > 3.0 * mean,
            "outlier max {} vs mean {mean}",
            stats.max_steps
        );
    }

    #[test]
    fn device_launch_is_charged() {
        let (geom, mut state, layout) = carbon_state(8, true);
        let net = CBurn2::new();
        let eos = StellarEos;
        let dev = SimDevice::new(DeviceConfig::v100());
        let ex = ExecSpace::Device(dev.clone());
        burn_state(
            &mut state,
            1e-8,
            &net,
            &eos,
            &layout,
            &BurnOptions::default(),
            &ex,
            &geom,
        )
        .unwrap();
        assert!(dev.stats().kernels >= 1);
        assert!(dev.elapsed_us() > 0.0);
    }

    #[test]
    fn injected_faults_recover_through_the_ladder() {
        let (geom, mut state, layout) = carbon_state(8, true);
        let net = CBurn2::new();
        let eos = StellarEos;
        let ex = ExecSpace::Serial;
        let opts = BurnOptions {
            faults: Some(BurnFaultConfig {
                seed: 2024,
                rate: 1.0, // every burned zone fails once
                rungs_to_fail: 1,
                error: exastro_microphysics::BdfErrorKind::MaxSteps,
            }),
            ..Default::default()
        };
        let stats = burn_state(&mut state, 1e-8, &net, &eos, &layout, &opts, &ex, &geom).unwrap();
        assert!(stats.zones > 0);
        assert_eq!(stats.recovered, stats.zones, "every zone needed a retry");
        assert_eq!(stats.retries, stats.zones);
        assert_eq!(stats.offloaded, 0);
        // Recovered state is still physical.
        for iv in geom.domain().iter() {
            let rho = state.value_at(iv, StateLayout::RHO);
            let sum_x: Real = (0..2).map(|s| state.value_at(iv, layout.spec(s))).sum();
            assert!((sum_x / rho - 1.0).abs() < 1e-6);
            assert!(state.value_at(iv, StateLayout::TEMP).is_finite());
        }
    }

    #[test]
    fn every_bdf_error_variant_surfaces_through_burn_state() {
        use exastro_microphysics::BdfErrorKind;
        for err in [
            BdfErrorKind::MaxSteps,
            BdfErrorKind::StepUnderflow { t: 3.2e-9 },
            BdfErrorKind::SingularMatrix,
        ] {
            let (geom, mut state, layout) = carbon_state(8, true);
            let net = CBurn2::new();
            let eos = StellarEos;
            let ex = ExecSpace::Serial;
            let opts = BurnOptions {
                faults: Some(BurnFaultConfig {
                    seed: 7,
                    rate: 1.0,
                    rungs_to_fail: 99, // unrecoverable
                    error: err.clone(),
                }),
                ..Default::default()
            };
            let failures =
                burn_state(&mut state, 1e-8, &net, &eos, &layout, &opts, &ex, &geom).unwrap_err();
            assert!(!failures.is_empty());
            for f in &failures {
                assert_eq!(f.error, err);
                assert_eq!(f.attempts, 4);
                assert!(f.rho > 0.0 && f.t0 > 0.0);
                assert_eq!(f.x0.len(), 2);
            }
        }
    }

    #[test]
    fn genuine_max_steps_failure_surfaces_without_injection() {
        // A starved step budget with the ladder disabled: the integrator's
        // own MaxSteps error must reach the caller as a structured failure.
        let (geom, mut state, layout) = carbon_state(8, true);
        let net = CBurn2::new();
        let eos = StellarEos;
        let ex = ExecSpace::Serial;
        let opts = BurnOptions {
            max_steps: Some(2),
            ladder: exastro_microphysics::RetryLadder::none(),
            ..Default::default()
        };
        let failures =
            burn_state(&mut state, 1e-8, &net, &eos, &layout, &opts, &ex, &geom).unwrap_err();
        assert!(!failures.is_empty());
        for f in &failures {
            assert_eq!(f.error, exastro_microphysics::BdfErrorKind::MaxSteps);
            assert!(f.stats.rhs_evals > 0, "genuine failure reports its cost");
        }
    }

    #[test]
    fn sparse_solver_option_matches_dense() {
        // The SolverChoice knob must not change the physics: identical
        // sweeps through both Newton solvers agree to integrator tolerance.
        let net = CBurn2::new();
        let eos = StellarEos;
        let ex = ExecSpace::Serial;
        let run = |solver: SolverChoice| {
            let (geom, mut state, layout) = carbon_state(8, true);
            let opts = BurnOptions {
                solver,
                ..Default::default()
            };
            burn_state(&mut state, 1e-8, &net, &eos, &layout, &opts, &ex, &geom).unwrap()
        };
        let d = run(SolverChoice::Dense);
        let s = run(SolverChoice::Sparse);
        assert_eq!(d.zones, s.zones);
        assert!(s.energy_released > 0.0);
        assert!(
            (d.energy_released / s.energy_released - 1.0).abs() < 1e-6,
            "dense {} vs sparse {}",
            d.energy_released,
            s.energy_released
        );
    }

    #[test]
    fn burn_cost_multifab_maps_outliers_without_touching_state() {
        let (geom, state, layout) = carbon_state(8, true);
        let net = CBurn2::new();
        let eos = StellarEos;
        let before: Real = geom
            .domain()
            .iter()
            .map(|iv| state.value_at(iv, StateLayout::TEMP))
            .sum();
        let cost = burn_cost_multifab(&state, 1e-8, &net, &eos, &layout, &BurnOptions::default());
        let after: Real = geom
            .domain()
            .iter()
            .map(|iv| state.value_at(iv, StateLayout::TEMP))
            .sum();
        assert_eq!(before, after, "probe must not modify the state");
        assert_eq!(cost.ncomp(), 1);
        // Cold zones cost 0; the hot center costs many BDF steps.
        let center = IntVect::splat(4);
        let corner = IntVect::splat(0);
        assert!(cost.value_at(center, 0) > 0.0, "hot center has burn cost");
        assert_eq!(cost.value_at(corner, 0), 0.0, "cold corner is free");
        let max = geom
            .domain()
            .iter()
            .map(|iv| cost.value_at(iv, 0))
            .fold(0.0, Real::max);
        let nonzero = geom
            .domain()
            .iter()
            .filter(|&iv| cost.value_at(iv, 0) > 0.0)
            .count();
        assert!(max >= 1.0);
        assert!(
            nonzero < 512,
            "only the igniting pocket should be expensive"
        );
    }

    #[test]
    fn hybrid_offload_wins_with_strong_outliers() {
        let dev = SimDevice::new(DeviceConfig::v100());
        // 100k quiescent zones at cost 1, 100 igniting zones at cost 1000.
        let mut costs = vec![1.0; 100_000];
        costs.extend(vec![1000.0; 100]);
        let (gpu, hybrid) = hybrid_offload_estimate(&dev, &costs, 10.0, 0.05, 320);
        assert!(
            hybrid < gpu,
            "hybrid {hybrid} µs should beat GPU-only {gpu} µs"
        );
        // Uniform work: offloading should NOT help.
        let uniform = vec![1.0; 100_000];
        let (gpu_u, hybrid_u) = hybrid_offload_estimate(&dev, &uniform, 10.0, 0.05, 320);
        assert!((hybrid_u / gpu_u - 1.0).abs() < 0.05);
    }
}
