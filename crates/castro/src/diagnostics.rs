//! Detonation-stability diagnostics (§V, paper refs 32 and 33).
//!
//! A zone can act as its own "cauldron" for the thermonuclear feedback
//! loop: if the time for heat to leave the zone is much longer than the
//! time for burning to generate it, the zone ignites *numerically*, and a
//! simulated detonation cannot be distinguished from a spurious one. The
//! paper inspects the ratio of these timescales and finds the burning
//! timescale "an order of magnitude smaller than the heat transfer
//! timescale" at 50 km resolution — i.e. unresolved.
//!
//! Without thermal diffusion in the simulation, the fastest numerical heat
//! transport out of a zone is advective/acoustic: `τ_transfer ≈ Δx / c_s`.
//! The burning timescale is `τ_burn = c_v T / ε̇`.

use crate::state::{cons_to_prim, Floors, StateLayout};
use exastro_amr::{Geometry, MultiFab, Real};
use exastro_microphysics::{mass_to_molar, Composition, Eos, Network};

/// Zonal stability summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct StabilityReport {
    /// Minimum `τ_burn / τ_transfer` over burning zones. Values below 1
    /// indicate zones that heat faster than they can shed heat: a
    /// numerically unstable (unresolved) detonation.
    pub min_ratio: Real,
    /// Number of zones with ratio < 1.
    pub unstable_zones: u64,
    /// Number of zones examined (with significant burning).
    pub burning_zones: u64,
}

/// Evaluate the detonation stability criterion over the state.
///
/// Only zones whose specific energy generation exceeds `eps_floor`
/// (erg/g/s) are counted as "burning".
pub fn detonation_stability(
    state: &MultiFab,
    geom: &Geometry,
    layout: &StateLayout,
    eos: &dyn Eos,
    net: &dyn Network,
    eps_floor: Real,
) -> StabilityReport {
    let dx = geom.min_dx();
    let floors = Floors::default();
    let mut report = StabilityReport {
        min_ratio: Real::INFINITY,
        ..Default::default()
    };
    let nspec = layout.nspec;
    let mut y = vec![0.0; nspec];
    let mut x = vec![0.0; nspec];
    for (i, vb) in state.iter_boxes() {
        for iv in vb.iter() {
            let fab = state.fab(i);
            let rho = fab.get(iv, StateLayout::RHO);
            let t = fab.get(iv, StateLayout::TEMP);
            for s in 0..nspec {
                x[s] = (fab.get(iv, layout.spec(s)) / rho).clamp(0.0, 1.0);
            }
            mass_to_molar(net.species(), &x, &mut y);
            let eps = net.eps(rho, t, &y);
            if eps < eps_floor {
                continue;
            }
            report.burning_zones += 1;
            let comp = Composition::from_mass_fractions(net.species(), &x);
            let r = eos.eval_rt(rho, t, &comp);
            let tau_burn = r.cv * t / eps;
            // Heat transfer: sound crossing of the zone.
            let mut u = vec![0.0; layout.ncomp()];
            for c in 0..layout.ncomp() {
                u[c] = fab.get(iv, c);
            }
            let q = cons_to_prim(&u, layout, eos, net.species(), &floors);
            let tau_transfer = dx / q.cs.max(1e-30);
            let ratio = tau_burn / tau_transfer;
            if ratio < 1.0 {
                report.unstable_zones += 1;
            }
            report.min_ratio = report.min_ratio.min(ratio);
        }
    }
    if report.burning_zones == 0 {
        report.min_ratio = Real::INFINITY;
    }
    report
}

/// The resolution at which a burning zone becomes marginally stable:
/// `Δx_crit = c_s τ_burn`. Zones narrower than this resolve the runaway.
pub fn critical_zone_width(
    rho: Real,
    t: Real,
    x: &[Real],
    eos: &dyn Eos,
    net: &dyn Network,
) -> Real {
    let mut y = vec![0.0; net.nspec()];
    mass_to_molar(net.species(), x, &mut y);
    let eps = net.eps(rho, t, &y).max(1e-300);
    let comp = Composition::from_mass_fractions(net.species(), x);
    let r = eos.eval_rt(rho, t, &comp);
    r.cs * r.cv * t / eps
}
