//! Explicit thermal diffusion: `∂(ρe)/∂t = ∇·(k_th ∇T)`.
//!
//! Castro's thermal-diffusion capability (§II) matters physically for the
//! detonation-stability question: conduction is the mechanism that carries
//! heat out of a burning zone, and the §V instability arises exactly when
//! burning outruns it. The conductivity here is a user-supplied constant or
//! a simple degenerate-electron power law.

use crate::state::StateLayout;
use exastro_amr::{BcSpec, CommTrace, Geometry, IntVect, MultiFab, Real};
use exastro_parallel::ExecSpace;

/// Thermal conductivity model, erg cm⁻¹ s⁻¹ K⁻¹.
#[derive(Clone, Copy, Debug)]
pub enum Conductivity {
    /// Constant conductivity.
    Constant(Real),
    /// Degenerate-electron-conduction-like power law `k₀ (ρ/ρ₀)^a (T/T₀)^b`.
    PowerLaw {
        /// Reference conductivity.
        k0: Real,
        /// Reference density.
        rho0: Real,
        /// Density exponent.
        a: Real,
        /// Reference temperature.
        t0: Real,
        /// Temperature exponent.
        b: Real,
    },
}

impl Conductivity {
    /// Evaluate at (ρ, T).
    pub fn eval(&self, rho: Real, t: Real) -> Real {
        match *self {
            Conductivity::Constant(k) => k,
            Conductivity::PowerLaw { k0, rho0, a, t0, b } => {
                k0 * (rho / rho0).powf(a) * (t / t0).powf(b)
            }
        }
    }
}

/// Explicit diffusion stability limit: `dt ≤ min(ρ c_v Δx² / (2 D k))`.
/// `cv_floor` guards zones where the specific heat is tiny.
pub fn diffusion_dt(
    state: &MultiFab,
    geom: &Geometry,
    k_th: &Conductivity,
    cv_typical: Real,
) -> Real {
    let dx2 = geom.min_dx() * geom.min_dx();
    let mut dt = Real::INFINITY;
    for (i, vb) in state.iter_boxes() {
        for iv in vb.iter() {
            let rho = state.fab(i).get(iv, StateLayout::RHO);
            let t = state.fab(i).get(iv, StateLayout::TEMP);
            let k = k_th.eval(rho, t);
            if k > 0.0 {
                dt = dt.min(rho * cv_typical * dx2 / (6.0 * k));
            }
        }
    }
    0.9 * dt
}

/// Apply one explicit conduction update over `dt`: face-centred fluxes
/// `F = −k ∇T` deposited into `ρe` and `ρE`. Conservative: interior fluxes
/// cancel in the total. The temperature field itself is re-synced by the
/// driver's EOS pass afterwards. Returns the ghost exchange's [`CommTrace`]
/// for the machine model.
pub fn diffuse(
    state: &mut MultiFab,
    geom: &Geometry,
    bc: &BcSpec,
    k_th: &Conductivity,
    dt: Real,
    ex: &ExecSpace,
) -> CommTrace {
    let trace = state.fill_boundary(geom);
    state.fill_physical_bc(geom, bc);
    let dx = geom.dx();
    let old = state.clone();
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        let ofab = old.fab(i);
        let oarr = ofab.array();
        let fab = state.fab_mut(i);
        let uarr = fab.array_mut();
        ex.par_for(vb, |ii, jj, kk| {
            let mut div = 0.0;
            let t0 = oarr.at(ii, jj, kk, StateLayout::TEMP);
            let rho0 = oarr.at(ii, jj, kk, StateLayout::RHO);
            for d in 0..3 {
                let e = IntVect::dim_vec(d);
                let (ip, jp, kp) = (ii + e.x(), jj + e.y(), kk + e.z());
                let (im, jm, km) = (ii - e.x(), jj - e.y(), kk - e.z());
                let tp = oarr.at(ip, jp, kp, StateLayout::TEMP);
                let tm = oarr.at(im, jm, km, StateLayout::TEMP);
                let rp = oarr.at(ip, jp, kp, StateLayout::RHO);
                let rm = oarr.at(im, jm, km, StateLayout::RHO);
                // Face conductivities: harmonic-ish (arithmetic of the two
                // sides, adequate for smooth k).
                let k_hi = 0.5 * (k_th.eval(rho0, t0) + k_th.eval(rp, tp));
                let k_lo = 0.5 * (k_th.eval(rho0, t0) + k_th.eval(rm, tm));
                let f_hi = -k_hi * (tp - t0) / dx[d];
                let f_lo = -k_lo * (t0 - tm) / dx[d];
                div += (f_hi - f_lo) / dx[d];
            }
            let de = -div * dt;
            uarr.add(ii, jj, kk, StateLayout::EINT, de);
            uarr.add(ii, jj, kk, StateLayout::EDEN, de);
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{BoxArray, DistributionMapping};

    fn hot_spot_state(n: i32) -> (Geometry, MultiFab, StateLayout) {
        let geom = Geometry::cube(n, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), (n / 2).max(8), 4);
        let dm = DistributionMapping::all_local(&ba);
        let layout = StateLayout::new(1);
        let mut state = MultiFab::new(ba, dm, layout.ncomp(), 1);
        let c = n / 2;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let hot =
                    (iv - IntVect::splat(c)).product() == 0 && (iv - IntVect::splat(c)).sum() == 0;
                state.fab_mut(i).set(iv, StateLayout::RHO, 1.0);
                state
                    .fab_mut(i)
                    .set(iv, StateLayout::TEMP, if hot { 100.0 } else { 1.0 });
                state
                    .fab_mut(i)
                    .set(iv, StateLayout::EINT, if hot { 100.0 } else { 1.0 });
                state
                    .fab_mut(i)
                    .set(iv, StateLayout::EDEN, if hot { 100.0 } else { 1.0 });
            }
        }
        (geom, state, layout)
    }

    #[test]
    fn diffusion_conserves_total_energy() {
        let (geom, mut state, _l) = hot_spot_state(16);
        let bc = BcSpec::periodic();
        let e0 = state.sum(StateLayout::EDEN);
        let k = Conductivity::Constant(0.05);
        let dt = diffusion_dt(&state, &geom, &k, 1.0);
        for _ in 0..10 {
            let _ = diffuse(&mut state, &geom, &bc, &k, dt, &ExecSpace::Serial);
        }
        let e1 = state.sum(StateLayout::EDEN);
        assert!((e1 / e0 - 1.0).abs() < 1e-12, "{e0} -> {e1}");
    }

    #[test]
    fn heat_flows_from_hot_to_cold() {
        let (geom, mut state, _l) = hot_spot_state(16);
        let bc = BcSpec::periodic();
        let k = Conductivity::Constant(0.05);
        let c = IntVect::splat(8);
        let peak0 = state.value_at(c, StateLayout::EINT);
        let neighbor0 = state.value_at(c + IntVect::new(1, 0, 0), StateLayout::EINT);
        let dt = diffusion_dt(&state, &geom, &k, 1.0);
        for _ in 0..20 {
            // Mirror TEMP from EINT (ρ = 1, cv = 1 in this toy state).
            for i in 0..state.nfabs() {
                let vb = state.valid_box(i);
                for iv in vb.iter() {
                    let e = state.fab(i).get(iv, StateLayout::EINT);
                    state.fab_mut(i).set(iv, StateLayout::TEMP, e);
                }
            }
            let _ = diffuse(&mut state, &geom, &bc, &k, dt, &ExecSpace::Serial);
        }
        let peak1 = state.value_at(c, StateLayout::EINT);
        let neighbor1 = state.value_at(c + IntVect::new(1, 0, 0), StateLayout::EINT);
        assert!(peak1 < peak0, "peak must cool: {peak0} -> {peak1}");
        assert!(neighbor1 > neighbor0, "neighbour must warm");
        // Positivity.
        assert!(state.min(StateLayout::EINT) > 0.0);
    }

    #[test]
    fn zero_conductivity_is_identity() {
        let (geom, mut state, _l) = hot_spot_state(8);
        let bc = BcSpec::periodic();
        let before = state.value_at(IntVect::splat(4), StateLayout::EINT);
        let _ = diffuse(
            &mut state,
            &geom,
            &bc,
            &Conductivity::Constant(0.0),
            1.0,
            &ExecSpace::Serial,
        );
        assert_eq!(state.value_at(IntVect::splat(4), StateLayout::EINT), before);
    }

    #[test]
    fn power_law_conductivity_evaluates() {
        let k = Conductivity::PowerLaw {
            k0: 2.0,
            rho0: 1e6,
            a: 1.0,
            t0: 1e8,
            b: 2.5,
        };
        assert!((k.eval(1e6, 1e8) - 2.0).abs() < 1e-12);
        assert!((k.eval(2e6, 1e8) - 4.0).abs() < 1e-12);
        assert!(k.eval(1e6, 2e8) > 2.0 * 2.0f64.powf(2.0));
    }

    #[test]
    fn diffusion_dt_scales_with_resolution() {
        let (g8, s8, _) = hot_spot_state(8);
        let (g16, s16, _) = hot_spot_state(16);
        let k = Conductivity::Constant(1.0);
        let dt8 = diffusion_dt(&s8, &g8, &k, 1.0);
        let dt16 = diffusion_dt(&s16, &g16, &k, 1.0);
        assert!((dt8 / dt16 - 4.0).abs() < 0.01, "dt ∝ dx²: {dt8} vs {dt16}");
    }

    #[test]
    fn outflow_walls_do_not_create_energy() {
        let (geom0, _, layout) = hot_spot_state(8);
        let _ = geom0;
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut state = MultiFab::local(ba, layout.ncomp(), 1);
        state.set_val(StateLayout::RHO, 1.0);
        state.set_val(StateLayout::TEMP, 2.0);
        state.set_val(StateLayout::EINT, 2.0);
        state.set_val(StateLayout::EDEN, 2.0);
        let bc = BcSpec::outflow();
        let e0 = state.sum(StateLayout::EDEN);
        let _ = diffuse(
            &mut state,
            &geom,
            &bc,
            &Conductivity::Constant(0.1),
            0.05,
            &ExecSpace::Serial,
        );
        // Uniform T with zero-gradient walls: nothing moves.
        assert!((state.sum(StateLayout::EDEN) / e0 - 1.0).abs() < 1e-13);
    }
}
