//! The Castro time-advance driver: Strang-split burning, hydrodynamics,
//! gravity sources, and the non-subcycled AMR advance with refluxing.

use crate::burn::{burn_state, BurnOptions, BurnStats};
use crate::gravity::{Gravity, GravityField, GravityMode};
use crate::hydro::{Hydro, SweepFluxes};
use crate::state::{cons_to_prim, StateLayout};
use exastro_amr::{
    average_down, fill_patch_two_levels, BcSpec, FluxRegister, Geometry, Hierarchy, IntVect,
    MultiFab, Real,
};
use exastro_microphysics::{Composition, Eos, Network};
use exastro_parallel::{Arena, ExecSpace, PoolArena, Profiler};
use std::sync::Arc;

/// Per-step statistics.
#[derive(Clone, Debug, Default)]
pub struct StepStats {
    /// Burning statistics (both Strang halves combined).
    pub burn: BurnStats,
    /// Whether the gravity multigrid ran and converged.
    pub gravity_converged: Option<bool>,
    /// Maximum temperature after the step.
    pub max_temp: Real,
    /// Maximum density after the step.
    pub max_dens: Real,
}

/// The Castro simulation object for one problem.
pub struct Castro<'a> {
    /// State layout (defines nspec).
    pub layout: StateLayout,
    /// Equation of state.
    pub eos: &'a dyn Eos,
    /// Reaction network (used when `burn` is set).
    pub net: &'a dyn Network,
    /// Hydro solver options.
    pub hydro: Hydro,
    /// Gravity solver.
    pub gravity: Gravity,
    /// Burning options; `None` disables reactions.
    pub burn: Option<BurnOptions>,
    /// Physical boundary conditions.
    pub bc: BcSpec,
    /// Execution space for kernels.
    pub ex: ExecSpace,
    /// Scratch arena.
    pub arena: Arc<dyn Arena>,
}

impl<'a> Castro<'a> {
    /// A driver with sensible defaults: flat kernels, pool arena, serial
    /// execution, no gravity, no burning, outflow boundaries.
    pub fn new(eos: &'a dyn Eos, net: &'a dyn Network) -> Self {
        Castro {
            layout: StateLayout::new(net.nspec()),
            eos,
            net,
            hydro: Hydro::default(),
            gravity: Gravity {
                mode: GravityMode::Off,
                ..Default::default()
            },
            burn: None,
            bc: BcSpec::outflow(),
            ex: ExecSpace::Serial,
            arena: Arc::new(PoolArena::new(None)),
        }
    }

    /// CFL timestep for a level.
    pub fn estimate_dt(&self, state: &MultiFab, geom: &Geometry) -> Real {
        self.hydro.estimate_dt(
            state,
            &self.layout,
            self.eos,
            self.net.species(),
            geom,
            &self.ex,
        )
    }

    /// Recompute temperature and re-sync the advected internal energy from
    /// the conservative total energy (post-hydro EOS sync).
    pub fn sync_temperature(&self, state: &mut MultiFab) {
        let layout = self.layout;
        let floors = self.hydro.floors;
        let species = self.net.species();
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let fab = state.fab_mut(i);
            for iv in vb.iter() {
                let mut u = vec![0.0; layout.ncomp()];
                for c in 0..layout.ncomp() {
                    u[c] = fab.get(iv, c);
                }
                let q = cons_to_prim(&u, &layout, self.eos, species, &floors);
                // Renormalize species against advection drift.
                let rho = q.rho;
                let mut xsum = 0.0;
                for s in 0..layout.nspec {
                    xsum += (fab.get(iv, layout.spec(s)) / rho).max(0.0);
                }
                if xsum > 0.0 {
                    for s in 0..layout.nspec {
                        let x = (fab.get(iv, layout.spec(s)) / rho).max(0.0) / xsum;
                        fab.set(iv, layout.spec(s), rho * x);
                    }
                }
                let mut x = vec![0.0; layout.nspec];
                for s in 0..layout.nspec {
                    x[s] = fab.get(iv, layout.spec(s)) / rho;
                }
                let comp = Composition::from_mass_fractions(species, &x);
                let t = self
                    .eos
                    .t_from_e(rho, q.e, &comp, fab.get(iv, StateLayout::TEMP).max(1e3));
                fab.set(iv, StateLayout::TEMP, t.max(floors.small_temp));
                fab.set(iv, StateLayout::EINT, rho * q.e);
            }
        }
    }

    /// Advance one level by `dt`: Strang burn half, hydro sweeps, gravity
    /// source, EOS sync, Strang burn half. Returns step statistics and the
    /// hydro fluxes (for refluxing).
    pub fn advance_level(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> (StepStats, Vec<SweepFluxes>) {
        let _prof = Profiler::region("castro_advance");
        let mut stats = StepStats::default();
        if let Some(burn_opts) = &self.burn {
            let _r = Profiler::region("burn");
            let b = burn_state(
                state,
                0.5 * dt,
                self.net,
                self.eos,
                &self.layout,
                burn_opts,
                &self.ex,
                geom,
            )
            .expect("first-half burn failed");
            stats.burn = b;
        }
        let fluxes = {
            let _r = Profiler::region("hydro");
            self.hydro.advance(
                state,
                dt,
                geom,
                &self.layout,
                self.eos,
                self.net.species(),
                &self.bc,
                &self.ex,
                self.arena.as_ref(),
            )
        };
        if self.gravity.mode != GravityMode::Off {
            let _r = Profiler::region("gravity");
            let field: GravityField = self.gravity.solve(state, geom);
            stats.gravity_converged = field.mg.as_ref().map(|m| m.converged);
            Gravity::apply_source(state, &field, dt, &self.ex);
        }
        {
            let _r = Profiler::region("sync_temperature");
            self.sync_temperature(state);
        }
        if let Some(burn_opts) = &self.burn {
            let _r = Profiler::region("burn");
            let b = burn_state(
                state,
                0.5 * dt,
                self.net,
                self.eos,
                &self.layout,
                burn_opts,
                &self.ex,
                geom,
            )
            .expect("second-half burn failed");
            stats.burn.zones += b.zones;
            stats.burn.total_steps += b.total_steps;
            stats.burn.max_steps = stats.burn.max_steps.max(b.max_steps);
            stats.burn.energy_released += b.energy_released;
            stats.burn.failures += b.failures;
        }
        stats.max_temp = state.max(StateLayout::TEMP);
        stats.max_dens = state.max(StateLayout::RHO);
        (stats, fluxes)
    }

    /// Advance one level with blow-up protection: if the updated state
    /// contains non-finite values (a mid-step CFL violation through a
    /// strengthening shock — the collision problem does this at contact),
    /// the state is restored and the step retried with `dt/4`, up to four
    /// times. Returns the stats and the `dt` actually taken.
    pub fn advance_level_safe(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> (StepStats, Real) {
        let mut try_dt = dt;
        for _attempt in 0..4 {
            let snapshot = state.clone();
            let (stats, _) = self.advance_level(state, geom, try_dt);
            let healthy = stats.max_dens.is_finite()
                && stats.max_temp.is_finite()
                && state.min(StateLayout::RHO).is_finite()
                && state.min(StateLayout::RHO) > 0.0
                && state.max(StateLayout::EDEN).is_finite();
            if healthy {
                return (stats, try_dt);
            }
            *state = snapshot;
            try_dt *= 0.25;
        }
        // Final attempt at the smallest dt, accepted as-is.
        let (stats, _) = self.advance_level(state, geom, try_dt);
        (stats, try_dt)
    }

    /// Advance a two-level (or more) hierarchy without subcycling: all
    /// levels take the same `dt`; conservation across coarse–fine
    /// boundaries is repaired by refluxing and the coarse data under fine
    /// grids is replaced by the averaged-down fine solution.
    pub fn advance_hierarchy(
        &self,
        hier: &Hierarchy,
        states: &mut [MultiFab],
        dt: Real,
    ) -> Vec<StepStats> {
        assert_eq!(states.len(), hier.nlevels());
        let mut all_stats = Vec::new();
        // Fill fine-level ghosts from coarse data before anything moves.
        let fill_prof = Profiler::region("fill_patch");
        for l in 1..hier.nlevels() {
            let (coarse, fine) = states.split_at_mut(l);
            let cg = hier.level(l - 1).geom.clone();
            let fg = hier.level(l).geom.clone();
            fill_patch_two_levels(
                &mut fine[0],
                &fg,
                &mut coarse[l - 1],
                &cg,
                hier.level(l).ratio_to_coarser,
                &self.bc,
            );
        }
        drop(fill_prof);
        // Advance each level, collecting fluxes.
        let mut fluxes_per_level = Vec::new();
        for l in 0..hier.nlevels() {
            let geom = hier.level(l).geom.clone();
            let (stats, fluxes) = self.advance_level(&mut states[l], &geom, dt);
            all_stats.push(stats);
            fluxes_per_level.push(fluxes);
        }
        // Reflux coarse levels against their fine level.
        let _reflux_prof = Profiler::region("reflux");
        for l in (1..hier.nlevels()).rev() {
            let ratio = hier.level(l).ratio_to_coarser;
            let fine_ba = hier.level(l).ba.clone();
            let mut fr = FluxRegister::new(&fine_ba, ratio, self.layout.ncomp());
            let cgeom = &hier.level(l - 1).geom;
            let fgeom = &hier.level(l).geom;
            let cdx = cgeom.dx();
            let fdx = fgeom.dx();
            // Coarse fluxes on interface faces.
            for sweep in &fluxes_per_level[l - 1] {
                let d = sweep.dim;
                for fab in &sweep.fabs {
                    let fb = fab.index_box();
                    for iv in fb.iter() {
                        if fr.is_interface(d, iv) {
                            let mut f = vec![0.0; self.layout.ncomp()];
                            for (c, fc) in f.iter_mut().enumerate() {
                                *fc = fab.get(iv, c);
                            }
                            fr.crse_add(d, iv, &f, 1.0);
                        }
                    }
                }
            }
            // Fine fluxes, averaged onto coarse faces. Scale: the reflux
            // formula uses dt/dx_coarse; fine flux contributions represent
            // the same dt, so the area average (handled inside fine_add)
            // with unit scale is correct for a non-subcycled advance.
            for sweep in &fluxes_per_level[l] {
                let d = sweep.dim;
                for fab in &sweep.fabs {
                    let fb = fab.index_box();
                    for iv in fb.iter() {
                        // Only faces on the coarse-fine interface matter;
                        // fine_add maps to the parent coarse face and
                        // ignores non-interface faces.
                        let mut f = vec![0.0; self.layout.ncomp()];
                        for (c, fc) in f.iter_mut().enumerate() {
                            *fc = fab.get(iv, c);
                        }
                        fr.fine_add(d, iv, &f, 1.0);
                    }
                }
            }
            let _ = fdx;
            fr.reflux(
                &mut states[l - 1],
                &fine_ba,
                [dt / cdx[0], dt / cdx[1], dt / cdx[2]],
            );
            // Average the fine solution down over the covered coarse zones.
            let (coarse, fine) = states.split_at_mut(l);
            average_down(&fine[0], &mut coarse[l - 1], ratio);
        }
        all_stats
    }

    /// Tag zones for refinement: temperature above `t_thresh` or density
    /// above `rho_thresh`, evaluated on `state`'s level.
    pub fn tag_zones(&self, state: &MultiFab, t_thresh: Real, rho_thresh: Real) -> Vec<IntVect> {
        let mut tags = Vec::new();
        for (i, vb) in state.iter_boxes() {
            for iv in vb.iter() {
                if state.fab(i).get(iv, StateLayout::TEMP) > t_thresh
                    || state.fab(i).get(iv, StateLayout::RHO) > rho_thresh
                {
                    tags.push(iv);
                }
            }
        }
        tags
    }

    /// Total mass over the valid region.
    pub fn total_mass(&self, state: &MultiFab, geom: &Geometry) -> Real {
        state.sum(StateLayout::RHO) * geom.cell_volume()
    }

    /// Total energy (ρE integrated).
    pub fn total_energy(&self, state: &MultiFab, geom: &Geometry) -> Real {
        state.sum(StateLayout::EDEN) * geom.cell_volume()
    }
}
