//! The Castro time-advance driver: Strang-split burning, hydrodynamics,
//! gravity sources, and the non-subcycled AMR advance with refluxing.

use crate::burn::{burn_state, BurnOptions, BurnStats};
use crate::gravity::{Gravity, GravityField, GravityMode};
use crate::hydro::{Hydro, SweepFluxes};
use crate::state::{cons_to_prim, StateLayout};
use exastro_amr::{
    average_down, fill_patch_two_levels, BcSpec, CommTrace, FluxRegister, Geometry, Hierarchy,
    IntVect, MultiFab, Real,
};
use exastro_microphysics::{BurnFailure, Composition, Eos, Network};
use exastro_parallel::{Arena, ExecSpace, PoolArena, Profiler};
use exastro_resilience::recovery::{write_emergency, RecoveryOptions};
use exastro_resilience::snapshot::{Clock, Snapshot};
use exastro_resilience::stepper::{StepFailure, StepOutcome, Stepper};
use exastro_telemetry::{StepMetrics, StepRecorder};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Per-step statistics.
#[derive(Clone, Debug, Default)]
pub struct StepStats {
    /// Burning statistics (both Strang halves combined).
    pub burn: BurnStats,
    /// Whether the gravity multigrid ran and converged.
    pub gravity_converged: Option<bool>,
    /// Maximum temperature after the step.
    pub max_temp: Real,
    /// Maximum density after the step.
    pub max_dens: Real,
    /// Communication performed by the step (hydro ghost exchanges plus the
    /// gravity solve's own fills), merged across phases.
    pub comm: CommTrace,
}

/// A violation found by the post-step state validator.
#[derive(Clone, Debug, PartialEq)]
pub enum StateViolation {
    /// A state component is NaN or infinite.
    NonFinite {
        /// Component index in the state layout.
        comp: usize,
        /// The first offending zone.
        zone: IntVect,
    },
    /// Density at or below zero.
    NegativeDensity {
        /// The offending density value.
        rho: Real,
        /// The first offending zone.
        zone: IntVect,
    },
    /// Total or internal energy below zero.
    NegativeEnergy {
        /// The offending energy value.
        e: Real,
        /// The first offending zone.
        zone: IntVect,
    },
    /// Species mass fractions drifted away from ΣX = 1.
    SpeciesDrift {
        /// The observed |ΣX − 1|.
        drift: Real,
        /// The first offending zone.
        zone: IntVect,
    },
}

impl std::fmt::Display for StateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateViolation::NonFinite { comp, zone } => {
                write!(f, "non-finite value in component {comp} at {zone:?}")
            }
            StateViolation::NegativeDensity { rho, zone } => {
                write!(f, "non-positive density {rho:.3e} at {zone:?}")
            }
            StateViolation::NegativeEnergy { e, zone } => {
                write!(f, "negative energy {e:.3e} at {zone:?}")
            }
            StateViolation::SpeciesDrift { drift, zone } => {
                write!(f, "|ΣX − 1| = {drift:.3e} at {zone:?}")
            }
        }
    }
}

/// Why one attempted step could not be accepted. On `Err` the state passed
/// to [`Castro::advance_level`] is tainted (partially advanced) and must be
/// restored from a pre-step snapshot — [`Castro::advance_level_safe`] does
/// exactly that.
#[derive(Debug)]
pub enum StepError {
    /// One or more burn zones exhausted the retry ladder.
    Burn(Vec<BurnFailure>),
    /// The post-step validator rejected the state.
    Invalid(StateViolation),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Burn(fails) => {
                write!(f, "{} burn zone(s) failed all retries", fails.len())?;
                if let Some(first) = fails.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            StepError::Invalid(v) => write!(f, "post-step validation failed: {v}"),
        }
    }
}

impl std::error::Error for StepError {}

/// A step that stayed unrecoverable through the whole rejection loop. The
/// driver leaves the state restored to its pre-step contents, writes an
/// emergency checkpoint when [`RecoveryOptions::emergency_dir`] is set,
/// and returns this instead of aborting the process.
#[derive(Debug)]
pub struct DriverError {
    /// The error from the final attempt.
    pub error: StepError,
    /// Step attempts made (1 initial + retries).
    pub rejections: u32,
    /// The smallest `dt` attempted before giving up.
    pub dt_floor: Real,
    /// Path of the emergency checkpoint, if one was written.
    pub emergency_checkpoint: Option<PathBuf>,
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step unrecoverable after {} attempt(s) (dt floor {:.3e}): {}",
            self.rejections, self.dt_floor, self.error
        )?;
        if let Some(p) = &self.emergency_checkpoint {
            write!(f, " [emergency checkpoint: {}]", p.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for DriverError {}

/// The Castro simulation object for one problem.
pub struct Castro<'a> {
    /// State layout (defines nspec).
    pub layout: StateLayout,
    /// Equation of state.
    pub eos: &'a dyn Eos,
    /// Reaction network (used when `burn` is set).
    pub net: &'a dyn Network,
    /// Hydro solver options.
    pub hydro: Hydro,
    /// Gravity solver.
    pub gravity: Gravity,
    /// Burning options; `None` disables reactions.
    pub burn: Option<BurnOptions>,
    /// Physical boundary conditions.
    pub bc: BcSpec,
    /// Execution space for kernels.
    pub ex: ExecSpace,
    /// Scratch arena.
    pub arena: Arc<dyn Arena>,
    /// Step-rejection policy and emergency-checkpoint destination.
    pub recovery: RecoveryOptions,
    /// Per-step metrics recorder; inert until a sink is attached via
    /// [`StepRecorder::attach_sink`].
    pub telemetry: StepRecorder,
}

impl<'a> Castro<'a> {
    /// A driver with sensible defaults: flat kernels, pool arena, serial
    /// execution, no gravity, no burning, outflow boundaries.
    pub fn new(eos: &'a dyn Eos, net: &'a dyn Network) -> Self {
        Castro {
            layout: StateLayout::new(net.nspec()),
            eos,
            net,
            hydro: Hydro::default(),
            gravity: Gravity {
                mode: GravityMode::Off,
                ..Default::default()
            },
            burn: None,
            bc: BcSpec::outflow(),
            ex: ExecSpace::Serial,
            arena: Arc::new(PoolArena::new(None)),
            recovery: RecoveryOptions::default(),
            telemetry: StepRecorder::new(),
        }
    }

    /// CFL timestep for a level.
    pub fn estimate_dt(&self, state: &MultiFab, geom: &Geometry) -> Real {
        self.hydro.estimate_dt(
            state,
            &self.layout,
            self.eos,
            self.net.species(),
            geom,
            &self.ex,
        )
    }

    /// Recompute temperature and re-sync the advected internal energy from
    /// the conservative total energy (post-hydro EOS sync).
    pub fn sync_temperature(&self, state: &mut MultiFab) {
        let layout = self.layout;
        let floors = self.hydro.floors;
        let species = self.net.species();
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let fab = state.fab_mut(i);
            for iv in vb.iter() {
                let mut u = vec![0.0; layout.ncomp()];
                for c in 0..layout.ncomp() {
                    u[c] = fab.get(iv, c);
                }
                let q = cons_to_prim(&u, &layout, self.eos, species, &floors);
                // Renormalize species against advection drift.
                let rho = q.rho;
                let mut xsum = 0.0;
                for s in 0..layout.nspec {
                    xsum += (fab.get(iv, layout.spec(s)) / rho).max(0.0);
                }
                if xsum > 0.0 {
                    for s in 0..layout.nspec {
                        let x = (fab.get(iv, layout.spec(s)) / rho).max(0.0) / xsum;
                        fab.set(iv, layout.spec(s), rho * x);
                    }
                }
                let mut x = vec![0.0; layout.nspec];
                for s in 0..layout.nspec {
                    x[s] = fab.get(iv, layout.spec(s)) / rho;
                }
                let comp = Composition::from_mass_fractions(species, &x);
                let t = self
                    .eos
                    .t_from_e(rho, q.e, &comp, fab.get(iv, StateLayout::TEMP).max(1e3));
                fab.set(iv, StateLayout::TEMP, t.max(floors.small_temp));
                fab.set(iv, StateLayout::EINT, rho * q.e);
            }
        }
    }

    /// Validate the post-step state: every component finite, density and
    /// total energy positive, internal energy non-negative, and ΣX within
    /// `species_tol` of unity. Returns the *first* violation in sweep
    /// order (deterministic), or `Ok(())` for a healthy state.
    pub fn validate_state(
        &self,
        state: &MultiFab,
        species_tol: Real,
    ) -> Result<(), StateViolation> {
        let layout = self.layout;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let fab = state.fab(i);
            for iv in vb.iter() {
                for c in 0..layout.ncomp() {
                    if !fab.get(iv, c).is_finite() {
                        return Err(StateViolation::NonFinite { comp: c, zone: iv });
                    }
                }
                let rho = fab.get(iv, StateLayout::RHO);
                if rho <= 0.0 {
                    return Err(StateViolation::NegativeDensity { rho, zone: iv });
                }
                let eden = fab.get(iv, StateLayout::EDEN);
                if eden <= 0.0 {
                    return Err(StateViolation::NegativeEnergy { e: eden, zone: iv });
                }
                let eint = fab.get(iv, StateLayout::EINT);
                if eint < 0.0 {
                    return Err(StateViolation::NegativeEnergy { e: eint, zone: iv });
                }
                let mut xsum = 0.0;
                for s in 0..layout.nspec {
                    xsum += fab.get(iv, layout.spec(s)) / rho;
                }
                let drift = (xsum - 1.0).abs();
                if drift > species_tol {
                    return Err(StateViolation::SpeciesDrift { drift, zone: iv });
                }
            }
        }
        Ok(())
    }

    /// Advance one level by `dt`: Strang burn half, hydro sweeps, gravity
    /// source, EOS sync, Strang burn half, post-step validation. Returns
    /// step statistics and the hydro fluxes (for refluxing).
    ///
    /// On `Err` the state has been partially advanced and must be restored
    /// from a pre-step snapshot before continuing —
    /// [`Castro::advance_level_safe`] wraps this call in exactly that
    /// snapshot/restore transaction.
    pub fn advance_level(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<(StepStats, Vec<SweepFluxes>), StepError> {
        let _prof = Profiler::region("castro_advance");
        let mut stats = StepStats::default();
        if let Some(burn_opts) = &self.burn {
            let _r = Profiler::region("burn");
            let b = burn_state(
                state,
                0.5 * dt,
                self.net,
                self.eos,
                &self.layout,
                burn_opts,
                &self.ex,
                geom,
            )
            .map_err(StepError::Burn)?;
            stats.burn = b;
        }
        let fluxes = {
            let _r = Profiler::region("hydro");
            let (fluxes, comm) = self.hydro.advance(
                state,
                dt,
                geom,
                &self.layout,
                self.eos,
                self.net.species(),
                &self.bc,
                &self.ex,
                self.arena.as_ref(),
            );
            stats.comm.merge(&comm);
            fluxes
        };
        if self.gravity.mode != GravityMode::Off {
            let _r = Profiler::region("gravity");
            let field: GravityField = self.gravity.solve(state, geom);
            stats.gravity_converged = field.mg.as_ref().map(|m| m.converged);
            stats.comm.merge(&field.comm);
            Gravity::apply_source(state, &field, dt, &self.ex);
        }
        {
            let _r = Profiler::region("sync_temperature");
            self.sync_temperature(state);
        }
        if let Some(burn_opts) = &self.burn {
            let _r = Profiler::region("burn");
            let b = burn_state(
                state,
                0.5 * dt,
                self.net,
                self.eos,
                &self.layout,
                burn_opts,
                &self.ex,
                geom,
            )
            .map_err(StepError::Burn)?;
            stats.burn.merge(&b);
            stats.burn.skipped -= b.skipped; // halves see the same zones
        }
        {
            let _r = Profiler::region("validate");
            self.validate_state(state, self.recovery.species_tol)
                .map_err(StepError::Invalid)?;
        }
        stats.max_temp = state.max(StateLayout::TEMP);
        stats.max_dens = state.max(StateLayout::RHO);
        Ok((stats, fluxes))
    }

    /// Advance one level **transactionally**: snapshot the state, attempt
    /// the step, and on any [`StepError`] (burn-ladder exhaustion, a
    /// mid-step CFL violation through a strengthening shock — the collision
    /// problem does this at contact — or any validator rejection) restore
    /// the snapshot and retry with `dt` cut by [`RecoveryOptions::dt_cut`],
    /// up to [`RecoveryOptions::max_rejections`] attempts. Returns the
    /// stats and the `dt` actually taken.
    ///
    /// If every attempt fails the state is left **restored to its pre-step
    /// contents**, an emergency checkpoint is written (when
    /// [`RecoveryOptions::emergency_dir`] is set), and a structured
    /// [`DriverError`] is returned — never a panic.
    pub fn advance_level_safe(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<(StepStats, Real), Box<DriverError>> {
        let mut try_dt = dt;
        let attempts = self.recovery.max_rejections.max(1);
        let mut last_err = None;
        // Wall clock for the whole transaction, rejected attempts included:
        // telemetry should charge the step with what it actually cost.
        let step_start = self.telemetry.is_active().then(Instant::now);
        for attempt in 0..attempts {
            let snapshot = state.clone();
            match self.advance_level(state, geom, try_dt) {
                Ok((stats, _fluxes)) => {
                    if let Some(t0) = step_start {
                        self.record_step_metrics(state, &stats, try_dt, t0, attempt);
                    }
                    return Ok((stats, try_dt));
                }
                Err(e) => {
                    *state = snapshot;
                    last_err = Some(e);
                    let _r = Profiler::region("step_reject");
                    Profiler::record_retries(1);
                    if attempt + 1 < attempts {
                        try_dt *= self.recovery.dt_cut;
                    }
                }
            }
        }
        let emergency_checkpoint =
            self.recovery.emergency_dir.as_deref().and_then(|dir| {
                write_emergency(dir, &self.snapshot_level(state, geom, try_dt)).ok()
            });
        Err(Box::new(DriverError {
            error: last_err.expect("at least one attempt was made"),
            rejections: attempts,
            dt_floor: try_dt,
            emergency_checkpoint,
        }))
    }

    /// Build and emit the [`StepMetrics`] record for one accepted step.
    fn record_step_metrics(
        &self,
        state: &MultiFab,
        stats: &StepStats,
        dt: Real,
        step_start: Instant,
        rejections: u32,
    ) {
        let wall_ns = step_start.elapsed().as_nanos() as u64;
        let zones: u64 = (0..state.nfabs())
            .map(|i| state.valid_box(i).num_zones() as u64)
            .sum();
        let arena = self.arena.stats();
        self.telemetry.record(StepMetrics {
            driver: "castro".to_string(),
            dt,
            wall_ns,
            zones,
            newton_iters: stats.burn.newton_iters,
            bdf_steps: stats.burn.total_steps,
            burn_retries: stats.burn.retries,
            recovered_relaxed: stats.burn.recovered_relaxed,
            recovered_subcycle: stats.burn.recovered_subcycle,
            recovered_offload: stats.burn.offloaded,
            step_rejections: rejections as u64,
            arena_live_bytes: arena.bytes_live,
            arena_peak_bytes: arena.bytes_peak,
            ..Default::default()
        });
    }

    /// Package the (pre-step) level state as a resilience snapshot for the
    /// emergency-checkpoint path.
    fn snapshot_level(&self, state: &MultiFab, geom: &Geometry, dt: Real) -> Snapshot {
        Snapshot::single_level(
            geom.clone(),
            state.clone(),
            Clock {
                step: 0,
                time: 0.0,
                dt,
            },
            crate::restart::variable_names(&self.layout),
        )
    }

    /// Advance a two-level (or more) hierarchy without subcycling: all
    /// levels take the same `dt`; conservation across coarse–fine
    /// boundaries is repaired by refluxing and the coarse data under fine
    /// grids is replaced by the averaged-down fine solution.
    ///
    /// Propagates the first level's [`StepError`]; as with
    /// [`Castro::advance_level`], the states are tainted on `Err`.
    pub fn advance_hierarchy(
        &self,
        hier: &Hierarchy,
        states: &mut [MultiFab],
        dt: Real,
    ) -> Result<Vec<StepStats>, StepError> {
        assert_eq!(states.len(), hier.nlevels());
        let mut all_stats = Vec::new();
        // Fill fine-level ghosts from coarse data before anything moves.
        let fill_prof = Profiler::region("fill_patch");
        for l in 1..hier.nlevels() {
            let (coarse, fine) = states.split_at_mut(l);
            let cg = hier.level(l - 1).geom.clone();
            let fg = hier.level(l).geom.clone();
            fill_patch_two_levels(
                &mut fine[0],
                &fg,
                &mut coarse[l - 1],
                &cg,
                hier.level(l).ratio_to_coarser,
                &self.bc,
            );
        }
        drop(fill_prof);
        // Advance each level, collecting fluxes.
        let mut fluxes_per_level = Vec::new();
        for l in 0..hier.nlevels() {
            let geom = hier.level(l).geom.clone();
            let (stats, fluxes) = self.advance_level(&mut states[l], &geom, dt)?;
            all_stats.push(stats);
            fluxes_per_level.push(fluxes);
        }
        // Reflux coarse levels against their fine level.
        let _reflux_prof = Profiler::region("reflux");
        for l in (1..hier.nlevels()).rev() {
            let ratio = hier.level(l).ratio_to_coarser;
            let fine_ba = hier.level(l).ba.clone();
            let mut fr = FluxRegister::new(&fine_ba, ratio, self.layout.ncomp());
            let cgeom = &hier.level(l - 1).geom;
            let fgeom = &hier.level(l).geom;
            let cdx = cgeom.dx();
            let fdx = fgeom.dx();
            // Coarse fluxes on interface faces.
            for sweep in &fluxes_per_level[l - 1] {
                let d = sweep.dim;
                for fab in &sweep.fabs {
                    let fb = fab.index_box();
                    for iv in fb.iter() {
                        if fr.is_interface(d, iv) {
                            let mut f = vec![0.0; self.layout.ncomp()];
                            for (c, fc) in f.iter_mut().enumerate() {
                                *fc = fab.get(iv, c);
                            }
                            fr.crse_add(d, iv, &f, 1.0);
                        }
                    }
                }
            }
            // Fine fluxes, averaged onto coarse faces. Scale: the reflux
            // formula uses dt/dx_coarse; fine flux contributions represent
            // the same dt, so the area average (handled inside fine_add)
            // with unit scale is correct for a non-subcycled advance.
            for sweep in &fluxes_per_level[l] {
                let d = sweep.dim;
                for fab in &sweep.fabs {
                    let fb = fab.index_box();
                    for iv in fb.iter() {
                        // Only faces on the coarse-fine interface matter;
                        // fine_add maps to the parent coarse face and
                        // ignores non-interface faces.
                        let mut f = vec![0.0; self.layout.ncomp()];
                        for (c, fc) in f.iter_mut().enumerate() {
                            *fc = fab.get(iv, c);
                        }
                        fr.fine_add(d, iv, &f, 1.0);
                    }
                }
            }
            let _ = fdx;
            fr.reflux(
                &mut states[l - 1],
                &fine_ba,
                [dt / cdx[0], dt / cdx[1], dt / cdx[2]],
            );
            // Average the fine solution down over the covered coarse zones.
            let (coarse, fine) = states.split_at_mut(l);
            average_down(&fine[0], &mut coarse[l - 1], ratio);
        }
        Ok(all_stats)
    }

    /// Tag zones for refinement: temperature above `t_thresh` or density
    /// above `rho_thresh`, evaluated on `state`'s level.
    pub fn tag_zones(&self, state: &MultiFab, t_thresh: Real, rho_thresh: Real) -> Vec<IntVect> {
        let mut tags = Vec::new();
        for (i, vb) in state.iter_boxes() {
            for iv in vb.iter() {
                if state.fab(i).get(iv, StateLayout::TEMP) > t_thresh
                    || state.fab(i).get(iv, StateLayout::RHO) > rho_thresh
                {
                    tags.push(iv);
                }
            }
        }
        tags
    }

    /// Total mass over the valid region.
    pub fn total_mass(&self, state: &MultiFab, geom: &Geometry) -> Real {
        state.sum(StateLayout::RHO) * geom.cell_volume()
    }

    /// Total energy (ρE integrated).
    pub fn total_energy(&self, state: &MultiFab, geom: &Geometry) -> Real {
        state.sum(StateLayout::EDEN) * geom.cell_volume()
    }
}

impl Stepper for Castro<'_> {
    fn estimate_dt(&self, state: &MultiFab, geom: &Geometry) -> Real {
        Castro::estimate_dt(self, state, geom)
    }

    fn step(
        &mut self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<StepOutcome, StepFailure> {
        self.advance_level_safe(state, geom, dt)
            .map(|(stats, dt_taken)| StepOutcome {
                dt_taken,
                comm: stats.comm,
            })
            .map_err(|e| StepFailure::new(e.to_string()))
    }

    fn take_recorder(&mut self) -> exastro_telemetry::StepRecorder {
        std::mem::take(&mut self.telemetry)
    }
}
