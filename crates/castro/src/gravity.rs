//! Self-gravity: monopole approximation and full Poisson multigrid.
//!
//! Castro's gravity solve is "a global linear solve similar to, though a
//! little easier than" the MAESTROeX projection (§V). Two options are
//! provided, as in Castro:
//!
//! * [`GravityMode::Monopole`] — spherically averaged ρ(r) → g(r), exact
//!   for spherical stars and cheap (no communication beyond a reduction);
//! * [`GravityMode::Poisson`] — the full solve `∇²φ = 4πGρ` with
//!   inhomogeneous Dirichlet boundary values from the monopole potential
//!   (`−GM/r`), done with the tracked multigrid so the machine model sees
//!   its communication.

use crate::state::StateLayout;
use exastro_amr::{CommTrace, Geometry, IntVect, MultiFab, Real};
use exastro_microphysics::constants::G_NEWTON;
use exastro_parallel::ExecSpace;
use exastro_solvers::{MgBc, MgOptions, MgStats, Multigrid};

/// Gravity treatment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GravityMode {
    /// No gravity.
    Off,
    /// Spherically averaged monopole g(r) about the domain centre.
    Monopole,
    /// Full Poisson solve with monopole boundary conditions.
    Poisson,
}

/// The gravity solver: produces the acceleration field and applies the
/// momentum/energy sources.
pub struct Gravity {
    /// Mode in use.
    pub mode: GravityMode,
    /// Radial bins for the monopole average.
    pub n_bins: usize,
}

impl Default for Gravity {
    fn default() -> Self {
        Gravity {
            mode: GravityMode::Monopole,
            n_bins: 256,
        }
    }
}

/// The result of a gravity solve: potential-gradient acceleration per zone
/// stored in a 3-component multifab, plus solver statistics.
pub struct GravityField {
    /// Acceleration (g_x, g_y, g_z) on the state's box array.
    pub accel: MultiFab,
    /// Multigrid statistics when [`GravityMode::Poisson`] ran.
    pub mg: Option<MgStats>,
    /// Ghost exchanges performed directly by the solve (the multigrid's
    /// own traffic is ledgered inside [`MgStats`]).
    pub comm: CommTrace,
}

impl Gravity {
    /// Compute the acceleration field for `state`'s density.
    pub fn solve(&self, state: &MultiFab, geom: &Geometry) -> GravityField {
        match self.mode {
            GravityMode::Off => GravityField {
                accel: MultiFab::new(state.box_array().clone(), state.dist_map().clone(), 3, 0),
                mg: None,
                comm: CommTrace::default(),
            },
            GravityMode::Monopole => self.monopole(state, geom),
            GravityMode::Poisson => self.poisson(state, geom),
        }
    }

    fn center(geom: &Geometry) -> [Real; 3] {
        let lo = geom.prob_lo();
        let hi = geom.prob_hi();
        [
            0.5 * (lo[0] + hi[0]),
            0.5 * (lo[1] + hi[1]),
            0.5 * (lo[2] + hi[2]),
        ]
    }

    /// Enclosed-mass profile about the domain centre.
    fn mass_profile(&self, state: &MultiFab, geom: &Geometry) -> (Vec<Real>, Real) {
        let c = Self::center(geom);
        let half_diag = {
            let lo = geom.prob_lo();
            let hi = geom.prob_hi();
            let mut d2 = 0.0;
            for t in 0..3 {
                d2 += (hi[t] - lo[t]) * (hi[t] - lo[t]);
            }
            0.5 * d2.sqrt()
        };
        let dr = half_diag / self.n_bins as Real;
        let vol = geom.cell_volume();
        let mut mass = vec![0.0; self.n_bins];
        for (i, vb) in state.iter_boxes() {
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                let r =
                    ((x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2) + (x[2] - c[2]).powi(2)).sqrt();
                let bin = ((r / dr) as usize).min(self.n_bins - 1);
                mass[bin] += state.fab(i).get(iv, StateLayout::RHO) * vol;
            }
        }
        // Cumulative sum → enclosed mass at bin outer edge.
        for b in 1..self.n_bins {
            mass[b] += mass[b - 1];
        }
        (mass, dr)
    }

    fn monopole(&self, state: &MultiFab, geom: &Geometry) -> GravityField {
        let (mass, dr) = self.mass_profile(state, geom);
        let c = Self::center(geom);
        let mut accel = MultiFab::new(state.box_array().clone(), state.dist_map().clone(), 3, 0);
        for i in 0..accel.nfabs() {
            let vb = accel.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                let dx = [x[0] - c[0], x[1] - c[1], x[2] - c[2]];
                let r = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2])
                    .sqrt()
                    .max(0.1 * dr);
                let bin = ((r / dr) as usize).min(self.n_bins - 1);
                let g = -G_NEWTON * mass[bin] / (r * r);
                for d in 0..3 {
                    accel.fab_mut(i).set(iv, d, g * dx[d] / r);
                }
            }
        }
        GravityField {
            accel,
            mg: None,
            comm: CommTrace::default(),
        }
    }

    fn poisson(&self, state: &MultiFab, geom: &Geometry) -> GravityField {
        // rhs = 4πGρ.
        let ba = state.box_array().clone();
        let dm = state.dist_map().clone();
        let mut rhs = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let v =
                    4.0 * std::f64::consts::PI * G_NEWTON * state.fab(i).get(iv, StateLayout::RHO);
                rhs.fab_mut(i).set(iv, 0, v);
            }
        }
        // Initial guess with monopole boundary ghosts: φ = −GM/r outside.
        let (mass, dr) = self.mass_profile(state, geom);
        let total_mass = *mass.last().unwrap();
        let c = Self::center(geom);
        let mut phi = MultiFab::new(ba.clone(), dm.clone(), 1, 1);
        let domain = geom.domain();
        for i in 0..phi.nfabs() {
            let gb = phi.grown_box(i);
            for iv in gb.iter() {
                if domain.contains(iv) {
                    continue;
                }
                let x = geom.cell_center(iv);
                let r = ((x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2) + (x[2] - c[2]).powi(2))
                    .sqrt()
                    .max(dr);
                phi.fab_mut(i).set(iv, 0, -G_NEWTON * total_mass / r);
            }
        }
        let mg = Multigrid::poisson(
            [MgBc::Dirichlet; 3],
            MgOptions {
                tol_rel: 1e-9,
                ..Default::default()
            },
        );
        let stats = mg.solve(&mut phi, &rhs, geom);
        // g = −∇φ by central differences (ghosts refilled with the BC data
        // by the solver's final copy… refill domain ghosts from the
        // monopole again and exchange interior ghosts).
        let comm = phi.fill_boundary(geom);
        for i in 0..phi.nfabs() {
            let gb = phi.grown_box(i);
            for iv in gb.iter() {
                if domain.contains(iv) {
                    continue;
                }
                let x = geom.cell_center(iv);
                let r = ((x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2) + (x[2] - c[2]).powi(2))
                    .sqrt()
                    .max(dr);
                phi.fab_mut(i).set(iv, 0, -G_NEWTON * total_mass / r);
            }
        }
        let mut accel = MultiFab::new(ba, dm, 3, 0);
        let dx = geom.dx();
        for i in 0..accel.nfabs() {
            let vb = accel.valid_box(i);
            for iv in vb.iter() {
                for d in 0..3 {
                    let e = IntVect::dim_vec(d);
                    let g =
                        -(phi.fab(i).get(iv + e, 0) - phi.fab(i).get(iv - e, 0)) / (2.0 * dx[d]);
                    accel.fab_mut(i).set(iv, d, g);
                }
            }
        }
        GravityField {
            accel,
            mg: Some(stats),
            comm,
        }
    }

    /// Apply the gravity source to momentum and energy over `dt`:
    /// `ρu += ρ g dt`, `ρE += ρ u·g dt` (evaluated with the updated
    /// velocity midpoint for better energy behaviour).
    pub fn apply_source(state: &mut MultiFab, field: &GravityField, dt: Real, ex: &ExecSpace) {
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let gacc = field.accel.fab(i).array();
            let fab = state.fab_mut(i);
            let uarr = fab.array_mut();
            ex.par_for(vb, |i, j, k| {
                let rho = uarr.at(i, j, k, StateLayout::RHO);
                let mut ke_src = 0.0;
                for d in 0..3 {
                    let g = gacc.at(i, j, k, d);
                    let m_old = uarr.at(i, j, k, StateLayout::MX + d);
                    let m_new = m_old + rho * g * dt;
                    uarr.set(i, j, k, StateLayout::MX + d, m_new);
                    // Midpoint velocity dotted with g.
                    ke_src += 0.5 * (m_old + m_new) * g * dt;
                }
                uarr.add(i, j, k, StateLayout::EDEN, ke_src);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{BoxArray, DistStrategy, DistributionMapping};

    /// Uniform sphere of density ρ₀ and radius R at the domain centre.
    fn sphere_state(n: i32, width: Real, rho0: Real, radius: Real) -> (Geometry, MultiFab) {
        let geom = Geometry::cube(n, width, false);
        let ba = BoxArray::decompose(geom.domain(), 16, 4);
        let dm = DistributionMapping::new(&ba, 2, DistStrategy::Sfc);
        let layout = StateLayout::new(1);
        let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
        let c = width / 2.0;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                let r = ((x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2)).sqrt();
                let rho = if r < radius { rho0 } else { 1e-8 };
                state.fab_mut(i).set(iv, StateLayout::RHO, rho);
            }
        }
        (geom, state)
    }

    #[test]
    fn monopole_matches_analytic_uniform_sphere() {
        let rho0 = 1e6;
        let radius = 2e8;
        let (geom, state) = sphere_state(32, 1e9, rho0, radius);
        let grav = Gravity {
            mode: GravityMode::Monopole,
            n_bins: 512,
        };
        let f = grav.solve(&state, &geom);
        let m_tot = 4.0 / 3.0 * std::f64::consts::PI * radius.powi(3) * rho0;
        // Probe a zone outside the sphere along x.
        let c = 5e8;
        let probe = IntVect::new(28, 16, 16);
        let x = geom.cell_center(probe);
        let r = ((x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2)).sqrt();
        assert!(r > radius);
        let g_expect = -G_NEWTON * m_tot / (r * r);
        let gx = f.accel.value_at(probe, 0);
        let g_mag = (0..3)
            .map(|d| f.accel.value_at(probe, d).powi(2))
            .sum::<Real>()
            .sqrt();
        assert!(
            (g_mag / g_expect.abs() - 1.0).abs() < 0.15,
            "g {} vs {}",
            g_mag,
            g_expect
        );
        // Pointing inward (towards centre): at x > c the x-accel is negative.
        assert!(gx < 0.0);
    }

    #[test]
    fn poisson_gravity_matches_monopole_for_sphere() {
        let (geom, state) = sphere_state(32, 1e9, 1e6, 2e8);
        let mono = Gravity {
            mode: GravityMode::Monopole,
            n_bins: 512,
        }
        .solve(&state, &geom);
        let pois = Gravity {
            mode: GravityMode::Poisson,
            n_bins: 512,
        }
        .solve(&state, &geom);
        assert!(pois.mg.as_ref().unwrap().converged);
        // Compare accelerations in a shell outside the star but away from
        // the domain boundary.
        let c = 5e8;
        let mut checked = 0;
        for iv in geom.domain().grow(-6).iter() {
            let x = geom.cell_center(iv);
            let r = ((x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2)).sqrt();
            if !(2.5e8..3.5e8).contains(&r) {
                continue;
            }
            checked += 1;
            for d in 0..3 {
                let a = mono.accel.value_at(iv, d);
                let b = pois.accel.value_at(iv, d);
                let scale = a.abs().max(b.abs()).max(1e-6);
                assert!(
                    (a - b).abs() / scale < 0.2,
                    "{iv:?} dim {d}: monopole {a} poisson {b}"
                );
            }
        }
        assert!(checked > 50, "too few probe zones: {checked}");
    }

    #[test]
    fn gravity_source_conserves_mass_and_accelerates_inward() {
        let (geom, mut state) = sphere_state(16, 1e9, 1e6, 2e8);
        let grav = Gravity::default();
        let f = grav.solve(&state, &geom);
        let mass_before = state.sum(StateLayout::RHO);
        let ex = ExecSpace::Serial;
        Gravity::apply_source(&mut state, &f, 1.0, &ex);
        assert_eq!(state.sum(StateLayout::RHO), mass_before);
        // Net momentum stays ~zero by symmetry; individual zones gained
        // inward momentum.
        let probe = IntVect::new(12, 8, 8); // +x side
        assert!(state.value_at(probe, StateLayout::MX) < 0.0);
        let probe2 = IntVect::new(3, 8, 8); // −x side
        assert!(state.value_at(probe2, StateLayout::MX) > 0.0);
    }
}
