//! The compressible hydrodynamics solver: dimensionally split
//! piecewise-linear (MUSCL) Godunov with HLLC fluxes.
//!
//! Two kernel structures are provided, reproducing the §III refactor:
//!
//! * [`KernelStructure::Legacy`] — the pre-GPU CPU structure: slopes for
//!   *all* zones are computed in a first loop and staged in a scratch
//!   array, then a second loop reads two staged slopes per face. Fewer
//!   flops, bigger memory footprint.
//! * [`KernelStructure::Flat`] — the GPU port: one loop over faces in which
//!   each face *redundantly recomputes* the two slopes it needs. More
//!   total flops, no slope array, embarrassingly parallel per face. (The
//!   paper found this faster even on CPUs, "due largely to decreasing the
//!   memory footprint".)
//!
//! Both paths produce bitwise-identical fluxes (a test asserts this).
//! All scratch storage is drawn from an [`Arena`], so the pool-allocator
//! ablation measures exactly the allocation churn this module generates.
//!
//! Castro proper uses an unsplit corner-transport-upwind scheme with PPM;
//! the dimensional splitting used here is a documented simplification
//! (DESIGN.md) that preserves the stencil shape, the per-zone kernel
//! economics, and second-order convergence on smooth flow.

use crate::riemann::hllc;
use crate::state::{cons_to_prim, Floors, Primitive, StateLayout};
use exastro_amr::{Array4Mut, BcSpec, FArrayBox, Geometry, IndexBox, IntVect, MultiFab};
use exastro_microphysics::{Eos, Species};
use exastro_parallel::{Arena, ExecSpace, KernelProfile, Real};

/// Which loop structure the sweep kernels use (§III ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelStructure {
    /// Staged slope arrays + second loop (pre-GPU structure).
    Legacy,
    /// Fused per-face recomputation (GPU-ready structure).
    Flat,
}

/// Primitive-variable component indices within the scratch fab.
struct Q;
impl Q {
    const RHO: usize = 0;
    const U: usize = 1; // normal velocity is rotated per sweep
    const P: usize = 4;
    const E: usize = 5;
    const C: usize = 6;
    const FS: usize = 7;
    fn ncomp(nspec: usize) -> usize {
        Self::FS + nspec
    }
}

/// Hydro options.
#[derive(Clone, Debug)]
pub struct Hydro {
    /// CFL number.
    pub cfl: Real,
    /// Kernel structure (see module docs).
    pub structure: KernelStructure,
    /// State floors.
    pub floors: Floors,
}

impl Default for Hydro {
    fn default() -> Self {
        Hydro {
            cfl: 0.5,
            structure: KernelStructure::Flat,
            floors: Floors::default(),
        }
    }
}

/// Face fluxes of one sweep for one fab: `ncomp` conserved fluxes plus the
/// face normal velocity (for the −p∇·u internal-energy source) as the last
/// component.
pub struct SweepFluxes {
    /// One flux fab per state fab; face-indexed box (hi + 1 in the sweep
    /// dimension).
    pub fabs: Vec<FArrayBox>,
    /// Sweep dimension.
    pub dim: usize,
}

/// Monotonized-central limited slope.
#[inline]
fn mc_slope(vm: Real, v0: Real, vp: Real) -> Real {
    let dc = 0.5 * (vp - vm);
    let dl = 2.0 * (v0 - vm);
    let dr = 2.0 * (vp - v0);
    if dl * dr <= 0.0 {
        0.0
    } else {
        dc.abs().min(dl.abs()).min(dr.abs()) * dc.signum()
    }
}

/// Registers-per-thread estimate for the flux kernel; the flat kernel holds
/// two traced states plus slopes in thread-local storage.
fn flux_kernel_profile(nspec: usize, structure: KernelStructure) -> KernelProfile {
    let regs = match structure {
        KernelStructure::Flat => 120 + 6 * nspec as u32,
        KernelStructure::Legacy => 80 + 4 * nspec as u32,
    };
    let cost = match structure {
        KernelStructure::Flat => 1.1,   // redundant slope flops
        KernelStructure::Legacy => 1.4, // extra memory traffic dominates
    };
    KernelProfile::new(cost, regs)
}

impl Hydro {
    /// CFL-limited timestep over all fabs.
    pub fn estimate_dt(
        &self,
        state: &MultiFab,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        geom: &Geometry,
        ex: &ExecSpace,
    ) -> Real {
        let dx = geom.dx();
        let mut min_dt = Real::INFINITY;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let fab = state.fab(i);
            let arr = fab.array();
            let ncomp = layout.ncomp();
            let floors = self.floors;
            let layout = *layout;
            let max_speed = ex.par_reduce_max(vb, |i, j, k| {
                let mut u = [0.0; 40];
                for c in 0..ncomp {
                    u[c] = arr.at(i, j, k, c);
                }
                let q = cons_to_prim(&u[..ncomp], &layout, eos, species, &floors);
                let mut s: Real = 0.0;
                for d in 0..3 {
                    s = s.max((q.vel[d].abs() + q.cs) / dx[d] * dx[0]);
                }
                s
            });
            if max_speed > 0.0 {
                min_dt = min_dt.min(dx[0] / max_speed);
            }
        }
        self.cfl * min_dt
    }

    /// Compute primitives on `region` of `fab` into an arena scratch view.
    #[allow(clippy::too_many_arguments)]
    fn primitives(
        &self,
        fab: &FArrayBox,
        region: IndexBox,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        ex: &ExecSpace,
        qbuf: &mut [Real],
    ) {
        let nq = Q::ncomp(layout.nspec);
        let ncomp = layout.ncomp();
        let qarr = Array4Mut::from_slice(qbuf, region, nq);
        let sarr = fab.array();
        let floors = self.floors;
        let layout = *layout;
        let profile = KernelProfile::new(3.0, 180); // EOS Newton inversion is heavy
        ex.par_for_prof(region, &profile, |i, j, k| {
            let mut u = [0.0; 40];
            for c in 0..ncomp {
                u[c] = sarr.at(i, j, k, c);
            }
            let q = cons_to_prim(&u[..ncomp], &layout, eos, species, &floors);
            qarr.set(i, j, k, Q::RHO, q.rho);
            qarr.set(i, j, k, Q::U, q.vel[0]);
            qarr.set(i, j, k, Q::U + 1, q.vel[1]);
            qarr.set(i, j, k, Q::U + 2, q.vel[2]);
            qarr.set(i, j, k, Q::P, q.p);
            qarr.set(i, j, k, Q::E, q.e);
            qarr.set(i, j, k, Q::C, q.cs);
            let inv = 1.0 / u[StateLayout::RHO].max(floors.small_dens);
            for s in 0..layout.nspec {
                qarr.set(
                    i,
                    j,
                    k,
                    Q::FS + s,
                    (u[layout.spec(s)] * inv).clamp(0.0, 1.0),
                );
            }
        });
    }

    /// One directional sweep over every fab of `state`; ghost zones must be
    /// filled for `state` on entry. Returns the face fluxes (for flux
    /// registers) and applies the conservative update.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        &self,
        state: &mut MultiFab,
        dim: usize,
        dt: Real,
        geom: &Geometry,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        ex: &ExecSpace,
        arena: &dyn Arena,
    ) -> SweepFluxes {
        assert!(state.ngrow() >= 2, "hydro needs two ghost zones");
        let nq = Q::ncomp(layout.nspec);
        let ncomp = layout.ncomp();
        let nflux = ncomp + 1; // + face normal velocity
        let dx = geom.dx()[dim];
        let dtdx = dt / dx;
        let mut flux_fabs = Vec::with_capacity(state.nfabs());
        let profile = flux_kernel_profile(layout.nspec, self.structure);

        for fi in 0..state.nfabs() {
            let vb = state.valid_box(fi);
            // Primitives on the valid box grown by 2 (stencil support).
            let qregion = vb.grow(2);
            let mut qbuf = arena.alloc(qregion.num_zones() as usize * nq);
            self.primitives(state.fab(fi), qregion, layout, eos, species, ex, &mut qbuf);
            let qarr = Array4(&qbuf, qregion, nq);

            // Face box: one extra face layer in the sweep dimension.
            let mut face_hi = vb.hi();
            face_hi[dim] += 1;
            let face_bx = IndexBox::new(vb.lo(), face_hi);
            let mut flux = FArrayBox::new(face_bx, nflux);
            {
                let farr = flux.array_mut();
                let e = IntVect::dim_vec(dim);
                match self.structure {
                    KernelStructure::Flat => {
                        // Fused: each face recomputes the slopes of its two
                        // neighbouring zones.
                        let floors = self.floors;
                        ex.par_for_prof(face_bx, &profile, |i, j, k| {
                            let iv = IntVect::new(i, j, k);
                            let (ql, qr) =
                                trace_pair(&qarr, iv, e, dim, dtdx, layout.nspec, None, &floors);
                            write_flux(&farr, i, j, k, &ql, &qr, dim, layout);
                        });
                    }
                    KernelStructure::Legacy => {
                        // Stage limited slopes for every zone in a scratch
                        // array (extra footprint), then a second loop reads
                        // them back. Faces touch zones vb ± 1 in the sweep
                        // dimension.
                        let sregion = vb.grow_dir(dim, 1);
                        let mut sbuf = arena.alloc(sregion.num_zones() as usize * nq);
                        {
                            let sarr = Array4Mut::from_slice(&mut sbuf, sregion, nq);
                            ex.par_for_prof(sregion, &profile, |i, j, k| {
                                for c in 0..nq {
                                    let vm = qarr.at(i - e.x(), j - e.y(), k - e.z(), c);
                                    let v0 = qarr.at(i, j, k, c);
                                    let vp = qarr.at(i + e.x(), j + e.y(), k + e.z(), c);
                                    sarr.set(i, j, k, c, mc_slope(vm, v0, vp));
                                }
                            });
                        }
                        let sarr_r = Array4(&sbuf, sregion, nq);
                        let floors = self.floors;
                        ex.par_for_prof(face_bx, &profile, |i, j, k| {
                            let iv = IntVect::new(i, j, k);
                            let (ql, qr) = trace_pair(
                                &qarr,
                                iv,
                                e,
                                dim,
                                dtdx,
                                layout.nspec,
                                Some(&sarr_r),
                                &floors,
                            );
                            write_flux(&farr, i, j, k, &ql, &qr, dim, layout);
                        });
                    }
                }
            }

            // Conservative update of the valid zones.
            {
                let farr = flux.array();
                let sfab = state.fab_mut(fi);
                let uarr = sfab.array_mut();
                let e = IntVect::dim_vec(dim);
                let small_dens = self.floors.small_dens;
                ex.par_for_prof(vb, &profile, |i, j, k| {
                    let (ip, jp, kp) = (i + e.x(), j + e.y(), k + e.z());
                    for c in 0..ncomp {
                        if c == StateLayout::TEMP {
                            continue;
                        }
                        let du = -dtdx * (farr.at(ip, jp, kp, c) - farr.at(i, j, k, c));
                        uarr.add(i, j, k, c, du);
                    }
                    // −p ∇·u source for the auxiliary internal energy.
                    let pc = qarr.at(i, j, k, Q::P);
                    let div_u = farr.at(ip, jp, kp, ncomp) - farr.at(i, j, k, ncomp);
                    uarr.add(i, j, k, StateLayout::EINT, -dtdx * pc * div_u);
                    // Density floor.
                    if uarr.at(i, j, k, StateLayout::RHO) < small_dens {
                        uarr.set(i, j, k, StateLayout::RHO, small_dens);
                    }
                });
            }
            flux_fabs.push(flux);
        }
        SweepFluxes {
            fabs: flux_fabs,
            dim,
        }
    }

    /// A full hydro step: three directional sweeps with ghost refills
    /// between them. Returns per-dimension fluxes for refluxing.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &self,
        state: &mut MultiFab,
        dt: Real,
        geom: &Geometry,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        bc: &BcSpec,
        ex: &ExecSpace,
        arena: &dyn Arena,
    ) -> Vec<SweepFluxes> {
        let mut fluxes = Vec::with_capacity(3);
        for dim in 0..3 {
            state.fill_boundary(geom);
            state.fill_physical_bc(geom, bc);
            fluxes.push(self.sweep(state, dim, dt, geom, layout, eos, species, ex, arena));
        }
        fluxes
    }
}

/// Shorthand for viewing a scratch slice as a fab.
#[allow(non_snake_case)]
fn Array4<'a>(data: &'a [Real], bx: IndexBox, ncomp: usize) -> exastro_amr::Array4<'a> {
    exastro_amr::Array4::from_slice(data, bx, ncomp)
}

/// Reconstruct and half-step-trace the left/right primitive states at the
/// face `iv` (between zones `iv − e` and `iv`), rotated so component 0 is
/// the face-normal velocity. If `slopes` is provided (legacy structure)
/// staged slopes are used; otherwise they are recomputed inline (flat).
#[allow(clippy::too_many_arguments)]
#[inline]
fn trace_pair(
    q: &exastro_amr::Array4<'_>,
    iv: IntVect,
    e: IntVect,
    dim: usize,
    dtdx: Real,
    nspec: usize,
    slopes: Option<&exastro_amr::Array4<'_>>,
    floors: &Floors,
) -> (TracedState, TracedState) {
    let zl = iv - e;
    let zr = iv;
    let ql = trace_one(q, zl, e, dim, dtdx, nspec, 0.5, slopes, floors);
    let qr = trace_one(q, zr, e, dim, dtdx, nspec, -0.5, slopes, floors);
    (ql, qr)
}

/// A traced face state: rotated primitive plus species.
pub struct TracedState {
    /// Rotated primitive (`vel[0]` is the face normal).
    pub prim: Primitive,
    /// Species mass fractions.
    pub x: [Real; 16],
}

/// Trace zone `z`'s state to its face at `side` (+0.5 = high face, −0.5 =
/// low face) over a half step.
#[allow(clippy::too_many_arguments)]
#[inline]
fn trace_one(
    q: &exastro_amr::Array4<'_>,
    z: IntVect,
    e: IntVect,
    dim: usize,
    dtdx: Real,
    nspec: usize,
    side: Real,
    slopes: Option<&exastro_amr::Array4<'_>>,
    floors: &Floors,
) -> TracedState {
    let at = |iv: IntVect, c: usize| q.at(iv.x(), iv.y(), iv.z(), c);
    let slope = |c: usize| -> Real {
        match slopes {
            Some(s) => s.at(z.x(), z.y(), z.z(), c),
            None => mc_slope(at(z - e, c), at(z, c), at(z + e, c)),
        }
    };
    // Cell-centred values.
    let rho = at(z, Q::RHO);
    let un = at(z, Q::U + dim);
    let p = at(z, Q::P);
    let ei = at(z, Q::E);
    let cs = at(z, Q::C);
    // Limited slopes.
    let d_rho = slope(Q::RHO);
    let d_un = slope(Q::U + dim);
    let d_p = slope(Q::P);
    let d_e = slope(Q::E);
    // Half-step primitive-variable evolution: dq/dt = −A(q) ∂q/∂x.
    let half = 0.5 * dtdx;
    let rho_t = -(un * d_rho + rho * d_un);
    let un_t = -(un * d_un + d_p / rho.max(1e-300));
    let p_t = -(un * d_p + rho * cs * cs * d_un);
    let e_t = -(un * d_e + p / rho.max(1e-300) * d_un);
    // Floors keep the traced state physical through the star/vacuum
    // interfaces of the collision problem; when a traced value would fall
    // below its floor, the zone-centred value is used instead (local
    // first-order fallback).
    let rho_tr = rho + side * d_rho + half * rho_t;
    let p_tr = p + side * d_p + half * p_t;
    let e_tr = ei + side * d_e + half * e_t;
    let fallback = rho_tr < floors.small_dens || p_tr < floors.small_pres || e_tr <= 0.0;
    let mut prim = if fallback {
        Primitive {
            rho: rho.max(floors.small_dens),
            vel: [0.0; 3],
            p: p.max(floors.small_pres),
            e: ei.max(1e-300),
            cs,
        }
    } else {
        Primitive {
            rho: rho_tr,
            vel: [0.0; 3],
            p: p_tr,
            e: e_tr,
            cs,
        }
    };
    let (side, half) = if fallback { (0.0, 0.0) } else { (side, half) };
    prim.vel[0] = un + side * d_un + half * un_t;
    // Transverse velocities and species advect passively.
    for (slot, t) in [(1usize, (dim + 1) % 3), (2usize, (dim + 2) % 3)] {
        let v = at(z, Q::U + t);
        let d_v = slope(Q::U + t);
        prim.vel[slot] = v + side * d_v + half * (-(un * d_v));
    }
    // Approximate traced sound speed via frozen Γ₁.
    let gam1 = cs * cs * rho / p.max(1e-300);
    prim.cs = (gam1 * prim.p / prim.rho).sqrt();
    let mut x = [0.0; 16];
    for s in 0..nspec.min(16) {
        let xv = at(z, Q::FS + s);
        let d_x = slope(Q::FS + s);
        x[s] = (xv + side * d_x + half * (-(un * d_x))).clamp(0.0, 1.0);
    }
    TracedState { prim, x }
}

/// Solve the face Riemann problem and store the (un-rotated) conserved
/// fluxes plus the face normal velocity in the flux fab.
#[inline]
#[allow(clippy::too_many_arguments)]
fn write_flux(
    farr: &Array4Mut<'_>,
    i: i32,
    j: i32,
    k: i32,
    ql: &TracedState,
    qr: &TracedState,
    dim: usize,
    layout: &StateLayout,
) {
    let f = hllc(&ql.prim, &qr.prim);
    let ncomp = layout.ncomp();
    farr.set(i, j, k, StateLayout::RHO, f.mass);
    // Rotate momenta back: mom[0] is normal (dim), mom[1] is (dim+1)%3...
    farr.set(i, j, k, StateLayout::MX + dim, f.mom[0]);
    farr.set(i, j, k, StateLayout::MX + (dim + 1) % 3, f.mom[1]);
    farr.set(i, j, k, StateLayout::MX + (dim + 2) % 3, f.mom[2]);
    farr.set(i, j, k, StateLayout::EDEN, f.energy);
    farr.set(i, j, k, StateLayout::EINT, f.eint);
    farr.set(i, j, k, StateLayout::TEMP, 0.0);
    let xs = if f.upwind_left { &ql.x } else { &qr.x };
    for s in 0..layout.nspec {
        farr.set(i, j, k, layout.spec(s), f.mass * xs[s.min(15)]);
    }
    // Face normal velocity for the −p∇·u source: mass flux / upwind rho is
    // a decent contact-speed proxy, clamped to the local signal speed to
    // stay bounded at near-vacuum faces.
    let rho_up = if f.upwind_left {
        ql.prim.rho
    } else {
        qr.prim.rho
    };
    let vmax = ql.prim.vel[0].abs().max(qr.prim.vel[0].abs()) + ql.prim.cs.max(qr.prim.cs);
    let uface = (f.mass / rho_up.max(1e-300)).clamp(-vmax, vmax);
    farr.set(i, j, k, ncomp, uface);
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{BcKind, BoxArray, DistributionMapping};
    use exastro_microphysics::network::Network;
    use exastro_microphysics::{CBurn2, Composition, GammaLaw};
    use exastro_parallel::PoolArena;

    /// Build a pseudo-1D Sod shock tube along `dim`.
    fn sod_state(n: i32, dim: usize) -> (Geometry, MultiFab, StateLayout, GammaLaw) {
        let mut size = IntVect::splat(4);
        size[dim] = n;
        let domain = IndexBox::sized(size);
        let mut hi = [1e-2; 3];
        hi[dim] = 1.0;
        let mut periodic = [true; 3];
        periodic[dim] = false;
        let geom = Geometry::new(
            domain,
            [0.0; 3],
            hi,
            periodic,
            exastro_amr::CoordSys::Cartesian,
        );
        let ba = BoxArray::decompose(domain, n.max(8), 4);
        let dm = DistributionMapping::all_local(&ba);
        let layout = StateLayout::new(2);
        let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
        let eos = GammaLaw { gamma: 1.4 };
        let net = CBurn2::new();
        let comp = Composition::from_mass_fractions(net.species(), &[1.0, 0.0]);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv)[dim];
                let (rho, p) = if x < 0.5 { (1.0, 1.0) } else { (0.125, 0.1) };
                let e = eos.e_from_p(rho, p);
                let t = eos.t_from_e(rho, e, &comp, 1e3);
                let fab = state.fab_mut(i);
                fab.set(iv, StateLayout::RHO, rho);
                fab.set(iv, StateLayout::EDEN, rho * e);
                fab.set(iv, StateLayout::EINT, rho * e);
                fab.set(iv, StateLayout::TEMP, t);
                fab.set(iv, layout.spec(0), rho);
            }
        }
        (geom, state, layout, eos)
    }

    fn run_sod(
        structure: KernelStructure,
        nsteps: usize,
        dim: usize,
    ) -> (Geometry, MultiFab, StateLayout) {
        let (geom, mut state, layout, eos) = sod_state(128, dim);
        let net = CBurn2::new();
        let hydro = Hydro {
            cfl: 0.4,
            structure,
            floors: Floors::dimensionless(),
        };
        let ex = ExecSpace::Serial;
        let arena = PoolArena::new(None);
        let mut bc = BcSpec::outflow();
        // Periodic transverse dims handled by fill_boundary.
        bc.kind[(dim + 1) % 3] = [BcKind::Periodic; 2];
        bc.kind[(dim + 2) % 3] = [BcKind::Periodic; 2];
        for _ in 0..nsteps {
            let dt = hydro.estimate_dt(&state, &layout, &eos, net.species(), &geom, &ex);
            assert!(dt > 0.0 && dt.is_finite());
            hydro.advance(
                &mut state,
                dt.min(1e-2),
                &geom,
                &layout,
                &eos,
                net.species(),
                &bc,
                &ex,
                &arena,
            );
        }
        (geom, state, layout)
    }

    #[test]
    fn sod_tube_structure_is_correct() {
        // After some evolution: shock moving right, contact behind it,
        // rarefaction on the left; density stays within [0.125, 1.0] up to
        // small overshoots; total mass in the tube is conserved until waves
        // reach the boundary.
        let (geom, state, layout) = run_sod(KernelStructure::Flat, 40, 0);
        let _ = layout;
        let rho_min = state.min(StateLayout::RHO);
        let rho_max = state.max(StateLayout::RHO);
        assert!(rho_min > 0.1, "min rho {rho_min}");
        assert!(rho_max < 1.05, "max rho {rho_max}");
        // Momentum generated is positive (flow toward low pressure).
        assert!(state.sum(StateLayout::MX) > 0.0);
        // The density at the far right is still the ambient value (shock
        // hasn't reached the wall), left end still 1.0.
        let probe_r = IntVect::new(126, 2, 2);
        let probe_l = IntVect::new(1, 2, 2);
        assert!((state.value_at(probe_r, StateLayout::RHO) - 0.125).abs() < 1e-6);
        assert!((state.value_at(probe_l, StateLayout::RHO) - 1.0).abs() < 1e-6);
        let _ = geom;
    }

    #[test]
    fn flat_and_legacy_agree_bitwise() {
        let (_, sf, _) = run_sod(KernelStructure::Flat, 10, 0);
        let (_, sl, _) = run_sod(KernelStructure::Legacy, 10, 0);
        for i in 0..sf.nfabs() {
            let vb = sf.valid_box(i);
            for iv in vb.iter() {
                for c in 0..sf.ncomp() {
                    let a = sf.fab(i).get(iv, c);
                    let b = sl.fab(i).get(iv, c);
                    assert!(a == b, "structure mismatch at {iv:?} comp {c}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn sweeps_are_direction_symmetric() {
        // The same 1-D problem run along x, y, and z gives identical
        // profiles.
        let (ga, sa, _) = run_sod(KernelStructure::Flat, 10, 0);
        let (_, sb, _) = run_sod(KernelStructure::Flat, 10, 1);
        let (_, sc, _) = run_sod(KernelStructure::Flat, 10, 2);
        for i in 0..128 {
            let a = sa.value_at(IntVect::new(i, 2, 2), StateLayout::RHO);
            let b = sb.value_at(IntVect::new(2, i, 2), StateLayout::RHO);
            let c = sc.value_at(IntVect::new(2, 2, i), StateLayout::RHO);
            assert!((a - b).abs() < 1e-12, "x vs y at {i}: {a} {b}");
            assert!((a - c).abs() < 1e-12, "x vs z at {i}: {a} {c}");
        }
        let _ = ga;
    }

    #[test]
    fn periodic_advection_conserves_everything() {
        // Uniform flow in a fully periodic box: conserved quantities must
        // not drift.
        let geom = Geometry::cube(16, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let layout = StateLayout::new(2);
        let mut state = MultiFab::local(ba, layout.ncomp(), 2);
        let eos = GammaLaw { gamma: 1.4 };
        let net = CBurn2::new();
        let comp = Composition::from_mass_fractions(net.species(), &[0.5, 0.5]);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                // Smooth density ripple advected by uniform velocity.
                let rho = 1.0 + 0.1 * (2.0 * std::f64::consts::PI * x[0]).sin();
                let u = 1.0;
                let p = 1.0;
                let e = eos.e_from_p(rho, p);
                let t = eos.t_from_e(rho, e, &comp, 1e3);
                let fab = state.fab_mut(i);
                fab.set(iv, StateLayout::RHO, rho);
                fab.set(iv, StateLayout::MX, rho * u);
                fab.set(iv, StateLayout::EDEN, rho * e + 0.5 * rho * u * u);
                fab.set(iv, StateLayout::EINT, rho * e);
                fab.set(iv, StateLayout::TEMP, t);
                fab.set(iv, layout.spec(0), 0.5 * rho);
                fab.set(iv, layout.spec(1), 0.5 * rho);
            }
        }
        let mass0 = state.sum(StateLayout::RHO);
        let mom0 = state.sum(StateLayout::MX);
        let en0 = state.sum(StateLayout::EDEN);
        let sp0 = state.sum(layout.spec(0));
        let hydro = Hydro {
            floors: Floors::dimensionless(),
            ..Default::default()
        };
        let ex = ExecSpace::Serial;
        let arena = PoolArena::new(None);
        let bc = BcSpec::periodic();
        for _ in 0..10 {
            let dt = hydro.estimate_dt(&state, &layout, &eos, net.species(), &geom, &ex);
            hydro.advance(
                &mut state,
                dt,
                &geom,
                &layout,
                &eos,
                net.species(),
                &bc,
                &ex,
                &arena,
            );
        }
        assert!((state.sum(StateLayout::RHO) / mass0 - 1.0).abs() < 1e-12);
        assert!((state.sum(StateLayout::MX) / mom0 - 1.0).abs() < 1e-12);
        assert!((state.sum(StateLayout::EDEN) / en0 - 1.0).abs() < 1e-11);
        assert!((state.sum(layout.spec(0)) / sp0 - 1.0).abs() < 1e-12);
        // Positivity throughout.
        assert!(state.min(StateLayout::RHO) > 0.5);
    }

    #[test]
    fn pool_arena_sees_hydro_scratch_churn() {
        let arena = PoolArena::new(None);
        let (geom, mut state, layout, eos) = sod_state(32, 0);
        let net = CBurn2::new();
        let hydro = Hydro {
            floors: Floors::dimensionless(),
            ..Default::default()
        };
        let ex = ExecSpace::Serial;
        let mut bc = BcSpec::outflow();
        bc.kind[1] = [BcKind::Periodic; 2];
        bc.kind[2] = [BcKind::Periodic; 2];
        for _ in 0..3 {
            hydro.advance(
                &mut state,
                1e-3,
                &geom,
                &layout,
                &eos,
                net.species(),
                &bc,
                &ex,
                &arena,
            );
        }
        let s = arena.stats();
        assert!(s.allocs >= 9, "3 steps × 3 sweeps of scratch: {}", s.allocs);
        // After warm-up, allocations are pool hits.
        assert!(
            s.pool_hits >= s.allocs - 4,
            "hits {} of {}",
            s.pool_hits,
            s.allocs
        );
    }
}
