//! The compressible hydrodynamics solver: dimensionally split
//! piecewise-linear (MUSCL) Godunov with HLLC fluxes.
//!
//! Two kernel structures are provided, reproducing the §III refactor:
//!
//! * [`KernelStructure::Legacy`] — the pre-GPU CPU structure: slopes for
//!   *all* zones are computed in a first loop and staged in a scratch
//!   array, then a second loop reads two staged slopes per face. Fewer
//!   flops, bigger memory footprint.
//! * [`KernelStructure::Flat`] — the GPU port: one loop over faces in which
//!   each face *redundantly recomputes* the two slopes it needs. More
//!   total flops, no slope array, embarrassingly parallel per face. (The
//!   paper found this faster even on CPUs, "due largely to decreasing the
//!   memory footprint".)
//!
//! Both paths produce bitwise-identical fluxes (a test asserts this).
//! All scratch storage is drawn from an [`Arena`], so the pool-allocator
//! ablation measures exactly the allocation churn this module generates.
//!
//! ## Communication overlap
//!
//! Each sweep's faces split into an **interior** set, whose 4-zone stencil
//! lies entirely in valid data, and a **boundary band** (the outermost two
//! face layers per side along the sweep dimension), which reads ghost
//! zones. With [`Hydro::overlap`] set, a sweep runs as a dependency graph
//! on the worker pool ([`TaskGraph`]): ghost packs are posted through the
//! two-phase [`MultiFab::plan_fill_boundary`] API, interior kernels run
//! with nothing to wait for, and band kernels fire per box as soon as that
//! box's ghosts have been unpacked. The schedule is free to reorder; the
//! results are bit-identical to the bulk-synchronous path because every
//! task writes disjoint slots and every face computes the same arithmetic
//! on the same inputs (a test digests both paths).
//!
//! Castro proper uses an unsplit corner-transport-upwind scheme with PPM;
//! the dimensional splitting used here is a documented simplification
//! (DESIGN.md) that preserves the stencil shape, the per-zone kernel
//! economics, and second-order convergence on smooth flow.

use crate::riemann::hllc;
use crate::state::{cons_to_prim, Floors, Primitive, StateLayout};
use exastro_amr::{
    apply_physical_bc, Array4Mut, BcSpec, CommTrace, FArrayBox, Geometry, IndexBox, IntVect,
    MultiFab,
};
use exastro_microphysics::{Eos, Species};
use exastro_parallel::{Arena, ExecSpace, KernelProfile, Real, TaskGraph, WorkerPool};
use exastro_telemetry::{TaskClass, TaskLabel};

/// Which loop structure the sweep kernels use (§III ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelStructure {
    /// Staged slope arrays + second loop (pre-GPU structure).
    Legacy,
    /// Fused per-face recomputation (GPU-ready structure).
    Flat,
}

/// Primitive-variable component indices within the scratch fab.
struct Q;
impl Q {
    const RHO: usize = 0;
    const U: usize = 1; // normal velocity is rotated per sweep
    const P: usize = 4;
    const E: usize = 5;
    const C: usize = 6;
    const FS: usize = 7;
    fn ncomp(nspec: usize) -> usize {
        Self::FS + nspec
    }
}

/// Hydro options.
#[derive(Clone, Debug)]
pub struct Hydro {
    /// CFL number.
    pub cfl: Real,
    /// Kernel structure (see module docs).
    pub structure: KernelStructure,
    /// Overlap ghost exchange with interior compute via the task-graph
    /// scheduler. Only the [`KernelStructure::Flat`] kernels support it
    /// (the legacy slope staging reads ghosts up front); with `Legacy`
    /// the sweep silently falls back to the bulk-synchronous path.
    pub overlap: bool,
    /// State floors.
    pub floors: Floors,
}

impl Default for Hydro {
    fn default() -> Self {
        Hydro {
            cfl: 0.5,
            structure: KernelStructure::Flat,
            overlap: true,
            floors: Floors::default(),
        }
    }
}

/// Face fluxes of one sweep for one fab: `ncomp` conserved fluxes plus the
/// face normal velocity (for the −p∇·u internal-energy source) as the last
/// component.
pub struct SweepFluxes {
    /// One flux fab per state fab; face-indexed box (hi + 1 in the sweep
    /// dimension).
    pub fabs: Vec<FArrayBox>,
    /// Sweep dimension.
    pub dim: usize,
}

/// The full face box of `vb` along `dim`: every valid zone's low face plus
/// one extra layer for the last zone's high face.
pub fn face_box(vb: IndexBox, dim: usize) -> IndexBox {
    let mut hi = vb.hi();
    hi[dim] += 1;
    IndexBox::new(vb.lo(), hi)
}

/// The faces of `vb` along `dim` whose reconstruction stencil (zones
/// `iv − 2e .. iv + e`) lies entirely in valid data: `iv_d ∈ [lo+2, hi−1]`.
/// `None` when the box is too narrow (< 4 zones) to have any.
pub fn interior_faces(vb: IndexBox, dim: usize) -> Option<IndexBox> {
    let mut lo = vb.lo();
    let mut hi = vb.hi();
    lo[dim] += 2;
    hi[dim] -= 1;
    (lo[dim] <= hi[dim]).then(|| IndexBox::new(lo, hi))
}

/// The boundary-band face boxes of `vb` along `dim` — the faces whose
/// stencil reads ghost zones. Up to two boxes (low side, high side),
/// clipped so that together with [`interior_faces`] they tile
/// [`face_box`] disjointly for any box width (including 1–3 zone boxes).
pub fn band_faces(vb: IndexBox, dim: usize) -> Vec<IndexBox> {
    let (l, h) = (vb.lo()[dim], vb.hi()[dim]);
    let mut out = Vec::with_capacity(2);
    // Low band: faces lo and lo+1, clipped to the face box.
    let mut blo = vb.lo();
    let mut bhi = vb.hi();
    bhi[dim] = (l + 1).min(h + 1);
    out.push(IndexBox::new(blo, bhi));
    // High band: faces hi and hi+1, minus any overlap with the low band.
    blo[dim] = (l + 2).max(h);
    bhi[dim] = h + 1;
    if blo[dim] <= bhi[dim] {
        out.push(IndexBox::new(blo, bhi));
    }
    out
}

/// The two ghost-zone slabs (2 deep along `dim`, valid extent transverse)
/// whose primitives the band faces read. Transverse ghosts are *not*
/// included: a dimensionally split sweep never reads them.
pub fn ghost_slabs(vb: IndexBox, dim: usize) -> [IndexBox; 2] {
    let mut llo = vb.lo();
    let mut lhi = vb.hi();
    llo[dim] = vb.lo()[dim] - 2;
    lhi[dim] = vb.lo()[dim] - 1;
    let lo_slab = IndexBox::new(llo, lhi);
    let mut hlo = vb.lo();
    let mut hhi = vb.hi();
    hlo[dim] = vb.hi()[dim] + 1;
    hhi[dim] = vb.hi()[dim] + 2;
    [lo_slab, IndexBox::new(hlo, hhi)]
}

/// Monotonized-central limited slope.
#[inline]
fn mc_slope(vm: Real, v0: Real, vp: Real) -> Real {
    let dc = 0.5 * (vp - vm);
    let dl = 2.0 * (v0 - vm);
    let dr = 2.0 * (vp - v0);
    if dl * dr <= 0.0 {
        0.0
    } else {
        dc.abs().min(dl.abs()).min(dr.abs()) * dc.signum()
    }
}

/// Registers-per-thread estimate for the flux kernel; the flat kernel holds
/// two traced states plus slopes in thread-local storage.
fn flux_kernel_profile(nspec: usize, structure: KernelStructure) -> KernelProfile {
    let regs = match structure {
        KernelStructure::Flat => 120 + 6 * nspec as u32,
        KernelStructure::Legacy => 80 + 4 * nspec as u32,
    };
    let cost = match structure {
        KernelStructure::Flat => 1.1,   // redundant slope flops
        KernelStructure::Legacy => 1.4, // extra memory traffic dominates
    };
    KernelProfile::new(cost, regs)
}

impl Hydro {
    /// CFL-limited timestep over all fabs.
    pub fn estimate_dt(
        &self,
        state: &MultiFab,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        geom: &Geometry,
        ex: &ExecSpace,
    ) -> Real {
        let dx = geom.dx();
        let mut min_dt = Real::INFINITY;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let fab = state.fab(i);
            let arr = fab.array();
            let ncomp = layout.ncomp();
            let floors = self.floors;
            let layout = *layout;
            let max_speed = ex.par_reduce_max(vb, |i, j, k| {
                let mut u = [0.0; 40];
                for c in 0..ncomp {
                    u[c] = arr.at(i, j, k, c);
                }
                let q = cons_to_prim(&u[..ncomp], &layout, eos, species, &floors);
                let mut s: Real = 0.0;
                for d in 0..3 {
                    s = s.max((q.vel[d].abs() + q.cs) / dx[d] * dx[0]);
                }
                s
            });
            if max_speed > 0.0 {
                min_dt = min_dt.min(dx[0] / max_speed);
            }
        }
        self.cfl * min_dt
    }

    /// Compute primitives on `region` zones, reading conserved data through
    /// `sarr` and writing into the scratch view `qarr`. Pointwise, so any
    /// partition of a region computes the same values as one full pass.
    #[allow(clippy::too_many_arguments)]
    fn primitives_region(
        &self,
        sarr: &Array4Mut<'_>,
        region: IndexBox,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        ex: &ExecSpace,
        qarr: &Array4Mut<'_>,
    ) {
        let ncomp = layout.ncomp();
        let floors = self.floors;
        let layout = *layout;
        let profile = KernelProfile::new(3.0, 180); // EOS Newton inversion is heavy
        ex.par_for_prof(region, &profile, |i, j, k| {
            let mut u = [0.0; 40];
            for c in 0..ncomp {
                u[c] = sarr.at(i, j, k, c);
            }
            let q = cons_to_prim(&u[..ncomp], &layout, eos, species, &floors);
            qarr.set(i, j, k, Q::RHO, q.rho);
            qarr.set(i, j, k, Q::U, q.vel[0]);
            qarr.set(i, j, k, Q::U + 1, q.vel[1]);
            qarr.set(i, j, k, Q::U + 2, q.vel[2]);
            qarr.set(i, j, k, Q::P, q.p);
            qarr.set(i, j, k, Q::E, q.e);
            qarr.set(i, j, k, Q::C, q.cs);
            let inv = 1.0 / u[StateLayout::RHO].max(floors.small_dens);
            for s in 0..layout.nspec {
                qarr.set(
                    i,
                    j,
                    k,
                    Q::FS + s,
                    (u[layout.spec(s)] * inv).clamp(0.0, 1.0),
                );
            }
        });
    }

    /// Solve the face Riemann problems on `faces` and store fluxes into
    /// `farr`. With `slopes` (legacy structure) staged slopes are read
    /// back; otherwise each face recomputes its own (flat structure).
    #[allow(clippy::too_many_arguments)]
    fn flux_region(
        &self,
        faces: IndexBox,
        qarr: &Array4Mut<'_>,
        slopes: Option<&Array4Mut<'_>>,
        farr: &Array4Mut<'_>,
        dim: usize,
        dtdx: Real,
        layout: &StateLayout,
        ex: &ExecSpace,
        profile: &KernelProfile,
    ) {
        let e = IntVect::dim_vec(dim);
        let floors = self.floors;
        let nspec = layout.nspec;
        let layout = *layout;
        ex.par_for_prof(faces, profile, |i, j, k| {
            let iv = IntVect::new(i, j, k);
            let (ql, qr) = trace_pair(qarr, iv, e, dim, dtdx, nspec, slopes, &floors);
            write_flux(farr, i, j, k, &ql, &qr, dim, &layout);
        });
    }

    /// Conservative update of `vb` from face fluxes, plus the −p∇·u
    /// internal-energy source and the density floor.
    #[allow(clippy::too_many_arguments)]
    fn update_region(
        &self,
        vb: IndexBox,
        farr: &Array4Mut<'_>,
        qarr: &Array4Mut<'_>,
        uarr: &Array4Mut<'_>,
        dim: usize,
        dtdx: Real,
        layout: &StateLayout,
        ex: &ExecSpace,
        profile: &KernelProfile,
    ) {
        let e = IntVect::dim_vec(dim);
        let ncomp = layout.ncomp();
        let small_dens = self.floors.small_dens;
        ex.par_for_prof(vb, profile, |i, j, k| {
            let (ip, jp, kp) = (i + e.x(), j + e.y(), k + e.z());
            for c in 0..ncomp {
                if c == StateLayout::TEMP {
                    continue;
                }
                let du = -dtdx * (farr.at(ip, jp, kp, c) - farr.at(i, j, k, c));
                uarr.add(i, j, k, c, du);
            }
            // −p ∇·u source for the auxiliary internal energy.
            let pc = qarr.at(i, j, k, Q::P);
            let div_u = farr.at(ip, jp, kp, ncomp) - farr.at(i, j, k, ncomp);
            uarr.add(i, j, k, StateLayout::EINT, -dtdx * pc * div_u);
            // Density floor.
            if uarr.at(i, j, k, StateLayout::RHO) < small_dens {
                uarr.set(i, j, k, StateLayout::RHO, small_dens);
            }
        });
    }

    /// One directional sweep over every fab of `state`; ghost zones must be
    /// filled for `state` on entry. Returns the face fluxes (for flux
    /// registers) and applies the conservative update.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        &self,
        state: &mut MultiFab,
        dim: usize,
        dt: Real,
        geom: &Geometry,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        ex: &ExecSpace,
        arena: &dyn Arena,
    ) -> SweepFluxes {
        assert!(state.ngrow() >= 2, "hydro needs two ghost zones");
        let nq = Q::ncomp(layout.nspec);
        let ncomp = layout.ncomp();
        let nflux = ncomp + 1; // + face normal velocity
        let dtdx = dt / geom.dx()[dim];
        let mut flux_fabs = Vec::with_capacity(state.nfabs());
        let profile = flux_kernel_profile(layout.nspec, self.structure);

        for fi in 0..state.nfabs() {
            let vb = state.valid_box(fi);
            // Primitives on the valid box grown by 2 (stencil support).
            let qregion = vb.grow(2);
            let mut qbuf = arena.alloc(qregion.num_zones() as usize * nq);
            let face_bx = face_box(vb, dim);
            let mut flux = FArrayBox::new(face_bx, nflux);
            {
                let sarr = state.fab_mut(fi).array_mut();
                let qarr = Array4Mut::from_slice(&mut qbuf, qregion, nq);
                self.primitives_region(&sarr, qregion, layout, eos, species, ex, &qarr);
                let farr = flux.array_mut();
                match self.structure {
                    KernelStructure::Flat => {
                        // Fused: each face recomputes the slopes of its two
                        // neighbouring zones.
                        self.flux_region(
                            face_bx, &qarr, None, &farr, dim, dtdx, layout, ex, &profile,
                        );
                    }
                    KernelStructure::Legacy => {
                        // Stage limited slopes for every zone in a scratch
                        // array (extra footprint), then a second loop reads
                        // them back. Faces touch zones vb ± 1 in the sweep
                        // dimension.
                        let e = IntVect::dim_vec(dim);
                        let sregion = vb.grow_dir(dim, 1);
                        let mut sbuf = arena.alloc(sregion.num_zones() as usize * nq);
                        let slarr = Array4Mut::from_slice(&mut sbuf, sregion, nq);
                        ex.par_for_prof(sregion, &profile, |i, j, k| {
                            for c in 0..nq {
                                let vm = qarr.at(i - e.x(), j - e.y(), k - e.z(), c);
                                let v0 = qarr.at(i, j, k, c);
                                let vp = qarr.at(i + e.x(), j + e.y(), k + e.z(), c);
                                slarr.set(i, j, k, c, mc_slope(vm, v0, vp));
                            }
                        });
                        self.flux_region(
                            face_bx,
                            &qarr,
                            Some(&slarr),
                            &farr,
                            dim,
                            dtdx,
                            layout,
                            ex,
                            &profile,
                        );
                    }
                }
                // Conservative update of the valid zones.
                self.update_region(vb, &farr, &qarr, &sarr, dim, dtdx, layout, ex, &profile);
            }
            flux_fabs.push(flux);
        }
        SweepFluxes {
            fabs: flux_fabs,
            dim,
        }
    }

    /// One directional sweep as a task graph: ghost exchange posted through
    /// [`MultiFab::plan_fill_boundary`], interior kernels overlapping the
    /// in-flight halos, band kernels gated per box on that box's unpack.
    ///
    /// Per-box tasks and edges (`n` = number of fabs):
    ///
    /// | task        | work                                | depends on            |
    /// |-------------|-------------------------------------|-----------------------|
    /// | `pack f`    | pack ops with src = f               | —                     |
    /// | `unpack f`  | unpack ghosts of f, physical BC     | packs of f's senders  |
    /// | `interior f`| primitives on valid, interior fluxes| —                     |
    /// | `band f`    | slab primitives, band fluxes        | `unpack f`,`interior f`|
    /// | `update f`  | conservative update of f            | `interior f`, `band f`, `pack f` |
    ///
    /// `update f` waits on `pack f` because the pack reads f's valid zones;
    /// the ghost-exchange buffers must capture pre-update data exactly as
    /// an MPI isend would.
    #[allow(clippy::too_many_arguments)]
    fn sweep_overlapped(
        &self,
        state: &mut MultiFab,
        dim: usize,
        dt: Real,
        geom: &Geometry,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        bc: &BcSpec,
        ex: &ExecSpace,
        arena: &dyn Arena,
    ) -> (SweepFluxes, CommTrace) {
        assert!(state.ngrow() >= 2, "hydro needs two ghost zones");
        let n = state.nfabs();
        let nq = Q::ncomp(layout.nspec);
        let nflux = layout.ncomp() + 1;
        let dtdx = dt / geom.dx()[dim];
        let profile = flux_kernel_profile(layout.nspec, self.structure);

        let pending = state.plan_fill_boundary(geom);
        let mut packs_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut senders_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for o in 0..pending.nops() {
            let (src, dst) = pending.op_endpoints(o);
            packs_of[src].push(o);
            senders_of[dst].push(src);
        }
        for s in &mut senders_of {
            s.sort_unstable();
            s.dedup();
        }

        let vbs: Vec<IndexBox> = (0..n).map(|i| state.valid_box(i)).collect();
        let qregions: Vec<IndexBox> = vbs.iter().map(|vb| vb.grow(2)).collect();
        let mut qbufs: Vec<_> = qregions
            .iter()
            .map(|r| arena.alloc(r.num_zones() as usize * nq))
            .collect();
        let mut flux_fabs: Vec<FArrayBox> = vbs
            .iter()
            .map(|vb| FArrayBox::new(face_box(*vb, dim), nflux))
            .collect();

        {
            let state_views = state.fab_views_mut();
            let q_views: Vec<Array4Mut<'_>> = qbufs
                .iter_mut()
                .zip(&qregions)
                .map(|(b, r)| Array4Mut::from_slice(b, *r, nq))
                .collect();
            let flux_views: Vec<Array4Mut<'_>> =
                flux_fabs.iter_mut().map(|f| f.array_mut()).collect();

            // Task ids by block: pack f, n + unpack f, 2n + interior f,
            // 3n + band f, 4n + update f.
            let mut g = TaskGraph::new();
            for _ in 0..n {
                g.add_task();
            }
            for f in 0..n {
                let id = g.add_task();
                for &s in &senders_of[f] {
                    g.add_edge(s, id);
                }
            }
            for _ in 0..n {
                g.add_task();
            }
            for f in 0..n {
                g.add_task_after(&[n + f, 2 * n + f]);
            }
            for f in 0..n {
                g.add_task_after(&[2 * n + f, 3 * n + f, f]);
            }

            let pend = &pending;
            let svs = &state_views;
            let qvs = &q_views;
            let fvs = &flux_views;
            let dim_name = ["x", "y", "z"][dim];
            g.run_labeled(
                WorkerPool::global(),
                n.max(1),
                &format!("hydro.sweep.{dim_name}"),
                |t| {
                    let (kind, f) = (t / n, t % n);
                    let (name, class) = match kind {
                        0 => ("pack", TaskClass::Comm),
                        1 => ("unpack", TaskClass::Comm),
                        2 => ("interior", TaskClass::Compute),
                        3 => ("band", TaskClass::Compute),
                        _ => ("update", TaskClass::Compute),
                    };
                    TaskLabel::new(format!("{name}.f{f}"), class)
                },
                |t| {
                    let (kind, f) = (t / n, t % n);
                    match kind {
                        0 => {
                            let sv = &svs[f];
                            for &o in &packs_of[f] {
                                pend.pack_op(o, |iv, c| sv.at(iv.x(), iv.y(), iv.z(), c));
                            }
                        }
                        1 => {
                            let sv = &svs[f];
                            pend.unpack_fab(f, |iv, c, v| sv.set(iv.x(), iv.y(), iv.z(), c, v));
                            apply_physical_bc(sv, geom, bc);
                        }
                        2 => {
                            self.primitives_region(
                                &svs[f], vbs[f], layout, eos, species, ex, &qvs[f],
                            );
                            if let Some(faces) = interior_faces(vbs[f], dim) {
                                self.flux_region(
                                    faces, &qvs[f], None, &fvs[f], dim, dtdx, layout, ex, &profile,
                                );
                            }
                        }
                        3 => {
                            for slab in ghost_slabs(vbs[f], dim) {
                                self.primitives_region(
                                    &svs[f], slab, layout, eos, species, ex, &qvs[f],
                                );
                            }
                            for faces in band_faces(vbs[f], dim) {
                                self.flux_region(
                                    faces, &qvs[f], None, &fvs[f], dim, dtdx, layout, ex, &profile,
                                );
                            }
                        }
                        _ => {
                            self.update_region(
                                vbs[f], &fvs[f], &qvs[f], &svs[f], dim, dtdx, layout, ex, &profile,
                            );
                        }
                    }
                },
            )
            .expect("hydro sweep graph is a DAG by construction");
        }
        let trace = pending.finish();
        (
            SweepFluxes {
                fabs: flux_fabs,
                dim,
            },
            trace,
        )
    }

    /// A full hydro step: three directional sweeps with ghost refills
    /// between them. With [`Hydro::overlap`] and flat kernels each sweep
    /// runs as a task graph overlapping exchange with interior compute;
    /// otherwise exchange completes up front (bulk-synchronous). Returns
    /// per-dimension fluxes for refluxing and the step's communication
    /// trace for the machine model.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &self,
        state: &mut MultiFab,
        dt: Real,
        geom: &Geometry,
        layout: &StateLayout,
        eos: &dyn Eos,
        species: &[Species],
        bc: &BcSpec,
        ex: &ExecSpace,
        arena: &dyn Arena,
    ) -> (Vec<SweepFluxes>, CommTrace) {
        let mut fluxes = Vec::with_capacity(3);
        let mut trace = CommTrace::default();
        let overlapped = self.overlap && self.structure == KernelStructure::Flat;
        for dim in 0..3 {
            if overlapped {
                let (fx, t) = self
                    .sweep_overlapped(state, dim, dt, geom, layout, eos, species, bc, ex, arena);
                trace.merge(&t);
                fluxes.push(fx);
            } else {
                let t = state.fill_boundary(geom);
                trace.merge(&t);
                state.fill_physical_bc(geom, bc);
                fluxes.push(self.sweep(state, dim, dt, geom, layout, eos, species, ex, arena));
            }
        }
        (fluxes, trace)
    }
}

/// Reconstruct and half-step-trace the left/right primitive states at the
/// face `iv` (between zones `iv − e` and `iv`), rotated so component 0 is
/// the face-normal velocity. If `slopes` is provided (legacy structure)
/// staged slopes are used; otherwise they are recomputed inline (flat).
#[allow(clippy::too_many_arguments)]
#[inline]
fn trace_pair(
    q: &Array4Mut<'_>,
    iv: IntVect,
    e: IntVect,
    dim: usize,
    dtdx: Real,
    nspec: usize,
    slopes: Option<&Array4Mut<'_>>,
    floors: &Floors,
) -> (TracedState, TracedState) {
    let zl = iv - e;
    let zr = iv;
    let ql = trace_one(q, zl, e, dim, dtdx, nspec, 0.5, slopes, floors);
    let qr = trace_one(q, zr, e, dim, dtdx, nspec, -0.5, slopes, floors);
    (ql, qr)
}

/// A traced face state: rotated primitive plus species.
pub struct TracedState {
    /// Rotated primitive (`vel[0]` is the face normal).
    pub prim: Primitive,
    /// Species mass fractions.
    pub x: [Real; 16],
}

/// Trace zone `z`'s state to its face at `side` (+0.5 = high face, −0.5 =
/// low face) over a half step.
#[allow(clippy::too_many_arguments)]
#[inline]
fn trace_one(
    q: &Array4Mut<'_>,
    z: IntVect,
    e: IntVect,
    dim: usize,
    dtdx: Real,
    nspec: usize,
    side: Real,
    slopes: Option<&Array4Mut<'_>>,
    floors: &Floors,
) -> TracedState {
    let at = |iv: IntVect, c: usize| q.at(iv.x(), iv.y(), iv.z(), c);
    let slope = |c: usize| -> Real {
        match slopes {
            Some(s) => s.at(z.x(), z.y(), z.z(), c),
            None => mc_slope(at(z - e, c), at(z, c), at(z + e, c)),
        }
    };
    // Cell-centred values.
    let rho = at(z, Q::RHO);
    let un = at(z, Q::U + dim);
    let p = at(z, Q::P);
    let ei = at(z, Q::E);
    let cs = at(z, Q::C);
    // Limited slopes.
    let d_rho = slope(Q::RHO);
    let d_un = slope(Q::U + dim);
    let d_p = slope(Q::P);
    let d_e = slope(Q::E);
    // Half-step primitive-variable evolution: dq/dt = −A(q) ∂q/∂x.
    let half = 0.5 * dtdx;
    let rho_t = -(un * d_rho + rho * d_un);
    let un_t = -(un * d_un + d_p / rho.max(1e-300));
    let p_t = -(un * d_p + rho * cs * cs * d_un);
    let e_t = -(un * d_e + p / rho.max(1e-300) * d_un);
    // Floors keep the traced state physical through the star/vacuum
    // interfaces of the collision problem; when a traced value would fall
    // below its floor, the zone-centred value is used instead (local
    // first-order fallback).
    let rho_tr = rho + side * d_rho + half * rho_t;
    let p_tr = p + side * d_p + half * p_t;
    let e_tr = ei + side * d_e + half * e_t;
    let fallback = rho_tr < floors.small_dens || p_tr < floors.small_pres || e_tr <= 0.0;
    let mut prim = if fallback {
        Primitive {
            rho: rho.max(floors.small_dens),
            vel: [0.0; 3],
            p: p.max(floors.small_pres),
            e: ei.max(1e-300),
            cs,
        }
    } else {
        Primitive {
            rho: rho_tr,
            vel: [0.0; 3],
            p: p_tr,
            e: e_tr,
            cs,
        }
    };
    let (side, half) = if fallback { (0.0, 0.0) } else { (side, half) };
    prim.vel[0] = un + side * d_un + half * un_t;
    // Transverse velocities and species advect passively.
    for (slot, t) in [(1usize, (dim + 1) % 3), (2usize, (dim + 2) % 3)] {
        let v = at(z, Q::U + t);
        let d_v = slope(Q::U + t);
        prim.vel[slot] = v + side * d_v + half * (-(un * d_v));
    }
    // Approximate traced sound speed via frozen Γ₁.
    let gam1 = cs * cs * rho / p.max(1e-300);
    prim.cs = (gam1 * prim.p / prim.rho).sqrt();
    let mut x = [0.0; 16];
    for s in 0..nspec.min(16) {
        let xv = at(z, Q::FS + s);
        let d_x = slope(Q::FS + s);
        x[s] = (xv + side * d_x + half * (-(un * d_x))).clamp(0.0, 1.0);
    }
    TracedState { prim, x }
}

/// Solve the face Riemann problem and store the (un-rotated) conserved
/// fluxes plus the face normal velocity in the flux fab.
#[inline]
#[allow(clippy::too_many_arguments)]
fn write_flux(
    farr: &Array4Mut<'_>,
    i: i32,
    j: i32,
    k: i32,
    ql: &TracedState,
    qr: &TracedState,
    dim: usize,
    layout: &StateLayout,
) {
    let f = hllc(&ql.prim, &qr.prim);
    let ncomp = layout.ncomp();
    farr.set(i, j, k, StateLayout::RHO, f.mass);
    // Rotate momenta back: mom[0] is normal (dim), mom[1] is (dim+1)%3...
    farr.set(i, j, k, StateLayout::MX + dim, f.mom[0]);
    farr.set(i, j, k, StateLayout::MX + (dim + 1) % 3, f.mom[1]);
    farr.set(i, j, k, StateLayout::MX + (dim + 2) % 3, f.mom[2]);
    farr.set(i, j, k, StateLayout::EDEN, f.energy);
    farr.set(i, j, k, StateLayout::EINT, f.eint);
    farr.set(i, j, k, StateLayout::TEMP, 0.0);
    let xs = if f.upwind_left { &ql.x } else { &qr.x };
    for s in 0..layout.nspec {
        farr.set(i, j, k, layout.spec(s), f.mass * xs[s.min(15)]);
    }
    // Face normal velocity for the −p∇·u source: mass flux / upwind rho is
    // a decent contact-speed proxy, clamped to the local signal speed to
    // stay bounded at near-vacuum faces.
    let rho_up = if f.upwind_left {
        ql.prim.rho
    } else {
        qr.prim.rho
    };
    let vmax = ql.prim.vel[0].abs().max(qr.prim.vel[0].abs()) + ql.prim.cs.max(qr.prim.cs);
    let uface = (f.mass / rho_up.max(1e-300)).clamp(-vmax, vmax);
    farr.set(i, j, k, ncomp, uface);
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{BcKind, BoxArray, DistributionMapping};
    use exastro_microphysics::network::Network;
    use exastro_microphysics::{CBurn2, Composition, GammaLaw};
    use exastro_parallel::PoolArena;

    /// Build a pseudo-1D Sod shock tube along `dim`.
    fn sod_state(n: i32, dim: usize) -> (Geometry, MultiFab, StateLayout, GammaLaw) {
        let mut size = IntVect::splat(4);
        size[dim] = n;
        let domain = IndexBox::sized(size);
        let mut hi = [1e-2; 3];
        hi[dim] = 1.0;
        let mut periodic = [true; 3];
        periodic[dim] = false;
        let geom = Geometry::new(
            domain,
            [0.0; 3],
            hi,
            periodic,
            exastro_amr::CoordSys::Cartesian,
        );
        let ba = BoxArray::decompose(domain, n.max(8), 4);
        let dm = DistributionMapping::all_local(&ba);
        let layout = StateLayout::new(2);
        let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
        let eos = GammaLaw { gamma: 1.4 };
        let net = CBurn2::new();
        let comp = Composition::from_mass_fractions(net.species(), &[1.0, 0.0]);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv)[dim];
                let (rho, p) = if x < 0.5 { (1.0, 1.0) } else { (0.125, 0.1) };
                let e = eos.e_from_p(rho, p);
                let t = eos.t_from_e(rho, e, &comp, 1e3);
                let fab = state.fab_mut(i);
                fab.set(iv, StateLayout::RHO, rho);
                fab.set(iv, StateLayout::EDEN, rho * e);
                fab.set(iv, StateLayout::EINT, rho * e);
                fab.set(iv, StateLayout::TEMP, t);
                fab.set(iv, layout.spec(0), rho);
            }
        }
        (geom, state, layout, eos)
    }

    fn run_sod(
        structure: KernelStructure,
        nsteps: usize,
        dim: usize,
    ) -> (Geometry, MultiFab, StateLayout) {
        let (geom, mut state, layout, eos) = sod_state(128, dim);
        let net = CBurn2::new();
        let hydro = Hydro {
            cfl: 0.4,
            structure,
            overlap: true,
            floors: Floors::dimensionless(),
        };
        let ex = ExecSpace::Serial;
        let arena = PoolArena::new(None);
        let mut bc = BcSpec::outflow();
        // Periodic transverse dims handled by fill_boundary.
        bc.kind[(dim + 1) % 3] = [BcKind::Periodic; 2];
        bc.kind[(dim + 2) % 3] = [BcKind::Periodic; 2];
        for _ in 0..nsteps {
            let dt = hydro.estimate_dt(&state, &layout, &eos, net.species(), &geom, &ex);
            assert!(dt > 0.0 && dt.is_finite());
            let _ = hydro.advance(
                &mut state,
                dt.min(1e-2),
                &geom,
                &layout,
                &eos,
                net.species(),
                &bc,
                &ex,
                &arena,
            );
        }
        (geom, state, layout)
    }

    #[test]
    fn face_split_tiles_face_box_for_all_widths() {
        for width in 1..=6 {
            for dim in 0..3 {
                let mut hi = IntVect::splat(3);
                hi[dim] = width - 1;
                let vb = IndexBox::new(IntVect::splat(0), hi);
                let fb = face_box(vb, dim);
                let mut covered = vec![0u32; fb.num_zones() as usize];
                let mark = |covered: &mut Vec<u32>, bx: IndexBox| {
                    for (n, iv) in fb.iter().enumerate() {
                        if bx.contains(iv) {
                            covered[n] += 1;
                        }
                    }
                };
                if let Some(ib) = interior_faces(vb, dim) {
                    mark(&mut covered, ib);
                }
                for bb in band_faces(vb, dim) {
                    mark(&mut covered, bb);
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "width {width} dim {dim}: interior+band must tile faces exactly once: {covered:?}"
                );
            }
        }
    }

    #[test]
    fn ghost_slabs_are_outside_and_two_deep() {
        let vb = IndexBox::new(IntVect::splat(0), IntVect::new(7, 3, 3));
        let [lo, hi] = ghost_slabs(vb, 0);
        assert_eq!(lo.lo().x(), -2);
        assert_eq!(lo.hi().x(), -1);
        assert_eq!(hi.lo().x(), 8);
        assert_eq!(hi.hi().x(), 9);
        // Transverse extent stays the valid extent (no corner ghosts).
        assert_eq!(lo.lo().y(), 0);
        assert_eq!(lo.hi().y(), 3);
    }

    #[test]
    fn sod_tube_structure_is_correct() {
        // After some evolution: shock moving right, contact behind it,
        // rarefaction on the left; density stays within [0.125, 1.0] up to
        // small overshoots; total mass in the tube is conserved until waves
        // reach the boundary.
        let (geom, state, layout) = run_sod(KernelStructure::Flat, 40, 0);
        let _ = layout;
        let rho_min = state.min(StateLayout::RHO);
        let rho_max = state.max(StateLayout::RHO);
        assert!(rho_min > 0.1, "min rho {rho_min}");
        assert!(rho_max < 1.05, "max rho {rho_max}");
        // Momentum generated is positive (flow toward low pressure).
        assert!(state.sum(StateLayout::MX) > 0.0);
        // The density at the far right is still the ambient value (shock
        // hasn't reached the wall), left end still 1.0.
        let probe_r = IntVect::new(126, 2, 2);
        let probe_l = IntVect::new(1, 2, 2);
        assert!((state.value_at(probe_r, StateLayout::RHO) - 0.125).abs() < 1e-6);
        assert!((state.value_at(probe_l, StateLayout::RHO) - 1.0).abs() < 1e-6);
        let _ = geom;
    }

    #[test]
    fn flat_and_legacy_agree_bitwise() {
        let (_, sf, _) = run_sod(KernelStructure::Flat, 10, 0);
        let (_, sl, _) = run_sod(KernelStructure::Legacy, 10, 0);
        for i in 0..sf.nfabs() {
            let vb = sf.valid_box(i);
            for iv in vb.iter() {
                for c in 0..sf.ncomp() {
                    let a = sf.fab(i).get(iv, c);
                    let b = sl.fab(i).get(iv, c);
                    assert!(a == b, "structure mismatch at {iv:?} comp {c}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn overlapped_and_sync_paths_agree_bitwise() {
        // Many boxes, fully periodic, smooth multi-dimensional flow: the
        // task-graph schedule must reproduce the bulk-synchronous answer
        // bit for bit, fluxes and traces included.
        let run = |overlap: bool| {
            let geom = Geometry::cube(16, 1.0, true);
            let ba = BoxArray::decompose(geom.domain(), 4, 4);
            let layout = StateLayout::new(2);
            let mut state = MultiFab::local(ba, layout.ncomp(), 2);
            let eos = GammaLaw { gamma: 1.4 };
            let net = CBurn2::new();
            let comp = Composition::from_mass_fractions(net.species(), &[0.7, 0.3]);
            for i in 0..state.nfabs() {
                let vb = state.valid_box(i);
                for iv in vb.iter() {
                    let x = geom.cell_center(iv);
                    let tp = 2.0 * std::f64::consts::PI;
                    let rho = 1.0 + 0.2 * (tp * x[0]).sin() * (tp * x[1]).cos();
                    let u = 0.3 * (tp * x[2]).sin();
                    let v = 0.2 * (tp * x[0]).cos();
                    let p = 1.0 + 0.1 * (tp * x[1]).sin();
                    let e = eos.e_from_p(rho, p);
                    let t = eos.t_from_e(rho, e, &comp, 1e3);
                    let ke = 0.5 * rho * (u * u + v * v);
                    let fab = state.fab_mut(i);
                    fab.set(iv, StateLayout::RHO, rho);
                    fab.set(iv, StateLayout::MX, rho * u);
                    fab.set(iv, StateLayout::MX + 1, rho * v);
                    fab.set(iv, StateLayout::EDEN, rho * e + ke);
                    fab.set(iv, StateLayout::EINT, rho * e);
                    fab.set(iv, StateLayout::TEMP, t);
                    fab.set(iv, layout.spec(0), 0.7 * rho);
                    fab.set(iv, layout.spec(1), 0.3 * rho);
                }
            }
            let hydro = Hydro {
                cfl: 0.4,
                structure: KernelStructure::Flat,
                overlap,
                floors: Floors::dimensionless(),
            };
            let ex = ExecSpace::Serial;
            let arena = PoolArena::new(None);
            let bc = BcSpec::periodic();
            let mut trace = CommTrace::default();
            for _ in 0..3 {
                let dt = hydro.estimate_dt(&state, &layout, &eos, net.species(), &geom, &ex);
                let (_, t) = hydro.advance(
                    &mut state,
                    dt,
                    &geom,
                    &layout,
                    &eos,
                    net.species(),
                    &bc,
                    &ex,
                    &arena,
                );
                trace.merge(&t);
            }
            (state, trace)
        };
        let (so, to) = run(true);
        let (ss, ts) = run(false);
        assert!(so.nfabs() > 8, "want many boxes to stress the graph");
        for i in 0..so.nfabs() {
            let vb = so.valid_box(i);
            for iv in vb.iter() {
                for c in 0..so.ncomp() {
                    let a = so.fab(i).get(iv, c);
                    let b = ss.fab(i).get(iv, c);
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "overlap mismatch fab {i} {iv:?} comp {c}: {a} vs {b}"
                    );
                }
            }
        }
        // The comm trace is priced at plan time and must match exactly.
        assert_eq!(to.network_bytes(), ts.network_bytes());
        assert_eq!(to.local_bytes, ts.local_bytes);
        assert_eq!(to.messages.len(), ts.messages.len());
    }

    #[test]
    fn sweeps_are_direction_symmetric() {
        // The same 1-D problem run along x, y, and z gives identical
        // profiles.
        let (ga, sa, _) = run_sod(KernelStructure::Flat, 10, 0);
        let (_, sb, _) = run_sod(KernelStructure::Flat, 10, 1);
        let (_, sc, _) = run_sod(KernelStructure::Flat, 10, 2);
        for i in 0..128 {
            let a = sa.value_at(IntVect::new(i, 2, 2), StateLayout::RHO);
            let b = sb.value_at(IntVect::new(2, i, 2), StateLayout::RHO);
            let c = sc.value_at(IntVect::new(2, 2, i), StateLayout::RHO);
            assert!((a - b).abs() < 1e-12, "x vs y at {i}: {a} {b}");
            assert!((a - c).abs() < 1e-12, "x vs z at {i}: {a} {c}");
        }
        let _ = ga;
    }

    #[test]
    fn periodic_advection_conserves_everything() {
        // Uniform flow in a fully periodic box: conserved quantities must
        // not drift.
        let geom = Geometry::cube(16, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let layout = StateLayout::new(2);
        let mut state = MultiFab::local(ba, layout.ncomp(), 2);
        let eos = GammaLaw { gamma: 1.4 };
        let net = CBurn2::new();
        let comp = Composition::from_mass_fractions(net.species(), &[0.5, 0.5]);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                // Smooth density ripple advected by uniform velocity.
                let rho = 1.0 + 0.1 * (2.0 * std::f64::consts::PI * x[0]).sin();
                let u = 1.0;
                let p = 1.0;
                let e = eos.e_from_p(rho, p);
                let t = eos.t_from_e(rho, e, &comp, 1e3);
                let fab = state.fab_mut(i);
                fab.set(iv, StateLayout::RHO, rho);
                fab.set(iv, StateLayout::MX, rho * u);
                fab.set(iv, StateLayout::EDEN, rho * e + 0.5 * rho * u * u);
                fab.set(iv, StateLayout::EINT, rho * e);
                fab.set(iv, StateLayout::TEMP, t);
                fab.set(iv, layout.spec(0), 0.5 * rho);
                fab.set(iv, layout.spec(1), 0.5 * rho);
            }
        }
        let mass0 = state.sum(StateLayout::RHO);
        let mom0 = state.sum(StateLayout::MX);
        let en0 = state.sum(StateLayout::EDEN);
        let sp0 = state.sum(layout.spec(0));
        let hydro = Hydro {
            floors: Floors::dimensionless(),
            ..Default::default()
        };
        let ex = ExecSpace::Serial;
        let arena = PoolArena::new(None);
        let bc = BcSpec::periodic();
        for _ in 0..10 {
            let dt = hydro.estimate_dt(&state, &layout, &eos, net.species(), &geom, &ex);
            let _ = hydro.advance(
                &mut state,
                dt,
                &geom,
                &layout,
                &eos,
                net.species(),
                &bc,
                &ex,
                &arena,
            );
        }
        assert!((state.sum(StateLayout::RHO) / mass0 - 1.0).abs() < 1e-12);
        assert!((state.sum(StateLayout::MX) / mom0 - 1.0).abs() < 1e-12);
        assert!((state.sum(StateLayout::EDEN) / en0 - 1.0).abs() < 1e-11);
        assert!((state.sum(layout.spec(0)) / sp0 - 1.0).abs() < 1e-12);
        // Positivity throughout.
        assert!(state.min(StateLayout::RHO) > 0.5);
    }

    #[test]
    fn pool_arena_sees_hydro_scratch_churn() {
        let arena = PoolArena::new(None);
        let (geom, mut state, layout, eos) = sod_state(32, 0);
        let net = CBurn2::new();
        let hydro = Hydro {
            floors: Floors::dimensionless(),
            ..Default::default()
        };
        let ex = ExecSpace::Serial;
        let mut bc = BcSpec::outflow();
        bc.kind[1] = [BcKind::Periodic; 2];
        bc.kind[2] = [BcKind::Periodic; 2];
        for _ in 0..3 {
            let _ = hydro.advance(
                &mut state,
                1e-3,
                &geom,
                &layout,
                &eos,
                net.species(),
                &bc,
                &ex,
                &arena,
            );
        }
        let s = arena.stats();
        assert!(s.allocs >= 9, "3 steps × 3 sweeps of scratch: {}", s.allocs);
        // After warm-up, allocations are pool hits.
        assert!(
            s.pool_hits >= s.allocs - 4,
            "hits {} of {}",
            s.pool_hits,
            s.allocs
        );
    }
}
