//! # exastro-castro
//!
//! A reproduction of **Castro** (Almgren et al. 2010): compressible,
//! reactive astrophysical hydrodynamics with self-gravity on block-
//! structured AMR, restructured for massively parallel per-zone execution
//! as described in *Preparing Nuclear Astrophysics for Exascale* (§III).
//!
//! * [`state`] — conserved-state layout, primitives, EOS coupling;
//! * [`riemann`] — the HLLC approximate Riemann solver;
//! * [`hydro`] — MUSCL/PLM Godunov sweeps in both the legacy (staged
//!   slopes) and flat (fused per-zone) kernel structures;
//! * [`gravity`] — monopole and Poisson-multigrid self-gravity;
//! * [`burn`] — Strang-split nuclear burning with outlier statistics;
//! * [`driver`] — the time-advance orchestration, AMR advance, refluxing;
//! * [`restart`] — checkpoint/restart glue (bit-exact resume);
//! * [`sedov`] — the §IV-A blast-wave benchmark and its analytic solution;
//! * [`wd_collision`] — the §V white-dwarf collision science problem;
//! * [`diagnostics`] — detonation-stability (burning vs heat-transfer
//!   timescale) diagnostics.

#![warn(missing_docs)]
// Indexed loops over small fixed-extent arrays (species, dims, stencil
// points) are the house style in this numerical code; iterator rewrites
// obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod burn;
pub mod diagnostics;
pub mod diffusion;
pub mod driver;
pub mod gravity;
pub mod hydro;
pub mod restart;
pub mod riemann;
pub mod sedov;
pub mod sponge;
pub mod state;
pub mod wd_collision;

pub use burn::{burn_cost_multifab, burn_state, hybrid_offload_estimate, BurnOptions, BurnStats};
pub use diagnostics::{critical_zone_width, detonation_stability, StabilityReport};
pub use diffusion::{diffuse, diffusion_dt, Conductivity};
pub use driver::{Castro, DriverError, StateViolation, StepError, StepStats};
pub use gravity::{Gravity, GravityField, GravityMode};
pub use hydro::{Hydro, KernelStructure, SweepFluxes};
pub use restart::{restore_hierarchy, snapshot_hierarchy, snapshot_level, variable_names};
pub use riemann::{hllc, FaceFlux};
pub use sedov::{init_sedov, measure_shock_radius, sedov_shock_radius, sedov_xi0, SedovParams};
pub use sponge::Sponge;
pub use state::{cons_to_prim, Floors, Primitive, StateLayout};
pub use wd_collision::{
    contact_diagnostics, contact_time_estimate, init_collision, CollisionParams,
    ContactDiagnostics, T_IGNITION,
};
