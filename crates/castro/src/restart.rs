//! Checkpoint/restart glue for the Castro driver.
//!
//! A Castro run is fully described by its AMR hierarchy plus one conserved
//! `MultiFab` per level and the step counters — everything else (ghost
//! zones, gravity fields, primitive states) is recomputed each step. The
//! resume is therefore **bit-exact**: restore the snapshot, re-enter
//! [`crate::Castro::advance_hierarchy`], and every subsequent state equals
//! the uninterrupted run's byte for byte (the integration tests assert
//! this via CRC digests).

use crate::state::StateLayout;
use exastro_amr::{AmrLevel, DistStrategy, DistributionMapping, Geometry, Hierarchy, MultiFab};
use exastro_resilience::snapshot::{Clock, LevelSnapshot, Snapshot};

/// Component names for the checkpoint header, in [`StateLayout`] order:
/// `rho mx my mz eden eint temp x0 x1 …`.
pub fn variable_names(layout: &StateLayout) -> Vec<String> {
    let mut v = vec![
        "rho".to_string(),
        "mx".to_string(),
        "my".to_string(),
        "mz".to_string(),
        "eden".to_string(),
        "eint".to_string(),
        "temp".to_string(),
    ];
    for k in 0..layout.nspec {
        v.push(format!("x{k}"));
    }
    v
}

/// Capture a restartable snapshot of a Castro run: the hierarchy's mesh,
/// each level's conserved state, and the step counters.
pub fn snapshot_hierarchy(
    hier: &Hierarchy,
    states: &[MultiFab],
    clock: Clock,
    layout: &StateLayout,
) -> Snapshot {
    assert_eq!(states.len(), hier.nlevels());
    let levels = hier
        .levels()
        .iter()
        .zip(states)
        .map(|(lev, state)| LevelSnapshot {
            geom: lev.geom.clone(),
            state: state.clone(),
            ratio_to_coarser: lev.ratio_to_coarser,
        })
        .collect();
    Snapshot {
        levels,
        clock: Clock {
            step: clock.step,
            time: clock.time,
            dt: clock.dt,
        },
        variables: variable_names(layout),
        aux: Vec::new(),
    }
}

/// Rebuild the hierarchy and per-level states from a restored snapshot.
///
/// The mesh (geometry, boxes, refinement ratios) comes from the snapshot;
/// the distribution is rebuilt locally — the advance paths consume only
/// geometry/boxes/ratios, so ownership does not affect the answer. The
/// given distribution parameters govern *future* regrids.
pub fn restore_hierarchy(
    snap: &Snapshot,
    nranks: usize,
    strategy: DistStrategy,
    max_grid_size: i32,
) -> (Hierarchy, Vec<MultiFab>) {
    let levels: Vec<AmrLevel> = snap
        .levels
        .iter()
        .map(|l| AmrLevel {
            geom: l.geom.clone(),
            ba: l.state.box_array().clone(),
            dm: DistributionMapping::all_local(l.state.box_array()),
            ratio_to_coarser: l.ratio_to_coarser,
        })
        .collect();
    let hier = Hierarchy::from_levels(levels, nranks, strategy, max_grid_size);
    let states = snap.levels.iter().map(|l| l.state.clone()).collect();
    (hier, states)
}

/// Capture a restartable snapshot of a *single-level* Castro run — the
/// job-facing entry point the service scheduler uses for preemption
/// checkpoints, where jobs run one level on one geometry. Equivalent to
/// [`snapshot_hierarchy`] on a single-level hierarchy.
pub fn snapshot_level(
    geom: &Geometry,
    state: &MultiFab,
    clock: Clock,
    layout: &StateLayout,
) -> Snapshot {
    Snapshot::single_level(geom.clone(), state.clone(), clock, variable_names(layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::Geometry;

    #[test]
    fn variable_names_follow_layout_order() {
        let layout = StateLayout::new(3);
        let names = variable_names(&layout);
        assert_eq!(names.len(), layout.ncomp());
        assert_eq!(names[StateLayout::RHO], "rho");
        assert_eq!(names[StateLayout::TEMP], "temp");
        assert_eq!(names[layout.spec(0)], "x0");
        assert_eq!(names[layout.spec(2)], "x2");
    }

    #[test]
    fn snapshot_restore_preserves_mesh_and_state() {
        use exastro_amr::{BoxArray, IntVect};
        let geom = Geometry::cube(16, 1.0, false);
        let mut hier = Hierarchy::single_level(geom, 8, 4, 1, DistStrategy::RoundRobin);
        let tags: Vec<IntVect> = exastro_amr::IndexBox::new(IntVect::splat(4), IntVect::splat(11))
            .iter()
            .collect();
        hier.regrid(0, &tags, 2, &exastro_amr::ClusterParams::default());
        assert_eq!(hier.nlevels(), 2);
        let layout = StateLayout::new(1);
        let mut states: Vec<MultiFab> = (0..2)
            .map(|l| hier.make_multifab(l, layout.ncomp(), 2))
            .collect();
        for (l, s) in states.iter_mut().enumerate() {
            for i in 0..s.nfabs() {
                let vb = s.valid_box(i);
                for iv in vb.iter() {
                    for c in 0..s.ncomp() {
                        s.fab_mut(i).set(
                            iv,
                            c,
                            (l as f64 + 1.0) * (iv.x() + 2 * iv.y()) as f64 + c as f64,
                        );
                    }
                }
            }
        }
        let clock = Clock {
            step: 12,
            time: 0.75,
            dt: 1.0 / 64.0,
        };
        let snap = snapshot_hierarchy(&hier, &states, clock, &layout);
        let (hier2, states2) = restore_hierarchy(&snap, 1, DistStrategy::RoundRobin, 8);
        assert_eq!(hier2.nlevels(), 2);
        for l in 0..2 {
            assert_eq!(hier2.level(l).geom.domain(), hier.level(l).geom.domain());
            assert_eq!(
                hier2.level(l).ratio_to_coarser,
                hier.level(l).ratio_to_coarser
            );
            let (a, b) = (&states[l], &states2[l]);
            assert_eq!(
                b.box_array().iter().collect::<Vec<_>>(),
                a.box_array().iter().collect::<Vec<_>>()
            );
            let _ = BoxArray::from_boxes(b.box_array().iter().copied().collect());
            for i in 0..a.nfabs() {
                for iv in a.valid_box(i).iter() {
                    for c in 0..a.ncomp() {
                        assert_eq!(a.fab(i).get(iv, c), b.fab(i).get(iv, c));
                    }
                }
            }
        }
    }
}
