//! The HLLC approximate Riemann solver.
//!
//! Castro's hydrodynamics computes a Godunov flux at every zone face from
//! left/right reconstructed states. HLLC (Harten–Lax–van Leer–Contact)
//! restores the contact wave that plain HLL smears, which matters for the
//! species and temperature fields the burning depends on. Only the sound
//! speeds enter from the EOS, so the solver works for the stellar EOS as
//! well as the gamma law.

use crate::state::Primitive;
use exastro_parallel::Real;

/// Godunov flux of the conserved variables through one face, plus the
/// upwind data needed to advect species.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaceFlux {
    /// Mass flux ρu_n.
    pub mass: Real,
    /// Momentum flux in the face-normal and two transverse directions
    /// (normal first; caller rotates back).
    pub mom: [Real; 3],
    /// Total-energy flux.
    pub energy: Real,
    /// Internal-energy advective flux (for the auxiliary ρe equation).
    pub eint: Real,
    /// True if the upwind side for passively advected scalars is the left.
    pub upwind_left: bool,
}

/// Conserved state in face-normal coordinates.
#[derive(Clone, Copy)]
struct UCons {
    rho: Real,
    mu: Real,
    mv: Real,
    mw: Real,
    e: Real,  // ρE
    ei: Real, // ρe (advected)
}

fn to_cons(q: &Primitive) -> UCons {
    UCons {
        rho: q.rho,
        mu: q.rho * q.vel[0],
        mv: q.rho * q.vel[1],
        mw: q.rho * q.vel[2],
        e: q.rho * q.etot(),
        ei: q.rho * q.e,
    }
}

fn phys_flux(q: &Primitive, u: &UCons) -> FaceFlux {
    let un = q.vel[0];
    FaceFlux {
        mass: u.mu,
        mom: [u.mu * un + q.p, u.mv * un, u.mw * un],
        energy: (u.e + q.p) * un,
        eint: u.ei * un,
        upwind_left: un >= 0.0,
    }
}

/// HLLC flux for left/right primitive states given in *face-normal*
/// coordinates (`vel[0]` is the normal velocity).
pub fn hllc(ql: &Primitive, qr: &Primitive) -> FaceFlux {
    let ul = to_cons(ql);
    let ur = to_cons(qr);
    // Einfeldt-style wave speed estimates.
    let sl = (ql.vel[0] - ql.cs).min(qr.vel[0] - qr.cs);
    let sr = (ql.vel[0] + ql.cs).max(qr.vel[0] + qr.cs);
    if sl >= 0.0 {
        return phys_flux(ql, &ul);
    }
    if sr <= 0.0 {
        return phys_flux(qr, &ur);
    }
    // Contact speed.
    let num = qr.p - ql.p + ul.mu * (sl - ql.vel[0]) - ur.mu * (sr - qr.vel[0]);
    let den = ql.rho * (sl - ql.vel[0]) - qr.rho * (sr - qr.vel[0]);
    let sstar = if den.abs() < 1e-300 { 0.0 } else { num / den };

    // Star-region state on the chosen side (Toro's formulas).
    let star = |q: &Primitive, u: &UCons, s: Real| -> (UCons, FaceFlux) {
        let f = phys_flux(q, u);
        let coef = q.rho * (s - q.vel[0]) / (s - sstar);
        let e_star =
            coef * (u.e / q.rho + (sstar - q.vel[0]) * (sstar + q.p / (q.rho * (s - q.vel[0]))));
        let ustar = UCons {
            rho: coef,
            mu: coef * sstar,
            mv: coef * q.vel[1],
            mw: coef * q.vel[2],
            e: e_star,
            ei: coef * q.e,
        };
        (ustar, f)
    };
    if sstar >= 0.0 {
        let (us, f) = star(ql, &ul, sl);
        FaceFlux {
            mass: f.mass + sl * (us.rho - ul.rho),
            mom: [
                f.mom[0] + sl * (us.mu - ul.mu),
                f.mom[1] + sl * (us.mv - ul.mv),
                f.mom[2] + sl * (us.mw - ul.mw),
            ],
            energy: f.energy + sl * (us.e - ul.e),
            eint: f.eint + sl * (us.ei - ul.ei),
            upwind_left: true,
        }
    } else {
        let (us, f) = star(qr, &ur, sr);
        FaceFlux {
            mass: f.mass + sr * (us.rho - ur.rho),
            mom: [
                f.mom[0] + sr * (us.mu - ur.mu),
                f.mom[1] + sr * (us.mv - ur.mv),
                f.mom[2] + sr * (us.mw - ur.mw),
            ],
            energy: f.energy + sr * (us.e - ur.e),
            eint: f.eint + sr * (us.ei - ur.ei),
            upwind_left: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(rho: Real, u: Real, p: Real, gamma: Real) -> Primitive {
        Primitive {
            rho,
            vel: [u, 0.0, 0.0],
            p,
            e: p / ((gamma - 1.0) * rho),
            cs: (gamma * p / rho).sqrt(),
        }
    }

    #[test]
    fn uniform_state_gives_advective_flux() {
        let q = prim(1.0, 2.0, 1.0, 1.4);
        let f = hllc(&q, &q);
        assert!((f.mass - 2.0).abs() < 1e-12);
        assert!((f.mom[0] - (1.0 * 4.0 + 1.0)).abs() < 1e-12);
        // (ρE + p) u with ρE = ρ(e + KE) = 2.5 + 2 = 4.5, p = 1, u = 2.
        assert!((f.energy - (4.5 + 1.0) * 2.0).abs() < 1e-10);
        assert!(f.upwind_left);
    }

    #[test]
    fn static_contact_is_preserved_exactly() {
        // ρ jump, equal p and u = 0: HLLC must give zero flux (HLL would
        // diffuse it).
        let ql = prim(1.0, 0.0, 1.0, 1.4);
        let qr = prim(0.125, 0.0, 1.0, 1.4);
        let f = hllc(&ql, &qr);
        assert!(f.mass.abs() < 1e-14);
        assert!((f.mom[0] - 1.0).abs() < 1e-12, "pressure flux only");
        assert!(f.energy.abs() < 1e-12);
    }

    #[test]
    fn supersonic_flow_takes_upwind_flux() {
        let ql = prim(1.0, 10.0, 1.0, 1.4); // cs ≈ 1.18, u = 10: supersonic →
        let qr = prim(0.5, 10.0, 0.5, 1.4);
        let f = hllc(&ql, &qr);
        let fl = {
            let u = 10.0;
            u * 1.0 // ρu of left
        };
        assert!((f.mass - fl).abs() < 1e-12, "must equal left physical flux");
        // Reversed.
        let ql2 = prim(1.0, -10.0, 1.0, 1.4);
        let qr2 = prim(0.5, -10.0, 0.5, 1.4);
        let f2 = hllc(&ql2, &qr2);
        assert!((f2.mass - (-10.0 * 0.5)).abs() < 1e-12);
        assert!(!f2.upwind_left);
    }

    #[test]
    fn sod_flux_is_between_states_and_rightward() {
        // Sod shock tube initial jump: flow develops rightward.
        let ql = prim(1.0, 0.0, 1.0, 1.4);
        let qr = prim(0.125, 0.0, 0.1, 1.4);
        let f = hllc(&ql, &qr);
        assert!(f.mass > 0.0, "mass flows to the right");
        assert!(f.mom[0] > 0.0);
        assert!(f.energy > 0.0);
    }

    #[test]
    fn symmetry_of_mirrored_problem() {
        let ql = prim(1.0, 0.3, 1.0, 1.4);
        let qr = prim(0.5, -0.2, 0.4, 1.4);
        let f = hllc(&ql, &qr);
        // Mirror: swap sides and flip normal velocities.
        let mut mql = qr;
        mql.vel[0] = -mql.vel[0];
        let mut mqr = ql;
        mqr.vel[0] = -mqr.vel[0];
        let g = hllc(&mql, &mqr);
        assert!((f.mass + g.mass).abs() < 1e-12);
        assert!((f.mom[0] - g.mom[0]).abs() < 1e-12);
        assert!((f.energy + g.energy).abs() < 1e-12);
    }

    #[test]
    fn transverse_momentum_advects_with_contact() {
        // Left has transverse velocity, right does not; contact moves right
        // (S* > 0) so the face flux carries the left transverse momentum.
        let mut ql = prim(1.0, 0.5, 1.0, 1.4);
        ql.vel[1] = 3.0;
        let qr = prim(1.0, 0.5, 1.0, 1.4);
        let f = hllc(&ql, &qr);
        assert!((f.mom[1] - 0.5 * 3.0).abs() < 1e-10);
        assert!((f.mom[2]).abs() < 1e-14);
    }
}
