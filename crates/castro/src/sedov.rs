//! The Sedov–Taylor blast wave (§IV-A): problem setup and the analytic
//! similarity solution used for verification.

use crate::state::StateLayout;
use exastro_amr::{Geometry, MultiFab, Real};
use exastro_microphysics::{Composition, Eos, GammaLaw};

/// Sedov problem parameters.
#[derive(Clone, Debug)]
pub struct SedovParams {
    /// Ambient density.
    pub rho0: Real,
    /// Ambient pressure (small).
    pub p0: Real,
    /// Blast energy deposited at the centre.
    pub energy: Real,
    /// Radius (in zone widths) of the energy deposition region.
    pub deposit_zones: Real,
    /// Ratio of specific heats.
    pub gamma: Real,
}

impl Default for SedovParams {
    fn default() -> Self {
        SedovParams {
            rho0: 1.0,
            p0: 1e-5,
            energy: 1.0,
            deposit_zones: 2.5,
            gamma: 5.0 / 3.0,
        }
    }
}

/// Initialize `state` (layout with ≥1 species) with the Sedov setup: cold
/// uniform gas plus a central thermal energy deposit.
pub fn init_sedov(
    state: &mut MultiFab,
    geom: &Geometry,
    layout: &StateLayout,
    eos: &GammaLaw,
    params: &SedovParams,
) {
    let c = [
        0.5 * (geom.prob_lo()[0] + geom.prob_hi()[0]),
        0.5 * (geom.prob_lo()[1] + geom.prob_hi()[1]),
        0.5 * (geom.prob_lo()[2] + geom.prob_hi()[2]),
    ];
    let dx = geom.dx()[0];
    let r_dep = params.deposit_zones * dx;
    // Count deposit zones first so the energy dose is exact.
    let mut n_dep = 0usize;
    for (i, vb) in state.iter_boxes() {
        let _ = i;
        for iv in vb.iter() {
            let x = geom.cell_center(iv);
            let r2 = (x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2) + (x[2] - c[2]).powi(2);
            if r2 < r_dep * r_dep {
                n_dep += 1;
            }
        }
    }
    let vol = geom.cell_volume();
    let e_zone = params.energy / (n_dep.max(1) as Real * vol); // energy density
    let comp = Composition {
        abar: 1.0,
        zbar: 1.0,
    };
    let e0 = eos.e_from_p(params.rho0, params.p0);
    let t_amb = {
        // Invert for a consistent ambient temperature.
        eos.t_from_e(params.rho0, e0, &comp, 1e3)
    };
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let x = geom.cell_center(iv);
            let r2 = (x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2) + (x[2] - c[2]).powi(2);
            let hot = r2 < r_dep * r_dep;
            let rho = params.rho0;
            let rho_e = if hot { e_zone } else { rho * e0 };
            let fab = state.fab_mut(i);
            fab.set(iv, StateLayout::RHO, rho);
            fab.set(iv, StateLayout::MX, 0.0);
            fab.set(iv, StateLayout::MY, 0.0);
            fab.set(iv, StateLayout::MZ, 0.0);
            fab.set(iv, StateLayout::EDEN, rho_e);
            fab.set(iv, StateLayout::EINT, rho_e);
            fab.set(
                iv,
                StateLayout::TEMP,
                if hot {
                    eos.t_from_e(rho, rho_e / rho, &comp, 1e6)
                } else {
                    t_amb
                },
            );
            fab.set(iv, layout.spec(0), rho);
            for s in 1..layout.nspec {
                fab.set(iv, layout.spec(s), 0.0);
            }
        }
    }
}

/// Dimensionless similarity constant ξ₀ such that the shock radius is
/// `R(t) = ξ₀ (E t² / ρ₀)^{1/5}`. Values from the standard Sedov energy
/// integrals (e.g. ξ₀ = 1.1527 for γ = 5/3, 1.033 for γ = 1.4).
pub fn sedov_xi0(gamma: Real) -> Real {
    // Table interpolation over the common range.
    let table = [(1.2, 0.984), (1.4, 1.033), (5.0 / 3.0, 1.1527), (2.0, 1.26)];
    for w in table.windows(2) {
        let (g0, x0) = w[0];
        let (g1, x1) = w[1];
        if gamma >= g0 && gamma <= g1 {
            let f = (gamma - g0) / (g1 - g0);
            return x0 + f * (x1 - x0);
        }
    }
    1.15
}

/// Analytic shock radius at time `t`.
pub fn sedov_shock_radius(params: &SedovParams, t: Real) -> Real {
    sedov_xi0(params.gamma) * (params.energy * t * t / params.rho0).powf(0.2)
}

/// Measure the blast radius from the state: the density-weighted mean
/// radius of zones within the dense shell (ρ > 1.1 ρ₀).
pub fn measure_shock_radius(state: &MultiFab, geom: &Geometry, params: &SedovParams) -> Real {
    let c = [
        0.5 * (geom.prob_lo()[0] + geom.prob_hi()[0]),
        0.5 * (geom.prob_lo()[1] + geom.prob_hi()[1]),
        0.5 * (geom.prob_lo()[2] + geom.prob_hi()[2]),
    ];
    let mut wsum = 0.0;
    let mut rsum = 0.0;
    for (i, vb) in state.iter_boxes() {
        for iv in vb.iter() {
            let rho = state.fab(i).get(iv, StateLayout::RHO);
            if rho > 1.1 * params.rho0 {
                let x = geom.cell_center(iv);
                let r =
                    ((x[0] - c[0]).powi(2) + (x[1] - c[1]).powi(2) + (x[2] - c[2]).powi(2)).sqrt();
                let w = rho - params.rho0;
                wsum += w;
                rsum += w * r;
            }
        }
    }
    if wsum > 0.0 {
        rsum / wsum
    } else {
        0.0
    }
}
