//! The sponge: velocity damping in low-density outer regions.
//!
//! Castro's production setups (including the white-dwarf problems) damp
//! velocities in the ambient "vacuum" surrounding the stars to keep
//! boundary artifacts and spurious ambient flows from polluting the
//! interior — essential when the star occupies 0.5% of the domain volume
//! (§V).

use crate::state::StateLayout;
use exastro_amr::{MultiFab, Real};
use exastro_parallel::ExecSpace;

/// Sponge parameters: full damping below `rho_lo`, none above `rho_hi`,
/// smooth ramp between.
#[derive(Clone, Copy, Debug)]
pub struct Sponge {
    /// Density below which damping is full strength.
    pub rho_lo: Real,
    /// Density above which there is no damping.
    pub rho_hi: Real,
    /// Damping timescale, s (velocities decay as `exp(−dt/τ)` at full
    /// strength).
    pub timescale: Real,
}

impl Sponge {
    /// Damping fraction in [0, 1] for density `rho`.
    pub fn strength(&self, rho: Real) -> Real {
        if rho <= self.rho_lo {
            1.0
        } else if rho >= self.rho_hi {
            0.0
        } else {
            // Smooth cosine ramp.
            let f = (rho - self.rho_lo) / (self.rho_hi - self.rho_lo);
            0.5 * (1.0 + (std::f64::consts::PI * f).cos())
        }
    }

    /// Apply the sponge over `dt`: momenta decay toward zero; the kinetic
    /// energy removed is deducted from the total energy (the sponge is a
    /// drag, not a heater).
    pub fn apply(&self, state: &mut MultiFab, dt: Real, ex: &ExecSpace) {
        let decay_full = (-dt / self.timescale).exp();
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            let fab = state.fab_mut(i);
            let uarr = fab.array_mut();
            let sponge = *self;
            ex.par_for(vb, |ii, jj, kk| {
                let rho = uarr.at(ii, jj, kk, StateLayout::RHO);
                let s = sponge.strength(rho);
                if s == 0.0 {
                    return;
                }
                let factor = 1.0 + s * (decay_full - 1.0);
                let mut ke_before = 0.0;
                let mut ke_after = 0.0;
                for d in 0..3 {
                    let m = uarr.at(ii, jj, kk, StateLayout::MX + d);
                    ke_before += 0.5 * m * m / rho.max(1e-300);
                    let mn = m * factor;
                    uarr.set(ii, jj, kk, StateLayout::MX + d, mn);
                    ke_after += 0.5 * mn * mn / rho.max(1e-300);
                }
                uarr.add(ii, jj, kk, StateLayout::EDEN, ke_after - ke_before);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{BoxArray, Geometry, IntVect};

    fn state_with_velocities() -> (Geometry, MultiFab) {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let layout = StateLayout::new(1);
        let mut state = MultiFab::local(ba, layout.ncomp(), 0);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let dense = iv.x() < 4;
                let rho = if dense { 1e7 } else { 1e-3 };
                state.fab_mut(i).set(iv, StateLayout::RHO, rho);
                state.fab_mut(i).set(iv, StateLayout::MX, rho * 1e8);
                state
                    .fab_mut(i)
                    .set(iv, StateLayout::EDEN, rho * 1e17 + 0.5 * rho * 1e16);
            }
        }
        (geom, state)
    }

    #[test]
    fn sponge_damps_only_low_density_gas() {
        let (_geom, mut state) = state_with_velocities();
        let sponge = Sponge {
            rho_lo: 1.0,
            rho_hi: 1e3,
            timescale: 0.01,
        };
        let probe_dense = IntVect::new(1, 2, 2);
        let probe_thin = IntVect::new(6, 2, 2);
        let m_dense0 = state.value_at(probe_dense, StateLayout::MX);
        let m_thin0 = state.value_at(probe_thin, StateLayout::MX);
        sponge.apply(&mut state, 0.05, &ExecSpace::Serial);
        assert_eq!(state.value_at(probe_dense, StateLayout::MX), m_dense0);
        let m_thin1 = state.value_at(probe_thin, StateLayout::MX);
        assert!(
            m_thin1.abs() < 0.01 * m_thin0.abs(),
            "ambient momentum must decay: {m_thin0} -> {m_thin1}"
        );
    }

    #[test]
    fn sponge_removes_kinetic_energy_not_internal() {
        let (_geom, mut state) = state_with_velocities();
        let sponge = Sponge {
            rho_lo: 1.0,
            rho_hi: 1e3,
            timescale: 1e-3,
        };
        let probe = IntVect::new(6, 2, 2);
        let rho = state.value_at(probe, StateLayout::RHO);
        let m0 = state.value_at(probe, StateLayout::MX);
        let e0 = state.value_at(probe, StateLayout::EDEN);
        let eint_implied0 = e0 - 0.5 * m0 * m0 / rho;
        sponge.apply(&mut state, 1.0, &ExecSpace::Serial);
        let m1 = state.value_at(probe, StateLayout::MX);
        let e1 = state.value_at(probe, StateLayout::EDEN);
        let eint_implied1 = e1 - 0.5 * m1 * m1 / rho;
        assert!((eint_implied1 / eint_implied0 - 1.0).abs() < 1e-10);
        assert!(e1 < e0, "total energy drops with the drained KE");
    }

    #[test]
    fn strength_ramp_is_monotone_and_bounded() {
        let sponge = Sponge {
            rho_lo: 1.0,
            rho_hi: 100.0,
            timescale: 1.0,
        };
        let mut last = 1.0 + 1e-12;
        for k in 0..50 {
            let rho = 0.5 * 1.2f64.powi(k);
            let s = sponge.strength(rho);
            assert!((0.0..=1.0).contains(&s));
            assert!(s <= last + 1e-12, "not monotone at rho {rho}");
            last = s;
        }
        assert_eq!(sponge.strength(0.5), 1.0);
        assert_eq!(sponge.strength(1e4), 0.0);
    }
}
