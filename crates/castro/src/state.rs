//! Conserved-state layout and conversions for the compressible solver.
//!
//! The Castro state vector per zone is `(ρ, ρu, ρv, ρw, ρE, ρe, T, ρX_k)`:
//! density, momentum, total energy, internal energy (carried for
//! diagnostics/EOS calls), temperature, and partial densities for each
//! network species.

use exastro_microphysics::{Composition, Eos};
use exastro_parallel::Real;

/// Component indices of the conserved state.
#[derive(Clone, Copy, Debug)]
pub struct StateLayout {
    /// Number of species advected.
    pub nspec: usize,
}

impl StateLayout {
    /// Density ρ.
    pub const RHO: usize = 0;
    /// x-momentum ρu.
    pub const MX: usize = 1;
    /// y-momentum ρv.
    pub const MY: usize = 2;
    /// z-momentum ρw.
    pub const MZ: usize = 3;
    /// Total energy density ρE.
    pub const EDEN: usize = 4;
    /// Internal energy density ρe.
    pub const EINT: usize = 5;
    /// Temperature.
    pub const TEMP: usize = 6;
    /// First species partial density ρX₀.
    pub const FS: usize = 7;

    /// Create a layout for `nspec` species.
    pub fn new(nspec: usize) -> Self {
        StateLayout { nspec }
    }

    /// Total number of components.
    pub fn ncomp(&self) -> usize {
        Self::FS + self.nspec
    }

    /// Component index of species `k`.
    pub fn spec(&self, k: usize) -> usize {
        debug_assert!(k < self.nspec);
        Self::FS + k
    }

    /// Momentum component for direction `d`.
    pub fn mom(&self, d: usize) -> usize {
        Self::MX + d
    }
}

/// Primitive variables at a zone, used by the reconstruction and Riemann
/// solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct Primitive {
    /// Density.
    pub rho: Real,
    /// Velocity components.
    pub vel: [Real; 3],
    /// Pressure.
    pub p: Real,
    /// Specific internal energy.
    pub e: Real,
    /// Sound speed.
    pub cs: Real,
}

impl Primitive {
    /// Total specific energy.
    pub fn etot(&self) -> Real {
        self.e
            + 0.5
                * (self.vel[0] * self.vel[0]
                    + self.vel[1] * self.vel[1]
                    + self.vel[2] * self.vel[2])
    }
}

/// Floors applied to keep the state physical through strong rarefactions.
#[derive(Clone, Copy, Debug)]
pub struct Floors {
    /// Minimum density.
    pub small_dens: Real,
    /// Minimum temperature.
    pub small_temp: Real,
    /// Minimum pressure.
    pub small_pres: Real,
}

impl Default for Floors {
    fn default() -> Self {
        Floors {
            small_dens: 1e-12,
            small_temp: 1e-2,
            small_pres: 1e-20,
        }
    }
}

impl Floors {
    /// Floors for non-dimensionalized test problems (Sod, Sedov with
    /// order-unity densities and pressures), where the gamma-law
    /// "temperature" is a tiny bookkeeping quantity.
    pub fn dimensionless() -> Self {
        Floors {
            small_dens: 1e-12,
            small_temp: 1e-30,
            small_pres: 1e-30,
        }
    }
}

/// Convert one zone of conserved data to primitives using the EOS.
///
/// `u` must contain `layout.ncomp()` values. The temperature entry is used
/// as the EOS Newton initial guess.
pub fn cons_to_prim(
    u: &[Real],
    layout: &StateLayout,
    eos: &dyn Eos,
    species: &[exastro_microphysics::Species],
    floors: &Floors,
) -> Primitive {
    let rho = u[StateLayout::RHO].max(floors.small_dens);
    let inv = 1.0 / rho;
    let vel = [
        u[StateLayout::MX] * inv,
        u[StateLayout::MY] * inv,
        u[StateLayout::MZ] * inv,
    ];
    let ke = 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
    let mut e = u[StateLayout::EDEN] * inv - ke;
    if e <= 0.0 {
        // Fall back to the advected internal energy (dual-energy guard).
        e = (u[StateLayout::EINT] * inv).max(1e-30);
    }
    let mut x = [0.0; 32];
    let n = layout.nspec.min(32);
    for k in 0..n {
        x[k] = (u[layout.spec(k)] * inv).clamp(0.0, 1.0);
    }
    let comp = Composition::from_mass_fractions(species, &x[..n]);
    let t_guess = u[StateLayout::TEMP].max(floors.small_temp);
    let t = eos.t_from_e(rho, e, &comp, t_guess).max(floors.small_temp);
    let r = eos.eval_rt(rho, t, &comp);
    Primitive {
        rho,
        vel,
        p: r.p.max(floors.small_pres),
        e,
        cs: r.cs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_microphysics::network::Network;
    use exastro_microphysics::{CBurn2, GammaLaw};

    #[test]
    fn layout_indices() {
        let l = StateLayout::new(2);
        assert_eq!(l.ncomp(), 9);
        assert_eq!(l.spec(0), 7);
        assert_eq!(l.spec(1), 8);
        assert_eq!(l.mom(2), StateLayout::MZ);
    }

    #[test]
    fn cons_prim_roundtrip_gamma_law() {
        let net = CBurn2::new();
        let layout = StateLayout::new(2);
        let eos = GammaLaw::monatomic();
        let floors = Floors::default();
        // Build conserved state from known primitives.
        let rho = 2.0;
        let vel = [1.0e5, -3.0e4, 2.0e4];
        let t = 1.5e6;
        let x = [0.75, 0.25];
        let comp = Composition::from_mass_fractions(net.species(), &x);
        let r = eos.eval_rt(rho, t, &comp);
        let ke = 0.5 * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
        let mut u = vec![0.0; layout.ncomp()];
        u[StateLayout::RHO] = rho;
        u[StateLayout::MX] = rho * vel[0];
        u[StateLayout::MY] = rho * vel[1];
        u[StateLayout::MZ] = rho * vel[2];
        u[StateLayout::EDEN] = rho * (r.e + ke);
        u[StateLayout::EINT] = rho * r.e;
        u[StateLayout::TEMP] = 1e6; // imperfect guess
        u[layout.spec(0)] = rho * x[0];
        u[layout.spec(1)] = rho * x[1];
        let q = cons_to_prim(&u, &layout, &eos, net.species(), &floors);
        assert!((q.rho - rho).abs() < 1e-12);
        assert!((q.vel[0] - vel[0]).abs() < 1e-7);
        assert!((q.p / r.p - 1.0).abs() < 1e-8, "p {} vs {}", q.p, r.p);
        assert!((q.cs / r.cs - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_kinetic_energy_residual_falls_back_to_eint() {
        let net = CBurn2::new();
        let layout = StateLayout::new(2);
        let eos = GammaLaw::monatomic();
        let floors = Floors::default();
        let mut u = vec![0.0; layout.ncomp()];
        u[StateLayout::RHO] = 1.0;
        u[StateLayout::MX] = 10.0; // KE = 50
        u[StateLayout::EDEN] = 40.0; // less than KE → ρE − KE < 0
        u[StateLayout::EINT] = 5.0;
        u[StateLayout::TEMP] = 1e4;
        u[layout.spec(0)] = 1.0;
        let q = cons_to_prim(&u, &layout, &eos, net.species(), &floors);
        assert!((q.e - 5.0).abs() < 1e-12);
        assert!(q.p > 0.0 && q.cs > 0.0);
    }
}
