//! The head-on white-dwarf collision problem (§V).
//!
//! Two equal carbon/oxygen white dwarfs start two diameters apart moving
//! toward each other; the collision converts kinetic energy to heat at the
//! contact interface, triggering runaway carbon fusion. The science
//! question is *when* ignition (T ≥ 4×10⁹ K) occurs — later ignition means
//! more material fuses to iron-group elements and a plausible Type Ia
//! supernova, prompt ignition means it cannot explain the observed events.
//!
//! The paper's stars are realistic degenerate models on 512³+ grids; here
//! the stars use a parabolic density profile (a smooth, finite-mass stand-in
//! documented in DESIGN.md) and laptop-scale grids, preserving the
//! qualitative behaviour: contact heating, density pile-up, earlier
//! ignition with finer resolution of the contact point.

use crate::state::StateLayout;
use exastro_amr::{Geometry, IntVect, MultiFab, Real};
use exastro_microphysics::{Composition, Eos, Network};

/// Collision setup parameters.
#[derive(Clone, Debug)]
pub struct CollisionParams {
    /// Stellar radius, cm (the paper's WDs are ~10⁹ cm ≈ Earth-sized).
    pub radius: Real,
    /// Central density, g/cc.
    pub rho_c: Real,
    /// Initial stellar temperature, K.
    pub t_wd: Real,
    /// Approach speed of each star, cm/s.
    pub v_approach: Real,
    /// Ambient (vacuum) density.
    pub rho_ambient: Real,
    /// Initial separation of centres in units of the radius (paper: two
    /// diameters = 4 radii).
    pub separation: Real,
    /// Carbon mass fraction (the rest is oxygen for a 2-species network, or
    /// split C/O for aprox13).
    pub x_c12: Real,
}

impl Default for CollisionParams {
    fn default() -> Self {
        CollisionParams {
            radius: 1e9,
            rho_c: 2e7,
            t_wd: 1e7,
            v_approach: 2e8,
            rho_ambient: 1e-3,
            separation: 4.0,
            x_c12: 0.5,
        }
    }
}

/// Initialize the two-star collision state. The stars sit on the x axis,
/// symmetric about the domain centre. Species index conventions: the
/// network's `c12` gets `x_c12`, its `o16` (if present) the remainder,
/// otherwise the second species gets it.
pub fn init_collision(
    state: &mut MultiFab,
    geom: &Geometry,
    layout: &StateLayout,
    eos: &dyn Eos,
    net: &dyn Network,
    params: &CollisionParams,
) {
    let c = [
        0.5 * (geom.prob_lo()[0] + geom.prob_hi()[0]),
        0.5 * (geom.prob_lo()[1] + geom.prob_hi()[1]),
        0.5 * (geom.prob_lo()[2] + geom.prob_hi()[2]),
    ];
    let half_sep = 0.5 * params.separation * params.radius;
    let centers = [[c[0] - half_sep, c[1], c[2]], [c[0] + half_sep, c[1], c[2]]];
    let vels = [params.v_approach, -params.v_approach];

    // Composition slots.
    let ic12 = net
        .species()
        .iter()
        .position(|s| s.name == "c12")
        .expect("collision needs carbon in the network");
    let io16 = net.species().iter().position(|s| s.name == "o16");
    let mut x = vec![0.0; layout.nspec];
    x[ic12] = params.x_c12;
    match io16 {
        Some(o) => x[o] = 1.0 - params.x_c12,
        None => {
            // Put the remainder in the first non-carbon slot.
            let other = (0..layout.nspec).find(|&s| s != ic12).unwrap_or(ic12);
            x[other] += 1.0 - params.x_c12;
        }
    }
    let comp = Composition::from_mass_fractions(net.species(), &x);

    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let pos = geom.cell_center(iv);
            // Parabolic profile: ρ = ρ_c (1 − (r/R)²), floored to ambient.
            let mut rho = params.rho_ambient;
            let mut vx = 0.0;
            for (s, ctr) in centers.iter().enumerate() {
                let r2 = (pos[0] - ctr[0]).powi(2)
                    + (pos[1] - ctr[1]).powi(2)
                    + (pos[2] - ctr[2]).powi(2);
                let q = 1.0 - r2 / (params.radius * params.radius);
                if q > 0.0 {
                    let rs = params.rho_c * q;
                    if rs > rho {
                        rho = rs;
                        vx = vels[s];
                    }
                }
            }
            let r = eos.eval_rt(rho, params.t_wd, &comp);
            let ke = 0.5 * rho * vx * vx;
            let fab = state.fab_mut(i);
            fab.set(iv, StateLayout::RHO, rho);
            fab.set(iv, StateLayout::MX, rho * vx);
            fab.set(iv, StateLayout::MY, 0.0);
            fab.set(iv, StateLayout::MZ, 0.0);
            fab.set(iv, StateLayout::EDEN, rho * r.e + ke);
            fab.set(iv, StateLayout::EINT, rho * r.e);
            fab.set(iv, StateLayout::TEMP, params.t_wd);
            for s in 0..layout.nspec {
                fab.set(iv, layout.spec(s), rho * x[s]);
            }
        }
    }
}

/// Contact-interface diagnostics at one instant.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContactDiagnostics {
    /// Maximum temperature anywhere.
    pub max_temp: Real,
    /// Maximum density anywhere.
    pub max_dens: Real,
    /// Location of the hottest zone.
    pub hottest: [Real; 3],
    /// Has the ignition threshold been crossed?
    pub ignited: bool,
}

/// Ignition threshold used throughout the paper's §V runs.
pub const T_IGNITION: Real = 4e9;

/// Scan the state for the collision diagnostics.
pub fn contact_diagnostics(state: &MultiFab, geom: &Geometry) -> ContactDiagnostics {
    let mut d = ContactDiagnostics::default();
    let mut hottest_iv = IntVect::zero();
    for (i, vb) in state.iter_boxes() {
        for iv in vb.iter() {
            let t = state.fab(i).get(iv, StateLayout::TEMP);
            let rho = state.fab(i).get(iv, StateLayout::RHO);
            if t > d.max_temp {
                d.max_temp = t;
                hottest_iv = iv;
            }
            d.max_dens = d.max_dens.max(rho);
        }
    }
    d.hottest = geom.cell_center(hottest_iv);
    d.ignited = d.max_temp >= T_IGNITION;
    d
}

/// Free-fall/approach time estimate: with constant approach speed the
/// surfaces touch after `(separation − 2) R / (2 v)`; gravity only shortens
/// this. Used for sizing simulation horizons in tests and examples.
pub fn contact_time_estimate(params: &CollisionParams) -> Real {
    (params.separation - 2.0) * params.radius / (2.0 * params.v_approach)
}
