//! Property test: the graph-overlapped Castro advance is bit-identical to
//! the bulk-synchronous one across randomized domain sizes, box
//! decompositions, and boundary conditions. This is the tentpole
//! determinism contract — overlap is a pure scheduling change, never a
//! numerical one.

use exastro_amr::{BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro_castro::{
    init_sedov, Castro, Floors, Hydro, KernelStructure, SedovParams, StateLayout,
};
use exastro_microphysics::{CBurn2, GammaLaw, Network};
use proptest::prelude::*;

fn sedov_state(n: i32, max_grid: i32, periodic: bool) -> (Geometry, MultiFab, StateLayout) {
    let geom = Geometry::cube(n, 1.0, periodic);
    let ba = BoxArray::decompose(geom.domain(), max_grid, 8);
    let dm = DistributionMapping::all_local(&ba);
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    init_sedov(&mut state, &geom, &layout, &eos, &SedovParams::default());
    (geom, state, layout)
}

fn castro<'a>(eos: &'a GammaLaw, net: &'a CBurn2, overlap: bool) -> Castro<'a> {
    let mut c = Castro::new(eos, net);
    c.hydro = Hydro {
        cfl: 0.4,
        structure: KernelStructure::Flat,
        overlap,
        floors: Floors::dimensionless(),
    };
    c.burn = None;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn overlapped_advance_is_bit_identical_to_sync(
        size_pick in 0u8..2,
        grid_pick in 0u8..2,
        periodic_bit in 0u8..2,
        steps in 1u32..3,
    ) {
        let n = if size_pick == 0 { 8 } else { 12 };
        let max_grid = if grid_pick == 0 { 4 } else { 8 };
        let periodic = periodic_bit == 1;
        let (geom, initial, _layout) = sedov_state(n, max_grid, periodic);
        let eos = GammaLaw::monatomic();
        let net = CBurn2::new();
        let sync = castro(&eos, &net, false);
        let ovl = castro(&eos, &net, true);

        let mut s_sync = initial.clone();
        let mut s_ovl = initial;
        let mut sync_net = 0u64;
        let mut ovl_net = 0u64;
        let mut sync_local = 0u64;
        let mut ovl_local = 0u64;
        for _ in 0..steps {
            let dt = sync.estimate_dt(&s_sync, &geom);
            let (st_a, _) = sync.advance_level(&mut s_sync, &geom, dt).unwrap();
            let (st_b, _) = ovl.advance_level(&mut s_ovl, &geom, dt).unwrap();
            sync_net += st_a.comm.network_bytes();
            ovl_net += st_b.comm.network_bytes();
            sync_local += st_a.comm.local_bytes;
            ovl_local += st_b.comm.local_bytes;
        }

        for i in 0..s_sync.nfabs() {
            let gb = s_sync.grown_box(i);
            for iv in gb.iter() {
                for c in 0..s_sync.ncomp() {
                    let a = s_sync.fab(i).get(iv, c);
                    let b = s_ovl.fab(i).get(iv, c);
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "divergence at fab {} {:?} comp {}: {} vs {}",
                        i, iv, c, a, b
                    );
                }
            }
        }
        // The comm ledger must price identically too: the overlapped plan
        // moves the same bytes, it just moves them behind compute.
        prop_assert_eq!(sync_net, ovl_net);
        prop_assert_eq!(sync_local, ovl_local);
    }
}
