//! Driver-level telemetry reconciliation: the `StepMetrics` stream a run
//! emits must agree with the `StepStats` the driver returns, with the
//! burner-level histograms, and with the process-wide checkpoint counter.
//!
//! Lives in its own test binary because it asserts on process-global state
//! (the telemetry registries and the profiler); sharing a binary with
//! unrelated tests would race those counters.

use exastro_amr::{BoxArray, DistributionMapping, Geometry, IntVect, MultiFab};
use exastro_castro::{variable_names, BurnOptions, Castro, StateLayout};
use exastro_microphysics::{BdfErrorKind, BurnFaultConfig, CBurn2, StellarEos};
use exastro_parallel::Profiler;
use exastro_resilience::snapshot::{Clock, Snapshot};
use exastro_resilience::CheckpointManager;
use exastro_telemetry::{histogram, MemorySink, Telemetry};
use std::sync::Arc;

/// The hot-center carbon cube from the burn unit tests: 8³ zones at
/// 5×10⁷ g/cm³, a 3×10⁹ K igniting pocket in a 10⁷ K background.
fn carbon_state(n: i32) -> (Geometry, MultiFab, StateLayout) {
    let geom = Geometry::cube(n, 1e8, false);
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let dm = DistributionMapping::all_local(&ba);
    let layout = StateLayout::new(2);
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let center = IntVect::splat(n / 2);
            let d = iv - center;
            let hot = d.product().abs() < 2 && d.sum().abs() < 3;
            let rho = 5e7;
            let t = if hot { 3.0e9 } else { 1e7 };
            state.fab_mut(i).set(iv, StateLayout::RHO, rho);
            state.fab_mut(i).set(iv, StateLayout::TEMP, t);
            state.fab_mut(i).set(iv, layout.spec(0), rho); // pure C12
            state.fab_mut(i).set(iv, StateLayout::EINT, rho * 1e17);
            state.fab_mut(i).set(iv, StateLayout::EDEN, rho * 1e17);
        }
    }
    (geom, state, layout)
}

#[test]
fn step_metrics_reconcile_with_driver_stats_and_burner_telemetry() {
    Telemetry::reset();
    Telemetry::enable();
    Profiler::reset();
    let net = CBurn2::new();
    let eos = StellarEos;
    let mut castro = Castro::new(&eos, &net);
    // Every burned zone fails its first attempt and recovers on the
    // relaxed-tolerance rung, so the retry/rung columns are nonzero and
    // must match between the driver stats and the metrics stream.
    castro.burn = Some(BurnOptions {
        faults: Some(BurnFaultConfig {
            seed: 42,
            rate: 1.0,
            rungs_to_fail: 1,
            error: BdfErrorKind::MaxSteps,
        }),
        ..Default::default()
    });
    let sink = Arc::new(MemorySink::new());
    castro.telemetry.attach_sink(sink.clone());

    let (geom, mut state, layout) = carbon_state(8);
    let ckpt_dir = std::env::temp_dir().join(format!("exastro-tm-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mgr = CheckpointManager::new(&ckpt_dir).unwrap();

    let nsteps = 3;
    let dt = 1e-9;
    let mut dts = Vec::new();
    let mut sum_burn_zones = 0u64;
    let mut sum_bdf = 0u64;
    let mut sum_newton = 0u64;
    let mut sum_retries = 0u64;
    let mut sum_relaxed = 0u64;
    let mut sum_subcycle = 0u64;
    let mut sum_offload = 0u64;
    let mut ckpt_payload = 0u64;
    for step in 0..nsteps {
        let (stats, taken) = castro.advance_level_safe(&mut state, &geom, dt).unwrap();
        dts.push(taken);
        sum_burn_zones += stats.burn.zones;
        sum_bdf += stats.burn.total_steps;
        sum_newton += stats.burn.newton_iters;
        sum_retries += stats.burn.retries;
        sum_relaxed += stats.burn.recovered_relaxed;
        sum_subcycle += stats.burn.recovered_subcycle;
        sum_offload += stats.burn.offloaded;
        if step == 1 {
            // A mid-run checkpoint: its bytes must show up as the *next*
            // record's delta of the process-wide counter.
            let snap = Snapshot::single_level(
                geom.clone(),
                state.clone(),
                Clock {
                    step: step as u64,
                    time: 0.0,
                    dt,
                },
                variable_names(&layout),
            );
            ckpt_payload = snap.payload_bytes();
            mgr.write(&snap).unwrap();
        }
    }
    assert!(sum_burn_zones > 0, "the hot pocket must burn");
    assert!(sum_retries > 0, "fault injection must force retries");

    let recs = sink.snapshot();
    assert_eq!(recs.len(), nsteps);
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.driver, "castro");
        assert_eq!(r.step, i as u64 + 1, "1-based ordinals");
        assert_eq!(r.zones, 512, "whole 8^3 level advanced each step");
        assert_eq!(r.step_rejections, 0, "clean steps reject nothing");
        assert!(r.wall_ns > 0);
        assert!(r.zones_per_us > 0.0);
        assert_eq!(r.dt, dts[i]);
    }
    // Run time accumulates the dt actually taken.
    let t_expect: f64 = dts.iter().sum();
    assert!((recs.last().unwrap().t - t_expect).abs() < 1e-18);

    // Column sums reconcile with the driver's own per-step stats.
    assert_eq!(recs.iter().map(|r| r.bdf_steps).sum::<u64>(), sum_bdf);
    assert_eq!(recs.iter().map(|r| r.newton_iters).sum::<u64>(), sum_newton);
    assert_eq!(
        recs.iter().map(|r| r.burn_retries).sum::<u64>(),
        sum_retries
    );
    assert_eq!(
        recs.iter().map(|r| r.recovered_relaxed).sum::<u64>(),
        sum_relaxed
    );
    assert_eq!(
        recs.iter().map(|r| r.recovered_subcycle).sum::<u64>(),
        sum_subcycle
    );
    assert_eq!(
        recs.iter().map(|r| r.recovered_offload).sum::<u64>(),
        sum_offload
    );

    // Checkpoint bytes: exactly one record carries the mid-run write.
    let ckpt_cols: Vec<u64> = recs.iter().map(|r| r.checkpoint_bytes).collect();
    assert_eq!(ckpt_cols[0], 0);
    assert_eq!(ckpt_cols[2], ckpt_payload, "step 3 absorbs the delta");
    assert!(ckpt_payload > 0);

    // The burner-level histogram saw one sample per burned zone (each
    // Strang half records separately, and stats.burn.zones sums halves).
    let h = histogram("burn.bdf_steps");
    assert_eq!(h.count(), sum_burn_zones);
    // And the per-rung counters agree with the recovery columns.
    assert_eq!(
        exastro_telemetry::counter_get("burn.rung.relaxed-tol"),
        sum_relaxed
    );

    // The profiler saw the same structure the trace records.
    let report = Profiler::report_json();
    for region in ["castro_advance", "burn", "hydro", "sync_temperature"] {
        assert!(report.contains(region), "profiler missing {region}");
    }

    // The trace exports as structurally sound Chrome JSON containing the
    // driver's regions.
    let trace_path = ckpt_dir.join("trace.json");
    Telemetry::write_trace(&trace_path).unwrap();
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.contains("\"traceEvents\""));
    assert!(text.contains("castro_advance"));
    assert!(text.contains("\"ph\": \"B\"") && text.contains("\"ph\": \"E\""));
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());

    Telemetry::disable();
    std::fs::remove_dir_all(&ckpt_dir).unwrap();
}
