//! A minimal, dependency-free, offline drop-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps every `benches/*.rs` target compiling and
//! produces honest wall-clock measurements: each `Bencher::iter` call runs a
//! warm-up to pick a batch size, takes `sample_size` timed samples, and the
//! harness prints min/median/mean per benchmark. No statistical analysis,
//! plots, or baselines are produced.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One benchmark's collected samples (per-iteration durations).
#[derive(Clone, Debug)]
pub struct Sample {
    /// Full path, e.g. `group/function`.
    pub id: String,
    /// Per-iteration wall time of each sample.
    pub times: Vec<Duration>,
}

impl Sample {
    fn report(&self) {
        let mut sorted = self.times.clone();
        sorted.sort();
        let min = sorted.first().copied().unwrap_or_default();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            sorted.iter().sum::<Duration>() / sorted.len() as u32
        };
        println!(
            "{:<40} time: [min {:>12?}  median {:>12?}  mean {:>12?}]  ({} samples)",
            self.id,
            min,
            median,
            mean,
            sorted.len()
        );
    }

    /// Median per-iteration time in seconds.
    pub fn median_secs(&self) -> f64 {
        let mut sorted = self.times.clone();
        sorted.sort();
        sorted
            .get(sorted.len() / 2)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, batching iterations so each sample is long enough to
    /// resolve, and record `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: aim for >= 1 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.times.push(start.elapsed() / batch);
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time (accepted for API compatibility;
    /// the shim sizes batches automatically).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            sample_size: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        let sample = Sample {
            id: full,
            times: b.times,
        };
        sample.report();
        self.criterion.samples.push(sample);
        self
    }

    /// Finish the group (separator line only; results print as they run).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// All samples recorded so far (inspectable by `cargo bench` mains).
    pub samples: Vec<Sample>,
}

impl Criterion {
    /// Begin a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function("base", f);
        self
    }
}

/// Declare a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.samples.len(), 1);
        assert_eq!(c.samples[0].times.len(), 3);
        assert!(c.samples[0].median_secs() >= 0.0);
    }
}
