//! Calibration probe: prints the Figure 2 and Figure 3 series.
use exastro_machine::*;

fn main() {
    let m = Machine::summit();
    println!("=== Fig 2 canonical ===");
    for p in canonical_series(&m, &[1, 8, 64, 512]) {
        println!(
            "nodes {:4} side {:5} tput {:9.1} norm {:.3} (comp {:.0} p2p {:.0} ar {:.0} µs)",
            p.nodes,
            p.domain_side,
            p.throughput,
            p.normalized,
            p.time.compute_us,
            p.time.p2p_us,
            p.time.allreduce_us
        );
    }
    println!("=== Fig 3 bubble ===");
    for p in bubble_series(&m, &[1, 8, 27, 64, 125]) {
        println!(
            "nodes {:4} tput {:7.2} norm {:.3} react {:9.0} mg {:9.0} ratio {:.2}",
            p.nodes,
            p.throughput,
            p.normalized,
            p.react_us,
            p.multigrid_us,
            p.multigrid_us / p.react_us
        );
    }
}
