//! Whole-machine failure model: node crashes, stragglers, and network
//! degradation, advancing with simulated time.
//!
//! The resilience stack already prices failures (Young/Daly in
//! `exastro-resilience`) and injects burn-level and file-level faults, but
//! until now the simulated *cluster* was immortal. [`NodeFaultModel`]
//! closes that gap: a deterministic, seeded process model in which each
//! node draws exponential waiting times to its next crash (MTBF-driven,
//! matching the §V sizing where machine MTBF shrinks as `1/N`), transient
//! stragglers multiply a node's step cost for a bounded window, and an
//! optional whole-fabric degradation window slows every node at once.
//!
//! The model is pure mechanism: it owns no scheduler state and kills no
//! jobs itself. A scheduler advances it with the simulated clock
//! ([`NodeFaultModel::advance`]), receives the ordered [`FaultEvent`]s of
//! the window, applies the kills to its [`crate::RankPool`], and decides
//! what to do about the jobs whose leases died. Determinism is the whole
//! point: a given `(seed, MTBF, horizon)` always produces the same
//! failure schedule, so chaos tests can assert bit-exact recovery.

/// Configuration of the whole-machine failure process. All times are in
/// *simulated* seconds (the same clock [`crate::Machine::simulate_step`]
/// prices). `f64::INFINITY` disables the corresponding process, which is
/// also the [`Default`]: a default-constructed config injects nothing.
#[derive(Clone, Debug)]
pub struct NodeFaultConfig {
    /// Seed of the deterministic failure schedule. Every node derives an
    /// independent stream from this, so schedules are stable under
    /// changes to the node count of *other* nodes' histories.
    pub seed: u64,
    /// Mean time between crashes of a single node, seconds
    /// (exponentially distributed waiting times). `INFINITY` disables
    /// crashes.
    pub node_mtbf_s: f64,
    /// When `Some(t)`, a crashed node returns to service `t` simulated
    /// seconds after it died; `None` means dead nodes never come back
    /// (capacity shrinks for the rest of the run).
    pub repair_s: Option<f64>,
    /// Mean time between straggler onsets per node, seconds. `INFINITY`
    /// disables stragglers.
    pub straggler_mtbf_s: f64,
    /// Step-cost multiplier a straggling node imposes on every rank it
    /// hosts (≥ 1).
    pub straggler_factor: f64,
    /// How long one straggler episode lasts, simulated seconds.
    pub straggler_duration_s: f64,
    /// Mean time between whole-fabric degradation windows, seconds.
    /// `INFINITY` disables network degradation.
    pub net_degrade_mtbf_s: f64,
    /// Step-cost multiplier while the fabric is degraded (applies to all
    /// nodes, multiplicative with any straggler factor).
    pub net_degrade_factor: f64,
    /// How long one degradation window lasts, simulated seconds.
    pub net_degrade_duration_s: f64,
}

impl Default for NodeFaultConfig {
    fn default() -> Self {
        NodeFaultConfig {
            seed: 0,
            node_mtbf_s: f64::INFINITY,
            repair_s: None,
            straggler_mtbf_s: f64::INFINITY,
            straggler_factor: 4.0,
            straggler_duration_s: 30.0,
            net_degrade_mtbf_s: f64::INFINITY,
            net_degrade_factor: 1.5,
            net_degrade_duration_s: 20.0,
        }
    }
}

/// One event in the failure schedule, emitted by
/// [`NodeFaultModel::advance`] in simulated-time order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A node crashed: every rank on it is dead until (and unless) a
    /// matching [`FaultEvent::NodeRepaired`] arrives.
    NodeKilled {
        /// The node that died.
        node: usize,
        /// Simulated time of death, seconds.
        at_s: f64,
    },
    /// A previously crashed node returned to service.
    NodeRepaired {
        /// The node that recovered.
        node: usize,
        /// Simulated time of recovery, seconds.
        at_s: f64,
    },
    /// A node began straggling: its step cost is multiplied by `factor`.
    StragglerBegan {
        /// The slow node.
        node: usize,
        /// The step-cost multiplier now in effect.
        factor: f64,
        /// Simulated onset time, seconds.
        at_s: f64,
    },
    /// A straggler episode ended; the node runs at full speed again.
    StragglerEnded {
        /// The recovered node.
        node: usize,
        /// Simulated end time, seconds.
        at_s: f64,
    },
    /// The fabric degraded: every node's step cost is multiplied.
    NetworkDegraded {
        /// The multiplier now in effect machine-wide.
        factor: f64,
        /// Simulated onset time, seconds.
        at_s: f64,
    },
    /// The fabric recovered to full bandwidth.
    NetworkRestored {
        /// Simulated end time, seconds.
        at_s: f64,
    },
}

impl FaultEvent {
    /// Simulated time of the event, seconds.
    pub fn at_s(&self) -> f64 {
        match *self {
            FaultEvent::NodeKilled { at_s, .. }
            | FaultEvent::NodeRepaired { at_s, .. }
            | FaultEvent::StragglerBegan { at_s, .. }
            | FaultEvent::StragglerEnded { at_s, .. }
            | FaultEvent::NetworkDegraded { at_s, .. }
            | FaultEvent::NetworkRestored { at_s } => at_s,
        }
    }
}

/// splitmix64: the deterministic PRNG used for all waiting-time draws
/// (same generator the burn-fault injector uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` with 53 bits of entropy.
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential waiting time with mean `mtbf` (infinite when disabled).
fn exp_sample(state: &mut u64, mtbf: f64) -> f64 {
    if !mtbf.is_finite() || mtbf <= 0.0 {
        return f64::INFINITY;
    }
    -mtbf * (1.0 - u01(state)).ln()
}

/// Per-node failure-process state.
#[derive(Clone, Debug)]
struct NodeState {
    rng: u64,
    /// Next crash time (only meaningful while alive).
    crash_at: f64,
    /// `Some(t)` while dead: the repair time (`INFINITY` = never).
    repair_at: Option<f64>,
    /// Next straggler onset (only fires while alive and not straggling).
    straggle_at: f64,
    /// End of the current straggler episode (`None` when healthy).
    straggle_until: Option<f64>,
}

/// The deterministic whole-machine failure process. See the module docs
/// for the contract; the short version: call
/// [`advance`](NodeFaultModel::advance) with the new simulated time and
/// apply the returned events.
#[derive(Clone, Debug)]
pub struct NodeFaultModel {
    cfg: NodeFaultConfig,
    nodes: Vec<NodeState>,
    net_rng: u64,
    net_at: f64,
    net_until: Option<f64>,
    now_s: f64,
    kills: u64,
    straggles: u64,
}

impl NodeFaultModel {
    /// A failure process over `nodes` nodes with schedule `cfg`.
    pub fn new(cfg: NodeFaultConfig, nodes: usize) -> Self {
        let mut states = Vec::with_capacity(nodes);
        for node in 0..nodes {
            // Independent per-node streams: stable under reseeding of
            // neighbours and under node-count changes.
            let mut rng = cfg.seed ^ (node as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let crash_at = exp_sample(&mut rng, cfg.node_mtbf_s);
            let straggle_at = exp_sample(&mut rng, cfg.straggler_mtbf_s);
            states.push(NodeState {
                rng,
                crash_at,
                repair_at: None,
                straggle_at,
                straggle_until: None,
            });
        }
        let mut net_rng = cfg.seed ^ 0xD6E8_FEB8_6659_FD93;
        let net_at = exp_sample(&mut net_rng, cfg.net_degrade_mtbf_s);
        NodeFaultModel {
            cfg,
            nodes: states,
            net_rng,
            net_at,
            net_until: None,
            now_s: 0.0,
            kills: 0,
            straggles: 0,
        }
    }

    /// The configuration this model runs.
    pub fn config(&self) -> &NodeFaultConfig {
        &self.cfg
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Total node crashes injected so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Total straggler episodes begun so far.
    pub fn straggler_episodes(&self) -> u64 {
        self.straggles
    }

    /// True while `node` is crashed.
    pub fn is_dead(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.repair_at.is_some())
    }

    /// Step-cost multiplier currently in effect on `node` (1.0 when
    /// healthy): the straggler factor while the node straggles times the
    /// fabric factor while the network is degraded.
    pub fn slowdown(&self, node: usize) -> f64 {
        let mut f = 1.0;
        if let Some(n) = self.nodes.get(node) {
            if n.straggle_until.is_some() {
                f *= self.cfg.straggler_factor;
            }
        }
        if self.net_until.is_some() {
            f *= self.cfg.net_degrade_factor;
        }
        f
    }

    /// Nodes currently straggling (ascending).
    pub fn straggling_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.straggle_until.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// The earliest pending event time across all processes.
    fn next_event_s(&self) -> f64 {
        let mut t = self.net_until.unwrap_or(self.net_at);
        for n in &self.nodes {
            let nt = match n.repair_at {
                Some(r) => r,
                None => n.crash_at.min(n.straggle_until.unwrap_or(n.straggle_at)),
            };
            t = t.min(nt);
        }
        t
    }

    /// Advance the process to simulated time `to_s`, returning every
    /// event in the window `(now, to_s]` in time order. Idempotent for
    /// `to_s <= now`.
    pub fn advance(&mut self, to_s: f64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        while self.next_event_s() <= to_s {
            let t = self.next_event_s();
            // Network window edges.
            if let Some(until) = self.net_until {
                if until <= t {
                    self.net_until = None;
                    self.net_at =
                        until + exp_sample(&mut self.net_rng, self.cfg.net_degrade_mtbf_s);
                    events.push(FaultEvent::NetworkRestored { at_s: until });
                    continue;
                }
            } else if self.net_at <= t {
                let at = self.net_at;
                self.net_until = Some(at + self.cfg.net_degrade_duration_s);
                events.push(FaultEvent::NetworkDegraded {
                    factor: self.cfg.net_degrade_factor,
                    at_s: at,
                });
                continue;
            }
            // Node events: find the node owning time t.
            let mut fired = false;
            for i in 0..self.nodes.len() {
                let n = &mut self.nodes[i];
                if let Some(repair) = n.repair_at {
                    if repair <= t {
                        n.repair_at = None;
                        n.crash_at = repair + exp_sample(&mut n.rng, self.cfg.node_mtbf_s);
                        n.straggle_at = repair + exp_sample(&mut n.rng, self.cfg.straggler_mtbf_s);
                        events.push(FaultEvent::NodeRepaired {
                            node: i,
                            at_s: repair,
                        });
                        fired = true;
                        break;
                    }
                    continue;
                }
                if let Some(until) = n.straggle_until {
                    if until <= t {
                        n.straggle_until = None;
                        n.straggle_at = until + exp_sample(&mut n.rng, self.cfg.straggler_mtbf_s);
                        events.push(FaultEvent::StragglerEnded {
                            node: i,
                            at_s: until,
                        });
                        fired = true;
                        break;
                    }
                }
                if n.crash_at <= t {
                    let at = n.crash_at;
                    n.repair_at = Some(match self.cfg.repair_s {
                        Some(r) => at + r,
                        None => f64::INFINITY,
                    });
                    // A crash ends any straggler episode with it.
                    n.straggle_until = None;
                    self.kills += 1;
                    events.push(FaultEvent::NodeKilled { node: i, at_s: at });
                    fired = true;
                    break;
                }
                if n.straggle_until.is_none() && n.straggle_at <= t {
                    let at = n.straggle_at;
                    n.straggle_until = Some(at + self.cfg.straggler_duration_s);
                    self.straggles += 1;
                    events.push(FaultEvent::StragglerBegan {
                        node: i,
                        factor: self.cfg.straggler_factor,
                        at_s: at,
                    });
                    fired = true;
                    break;
                }
            }
            debug_assert!(fired, "next_event_s produced a time no process owns");
            if !fired {
                break;
            }
        }
        self.now_s = self.now_s.max(to_s);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_cfg(seed: u64) -> NodeFaultConfig {
        NodeFaultConfig {
            seed,
            node_mtbf_s: 100.0,
            repair_s: Some(50.0),
            straggler_mtbf_s: 80.0,
            straggler_factor: 3.0,
            straggler_duration_s: 25.0,
            ..Default::default()
        }
    }

    #[test]
    fn default_config_injects_nothing() {
        let mut m = NodeFaultModel::new(NodeFaultConfig::default(), 16);
        assert!(m.advance(1e9).is_empty());
        assert_eq!(m.kills(), 0);
        for n in 0..16 {
            assert!(!m.is_dead(n));
            assert_eq!(m.slowdown(n), 1.0);
        }
    }

    #[test]
    fn schedule_is_deterministic_and_time_ordered() {
        let a = NodeFaultModel::new(chaos_cfg(42), 8).advance(500.0);
        let b = NodeFaultModel::new(chaos_cfg(42), 8).advance(500.0);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(!a.is_empty(), "this config must actually fire");
        for w in a.windows(2) {
            assert!(w[0].at_s() <= w[1].at_s(), "events must be time-ordered");
        }
        let c = NodeFaultModel::new(chaos_cfg(43), 8).advance(500.0);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn incremental_advance_matches_one_shot() {
        let mut inc = NodeFaultModel::new(chaos_cfg(7), 6);
        let mut got = Vec::new();
        let mut t = 0.0f64;
        while t < 400.0 {
            t += 13.7;
            got.extend(inc.advance(t.min(400.0)));
        }
        let want = NodeFaultModel::new(chaos_cfg(7), 6).advance(400.0);
        assert_eq!(got, want, "chunked advance must replay the same schedule");
    }

    #[test]
    fn kills_scale_with_mtbf() {
        let harsh = NodeFaultConfig {
            node_mtbf_s: 50.0,
            ..chaos_cfg(9)
        };
        let mild = NodeFaultConfig {
            node_mtbf_s: 5000.0,
            ..chaos_cfg(9)
        };
        let mut mh = NodeFaultModel::new(harsh, 16);
        let mut mm = NodeFaultModel::new(mild, 16);
        mh.advance(1000.0);
        mm.advance(1000.0);
        assert!(
            mh.kills() > 3 * (mm.kills() + 1),
            "harsh {} vs mild {}",
            mh.kills(),
            mm.kills()
        );
    }

    #[test]
    fn dead_nodes_repair_on_schedule() {
        let cfg = NodeFaultConfig {
            node_mtbf_s: 30.0,
            repair_s: Some(10.0),
            straggler_mtbf_s: f64::INFINITY,
            ..Default::default()
        };
        let mut m = NodeFaultModel::new(cfg, 4);
        let events = m.advance(2000.0);
        let mut deaths = 0;
        let mut repairs = 0;
        let mut dead: Vec<Option<f64>> = vec![None; 4];
        for e in events {
            match e {
                FaultEvent::NodeKilled { node, at_s } => {
                    assert!(dead[node].is_none(), "killed while already dead");
                    dead[node] = Some(at_s);
                    deaths += 1;
                }
                FaultEvent::NodeRepaired { node, at_s } => {
                    let died = dead[node].expect("repaired while alive");
                    assert!((at_s - died - 10.0).abs() < 1e-9, "repair_s must be exact");
                    dead[node] = None;
                    repairs += 1;
                }
                _ => {}
            }
        }
        assert!(deaths > 10, "30s MTBF over 2000s must kill often: {deaths}");
        assert!(
            repairs >= deaths - 4,
            "every death (except trailing) repairs"
        );
    }

    #[test]
    fn no_repair_means_dead_forever() {
        let cfg = NodeFaultConfig {
            node_mtbf_s: 20.0,
            repair_s: None,
            ..Default::default()
        };
        let mut m = NodeFaultModel::new(cfg, 3);
        let events = m.advance(10_000.0);
        let deaths = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::NodeKilled { .. }))
            .count();
        assert_eq!(deaths, 3, "each node dies exactly once, never returns");
        for n in 0..3 {
            assert!(m.is_dead(n));
        }
    }

    #[test]
    fn straggler_windows_slow_then_recover() {
        let cfg = NodeFaultConfig {
            straggler_mtbf_s: 40.0,
            straggler_factor: 5.0,
            straggler_duration_s: 15.0,
            ..Default::default()
        };
        let mut m = NodeFaultModel::new(cfg, 2);
        // Advance until the first onset.
        let mut t = 0.0;
        let mut began = None;
        'outer: while t < 5000.0 {
            t += 1.0;
            for e in m.advance(t) {
                if let FaultEvent::StragglerBegan { node, factor, .. } = e {
                    assert_eq!(factor, 5.0);
                    began = Some((node, t));
                    break 'outer;
                }
            }
        }
        let (node, t0) = began.expect("a straggler must begin");
        assert_eq!(m.slowdown(node), 5.0, "straggling node is slow");
        assert!(!m.is_dead(node), "straggling is not dead");
        assert_eq!(m.straggling_nodes(), vec![node]);
        m.advance(t0 + 16.0);
        assert_eq!(m.slowdown(node), 1.0, "episode must end after duration");
        assert!(m.straggling_nodes().is_empty());
    }

    #[test]
    fn network_degradation_slows_every_node() {
        let cfg = NodeFaultConfig {
            net_degrade_mtbf_s: 60.0,
            net_degrade_factor: 2.0,
            net_degrade_duration_s: 10.0,
            ..Default::default()
        };
        let mut m = NodeFaultModel::new(cfg, 4);
        let events = m.advance(400.0);
        let onsets = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::NetworkDegraded { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::NetworkRestored { .. }))
            .count();
        assert!(onsets >= 1, "fabric must degrade at least once in 400s");
        assert!(ends >= onsets - 1, "every window (except trailing) closes");
        // During a window every node is slowed; find one by replay.
        let mut m2 = NodeFaultModel::new(m.config().clone(), 4);
        for e in events {
            if let FaultEvent::NetworkDegraded { at_s, .. } = e {
                m2.advance(at_s + 1e-6);
                for n in 0..4 {
                    assert_eq!(m2.slowdown(n), 2.0);
                }
                break;
            }
        }
    }
}
