//! Figure 2: Castro Sedov–Taylor weak scaling on the simulated Summit.
//!
//! Three scenarios, as in the paper:
//!
//! * **canonical** — 256³ zones per node chopped into 64³ boxes, nodes ∈
//!   {1, 8, 64, 512}; the 64 boxes per node do not divide evenly over 6
//!   ranks, so the fiducial case carries a built-in load imbalance;
//! * **best/worst envelopes** — at each power-of-two node count the domain
//!   (two sizes, 0.75× per dimension apart) and the maximum box width
//!   (∈ {32, 48, 64, 96, 128}) are swept, and the extreme throughputs
//!   recorded. "Best case" is what a careful user can reach, "worst case"
//!   what a careless one gets (§IV-A).

use crate::model::{Machine, OverlapModel, StepTime, StepWorkload};
use crate::workload::{exchange_comm, scale_comm};
use exastro_amr::{BoxArray, DistStrategy, DistributionMapping, IndexBox};
use exastro_parallel::KernelProfile;

/// Calibrated per-step kernel anatomy of the Castro hydro update: a
/// dimensionally-split step launches ~4 kernels per sweep per box
/// (primitives, staged trace/flux, conservative update, EOS sync).
pub const HYDRO_KERNELS_PER_BOX: usize = 12;
/// Per-kernel relative cost; the product with the kernel count gives the
/// per-zone work of a full step (≈ 1.2 of the reference kernel), which puts
/// a well-fed V100 near the paper's ~22–25 zones/µs.
pub const HYDRO_COST_PER_KERNEL: f64 = 0.1;
/// Hydro ghost width (PLM stencil + trace).
pub const HYDRO_NGROW: i32 = 4;
/// Conserved components exchanged.
pub const HYDRO_NCOMP: usize = 10;
/// Ghost fills per step (one per directional sweep).
pub const FILLS_PER_STEP: f64 = 3.0;

/// One weak-scaling data point.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Absolute throughput, zones/µs.
    pub throughput: f64,
    /// Normalized: throughput / (nodes · single-node canonical throughput).
    pub normalized: f64,
    /// Step timing breakdown.
    pub time: StepTime,
    /// Domain side used.
    pub domain_side: i32,
    /// Maximum box width used.
    pub max_box: i32,
}

/// Build the Sedov step workload for a cubic domain of side `domain_side`
/// decomposed into boxes of width ≤ `max_box` (≥ `min_box`), on `nodes`
/// Summit nodes.
pub fn sedov_workload(
    machine: &Machine,
    nodes: usize,
    domain_side: i32,
    max_box: i32,
    min_box: i32,
) -> StepWorkload {
    let nranks = nodes * machine.node.gpus_per_node;
    let domain = IndexBox::cube(domain_side);
    let ba = BoxArray::decompose(domain, max_box, min_box);
    let dm = DistributionMapping::new(&ba, nranks, DistStrategy::Sfc);
    let mut compute = vec![Vec::new(); nranks];
    let prof = KernelProfile::new(HYDRO_COST_PER_KERNEL, 160);
    for (i, b) in ba.iter().enumerate() {
        let r = dm.owner(i);
        for _ in 0..HYDRO_KERNELS_PER_BOX {
            compute[r].push((b.num_zones(), prof));
        }
    }
    let comm1 = exchange_comm(
        &ba,
        &dm,
        machine,
        domain,
        [false; 3],
        HYDRO_NGROW,
        HYDRO_NCOMP,
    );
    let comm = scale_comm(&comm1, FILLS_PER_STEP);
    StepWorkload {
        nranks,
        compute,
        comm,
        allreduces: 1,   // the CFL dt reduction
        global_syncs: 3, // one synchronizing ghost fill per sweep
        zones_advanced: domain.num_zones(),
        checkpoint_bytes: 0,
        overlap: None,
    }
}

/// Overlap parameters for the task-graph hydro step on boxes of width
/// `max_box`: a dimensionally split sweep needs the two 2-deep face bands
/// along the sweep axis filled, so the interior fraction is
/// `(w - 4) / w` of the box; the scheduler overhead is the measured
/// task-graph bookkeeping cost per step.
pub fn hydro_overlap(max_box: i32) -> OverlapModel {
    OverlapModel {
        interior_fraction: ((max_box - 4).max(0) as f64) / max_box as f64,
        scheduler_overhead_us: 6.0,
    }
}

/// The same Sedov step priced with the task-graph overlapped exchange:
/// ghost fills ride behind interior compute and no longer act as
/// per-sweep global barriers — only the end-of-step dt reduction
/// synchronizes.
pub fn sedov_workload_overlapped(
    machine: &Machine,
    nodes: usize,
    domain_side: i32,
    max_box: i32,
    min_box: i32,
) -> StepWorkload {
    let mut w = sedov_workload(machine, nodes, domain_side, max_box, min_box);
    w.overlap = Some(hydro_overlap(max_box));
    w.global_syncs = 1;
    w
}

/// The canonical weak-scaling series: 256³ per node, 64³ boxes.
pub fn canonical_series(machine: &Machine, nodes_list: &[usize]) -> Vec<ScalingPoint> {
    let base = {
        let w = sedov_workload(machine, 1, 256, 64, 32);
        machine.simulate_step(&w).throughput
    };
    nodes_list
        .iter()
        .map(|&nodes| {
            let side = 256 * (nodes as f64).cbrt().round() as i32;
            let w = sedov_workload(machine, nodes, side, 64, 32);
            let t = machine.simulate_step(&w);
            ScalingPoint {
                nodes,
                throughput: t.throughput,
                normalized: t.throughput / (nodes as f64 * base),
                time: t,
                domain_side: side,
                max_box: 64,
            }
        })
        .collect()
}

/// The canonical series re-priced with overlapped stepping, normalized to
/// the *bulk-synchronous* single-node throughput so the two series share a
/// baseline and the efficiency gain is visible.
pub fn overlapped_series(machine: &Machine, nodes_list: &[usize]) -> Vec<ScalingPoint> {
    let base = {
        let w = sedov_workload(machine, 1, 256, 64, 32);
        machine.simulate_step(&w).throughput
    };
    nodes_list
        .iter()
        .map(|&nodes| {
            let side = 256 * (nodes as f64).cbrt().round() as i32;
            let w = sedov_workload_overlapped(machine, nodes, side, 64, 32);
            let t = machine.simulate_step(&w);
            ScalingPoint {
                nodes,
                throughput: t.throughput,
                normalized: t.throughput / (nodes as f64 * base),
                time: t,
                domain_side: side,
                max_box: 64,
            }
        })
        .collect()
}

/// Round `v` down to a positive multiple of `m`.
fn round_to(v: f64, m: i32) -> i32 {
    ((v / m as f64).round() as i32 * m).max(m)
}

/// The best-case / worst-case envelopes over box widths and domain sizes.
/// Returns `(best, worst)` per node count, normalized by the canonical
/// single-node throughput.
pub fn envelope_series(
    machine: &Machine,
    nodes_list: &[usize],
) -> (Vec<ScalingPoint>, Vec<ScalingPoint>) {
    let base = {
        let w = sedov_workload(machine, 1, 256, 64, 32);
        machine.simulate_step(&w).throughput
    };
    let mut best = Vec::new();
    let mut worst = Vec::new();
    for &nodes in nodes_list {
        let cbrt = (nodes as f64).cbrt();
        let mut candidates: Vec<ScalingPoint> = Vec::new();
        for &per_node_side in &[256.0_f64, 192.0] {
            let side = round_to(per_node_side * cbrt, 32);
            for &max_box in &[32, 48, 64, 96, 128] {
                let w = sedov_workload(machine, nodes, side, max_box, 32);
                let t = machine.simulate_step(&w);
                candidates.push(ScalingPoint {
                    nodes,
                    throughput: t.throughput,
                    normalized: t.throughput / (nodes as f64 * base),
                    time: t,
                    domain_side: side,
                    max_box,
                });
            }
        }
        let bi = candidates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.normalized.total_cmp(&b.1.normalized))
            .unwrap()
            .0;
        let wi = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.normalized.total_cmp(&b.1.normalized))
            .unwrap()
            .0;
        best.push(candidates[bi].clone());
        worst.push(candidates[wi].clone());
    }
    (best, worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_canonical_near_paper_value() {
        // Paper: 130 zones/µs for one node. Calibration target ±25%.
        let m = Machine::summit();
        let w = sedov_workload(&m, 1, 256, 64, 32);
        let t = m.simulate_step(&w);
        assert!(
            (t.throughput - 130.0).abs() < 33.0,
            "single-node throughput {} zones/µs",
            t.throughput
        );
    }

    #[test]
    fn canonical_efficiency_falls_to_paper_range_at_512() {
        // Paper: ~63% weak-scaling efficiency at 512 nodes, ~42000 zones/µs.
        let m = Machine::summit();
        let pts = canonical_series(&m, &[1, 8, 64, 512]);
        assert!((pts[0].normalized - 1.0).abs() < 1e-9);
        // Monotone decline.
        for w in pts.windows(2) {
            assert!(w[1].normalized <= w[0].normalized + 1e-9);
        }
        let eff512 = pts[3].normalized;
        assert!(
            (0.45..0.80).contains(&eff512),
            "efficiency at 512 nodes = {eff512}"
        );
        assert!(
            pts[3].throughput > 25_000.0 && pts[3].throughput < 70_000.0,
            "512-node throughput {}",
            pts[3].throughput
        );
    }

    #[test]
    fn overlap_improves_efficiency_at_scale() {
        // The tentpole claim: hiding the ghost exchange behind interior
        // compute recovers weak-scaling efficiency where the step is
        // communication-bound. At one node the scheduler overhead makes it
        // a slight loss; at 512 nodes the gain is substantial.
        let m = Machine::summit();
        let sync = canonical_series(&m, &[1, 512]);
        let ovl = overlapped_series(&m, &[1, 512]);
        assert!(
            ovl[1].normalized > sync[1].normalized + 0.05,
            "512-node efficiency: overlapped {} vs sync {}",
            ovl[1].normalized,
            sync[1].normalized
        );
        // One-node cost of the scheduler is bounded.
        assert!(
            ovl[0].normalized > 0.9 * sync[0].normalized,
            "1-node overlap overhead too high: {} vs {}",
            ovl[0].normalized,
            sync[0].normalized
        );
    }

    #[test]
    fn fiducial_case_is_load_imbalanced() {
        // 64 boxes over 6 ranks: the canonical case wastes ~3% of the
        // machine to the 11-vs-10.67 box imbalance, visible as normalized
        // throughput below 1 even with communication free.
        let m = Machine::summit();
        let w = sedov_workload(&m, 1, 256, 64, 32);
        // Max boxes on one rank.
        let per_rank: Vec<usize> = (0..6)
            .map(|r| w.compute[r].len() / HYDRO_KERNELS_PER_BOX)
            .collect();
        assert_eq!(per_rank.iter().sum::<usize>(), 64);
        assert_eq!(*per_rank.iter().max().unwrap(), 11);
    }

    #[test]
    fn best_case_beats_worst_case_everywhere() {
        let m = Machine::summit();
        let (best, worst) = envelope_series(&m, &[1, 8, 64]);
        for (b, w) in best.iter().zip(&worst) {
            assert!(
                b.normalized > w.normalized * 1.1,
                "envelope too tight at {} nodes: {} vs {}",
                b.nodes,
                b.normalized,
                w.normalized
            );
        }
    }

    #[test]
    fn tiny_boxes_are_a_bad_choice() {
        // 32³ boxes on GPUs: launch-bound, low occupancy (§IV-A).
        let m = Machine::summit();
        let w32 = sedov_workload(&m, 1, 256, 32, 32);
        let w96 = sedov_workload(&m, 1, 288, 96, 32);
        let t32 = m.simulate_step(&w32).throughput;
        let t96 = m.simulate_step(&w96).throughput;
        assert!(
            t96 > 1.2 * t32,
            "large boxes {t96} should beat small boxes {t32}"
        );
    }
}
