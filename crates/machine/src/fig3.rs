//! Figure 3: MAESTROeX reacting-bubble weak scaling on the simulated
//! Summit.
//!
//! The step anatomy follows §IV-B: the wall time is dominated by (a) the
//! nuclear burning — purely zone-local, perfectly parallel — and (b) the
//! multigrid projection, whose per-level ghost exchanges and per-cycle
//! reductions make it "extremely communication bound" at scale. At one
//! node the two are approximately balanced; by 125 nodes the multigrid is
//! ~6× the reactions.

use crate::model::{Machine, OverlapModel, RankComm, StepTime, StepWorkload};
use crate::workload::{add_comm, exchange_comm, scale_comm};
use exastro_amr::{BoxArray, DistStrategy, DistributionMapping, IndexBox};
use exastro_parallel::KernelProfile;

/// Zones per node per dimension for the weak-scaling series.
pub const BUBBLE_SIDE_PER_NODE: i32 = 128;
/// Burn kernel: heavy per-zone cost (stiff BDF integration, large register
/// demand — the Jacobian alone overflows the register file, §IV-B).
pub const BURN_COST_PER_ZONE: f64 = 2.5;
/// Burn kernel register demand (> 255 ⇒ spilling derates occupancy).
pub const BURN_REGISTERS: u32 = 320;
/// Advection kernels per box per step.
pub const ADVECT_KERNELS_PER_BOX: usize = 6;
/// Advection per-kernel cost.
pub const ADVECT_COST: f64 = 0.08;
/// Elliptic solves per low-Mach step (nodal projection, MAC projection,
/// thermal/base-state solves).
pub const MG_SOLVES_PER_STEP: usize = 3;
/// Multigrid V-cycles per solve.
pub const MG_VCYCLES: usize = 10;
/// Smoother ghost exchanges per level per V-cycle (pre + post smoothing,
/// red and black halves, plus residual/restriction).
pub const MG_EXCHANGES_PER_LEVEL: f64 = 10.0;
/// Smoother compute cost per zone per V-cycle visit of a level.
pub const MG_SMOOTH_COST: f64 = 0.012;

/// One Figure-3 data point.
#[derive(Clone, Debug)]
pub struct BubblePoint {
    /// Node count.
    pub nodes: usize,
    /// Absolute throughput, zones/µs.
    pub throughput: f64,
    /// Normalized to the single-node throughput.
    pub normalized: f64,
    /// Time spent in the (perfectly parallel) reactions, µs.
    pub react_us: f64,
    /// Time spent in the multigrid projection, µs.
    pub multigrid_us: f64,
    /// Full step timing.
    pub time: StepTime,
}

/// Build the per-step workload of the reacting-bubble problem on `nodes`
/// nodes and simulate it, reporting the phase split.
pub fn bubble_point(machine: &Machine, nodes: usize, base_throughput: Option<f64>) -> BubblePoint {
    bubble_point_with(machine, nodes, base_throughput, false)
}

/// [`bubble_point`] with an explicit stepping mode: `overlap = true`
/// prices the task-graph overlapped exchange — the advection fill hides
/// behind interior advection + burning, and the multigrid ladder's
/// per-level exchanges stop acting as global barriers (one barrier per
/// V-cycle survives, the coarse-grid solve).
pub fn bubble_point_with(
    machine: &Machine,
    nodes: usize,
    base_throughput: Option<f64>,
    overlap: bool,
) -> BubblePoint {
    let nranks = nodes * machine.node.gpus_per_node;
    let side = BUBBLE_SIDE_PER_NODE * (nodes as f64).cbrt().round() as i32;
    let domain = IndexBox::cube(side);
    let max_box = 64;
    let ba = BoxArray::decompose(domain, max_box, 16);
    let dm = DistributionMapping::new(&ba, nranks, DistStrategy::Sfc);

    // ---- Reactions: one heavy launch per box, zone-local, no comm.
    let mut react = StepWorkload {
        nranks,
        compute: vec![Vec::new(); nranks],
        comm: vec![RankComm::default(); nranks],
        allreduces: 0,
        global_syncs: 1,
        zones_advanced: domain.num_zones(),
        checkpoint_bytes: 0,
        overlap: None,
    };
    let burn_prof = KernelProfile::new(BURN_COST_PER_ZONE, BURN_REGISTERS);
    let adv_prof = KernelProfile::new(ADVECT_COST, 128);
    for (i, b) in ba.iter().enumerate() {
        let r = dm.owner(i);
        react.compute[r].push((b.num_zones(), burn_prof));
        for _ in 0..ADVECT_KERNELS_PER_BOX {
            react.compute[r].push((b.num_zones(), adv_prof));
        }
    }
    // Advection ghost fill (one per step).
    let adv_comm = exchange_comm(&ba, &dm, machine, domain, [true, true, false], 1, 7);
    react.comm = adv_comm;
    if overlap {
        // The 1-ghost upwind stencil leaves (w-2)/w of each box interior;
        // the burn is zone-local, so nearly all compute can hide the fill.
        react.overlap = Some(OverlapModel {
            interior_fraction: ((max_box - 2).max(0) as f64) / max_box as f64,
            scheduler_overhead_us: 6.0,
        });
    }
    let t_react = machine.simulate_step(&react);

    // ---- Multigrid: level ladder from `side` down to the bottom.
    let cycles_total = MG_VCYCLES * MG_SOLVES_PER_STEP;
    let mut mg = StepWorkload {
        nranks,
        compute: vec![Vec::new(); nranks],
        comm: vec![RankComm::default(); nranks],
        allreduces: (cycles_total + 2) as u64, // residual norm per cycle
        global_syncs: 0,
        zones_advanced: 0,
        checkpoint_bytes: 0,
        overlap: None,
    };
    let mut level_side = side;
    let mut nlevels = 0u64;
    while level_side >= 4 {
        nlevels += 1;
        let ldomain = IndexBox::cube(level_side);
        let lmax = max_box.min(level_side);
        let lba = BoxArray::decompose(ldomain, lmax, 2.min(level_side));
        let ldm = DistributionMapping::new(&lba, nranks, DistStrategy::Sfc);
        let smooth_prof = KernelProfile::new(MG_SMOOTH_COST, 96);
        for (i, b) in lba.iter().enumerate() {
            let r = ldm.owner(i);
            // Each V-cycle visits the level with pre+post smoothing and a
            // residual evaluation: ~5 kernel launches.
            for _ in 0..(5 * cycles_total) {
                mg.compute[r].push((b.num_zones(), smooth_prof));
            }
        }
        let lcomm = exchange_comm(&lba, &ldm, machine, ldomain, [true, true, false], 1, 1);
        let scaled = scale_comm(&lcomm, MG_EXCHANGES_PER_LEVEL * cycles_total as f64);
        add_comm(&mut mg.comm, &scaled);
        if level_side % 2 != 0 {
            break;
        }
        level_side /= 2;
    }
    // Every level visit of every cycle is a synchronizing exchange ladder;
    // overlapped stepping keeps only the per-cycle coarse-grid barrier.
    mg.global_syncs = if overlap {
        cycles_total as u64
    } else {
        nlevels * MG_EXCHANGES_PER_LEVEL as u64 * cycles_total as u64
    };
    if overlap {
        mg.overlap = Some(OverlapModel {
            interior_fraction: 0.5, // smoother stencils leave thin interiors
            scheduler_overhead_us: 6.0,
        });
    }
    let t_mg = machine.simulate_step(&mg);

    let total_us = t_react.total_us + t_mg.total_us;
    let throughput = domain.num_zones() as f64 / total_us;
    let normalized = match base_throughput {
        Some(b) => throughput / (nodes as f64 * b),
        None => 1.0,
    };
    BubblePoint {
        nodes,
        throughput,
        normalized,
        react_us: t_react.total_us,
        multigrid_us: t_mg.total_us,
        time: StepTime {
            compute_us: t_react.compute_us + t_mg.compute_us,
            p2p_us: t_react.p2p_us + t_mg.p2p_us,
            allreduce_us: t_react.allreduce_us + t_mg.allreduce_us,
            io_us: 0.0,
            total_us,
            throughput,
        },
    }
}

/// The Figure-3 series over the paper's node counts {1, 8, 27, 64, 125}.
pub fn bubble_series(machine: &Machine, nodes_list: &[usize]) -> Vec<BubblePoint> {
    let base = bubble_point(machine, 1, None).throughput;
    nodes_list
        .iter()
        .map(|&n| bubble_point(machine, n, Some(base)))
        .collect()
}

/// The Figure-3 series re-priced with overlapped stepping, normalized to
/// the bulk-synchronous single-node throughput (shared baseline).
pub fn bubble_series_overlapped(machine: &Machine, nodes_list: &[usize]) -> Vec<BubblePoint> {
    let base = bubble_point(machine, 1, None).throughput;
    nodes_list
        .iter()
        .map(|&n| bubble_point_with(machine, n, Some(base), true))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_near_paper_throughput() {
        // Paper: 11 zones/µs at one node (≈ 20× the CPU node).
        let m = Machine::summit();
        let p = bubble_point(&m, 1, None);
        assert!(
            (p.throughput - 11.0).abs() < 4.0,
            "single-node bubble throughput {}",
            p.throughput
        );
    }

    #[test]
    fn reactions_and_multigrid_balanced_at_one_node() {
        // "...the nuclear burning and the parallel communication needed for
        // the multigrid solve ... are approximately equally balanced."
        let m = Machine::summit();
        let p = bubble_point(&m, 1, None);
        let ratio = p.multigrid_us / p.react_us;
        assert!(
            (0.4..2.5).contains(&ratio),
            "1-node multigrid/react ratio {ratio}"
        );
    }

    #[test]
    fn multigrid_dominates_at_scale() {
        // "at the highest node count studied, about 6x more time is spent
        // in the multigrid solve than in the nuclear reactions solve."
        let m = Machine::summit();
        let p = bubble_point(&m, 125, None);
        let ratio = p.multigrid_us / p.react_us;
        assert!(
            (3.0..12.0).contains(&ratio),
            "125-node multigrid/react ratio {ratio}"
        );
    }

    #[test]
    fn overlap_lifts_the_multigrid_bound_at_scale() {
        // The projection's sync ladder is the paper's scaling killer;
        // collapsing it to one barrier per V-cycle must claw back
        // efficiency at 125 nodes.
        let m = Machine::summit();
        let sync = bubble_point(&m, 125, None);
        let base = bubble_point(&m, 1, None).throughput;
        let s125 = bubble_point(&m, 125, Some(base));
        let o125 = bubble_point_with(&m, 125, Some(base), true);
        assert!(
            o125.normalized > s125.normalized + 0.03,
            "125-node efficiency: overlapped {} vs sync {}",
            o125.normalized,
            s125.normalized
        );
        assert!(o125.multigrid_us < sync.multigrid_us);
    }

    #[test]
    fn efficiency_declines_monotonically() {
        let m = Machine::summit();
        let pts = bubble_series(&m, &[1, 8, 27, 64, 125]);
        assert!((pts[0].normalized - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(
                w[1].normalized <= w[0].normalized + 0.02,
                "{} -> {}",
                w[0].normalized,
                w[1].normalized
            );
        }
        // The paper's curve lands well below 0.5 at 125 nodes.
        assert!(pts[4].normalized < 0.6, "{}", pts[4].normalized);
        assert!(pts[4].normalized > 0.1, "{}", pts[4].normalized);
    }
}
