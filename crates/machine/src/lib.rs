//! # exastro-machine
//!
//! A Summit-like cluster performance simulator: the substitution substrate
//! for the paper's 1–512-node weak-scaling measurements (§IV). Ranks own
//! real `exastro-amr` box decompositions; ghost-exchange and reduction
//! traffic is extracted exactly from those decompositions; and an α–β
//! network model (intra-node NVLink-class transport, shared per-node NIC
//! with fat-tree contention, log-tree collectives) prices it. Absolute
//! throughputs are calibrated to the paper's single-node numbers; the
//! scaling *shapes* are emergent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod model;
pub mod ranks;
pub mod workload;

pub use faults::{FaultEvent, NodeFaultConfig, NodeFaultModel};
pub use fig2::{
    canonical_series, envelope_series, hydro_overlap, overlapped_series, sedov_workload,
    sedov_workload_overlapped, ScalingPoint,
};
pub use fig3::{
    bubble_point, bubble_point_with, bubble_series, bubble_series_overlapped, BubblePoint,
};
pub use model::{
    CpuNodeReference, Machine, NetworkModel, NodeModel, OverlapModel, RankComm, StepTime,
    StepWorkload,
};
pub use ranks::{RankLease, RankPool};
pub use workload::{add_comm, exchange_comm, scale_comm};
