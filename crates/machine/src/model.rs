//! The cluster cost model: Summit-like nodes (6 GPUs, 1 MPI rank per GPU),
//! NVLink-class intra-node transport, and a shared NIC per node with
//! fat-tree contention at scale.
//!
//! Absolute constants are *calibrated* — the paper reports 130 zones/µs per
//! node for the canonical Sedov case and ~63% weak-scaling efficiency at
//! 512 nodes — but the *shape* of every curve comes from the actual
//! communication patterns measured on real multifab data plus this model's
//! α–β costs. EXPERIMENTS.md records the calibration targets.

use exastro_parallel::{DeviceConfig, KernelProfile};

/// Network cost parameters.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Per-message latency, µs (MPI pt2pt).
    pub latency_us: f64,
    /// Intra-node bandwidth per rank (NVLink/shared memory), bytes/µs.
    pub bw_intra: f64,
    /// Inter-node NIC bandwidth per node, bytes/µs (dual-rail EDR ≈ 25 GB/s
    /// ≈ 25000 bytes/µs).
    pub bw_nic: f64,
    /// Fabric contention: effective NIC bandwidth is divided by
    /// `1 + contention · log2(nodes)` (adaptive-routed fat tree under
    /// nearest-neighbour + collective load).
    pub contention: f64,
    /// Allreduce cost: `allreduce_base_us · log2(nranks)` per reduction.
    pub allreduce_base_us: f64,
    /// Synchronization/straggler cost charged per *globally synchronizing
    /// exchange* (multigrid level visits): `sync_noise_us · log2(nodes)`.
    /// Zero at one node; this is the term that makes deep V-cycle ladders
    /// communication-bound at scale (§IV-B).
    pub sync_noise_us: f64,
}

/// Parallel-filesystem cost parameters: a checkpoint write is priced with
/// an α–β model, `latency + bytes / bw_eff(nodes)`, where the effective
/// bandwidth scales with participating nodes until the burst-buffer /
/// filesystem aggregate peak saturates.
#[derive(Clone, Debug)]
pub struct FsModel {
    /// Fixed per-checkpoint latency (metadata, open/close storms), µs.
    pub write_latency_us: f64,
    /// Sustained write bandwidth one node can drive, bytes/µs.
    pub bw_node_bytes_per_us: f64,
    /// Aggregate filesystem peak write bandwidth, bytes/µs.
    pub bw_peak_bytes_per_us: f64,
}

impl FsModel {
    /// Effective aggregate write bandwidth at `nodes` writers, bytes/µs.
    pub fn bw_eff(&self, nodes: usize) -> f64 {
        (nodes.max(1) as f64 * self.bw_node_bytes_per_us).min(self.bw_peak_bytes_per_us)
    }
}

/// One node of the machine.
#[derive(Clone, Debug)]
pub struct NodeModel {
    /// GPUs (= MPI ranks) per node.
    pub gpus_per_node: usize,
    /// The accelerator model.
    pub gpu: DeviceConfig,
}

/// The simulated cluster.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Node description.
    pub node: NodeModel,
    /// Interconnect description.
    pub network: NetworkModel,
    /// Parallel filesystem description (checkpoint writes).
    pub fs: FsModel,
}

impl Machine {
    /// A Summit-like machine, calibrated against the paper's single-node
    /// throughputs.
    pub fn summit() -> Self {
        Machine {
            node: NodeModel {
                gpus_per_node: 6,
                gpu: DeviceConfig::v100(),
            },
            network: NetworkModel {
                latency_us: 2.0,
                bw_intra: 50_000.0, // ~50 GB/s effective shared-memory
                bw_nic: 25_000.0,   // ~25 GB/s dual-rail EDR per node
                contention: 0.30,
                allreduce_base_us: 12.0,
                sync_noise_us: 18.0,
            },
            fs: FsModel {
                write_latency_us: 5_000.0,      // metadata + open/close storm
                bw_node_bytes_per_us: 12_500.0, // ~12.5 GB/s per node to Alpine
                bw_peak_bytes_per_us: 2.5e6,    // ~2.5 TB/s aggregate GPFS peak
            },
        }
    }

    /// Time (µs) for `nodes` nodes to write a `bytes`-sized checkpoint to
    /// the parallel filesystem (α–β: latency + bandwidth-limited transfer).
    pub fn checkpoint_write_us(&self, bytes: u64, nodes: usize) -> f64 {
        self.fs.write_latency_us + bytes as f64 / self.fs.bw_eff(nodes)
    }

    /// Node index of a rank (ranks are packed onto nodes).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.node.gpus_per_node
    }

    /// Compute time (µs) for one rank's set of kernel launches: each entry
    /// is `(zones, profile)`.
    pub fn compute_time_us(&self, launches: &[(i64, KernelProfile)]) -> f64 {
        let dev = exastro_parallel::SimDevice::new(self.node.gpu.clone());
        let mut t = 0.0;
        for (zones, prof) in launches {
            t += self.node.gpu.launch_overhead_us + dev.kernel_time_us(*zones, prof);
        }
        t
    }

    /// Effective NIC bandwidth at `nodes` nodes.
    pub fn nic_bw_eff(&self, nodes: usize) -> f64 {
        self.network.bw_nic / (1.0 + self.network.contention * (nodes.max(1) as f64).log2())
    }

    /// Allreduce time at `nranks` ranks.
    pub fn allreduce_us(&self, nranks: usize) -> f64 {
        self.network.allreduce_base_us * (nranks.max(2) as f64).log2()
    }
}

/// Reference throughputs of a previous-generation CPU node (dual-socket
/// Xeon, Cori/Edison-class), used for the paper's "~20× a CPU node" claims.
/// The paper states the zones/µs metric "is O(1) for a modern high-end CPU
/// server node running a standard pure hydrodynamics test case" (§IV) and
/// that the bubble's GPU-node throughput is "about a factor of 20 higher
/// than the single-node CPU throughput" (§IV-B).
#[derive(Clone, Copy, Debug)]
pub struct CpuNodeReference {
    /// Pure-hydro (Sedov-class) throughput, zones/µs.
    pub sedov_zones_per_us: f64,
    /// Reacting-bubble throughput, zones/µs.
    pub bubble_zones_per_us: f64,
}

impl Default for CpuNodeReference {
    fn default() -> Self {
        CpuNodeReference {
            sedov_zones_per_us: 6.5,
            bubble_zones_per_us: 0.55,
        }
    }
}

/// Aggregated communication for one rank in one step.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankComm {
    /// Messages sent to ranks on the same node.
    pub intra_msgs: u64,
    /// Bytes sent to ranks on the same node.
    pub intra_bytes: u64,
    /// Messages sent to other nodes.
    pub inter_msgs: u64,
    /// Bytes sent to other nodes.
    pub inter_bytes: u64,
}

/// Comm/compute overlap description for a step that uses the task-graph
/// two-phase exchange (`MultiFab::post_fill_boundary` + graph stepping):
/// while halos are in flight each rank advances its stencil-interior
/// zones, so up to `interior_fraction` of the rank's compute time is
/// available to hide point-to-point communication behind.
#[derive(Clone, Copy, Debug)]
pub struct OverlapModel {
    /// Fraction of a rank's compute that needs no ghost zones (the
    /// interior work runnable while halos fly), in `[0, 1]`.
    pub interior_fraction: f64,
    /// Task-graph scheduling overhead charged per rank per step, µs
    /// (dependency bookkeeping, ready-queue contention).
    pub scheduler_overhead_us: f64,
}

impl OverlapModel {
    /// The fraction of communication time this model predicts gets hidden
    /// behind compute, given *measured* per-step totals: the same
    /// `min(p2p, interior_fraction · compute)` rule [`Machine::simulate_step`]
    /// prices, expressed as `hidden / comm` so it is directly comparable to
    /// the measured overlap efficiency a graph trace reports
    /// (`telemetry::graphtrace`). Returns 1 when there is no communication
    /// to hide.
    pub fn predicted_hidden_fraction(&self, compute_us: f64, comm_us: f64) -> f64 {
        if comm_us <= 0.0 {
            return 1.0;
        }
        let hidden = comm_us.min(self.interior_fraction.clamp(0.0, 1.0) * compute_us.max(0.0));
        hidden / comm_us
    }
}

/// A full step description for the cluster simulator.
#[derive(Clone, Debug, Default)]
pub struct StepWorkload {
    /// Number of ranks.
    pub nranks: usize,
    /// Per-rank compute launches `(zones, profile)`.
    pub compute: Vec<Vec<(i64, KernelProfile)>>,
    /// Per-rank communication totals.
    pub comm: Vec<RankComm>,
    /// Number of global reductions in the step.
    pub allreduces: u64,
    /// Number of globally synchronizing exchanges (e.g. multigrid level
    /// visits), each charged `sync_noise_us · log2(nodes)`.
    pub global_syncs: u64,
    /// Zones advanced by the step (for throughput).
    pub zones_advanced: i64,
    /// Checkpoint payload written during this step (0 on non-checkpoint
    /// steps). Includes the D2H copy on every writing rank plus the
    /// filesystem write, both globally synchronizing.
    pub checkpoint_bytes: u64,
    /// When set, the step runs the task-graph overlapped exchange: each
    /// rank hides `min(p2p, interior_fraction · compute)` of its
    /// point-to-point time behind interior compute, paying the scheduler
    /// overhead. `None` prices the bulk-synchronous path.
    pub overlap: Option<OverlapModel>,
}

/// Timing breakdown of one simulated step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTime {
    /// Slowest rank's compute time, µs.
    pub compute_us: f64,
    /// Slowest rank's point-to-point communication time, µs.
    pub p2p_us: f64,
    /// Collective time, µs.
    pub allreduce_us: f64,
    /// Checkpoint I/O time (D2H drain + filesystem write), µs.
    pub io_us: f64,
    /// Total step wall time, µs.
    pub total_us: f64,
    /// Zones per µs.
    pub throughput: f64,
}

impl Machine {
    /// Price a step: per rank, compute + p2p (intra at NVLink speed, inter
    /// sharing the node NIC) run back-to-back; the step completes when the
    /// slowest rank does, then the collectives are appended.
    pub fn simulate_step(&self, w: &StepWorkload) -> StepTime {
        let nodes = w.nranks.div_ceil(self.node.gpus_per_node);
        let nic_bw = self.nic_bw_eff(nodes);
        // NIC load per node.
        let mut node_inter_bytes = vec![0u64; nodes];
        for (r, c) in w.comm.iter().enumerate() {
            node_inter_bytes[self.node_of(r)] += c.inter_bytes;
        }
        let mut worst = 0.0f64;
        let mut worst_compute = 0.0f64;
        let mut worst_p2p = 0.0f64;
        for r in 0..w.nranks {
            let tc = self.compute_time_us(&w.compute[r]);
            let c = &w.comm[r];
            let t_intra = c.intra_bytes as f64 / self.network.bw_intra
                + c.intra_msgs as f64 * 0.3 * self.network.latency_us;
            let t_inter = node_inter_bytes[self.node_of(r)] as f64 / nic_bw
                + c.inter_msgs as f64 * self.network.latency_us;
            let tp = t_intra + t_inter;
            // Overlapped stepping hides p2p behind interior compute; the
            // exposed p2p is what interior work cannot cover.
            let t_rank = match &w.overlap {
                Some(o) => {
                    let hidden = tp.min(o.interior_fraction.clamp(0.0, 1.0) * tc);
                    tc + (tp - hidden) + o.scheduler_overhead_us
                }
                None => tc + tp,
            };
            if t_rank > worst {
                worst = t_rank;
                worst_compute = tc;
                worst_p2p = tp;
            }
        }
        let t_allreduce = w.allreduces as f64 * self.allreduce_us(w.nranks);
        let t_sync =
            w.global_syncs as f64 * self.network.sync_noise_us * (nodes.max(1) as f64).log2();
        // Checkpoint steps pay the D2H drain (each node's share crosses the
        // CPU↔GPU link) plus the α–β filesystem write, back to back.
        let t_io = if w.checkpoint_bytes > 0 {
            let per_node = w.checkpoint_bytes as f64 / nodes.max(1) as f64;
            per_node / self.node.gpu.d2h_bw_bytes_per_us
                + self.checkpoint_write_us(w.checkpoint_bytes, nodes)
        } else {
            0.0
        };
        let total = worst + t_allreduce + t_sync + t_io;
        StepTime {
            compute_us: worst_compute,
            p2p_us: worst_p2p,
            allreduce_us: t_allreduce,
            io_us: t_io,
            total_us: total,
            throughput: w.zones_advanced as f64 / total.max(1e-30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_compute_only() {
        let m = Machine::summit();
        let w = StepWorkload {
            nranks: 1,
            compute: vec![vec![(64 * 64 * 64, KernelProfile::new(1.0, 128))]],
            comm: vec![RankComm::default()],
            allreduces: 0,
            global_syncs: 0,
            zones_advanced: 64 * 64 * 64,
            checkpoint_bytes: 0,
            overlap: None,
        };
        let t = m.simulate_step(&w);
        assert!(t.p2p_us == 0.0);
        assert!(
            t.throughput > 5.0 && t.throughput < 30.0,
            "{}",
            t.throughput
        );
    }

    #[test]
    fn contention_degrades_nic_with_scale() {
        let m = Machine::summit();
        assert!(m.nic_bw_eff(512) < 0.35 * m.nic_bw_eff(1));
    }

    #[test]
    fn slowest_rank_gates_the_step() {
        let m = Machine::summit();
        let light = vec![(1000i64, KernelProfile::default())];
        let heavy = vec![(1_000_000i64, KernelProfile::default())];
        let w = StepWorkload {
            nranks: 2,
            compute: vec![light.clone(), heavy.clone()],
            comm: vec![RankComm::default(); 2],
            allreduces: 0,
            global_syncs: 0,
            zones_advanced: 1_001_000,
            checkpoint_bytes: 0,
            overlap: None,
        };
        let t_unbalanced = m.simulate_step(&w);
        let w2 = StepWorkload {
            nranks: 2,
            compute: vec![heavy.clone(), heavy],
            comm: vec![RankComm::default(); 2],
            allreduces: 0,
            global_syncs: 0,
            zones_advanced: 2_000_000,
            checkpoint_bytes: 0,
            overlap: None,
        };
        let t_bal = m.simulate_step(&w2);
        assert!((t_unbalanced.total_us - t_bal.total_us).abs() / t_bal.total_us < 1e-9);
        assert!(t_bal.throughput > 1.9 * t_unbalanced.throughput);
    }

    #[test]
    fn inter_node_traffic_costs_more_than_intra() {
        let m = Machine::summit();
        let mk = |intra: u64, inter: u64| StepWorkload {
            nranks: 12,
            compute: vec![vec![]; 12],
            comm: (0..12)
                .map(|_| RankComm {
                    intra_bytes: intra,
                    inter_bytes: inter,
                    intra_msgs: 4,
                    inter_msgs: 4,
                })
                .collect(),
            allreduces: 0,
            global_syncs: 0,
            zones_advanced: 1,
            checkpoint_bytes: 0,
            overlap: None,
        };
        let t_intra = m.simulate_step(&mk(10_000_000, 0));
        let t_inter = m.simulate_step(&mk(0, 10_000_000));
        assert!(
            t_inter.total_us > 3.0 * t_intra.total_us,
            "inter {} vs intra {}",
            t_inter.total_us,
            t_intra.total_us
        );
    }

    #[test]
    fn checkpoint_step_pays_d2h_and_fs_write() {
        let m = Machine::summit();
        let mk = |ckpt: u64| StepWorkload {
            nranks: 6,
            compute: vec![vec![(64 * 64 * 64, KernelProfile::default())]; 6],
            comm: vec![RankComm::default(); 6],
            allreduces: 1,
            global_syncs: 0,
            zones_advanced: 6 * 64 * 64 * 64,
            checkpoint_bytes: ckpt,
            overlap: None,
        };
        let plain = m.simulate_step(&mk(0));
        assert_eq!(plain.io_us, 0.0);
        let bytes = 8u64 * 6 * 64 * 64 * 64 * 10; // ~126 MB of state
        let ckpt = m.simulate_step(&mk(bytes));
        assert!(ckpt.io_us > 0.0);
        let expect =
            bytes as f64 / m.node.gpu.d2h_bw_bytes_per_us + m.checkpoint_write_us(bytes, 1);
        assert!((ckpt.io_us - expect).abs() < 1e-9);
        assert!((ckpt.total_us - plain.total_us - ckpt.io_us).abs() < 1e-9);
        assert!(ckpt.throughput < plain.throughput);
    }

    #[test]
    fn fs_bandwidth_scales_then_saturates() {
        let m = Machine::summit();
        // Small jobs are per-node-bandwidth bound; huge jobs hit the
        // aggregate peak and stop improving.
        let bytes = 10u64 * (1 << 30);
        let t1 = m.checkpoint_write_us(bytes, 1);
        let t64 = m.checkpoint_write_us(bytes, 64);
        let t400 = m.checkpoint_write_us(bytes, 400);
        let t4096 = m.checkpoint_write_us(bytes, 4096);
        assert!(t64 < t1 / 10.0);
        assert!(
            (t400 - t4096).abs() < 1e-9,
            "peak-saturated: {t400} {t4096}"
        );
        // A cadence sweep has a priced optimum: with these costs the
        // checkpoint overhead fraction at cadence k is C/(k·T_step + C).
        let step = m.simulate_step(&mk_step());
        let c = m.simulate_step(&mk_ckpt()).io_us;
        let overhead = |k: f64| c / (k * step.total_us + c);
        assert!(overhead(1.0) > overhead(10.0));
        fn mk_step() -> StepWorkload {
            StepWorkload {
                nranks: 6,
                compute: vec![vec![(64 * 64 * 64, KernelProfile::default())]; 6],
                comm: vec![RankComm::default(); 6],
                allreduces: 1,
                global_syncs: 0,
                zones_advanced: 6 * 64 * 64 * 64,
                checkpoint_bytes: 0,
                overlap: None,
            }
        }
        fn mk_ckpt() -> StepWorkload {
            StepWorkload {
                checkpoint_bytes: 100 << 20,
                ..mk_step()
            }
        }
    }

    #[test]
    fn predicted_hidden_fraction_matches_the_pricing_rule() {
        let m = OverlapModel {
            interior_fraction: 0.5,
            scheduler_overhead_us: 3.0,
        };
        // Comm smaller than the interior budget: fully hidden.
        assert_eq!(m.predicted_hidden_fraction(100.0, 40.0), 1.0);
        // Comm beyond the budget: only interior_fraction·compute hides.
        assert_eq!(m.predicted_hidden_fraction(100.0, 200.0), 0.25);
        // No comm at all: trivially fully hidden.
        assert_eq!(m.predicted_hidden_fraction(100.0, 0.0), 1.0);
        // Fractions clamp into [0, 1].
        let wild = OverlapModel {
            interior_fraction: 7.0,
            scheduler_overhead_us: 0.0,
        };
        assert_eq!(wild.predicted_hidden_fraction(10.0, 100.0), 0.1);
    }

    #[test]
    fn overlap_hides_p2p_up_to_the_interior_fraction() {
        let m = Machine::summit();
        let mk = |overlap: Option<OverlapModel>| StepWorkload {
            nranks: 12,
            compute: vec![vec![(256 * 256 * 256, KernelProfile::default())]; 12],
            comm: (0..12)
                .map(|_| RankComm {
                    inter_bytes: 5_000_000,
                    inter_msgs: 8,
                    ..Default::default()
                })
                .collect(),
            allreduces: 0,
            global_syncs: 0,
            zones_advanced: 12 * 256 * 256 * 256,
            checkpoint_bytes: 0,
            overlap,
        };
        let sync = m.simulate_step(&mk(None));
        let full = m.simulate_step(&mk(Some(OverlapModel {
            interior_fraction: 1.0,
            scheduler_overhead_us: 0.0,
        })));
        // Compute here dwarfs p2p, so a full interior fraction hides all
        // of it: total == compute alone.
        assert!(sync.p2p_us > 0.0);
        assert!((full.total_us - full.compute_us).abs() / full.total_us < 1e-9);
        assert!(full.total_us < sync.total_us);
        // A zero interior fraction only adds the scheduler overhead.
        let none = m.simulate_step(&mk(Some(OverlapModel {
            interior_fraction: 0.0,
            scheduler_overhead_us: 7.0,
        })));
        assert!((none.total_us - (sync.total_us + 7.0)).abs() < 1e-9);
        // Partial fractions land strictly between.
        let half = m.simulate_step(&mk(Some(OverlapModel {
            interior_fraction: 0.5,
            scheduler_overhead_us: 0.0,
        })));
        assert!(half.total_us <= sync.total_us && half.total_us >= full.total_us);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let m = Machine::summit();
        let a6 = m.allreduce_us(6);
        let a3072 = m.allreduce_us(3072);
        assert!(a3072 > a6 && a3072 < 6.0 * a6);
    }
}
