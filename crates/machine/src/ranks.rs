//! Rank pool: the machine as a schedulable resource.
//!
//! The performance model in [`crate::model`] prices *one* job's step on a
//! set of ranks; a multi-tenant service needs the complementary view — the
//! machine as a finite pool of GPU ranks that concurrent jobs lease and
//! release. [`RankPool`] provides exactly that shard view: a fixed universe
//! of rank ids (`nodes × gpus_per_node`), explicit leases, and enough
//! bookkeeping (lowest-free-id placement, node spans) for a scheduler to
//! reason about packing. It is deliberately mechanism-only: admission
//! order, fair share, and preemption policy live in the scheduler that owns
//! the pool, not here.

use crate::model::Machine;

/// A lease of specific rank ids, returned by [`RankPool::try_lease`] and
/// surrendered back via [`RankPool::release`].
///
/// The ids are real positions in the modeled machine (`node =
/// rank / gpus_per_node`), so two leases never alias and a job resumed
/// after preemption generally lands on *different* ranks — which is safe
/// precisely because the simulation state travels in checkpoints, not in
/// rank-local memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankLease {
    ranks: Vec<usize>,
}

impl RankLease {
    /// The leased rank ids, ascending.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of ranks held.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the lease holds no ranks (never produced by `try_lease`).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// A fixed pool of GPU ranks over a modeled machine.
#[derive(Clone, Debug)]
pub struct RankPool {
    gpus_per_node: usize,
    free: Vec<bool>,
    leased: usize,
}

impl RankPool {
    /// A pool spanning `nodes` nodes of `machine` (one rank per GPU).
    pub fn new(machine: &Machine, nodes: usize) -> Self {
        let g = machine.node.gpus_per_node.max(1);
        RankPool {
            gpus_per_node: g,
            free: vec![true; nodes * g],
            leased: 0,
        }
    }

    /// A pool with an explicit rank count (for tests and synthetic sizing);
    /// node spans assume `gpus_per_node` ranks per node.
    pub fn with_ranks(nranks: usize, gpus_per_node: usize) -> Self {
        RankPool {
            gpus_per_node: gpus_per_node.max(1),
            free: vec![true; nranks],
            leased: 0,
        }
    }

    /// Total ranks in the pool.
    pub fn total(&self) -> usize {
        self.free.len()
    }

    /// Ranks currently leased out.
    pub fn leased(&self) -> usize {
        self.leased
    }

    /// Ranks currently available.
    pub fn available(&self) -> usize {
        self.free.len() - self.leased
    }

    /// Ranks per node assumed by [`RankPool::nodes_spanned`].
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Lease `n` ranks, lowest free ids first. Returns `None` (leaving the
    /// pool untouched) when fewer than `n` ranks are free or `n == 0`.
    pub fn try_lease(&mut self, n: usize) -> Option<RankLease> {
        if n == 0 || n > self.available() {
            return None;
        }
        let mut ranks = Vec::with_capacity(n);
        for (id, free) in self.free.iter_mut().enumerate() {
            if *free {
                *free = false;
                ranks.push(id);
                if ranks.len() == n {
                    break;
                }
            }
        }
        debug_assert_eq!(ranks.len(), n);
        self.leased += n;
        Some(RankLease { ranks })
    }

    /// Return a lease's ranks to the pool.
    ///
    /// # Panics
    /// Panics if the lease holds a rank that is not currently leased (a
    /// double release or a lease from a different pool) — both are
    /// scheduler bugs worth failing loudly on.
    pub fn release(&mut self, lease: RankLease) {
        for id in &lease.ranks {
            assert!(
                !self.free[*id],
                "rank {id} released while not leased (double release?)"
            );
            self.free[*id] = true;
        }
        self.leased -= lease.ranks.len();
    }

    /// Number of distinct nodes a lease touches — the `nodes` a scheduler
    /// should charge when pricing the lease's I/O and collectives.
    pub fn nodes_spanned(&self, lease: &RankLease) -> usize {
        let mut nodes: Vec<usize> = lease.ranks.iter().map(|r| r / self.gpus_per_node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizes_from_machine() {
        let m = Machine::summit();
        let pool = RankPool::new(&m, 4);
        assert_eq!(pool.total(), 4 * m.node.gpus_per_node);
        assert_eq!(pool.available(), pool.total());
        assert_eq!(pool.leased(), 0);
    }

    #[test]
    fn lease_release_round_trip_lowest_ids_first() {
        let mut pool = RankPool::with_ranks(8, 4);
        let a = pool.try_lease(3).unwrap();
        assert_eq!(a.ranks(), &[0, 1, 2]);
        let b = pool.try_lease(2).unwrap();
        assert_eq!(b.ranks(), &[3, 4]);
        assert_eq!(pool.available(), 3);
        pool.release(a);
        assert_eq!(pool.available(), 6);
        // Freed ids are reusable, still lowest-first.
        let c = pool.try_lease(4).unwrap();
        assert_eq!(c.ranks(), &[0, 1, 2, 5]);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.available(), 8);
    }

    #[test]
    fn oversubscription_is_refused_not_partial() {
        let mut pool = RankPool::with_ranks(4, 4);
        let a = pool.try_lease(3).unwrap();
        assert!(pool.try_lease(2).is_none());
        assert_eq!(pool.available(), 1, "failed lease must not consume ranks");
        assert!(pool.try_lease(0).is_none());
        pool.release(a);
    }

    #[test]
    fn nodes_spanned_counts_distinct_nodes() {
        let mut pool = RankPool::with_ranks(12, 6);
        let a = pool.try_lease(6).unwrap(); // ranks 0..6 = node 0
        assert_eq!(pool.nodes_spanned(&a), 1);
        let b = pool.try_lease(2).unwrap(); // ranks 6,7 = node 1
        assert_eq!(pool.nodes_spanned(&b), 1);
        pool.release(a);
        let c = pool.try_lease(8).unwrap(); // 0..6 + 8,9 → spans both nodes
        assert_eq!(pool.nodes_spanned(&c), 2);
        pool.release(b);
        pool.release(c);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = RankPool::with_ranks(4, 4);
        let a = pool.try_lease(2).unwrap();
        pool.release(a.clone());
        pool.release(a);
    }
}
