//! Rank pool: the machine as a schedulable resource.
//!
//! The performance model in [`crate::model`] prices *one* job's step on a
//! set of ranks; a multi-tenant service needs the complementary view — the
//! machine as a finite pool of GPU ranks that concurrent jobs lease and
//! release. [`RankPool`] provides exactly that shard view: a fixed universe
//! of rank ids (`nodes × gpus_per_node`), explicit leases, and enough
//! bookkeeping (lowest-free-id placement, node spans) for a scheduler to
//! reason about packing. It is deliberately mechanism-only: admission
//! order, fair share, and preemption policy live in the scheduler that owns
//! the pool, not here.
//!
//! Ranks are not immortal: [`RankPool::fail_rank`]/[`fail_node`]
//! (driven by [`crate::NodeFaultModel`]) take ranks out of service, a
//! lease whose ranks died is surrendered through
//! [`RankPool::revoke_failed`] — which reports the casualties instead of
//! panicking — and [`repair_node`] returns capacity.
//!
//! [`fail_node`]: RankPool::fail_node
//! [`repair_node`]: RankPool::repair_node

use crate::model::Machine;

/// A lease of specific rank ids, returned by [`RankPool::try_lease`] and
/// surrendered back via [`RankPool::release`] (healthy) or
/// [`RankPool::revoke_failed`] (after its ranks died).
///
/// The ids are real positions in the modeled machine (`node =
/// rank / gpus_per_node`), so two leases never alias and a job resumed
/// after preemption generally lands on *different* ranks — which is safe
/// precisely because the simulation state travels in checkpoints, not in
/// rank-local memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankLease {
    ranks: Vec<usize>,
}

impl RankLease {
    /// The leased rank ids, ascending.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of ranks held.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the lease holds no ranks (never produced by `try_lease`).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// Lifecycle of one rank in the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RankState {
    /// In service, available for leasing.
    Free,
    /// In service, held by an outstanding lease.
    Leased,
    /// Out of service (its node died) and not held by any lease.
    Failed,
    /// Out of service *while held*: the node died under a live lease.
    /// The holder must surrender via [`RankPool::revoke_failed`].
    FailedLeased,
}

/// A fixed pool of GPU ranks over a modeled machine.
#[derive(Clone, Debug)]
pub struct RankPool {
    gpus_per_node: usize,
    state: Vec<RankState>,
    leased: usize,
}

impl RankPool {
    /// A pool spanning `nodes` nodes of `machine` (one rank per GPU).
    pub fn new(machine: &Machine, nodes: usize) -> Self {
        let g = machine.node.gpus_per_node.max(1);
        RankPool {
            gpus_per_node: g,
            state: vec![RankState::Free; nodes * g],
            leased: 0,
        }
    }

    /// A pool with an explicit rank count (for tests and synthetic sizing);
    /// node spans assume `gpus_per_node` ranks per node.
    pub fn with_ranks(nranks: usize, gpus_per_node: usize) -> Self {
        RankPool {
            gpus_per_node: gpus_per_node.max(1),
            state: vec![RankState::Free; nranks],
            leased: 0,
        }
    }

    /// Total ranks in the pool (in service or not).
    pub fn total(&self) -> usize {
        self.state.len()
    }

    /// Ranks currently leased out (including failed-under-lease ranks
    /// whose leases have not been revoked yet).
    pub fn leased(&self) -> usize {
        self.leased
    }

    /// Ranks currently available for leasing (in service and free).
    pub fn available(&self) -> usize {
        self.state.iter().filter(|s| **s == RankState::Free).count()
    }

    /// Ranks currently in service (not failed), leased or not. A gang
    /// needing more than this cannot run until repairs land — the
    /// scheduler's graceful-degradation check.
    pub fn in_service(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, RankState::Free | RankState::Leased))
            .count()
    }

    /// Ranks currently out of service.
    pub fn failed(&self) -> usize {
        self.total() - self.in_service()
    }

    /// Ranks per node assumed by [`RankPool::nodes_spanned`].
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Node index of a rank.
    fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Lease `n` ranks, lowest free ids first. Returns `None` (leaving the
    /// pool untouched) when fewer than `n` ranks are free or `n == 0`.
    pub fn try_lease(&mut self, n: usize) -> Option<RankLease> {
        self.try_lease_avoiding(n, &[])
    }

    /// Lease `n` ranks, preferring ranks *not* on any node in
    /// `avoid_nodes` (straggler-aware placement); falls back to avoided
    /// nodes only when the healthy ranks alone cannot satisfy the gang.
    /// Within each preference tier, lowest ids win. Returns `None` when
    /// fewer than `n` ranks are free in total.
    pub fn try_lease_avoiding(&mut self, n: usize, avoid_nodes: &[usize]) -> Option<RankLease> {
        if n == 0 {
            return None;
        }
        let mut ranks: Vec<usize> = Vec::with_capacity(n);
        for (id, s) in self.state.iter().enumerate() {
            if *s == RankState::Free && !avoid_nodes.contains(&self.node_of(id)) {
                ranks.push(id);
                if ranks.len() == n {
                    break;
                }
            }
        }
        if ranks.len() < n && !avoid_nodes.is_empty() {
            for (id, s) in self.state.iter().enumerate() {
                if *s == RankState::Free && avoid_nodes.contains(&self.node_of(id)) {
                    ranks.push(id);
                    if ranks.len() == n {
                        break;
                    }
                }
            }
        }
        if ranks.len() < n {
            return None;
        }
        ranks.sort_unstable();
        for &id in &ranks {
            self.state[id] = RankState::Leased;
        }
        self.leased += n;
        Some(RankLease { ranks })
    }

    /// Free ranks outside the given nodes — the healthy headroom a
    /// straggler migration can actually move a gang into.
    pub fn free_outside(&self, avoid_nodes: &[usize]) -> usize {
        self.state
            .iter()
            .enumerate()
            .filter(|(id, s)| **s == RankState::Free && !avoid_nodes.contains(&self.node_of(*id)))
            .count()
    }

    /// Return a *healthy* lease's ranks to the pool.
    ///
    /// # Panics
    /// Panics if the lease holds a rank that is not currently leased (a
    /// double release or a lease from a different pool) — both are
    /// scheduler bugs worth failing loudly on — or a rank that failed
    /// under the lease, which must go through
    /// [`RankPool::revoke_failed`] instead so the casualty is accounted.
    pub fn release(&mut self, lease: RankLease) {
        for id in &lease.ranks {
            match self.state[*id] {
                RankState::Leased => self.state[*id] = RankState::Free,
                RankState::FailedLeased => {
                    panic!("rank {id} failed under its lease; use revoke_failed, not release")
                }
                RankState::Free | RankState::Failed => {
                    panic!("rank {id} released while not leased (double release?)")
                }
            }
        }
        self.leased -= lease.ranks.len();
    }

    /// Surrender a lease some of whose ranks died. Surviving ranks return
    /// to the free pool; dead ranks stay out of service until repaired.
    /// Returns the dead rank ids (possibly empty, e.g. when the node was
    /// killed *and* repaired within one scheduling window).
    ///
    /// # Panics
    /// Panics if the lease holds a rank that is not currently leased —
    /// a double revocation is as much a scheduler bug as a double release.
    pub fn revoke_failed(&mut self, lease: RankLease) -> Vec<usize> {
        let mut dead = Vec::new();
        for id in &lease.ranks {
            match self.state[*id] {
                RankState::Leased => self.state[*id] = RankState::Free,
                RankState::FailedLeased => {
                    self.state[*id] = RankState::Failed;
                    dead.push(*id);
                }
                RankState::Free | RankState::Failed => {
                    panic!("rank {id} revoked while not leased (double revoke?)")
                }
            }
        }
        self.leased -= lease.ranks.len();
        dead
    }

    /// Take one rank out of service. A free rank simply leaves the pool;
    /// a leased rank is marked failed-under-lease and its holder's lease
    /// becomes compromised (see [`RankPool::lease_compromised`]). Returns
    /// true when the rank was newly failed.
    pub fn fail_rank(&mut self, rank: usize) -> bool {
        match self.state[rank] {
            RankState::Free => {
                self.state[rank] = RankState::Failed;
                true
            }
            RankState::Leased => {
                self.state[rank] = RankState::FailedLeased;
                true
            }
            RankState::Failed | RankState::FailedLeased => false,
        }
    }

    /// Take every rank of `node` out of service; returns how many ranks
    /// were newly failed.
    pub fn fail_node(&mut self, node: usize) -> usize {
        self.node_ranks(node).filter(|&r| self.fail_rank(r)).count()
    }

    /// Return every rank of `node` to service. Failed-free ranks become
    /// leasable again; a rank that failed *under a lease* returns to the
    /// leased state (its holder's pending revocation then simply finds no
    /// casualties). Returns how many ranks were repaired.
    pub fn repair_node(&mut self, node: usize) -> usize {
        let mut repaired = 0;
        let (lo, hi) = self.node_span(node);
        for r in lo..hi {
            match self.state[r] {
                RankState::Failed => {
                    self.state[r] = RankState::Free;
                    repaired += 1;
                }
                RankState::FailedLeased => {
                    self.state[r] = RankState::Leased;
                    repaired += 1;
                }
                _ => {}
            }
        }
        repaired
    }

    /// True when any rank of `lease` has failed under it.
    pub fn lease_compromised(&self, lease: &RankLease) -> bool {
        lease
            .ranks
            .iter()
            .any(|&r| self.state[r] == RankState::FailedLeased)
    }

    /// The rank-id range `[lo, hi)` of `node`.
    fn node_span(&self, node: usize) -> (usize, usize) {
        let lo = node * self.gpus_per_node;
        (
            lo.min(self.state.len()),
            ((node + 1) * self.gpus_per_node).min(self.state.len()),
        )
    }

    /// Iterator over the rank ids of `node`.
    fn node_ranks(&self, node: usize) -> std::ops::Range<usize> {
        let (lo, hi) = self.node_span(node);
        lo..hi
    }

    /// Number of distinct nodes a lease touches — the `nodes` a scheduler
    /// should charge when pricing the lease's I/O and collectives.
    pub fn nodes_spanned(&self, lease: &RankLease) -> usize {
        let mut nodes: Vec<usize> = lease.ranks.iter().map(|r| r / self.gpus_per_node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizes_from_machine() {
        let m = Machine::summit();
        let pool = RankPool::new(&m, 4);
        assert_eq!(pool.total(), 4 * m.node.gpus_per_node);
        assert_eq!(pool.available(), pool.total());
        assert_eq!(pool.in_service(), pool.total());
        assert_eq!(pool.leased(), 0);
        assert_eq!(pool.failed(), 0);
    }

    #[test]
    fn lease_release_round_trip_lowest_ids_first() {
        let mut pool = RankPool::with_ranks(8, 4);
        let a = pool.try_lease(3).unwrap();
        assert_eq!(a.ranks(), &[0, 1, 2]);
        let b = pool.try_lease(2).unwrap();
        assert_eq!(b.ranks(), &[3, 4]);
        assert_eq!(pool.available(), 3);
        pool.release(a);
        assert_eq!(pool.available(), 6);
        // Freed ids are reusable, still lowest-first.
        let c = pool.try_lease(4).unwrap();
        assert_eq!(c.ranks(), &[0, 1, 2, 5]);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.available(), 8);
    }

    #[test]
    fn oversubscription_is_refused_not_partial() {
        let mut pool = RankPool::with_ranks(4, 4);
        let a = pool.try_lease(3).unwrap();
        assert!(pool.try_lease(2).is_none());
        assert_eq!(pool.available(), 1, "failed lease must not consume ranks");
        assert!(pool.try_lease(0).is_none());
        pool.release(a);
    }

    #[test]
    fn nodes_spanned_counts_distinct_nodes() {
        let mut pool = RankPool::with_ranks(12, 6);
        let a = pool.try_lease(6).unwrap(); // ranks 0..6 = node 0
        assert_eq!(pool.nodes_spanned(&a), 1);
        let b = pool.try_lease(2).unwrap(); // ranks 6,7 = node 1
        assert_eq!(pool.nodes_spanned(&b), 1);
        pool.release(a);
        let c = pool.try_lease(8).unwrap(); // 0..6 + 8,9 → spans both nodes
        assert_eq!(pool.nodes_spanned(&c), 2);
        pool.release(b);
        pool.release(c);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = RankPool::with_ranks(4, 4);
        let a = pool.try_lease(2).unwrap();
        pool.release(a.clone());
        pool.release(a);
    }

    #[test]
    fn failed_free_ranks_leave_the_pool_and_repair_returns_them() {
        let mut pool = RankPool::with_ranks(8, 4);
        assert_eq!(pool.fail_node(1), 4); // ranks 4..8
        assert_eq!(pool.available(), 4);
        assert_eq!(pool.in_service(), 4);
        assert_eq!(pool.failed(), 4);
        // Leases route around the dead node.
        let a = pool.try_lease(4).unwrap();
        assert_eq!(a.ranks(), &[0, 1, 2, 3]);
        assert!(pool.try_lease(1).is_none(), "dead ranks must not lease");
        assert_eq!(pool.repair_node(1), 4);
        let b = pool.try_lease(2).unwrap();
        assert_eq!(b.ranks(), &[4, 5]);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.available(), 8);
    }

    #[test]
    fn node_failure_compromises_the_lease_and_revoke_reports_casualties() {
        let mut pool = RankPool::with_ranks(12, 6);
        let gang = pool.try_lease(8).unwrap(); // nodes 0 and 1
        assert!(!pool.lease_compromised(&gang));
        assert_eq!(pool.fail_node(1), 6); // ranks 6..12: 6,7 leased, 8..12 free
        assert!(pool.lease_compromised(&gang));
        assert_eq!(pool.in_service(), 6);
        let dead = pool.revoke_failed(gang);
        assert_eq!(
            dead,
            vec![6, 7],
            "exactly the leased ranks on the dead node"
        );
        assert_eq!(pool.leased(), 0);
        // Node 0's survivors are free again; node 1 stays out of service.
        assert_eq!(pool.available(), 6);
        assert_eq!(pool.failed(), 6);
        assert_eq!(pool.repair_node(1), 6);
        assert_eq!(pool.available(), 12);
    }

    #[test]
    fn revoke_of_a_healthy_lease_is_a_plain_surrender() {
        // A node killed *and* repaired inside one scheduling window: the
        // lease was doomed (the scheduler saw the kill event) but by
        // revocation time the ranks are healthy again — no casualties.
        let mut pool = RankPool::with_ranks(6, 6);
        let lease = pool.try_lease(6).unwrap();
        pool.fail_node(0);
        pool.repair_node(0);
        let dead = pool.revoke_failed(lease);
        assert!(dead.is_empty());
        assert_eq!(pool.available(), 6);
    }

    #[test]
    #[should_panic(expected = "use revoke_failed")]
    fn releasing_a_compromised_lease_panics_toward_revoke() {
        let mut pool = RankPool::with_ranks(6, 6);
        let lease = pool.try_lease(6).unwrap();
        pool.fail_node(0);
        pool.release(lease);
    }

    #[test]
    #[should_panic(expected = "double revoke")]
    fn double_revoke_panics_like_double_release() {
        // The two surrender paths must not be confusable: a lease already
        // revoked (ranks back to Free/Failed) fails loudly on re-revoke,
        // exactly as release fails on double release.
        let mut pool = RankPool::with_ranks(6, 6);
        let lease = pool.try_lease(3).unwrap();
        pool.fail_node(0);
        pool.revoke_failed(lease.clone());
        pool.revoke_failed(lease);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn release_after_revoke_is_still_a_double_release() {
        let mut pool = RankPool::with_ranks(4, 4);
        let lease = pool.try_lease(2).unwrap();
        pool.revoke_failed(lease.clone()); // healthy revoke: ranks → Free
        pool.release(lease); // second surrender must die loudly
    }

    #[test]
    fn avoiding_placement_prefers_healthy_nodes_then_falls_back() {
        let mut pool = RankPool::with_ranks(12, 4); // nodes 0,1,2
                                                    // Prefer off node 0: placement starts at node 1.
        let a = pool.try_lease_avoiding(4, &[0]).unwrap();
        assert_eq!(a.ranks(), &[4, 5, 6, 7]);
        assert_eq!(pool.free_outside(&[0]), 4);
        // Healthy capacity exhausted mid-gang: falls back onto node 0,
        // still lowest-id-first within each tier, lease sorted ascending.
        let b = pool.try_lease_avoiding(6, &[0]).unwrap();
        assert_eq!(b.ranks(), &[0, 1, 8, 9, 10, 11]);
        // Nothing free at all → refused, pool untouched.
        assert!(pool.try_lease_avoiding(3, &[0]).is_none());
        assert_eq!(pool.available(), 2);
        pool.release(a);
        pool.release(b);
    }
}
