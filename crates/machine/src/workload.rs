//! Workload extraction: turn real box decompositions and distribution maps
//! into per-rank communication totals for the cluster simulator.

use crate::model::{Machine, RankComm};
use exastro_amr::{BoxArray, DistributionMapping, IndexBox, IntVect};
use std::collections::HashMap;

/// Ghost-exchange communication per rank for one fill of a multifab on
/// `(ba, dm)` with `ngrow` ghost zones and `ncomp` components, under
/// periodic boundaries in the given dims.
///
/// Bytes are attributed to the *sending* rank. Same-rank copies are free
/// (local memcpy); same-node copies use the intra-node transport; the rest
/// cross the NIC. A uniform aligned decomposition (the scaling studies) is
/// detected and resolved with O(1) neighbour lookups so that 512-node
/// (32768-box) patterns stay cheap to build.
pub fn exchange_comm(
    ba: &BoxArray,
    dm: &DistributionMapping,
    machine: &Machine,
    domain: IndexBox,
    periodic: [bool; 3],
    ngrow: i32,
    ncomp: usize,
) -> Vec<RankComm> {
    let nranks = dm.nranks();
    let mut comm = vec![RankComm::default(); nranks];
    if ba.is_empty() {
        return comm;
    }
    // Uniform fast path?
    let size0 = ba.get(0).size();
    let uniform = ba.iter().all(|b| {
        b.size() == size0
            && b.lo().x() % size0.x() == 0
            && b.lo().y() % size0.y() == 0
            && b.lo().z() % size0.z() == 0
    });
    let index_of: HashMap<IntVect, usize> =
        ba.iter().enumerate().map(|(i, b)| (b.lo(), i)).collect();
    let n = domain.size();
    let wrap = |mut lo: IntVect| -> IntVect {
        for d in 0..3 {
            if periodic[d] {
                lo[d] = lo[d].rem_euclid(n[d]);
            }
        }
        lo
    };
    for dst in 0..ba.len() {
        let dvb = ba.get(dst);
        let gb = dvb.grow(ngrow);
        let dst_rank = dm.owner(dst);
        let mut visit = |src: usize, src_image: IndexBox| {
            if src == dst && src_image == ba.get(src) {
                return;
            }
            let isect = gb.intersection(&src_image);
            if isect.is_empty() {
                return;
            }
            // Exclude the destination's own valid zones.
            let mut zones = 0i64;
            for part in isect.difference(&dvb) {
                zones += part.num_zones();
            }
            if zones == 0 {
                return;
            }
            let bytes = zones as u64 * ncomp as u64 * 8;
            let src_rank = dm.owner(src);
            if src_rank == dst_rank {
                return; // on-rank copy
            }
            let c = &mut comm[src_rank];
            if machine.node_of(src_rank) == machine.node_of(dst_rank) {
                c.intra_msgs += 1;
                c.intra_bytes += bytes;
            } else {
                c.inter_msgs += 1;
                c.inter_bytes += bytes;
            }
        };
        if uniform {
            // 26 neighbours by index arithmetic (+ periodic wrap).
            for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let shift = IntVect::new(dx * size0.x(), dy * size0.y(), dz * size0.z());
                        let nlo = dvb.lo() + shift;
                        let wrapped = wrap(nlo);
                        if let Some(&src) = index_of.get(&wrapped) {
                            // The image of src adjacent to dst sits at nlo.
                            let image = IndexBox::new(nlo, nlo + size0 - IntVect::unit());
                            visit(src, image);
                        }
                    }
                }
            }
        } else {
            // General path: brute force with periodic images.
            let shifts: Vec<IntVect> = {
                let mut v = vec![IntVect::zero()];
                for d in 0..3 {
                    if periodic[d] {
                        let mut extended = Vec::new();
                        for s in &v {
                            let mut p = *s;
                            p[d] += n[d];
                            let mut m = *s;
                            m[d] -= n[d];
                            extended.push(p);
                            extended.push(m);
                        }
                        v.extend(extended);
                    }
                }
                v
            };
            for src in 0..ba.len() {
                for &s in &shifts {
                    visit(src, ba.get(src).shift(s));
                }
            }
        }
    }
    comm
}

/// Merge the communication of several fills/exchanges.
pub fn scale_comm(comm: &[RankComm], factor: f64) -> Vec<RankComm> {
    comm.iter()
        .map(|c| RankComm {
            intra_msgs: (c.intra_msgs as f64 * factor).round() as u64,
            intra_bytes: (c.intra_bytes as f64 * factor).round() as u64,
            inter_msgs: (c.inter_msgs as f64 * factor).round() as u64,
            inter_bytes: (c.inter_bytes as f64 * factor).round() as u64,
        })
        .collect()
}

/// Element-wise sum of two per-rank communication vectors.
pub fn add_comm(a: &mut [RankComm], b: &[RankComm]) {
    for (x, y) in a.iter_mut().zip(b) {
        x.intra_msgs += y.intra_msgs;
        x.intra_bytes += y.intra_bytes;
        x.inter_msgs += y.inter_msgs;
        x.inter_bytes += y.inter_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::{DistStrategy, Geometry, MultiFab};

    #[test]
    fn uniform_fast_path_matches_real_fill_boundary() {
        let machine = Machine::summit();
        let geom = Geometry::cube(64, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), 16, 16); // 64 boxes
        let dm = DistributionMapping::new(&ba, 12, DistStrategy::Knapsack);
        let comm = exchange_comm(&ba, &dm, &machine, geom.domain(), [true; 3], 2, 5);
        // Ground truth from the real ghost exchange.
        let mut mf = MultiFab::new(ba, dm, 5, 2);
        let trace = mf.fill_boundary(&geom);
        let model_total: u64 = comm.iter().map(|c| c.intra_bytes + c.inter_bytes).sum();
        // The trace includes same-rank copies in local_bytes; the model
        // drops them. Cross-rank bytes must agree exactly.
        assert_eq!(model_total, trace.network_bytes());
    }

    #[test]
    fn nonuniform_fallback_agrees_too() {
        let machine = Machine::summit();
        let geom = Geometry::cube(48, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), 20, 4); // ragged boxes
        let dm = DistributionMapping::new(&ba, 7, DistStrategy::RoundRobin);
        let comm = exchange_comm(&ba, &dm, &machine, geom.domain(), [true; 3], 1, 3);
        let mut mf = MultiFab::new(ba, dm, 3, 1);
        let trace = mf.fill_boundary(&geom);
        let model_total: u64 = comm.iter().map(|c| c.intra_bytes + c.inter_bytes).sum();
        assert_eq!(model_total, trace.network_bytes());
    }

    #[test]
    fn single_rank_has_no_network_traffic() {
        let machine = Machine::summit();
        let geom = Geometry::cube(32, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), 16, 16);
        let dm = DistributionMapping::all_local(&ba);
        let comm = exchange_comm(&ba, &dm, &machine, geom.domain(), [true; 3], 2, 5);
        assert!(comm
            .iter()
            .all(|c| c.intra_bytes == 0 && c.inter_bytes == 0));
    }

    #[test]
    fn scale_and_add_comm() {
        let base = vec![RankComm {
            intra_msgs: 2,
            intra_bytes: 100,
            inter_msgs: 4,
            inter_bytes: 200,
        }];
        let tripled = scale_comm(&base, 3.0);
        assert_eq!(tripled[0].inter_bytes, 600);
        let mut acc = base.clone();
        add_comm(&mut acc, &tripled);
        assert_eq!(acc[0].intra_bytes, 400);
        assert_eq!(acc[0].inter_msgs, 16);
    }
}
