//! The 1-D hydrostatic base state of the low-Mach-number model.
//!
//! MAESTROeX expands the thermodynamics about a time-evolving hydrostatic
//! base state `ρ₀(z), p₀(z)`; the full state carries only perturbations.
//! For the reacting-bubble problem the base state is a plane-parallel,
//! isothermal-ish white-dwarf atmosphere under constant gravity, matching
//! the setup of Almgren et al. (2008), §IV-B of the paper.

use exastro_microphysics::{Composition, Eos};
use exastro_parallel::Real;

/// A plane-parallel hydrostatic base state, sampled at zone centres.
#[derive(Clone, Debug)]
pub struct BaseState {
    /// Base density per z index.
    pub rho0: Vec<Real>,
    /// Base pressure per z index.
    pub p0: Vec<Real>,
    /// Base temperature per z index.
    pub t0: Vec<Real>,
    /// Constant gravitational acceleration (pointing in −z; positive
    /// magnitude).
    pub grav: Real,
    /// Zone height.
    pub dz: Real,
}

impl BaseState {
    /// Integrate hydrostatic equilibrium `dp/dz = −ρ g` downward from the
    /// base density/temperature at z = 0 with an isothermal temperature
    /// profile, `nz` zones of height `dz`.
    pub fn plane_parallel(
        nz: usize,
        dz: Real,
        rho_base: Real,
        t_base: Real,
        grav: Real,
        eos: &dyn Eos,
        comp: &Composition,
    ) -> Self {
        let mut rho0 = vec![0.0; nz];
        let mut p0 = vec![0.0; nz];
        let t0 = vec![t_base; nz];
        rho0[0] = rho_base;
        p0[0] = eos.eval_rt(rho_base, t_base, comp).p;
        for k in 1..nz {
            // Predictor-corrector hydrostatic integration: find ρ at k such
            // that p(ρ, T) = p[k-1] − 0.5 (ρ[k-1] + ρ) g dz.
            let mut rho = rho0[k - 1];
            for _ in 0..50 {
                let target_p = p0[k - 1] - 0.5 * (rho0[k - 1] + rho) * grav * dz;
                let r = eos.eval_rt(rho, t_base, comp);
                let f = r.p - target_p;
                let dfdrho = r.dpdr + 0.5 * grav * dz;
                let drho = -f / dfdrho;
                rho += drho.clamp(-0.5 * rho, 0.5 * rho);
                if (drho / rho).abs() < 1e-13 {
                    break;
                }
            }
            rho0[k] = rho.max(1e-10);
            p0[k] = p0[k - 1] - 0.5 * (rho0[k - 1] + rho0[k]) * grav * dz;
        }
        BaseState {
            rho0,
            p0,
            t0,
            grav,
            dz,
        }
    }

    /// Number of vertical zones.
    pub fn nz(&self) -> usize {
        self.rho0.len()
    }

    /// Residual of the discrete hydrostatic balance, for testing:
    /// max |Δp/Δz + ρ̄ g| / (ρ̄ g).
    pub fn hydrostatic_residual(&self) -> Real {
        let mut worst: Real = 0.0;
        for k in 1..self.nz() {
            let dpdz = (self.p0[k] - self.p0[k - 1]) / self.dz;
            let rho_bar = 0.5 * (self.rho0[k] + self.rho0[k - 1]);
            let res = (dpdz + rho_bar * self.grav).abs() / (rho_bar * self.grav);
            worst = worst.max(res);
        }
        worst
    }
}

/// Solve `ρ` such that `p(ρ, T, comp) = p_target` (the low-Mach density
/// constraint at fixed base pressure). Newton with the EOS `∂p/∂ρ`.
pub fn rho_from_p_t(
    p_target: Real,
    t: Real,
    comp: &Composition,
    eos: &dyn Eos,
    rho_guess: Real,
) -> Real {
    let mut rho = rho_guess.max(1e-12);
    for _ in 0..60 {
        let r = eos.eval_rt(rho, t, comp);
        let f = r.p - p_target;
        if f.abs() <= 1e-11 * p_target {
            return rho;
        }
        let drho = -f / r.dpdr.max(1e-300);
        rho = (rho + drho.clamp(-0.5 * rho, 1.0 * rho)).max(1e-12);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_microphysics::{species::iso, StellarEos};

    fn co_comp() -> Composition {
        Composition::from_mass_fractions(&[iso::C12, iso::MG24], &[1.0, 0.0])
    }

    #[test]
    fn base_state_is_hydrostatic() {
        let eos = StellarEos;
        let base = BaseState::plane_parallel(64, 1e6, 2.6e9 / 1e3, 6e8, 1e10, &eos, &co_comp());
        assert!(
            base.hydrostatic_residual() < 1e-8,
            "residual {}",
            base.hydrostatic_residual()
        );
        // Density and pressure decrease with height.
        for k in 1..base.nz() {
            assert!(base.rho0[k] < base.rho0[k - 1]);
            assert!(base.p0[k] < base.p0[k - 1]);
        }
    }

    #[test]
    fn rho_from_p_t_inverts_eos() {
        let eos = StellarEos;
        let comp = co_comp();
        for &(rho, t) in &[(2.6e6, 6e8), (1e5, 1e8), (1e7, 1e9)] {
            let p = eos.eval_rt(rho, t, &comp).p;
            let r = rho_from_p_t(p, t, &comp, &eos, rho * 3.0);
            assert!((r / rho - 1.0).abs() < 1e-8, "rho {rho}: got {r}");
        }
    }

    #[test]
    fn hotter_material_is_lighter_at_fixed_pressure() {
        // The buoyancy driver: at fixed p₀, raising T lowers ρ.
        let eos = StellarEos;
        let comp = co_comp();
        let p0 = eos.eval_rt(2.6e6, 6e8, &comp).p;
        let rho_cool = rho_from_p_t(p0, 6e8, &comp, &eos, 2.6e6);
        let rho_hot = rho_from_p_t(p0, 9e8, &comp, &eos, 2.6e6);
        assert!(
            rho_hot < rho_cool,
            "hot {rho_hot} should be lighter than cool {rho_cool}"
        );
    }
}
