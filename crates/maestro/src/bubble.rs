//! The reacting-bubble problem (§IV-B; Almgren et al. 2008).
//!
//! A hot bubble is seeded in a plane-parallel atmosphere with conditions
//! like a pre-supernova white-dwarf core. The temperature perturbation
//! ignites localized carbon fusion; the heated, lightened bubble rises
//! buoyantly. The N = 2 network (`CBurn2`) matches the paper's test.

use crate::base_state::BaseState;
use crate::lowmach::{LmLayout, Maestro};
use exastro_amr::{Geometry, MultiFab, Real};
use exastro_microphysics::{Composition, Eos, Network, RetryLadder, SolverChoice};
use exastro_resilience::recovery::RecoveryOptions;

/// Bubble setup parameters (white-dwarf-core-like defaults).
#[derive(Clone, Debug)]
pub struct BubbleParams {
    /// Base density at the bottom of the atmosphere, g/cc.
    pub rho_base: Real,
    /// Ambient temperature, K.
    pub t_ambient: Real,
    /// Bubble peak temperature, K.
    pub t_bubble: Real,
    /// Bubble radius as a fraction of the domain height.
    pub bubble_radius_frac: Real,
    /// Bubble centre height as a fraction of the domain height.
    pub bubble_height_frac: Real,
    /// Gravity, cm/s² (positive magnitude, pointing down).
    pub grav: Real,
}

impl Default for BubbleParams {
    fn default() -> Self {
        BubbleParams {
            rho_base: 2.6e6,
            t_ambient: 6e8,
            t_bubble: 9e8,
            bubble_radius_frac: 0.1,
            bubble_height_frac: 0.35,
            grav: 1e10,
        }
    }
}

/// Build the base state and initialize the bubble in `state`
/// (fuel = 100% of the network's first species, i.e. carbon for `CBurn2`).
pub fn init_bubble(
    state: &mut MultiFab,
    geom: &Geometry,
    layout: &LmLayout,
    eos: &dyn Eos,
    net: &dyn Network,
    params: &BubbleParams,
) -> BaseState {
    let nz = geom.domain().size().z() as usize;
    let dz = geom.dx()[2];
    let mut x_fuel = vec![0.0; layout.nspec];
    x_fuel[0] = 1.0;
    let comp = Composition::from_mass_fractions(net.species(), &x_fuel);
    let base = BaseState::plane_parallel(
        nz,
        dz,
        params.rho_base,
        params.t_ambient,
        params.grav,
        eos,
        &comp,
    );
    let height = geom.prob_length(2);
    let cx = 0.5 * (geom.prob_lo()[0] + geom.prob_hi()[0]);
    let cy = 0.5 * (geom.prob_lo()[1] + geom.prob_hi()[1]);
    let cz = geom.prob_lo()[2] + params.bubble_height_frac * height;
    let r_b = params.bubble_radius_frac * height;
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let pos = geom.cell_center(iv);
            let r = ((pos[0] - cx).powi(2) + (pos[1] - cy).powi(2) + (pos[2] - cz).powi(2)).sqrt();
            // Smooth (tanh-edged) temperature perturbation.
            let pert = 0.5 * (1.0 - ((r - r_b) / (0.25 * r_b)).tanh());
            let t = params.t_ambient + (params.t_bubble - params.t_ambient) * pert;
            let kz = iv.z().clamp(0, base.nz() as i32 - 1) as usize;
            let fab = state.fab_mut(i);
            fab.set(iv, LmLayout::U, 0.0);
            fab.set(iv, LmLayout::V, 0.0);
            fab.set(iv, LmLayout::W, 0.0);
            fab.set(iv, LmLayout::TEMP, t);
            fab.set(iv, LmLayout::RHO, base.rho0[kz]);
            for s in 0..layout.nspec {
                fab.set(iv, layout.spec(s), x_fuel[s]);
            }
        }
    }
    base
}

/// Bubble diagnostics: centre-of-hotness height and composition progress.
#[derive(Clone, Copy, Debug, Default)]
pub struct BubbleDiagnostics {
    /// Temperature-excess-weighted mean height of the bubble, cm.
    pub bubble_height: Real,
    /// Peak temperature.
    pub max_temp: Real,
    /// Peak ash (second species) mass fraction.
    pub max_ash: Real,
    /// Peak vertical velocity (signed).
    pub max_w: Real,
}

/// Measure the bubble.
pub fn bubble_diagnostics(
    state: &MultiFab,
    geom: &Geometry,
    layout: &LmLayout,
    t_ambient: Real,
) -> BubbleDiagnostics {
    let mut d = BubbleDiagnostics::default();
    let mut wsum = 0.0;
    let mut zsum = 0.0;
    for (i, vb) in state.iter_boxes() {
        for iv in vb.iter() {
            let t = state.fab(i).get(iv, LmLayout::TEMP);
            d.max_temp = d.max_temp.max(t);
            if layout.nspec > 1 {
                d.max_ash = d.max_ash.max(state.fab(i).get(iv, layout.spec(1)));
            }
            let w = state.fab(i).get(iv, LmLayout::W);
            if w.abs() > d.max_w.abs() {
                d.max_w = w;
            }
            let excess = t - t_ambient;
            if excess > 0.05 * t_ambient {
                let z = geom.cell_center(iv)[2];
                wsum += excess;
                zsum += excess * z;
            }
        }
    }
    if wsum > 0.0 {
        d.bubble_height = zsum / wsum;
    }
    d
}

/// The Maestro driver pre-configured for the bubble problem.
pub fn bubble_maestro<'a>(eos: &'a dyn Eos, net: &'a dyn Network, base: BaseState) -> Maestro<'a> {
    Maestro {
        layout: LmLayout::new(net.nspec()),
        eos,
        net,
        base,
        cfl: 0.5,
        do_burn: true,
        burn_min_temp: 1e8,
        ladder: RetryLadder::default(),
        burn_solver: SolverChoice::default(),
        burn_faults: None,
        burn_batch_width: 8,
        overlap: true,
        recovery: RecoveryOptions::default(),
        telemetry: Default::default(),
    }
}
