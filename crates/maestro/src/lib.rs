//! # exastro-maestro
//!
//! A reproduction of **MAESTROeX** (Fan et al. 2019): a low-Mach-number
//! hydrodynamics solver for slowly convecting astrophysical flows, whose
//! timestep is set by the fluid velocity rather than the sound speed. The
//! reacting-bubble problem from §IV-B of *Preparing Nuclear Astrophysics
//! for Exascale* is included, with the same cost anatomy the paper
//! describes: zone-local stiff reaction integration balanced against a
//! communication-bound multigrid projection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed-extent arrays (species, dims, stencil
// points) are the house style in this numerical code; iterator rewrites
// obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod base_state;
pub mod bubble;
pub mod lowmach;
pub mod restart;

pub use base_state::{rho_from_p_t, BaseState};
pub use bubble::{
    bubble_diagnostics, bubble_maestro, init_bubble, BubbleDiagnostics, BubbleParams,
};
pub use lowmach::{LmDriverError, LmLayout, LmStateViolation, LmStepError, LmStepStats, Maestro};
pub use restart::{restore_base_state, snapshot_run};
