//! The low-Mach-number advance: advection, buoyancy, reactions, and the
//! divergence projection.
//!
//! MAESTROeX filters sound waves analytically: the velocity is constrained
//! to (approximately) divergence-free by a global *projection* — an
//! elliptic solve performed with multigrid — while the thermodynamics ride
//! on the hydrostatic base state. The timestep is set by the *fluid*
//! velocity, not the sound speed, allowing steps orders of magnitude larger
//! than a compressible code's (§II). The cost profile of one step is
//! exactly the paper's §IV-B description: zone-local reactions plus a
//! communication-heavy multigrid solve, "approximately equally balanced" at
//! one node.

use crate::base_state::{rho_from_p_t, BaseState};
use exastro_amr::{
    apply_physical_bc, Array4Mut, BcKind, BcSpec, CommTrace, Geometry, IndexBox, IntVect, MultiFab,
    Real, SPACEDIM,
};
use exastro_microphysics::{
    BurnFailure, BurnFaultConfig, BurnTally, BurnerConfig, Composition, Eos, Network, RetryLadder,
    SolverChoice, ZoneBurn,
};
use exastro_parallel::{Profiler, TaskGraph, WorkerPool};
use exastro_resilience::recovery::{write_emergency, RecoveryOptions};
use exastro_resilience::snapshot::Clock;
use exastro_resilience::stepper::{StepFailure, StepOutcome, Stepper};
use exastro_solvers::{MgBc, MgOptions, MgStats, Multigrid};
use exastro_telemetry::{StepMetrics, StepRecorder, TaskClass, TaskLabel};
use std::path::PathBuf;
use std::time::Instant;

/// Component indices of the low-Mach state.
#[derive(Clone, Copy, Debug)]
pub struct LmLayout {
    /// Number of species.
    pub nspec: usize,
}

impl LmLayout {
    /// x-velocity.
    pub const U: usize = 0;
    /// y-velocity.
    pub const V: usize = 1;
    /// z-velocity.
    pub const W: usize = 2;
    /// Temperature.
    pub const TEMP: usize = 3;
    /// Density (diagnostic; re-derived from p₀ and T each step).
    pub const RHO: usize = 4;
    /// First species mass fraction.
    pub const FS: usize = 5;

    /// Layout for `nspec` species.
    pub fn new(nspec: usize) -> Self {
        LmLayout { nspec }
    }

    /// Total components.
    pub fn ncomp(&self) -> usize {
        Self::FS + self.nspec
    }

    /// Species component index.
    pub fn spec(&self, k: usize) -> usize {
        Self::FS + k
    }
}

/// Statistics from one low-Mach step.
#[derive(Clone, Debug, Default)]
pub struct LmStepStats {
    /// Multigrid projection statistics.
    pub projection: Option<MgStats>,
    /// Total burner integrator steps (reaction cost proxy).
    pub burn_steps: u64,
    /// Total Newton iterations over all burned zones.
    pub burn_newton_iters: u64,
    /// Burn retry-ladder attempts beyond the first, summed over zones.
    pub burn_retries: u64,
    /// Zones that needed at least one retry to burn.
    pub burn_recovered: u64,
    /// Zones whose winning rung was relaxed-tolerance.
    pub burn_recovered_relaxed: u64,
    /// Zones whose winning rung was subcycling.
    pub burn_recovered_subcycle: u64,
    /// Zones rescued by the §VI outlier-offload rung.
    pub burn_offloaded: u64,
    /// Peak temperature after the step.
    pub max_temp: Real,
    /// Peak vertical velocity.
    pub max_w: Real,
    /// Communication performed by the step (advection ghost exchange plus
    /// the projection's velocity/potential fills), merged across phases.
    pub comm: CommTrace,
}

/// A violation found by the low-Mach post-step validator.
#[derive(Clone, Debug, PartialEq)]
pub enum LmStateViolation {
    /// A state component is NaN or infinite.
    NonFinite {
        /// Component index in the state layout.
        comp: usize,
        /// The first offending zone.
        zone: IntVect,
    },
    /// Density at or below zero.
    NegativeDensity {
        /// The offending density value.
        rho: Real,
        /// The first offending zone.
        zone: IntVect,
    },
    /// Temperature at or below zero.
    NegativeTemperature {
        /// The offending temperature value.
        t: Real,
        /// The first offending zone.
        zone: IntVect,
    },
    /// Species mass fractions drifted away from ΣX = 1.
    SpeciesDrift {
        /// The observed |ΣX − 1|.
        drift: Real,
        /// The first offending zone.
        zone: IntVect,
    },
}

impl std::fmt::Display for LmStateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmStateViolation::NonFinite { comp, zone } => {
                write!(f, "non-finite value in component {comp} at {zone:?}")
            }
            LmStateViolation::NegativeDensity { rho, zone } => {
                write!(f, "non-positive density {rho:.3e} at {zone:?}")
            }
            LmStateViolation::NegativeTemperature { t, zone } => {
                write!(f, "non-positive temperature {t:.3e} at {zone:?}")
            }
            LmStateViolation::SpeciesDrift { drift, zone } => {
                write!(f, "|ΣX − 1| = {drift:.3e} at {zone:?}")
            }
        }
    }
}

/// Why one attempted low-Mach step could not be accepted. On `Err` the
/// state is tainted and must be restored from a pre-step snapshot
/// ([`Maestro::advance_safe`] does that).
#[derive(Debug)]
pub enum LmStepError {
    /// One or more reaction zones exhausted the retry ladder.
    Burn(Vec<BurnFailure>),
    /// The post-step validator rejected the state.
    Invalid(LmStateViolation),
}

impl std::fmt::Display for LmStepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmStepError::Burn(fails) => {
                write!(f, "{} reaction zone(s) failed all retries", fails.len())?;
                if let Some(first) = fails.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            LmStepError::Invalid(v) => write!(f, "post-step validation failed: {v}"),
        }
    }
}

impl std::error::Error for LmStepError {}

/// An unrecoverable low-Mach step: the state is left restored to its
/// pre-step contents and an emergency checkpoint (with the base state in
/// the auxiliary arrays) is written when configured.
#[derive(Debug)]
pub struct LmDriverError {
    /// The error from the final attempt.
    pub error: LmStepError,
    /// Step attempts made (1 initial + retries).
    pub rejections: u32,
    /// The smallest `dt` attempted before giving up.
    pub dt_floor: Real,
    /// Path of the emergency checkpoint, if one was written.
    pub emergency_checkpoint: Option<PathBuf>,
}

impl std::fmt::Display for LmDriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "low-Mach step unrecoverable after {} attempt(s) (dt floor {:.3e}): {}",
            self.rejections, self.dt_floor, self.error
        )?;
        if let Some(p) = &self.emergency_checkpoint {
            write!(f, " [emergency checkpoint: {}]", p.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for LmDriverError {}

/// The low-Mach solver.
pub struct Maestro<'a> {
    /// State layout.
    pub layout: LmLayout,
    /// EOS.
    pub eos: &'a dyn Eos,
    /// Reaction network.
    pub net: &'a dyn Network,
    /// Hydrostatic base state.
    pub base: BaseState,
    /// Advective CFL number.
    pub cfl: Real,
    /// Enable reactions.
    pub do_burn: bool,
    /// Skip burning below this temperature.
    pub burn_min_temp: Real,
    /// Burn failure-recovery ladder.
    pub ladder: RetryLadder,
    /// Newton linear-solver policy for the burn (dense or sparse).
    pub burn_solver: SolverChoice,
    /// Deterministic burn fault injection (tests / CI smoke).
    pub burn_faults: Option<BurnFaultConfig>,
    /// Lane width of the batched SoA burn path (see
    /// [`exastro_microphysics::batch`]); width < 2 keeps every zone on the
    /// scalar retry ladder.
    pub burn_batch_width: usize,
    /// Overlap the advection ghost exchange with stencil-interior advection
    /// via the two-phase comm API ([`MultiFab::post_fill_boundary`]);
    /// results are bit-identical to the bulk-synchronous path.
    pub overlap: bool,
    /// Step-rejection policy and emergency-checkpoint destination.
    pub recovery: RecoveryOptions,
    /// Per-step metrics recorder; inert until a sink is attached via
    /// [`StepRecorder::attach_sink`].
    pub telemetry: StepRecorder,
}

impl<'a> Maestro<'a> {
    /// Boundary conditions: periodic laterally, solid walls vertically
    /// (normal velocity reflects odd).
    pub fn bc(&self) -> BcSpec {
        let mut bc = BcSpec {
            kind: [[BcKind::Periodic; 2]; SPACEDIM],
            reflect_odd: vec![(LmLayout::W, 2)],
        };
        bc.kind[2] = [BcKind::Reflect; 2];
        bc
    }

    /// Advective CFL timestep — sound speed does *not* appear.
    pub fn estimate_dt(&self, state: &MultiFab, geom: &Geometry) -> Real {
        let dx = geom.min_dx();
        let mut vmax: Real = 1e-10;
        for (i, vb) in state.iter_boxes() {
            for iv in vb.iter() {
                for d in 0..3 {
                    vmax = vmax.max(state.fab(i).get(iv, LmLayout::U + d).abs());
                }
            }
        }
        self.cfl * dx / vmax
    }

    /// Recompute the density from the base pressure and local (T, X): the
    /// low-Mach equation of state constraint.
    pub fn enforce_density(&self, state: &mut MultiFab, geom: &Geometry) {
        let _ = geom;
        let nspec = self.layout.nspec;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let kz = iv.z().clamp(0, self.base.nz() as i32 - 1) as usize;
                let t = state.fab(i).get(iv, LmLayout::TEMP);
                let mut x = vec![0.0; nspec];
                for s in 0..nspec {
                    x[s] = state.fab(i).get(iv, self.layout.spec(s)).clamp(0.0, 1.0);
                }
                let comp = Composition::from_mass_fractions(self.net.species(), &x);
                let rho_old = state.fab(i).get(iv, LmLayout::RHO).max(1e-6);
                let rho = rho_from_p_t(self.base.p0[kz], t, &comp, self.eos, rho_old);
                state.fab_mut(i).set(iv, LmLayout::RHO, rho);
            }
        }
    }

    /// First-order upwind advection of all components by the cell velocity.
    fn advect(&self, state: &mut MultiFab, geom: &Geometry, dt: Real) {
        let mut old = state.clone();
        let n = state.nfabs();
        let vbs: Vec<IndexBox> = (0..n).map(|i| state.valid_box(i)).collect();
        let svs = state.fab_views_mut();
        let ovs = old.fab_views_mut();
        for i in 0..n {
            self.advect_view_zones(&svs[i], &ovs[i], vbs[i], geom, dt, |_| true);
        }
    }

    /// The zones of `vb` whose 1-zone upwind stencil lies entirely in valid
    /// data — advection there needs no ghosts. `None` when the box is too
    /// narrow (< 3 zones in some dimension) to have any.
    fn stencil_interior(vb: IndexBox) -> Option<IndexBox> {
        (0..3)
            .all(|d| vb.hi()[d] - vb.lo()[d] >= 2)
            .then(|| vb.grow(-1))
    }

    /// Upwind-advect the zones of `vb` selected by `include`, reading
    /// pre-step data from the snapshot view `ov` and writing the state view
    /// `sv`. Pointwise in the destination zone, so any partition of the
    /// valid box computes identical updates — the sync and overlapped paths
    /// share this body, which is what makes them bit-identical.
    fn advect_view_zones<F: Fn(IntVect) -> bool>(
        &self,
        sv: &Array4Mut<'_>,
        ov: &Array4Mut<'_>,
        vb: IndexBox,
        geom: &Geometry,
        dt: Real,
        include: F,
    ) {
        let dx = geom.dx();
        let ncomp = self.layout.ncomp();
        for iv in vb.iter() {
            if !include(iv) {
                continue;
            }
            let mut upd = vec![0.0; ncomp];
            for d in 0..3 {
                let e = IntVect::dim_vec(d);
                let vel = ov.at(iv.x(), iv.y(), iv.z(), LmLayout::U + d);
                for (c, u) in upd.iter_mut().enumerate() {
                    let lo = iv - e;
                    let hi = iv + e;
                    let grad = if vel >= 0.0 {
                        ov.at(iv.x(), iv.y(), iv.z(), c) - ov.at(lo.x(), lo.y(), lo.z(), c)
                    } else {
                        ov.at(hi.x(), hi.y(), hi.z(), c) - ov.at(iv.x(), iv.y(), iv.z(), c)
                    };
                    *u -= vel * grad / dx[d] * dt;
                }
            }
            for (c, u) in upd.iter().enumerate() {
                let v = sv.at(iv.x(), iv.y(), iv.z(), c) + u;
                sv.set(iv.x(), iv.y(), iv.z(), c, v);
            }
        }
    }

    /// Exchange + advect, overlapped, structured as a [`TaskGraph`] so the
    /// overlap is *measured*, not assumed: per fab, `pack` (Comm) captures
    /// send buffers from the pre-step snapshot, `unpack` (Comm) completes
    /// the exchange into the snapshot's ghosts and applies physical BCs,
    /// `interior` (Compute) advects all stencil-interior zones with no
    /// dependencies (free to run while halos are in flight), and `boundary`
    /// (Compute) advects the remaining zones after `unpack`, then syncs the
    /// state's own ghosts to the snapshot's. The multifab ends bit-identical
    /// to the synchronous path (the projection's velocity copy reads the
    /// ghosts). With graph tracing enabled the schedule lands in
    /// [`exastro_telemetry::graphtrace`] under the label `lowmach.advect`.
    fn advect_overlapped(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        bc: &BcSpec,
        dt: Real,
    ) -> CommTrace {
        let n = state.nfabs();
        let ncomp = self.layout.ncomp();
        let pending = state.plan_fill_boundary(geom);
        let mut packs_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut senders_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for o in 0..pending.nops() {
            let (src, dst) = pending.op_endpoints(o);
            packs_of[src].push(o);
            senders_of[dst].push(src);
        }
        for s in &mut senders_of {
            s.sort_unstable();
            s.dedup();
        }

        let mut old = state.clone();
        let vbs: Vec<IndexBox> = (0..n).map(|i| state.valid_box(i)).collect();
        let gbs: Vec<IndexBox> = (0..n).map(|i| state.grown_box(i)).collect();
        {
            let state_views = state.fab_views_mut();
            let old_views = old.fab_views_mut();

            // Task ids by block: pack f, n + unpack f, 2n + interior f,
            // 3n + boundary f.
            let mut g = TaskGraph::new();
            for _ in 0..n {
                g.add_task();
            }
            for f in 0..n {
                let id = g.add_task();
                for &s in &senders_of[f] {
                    g.add_edge(s, id);
                }
            }
            for _ in 0..n {
                g.add_task();
            }
            for f in 0..n {
                g.add_task_after(&[n + f]);
            }

            let pend = &pending;
            let svs = &state_views;
            let ovs = &old_views;
            g.run_labeled(
                WorkerPool::global(),
                n.max(1),
                "lowmach.advect",
                |t| {
                    let (kind, f) = (t / n, t % n);
                    let (name, class) = match kind {
                        0 => ("pack", TaskClass::Comm),
                        1 => ("unpack", TaskClass::Comm),
                        2 => ("interior", TaskClass::Compute),
                        _ => ("boundary", TaskClass::Compute),
                    };
                    TaskLabel::new(format!("{name}.f{f}"), class)
                },
                |t| {
                    let (kind, f) = (t / n, t % n);
                    match kind {
                        0 => {
                            // Send buffers read the snapshot, which holds the
                            // same pre-advect values the sync path exchanges.
                            let ov = &ovs[f];
                            for &o in &packs_of[f] {
                                pend.pack_op(o, |iv, c| ov.at(iv.x(), iv.y(), iv.z(), c));
                            }
                        }
                        1 => {
                            let ov = &ovs[f];
                            pend.unpack_fab(f, |iv, c, v| ov.set(iv.x(), iv.y(), iv.z(), c, v));
                            apply_physical_bc(ov, geom, bc);
                        }
                        2 => {
                            if let Some(ib) = Self::stencil_interior(vbs[f]) {
                                self.advect_view_zones(&svs[f], &ovs[f], vbs[f], geom, dt, |iv| {
                                    ib.contains(iv)
                                });
                            }
                        }
                        _ => {
                            let interior = Self::stencil_interior(vbs[f]);
                            self.advect_view_zones(&svs[f], &ovs[f], vbs[f], geom, dt, |iv| {
                                !interior.is_some_and(|ib| ib.contains(iv))
                            });
                            // Restore the ghost picture of the synchronous
                            // path: pre-advect exchanged-and-bc'd values.
                            let (sv, ov) = (&svs[f], &ovs[f]);
                            for iv in gbs[f].iter() {
                                if vbs[f].contains(iv) {
                                    continue;
                                }
                                for c in 0..ncomp {
                                    sv.set(
                                        iv.x(),
                                        iv.y(),
                                        iv.z(),
                                        c,
                                        ov.at(iv.x(), iv.y(), iv.z(), c),
                                    );
                                }
                            }
                        }
                    }
                },
            )
            .expect("advect graph is a DAG by construction");
        }
        pending.finish()
    }

    /// Buoyancy source: `w += −g (ρ − ρ₀)/ρ dt`.
    fn buoyancy(&self, state: &mut MultiFab, dt: Real) {
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let kz = iv.z().clamp(0, self.base.nz() as i32 - 1) as usize;
                let rho = state.fab(i).get(iv, LmLayout::RHO).max(1e-12);
                let drho = rho - self.base.rho0[kz];
                let dw = -self.base.grav * drho / rho * dt;
                let w = state.fab(i).get(iv, LmLayout::W) + dw;
                state.fab_mut(i).set(iv, LmLayout::W, w);
            }
        }
    }

    /// Project the velocity onto the (approximately) divergence-free space:
    /// solve `∇²φ = ∇·U / dt`, then `U −= dt ∇φ`. This is the global
    /// multigrid solve that dominates MAESTROeX communication at scale.
    pub fn project(&self, state: &mut MultiFab, geom: &Geometry, dt: Real) -> (MgStats, CommTrace) {
        let ba = state.box_array().clone();
        let dm = state.dist_map().clone();
        let mut rhs = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
        let mut vel = MultiFab::new(ba.clone(), dm.clone(), 3, 1);
        for i in 0..state.nfabs() {
            let gb = state.grown_box(i);
            for iv in gb.iter() {
                for d in 0..3 {
                    vel.fab_mut(i)
                        .set(iv, d, state.fab(i).get(iv, LmLayout::U + d));
                }
            }
        }
        let mut comm = vel.fill_boundary(geom);
        let velbc = BcSpec {
            kind: {
                let mut k = [[BcKind::Periodic; 2]; SPACEDIM];
                k[2] = [BcKind::Reflect; 2];
                k
            },
            reflect_odd: vec![(2, 2)],
        };
        vel.fill_physical_bc(geom, &velbc);
        let dx = geom.dx();
        let mut total = 0.0;
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let mut div = 0.0;
                for d in 0..3 {
                    let e = IntVect::dim_vec(d);
                    div += (vel.fab(i).get(iv + e, d) - vel.fab(i).get(iv - e, d)) / (2.0 * dx[d]);
                }
                rhs.fab_mut(i).set(iv, 0, div / dt);
                total += div / dt;
            }
        }
        // Remove the nullspace component (periodic/Neumann solvability).
        let mean = total / geom.domain().num_zones() as Real;
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let v = rhs.fab(i).get(iv, 0) - mean;
                rhs.fab_mut(i).set(iv, 0, v);
            }
        }
        let mut phi = MultiFab::new(ba, dm, 1, 1);
        let mg = Multigrid::poisson(
            [MgBc::Periodic, MgBc::Periodic, MgBc::Neumann],
            MgOptions {
                tol_rel: 1e-9,
                max_cycles: 40,
                ..Default::default()
            },
        );
        let stats = mg.solve(&mut phi, &rhs, geom);
        let phi_trace = phi.fill_boundary(geom);
        comm.merge(&phi_trace);
        // Neumann ghosts at the walls.
        let phibc = BcSpec {
            kind: {
                let mut k = [[BcKind::Periodic; 2]; SPACEDIM];
                k[2] = [BcKind::Outflow; 2];
                k
            },
            reflect_odd: vec![],
        };
        phi.fill_physical_bc(geom, &phibc);
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                for d in 0..3 {
                    let e = IntVect::dim_vec(d);
                    let grad =
                        (phi.fab(i).get(iv + e, 0) - phi.fab(i).get(iv - e, 0)) / (2.0 * dx[d]);
                    let v = state.fab(i).get(iv, LmLayout::U + d) - dt * grad;
                    state.fab_mut(i).set(iv, LmLayout::U + d, v);
                }
            }
        }
        (stats, comm)
    }

    /// React every zone for `dt` (temperature and composition evolve at
    /// constant local density), with failed zones retried through the
    /// configured [`RetryLadder`]. Zone ids follow the sweep order over all
    /// valid zones — including skipped cold zones — so they are identical
    /// between the two Strang halves, which makes fault injection and
    /// failure reports reproducible.
    fn react(&self, state: &mut MultiFab, dt: Real) -> Result<BurnTally, Vec<BurnFailure>> {
        let burner = BurnerConfig {
            solver: self.burn_solver,
            ladder: self.ladder.clone(),
            faults: self.burn_faults.clone(),
            batch_width: self.burn_batch_width,
            ..Default::default()
        }
        .build_batched(self.net, self.eos);
        let nspec = self.layout.nspec;
        let mut totals = BurnTally::default();
        let mut failures: Vec<BurnFailure> = Vec::new();
        // Gather pass: every zone above the cutoff, with sweep-order ids.
        let mut zones: Vec<ZoneBurn> = Vec::new();
        let mut sites: Vec<(usize, IntVect)> = Vec::new();
        let mut zone_id: u64 = 0;
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let id = zone_id;
                zone_id += 1;
                let t = state.fab(i).get(iv, LmLayout::TEMP);
                if t < self.burn_min_temp {
                    continue;
                }
                let rho = state.fab(i).get(iv, LmLayout::RHO).max(1e-12);
                let mut x = vec![0.0; nspec];
                for s in 0..nspec {
                    x[s] = state.fab(i).get(iv, self.layout.spec(s)).clamp(0.0, 1.0);
                }
                zones.push(ZoneBurn {
                    zone: id,
                    rho,
                    t0: t,
                    x0: x,
                });
                sites.push((i, iv));
            }
        }
        // Burn through the SoA batches, scatter back in input order.
        for ((i, iv), res) in sites.into_iter().zip(burner.burn_all(&zones, dt)) {
            match res {
                Ok(rec) => {
                    totals.record(&rec);
                    state.fab_mut(i).set(iv, LmLayout::TEMP, rec.outcome.t);
                    for s in 0..nspec {
                        state
                            .fab_mut(i)
                            .set(iv, self.layout.spec(s), rec.outcome.x[s]);
                    }
                }
                // Keep sweeping: report every hard zone, not just the
                // first one found.
                Err(f) => failures.push(*f),
            }
        }
        if failures.is_empty() {
            Ok(totals)
        } else {
            Err(failures)
        }
    }

    /// Check the post-step state for physical sanity: every component
    /// finite, density and temperature positive, ΣX within `species_tol`
    /// of one. Returns the first violation in sweep order.
    pub fn validate_state(
        &self,
        state: &MultiFab,
        species_tol: Real,
    ) -> Result<(), LmStateViolation> {
        let ncomp = self.layout.ncomp();
        let nspec = self.layout.nspec;
        for (i, vb) in state.iter_boxes() {
            for iv in vb.iter() {
                for c in 0..ncomp {
                    let v = state.fab(i).get(iv, c);
                    if !v.is_finite() {
                        return Err(LmStateViolation::NonFinite { comp: c, zone: iv });
                    }
                }
                let rho = state.fab(i).get(iv, LmLayout::RHO);
                if rho <= 0.0 {
                    return Err(LmStateViolation::NegativeDensity { rho, zone: iv });
                }
                let t = state.fab(i).get(iv, LmLayout::TEMP);
                if t <= 0.0 {
                    return Err(LmStateViolation::NegativeTemperature { t, zone: iv });
                }
                let mut sum = 0.0;
                for s in 0..nspec {
                    sum += state.fab(i).get(iv, self.layout.spec(s));
                }
                let drift = (sum - 1.0).abs();
                if drift > species_tol {
                    return Err(LmStateViolation::SpeciesDrift { drift, zone: iv });
                }
            }
        }
        Ok(())
    }

    /// One full low-Mach step with Strang-split reactions.
    ///
    /// On `Err` the state is **tainted** — partially advanced — and must be
    /// restored from a pre-step snapshot; [`Maestro::advance_safe`] wraps
    /// this call in exactly that snapshot/restore transaction.
    pub fn advance(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<LmStepStats, LmStepError> {
        let _prof = Profiler::region("maestro_advance");
        let mut stats = LmStepStats::default();
        let bc = self.bc();
        if self.do_burn {
            let _r = Profiler::region("react");
            let t = self.react(state, 0.5 * dt).map_err(LmStepError::Burn)?;
            stats.burn_steps += t.total_steps;
            stats.burn_newton_iters += t.newton_iters;
            stats.burn_retries += t.retries;
            stats.burn_recovered += t.recovered;
            stats.burn_recovered_relaxed += t.recovered_relaxed;
            stats.burn_recovered_subcycle += t.recovered_subcycle;
            stats.burn_offloaded += t.offloaded;
        }
        {
            let _r = Profiler::region("enforce_density");
            self.enforce_density(state, geom);
        }
        {
            let _r = Profiler::region("advect");
            let trace = if self.overlap {
                self.advect_overlapped(state, geom, &bc, dt)
            } else {
                let trace = state.fill_boundary(geom);
                state.fill_physical_bc(geom, &bc);
                self.advect(state, geom, dt);
                trace
            };
            stats.comm.merge(&trace);
            self.buoyancy(state, dt);
        }
        let (proj, proj_comm) = {
            let _r = Profiler::region("project");
            self.project(state, geom, dt)
        };
        stats.comm.merge(&proj_comm);
        stats.projection = Some(proj);
        if self.do_burn {
            let _r = Profiler::region("react");
            let t = self.react(state, 0.5 * dt).map_err(LmStepError::Burn)?;
            stats.burn_steps += t.total_steps;
            stats.burn_newton_iters += t.newton_iters;
            stats.burn_retries += t.retries;
            stats.burn_recovered += t.recovered;
            stats.burn_recovered_relaxed += t.recovered_relaxed;
            stats.burn_recovered_subcycle += t.recovered_subcycle;
            stats.burn_offloaded += t.offloaded;
        }
        {
            let _r = Profiler::region("enforce_density");
            self.enforce_density(state, geom);
        }
        {
            let _r = Profiler::region("validate");
            self.validate_state(state, self.recovery.species_tol)
                .map_err(LmStepError::Invalid)?;
        }
        stats.max_temp = state.max(LmLayout::TEMP);
        stats.max_w = state
            .max(LmLayout::W)
            .abs()
            .max(state.min(LmLayout::W).abs());
        Ok(stats)
    }

    /// Advance one step **transactionally**: snapshot the state, attempt
    /// the step, and on any [`LmStepError`] restore the snapshot and retry
    /// with `dt` cut by [`RecoveryOptions::dt_cut`], up to
    /// [`RecoveryOptions::max_rejections`] attempts. Returns the stats and
    /// the `dt` actually taken.
    ///
    /// If every attempt fails the state is left **restored to its pre-step
    /// contents**, an emergency checkpoint — carrying the base state in its
    /// auxiliary arrays, so the run resumes bit-exact — is written when
    /// [`RecoveryOptions::emergency_dir`] is set, and a structured
    /// [`LmDriverError`] is returned — never a panic.
    pub fn advance_safe(
        &self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<(LmStepStats, Real), Box<LmDriverError>> {
        let mut try_dt = dt;
        let attempts = self.recovery.max_rejections.max(1);
        let mut last_err = None;
        // Wall clock for the whole transaction, rejected attempts included.
        let step_start = self.telemetry.is_active().then(Instant::now);
        for attempt in 0..attempts {
            let snapshot = state.clone();
            match self.advance(state, geom, try_dt) {
                Ok(stats) => {
                    if let Some(t0) = step_start {
                        self.record_step_metrics(state, &stats, try_dt, t0, attempt);
                    }
                    return Ok((stats, try_dt));
                }
                Err(e) => {
                    *state = snapshot;
                    last_err = Some(e);
                    let _r = Profiler::region("step_reject");
                    Profiler::record_retries(1);
                    if attempt + 1 < attempts {
                        try_dt *= self.recovery.dt_cut;
                    }
                }
            }
        }
        let emergency_checkpoint = self.recovery.emergency_dir.as_deref().and_then(|dir| {
            let snap = crate::restart::snapshot_run(
                geom,
                state,
                &self.base,
                Clock {
                    step: 0,
                    time: 0.0,
                    dt: try_dt,
                },
                &self.layout,
            );
            write_emergency(dir, &snap).ok()
        });
        Err(Box::new(LmDriverError {
            error: last_err.expect("at least one attempt was made"),
            rejections: attempts,
            dt_floor: try_dt,
            emergency_checkpoint,
        }))
    }

    /// Build and emit the [`StepMetrics`] record for one accepted step.
    /// The low-Mach driver owns no arena, so arena occupancy reads zero.
    fn record_step_metrics(
        &self,
        state: &MultiFab,
        stats: &LmStepStats,
        dt: Real,
        step_start: Instant,
        rejections: u32,
    ) {
        let wall_ns = step_start.elapsed().as_nanos() as u64;
        let zones: u64 = (0..state.nfabs())
            .map(|i| state.valid_box(i).num_zones() as u64)
            .sum();
        self.telemetry.record(StepMetrics {
            driver: "maestro".to_string(),
            dt,
            wall_ns,
            zones,
            newton_iters: stats.burn_newton_iters,
            bdf_steps: stats.burn_steps,
            burn_retries: stats.burn_retries,
            recovered_relaxed: stats.burn_recovered_relaxed,
            recovered_subcycle: stats.burn_recovered_subcycle,
            recovered_offload: stats.burn_offloaded,
            step_rejections: rejections as u64,
            ..Default::default()
        });
    }
}

impl Stepper for Maestro<'_> {
    fn estimate_dt(&self, state: &MultiFab, geom: &Geometry) -> Real {
        Maestro::estimate_dt(self, state, geom)
    }

    fn step(
        &mut self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<StepOutcome, StepFailure> {
        self.advance_safe(state, geom, dt)
            .map(|(stats, dt_taken)| StepOutcome {
                dt_taken,
                comm: stats.comm,
            })
            .map_err(|e| StepFailure::new(e.to_string()))
    }

    fn take_recorder(&mut self) -> exastro_telemetry::StepRecorder {
        std::mem::take(&mut self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble::*;
    use exastro_amr::{BoxArray, DistStrategy, DistributionMapping, IndexBox};
    use exastro_microphysics::{CBurn2, StellarEos};

    fn bubble_setup(n: i32) -> (Geometry, MultiFab, Maestro<'static>, LmLayout) {
        // Statics so the Maestro driver can borrow for 'static in tests.
        use std::sync::OnceLock;
        static EOS: StellarEos = StellarEos;
        static NET: OnceLock<CBurn2> = OnceLock::new();
        let net = NET.get_or_init(CBurn2::new);
        let geom = Geometry::new(
            IndexBox::cube(n),
            [0.0; 3],
            [3.6e7; 3],
            [true, true, false],
            exastro_amr::CoordSys::Cartesian,
        );
        let ba = BoxArray::decompose(geom.domain(), (n / 2).max(8), 4);
        let dm = DistributionMapping::new(&ba, 2, DistStrategy::Sfc);
        let layout = LmLayout::new(2);
        let mut state = MultiFab::new(ba, dm, layout.ncomp(), 1);
        let base = init_bubble(
            &mut state,
            &geom,
            &layout,
            &EOS,
            net,
            &BubbleParams::default(),
        );
        let maestro = bubble_maestro(&EOS, net, base);
        (geom, state, maestro, layout)
    }

    #[test]
    fn overlapped_and_sync_advect_agree_bitwise() {
        // The overlapped path must be a pure scheduling change: every bit of
        // the state (valid AND ghost zones -- the projection reads ghosts)
        // and every byte of the comm ledger must match the bulk-synchronous
        // path after several steps.
        let (geom, sync_state, mut maestro, _l) = bubble_setup(16);
        let mut sync_state = sync_state;
        let mut ovl_state = sync_state.clone();
        maestro.overlap = false;
        let mut sync_comm = CommTrace::default();
        for _ in 0..3 {
            let st = maestro.advance(&mut sync_state, &geom, 2e-4).unwrap();
            sync_comm.merge(&st.comm);
        }
        maestro.overlap = true;
        let mut ovl_comm = CommTrace::default();
        for _ in 0..3 {
            let st = maestro.advance(&mut ovl_state, &geom, 2e-4).unwrap();
            ovl_comm.merge(&st.comm);
        }
        for i in 0..sync_state.nfabs() {
            for iv in sync_state.grown_box(i).iter() {
                for c in 0..sync_state.ncomp() {
                    let a = sync_state.fab(i).get(iv, c);
                    let b = ovl_state.fab(i).get(iv, c);
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "bit divergence at fab {i} zone {iv:?} comp {c}: {a} vs {b}"
                    );
                }
            }
        }
        assert!(
            sync_comm.network_bytes() > 0,
            "fixture must exchange off-rank"
        );
        assert_eq!(sync_comm.network_bytes(), ovl_comm.network_bytes());
        assert_eq!(sync_comm.local_bytes, ovl_comm.local_bytes);
    }

    #[test]
    fn projection_kills_divergence() {
        let (geom, mut state, maestro, _l) = bubble_setup(16);
        // Seed a strongly divergent velocity field.
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                state
                    .fab_mut(i)
                    .set(iv, LmLayout::U, (x[0] / 3.6e7).sin() * 1e5);
                state
                    .fab_mut(i)
                    .set(iv, LmLayout::V, (x[1] / 1.2e7).cos() * 1e5);
                state.fab_mut(i).set(iv, LmLayout::W, 0.0);
            }
        }
        let div_before = divergence_norm(&state, &geom);
        let (stats, comm) = maestro.project(&mut state, &geom, 1.0);
        assert!(
            comm.network_bytes() > 0,
            "SFC layout must exchange off-rank"
        );
        let div_after = divergence_norm(&state, &geom);
        assert!(stats.converged, "projection multigrid must converge");
        // This is an *approximate* (cell-centred) projection, as in
        // MAESTROeX: the central-difference divergence is not the exact
        // adjoint of the 5-point Laplacian, so one application damps
        // rather than annihilates the divergence.
        assert!(
            div_after < 0.45 * div_before,
            "divergence {div_before} -> {div_after}"
        );
    }

    fn divergence_norm(state: &MultiFab, geom: &Geometry) -> Real {
        let mut vel = MultiFab::new(state.box_array().clone(), state.dist_map().clone(), 3, 1);
        for i in 0..state.nfabs() {
            let gb = state.grown_box(i);
            for iv in gb.iter() {
                for d in 0..3 {
                    vel.fab_mut(i)
                        .set(iv, d, state.fab(i).get(iv, LmLayout::U + d));
                }
            }
        }
        let _ = vel.fill_boundary(geom);
        let dx = geom.dx();
        let mut norm = 0.0;
        for i in 0..vel.nfabs() {
            let vb = vel.valid_box(i);
            for iv in vb.iter() {
                // Skip wall-adjacent zones (one-sided stencils there).
                if iv.z() == 0 || iv.z() == geom.domain().hi().z() {
                    continue;
                }
                let mut div = 0.0;
                for d in 0..3 {
                    let e = IntVect::dim_vec(d);
                    div += (vel.fab(i).get(iv + e, d) - vel.fab(i).get(iv - e, d)) / (2.0 * dx[d]);
                }
                norm += div * div;
            }
        }
        norm.sqrt()
    }

    #[test]
    fn timestep_is_advective_not_acoustic() {
        let (geom, mut state, maestro, _l) = bubble_setup(16);
        // Velocities ~ 1e5 cm/s; sound speed in WD material ~ 1e8-9 cm/s.
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                state.fab_mut(i).set(iv, LmLayout::U, 1e5);
            }
        }
        let dt = maestro.estimate_dt(&state, &geom);
        let dx = geom.min_dx();
        let dt_acoustic = dx / 5e8;
        assert!(
            dt > 100.0 * dt_acoustic,
            "low-Mach dt {dt} should dwarf acoustic dt {dt_acoustic}"
        );
    }

    #[test]
    fn bubble_heats_burns_and_rises() {
        let (geom, mut state, maestro, layout) = bubble_setup(16);
        let d0 = bubble_diagnostics(&state, &geom, &layout, 6e8);
        assert!(d0.max_temp > 8.9e8, "initial bubble present");
        assert_eq!(d0.max_ash, 0.0);
        let mut height_trace = vec![d0.bubble_height];
        for _ in 0..6 {
            let dt = maestro.estimate_dt(&state, &geom).min(5e-3);
            let stats = maestro.advance(&mut state, &geom, dt).unwrap();
            assert!(stats.projection.as_ref().unwrap().cycles > 0);
            height_trace.push(bubble_diagnostics(&state, &geom, &layout, 6e8).bubble_height);
        }
        let d1 = bubble_diagnostics(&state, &geom, &layout, 6e8);
        // Carbon has started to burn into ash and the bubble temperature
        // has increased.
        assert!(d1.max_ash > 1e-10, "ash {}", d1.max_ash);
        // First-order upwind advection diffuses the peak; burning offsets
        // it only partially at these conditions.
        assert!(d1.max_temp >= d0.max_temp * 0.9);
        // Upward motion developed.
        assert!(d1.max_w > 0.0, "bubble must develop upward velocity");
        assert!(
            height_trace.last().unwrap() >= &height_trace[0],
            "bubble should not sink: {height_trace:?}"
        );
    }

    #[test]
    fn injected_burn_faults_recover_through_the_ladder() {
        use exastro_microphysics::{BdfErrorKind, BurnFaultConfig};
        let (geom, mut state, mut maestro, layout) = bubble_setup(16);
        maestro.burn_faults = Some(BurnFaultConfig {
            seed: 7,
            rate: 1.0,
            rungs_to_fail: 1,
            error: BdfErrorKind::MaxSteps,
        });
        let dt = maestro.estimate_dt(&state, &geom).min(5e-3);
        let stats = maestro.advance(&mut state, &geom, dt).unwrap();
        // Every burning zone failed once and recovered on the first retry.
        assert!(stats.burn_recovered > 0, "no zones recovered");
        assert_eq!(stats.burn_retries, stats.burn_recovered);
        // Recovered state stays physical.
        maestro
            .validate_state(&state, maestro.recovery.species_tol)
            .unwrap();
        let _ = layout;
    }

    #[test]
    fn unrecoverable_faults_restore_state_and_checkpoint() {
        use exastro_microphysics::{BdfErrorKind, BurnFaultConfig};
        let (geom, mut state, mut maestro, _layout) = bubble_setup(16);
        maestro.burn_faults = Some(BurnFaultConfig {
            seed: 11,
            rate: 1.0,
            rungs_to_fail: 99, // beyond the ladder: never recovers
            error: BdfErrorKind::SingularMatrix,
        });
        let dir = std::env::temp_dir().join(format!("exastro-lm-emrg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        maestro.recovery = RecoveryOptions {
            max_rejections: 2,
            ..RecoveryOptions::default()
        }
        .with_emergency_dir(&dir);
        let before = state.clone();
        let err = maestro.advance_safe(&mut state, &geom, 1e-3).unwrap_err();
        assert!(matches!(err.error, LmStepError::Burn(ref f) if !f.is_empty()));
        assert_eq!(err.rejections, 2);
        assert!(err.dt_floor < 1e-3);
        // The state was restored to its pre-step contents...
        for (i, vb) in state.iter_boxes() {
            for iv in vb.iter() {
                for c in 0..maestro.layout.ncomp() {
                    assert_eq!(
                        state.fab(i).get(iv, c).to_bits(),
                        before.fab(i).get(iv, c).to_bits()
                    );
                }
            }
        }
        // ...and an emergency checkpoint with the base state landed on disk.
        let path = err.emergency_checkpoint.expect("emergency checkpoint");
        assert!(path.is_dir());
        let snap = exastro_resilience::CheckpointManager::new(&dir)
            .unwrap()
            .resume()
            .unwrap();
        let base = crate::restart::restore_base_state(&snap).expect("base state in aux arrays");
        assert_eq!(base.rho0, maestro.base.rho0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quiescent_atmosphere_stays_quiescent() {
        // No bubble: a hydrostatic atmosphere under buoyancy + projection
        // should develop only tiny velocities.
        use std::sync::OnceLock;
        static EOS: StellarEos = StellarEos;
        static NET: OnceLock<CBurn2> = OnceLock::new();
        let net = NET.get_or_init(CBurn2::new);
        let geom = Geometry::new(
            IndexBox::cube(16),
            [0.0; 3],
            [3.6e7; 3],
            [true, true, false],
            exastro_amr::CoordSys::Cartesian,
        );
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let layout = LmLayout::new(2);
        let mut state = MultiFab::new(
            ba,
            DistributionMapping::all_local(&BoxArray::decompose(geom.domain(), 8, 4)),
            layout.ncomp(),
            1,
        );
        let params = BubbleParams {
            t_bubble: 6e8, // no perturbation
            ..Default::default()
        };
        let base = init_bubble(&mut state, &geom, &layout, &EOS, net, &params);
        let maestro = bubble_maestro(&EOS, net, base);
        for _ in 0..3 {
            maestro.advance(&mut state, &geom, 1e-3).unwrap();
        }
        // Buoyancy residual from the discrete hydrostatic base is small:
        // velocities stay far below the convective scale (~1e6 cm/s).
        let wmax = state
            .max(LmLayout::W)
            .abs()
            .max(state.min(LmLayout::W).abs());
        assert!(wmax < 1e4, "spurious velocity {wmax}");
    }
}
