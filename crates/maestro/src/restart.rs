//! Checkpoint/restart glue for the MAESTROeX low-Mach driver.
//!
//! Unlike Castro, the low-Mach solver carries state outside its `MultiFab`:
//! the 1-D hydrostatic base state (ρ₀, p₀, T₀ columns plus gravity and zone
//! height). That goes into the snapshot's auxiliary arrays, so a restored
//! run rebuilds an identical [`BaseState`] and the resume is bit-exact.

use crate::base_state::BaseState;
use crate::lowmach::LmLayout;
use exastro_amr::{Geometry, MultiFab, Real};
use exastro_resilience::snapshot::{Clock, Snapshot};

/// Component names for the checkpoint header, in [`LmLayout`] order:
/// `u v w temp rho x0 x1 …`.
pub fn variable_names(layout: &LmLayout) -> Vec<String> {
    let mut v = vec![
        "u".to_string(),
        "v".to_string(),
        "w".to_string(),
        "temp".to_string(),
        "rho".to_string(),
    ];
    for k in 0..layout.nspec {
        v.push(format!("x{k}"));
    }
    v
}

/// Capture a restartable snapshot of a low-Mach run: the (single-level)
/// state plus the base-state columns as auxiliary arrays.
pub fn snapshot_run(
    geom: &Geometry,
    state: &MultiFab,
    base: &BaseState,
    clock: Clock,
    layout: &LmLayout,
) -> Snapshot {
    let mut snap =
        Snapshot::single_level(geom.clone(), state.clone(), clock, variable_names(layout));
    snap.aux.push(("base_rho0".to_string(), base.rho0.clone()));
    snap.aux.push(("base_p0".to_string(), base.p0.clone()));
    snap.aux.push(("base_t0".to_string(), base.t0.clone()));
    snap.aux
        .push(("base_scalars".to_string(), vec![base.grav, base.dz]));
    snap
}

/// Rebuild the [`BaseState`] from a restored snapshot's auxiliary arrays.
/// Returns `None` if any of the base-state arrays are missing or malformed.
pub fn restore_base_state(snap: &Snapshot) -> Option<BaseState> {
    let rho0 = snap.aux_array("base_rho0")?.to_vec();
    let p0 = snap.aux_array("base_p0")?.to_vec();
    let t0 = snap.aux_array("base_t0")?.to_vec();
    let scalars = snap.aux_array("base_scalars")?;
    if scalars.len() != 2 || rho0.len() != p0.len() || rho0.len() != t0.len() {
        return None;
    }
    let (grav, dz): (Real, Real) = (scalars[0], scalars[1]);
    Some(BaseState {
        rho0,
        p0,
        t0,
        grav,
        dz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::BoxArray;

    #[test]
    fn variable_names_follow_layout_order() {
        let layout = LmLayout::new(2);
        let names = variable_names(&layout);
        assert_eq!(names.len(), layout.ncomp());
        assert_eq!(names[LmLayout::U], "u");
        assert_eq!(names[LmLayout::RHO], "rho");
        assert_eq!(names[layout.spec(1)], "x1");
    }

    #[test]
    fn base_state_roundtrips_through_aux_arrays() {
        let base = BaseState {
            rho0: vec![1.0, 0.9, 0.8],
            p0: vec![2.0, 1.7, 1.4],
            t0: vec![3.0, 3.0, 3.0],
            grav: 9.8,
            dz: 0.125,
        };
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let state = MultiFab::local(ba, LmLayout::new(1).ncomp(), 1);
        let snap = snapshot_run(&geom, &state, &base, Clock::default(), &LmLayout::new(1));
        let back = restore_base_state(&snap).unwrap();
        assert_eq!(back.rho0, base.rho0);
        assert_eq!(back.p0, base.p0);
        assert_eq!(back.t0, base.t0);
        assert_eq!(back.grav, base.grav);
        assert_eq!(back.dz, base.dz);
        // A snapshot without the aux arrays fails cleanly.
        let bare = Snapshot::single_level(geom, state, Clock::default(), vec![]);
        assert!(restore_base_state(&bare).is_none());
    }
}
