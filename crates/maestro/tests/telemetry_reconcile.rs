//! Low-Mach driver telemetry reconciliation: the `StepMetrics` stream from
//! `Maestro::advance_safe` must agree with the `LmStepStats` the driver
//! returns. Own binary — it asserts on process-global telemetry state.

use exastro_amr::{
    BoxArray, CoordSys, DistStrategy, DistributionMapping, Geometry, IndexBox, MultiFab,
};
use exastro_maestro::{bubble_maestro, init_bubble, BubbleParams, LmLayout, Maestro};
use exastro_microphysics::{CBurn2, StellarEos};
use exastro_telemetry::{MemorySink, Telemetry};
use std::sync::Arc;
use std::sync::OnceLock;

fn bubble_setup(n: i32) -> (Geometry, MultiFab, Maestro<'static>) {
    static EOS: StellarEos = StellarEos;
    static NET: OnceLock<CBurn2> = OnceLock::new();
    let net = NET.get_or_init(CBurn2::new);
    let geom = Geometry::new(
        IndexBox::cube(n),
        [0.0; 3],
        [3.6e7; 3],
        [true, true, false],
        CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), (n / 2).max(8), 4);
    let dm = DistributionMapping::new(&ba, 2, DistStrategy::Sfc);
    let layout = LmLayout::new(2);
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 1);
    let base = init_bubble(
        &mut state,
        &geom,
        &layout,
        &EOS,
        net,
        &BubbleParams::default(),
    );
    let maestro = bubble_maestro(&EOS, net, base);
    (geom, state, maestro)
}

#[test]
fn maestro_step_metrics_reconcile_with_driver_stats() {
    Telemetry::reset();
    Telemetry::enable();
    let (geom, mut state, mut maestro) = bubble_setup(16);
    let sink = Arc::new(MemorySink::new());
    maestro.telemetry.attach_sink(sink.clone());

    let nsteps = 2;
    let mut dts = Vec::new();
    let mut sum_bdf = 0u64;
    let mut sum_newton = 0u64;
    let mut sum_retries = 0u64;
    for _ in 0..nsteps {
        let dt = maestro.estimate_dt(&state, &geom).min(5e-3);
        let (stats, taken) = maestro.advance_safe(&mut state, &geom, dt).unwrap();
        dts.push(taken);
        sum_bdf += stats.burn_steps;
        sum_newton += stats.burn_newton_iters;
        sum_retries += stats.burn_retries;
    }
    assert!(sum_bdf > 0, "the bubble must react");

    let recs = sink.snapshot();
    assert_eq!(recs.len(), nsteps);
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.driver, "maestro");
        assert_eq!(r.step, i as u64 + 1);
        assert_eq!(r.zones, 16u64.pow(3));
        assert_eq!(r.dt, dts[i]);
        assert!(r.wall_ns > 0);
        // The low-Mach driver owns no arena: occupancy reads zero.
        assert_eq!(r.arena_live_bytes, 0);
        assert_eq!(r.arena_peak_bytes, 0);
    }
    let t_expect: f64 = dts.iter().sum();
    assert!((recs.last().unwrap().t - t_expect).abs() <= 1e-12 * t_expect);
    assert_eq!(recs.iter().map(|r| r.bdf_steps).sum::<u64>(), sum_bdf);
    assert_eq!(recs.iter().map(|r| r.newton_iters).sum::<u64>(), sum_newton);
    assert_eq!(
        recs.iter().map(|r| r.burn_retries).sum::<u64>(),
        sum_retries
    );
    Telemetry::disable();
}
