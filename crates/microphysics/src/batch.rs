//! Batched structure-of-arrays burning: advance N zones through one BDF
//! integration in lockstep — the SIMD-across-zones layout of the paper's
//! §VI GPU-batching plan, on the CPU.
//!
//! The PR-5 cost heatmaps show what Zingale et al. 2024 describe: most
//! zones in a burn sweep are cheap and *similar* — same network, similar
//! (ρ, T, X), hence similar step-size histories — while a few outliers are
//! orders of magnitude harder. The batched path exploits the first
//! population and generalizes the §VI outlier-offload idea for the second:
//!
//! * **One Nordsieck history per batch.** The batch shares `t`, `h`, and
//!   the BDF order `q`; every per-component vector becomes a
//!   structure-of-arrays block `buf[i·W + lane]`, so prediction,
//!   correction, error weighting, and the sparse-LU `ColOp` replay
//!   ([`SparseLu::factor_newton_batch`] / [`SparseLu::solve_batch`]) run as
//!   tight unit-stride lane-inner loops the auto-vectorizer turns into
//!   SIMD across the batch.
//! * **Per-lane control signals.** Error-test estimates, Newton residual
//!   norms, and singularity flags are computed per lane; the shared step
//!   accepts only when every active lane passes, and the step-size factor
//!   comes from the worst active lane.
//! * **Amortized Jacobians.** Because a factorization now serves the whole
//!   batch, the batch path adopts VODE/CVODE's modified-Newton Jacobian
//!   reuse: the Jacobian is refreshed only when stale (every
//!   [`JAC_REFRESH_STEPS`] accepted steps), after a convergence failure,
//!   or when `γ = l₀h` has drifted more than [`GAMMA_DRIFT_TOL`] since the
//!   last factorization — at which point the matrix is refactored (cheap,
//!   batched) without re-evaluating the Jacobian. The scalar integrator
//!   refreshes and refactors every step attempt; this reuse is most of the
//!   batched path's speedup and does not change what the corrector
//!   converges *to*, only how it gets there.
//! * **Dropout to the scalar ladder.** A lane that repeatedly fails the
//!   error test, repeatedly fails Newton, or hits a singular factor drops
//!   out of the batch; [`BatchBurner`] re-burns it from its *entry* state
//!   through the existing scalar [`RecoveringBurner`] retry ladder, so a
//!   dropped zone's result is bit-identical to what the scalar ladder
//!   produces. Batch occupancy and the dropout rate are recorded through
//!   `exastro-telemetry` (`burn.batch.*`).
//!
//! Zones are grouped by temperature before chunking ([`BatchBurner::
//! burn_all`]) so cost-similar zones share a history; a cold lane riding a
//! hot batch is charged the hot step count, which is exactly the warp-level
//! serialization the §VI heatmaps quantify.

use crate::burner::{record_burn_telemetry, BurnOutcome, BurnSystem, Burner, BurnerConfig};
use crate::constants::{MEV_TO_ERG, N_A};
use crate::eos::Eos;
use crate::integrator::{
    bdf_l, check_atol, predict, rescale, unpredict, BdfErrorKind, BdfOptions, BdfStats, OdeSystem,
};
use crate::network::Network;
use crate::recovery::{
    validate_outcome, BurnFailure, BurnFaultConfig, RecoveredBurn, RecoveringBurner,
};
use crate::sparse::SparseLu;
use crate::species::{mass_to_molar, molar_to_mass};
use std::sync::Arc;
use std::time::Instant;

/// Accepted steps between Jacobian refreshes (CVODE's MSBJ is 50; burns
/// move faster, so refresh more often).
pub const JAC_REFRESH_STEPS: u64 = 25;

/// Relative `γ` drift that forces a refactorization of `I − γJ` (with the
/// Jacobian itself reused). CVODE's DGMAX analogue.
pub const GAMMA_DRIFT_TOL: f64 = 0.1;

/// Consecutive per-lane *culprit* rejections (decisive error-test or
/// fresh-Jacobian Newton failures while a batchmate passed) before a lane
/// drops out of the batch. The underlying controller rejects steps
/// routinely near the error boundary — the scalar path shrugs those off —
/// so dropout requires a streak of failures that are clearly the lane's
/// own, not boundary noise.
const LANE_FAIL_LIMIT: u32 = 4;

/// An error-test failure counts against a lane only when its estimate is
/// decisively over the line; est barely above 1 is the shared controller
/// hunting, which the scalar path also does.
const BLAME_EST: f64 = 2.0;

/// Consecutive singular factorizations before a lane drops out.
const SINGULAR_FAIL_LIMIT: u32 = 2;

/// A batch of independent ODE systems integrated in lockstep, one system
/// per lane. The integrator owns the SoA layout; implementations see plain
/// dense per-lane vectors (so [`BatchBurnSystem`] can delegate straight to
/// the scalar burn physics).
pub trait LaneOde {
    /// Per-lane state dimension.
    fn dim(&self) -> usize;
    /// Number of lanes in the batch.
    fn lanes(&self) -> usize;
    /// Evaluate lane `lane`'s right-hand side into `dydt` (length `dim`).
    fn rhs(&self, lane: usize, t: f64, y: &[f64], dydt: &mut [f64]);
    /// Evaluate lane `lane`'s dense row-major `dim²` Jacobian.
    fn jac(&self, lane: usize, t: f64, y: &[f64], jac: &mut [f64]);
}

/// Why a lane left the batch (informational — the zone is re-burned by the
/// scalar ladder, so a dropout is a routing decision, not a failure).
#[derive(Clone, Debug, PartialEq)]
pub enum LaneStatus {
    /// The lane reached `tend` inside the batch.
    Completed,
    /// The lane diverged from the batch's shared step/order history and
    /// must be handled by the scalar path.
    Dropped(BdfErrorKind),
}

/// Outcome of one lane of a batched integration.
#[derive(Clone, Debug)]
pub struct LaneReport {
    /// Completed, or dropped and why.
    pub status: LaneStatus,
    /// This lane's view of the batch work: steps/rejections it
    /// participated in, its own RHS/Jacobian evaluations, and an even
    /// per-lane share of the batched linear-algebra wall time.
    pub stats: BdfStats,
}

/// Per-lane weighted-RMS norms of the SoA block `v` (`dim × width`).
fn wrms_lanes(v: &[f64], ewt: &[f64], dim: usize, width: usize, out: &mut [f64]) {
    out.iter_mut().for_each(|o| *o = 0.0);
    for i in 0..dim {
        let vr = &v[i * width..][..width];
        let er = &ewt[i * width..][..width];
        for l in 0..width {
            let x = vr[l] * er[l];
            out[l] += x * x;
        }
    }
    let inv_n = 1.0 / dim as f64;
    for o in out.iter_mut() {
        *o = (*o * inv_n).sqrt();
    }
}

/// The batched BDF integrator: the scalar integrator's Nordsieck machinery
/// over SoA vectors, with per-lane control signals and dropout. Always
/// backed by the pattern-specialized sparse LU (the batched `ColOp` replay
/// is the SIMD carrier; a batched dense LU with partial pivoting would
/// branch per lane).
pub struct BatchBdf {
    opts: BdfOptions,
    lu: Arc<SparseLu>,
}

/// All per-lane counters of one batched integration.
struct LaneBook {
    active: Vec<bool>,
    dropped: Vec<Option<BdfErrorKind>>,
    steps: Vec<u64>,
    rejected: Vec<u64>,
    rhs_evals: Vec<u64>,
    jac_evals: Vec<u64>,
    factorizations: Vec<u64>,
    newton_iters: Vec<u64>,
    err_fails: Vec<u32>,
    newton_fails: Vec<u32>,
    sing_fails: Vec<u32>,
}

impl LaneBook {
    fn new(w: usize) -> Self {
        LaneBook {
            active: vec![true; w],
            dropped: vec![None; w],
            steps: vec![0; w],
            rejected: vec![0; w],
            rhs_evals: vec![0; w],
            jac_evals: vec![0; w],
            factorizations: vec![0; w],
            newton_iters: vec![0; w],
            err_fails: vec![0; w],
            newton_fails: vec![0; w],
            sing_fails: vec![0; w],
        }
    }

    fn drop_lane(&mut self, lane: usize, why: BdfErrorKind) {
        if self.active[lane] {
            self.active[lane] = false;
            self.dropped[lane] = Some(why);
        }
    }

    fn any_active(&self) -> bool {
        self.active.iter().any(|&a| a)
    }
}

impl BatchBdf {
    /// Create a batched integrator over a precompiled symbolic sparse LU
    /// (one per network, shared across every batch).
    pub fn new(opts: BdfOptions, lu: Arc<SparseLu>) -> Self {
        BatchBdf { opts, lu }
    }

    /// Integrate every lane of `sys` from `t0` to `tend`. `y` is the
    /// structure-of-arrays state `y[i·width + lane]`, updated in place for
    /// lanes that complete; dropped lanes' slots are meaningless and the
    /// caller re-burns those zones from their entry state.
    pub fn integrate(
        &self,
        sys: &dyn LaneOde,
        t0: f64,
        tend: f64,
        y: &mut [f64],
    ) -> Vec<LaneReport> {
        let n = sys.dim();
        let w = sys.lanes();
        assert_eq!(y.len(), n * w);
        assert!(tend > t0);
        assert_eq!(self.lu.dim(), n, "sparse pattern does not match the system");
        let mut book = LaneBook::new(w);
        let mut solve_ns: u64 = 0;
        let mut q = 1usize;
        if let Err(e) = check_atol(&self.opts, n) {
            for l in 0..w {
                book.drop_lane(l, e.kind.clone());
            }
            return self.reports(&book, solve_ns, q);
        }
        let max_order = self.opts.max_order.clamp(1, 5);
        let nw = n * w;

        let mut ycur = vec![0.0; nw];
        let mut acor = vec![0.0; nw];
        let mut acor_prev = vec![0.0; nw];
        let mut rhs = vec![0.0; nw];
        let mut resid = vec![0.0; nw];
        let mut ewt = vec![0.0; nw];
        let mut sol_scratch = vec![0.0; nw];
        let mut jacs = vec![0.0; n * n * w];
        let mut vals = vec![0.0; self.lu.nnz_filled() * w];
        let mut singular = vec![false; w];
        let mut lane_y = vec![0.0; n];
        let mut lane_f = vec![0.0; n];
        let mut lane_jac = vec![0.0; n * n];
        let mut dn = vec![0.0; w];
        let mut est = vec![0.0; w];
        let mut lane_norm = vec![0.0; w];
        let mut conv = vec![false; w];
        let mut diverged = vec![false; w];
        let mut mask = vec![0.0; w];
        let mut last_dn = vec![0.0; w];
        let mut l = [0.0f64; 6];

        // Initial step from the worst lane's RHS scale (every lane must be
        // resolvable at the shared h).
        self.error_weights(y, n, w, &mut ewt);
        let mut rate_max: f64 = 1e-30;
        for lane in 0..w {
            gather_lane(y, w, lane, &mut lane_y);
            sys.rhs(lane, t0, &lane_y, &mut lane_f);
            book.rhs_evals[lane] += 1;
            scatter_lane(&lane_f, w, lane, &mut rhs);
            let mut acc = 0.0;
            for i in 0..n {
                let x = lane_f[i] * ewt[i * w + lane];
                acc += x * x;
            }
            let rate = (acc / n as f64).sqrt();
            if !rate.is_finite() {
                book.drop_lane(lane, BdfErrorKind::NonFinite);
            } else {
                rate_max = rate_max.max(rate);
            }
        }
        let mut h = match self.opts.h0 {
            Some(h0) => h0,
            None => ((1.0 / rate_max) * 1e-3)
                .min((tend - t0) * 1e-3)
                .max((tend - t0) * 1e-12),
        };
        let hmin = (tend - t0) * 1e-15;

        // Shared Nordsieck history over SoA vectors.
        let mut z: Vec<Vec<f64>> = vec![y.to_vec(), rhs.iter().map(|&f| f * h).collect()];
        let mut t = t0;
        let mut qwait = 2usize;
        let mut steps: u64 = 0;
        let mut rejected: u64 = 0;
        let mut global_newton_fails = 0usize;
        let mut global_err_fails = 0usize;
        let mut have_acor_prev = false;

        // Modified-Newton Jacobian reuse state.
        let mut jac_fresh = false;
        let mut jac_age: u64 = 0;
        let mut gamma_factored: Option<f64> = None;

        while t < tend - 1e-14 * (tend - t0).abs() && book.any_active() {
            if steps + rejected > self.opts.max_steps as u64 {
                for lane in 0..w {
                    if book.active[lane] {
                        book.drop_lane(lane, BdfErrorKind::MaxSteps);
                    }
                }
                break;
            }
            if t + h > tend {
                let r = (tend - t) / h;
                rescale(&mut z, q, r);
                h = tend - t;
            }
            bdf_l(q, &mut l);
            let gamma = l[0] * h;
            self.error_weights(&z[0], n, w, &mut ewt);
            predict(&mut z, q);
            let tn = t + h;

            let need_jac = !jac_fresh || jac_age >= JAC_REFRESH_STEPS;
            let need_factor = need_jac
                || gamma_factored
                    .map(|g| ((gamma - g) / g).abs() > GAMMA_DRIFT_TOL)
                    .unwrap_or(true);
            if need_jac {
                for lane in 0..w {
                    if !book.active[lane] {
                        continue;
                    }
                    gather_lane(&z[0], w, lane, &mut lane_y);
                    sys.jac(lane, tn, &lane_y, &mut lane_jac);
                    jacs[lane * n * n..][..n * n].copy_from_slice(&lane_jac);
                    book.jac_evals[lane] += 1;
                }
                jac_fresh = true;
                jac_age = 0;
            }
            if need_factor {
                let t_factor = Instant::now();
                self.lu
                    .factor_newton_batch(&jacs, gamma, w, &mut vals, &mut singular);
                solve_ns += t_factor.elapsed().as_nanos() as u64;
                gamma_factored = Some(gamma);
                for lane in 0..w {
                    if book.active[lane] {
                        book.factorizations[lane] += 1;
                    }
                }
                let any_singular = (0..w).any(|lane| book.active[lane] && singular[lane]);
                if any_singular {
                    unpredict(&mut z, q);
                    rejected += 1;
                    let mut culprits = Vec::new();
                    for lane in 0..w {
                        if book.active[lane] && singular[lane] {
                            book.rejected[lane] += 1;
                            book.sing_fails[lane] += 1;
                            if book.sing_fails[lane] >= SINGULAR_FAIL_LIMIT {
                                book.drop_lane(lane, BdfErrorKind::SingularMatrix);
                            } else {
                                culprits.push(lane);
                            }
                        }
                    }
                    if h * 0.25 < hmin {
                        for lane in culprits {
                            book.drop_lane(lane, BdfErrorKind::SingularMatrix);
                        }
                    } else {
                        rescale(&mut z, q, 0.25);
                        h *= 0.25;
                    }
                    continue;
                }
            }

            // Modified-Newton corrector, all lanes in lockstep. A lane is
            // converged once its residual norm passes the scalar test and
            // is then frozen (its acor receives no further updates, exactly
            // like the scalar break); iteration continues until every
            // active lane has converged or diverged, or the budget runs
            // out.
            acor.iter_mut().for_each(|v| *v = 0.0);
            ycur.copy_from_slice(&z[0]);
            conv.iter_mut().for_each(|c| *c = false);
            diverged.iter_mut().for_each(|c| *c = false);
            last_dn.iter_mut().for_each(|d| *d = f64::INFINITY);
            for _ in 0..4 {
                for lane in 0..w {
                    mask[lane] = if book.active[lane] && !conv[lane] && !diverged[lane] {
                        1.0
                    } else {
                        0.0
                    };
                }
                for lane in 0..w {
                    if mask[lane] == 0.0 {
                        continue;
                    }
                    gather_lane(&ycur, w, lane, &mut lane_y);
                    sys.rhs(lane, tn, &lane_y, &mut lane_f);
                    book.rhs_evals[lane] += 1;
                    scatter_lane(&lane_f, w, lane, &mut rhs);
                    book.newton_iters[lane] += 1;
                }
                for i in 0..nw {
                    resid[i] = gamma * rhs[i] - l[0] * z[1][i] - acor[i];
                }
                let t_solve = Instant::now();
                self.lu.solve_batch(&vals, w, &mut resid, &mut sol_scratch);
                solve_ns += t_solve.elapsed().as_nanos() as u64;
                // Frozen lanes take no update (branch-free via the mask).
                for i in 0..n {
                    let rr = &mut resid[i * w..][..w];
                    let ar = &mut acor[i * w..][..w];
                    let yr = &mut ycur[i * w..][..w];
                    let zr = &z[0][i * w..][..w];
                    for lane in 0..w {
                        rr[lane] *= mask[lane];
                        ar[lane] += rr[lane];
                        yr[lane] = zr[lane] + ar[lane];
                    }
                }
                wrms_lanes(&resid, &ewt, n, w, &mut dn);
                let mut all_settled = true;
                for lane in 0..w {
                    if mask[lane] == 0.0 {
                        continue;
                    }
                    if dn[lane].is_finite() && dn[lane] < 0.1 {
                        conv[lane] = true;
                    } else if !dn[lane].is_finite() || dn[lane] > 2.0 * last_dn[lane] {
                        // Diverging: further iterations will not save it.
                        diverged[lane] = true;
                    } else {
                        last_dn[lane] = dn[lane];
                        all_settled = false;
                    }
                }
                if all_settled {
                    break;
                }
            }
            let any_nonconv = (0..w).any(|lane| book.active[lane] && !conv[lane]);
            if any_nonconv {
                unpredict(&mut z, q);
                rejected += 1;
                for lane in 0..w {
                    if book.active[lane] {
                        book.rejected[lane] += 1;
                    }
                }
                if jac_age > 0 {
                    // The Jacobian was stale: refresh it and retry the same
                    // step before shrinking h (CVODE's convergence-failure
                    // path). `jac_age > 0` guarantees the retry uses a
                    // genuinely newer Jacobian, so this cannot loop.
                    jac_fresh = false;
                    continue;
                }
                // Blame a lane only when it failed while a batchmate
                // passed: a failure shared by every lane is the shared h
                // hunting (the scalar path tolerates that indefinitely),
                // not a lane diverging from the batch.
                let any_passed = (0..w).any(|lane| book.active[lane] && conv[lane]);
                for lane in 0..w {
                    if !book.active[lane] {
                        continue;
                    }
                    if conv[lane] {
                        // This lane held up its end: the rejection is a
                        // batchmate's, so its consecutive count restarts.
                        book.newton_fails[lane] = 0;
                    } else {
                        if any_passed {
                            book.newton_fails[lane] += 1;
                        }
                        if book.newton_fails[lane] >= LANE_FAIL_LIMIT {
                            book.drop_lane(lane, BdfErrorKind::StepUnderflow { t });
                        }
                    }
                }
                global_newton_fails += 1;
                if h * 0.25 < hmin {
                    for lane in 0..w {
                        if book.active[lane] && !conv[lane] {
                            book.drop_lane(lane, BdfErrorKind::StepUnderflow { t });
                        }
                    }
                } else {
                    rescale(&mut z, q, 0.25);
                    h *= 0.25;
                }
                jac_fresh = false;
                if global_newton_fails > 2 && q > 1 {
                    z.truncate(2);
                    q = 1;
                    qwait = 2;
                    have_acor_prev = false;
                }
                continue;
            }
            global_newton_fails = 0;
            for lane in 0..w {
                if book.active[lane] {
                    book.newton_fails[lane] = 0;
                    book.sing_fails[lane] = 0;
                }
            }

            // Per-lane error test; the step stands only if every active
            // lane passes.
            wrms_lanes(&acor, &ewt, n, w, &mut est);
            let qp1 = q as f64 + 1.0;
            for e in est.iter_mut() {
                *e /= qp1;
            }
            // A non-finite estimate fails the test too, hence not `> 1.0`.
            let failed = |e: f64| e.is_nan() || e > 1.0;
            let any_bad = (0..w).any(|lane| book.active[lane] && failed(est[lane]));
            if any_bad {
                unpredict(&mut z, q);
                rejected += 1;
                global_err_fails += 1;
                let any_passed = (0..w).any(|lane| book.active[lane] && est[lane] <= 1.0);
                let mut est_max: f64 = 0.0;
                for lane in 0..w {
                    if !book.active[lane] {
                        continue;
                    }
                    book.rejected[lane] += 1;
                    if est[lane] <= 1.0 {
                        // The lane passed; the rejection is a batchmate's.
                        book.err_fails[lane] = 0;
                    } else {
                        if any_passed && est[lane] > BLAME_EST {
                            book.err_fails[lane] += 1;
                        }
                        if book.err_fails[lane] >= LANE_FAIL_LIMIT {
                            book.drop_lane(lane, BdfErrorKind::StepUnderflow { t });
                        } else if est[lane].is_finite() {
                            est_max = est_max.max(est[lane]);
                        } else {
                            book.drop_lane(lane, BdfErrorKind::NonFinite);
                        }
                    }
                }
                if est_max > 1.0 {
                    let r = (0.9 * est_max.powf(-1.0 / qp1)).clamp(0.1, 0.9);
                    if h * r < hmin {
                        for lane in 0..w {
                            if book.active[lane] && failed(est[lane]) {
                                book.drop_lane(lane, BdfErrorKind::StepUnderflow { t });
                            }
                        }
                    } else {
                        rescale(&mut z, q, r);
                        h *= r;
                    }
                }
                if global_err_fails >= 3 && q > 1 {
                    z.truncate(2);
                    q = 1;
                    qwait = 2;
                    have_acor_prev = false;
                }
                continue;
            }
            global_err_fails = 0;
            for lane in 0..w {
                if book.active[lane] {
                    book.err_fails[lane] = 0;
                }
            }

            // Accept.
            for j in 0..=q {
                let zj = &mut z[j];
                for i in 0..nw {
                    zj[i] += l[j] * acor[i];
                }
            }
            t = tn;
            steps += 1;
            jac_age += 1;
            let mut est_acc: f64 = 0.0;
            for lane in 0..w {
                if book.active[lane] {
                    book.steps[lane] += 1;
                    est_acc = est_acc.max(est[lane]);
                }
            }

            // Shared step/order adaptation from the worst active lane.
            // The scalar controller's 0.9·est^(−1/(q+1)) targets est ≈ 0.73
            // — fine when est measures the one system being stepped, but
            // the batch serves max-over-lanes, and parking the worst lane
            // that close to the error boundary produces a reject/accept
            // limit cycle that strings up per-lane failures. Use CVODE's
            // biased controller instead (target est ≈ 1/6): the worst lane
            // gets real margin and rejections become rare.
            let eta_q = 1.0 / ((6.0 * est_acc.max(1e-12)).powf(1.0 / qp1) + 1e-6);
            let mut eta = eta_q;
            let mut new_q = q;
            if qwait > 0 {
                qwait -= 1;
            } else {
                if q > 1 {
                    wrms_lanes(&z[q], &ewt, n, w, &mut lane_norm);
                    let mut est_dn: f64 = 0.0;
                    for lane in 0..w {
                        if book.active[lane] {
                            est_dn = est_dn.max(lane_norm[lane] / q as f64);
                        }
                    }
                    let eta_dn = 1.0 / ((6.0 * est_dn.max(1e-12)).powf(1.0 / q as f64) + 1e-6);
                    if eta_dn > eta {
                        eta = eta_dn;
                        new_q = q - 1;
                    }
                }
                if q < max_order && have_acor_prev {
                    for i in 0..nw {
                        resid[i] = acor[i] - acor_prev[i];
                    }
                    wrms_lanes(&resid, &ewt, n, w, &mut lane_norm);
                    let mut est_up: f64 = 0.0;
                    for lane in 0..w {
                        if book.active[lane] {
                            est_up = est_up.max(lane_norm[lane] / (q as f64 + 2.0));
                        }
                    }
                    let eta_up =
                        1.0 / ((10.0 * est_up.max(1e-12)).powf(1.0 / (q as f64 + 2.0)) + 1e-6);
                    if eta_up > eta {
                        eta = eta_up;
                        new_q = q + 1;
                    }
                }
            }
            acor_prev.copy_from_slice(&acor);
            have_acor_prev = true;

            if new_q != q {
                if new_q > q {
                    let mut zq1 = vec![0.0; nw];
                    for i in 0..nw {
                        zq1[i] = acor[i] * l[q] / qp1;
                    }
                    z.push(zq1);
                } else {
                    z.truncate(new_q + 1);
                }
                q = new_q;
                qwait = q + 1;
                have_acor_prev = false;
            }
            let eta = eta.clamp(0.2, 5.0);
            if !(0.9..=1.3).contains(&eta) {
                rescale(&mut z, q, eta);
                h *= eta;
            }
        }

        // Write back the completed lanes.
        for lane in 0..w {
            if book.active[lane] {
                for i in 0..n {
                    y[i * w + lane] = z[0][i * w + lane];
                }
            }
        }
        self.reports(&book, solve_ns, q)
    }

    fn error_weights(&self, z0: &[f64], n: usize, w: usize, ewt: &mut [f64]) {
        for i in 0..n {
            let atol = if self.opts.atol.len() == 1 {
                self.opts.atol[0]
            } else {
                self.opts.atol[i]
            };
            let zr = &z0[i * w..][..w];
            let er = &mut ewt[i * w..][..w];
            for l in 0..w {
                er[l] = 1.0 / (self.opts.rtol * zr[l].abs() + atol);
            }
        }
    }

    fn reports(&self, book: &LaneBook, solve_ns: u64, q: usize) -> Vec<LaneReport> {
        let w = book.active.len();
        let share = solve_ns / w.max(1) as u64;
        (0..w)
            .map(|lane| LaneReport {
                status: match &book.dropped[lane] {
                    None => LaneStatus::Completed,
                    Some(kind) => LaneStatus::Dropped(kind.clone()),
                },
                stats: BdfStats {
                    steps: book.steps[lane],
                    rejected: book.rejected[lane],
                    rhs_evals: book.rhs_evals[lane],
                    jac_evals: book.jac_evals[lane],
                    factorizations: book.factorizations[lane],
                    newton_iters: book.newton_iters[lane],
                    solve_ns: share,
                    final_order: q,
                },
            })
            .collect()
    }
}

fn gather_lane(soa: &[f64], w: usize, lane: usize, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = soa[i * w + lane];
    }
}

fn scatter_lane(src: &[f64], w: usize, lane: usize, soa: &mut [f64]) {
    for (i, s) in src.iter().enumerate() {
        soa[i * w + lane] = *s;
    }
}

/// The burn system of a batch: one scalar [`BurnSystem`] per lane (each
/// with its own density), so the batched path integrates *exactly* the
/// physics of the scalar path.
struct BatchBurnSystem<'a> {
    lanes: Vec<BurnSystem<'a>>,
    dim: usize,
}

impl LaneOde for BatchBurnSystem<'_> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn lanes(&self) -> usize {
        self.lanes.len()
    }
    fn rhs(&self, lane: usize, t: f64, y: &[f64], dydt: &mut [f64]) {
        self.lanes[lane].rhs(t, y, dydt);
    }
    fn jac(&self, lane: usize, t: f64, y: &[f64], jac: &mut [f64]) {
        self.lanes[lane].jac(t, y, jac);
    }
}

/// One zone's burn request, as collected by a driver sweep.
#[derive(Clone, Debug)]
pub struct ZoneBurn {
    /// Deterministic flat zone index (fault injection and failure reports
    /// key on it).
    pub zone: u64,
    /// Density, g/cm³.
    pub rho: f64,
    /// Entry temperature, K.
    pub t0: f64,
    /// Entry mass fractions.
    pub x0: Vec<f64>,
}

/// The batched burner: chunks a sweep's zones into SoA batches for
/// [`BatchBdf`], and routes everything the batch cannot hold — dropouts,
/// fault-injected zones, leftover single zones, sub-width sweeps — through
/// the scalar [`RecoveringBurner`] retry ladder it wraps.
///
/// The batch path always uses the network's pattern-specialized sparse LU
/// (the batched replay *is* the SIMD carrier); the configured
/// [`SolverChoice`] still governs the scalar ladder underneath.
pub struct BatchBurner<'a> {
    net: &'a dyn Network,
    eos: &'a dyn Eos,
    integ: BatchBdf,
    ladder: RecoveringBurner<'a>,
    width: usize,
    faults: Option<BurnFaultConfig>,
}

impl BurnerConfig {
    /// Build the batched burner this configuration describes (see
    /// [`BurnerConfig::batch_width`]); the scalar ladder from
    /// [`BurnerConfig::build`] rides inside it for dropouts and faults.
    pub fn build_batched<'a>(&self, net: &'a dyn Network, eos: &'a dyn Eos) -> BatchBurner<'a> {
        BatchBurner {
            net,
            eos,
            integ: BatchBdf::new(
                self.bdf.clone(),
                Arc::new(SparseLu::compile(&net.sparsity_csr())),
            ),
            ladder: self.build(net, eos),
            width: self.batch_width,
            faults: self.faults.clone(),
        }
    }
}

impl<'a> BatchBurner<'a> {
    /// The configured lane width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The scalar retry ladder the batch drops out to.
    pub fn ladder(&self) -> &RecoveringBurner<'a> {
        &self.ladder
    }

    /// Burn a sweep's worth of zones for `dt` seconds each. Results come
    /// back in input order. Zones are sorted by temperature (stable,
    /// deterministic) before chunking so cost-similar zones share a batch;
    /// fault-injected zones bypass the batch so the injection schedule
    /// sees exactly the scalar attempt sequence.
    pub fn burn_all(
        &self,
        zones: &[ZoneBurn],
        dt: f64,
    ) -> Vec<Result<RecoveredBurn, Box<BurnFailure>>> {
        let mut results: Vec<Option<Result<RecoveredBurn, Box<BurnFailure>>>> =
            (0..zones.len()).map(|_| None).collect();
        let mut batchable: Vec<usize> = Vec::new();
        for (i, zb) in zones.iter().enumerate() {
            let faulted = self
                .faults
                .as_ref()
                .map(|f| f.zone_is_faulty(zb.zone))
                .unwrap_or(false);
            if self.width < 2 || faulted {
                results[i] = Some(self.ladder.burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt));
            } else {
                batchable.push(i);
            }
        }
        // Hot zones batch with hot zones: similar step-size histories keep
        // occupancy high. total_cmp + zone id keeps the order total and
        // deterministic (bit-exact restarts resort identically).
        batchable.sort_by(|&a, &b| {
            zones[b]
                .t0
                .total_cmp(&zones[a].t0)
                .then(zones[a].zone.cmp(&zones[b].zone))
        });
        for chunk in batchable.chunks(self.width) {
            if chunk.len() < 2 {
                for &i in chunk {
                    let zb = &zones[i];
                    results[i] = Some(self.ladder.burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt));
                }
                continue;
            }
            self.burn_chunk(zones, chunk, dt, &mut results);
        }
        results
            .into_iter()
            .map(|r| r.expect("every zone was burned"))
            .collect()
    }

    fn burn_chunk(
        &self,
        zones: &[ZoneBurn],
        chunk: &[usize],
        dt: f64,
        results: &mut [Option<Result<RecoveredBurn, Box<BurnFailure>>>],
    ) {
        use exastro_telemetry::Telemetry;
        let n = self.net.nspec();
        let m = n + 1;
        let w = chunk.len();
        let _prof = exastro_parallel::Profiler::region("burner");
        let sys = BatchBurnSystem {
            lanes: chunk
                .iter()
                .map(|&i| BurnSystem {
                    net: self.net,
                    eos: self.eos,
                    rho: zones[i].rho,
                    self_heat: true,
                })
                .collect(),
            dim: m,
        };
        let mut y = vec![0.0; m * w];
        let mut y_entry = vec![0.0; m * w];
        let mut lane_buf = vec![0.0; n];
        for (lane, &i) in chunk.iter().enumerate() {
            let zb = &zones[i];
            mass_to_molar(self.net.species(), &zb.x0, &mut lane_buf);
            for k in 0..n {
                y[k * w + lane] = lane_buf[k];
            }
            y[n * w + lane] = zb.t0;
        }
        y_entry.copy_from_slice(&y);
        let reports = self.integ.integrate(&sys, 0.0, dt, &mut y);
        let mut solve_share: u64 = 0;
        let mut completed = 0u64;
        let mut dropped = 0u64;
        for (lane, &i) in chunk.iter().enumerate() {
            let zb = &zones[i];
            let report = &reports[lane];
            solve_share += report.stats.solve_ns;
            let batch_ok = matches!(report.status, LaneStatus::Completed);
            let rec = if batch_ok {
                let mut yl = vec![0.0; m];
                let mut yl0 = vec![0.0; m];
                gather_lane(&y, w, lane, &mut yl);
                gather_lane(&y_entry, w, lane, &mut yl0);
                let mut x = vec![0.0; n];
                molar_to_mass(self.net.species(), &yl[..n], &mut x);
                let sum: f64 = x.iter().sum();
                if (sum - 1.0).abs() < 0.01 && sum > 0.0 {
                    x.iter_mut().for_each(|xi| *xi /= sum);
                }
                let enuc = self
                    .net
                    .species()
                    .iter()
                    .enumerate()
                    .map(|(k, s)| s.bind_mev * (yl[k] - yl0[k]))
                    .sum::<f64>()
                    * N_A
                    * MEV_TO_ERG;
                let out = BurnOutcome {
                    x,
                    t: yl[n],
                    enuc,
                    stats: report.stats,
                };
                match validate_outcome(&out) {
                    Ok(()) => Some(RecoveredBurn {
                        outcome: out,
                        rung: crate::recovery::LadderRung::Direct,
                        retries: 0,
                    }),
                    Err(_) => None,
                }
            } else {
                None
            };
            match rec {
                Some(rec) => {
                    completed += 1;
                    exastro_parallel::Profiler::record_zones(1);
                    record_burn_telemetry(&rec);
                    results[i] = Some(Ok(rec));
                }
                None => {
                    // Dropout: re-burn from the entry state through the
                    // scalar ladder (bit-identical to a ladder-only burn),
                    // charging the zone its share of the failed batch work
                    // as one extra retry.
                    dropped += 1;
                    let res = self.ladder.burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt);
                    results[i] = Some(match res {
                        Ok(mut rec) => {
                            let mut s = report.stats;
                            s.merge(&rec.outcome.stats);
                            rec.outcome.stats = s;
                            rec.retries += 1;
                            Ok(rec)
                        }
                        Err(mut f) => {
                            let mut s = report.stats;
                            s.merge(&f.stats);
                            f.stats = s;
                            f.attempts += 1;
                            Err(f)
                        }
                    });
                }
            }
        }
        exastro_parallel::Profiler::record_ns("solve[batch-sparse]", solve_share);
        if Telemetry::is_enabled() {
            exastro_telemetry::counter_add("burn.batch.zones", completed);
            exastro_telemetry::counter_add("burn.batch.dropouts", dropped);
            Telemetry::record_hist("burn.batch.occupancy", completed as f64 / w as f64);
        }
    }
}

impl Burner for BatchBurner<'_> {
    /// A single zone cannot batch: it takes the scalar ladder directly.
    fn burn_zone(
        &self,
        zone: u64,
        rho: f64,
        t0: f64,
        x0: &[f64],
        dt: f64,
    ) -> Result<RecoveredBurn, Box<BurnFailure>> {
        self.ladder.burn_zone(zone, rho, t0, x0, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::StellarEos;
    use crate::integrator::{BdfIntegrator, NewtonSolver};
    use crate::network::{Aprox13, CBurn2};
    use crate::recovery::LadderRung;
    use crate::sparse::CsrPattern;

    /// Lanes of Robertson problems with per-lane rate scalings.
    struct RobertsonLanes {
        k: Vec<f64>,
    }
    impl LaneOde for RobertsonLanes {
        fn dim(&self) -> usize {
            3
        }
        fn lanes(&self) -> usize {
            self.k.len()
        }
        fn rhs(&self, lane: usize, _t: f64, y: &[f64], d: &mut [f64]) {
            let k = self.k[lane];
            d[0] = -0.04 * k * y[0] + 1e4 * y[1] * y[2];
            d[2] = 3e7 * k * y[1] * y[1];
            d[1] = -d[0] - d[2];
        }
        fn jac(&self, lane: usize, _t: f64, y: &[f64], j: &mut [f64]) {
            let k = self.k[lane];
            j[0] = -0.04 * k;
            j[1] = 1e4 * y[2];
            j[2] = 1e4 * y[1];
            j[6] = 0.0;
            j[7] = 6e7 * k * y[1];
            j[8] = 0.0;
            j[3] = -j[0] - j[6];
            j[4] = -j[1] - j[7];
            j[5] = -j[2] - j[8];
        }
    }

    /// Scalar wrapper for one Robertson lane.
    struct RobertsonScalar {
        k: f64,
    }
    impl OdeSystem for RobertsonScalar {
        fn dim(&self) -> usize {
            3
        }
        fn rhs(&self, t: f64, y: &[f64], d: &mut [f64]) {
            RobertsonLanes { k: vec![self.k] }.rhs(0, t, y, d);
        }
        fn jac(&self, t: f64, y: &[f64], j: &mut [f64]) {
            RobertsonLanes { k: vec![self.k] }.jac(0, t, y, j);
        }
    }

    fn robertson_pattern() -> CsrPattern {
        CsrPattern::new(
            3,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
            ],
        )
    }

    #[test]
    fn batched_robertson_matches_scalar_per_lane() {
        let ks = vec![1.0, 0.7, 1.3, 0.9];
        let w = ks.len();
        let opts = BdfOptions::builder()
            .rtol(1e-10)
            .atol_vec(vec![1e-12, 1e-14, 1e-12])
            .build()
            .unwrap();
        let lu = Arc::new(SparseLu::compile(&robertson_pattern()));
        let batch = BatchBdf::new(opts.clone(), lu);
        let sys = RobertsonLanes { k: ks.clone() };
        let mut y = vec![0.0; 3 * w];
        for l in 0..w {
            y[l] = 1.0; // y0 = [1, 0, 0] per lane
        }
        let reports = batch.integrate(&sys, 0.0, 40.0, &mut y);
        for (l, k) in ks.iter().enumerate() {
            assert_eq!(reports[l].status, LaneStatus::Completed, "lane {l}");
            assert!(reports[l].stats.steps > 0);
            let mut opts = opts.clone();
            opts.solver = NewtonSolver::Sparse(robertson_pattern());
            let integ = BdfIntegrator::new(opts);
            let mut ys = [1.0, 0.0, 0.0];
            integ
                .integrate(&RobertsonScalar { k: *k }, 0.0, 40.0, &mut ys)
                .unwrap();
            for i in 0..3 {
                let (b, s) = (y[i * w + l], ys[i]);
                // The batch controller takes a different h/order sequence,
                // so agreement is to the global-error level, not bitwise.
                assert!(
                    (b - s).abs() < 1e-6 * s.abs().max(1e-8),
                    "lane {l} comp {i}: batch {b} vs scalar {s}"
                );
            }
            // Conservation survives the batch.
            let sum: f64 = (0..3).map(|i| y[i * w + l]).sum();
            assert!((sum - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn batch_reuses_jacobians_across_steps() {
        let w = 4;
        let opts = BdfOptions::builder()
            .rtol(1e-8)
            .atol(1e-12)
            .build()
            .unwrap();
        let lu = Arc::new(SparseLu::compile(&robertson_pattern()));
        let batch = BatchBdf::new(opts, lu);
        let sys = RobertsonLanes {
            k: vec![1.0, 1.01, 0.99, 1.02],
        };
        let mut y = vec![0.0; 3 * w];
        for l in 0..w {
            y[l] = 1.0;
        }
        let reports = batch.integrate(&sys, 0.0, 40.0, &mut y);
        let r = &reports[0];
        assert_eq!(r.status, LaneStatus::Completed);
        assert!(
            r.stats.jac_evals * 3 < r.stats.steps,
            "modified-Newton reuse must amortize Jacobians: {} evals over {} steps",
            r.stats.jac_evals,
            r.stats.steps
        );
        assert!(
            r.stats.factorizations < r.stats.steps,
            "γ-drift refactor must be rarer than steps: {} vs {}",
            r.stats.factorizations,
            r.stats.steps
        );
    }

    #[test]
    fn batched_atol_mismatch_drops_every_lane_structurally() {
        let opts = BdfOptions::builder()
            .atol_vec(vec![1e-12, 1e-12]) // dim is 3
            .build()
            .unwrap();
        let lu = Arc::new(SparseLu::compile(&robertson_pattern()));
        let batch = BatchBdf::new(opts, lu);
        let sys = RobertsonLanes { k: vec![1.0, 1.0] };
        let mut y = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let reports = batch.integrate(&sys, 0.0, 1.0, &mut y);
        for r in &reports {
            assert_eq!(
                r.status,
                LaneStatus::Dropped(BdfErrorKind::AtolMismatch {
                    atol_len: 2,
                    dim: 3
                })
            );
        }
    }

    #[test]
    fn burn_all_matches_the_scalar_ladder_closely() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let cfg = BurnerConfig {
            batch_width: 4,
            ..Default::default()
        };
        let batched = cfg.build_batched(&net, &eos);
        let ladder = cfg.build(&net, &eos);
        let zones: Vec<ZoneBurn> = (0..8)
            .map(|i| ZoneBurn {
                zone: i,
                rho: 5e7 * (1.0 + 0.01 * i as f64),
                t0: 3e9 * (1.0 + 0.005 * i as f64),
                x0: vec![1.0, 0.0],
            })
            .collect();
        let dt = 1e-7;
        let recs = batched.burn_all(&zones, dt);
        assert_eq!(recs.len(), zones.len());
        for (zb, rec) in zones.iter().zip(&recs) {
            let rec = rec.as_ref().expect("batched burn succeeds");
            let sref = ladder
                .burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt)
                .unwrap();
            assert!(
                ((rec.outcome.t - sref.outcome.t) / sref.outcome.t).abs() < 1e-5,
                "zone {}: batch T {} vs scalar T {}",
                zb.zone,
                rec.outcome.t,
                sref.outcome.t
            );
            for (a, b) in rec.outcome.x.iter().zip(&sref.outcome.x) {
                assert!((a - b).abs() < 1e-5, "zone {}: {a} vs {b}", zb.zone);
            }
            let sum: f64 = rec.outcome.x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn occupancy_and_dropouts_land_in_telemetry() {
        use exastro_telemetry::{counter_get, histogram, Telemetry};
        // Counters and histograms are process-global, so assert on deltas
        // and leave telemetry enabled for whoever else is running.
        Telemetry::enable();
        let zones_before = counter_get("burn.batch.zones");
        let occ_before = histogram("burn.batch.occupancy").count();
        let net = CBurn2::new();
        let eos = StellarEos;
        let cfg = BurnerConfig {
            batch_width: 4,
            ..Default::default()
        };
        // Mild, cost-similar zones (tight spread, CO fuel) so the whole
        // chunk completes inside the batch rather than dropping out.
        let zones: Vec<ZoneBurn> = (0..4)
            .map(|i| ZoneBurn {
                zone: i,
                rho: 5e7,
                t0: 2.8e9 * (1.0 + 0.001 * i as f64),
                x0: vec![0.5, 0.5],
            })
            .collect();
        let recs = cfg.build_batched(&net, &eos).burn_all(&zones, 1e-7);
        for rec in recs {
            let rec = rec.expect("burn succeeds");
            assert_eq!(rec.retries, 0, "zone should complete inside the batch");
        }
        assert!(
            counter_get("burn.batch.zones") >= zones_before + 4,
            "batch-completed zones must show up in burn.batch.zones"
        );
        assert!(
            histogram("burn.batch.occupancy").count() > occ_before,
            "every chunk must record an occupancy sample"
        );
        // Starve the integrator so every lane drops out: the dropouts
        // counter must advance by the full batch.
        let drops_before = counter_get("burn.batch.dropouts");
        let mut starved = cfg.clone();
        starved.bdf.max_steps = 3;
        for rec in starved.build_batched(&net, &eos).burn_all(&zones, 1e-7) {
            // Rescued or not, the zones left the batch as dropouts.
            let _ = rec;
        }
        assert!(
            counter_get("burn.batch.dropouts") >= drops_before + 4,
            "starved lanes must show up in burn.batch.dropouts"
        );
    }

    #[test]
    fn results_come_back_in_input_order_despite_sorting() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let cfg = BurnerConfig {
            batch_width: 4,
            ..Default::default()
        };
        let batched = cfg.build_batched(&net, &eos);
        // Alternating hot/cold so the temperature sort reorders heavily.
        let zones: Vec<ZoneBurn> = (0..8)
            .map(|i| ZoneBurn {
                zone: i,
                rho: 5e7,
                t0: if i % 2 == 0 {
                    3e9
                } else {
                    1e8 + 1e6 * i as f64
                },
                x0: vec![1.0, 0.0],
            })
            .collect();
        let recs = batched.burn_all(&zones, 1e-8);
        for (i, (zb, rec)) in zones.iter().zip(&recs).enumerate() {
            let rec = rec.as_ref().unwrap();
            if zb.t0 > 1e9 {
                assert!(
                    rec.outcome.t > 1e9,
                    "slot {i} must hold the hot zone's result"
                );
            } else {
                assert!(
                    rec.outcome.t < 1e9,
                    "slot {i} must hold the cold zone's result"
                );
            }
        }
    }

    #[test]
    fn starved_batch_drops_out_bit_identical_to_the_scalar_ladder() {
        // A step budget far too small for the batch: every lane drops out
        // and is re-burned by the ladder, so the final state must be
        // *bit-identical* to a ladder-only burn, with the batch attempt
        // charged as one extra retry.
        let net = CBurn2::new();
        let eos = StellarEos;
        let mut cfg = BurnerConfig {
            batch_width: 4,
            ..Default::default()
        };
        cfg.bdf.max_steps = 3;
        let batched = cfg.build_batched(&net, &eos);
        let ladder = cfg.build(&net, &eos);
        let zones: Vec<ZoneBurn> = (0..4)
            .map(|i| ZoneBurn {
                zone: i,
                rho: 5e7,
                t0: 3e9,
                x0: vec![1.0, 0.0],
            })
            .collect();
        let dt = 1e-6;
        let recs = batched.burn_all(&zones, dt);
        for (zb, rec) in zones.iter().zip(&recs) {
            let rec = rec.as_ref().expect("ladder rescues the dropout");
            let sref = ladder
                .burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt)
                .unwrap();
            assert_eq!(rec.outcome.t.to_bits(), sref.outcome.t.to_bits());
            for (a, b) in rec.outcome.x.iter().zip(&sref.outcome.x) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(rec.rung, sref.rung);
            assert_eq!(
                rec.retries,
                sref.retries + 1,
                "the failed batch attempt is charged as a retry"
            );
            assert!(
                rec.outcome.stats.steps >= sref.outcome.stats.steps,
                "dropout work is charged to the zone"
            );
        }
    }

    #[test]
    fn faulted_zones_bypass_the_batch_and_ride_the_ladder() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let cfg = BurnerConfig {
            batch_width: 4,
            faults: Some(BurnFaultConfig {
                seed: 42,
                rate: 1.0,
                rungs_to_fail: 1,
                error: BdfErrorKind::MaxSteps,
            }),
            ..Default::default()
        };
        let batched = cfg.build_batched(&net, &eos);
        let zones: Vec<ZoneBurn> = (0..4)
            .map(|i| ZoneBurn {
                zone: i,
                rho: 5e7,
                t0: 3e9,
                x0: vec![1.0, 0.0],
            })
            .collect();
        for rec in batched.burn_all(&zones, 1e-6) {
            let rec = rec.unwrap();
            assert_eq!(rec.rung, LadderRung::RelaxedTol, "injection saw attempt 0");
            assert_eq!(rec.retries, 1, "no spurious batch retry is charged");
        }
    }

    #[test]
    fn width_below_two_is_the_scalar_ladder_exactly() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let cfg = BurnerConfig {
            batch_width: 1,
            ..Default::default()
        };
        let batched = cfg.build_batched(&net, &eos);
        let ladder = cfg.build(&net, &eos);
        let zones = [ZoneBurn {
            zone: 0,
            rho: 5e7,
            t0: 3e9,
            x0: vec![1.0, 0.0],
        }];
        let rec = batched.burn_all(&zones, 1e-6).remove(0).unwrap();
        let sref = ladder.burn_zone(0, 5e7, 3e9, &[1.0, 0.0], 1e-6).unwrap();
        assert_eq!(rec.outcome.t.to_bits(), sref.outcome.t.to_bits());
        for (a, b) in rec.outcome.x.iter().zip(&sref.outcome.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn aprox13_batch_burn_is_physical() {
        let net = Aprox13::new();
        let eos = StellarEos;
        let cfg = BurnerConfig {
            batch_width: 8,
            ..Default::default()
        };
        let batched = cfg.build_batched(&net, &eos);
        let mut x0 = vec![0.0; 13];
        x0[1] = 0.5;
        x0[2] = 0.5;
        let zones: Vec<ZoneBurn> = (0..8)
            .map(|i| ZoneBurn {
                zone: i,
                rho: 1e7 * (1.0 + 0.02 * i as f64),
                t0: 3e9 * (1.0 + 0.01 * i as f64),
                x0: x0.clone(),
            })
            .collect();
        for rec in batched.burn_all(&zones, 1e-7) {
            let rec = rec.unwrap();
            let sum: f64 = rec.outcome.x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "ΣX = {sum}");
            assert!(rec.outcome.enuc > 0.0);
            assert!(rec.outcome.x[1] < 0.5, "carbon consumed");
        }
    }
}
