//! The zone burner: couples a reaction [`Network`] to an [`Eos`] and
//! integrates the resulting stiff system with the BDF integrator.
//!
//! The integrated state is `[Y_1 … Y_n, T]`: molar abundances plus the
//! temperature, with self-heating `dT/dt = ε / c_v` at constant density
//! (the standard Strang-split burn of Castro/MAESTROeX). It is exactly this
//! feedback loop — energy release raises T, which raises the T⁴⁰-sensitive
//! rates — that produces the thermonuclear runaways the paper studies, and
//! it is why the ODE system is stiff enough to demand an implicit solver.

use crate::constants::{MEV_TO_ERG, N_A};
use crate::eos::Eos;
use crate::integrator::{BdfError, BdfIntegrator, BdfOptions, BdfStats, OdeSystem};
use crate::network::Network;
use crate::species::{mass_to_molar, molar_to_mass, Composition};

/// Result of burning one zone for a time interval.
#[derive(Clone, Debug)]
pub struct BurnOutcome {
    /// Final mass fractions.
    pub x: Vec<f64>,
    /// Final temperature, K.
    pub t: f64,
    /// Specific nuclear energy released over the interval, erg/g
    /// (positive = exothermic).
    pub enuc: f64,
    /// Integrator statistics.
    pub stats: BdfStats,
}

struct BurnSystem<'a> {
    net: &'a dyn Network,
    eos: &'a dyn Eos,
    rho: f64,
    self_heat: bool,
}

impl BurnSystem<'_> {
    fn composition(&self, y: &[f64]) -> Composition {
        let n = self.net.nspec();
        let mut x = vec![0.0; n];
        molar_to_mass(self.net.species(), &y[..n], &mut x);
        Composition::from_mass_fractions(self.net.species(), &x)
    }
}

impl OdeSystem for BurnSystem<'_> {
    fn dim(&self) -> usize {
        self.net.nspec() + 1
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.net.nspec();
        let temp = y[n].max(1e4);
        self.net.ydot(self.rho, temp, &y[..n], &mut dydt[..n]);
        if self.self_heat {
            let eps = crate::species::energy_rate(self.net.species(), &dydt[..n]);
            let comp = self.composition(y);
            let cv = self.eos.eval_rt(self.rho, temp, &comp).cv;
            dydt[n] = eps / cv.max(1e-30);
        } else {
            dydt[n] = 0.0;
        }
    }

    fn jac(&self, _t: f64, y: &[f64], jac: &mut [f64]) {
        let n = self.net.nspec();
        let m = n + 1;
        let temp = y[n].max(1e4);
        self.net.jac(self.rho, temp, &y[..n], jac);
        if self.self_heat {
            let comp = self.composition(y);
            let cv = self.eos.eval_rt(self.rho, temp, &comp).cv.max(1e-30);
            // Row n: dṪ/dY_j = (1/cv) Σ_i B_i N_A J_ij ; dṪ/dT likewise from
            // the temperature column. (dc_v/d· terms neglected, as VODE-based
            // burners do.)
            for j in 0..m {
                let mut deps = 0.0;
                for (i, s) in self.net.species().iter().enumerate() {
                    deps += s.bind_mev * jac[i * m + j];
                }
                jac[n * m + j] = deps * N_A * MEV_TO_ERG / cv;
            }
        } else {
            for j in 0..m {
                jac[n * m + j] = 0.0;
            }
        }
    }
}

/// Integrates nuclear burning in single zones.
pub struct Burner<'a> {
    net: &'a dyn Network,
    eos: &'a dyn Eos,
    integ: BdfIntegrator,
    self_heat: bool,
}

impl<'a> Burner<'a> {
    /// Create a self-heating burner with the given integrator options.
    pub fn new(net: &'a dyn Network, eos: &'a dyn Eos, opts: BdfOptions) -> Self {
        Burner {
            net,
            eos,
            integ: BdfIntegrator::new(opts),
            self_heat: true,
        }
    }

    /// Disable self-heating (burn at fixed temperature).
    pub fn fixed_temperature(mut self) -> Self {
        self.self_heat = false;
        self
    }

    /// Default tolerances appropriate for burning.
    pub fn default_options() -> BdfOptions {
        BdfOptions {
            rtol: 1e-8,
            atol: vec![1e-12],
            ..Default::default()
        }
    }

    /// Burn one zone at density `rho` from temperature `t0` and mass
    /// fractions `x0` for `dt` seconds.
    pub fn burn(&self, rho: f64, t0: f64, x0: &[f64], dt: f64) -> Result<BurnOutcome, BdfError> {
        self.burn_traced(rho, t0, x0, dt, BdfStats::default()).0
    }

    /// Like [`Burner::burn`], but threads an accumulating [`BdfStats`]
    /// through the call so the integration cost is reported **even on
    /// failure** — the retry ladder uses this to charge every attempt to
    /// the zone's [`crate::recovery::BurnFailure`] record.
    pub fn burn_traced(
        &self,
        rho: f64,
        t0: f64,
        x0: &[f64],
        dt: f64,
        mut stats: BdfStats,
    ) -> (Result<BurnOutcome, BdfError>, BdfStats) {
        let _prof = exastro_parallel::Profiler::region("burner");
        exastro_parallel::Profiler::record_zones(1);
        let n = self.net.nspec();
        assert_eq!(x0.len(), n);
        let mut y = vec![0.0; n + 1];
        mass_to_molar(self.net.species(), x0, &mut y[..n]);
        y[n] = t0;
        let y_init = y.clone();
        let sys = BurnSystem {
            net: self.net,
            eos: self.eos,
            rho,
            self_heat: self.self_heat,
        };
        if let Err(e) = self
            .integ
            .integrate_with_stats(&sys, 0.0, dt, &mut y, &mut stats)
        {
            return (Err(e), stats);
        }
        let mut x = vec![0.0; n];
        molar_to_mass(self.net.species(), &y[..n], &mut x);
        // Renormalize against integration drift.
        let sum: f64 = x.iter().sum();
        if (sum - 1.0).abs() < 0.01 && sum > 0.0 {
            x.iter_mut().for_each(|xi| *xi /= sum);
        }
        let enuc = self
            .net
            .species()
            .iter()
            .enumerate()
            .map(|(i, s)| s.bind_mev * (y[i] - y_init[i]))
            .sum::<f64>()
            * N_A
            * MEV_TO_ERG;
        let outcome = BurnOutcome {
            x,
            t: y[n],
            enuc,
            stats,
        };
        (Ok(outcome), stats)
    }

    /// Integrate until the temperature first reaches `t_ignite` (the paper
    /// terminates its collision runs at 4×10⁹ K), returning the elapsed
    /// time, or `None` if `t_max` passes without ignition.
    pub fn time_to_ignition(
        &self,
        rho: f64,
        t0: f64,
        x0: &[f64],
        t_ignite: f64,
        t_max: f64,
    ) -> Result<Option<f64>, BdfError> {
        let mut t = t0;
        let mut x = x0.to_vec();
        let mut elapsed = 0.0;
        // March in sub-intervals; near the runaway the temperature history
        // is nearly singular, so on an integrator failure the chunk is
        // halved until it resolves. A chunk that cannot be resolved at all
        // (below ~femtoseconds of the total span) IS the runaway.
        let mut dt = t_max / 512.0;
        while elapsed < t_max {
            let step = dt.min(t_max - elapsed);
            let out = match self.burn(rho, t, &x, step) {
                Ok(o) => o,
                Err(e) => {
                    if dt <= t_max * 1e-12 {
                        return if t >= 0.5 * t_ignite {
                            Ok(Some(elapsed))
                        } else {
                            Err(e)
                        };
                    }
                    dt *= 0.25;
                    continue;
                }
            };
            if out.t >= t_ignite {
                // Bisect within the interval for a sharper estimate;
                // failed probes count as "ignited" (the runaway lies
                // inside them).
                let (mut lo, mut hi) = (0.0, step);
                for _ in 0..20 {
                    let mid = 0.5 * (lo + hi);
                    match self.burn(rho, t, &x, mid) {
                        Ok(probe) if probe.t < t_ignite => lo = mid,
                        _ => hi = mid,
                    }
                }
                return Ok(Some(elapsed + 0.5 * (lo + hi)));
            }
            t = out.t;
            x = out.x;
            elapsed += step;
            // Shrink intervals as the temperature accelerates; relax them
            // while quiescent.
            if out.t > 1.05 * t {
                dt = (dt * 0.5).max(t_max * 1e-9);
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::StellarEos;
    use crate::network::{Aprox13, CBurn2, TripleAlpha};

    #[test]
    fn quiescent_zone_stays_quiet() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        // Cold carbon: no burning on dynamical timescales.
        let out = burner.burn(1e6, 1e7, &[1.0, 0.0], 1.0).unwrap();
        assert!((out.x[0] - 1.0).abs() < 1e-10);
        // Integrator abundance drift at atol = 1e-12 maps to ~1e8 erg/g of
        // spurious "release"; anything far below burning scales (1e17) is
        // quiescent.
        assert!(out.enuc.abs() < 1e9);
        assert!((out.t / 1e7 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hot_carbon_burns_exothermically() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        let out = burner.burn(5e7, 3e9, &[1.0, 0.0], 1e-6).unwrap();
        assert!(out.x[0] < 0.999, "carbon should be consumed: {:?}", out.x);
        assert!(out.x[1] > 1e-4);
        assert!(out.enuc > 0.0);
        assert!(out.t > 3e9, "self-heating must raise T");
        // Mass fractions remain a partition of unity.
        let sum: f64 = out.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_temperature_burn_does_not_heat() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options()).fixed_temperature();
        let out = burner.burn(5e7, 3e9, &[1.0, 0.0], 1e-7).unwrap();
        // T is held fixed up to accumulated round-off over many steps.
        assert!((out.t / 3e9 - 1.0).abs() < 1e-8, "T drifted to {}", out.t);
        assert!(out.x[0] < 1.0);
    }

    #[test]
    fn runaway_is_faster_at_higher_density() {
        // The positive feedback loop: at higher ρ the same T ignites sooner.
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        let t_lo = burner
            .time_to_ignition(1e7, 2.2e9, &[1.0, 0.0], 4e9, 1e3)
            .unwrap();
        let t_hi = burner
            .time_to_ignition(1e8, 2.2e9, &[1.0, 0.0], 4e9, 1e3)
            .unwrap();
        let (t_lo, t_hi) = (
            t_lo.expect("low-rho ignites"),
            t_hi.expect("high-rho ignites"),
        );
        assert!(
            t_hi < t_lo,
            "higher density must ignite faster: {t_hi} vs {t_lo}"
        );
    }

    #[test]
    fn cold_zone_never_ignites() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        let res = burner
            .time_to_ignition(1e5, 1e8, &[1.0, 0.0], 4e9, 1.0)
            .unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn triple_alpha_heats_helium() {
        let net = TripleAlpha::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        let out = burner.burn(1e6, 3e8, &[1.0, 0.0, 0.0], 1e-2).unwrap();
        assert!(out.x[1] > 0.0, "carbon produced: {:?}", out.x);
        assert!(out.t > 3e8);
        assert!(out.enuc > 0.0);
    }

    #[test]
    fn aprox13_burn_conserves_mass_and_releases_energy() {
        let net = Aprox13::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        let mut x0 = vec![0.0; 13];
        x0[1] = 0.5; // C12
        x0[2] = 0.5; // O16
        let out = burner.burn(1e7, 3e9, &x0, 1e-7).unwrap();
        let sum: f64 = out.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "Σ X = {sum}");
        assert!(out.enuc > 0.0);
        assert!(out.x[1] < 0.5, "carbon consumed");
        assert!(out.x.iter().all(|&v| v > -1e-12), "no negative abundances");
    }

    #[test]
    fn enuc_is_consistent_with_temperature_rise() {
        // At constant density, ε integrated should ≈ ∫cv dT. Loose check.
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = Burner::new(&net, &eos, Burner::default_options());
        let (rho, t0) = (5e8, 2.5e9);
        let out = burner.burn(rho, t0, &[1.0, 0.0], 3e-8).unwrap();
        assert!(out.t > t0 && out.enuc > 0.0);
        let comp = Composition::from_mass_fractions(net.species(), &out.x);
        let cv_mid = eos.eval_rt(rho, 0.5 * (t0 + out.t), &comp).cv;
        let de_thermal = cv_mid * (out.t - t0);
        assert!(
            (de_thermal / out.enuc - 1.0).abs() < 0.5,
            "enuc {} vs cvΔT {}",
            out.enuc,
            de_thermal
        );
    }
}
