//! The zone burner: couples a reaction [`Network`] to an [`Eos`] and
//! integrates the resulting stiff system with the BDF integrator.
//!
//! The integrated state is `[Y_1 … Y_n, T]`: molar abundances plus the
//! temperature, with self-heating `dT/dt = ε / c_v` at constant density
//! (the standard Strang-split burn of Castro/MAESTROeX). It is exactly this
//! feedback loop — energy release raises T, which raises the T⁴⁰-sensitive
//! rates — that produces the thermonuclear runaways the paper studies, and
//! it is why the ODE system is stiff enough to demand an implicit solver.
//!
//! Drivers consume burning through the [`Burner`] trait: one zone in,
//! either a [`RecoveredBurn`] or a structured [`BurnFailure`] out. The
//! plain single-attempt burner ([`PlainBurner`]) and the retry-ladder
//! burner ([`crate::recovery::RecoveringBurner`]) both implement it, and
//! [`BurnerConfig`] is the one-stop construction point both Castro and
//! MAESTROeX use — including the dense/sparse Newton-solver choice and the
//! [`BurnFaultConfig`] fault-injection plumbing.

use crate::constants::{MEV_TO_ERG, N_A};
use crate::eos::Eos;
use crate::integrator::{BdfError, BdfIntegrator, BdfOptions, BdfStats, NewtonSolver, OdeSystem};
use crate::network::Network;
use crate::recovery::{
    validate_outcome, BurnFailure, BurnFaultConfig, LadderRung, RecoveredBurn, RecoveringBurner,
    RetryLadder,
};
use crate::species::{mass_to_molar, molar_to_mass, Composition};

/// Result of burning one zone for a time interval.
#[derive(Clone, Debug)]
pub struct BurnOutcome {
    /// Final mass fractions.
    pub x: Vec<f64>,
    /// Final temperature, K.
    pub t: f64,
    /// Specific nuclear energy released over the interval, erg/g
    /// (positive = exothermic).
    pub enuc: f64,
    /// Integrator statistics.
    pub stats: BdfStats,
}

/// The driver-facing burn interface: burn one zone, reporting either an
/// annotated success or a structured failure. `zone` is the deterministic
/// flat index used by fault injection and failure reporting.
///
/// Implemented by [`PlainBurner`] (single attempt) and
/// [`crate::recovery::RecoveringBurner`] (retry ladder); both honour
/// [`BurnFaultConfig`] injection, so drivers wire one interface and choose
/// resilience by construction, not by call site.
pub trait Burner {
    /// Burn one zone at density `rho` from temperature `t0` and mass
    /// fractions `x0` for `dt` seconds.
    fn burn_zone(
        &self,
        zone: u64,
        rho: f64,
        t0: f64,
        x0: &[f64],
        dt: f64,
    ) -> Result<RecoveredBurn, Box<BurnFailure>>;
}

pub(crate) struct BurnSystem<'a> {
    pub(crate) net: &'a dyn Network,
    pub(crate) eos: &'a dyn Eos,
    pub(crate) rho: f64,
    pub(crate) self_heat: bool,
}

impl BurnSystem<'_> {
    fn composition(&self, y: &[f64]) -> Composition {
        let n = self.net.nspec();
        let mut x = vec![0.0; n];
        molar_to_mass(self.net.species(), &y[..n], &mut x);
        Composition::from_mass_fractions(self.net.species(), &x)
    }
}

impl OdeSystem for BurnSystem<'_> {
    fn dim(&self) -> usize {
        self.net.nspec() + 1
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.net.nspec();
        let temp = y[n].max(1e4);
        self.net.ydot(self.rho, temp, &y[..n], &mut dydt[..n]);
        if self.self_heat {
            let eps = crate::species::energy_rate(self.net.species(), &dydt[..n]);
            let comp = self.composition(y);
            let cv = self.eos.eval_rt(self.rho, temp, &comp).cv;
            dydt[n] = eps / cv.max(1e-30);
        } else {
            dydt[n] = 0.0;
        }
    }

    fn jac(&self, _t: f64, y: &[f64], jac: &mut [f64]) {
        let n = self.net.nspec();
        let m = n + 1;
        let temp = y[n].max(1e4);
        self.net.jac(self.rho, temp, &y[..n], jac);
        if self.self_heat {
            let comp = self.composition(y);
            let cv = self.eos.eval_rt(self.rho, temp, &comp).cv.max(1e-30);
            // Row n: dṪ/dY_j = (1/cv) Σ_i B_i N_A J_ij ; dṪ/dT likewise from
            // the temperature column. (dc_v/d· terms neglected, as VODE-based
            // burners do.)
            for j in 0..m {
                let mut deps = 0.0;
                for (i, s) in self.net.species().iter().enumerate() {
                    deps += s.bind_mev * jac[i * m + j];
                }
                jac[n * m + j] = deps * N_A * MEV_TO_ERG / cv;
            }
        } else {
            for j in 0..m {
                jac[n * m + j] = 0.0;
            }
        }
    }
}

/// Integrates nuclear burning in single zones, one attempt per zone.
pub struct PlainBurner<'a> {
    net: &'a dyn Network,
    eos: &'a dyn Eos,
    integ: BdfIntegrator,
    self_heat: bool,
    faults: Option<BurnFaultConfig>,
}

impl<'a> PlainBurner<'a> {
    /// Create a self-heating burner with the given integrator options.
    pub fn new(net: &'a dyn Network, eos: &'a dyn Eos, opts: BdfOptions) -> Self {
        PlainBurner {
            net,
            eos,
            integ: BdfIntegrator::new(opts),
            self_heat: true,
            faults: None,
        }
    }

    /// Disable self-heating (burn at fixed temperature).
    pub fn fixed_temperature(mut self) -> Self {
        self.self_heat = false;
        self
    }

    /// Attach a deterministic fault-injection schedule (attempt 0 of a
    /// faulted zone fails from [`Burner::burn_zone`] without integrating).
    pub fn with_faults(mut self, faults: Option<BurnFaultConfig>) -> Self {
        self.faults = faults;
        self
    }

    /// Default tolerances appropriate for burning.
    pub fn default_options() -> BdfOptions {
        BdfOptions::builder()
            .rtol(1e-8)
            .atol(1e-12)
            .build()
            .expect("default burn options are valid")
    }

    /// Burn one zone at density `rho` from temperature `t0` and mass
    /// fractions `x0` for `dt` seconds. On failure the [`BdfError`] carries
    /// the work statistics of the failed attempt, so the retry ladder can
    /// charge every rung's cost to the zone.
    pub fn burn(&self, rho: f64, t0: f64, x0: &[f64], dt: f64) -> Result<BurnOutcome, BdfError> {
        let n = self.net.nspec();
        assert_eq!(x0.len(), n);
        let mut y = vec![0.0; n + 1];
        mass_to_molar(self.net.species(), x0, &mut y[..n]);
        y[n] = t0;
        let y_init = y.clone();
        let sys = BurnSystem {
            net: self.net,
            eos: self.eos,
            rho,
            self_heat: self.self_heat,
        };
        let solve_region = format!("solve[{}]", self.integ.solver_kind());
        let stats = match self.integ.integrate(&sys, 0.0, dt, &mut y) {
            Ok(stats) => {
                exastro_parallel::Profiler::record_ns(&solve_region, stats.solve_ns);
                stats
            }
            Err(e) => {
                exastro_parallel::Profiler::record_ns(&solve_region, e.stats.solve_ns);
                return Err(e);
            }
        };
        let mut x = vec![0.0; n];
        molar_to_mass(self.net.species(), &y[..n], &mut x);
        // Renormalize against integration drift.
        let sum: f64 = x.iter().sum();
        if (sum - 1.0).abs() < 0.01 && sum > 0.0 {
            x.iter_mut().for_each(|xi| *xi /= sum);
        }
        let enuc = self
            .net
            .species()
            .iter()
            .enumerate()
            .map(|(i, s)| s.bind_mev * (y[i] - y_init[i]))
            .sum::<f64>()
            * N_A
            * MEV_TO_ERG;
        Ok(BurnOutcome {
            x,
            t: y[n],
            enuc,
            stats,
        })
    }

    /// Integrate until the temperature first reaches `t_ignite` (the paper
    /// terminates its collision runs at 4×10⁹ K), returning the elapsed
    /// time, or `None` if `t_max` passes without ignition.
    pub fn time_to_ignition(
        &self,
        rho: f64,
        t0: f64,
        x0: &[f64],
        t_ignite: f64,
        t_max: f64,
    ) -> Result<Option<f64>, BdfError> {
        let mut t = t0;
        let mut x = x0.to_vec();
        let mut elapsed = 0.0;
        // March in sub-intervals; near the runaway the temperature history
        // is nearly singular, so on an integrator failure the chunk is
        // halved until it resolves. A chunk that cannot be resolved at all
        // (below ~femtoseconds of the total span) IS the runaway.
        let mut dt = t_max / 512.0;
        while elapsed < t_max {
            let step = dt.min(t_max - elapsed);
            let out = match self.burn(rho, t, &x, step) {
                Ok(o) => o,
                Err(e) => {
                    if dt <= t_max * 1e-12 {
                        return if t >= 0.5 * t_ignite {
                            Ok(Some(elapsed))
                        } else {
                            Err(e)
                        };
                    }
                    dt *= 0.25;
                    continue;
                }
            };
            if out.t >= t_ignite {
                // Bisect within the interval for a sharper estimate;
                // failed probes count as "ignited" (the runaway lies
                // inside them).
                let (mut lo, mut hi) = (0.0, step);
                for _ in 0..20 {
                    let mid = 0.5 * (lo + hi);
                    match self.burn(rho, t, &x, mid) {
                        Ok(probe) if probe.t < t_ignite => lo = mid,
                        _ => hi = mid,
                    }
                }
                return Ok(Some(elapsed + 0.5 * (lo + hi)));
            }
            let t_pre = t;
            t = out.t;
            x = out.x;
            elapsed += step;
            dt = ignition_probe_dt(dt, t_pre, out.t, t_max);
        }
        Ok(None)
    }
}

/// Probe-interval adaptation for [`PlainBurner::time_to_ignition`]: shrink
/// the interval while the temperature accelerates (so the bisection window
/// around the runaway stays tight), relax it while quiescent (so a long
/// pre-ignition simmer does not cost thousands of probes). The comparison
/// is against the **pre-step** temperature — comparing the post-step value
/// with itself made the shrink branch dead code.
fn ignition_probe_dt(dt: f64, t_pre: f64, t_post: f64, t_max: f64) -> f64 {
    if t_post > 1.05 * t_pre {
        // Accelerating: halve the probe, bounded away from zero.
        (dt * 0.5).max(t_max * 1e-9)
    } else if t_post < 1.005 * t_pre {
        // Quiescent: relax back toward the coarse march.
        (dt * 2.0).min(t_max / 512.0)
    } else {
        dt
    }
}

impl Burner for PlainBurner<'_> {
    fn burn_zone(
        &self,
        zone: u64,
        rho: f64,
        t0: f64,
        x0: &[f64],
        dt: f64,
    ) -> Result<RecoveredBurn, Box<BurnFailure>> {
        // One physical zone per `burn_zone` call, however many integration
        // attempts it takes (recording inside `burn` counted a
        // ladder-recovered zone once per rung, inflating zones/µs).
        let _prof = exastro_parallel::Profiler::region("burner");
        exastro_parallel::Profiler::record_zones(1);
        let fail = |error, stats| {
            Box::new(BurnFailure {
                zone,
                rho,
                t0,
                x0: x0.to_vec(),
                rung_reached: LadderRung::Direct,
                attempts: 1,
                error,
                stats,
            })
        };
        if let Some(f) = &self.faults {
            if f.injects(zone, 0) {
                return Err(fail(f.error.clone(), BdfStats::default()));
            }
        }
        match self.burn(rho, t0, x0, dt) {
            Ok(out) => match validate_outcome(&out) {
                Ok(()) => {
                    let rec = RecoveredBurn {
                        outcome: out,
                        rung: LadderRung::Direct,
                        retries: 0,
                    };
                    record_burn_telemetry(&rec);
                    Ok(rec)
                }
                Err(kind) => {
                    let stats = out.stats;
                    Err(fail(kind, stats))
                }
            },
            Err(e) => Err(fail(e.kind, e.stats)),
        }
    }
}

/// Which Newton linear solver the burner should use, resolved against the
/// network's declared sparsity at construction time (drivers pick a policy;
/// the pattern itself comes from [`Network::sparsity_csr`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverChoice {
    /// Dense LU with partial pivoting (VODE's default).
    #[default]
    Dense,
    /// Pattern-specialized sparse LU (the paper's §VI plan).
    Sparse,
}

impl SolverChoice {
    /// Short name for telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            SolverChoice::Dense => "dense",
            SolverChoice::Sparse => "sparse",
        }
    }
}

/// One-stop burner construction shared by the Castro and MAESTROeX burn
/// glue: base integrator options, solver policy, retry ladder, and fault
/// injection in one value, turned into a ladder burner by
/// [`BurnerConfig::build`].
#[derive(Clone, Debug)]
pub struct BurnerConfig {
    /// Base integrator options (the solver field is overridden by
    /// [`BurnerConfig::solver`]).
    pub bdf: BdfOptions,
    /// Newton linear-solver policy.
    pub solver: SolverChoice,
    /// The failure-recovery ladder.
    pub ladder: RetryLadder,
    /// Deterministic fault injection for tests and CI smoke runs.
    pub faults: Option<BurnFaultConfig>,
    /// Lane width of the batched SoA burn path built by
    /// [`BurnerConfig::build_batched`] (see [`crate::batch`]). A width
    /// below 2 disables batching: every zone takes the scalar ladder.
    pub batch_width: usize,
}

impl Default for BurnerConfig {
    fn default() -> Self {
        BurnerConfig {
            bdf: PlainBurner::default_options(),
            solver: SolverChoice::default(),
            ladder: RetryLadder::default(),
            faults: None,
            batch_width: 8,
        }
    }
}

impl BurnerConfig {
    /// The integrator options with the solver policy resolved against
    /// `net`'s declared sparsity pattern.
    pub fn bdf_for(&self, net: &dyn Network) -> BdfOptions {
        let mut bdf = self.bdf.clone();
        bdf.solver = match self.solver {
            SolverChoice::Dense => NewtonSolver::Dense,
            SolverChoice::Sparse => NewtonSolver::Sparse(net.sparsity_csr()),
        };
        bdf
    }

    /// Build the retry-ladder burner this configuration describes.
    pub fn build<'a>(&self, net: &'a dyn Network, eos: &'a dyn Eos) -> RecoveringBurner<'a> {
        RecoveringBurner::new(net, eos, self.bdf_for(net), &self.ladder)
            .with_faults(self.faults.clone())
    }
}

/// Per-zone burn-cost telemetry, recorded by both [`Burner`] impls on every
/// successful zone when telemetry is enabled: log-scale histograms of BDF
/// steps and Newton iterations (the §VI outlier-zone distributions) and a
/// counter per retry-ladder rung reached.
pub(crate) fn record_burn_telemetry(rec: &RecoveredBurn) {
    use exastro_telemetry::Telemetry;
    if !Telemetry::is_enabled() {
        return;
    }
    Telemetry::record_hist("burn.bdf_steps", rec.outcome.stats.steps as f64);
    Telemetry::record_hist("burn.newton_iters", rec.outcome.stats.newton_iters as f64);
    let rung_counter = match rec.rung {
        LadderRung::Direct => "burn.rung.direct",
        LadderRung::RelaxedTol => "burn.rung.relaxed-tol",
        LadderRung::Subcycle => "burn.rung.subcycle",
        LadderRung::Offload => "burn.rung.offload",
    };
    exastro_telemetry::counter_add(rung_counter, 1);
}

/// Shared per-sweep burn accounting: both drivers fold each
/// [`RecoveredBurn`] through [`BurnTally::record`] (which also attributes
/// ladder retries to the profiler) instead of hand-rolling the rung
/// bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BurnTally {
    /// Zones burned.
    pub zones: u64,
    /// Zones skipped by temperature/density cutoffs.
    pub skipped: u64,
    /// Total integrator steps over all zones (the cost proxy).
    pub total_steps: u64,
    /// The largest single-zone step count (the "outlier" of §VI).
    pub max_steps: u64,
    /// Total Newton iterations over all zones.
    pub newton_iters: u64,
    /// Retry-ladder attempts beyond the first, summed over zones.
    pub retries: u64,
    /// Zones that needed at least one retry to burn.
    pub recovered: u64,
    /// Zones whose winning rung was relaxed-tolerance.
    pub recovered_relaxed: u64,
    /// Zones whose winning rung was subcycling.
    pub recovered_subcycle: u64,
    /// Zones rescued by the §VI outlier-offload rung.
    pub offloaded: u64,
}

impl BurnTally {
    /// Fold one recovered burn into the tally (and the profiler's retry
    /// counter for the innermost open region).
    pub fn record(&mut self, rec: &RecoveredBurn) {
        self.zones += 1;
        self.total_steps += rec.outcome.stats.steps;
        self.max_steps = self.max_steps.max(rec.outcome.stats.steps);
        self.newton_iters += rec.outcome.stats.newton_iters;
        if rec.retries > 0 {
            exastro_parallel::Profiler::record_retries(rec.retries as u64);
            self.retries += rec.retries as u64;
            self.recovered += 1;
        }
        match rec.rung {
            LadderRung::Direct => {}
            LadderRung::RelaxedTol => self.recovered_relaxed += 1,
            LadderRung::Subcycle => self.recovered_subcycle += 1,
            LadderRung::Offload => self.offloaded += 1,
        }
    }

    /// Count a zone skipped by the driver's burn cutoffs.
    pub fn skip(&mut self) {
        self.skipped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::StellarEos;
    use crate::integrator::BdfErrorKind;
    use crate::network::{Aprox13, CBurn2, TripleAlpha};

    #[test]
    fn quiescent_zone_stays_quiet() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        // Cold carbon: no burning on dynamical timescales.
        let out = burner.burn(1e6, 1e7, &[1.0, 0.0], 1.0).unwrap();
        assert!((out.x[0] - 1.0).abs() < 1e-10);
        // Integrator abundance drift at atol = 1e-12 maps to ~1e8 erg/g of
        // spurious "release"; anything far below burning scales (1e17) is
        // quiescent.
        assert!(out.enuc.abs() < 1e9);
        assert!((out.t / 1e7 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hot_carbon_burns_exothermically() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        let out = burner.burn(5e7, 3e9, &[1.0, 0.0], 1e-6).unwrap();
        assert!(out.x[0] < 0.999, "carbon should be consumed: {:?}", out.x);
        assert!(out.x[1] > 1e-4);
        assert!(out.enuc > 0.0);
        assert!(out.t > 3e9, "self-heating must raise T");
        // Mass fractions remain a partition of unity.
        let sum: f64 = out.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_temperature_burn_does_not_heat() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner =
            PlainBurner::new(&net, &eos, PlainBurner::default_options()).fixed_temperature();
        let out = burner.burn(5e7, 3e9, &[1.0, 0.0], 1e-7).unwrap();
        // T is held fixed up to accumulated round-off over many steps.
        assert!((out.t / 3e9 - 1.0).abs() < 1e-8, "T drifted to {}", out.t);
        assert!(out.x[0] < 1.0);
    }

    #[test]
    fn runaway_is_faster_at_higher_density() {
        // The positive feedback loop: at higher ρ the same T ignites sooner.
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        let t_lo = burner
            .time_to_ignition(1e7, 2.2e9, &[1.0, 0.0], 4e9, 1e3)
            .unwrap();
        let t_hi = burner
            .time_to_ignition(1e8, 2.2e9, &[1.0, 0.0], 4e9, 1e3)
            .unwrap();
        let (t_lo, t_hi) = (
            t_lo.expect("low-rho ignites"),
            t_hi.expect("high-rho ignites"),
        );
        assert!(
            t_hi < t_lo,
            "higher density must ignite faster: {t_hi} vs {t_lo}"
        );
    }

    #[test]
    fn ignition_probe_shrinks_on_acceleration_not_on_itself() {
        // Regression: the probe adaptation used to compare the post-step
        // temperature against itself (`out.t > 1.05 * t` evaluated after
        // `t = out.t`), so the shrink branch was dead code and the probe
        // never tightened around the runaway.
        let t_max = 1e3;
        let dt = t_max / 512.0;
        // Accelerating (+6% over the step): halve.
        assert_eq!(ignition_probe_dt(dt, 1e9, 1.06e9, t_max), dt * 0.5);
        // Repeated acceleration bottoms out at the floor, not zero.
        let mut d = dt;
        for _ in 0..64 {
            d = ignition_probe_dt(d, 1e9, 2e9, t_max);
        }
        assert_eq!(d, t_max * 1e-9);
        // Quiescent (+0.1%): relax, capped at the coarse march.
        assert_eq!(
            ignition_probe_dt(dt * 0.125, 1e9, 1.001e9, t_max),
            dt * 0.25
        );
        assert_eq!(ignition_probe_dt(dt, 1e9, 1.001e9, t_max), dt);
        // Simmering in between (+2%): hold.
        assert_eq!(ignition_probe_dt(dt, 1e9, 1.02e9, t_max), dt);
    }

    #[test]
    fn ignition_probe_tightens_along_a_runaway_trajectory() {
        // Drive the helper with an exponentially accelerating temperature
        // history (what a carbon runaway looks like to the prober): the
        // probe interval must shrink monotonically to the floor.
        let t_max = 1e3;
        let mut dt: f64 = t_max / 512.0;
        let mut t = 1e9;
        let mut shrunk = 0;
        for _ in 0..40 {
            let t_next = t * 1.08;
            let nd = ignition_probe_dt(dt, t, t_next, t_max);
            assert!(nd <= dt, "never relaxes while accelerating");
            if nd < dt {
                shrunk += 1;
            }
            dt = nd;
            t = t_next;
        }
        assert!(shrunk > 5, "the shrink branch must actually fire");
        assert_eq!(dt, t_max * 1e-9);
    }

    #[test]
    fn cold_zone_never_ignites() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        let res = burner
            .time_to_ignition(1e5, 1e8, &[1.0, 0.0], 4e9, 1.0)
            .unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn triple_alpha_heats_helium() {
        let net = TripleAlpha::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        let out = burner.burn(1e6, 3e8, &[1.0, 0.0, 0.0], 1e-2).unwrap();
        assert!(out.x[1] > 0.0, "carbon produced: {:?}", out.x);
        assert!(out.t > 3e8);
        assert!(out.enuc > 0.0);
    }

    #[test]
    fn aprox13_burn_conserves_mass_and_releases_energy() {
        let net = Aprox13::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        let mut x0 = vec![0.0; 13];
        x0[1] = 0.5; // C12
        x0[2] = 0.5; // O16
        let out = burner.burn(1e7, 3e9, &x0, 1e-7).unwrap();
        let sum: f64 = out.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "Σ X = {sum}");
        assert!(out.enuc > 0.0);
        assert!(out.x[1] < 0.5, "carbon consumed");
        assert!(out.x.iter().all(|&v| v > -1e-12), "no negative abundances");
    }

    #[test]
    fn sparse_solver_burn_matches_dense() {
        // The same burn through both Newton solvers; the tight proptest
        // agreement bound lives in tests/proptests.rs, this is the smoke
        // version with the driver-facing SolverChoice plumbing.
        let net = Aprox13::new();
        let eos = StellarEos;
        let mut x0 = vec![0.0; 13];
        x0[1] = 0.5;
        x0[2] = 0.5;
        let run = |choice: SolverChoice| {
            let cfg = BurnerConfig {
                solver: choice,
                ..Default::default()
            };
            let burner = PlainBurner::new(&net, &eos, cfg.bdf_for(&net));
            burner.burn(1e7, 3e9, &x0, 1e-7).unwrap()
        };
        let d = run(SolverChoice::Dense);
        let s = run(SolverChoice::Sparse);
        for (a, b) in d.x.iter().zip(&s.x) {
            assert!((a - b).abs() < 1e-8, "dense {a} vs sparse {b}");
        }
        assert!((d.t - s.t).abs() < 1e-8 * d.t);
    }

    #[test]
    fn burner_trait_unifies_plain_and_recovering() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let cfg = BurnerConfig::default();
        let plain = PlainBurner::new(&net, &eos, cfg.bdf_for(&net));
        let ladder = cfg.build(&net, &eos);
        let burners: [&dyn Burner; 2] = [&plain, &ladder];
        for b in burners {
            let rec = b.burn_zone(0, 5e7, 3e9, &[1.0, 0.0], 1e-6).unwrap();
            assert_eq!(rec.rung, LadderRung::Direct);
            assert_eq!(rec.retries, 0);
            let sum: f64 = rec.outcome.x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn plain_burner_injects_faults_through_the_trait() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let faults = BurnFaultConfig {
            seed: 5,
            rate: 1.0,
            rungs_to_fail: 1,
            error: BdfErrorKind::SingularMatrix,
        };
        let plain =
            PlainBurner::new(&net, &eos, PlainBurner::default_options()).with_faults(Some(faults));
        let fail = plain.burn_zone(9, 5e7, 3e9, &[1.0, 0.0], 1e-6).unwrap_err();
        assert_eq!(fail.zone, 9);
        assert_eq!(fail.attempts, 1);
        assert_eq!(fail.error, BdfErrorKind::SingularMatrix);
        assert_eq!(fail.rung_reached, LadderRung::Direct);
    }

    #[test]
    fn burn_tally_accumulates_and_classifies() {
        let mk = |steps: u64, retries: u32, rung: LadderRung| RecoveredBurn {
            outcome: BurnOutcome {
                x: vec![1.0],
                t: 1e8,
                enuc: 0.0,
                stats: BdfStats {
                    steps,
                    newton_iters: 2 * steps,
                    ..Default::default()
                },
            },
            rung,
            retries,
        };
        let mut tally = BurnTally::default();
        tally.record(&mk(10, 0, LadderRung::Direct));
        tally.record(&mk(40, 2, LadderRung::Subcycle));
        tally.record(&mk(200, 3, LadderRung::Offload));
        tally.record(&mk(5, 1, LadderRung::RelaxedTol));
        tally.skip();
        assert_eq!(tally.zones, 4);
        assert_eq!(tally.skipped, 1);
        assert_eq!(tally.total_steps, 255);
        assert_eq!(tally.max_steps, 200);
        assert_eq!(tally.newton_iters, 510);
        assert_eq!(tally.retries, 6);
        assert_eq!(tally.recovered, 3);
        assert_eq!(tally.recovered_relaxed, 1);
        assert_eq!(tally.recovered_subcycle, 1);
        assert_eq!(tally.offloaded, 1);
    }

    #[test]
    fn enuc_is_consistent_with_temperature_rise() {
        // At constant density, ε integrated should ≈ ∫cv dT. Loose check.
        let net = CBurn2::new();
        let eos = StellarEos;
        let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
        let (rho, t0) = (5e8, 2.5e9);
        let out = burner.burn(rho, t0, &[1.0, 0.0], 3e-8).unwrap();
        assert!(out.t > t0 && out.enuc > 0.0);
        let comp = Composition::from_mass_fractions(net.species(), &out.x);
        let cv_mid = eos.eval_rt(rho, 0.5 * (t0 + out.t), &comp).cv;
        let de_thermal = cv_mid * (out.t - t0);
        assert!(
            (de_thermal / out.enuc - 1.0).abs() < 0.5,
            "enuc {} vs cvΔT {}",
            out.enuc,
            de_thermal
        );
    }
}
