//! Physical constants in CGS units (the unit system of the astro codes).

/// Boltzmann constant, erg/K.
pub const K_B: f64 = 1.380649e-16;
/// Atomic mass unit, g.
pub const M_U: f64 = 1.66053906660e-24;
/// Avogadro's number, 1/mol.
pub const N_A: f64 = 6.02214076e23;
/// Radiation constant `a`, erg cm⁻³ K⁻⁴.
pub const A_RAD: f64 = 7.565723e-15;
/// Speed of light, cm/s.
pub const C_LIGHT: f64 = 2.99792458e10;
/// Electron rest mass, g.
pub const M_E: f64 = 9.1093837015e-28;
/// Planck constant, erg s.
pub const H_PLANCK: f64 = 6.62607015e-27;
/// MeV in erg.
pub const MEV_TO_ERG: f64 = 1.602176634e-6;
/// Newton's gravitational constant, cm³ g⁻¹ s⁻².
pub const G_NEWTON: f64 = 6.67430e-8;
/// Solar mass, g.
pub const M_SUN: f64 = 1.98892e33;

/// Pressure scale of the zero-temperature relativistic electron gas,
/// `π m_e⁴ c⁵ / (3 h³)`, dyn/cm².
pub const A_DEG: f64 = 6.002e22;
/// Density scale of electron degeneracy: `ρ/μ_e = B_DEG x³` with
/// `x = p_F / (m_e c)`; g/cm³.
pub const B_DEG: f64 = 9.7395e5;
