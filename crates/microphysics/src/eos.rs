//! Equations of state.
//!
//! Castro and MAESTROeX pull their EOS from the shared Microphysics
//! repository; the production choice for white-dwarf problems is the
//! Helmholtz free-energy table of Timmes & Swesty. This reproduction
//! provides:
//!
//! * [`GammaLaw`] — the ideal-gas EOS used for the Sedov benchmark;
//! * [`StellarEos`] — an analytic approximation to the stellar EOS: ideal
//!   ions + radiation + electrons interpolated between the non-degenerate
//!   ideal gas and the zero-temperature (relativistic) degenerate gas.
//!
//! The key *qualitative* property for the science problems (§V) is
//! preserved: at white-dwarf densities the pressure is dominated by the
//! T-independent degenerate term, so "this type of matter does not expand
//! much when heated ... the heat from nuclear reactions easily gets trapped".

use crate::constants::{A_DEG, A_RAD, B_DEG, K_B, M_U};
use crate::species::Composition;

/// Thermodynamic state returned by an EOS evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EosResult {
    /// Pressure, dyn/cm².
    pub p: f64,
    /// Specific internal energy, erg/g.
    pub e: f64,
    /// Specific heat at constant volume, erg/g/K.
    pub cv: f64,
    /// ∂p/∂ρ at constant T.
    pub dpdr: f64,
    /// ∂p/∂T at constant ρ.
    pub dpdt: f64,
    /// Adiabatic sound speed, cm/s.
    pub cs: f64,
    /// First adiabatic index Γ₁ = (ρ/p) c_s².
    pub gam1: f64,
}

/// An equation of state: thermodynamics as a function of `(ρ, T,
/// composition)`, plus the inverse solve `T(ρ, e)` needed after a
/// conservative hydro update.
pub trait Eos: Send + Sync {
    /// Evaluate at density `rho` (g/cc) and temperature `t` (K).
    fn eval_rt(&self, rho: f64, t: f64, comp: &Composition) -> EosResult;

    /// Solve for the temperature giving specific internal energy `e` at
    /// density `rho`, starting from `t_guess`. Newton iteration with a
    /// bisection safeguard; EOS internal energies are monotone in T.
    fn t_from_e(&self, rho: f64, e: f64, comp: &Composition, t_guess: f64) -> f64 {
        let mut t = t_guess.max(1e-30);
        // Newton.
        for _ in 0..50 {
            let r = self.eval_rt(rho, t, comp);
            let f = r.e - e;
            if f.abs() <= 1e-10 * e.abs().max(1e-30) {
                return t;
            }
            let dt = -f / r.cv.max(1e-30);
            let tn = t + dt;
            if tn > 0.2 * t && tn < 5.0 * t && tn.is_finite() {
                t = tn;
            } else {
                t = if dt > 0.0 { t * 2.0 } else { t * 0.5 };
            }
            if (dt / t).abs() < 1e-12 {
                return t;
            }
        }
        // Bisection fallback over a wide (log-space) bracket.
        let (mut lo, mut hi): (f64, f64) = (1e-30, 1e12);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.eval_rt(rho, mid, comp).e < e {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi / lo < 1.0 + 1e-14 {
                break;
            }
        }
        (lo * hi).sqrt()
    }
}

fn finish(p: f64, e: f64, cv: f64, dpdr: f64, dpdt: f64) -> EosResult {
    EosResult {
        p,
        e,
        cv,
        dpdr,
        dpdt,
        cs: 0.0,
        gam1: 0.0,
    }
}

/// Complete a result with the adiabatic sound speed via the identity
/// `c_s² = (∂p/∂ρ)_T + T (∂p/∂T)² / (ρ² c_v)`.
fn with_sound_speed(mut r: EosResult, rho: f64, t: f64) -> EosResult {
    let cs2 = (r.dpdr + r.dpdt * r.dpdt * t / (rho * rho * r.cv.max(1e-30))).max(1e-30);
    r.cs = cs2.sqrt();
    r.gam1 = rho * cs2 / r.p.max(1e-300);
    r
}

/// Ideal-gas (gamma-law) equation of state.
#[derive(Clone, Copy, Debug)]
pub struct GammaLaw {
    /// Ratio of specific heats.
    pub gamma: f64,
}

impl GammaLaw {
    /// The usual monatomic value 5/3.
    pub fn monatomic() -> Self {
        GammaLaw { gamma: 5.0 / 3.0 }
    }

    /// Specific internal energy from pressure: `e = p / ((γ-1) ρ)`.
    pub fn e_from_p(&self, rho: f64, p: f64) -> f64 {
        p / ((self.gamma - 1.0) * rho)
    }

    /// Pressure from specific internal energy.
    pub fn p_from_e(&self, rho: f64, e: f64) -> f64 {
        (self.gamma - 1.0) * rho * e
    }
}

impl Eos for GammaLaw {
    fn eval_rt(&self, rho: f64, t: f64, comp: &Composition) -> EosResult {
        let nkt_per_mass = K_B * t / (comp.abar * M_U);
        let p = rho * nkt_per_mass;
        let e = nkt_per_mass / (self.gamma - 1.0);
        let cv = K_B / ((self.gamma - 1.0) * comp.abar * M_U);
        let dpdr = nkt_per_mass;
        let dpdt = rho * K_B / (comp.abar * M_U);
        with_sound_speed(finish(p, e, cv, dpdr, dpdt), rho, t)
    }
}

/// Analytic stellar EOS: ions (ideal) + radiation + electrons
/// (ideal/degenerate interpolation).
///
/// The electron term interpolates as `p_e = sqrt(p_deg² + p_nd²)` between
/// the zero-temperature degenerate pressure `p_deg(ρ)` (Chandrasekhar's
/// relativistic formula) and the non-degenerate ideal electron pressure
/// `p_nd(ρ, T)`. The electron thermal energy is `e_th = 1.5 (p_e - p_deg)/ρ`,
/// which recovers the ideal-gas limit when non-degenerate and is
/// exponentially... algebraically suppressed when degenerate. This is an
/// approximation (documented in DESIGN.md), not the Timmes & Swesty table,
/// but it is smooth, thermodynamically monotone, and captures the behaviour
/// the paper's science discussion relies on.
#[derive(Clone, Copy, Debug, Default)]
pub struct StellarEos;

impl StellarEos {
    /// Chandrasekhar zero-temperature electron pressure and specific energy
    /// plus `dp/dρ`, given ρ and μ_e.
    fn degenerate(rho: f64, mu_e: f64) -> (f64, f64, f64) {
        let x = (rho / (B_DEG * mu_e)).powf(1.0 / 3.0);
        let x2 = x * x;
        let s = (1.0 + x2).sqrt();
        let f = x * (2.0 * x2 - 3.0) * s + 3.0 * x.asinh();
        let g = 8.0 * x2 * x * (s - 1.0) - f;
        let p = A_DEG * f;
        let e = A_DEG * g / rho.max(1e-300);
        // dp/dρ = A f'(x) x / (3ρ), f'(x) = 8x⁴/√(1+x²).
        let dpdr = A_DEG * (8.0 * x2 * x2 / s) * x / (3.0 * rho.max(1e-300));
        (p, e, dpdr)
    }
}

impl Eos for StellarEos {
    fn eval_rt(&self, rho: f64, t: f64, comp: &Composition) -> EosResult {
        let mu_e = comp.mu_e();
        // Ions.
        let p_ion = rho * K_B * t / (comp.abar * M_U);
        let e_ion = 1.5 * p_ion / rho;
        let cv_ion = 1.5 * K_B / (comp.abar * M_U);
        // Radiation.
        let p_rad = A_RAD * t.powi(4) / 3.0;
        let e_rad = 3.0 * p_rad / rho;
        let cv_rad = 4.0 * A_RAD * t.powi(3) / rho;
        // Electrons.
        let (p_deg, e_deg, dpdr_deg) = Self::degenerate(rho, mu_e);
        let p_nd = rho * K_B * t / (mu_e * M_U);
        let p_e = (p_deg * p_deg + p_nd * p_nd).sqrt().max(1e-300);
        let e_e_th = 1.5 * (p_e - p_deg) / rho;
        // Derivatives of the electron term.
        let dpe_dt = p_nd * p_nd / (p_e * t.max(1e-300)); // p_nd ∝ T
        let dpnd_dr = p_nd / rho.max(1e-300);
        let dpe_dr = (p_deg * dpdr_deg + p_nd * dpnd_dr) / p_e;
        let cv_e = 1.5 * dpe_dt / rho;

        let p = p_ion + p_rad + p_e;
        let e = e_ion + e_rad + e_deg + e_e_th;
        let cv = cv_ion + cv_rad + cv_e;
        let dpdr = K_B * t / (comp.abar * M_U) + dpe_dr;
        let dpdt = rho * K_B / (comp.abar * M_U) + 4.0 * A_RAD * t.powi(3) / 3.0 + dpe_dt;
        with_sound_speed(finish(p, e, cv, dpdr, dpdt), rho, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::iso;
    use crate::species::Composition;

    fn co_comp() -> Composition {
        Composition::from_mass_fractions(&[iso::C12, iso::O16], &[0.5, 0.5])
    }

    #[test]
    fn gamma_law_ideal_gas_relations() {
        let eos = GammaLaw::monatomic();
        let comp = Composition {
            abar: 1.0,
            zbar: 1.0,
        };
        let r = eos.eval_rt(1e-3, 1e4, &comp);
        // p = ρ k T / (A m_u)
        let expect = 1e-3 * K_B * 1e4 / M_U;
        assert!((r.p / expect - 1.0).abs() < 1e-12);
        // e = 3/2 kT/m for γ=5/3
        assert!((r.e / (1.5 * K_B * 1e4 / M_U) - 1.0).abs() < 1e-12);
        // cs² = γ p / ρ
        assert!((r.cs * r.cs / (5.0 / 3.0 * r.p / 1e-3) - 1.0).abs() < 1e-10);
        assert!((r.gam1 - 5.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn gamma_law_t_from_e_inverts() {
        let eos = GammaLaw::monatomic();
        let comp = co_comp();
        let r = eos.eval_rt(1.0, 3.7e6, &comp);
        let t = eos.t_from_e(1.0, r.e, &comp, 1e5);
        assert!((t / 3.7e6 - 1.0).abs() < 1e-8, "t = {t}");
    }

    #[test]
    fn stellar_eos_nondegenerate_limit_is_ideal() {
        // Low density, high temperature: ions + electrons ideal; radiation
        // still small at 1e6 K and 1e-5 g/cc? p_rad/p_gas ~ aT³m/(3ρk) —
        // choose T=1e5, rho=1e-4: negligible degeneracy and radiation.
        let eos = StellarEos;
        let comp = co_comp();
        let (rho, t) = (1e-4, 1e5);
        let r = eos.eval_rt(rho, t, &comp);
        let n_ions = rho / (comp.abar * M_U);
        let n_e = rho * comp.zbar / (comp.abar * M_U);
        let p_ideal = (n_ions + n_e) * K_B * t;
        assert!(
            (r.p / p_ideal - 1.0).abs() < 0.05,
            "p = {}, ideal = {p_ideal}",
            r.p
        );
    }

    #[test]
    fn stellar_eos_degenerate_pressure_insensitive_to_t() {
        // White-dwarf core: ρ = 2e7 g/cc. Doubling T from 1e8 to 2e8 K
        // barely changes the pressure — the "heat gets trapped" property.
        let eos = StellarEos;
        let comp = co_comp();
        let p1 = eos.eval_rt(2e7, 1e8, &comp).p;
        let p2 = eos.eval_rt(2e7, 2e8, &comp).p;
        assert!(
            (p2 / p1 - 1.0) < 0.02,
            "degenerate pressure rose {}%",
            (p2 / p1 - 1.0) * 100.0
        );
        // ...but the energy does increase (cv > 0).
        let e1 = eos.eval_rt(2e7, 1e8, &comp).e;
        let e2 = eos.eval_rt(2e7, 2e8, &comp).e;
        assert!(e2 > e1);
    }

    #[test]
    fn stellar_eos_monotone_in_t_and_rho() {
        let eos = StellarEos;
        let comp = co_comp();
        let mut last_e = 0.0;
        for i in 0..40 {
            let t = 1e6 * 1.5f64.powi(i);
            let r = eos.eval_rt(1e6, t, &comp);
            assert!(r.e > last_e, "e not monotone at T={t}");
            assert!(r.cv > 0.0 && r.p > 0.0 && r.cs > 0.0);
            last_e = r.e;
        }
        let mut last_p = 0.0;
        for i in 0..40 {
            let rho = 1.0 * 2f64.powi(i);
            let r = eos.eval_rt(rho, 1e8, &comp);
            assert!(r.p > last_p, "p not monotone at rho={rho}");
            assert!(r.dpdr > 0.0);
            last_p = r.p;
        }
    }

    #[test]
    fn stellar_eos_t_from_e_inverts_across_regimes() {
        let eos = StellarEos;
        let comp = co_comp();
        for &(rho, t) in &[(1e-2, 1e5), (1e3, 1e7), (1e7, 5e7), (2e7, 1e9), (5e8, 4e9)] {
            let e = eos.eval_rt(rho, t, &comp).e;
            let ti = eos.t_from_e(rho, e, &comp, 1e6);
            assert!(
                (ti / t - 1.0).abs() < 1e-6,
                "rho={rho} t={t}: inverted {ti}"
            );
        }
    }

    #[test]
    fn stellar_eos_chandrasekhar_limits() {
        // Non-relativistic limit: p ∝ ρ^{5/3}; ultra-relativistic: ρ^{4/3}.
        let comp = co_comp();
        let slope = |r1: f64, r2: f64| {
            let p1 = StellarEos::degenerate(r1, comp.mu_e()).0;
            let p2 = StellarEos::degenerate(r2, comp.mu_e()).0;
            (p2 / p1).ln() / (r2 / r1).ln()
        };
        let s_nr = slope(1e2, 2e2);
        let s_ur = slope(1e10, 2e10);
        assert!((s_nr - 5.0 / 3.0).abs() < 0.02, "NR slope {s_nr}");
        assert!((s_ur - 4.0 / 3.0).abs() < 0.02, "UR slope {s_ur}");
    }

    #[test]
    fn radiation_dominates_at_extreme_t() {
        let eos = StellarEos;
        let comp = co_comp();
        let r = eos.eval_rt(1e-3, 1e9, &comp);
        let p_rad = A_RAD * 1e9f64.powi(4) / 3.0;
        assert!(
            (r.p / p_rad - 1.0).abs() < 0.01,
            "radiation should dominate"
        );
        assert!((r.gam1 - 4.0 / 3.0).abs() < 0.05);
    }
}
