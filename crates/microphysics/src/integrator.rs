//! A VODE-style stiff ODE integrator: variable-step, variable-order BDF
//! (orders 1–5) with a modified-Newton corrector, in Nordsieck form.
//!
//! "ODE integrators are the key component of nuclear reactions simulations"
//! (§III): VODE (Brown, Byrne & Hindmarsh 1989) is the integrator the astro
//! codes ported to GPUs. This implementation keeps VODE's essential
//! structure:
//!
//! * the history is the **Nordsieck array** `z_j = h^j y^{(j)} / j!`, so a
//!   step-size change is the exact rescale `z_j ← r^j z_j` (no
//!   interpolation error);
//! * prediction applies the Pascal-triangle shift; correction adds `e·l`
//!   with the fixed-step BDF corrector coefficients `l` generated from
//!   `Λ(x) = Π_{i=1..q} (1 + x/i)`;
//! * the nonlinear corrector equation `y − γ f(y) − a = 0` (γ = `l₀ h`) is
//!   solved by a modified Newton iteration with matrix `I − γJ`;
//! * errors are measured in the weighted-RMS norm and both the step size
//!   and the order adapt.
//!
//! The Newton linear solves go through the [`LinearSolver`] trait: dense LU
//! with partial pivoting (the VODE default) or the symbolic sparse LU of
//! [`crate::sparse`] (the paper's §VI plan), selected by
//! [`BdfOptions::solver`]. Either way the matrix is factored **once per
//! step attempt** and only back-solved inside the Newton loop.

use crate::linalg::{DenseNewton, LinearSolver};
use crate::sparse::{CsrPattern, SparseLu, SparseNewton};
use std::sync::Arc;
use std::time::Instant;

/// A first-order ODE system `dy/dt = f(t, y)` with an analytic Jacobian.
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;
    /// Evaluate the right-hand side into `dydt`.
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);
    /// Evaluate the row-major `dim²` Jacobian `∂f_i/∂y_j`.
    fn jac(&self, t: f64, y: &[f64], jac: &mut [f64]);
}

/// Linear-solver choice for the Newton iteration.
#[derive(Clone, Debug, Default)]
pub enum NewtonSolver {
    /// Dense LU with partial pivoting (VODE's default).
    #[default]
    Dense,
    /// Symbolic sparse LU specialized to the system's fixed sparsity
    /// pattern (§VI future work); see [`crate::sparse::SparseLu`].
    Sparse(CsrPattern),
}

impl NewtonSolver {
    /// Short name for telemetry ("dense" / "sparse").
    pub fn kind(&self) -> &'static str {
        match self {
            NewtonSolver::Dense => "dense",
            NewtonSolver::Sparse(_) => "sparse",
        }
    }
}

/// Integrator options. Build with [`BdfOptions::builder`], which validates;
/// the fields stay public for inspection.
#[derive(Clone, Debug)]
pub struct BdfOptions {
    /// Relative tolerance.
    pub rtol: f64,
    /// Absolute tolerance (per component, broadcast if length 1).
    pub atol: Vec<f64>,
    /// Maximum BDF order, 1–5.
    pub max_order: usize,
    /// Maximum number of internal steps before giving up.
    pub max_steps: usize,
    /// Initial step size; `None` chooses automatically.
    pub h0: Option<f64>,
    /// Newton linear solver.
    pub solver: NewtonSolver,
}

impl Default for BdfOptions {
    fn default() -> Self {
        BdfOptions {
            rtol: 1e-8,
            atol: vec![1e-12],
            max_order: 5,
            max_steps: 500_000,
            h0: None,
            solver: NewtonSolver::Dense,
        }
    }
}

impl BdfOptions {
    /// Start building a validated option set:
    /// `BdfOptions::builder().rtol(1e-10).solver(...).build()?`.
    pub fn builder() -> BdfOptionsBuilder {
        BdfOptionsBuilder {
            opts: BdfOptions::default(),
        }
    }
}

/// Invalid integrator configuration, reported by
/// [`BdfOptionsBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum BdfConfigError {
    /// A tolerance was zero, negative, or non-finite.
    NonPositiveTolerance {
        /// Which tolerance ("rtol" or "atol").
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The per-component atol vector was empty.
    EmptyAtol,
    /// `max_steps` was zero.
    ZeroMaxSteps,
    /// `max_order` was outside 1–5.
    MaxOrderOutOfRange(usize),
    /// An explicit initial step was zero, negative, or non-finite.
    NonPositiveInitialStep(f64),
}

impl std::fmt::Display for BdfConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BdfConfigError::NonPositiveTolerance { which, value } => {
                write!(
                    f,
                    "BDF config: {which} must be positive and finite, got {value}"
                )
            }
            BdfConfigError::EmptyAtol => write!(f, "BDF config: atol vector is empty"),
            BdfConfigError::ZeroMaxSteps => write!(f, "BDF config: max_steps must be > 0"),
            BdfConfigError::MaxOrderOutOfRange(q) => {
                write!(f, "BDF config: max_order must be 1–5, got {q}")
            }
            BdfConfigError::NonPositiveInitialStep(h) => {
                write!(f, "BDF config: h0 must be positive and finite, got {h}")
            }
        }
    }
}

impl std::error::Error for BdfConfigError {}

/// Builder for [`BdfOptions`]; [`BdfOptionsBuilder::build`] validates the
/// configuration and returns a typed [`BdfConfigError`] on nonsense input.
#[derive(Clone, Debug)]
pub struct BdfOptionsBuilder {
    opts: BdfOptions,
}

impl BdfOptionsBuilder {
    /// Relative tolerance.
    pub fn rtol(mut self, rtol: f64) -> Self {
        self.opts.rtol = rtol;
        self
    }

    /// Scalar absolute tolerance, broadcast to every component.
    pub fn atol(mut self, atol: f64) -> Self {
        self.opts.atol = vec![atol];
        self
    }

    /// Per-component absolute tolerances.
    pub fn atol_vec(mut self, atol: Vec<f64>) -> Self {
        self.opts.atol = atol;
        self
    }

    /// Maximum BDF order (1–5).
    pub fn max_order(mut self, q: usize) -> Self {
        self.opts.max_order = q;
        self
    }

    /// Maximum internal step count.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.opts.max_steps = n;
        self
    }

    /// Fixed initial step size (default: chosen automatically).
    pub fn h0(mut self, h0: f64) -> Self {
        self.opts.h0 = Some(h0);
        self
    }

    /// Newton linear solver.
    pub fn solver(mut self, solver: NewtonSolver) -> Self {
        self.opts.solver = solver;
        self
    }

    /// Validate and produce the options.
    pub fn build(self) -> Result<BdfOptions, BdfConfigError> {
        let o = self.opts;
        if !(o.rtol > 0.0 && o.rtol.is_finite()) {
            return Err(BdfConfigError::NonPositiveTolerance {
                which: "rtol",
                value: o.rtol,
            });
        }
        if o.atol.is_empty() {
            return Err(BdfConfigError::EmptyAtol);
        }
        for &a in &o.atol {
            if !(a > 0.0 && a.is_finite()) {
                return Err(BdfConfigError::NonPositiveTolerance {
                    which: "atol",
                    value: a,
                });
            }
        }
        if o.max_steps == 0 {
            return Err(BdfConfigError::ZeroMaxSteps);
        }
        if !(1..=5).contains(&o.max_order) {
            return Err(BdfConfigError::MaxOrderOutOfRange(o.max_order));
        }
        if let Some(h0) = o.h0 {
            if !(h0 > 0.0 && h0.is_finite()) {
                return Err(BdfConfigError::NonPositiveInitialStep(h0));
            }
        }
        Ok(o)
    }
}

/// Statistics from one integration (returned on success **and** carried by
/// [`BdfError`] on failure, so failed work is never invisible).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BdfStats {
    /// Accepted steps.
    pub steps: u64,
    /// Error-test or Newton failures that forced a retry.
    pub rejected: u64,
    /// Right-hand-side evaluations.
    pub rhs_evals: u64,
    /// Jacobian evaluations.
    pub jac_evals: u64,
    /// Linear-system factorizations.
    pub factorizations: u64,
    /// Total Newton iterations.
    pub newton_iters: u64,
    /// Wall time in the Newton linear algebra (factor + back-solves), ns.
    pub solve_ns: u64,
    /// Order in use when integration finished.
    pub final_order: usize,
}

impl BdfStats {
    /// Fold another integration's counters into this one (the retry
    /// ladder charges every rung's cost to the zone). `final_order` takes
    /// the most recent value.
    pub fn merge(&mut self, other: &BdfStats) {
        self.steps += other.steps;
        self.rejected += other.rejected;
        self.rhs_evals += other.rhs_evals;
        self.jac_evals += other.jac_evals;
        self.factorizations += other.factorizations;
        self.newton_iters += other.newton_iters;
        self.solve_ns += other.solve_ns;
        self.final_order = other.final_order;
    }
}

/// What went wrong, independent of how much work was spent finding out.
#[derive(Clone, Debug, PartialEq)]
pub enum BdfErrorKind {
    /// Too many internal steps.
    MaxSteps,
    /// Step size underflowed: the problem is too stiff for the tolerances
    /// or the RHS is returning non-finite values.
    StepUnderflow {
        /// Time reached before the failure.
        t: f64,
    },
    /// The Newton matrix was singular beyond recovery.
    SingularMatrix,
    /// The integration "succeeded" but left non-finite state behind (used
    /// by post-integration validators, e.g. the burn retry ladder).
    NonFinite,
    /// A per-component `atol` vector matched neither length 1 (broadcast)
    /// nor the system dimension. Caught at [`BdfIntegrator::integrate`]
    /// entry, before any stepping, instead of panicking with an
    /// index-out-of-bounds mid-integration.
    AtolMismatch {
        /// Length of the configured atol vector.
        atol_len: usize,
        /// System dimension it failed to match.
        dim: usize,
    },
}

impl std::fmt::Display for BdfErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BdfErrorKind::MaxSteps => write!(f, "BDF: exceeded maximum step count"),
            BdfErrorKind::StepUnderflow { t } => write!(f, "BDF: step size underflow at t = {t}"),
            BdfErrorKind::SingularMatrix => write!(f, "BDF: singular Newton matrix"),
            BdfErrorKind::NonFinite => write!(f, "BDF: integration produced non-finite state"),
            BdfErrorKind::AtolMismatch { atol_len, dim } => write!(
                f,
                "BDF: atol has {atol_len} components but the system dimension is {dim} \
                 (expected 1 or {dim})"
            ),
        }
    }
}

/// Integration failure: the error kind plus the statistics of the work
/// spent before failing (the retry ladder charges failed attempts to the
/// zone's record, so a failure that hid its cost would corrupt telemetry).
#[derive(Clone, Debug, PartialEq)]
pub struct BdfError {
    /// What went wrong.
    pub kind: BdfErrorKind,
    /// Work performed before the failure.
    pub stats: BdfStats,
}

impl BdfError {
    /// A bare error with zeroed stats (for injected/synthetic failures).
    pub fn from_kind(kind: BdfErrorKind) -> Self {
        BdfError {
            kind,
            stats: BdfStats::default(),
        }
    }
}

impl std::fmt::Display for BdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind)
    }
}

impl std::error::Error for BdfError {}

/// Corrector coefficients `l[0..=q]` for fixed-step BDF of order `q`:
/// the coefficients of `Λ(x) = Π_{i=1..q}(1 + x/i)`, normalized to `l₁ = 1`.
/// `l₀` equals the BDF β (1, 2/3, 6/11, 12/25, 60/137).
pub(crate) fn bdf_l(q: usize, l: &mut [f64; 6]) {
    l.iter_mut().for_each(|v| *v = 0.0);
    l[0] = 1.0;
    for i in 1..=q {
        // Multiply the polynomial by (1 + x/i).
        for j in (1..=i).rev() {
            let prev = l[j - 1];
            l[j] += prev / i as f64;
        }
    }
    let l1 = l[1];
    for v in l.iter_mut() {
        *v /= l1;
    }
}

/// Reject a per-component `atol` whose length matches neither 1 nor the
/// system dimension — indexing it per component would panic mid-integration
/// (shared by the scalar and batched integrators).
pub(crate) fn check_atol(opts: &BdfOptions, dim: usize) -> Result<(), BdfError> {
    if opts.atol.len() != 1 && opts.atol.len() != dim {
        return Err(BdfError::from_kind(BdfErrorKind::AtolMismatch {
            atol_len: opts.atol.len(),
            dim,
        }));
    }
    Ok(())
}

struct Workspace {
    ycur: Vec<f64>,
    acor: Vec<f64>,
    acor_prev: Vec<f64>,
    rhs: Vec<f64>,
    resid: Vec<f64>,
    jac: Vec<f64>,
    ewt: Vec<f64>,
}

/// The BDF integrator object; reusable across many zones to amortize
/// setup (notably the symbolic sparse factorization, which is computed
/// once here and shared by every solve).
pub struct BdfIntegrator {
    opts: BdfOptions,
    sparse: Option<Arc<SparseLu>>,
}

/// Apply the Pascal-triangle prediction `z ← A z` in place. The inner loop
/// is over the vector length, so the same routine serves the scalar
/// integrator (vectors of length `dim`) and the batched one (structure-of-
/// arrays vectors of length `dim × width`).
pub(crate) fn predict(z: &mut [Vec<f64>], q: usize) {
    for k in 1..=q {
        for j in (k..=q).rev() {
            let (a, b) = z.split_at_mut(j);
            let zl = &mut a[j - 1];
            let zh = &b[0];
            for i in 0..zl.len() {
                zl[i] += zh[i];
            }
        }
    }
}

/// Undo [`predict`] (exact inverse; same descending loop, opposite sign,
/// as in CVODE's `cvRestore`).
pub(crate) fn unpredict(z: &mut [Vec<f64>], q: usize) {
    for k in 1..=q {
        for j in (k..=q).rev() {
            let (a, b) = z.split_at_mut(j);
            let zl = &mut a[j - 1];
            let zh = &b[0];
            for i in 0..zl.len() {
                zl[i] -= zh[i];
            }
        }
    }
}

/// Exact step-size rescale `z_j ← r^j z_j`.
pub(crate) fn rescale(z: &mut [Vec<f64>], q: usize, r: f64) {
    let mut f = 1.0;
    for zj in z.iter_mut().take(q + 1).skip(1) {
        f *= r;
        for v in zj.iter_mut() {
            *v *= f;
        }
    }
}

impl BdfIntegrator {
    /// Create an integrator with the given options.
    pub fn new(opts: BdfOptions) -> Self {
        let sparse = match &opts.solver {
            NewtonSolver::Sparse(p) => Some(Arc::new(SparseLu::compile(p))),
            NewtonSolver::Dense => None,
        };
        BdfIntegrator { opts, sparse }
    }

    /// The configured options.
    pub fn options(&self) -> &BdfOptions {
        &self.opts
    }

    /// The configured linear-solver kind ("dense" / "sparse").
    pub fn solver_kind(&self) -> &'static str {
        self.opts.solver.kind()
    }

    fn make_solver(&self, n: usize) -> Box<dyn LinearSolver> {
        match &self.sparse {
            None => Box::new(DenseNewton::new(n)),
            Some(lu) => {
                assert_eq!(
                    lu.dim(),
                    n,
                    "sparse pattern dimension {} does not match system dimension {n}",
                    lu.dim()
                );
                Box::new(SparseNewton::new(Arc::clone(lu)))
            }
        }
    }

    fn error_weights(&self, y: &[f64], ewt: &mut [f64]) {
        for i in 0..y.len() {
            let atol = if self.opts.atol.len() == 1 {
                self.opts.atol[0]
            } else {
                self.opts.atol[i]
            };
            ewt[i] = 1.0 / (self.opts.rtol * y[i].abs() + atol);
        }
    }

    fn wrms(e: &[f64], ewt: &[f64]) -> f64 {
        let n = e.len() as f64;
        (e.iter()
            .zip(ewt)
            .map(|(&ei, &wi)| (ei * wi).powi(2))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    /// Integrate `sys` from `t0` to `tend`, updating `y` in place. Returns
    /// the work statistics on success; on failure the returned
    /// [`BdfError`] carries both the error kind and the statistics of the
    /// work spent before failing.
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        tend: f64,
        y: &mut [f64],
    ) -> Result<BdfStats, BdfError> {
        assert_eq!(y.len(), sys.dim());
        assert!(tend > t0);
        let n = sys.dim();
        check_atol(&self.opts, n)?;
        let max_order = self.opts.max_order.clamp(1, 5);
        let mut stats = BdfStats::default();
        let mut solver = self.make_solver(n);
        let mut ws = Workspace {
            ycur: vec![0.0; n],
            acor: vec![0.0; n],
            acor_prev: vec![0.0; n],
            rhs: vec![0.0; n],
            resid: vec![0.0; n],
            jac: vec![0.0; n * n],
            ewt: vec![0.0; n],
        };
        let mut l = [0.0f64; 6];

        // Initial step size from the RHS scale.
        sys.rhs(t0, y, &mut ws.rhs);
        stats.rhs_evals += 1;
        self.error_weights(y, &mut ws.ewt);
        let mut h = match self.opts.h0 {
            Some(h0) => h0,
            None => {
                let rate = Self::wrms(&ws.rhs, &ws.ewt).max(1e-30);
                ((1.0 / rate) * 1e-3)
                    .min((tend - t0) * 1e-3)
                    .max((tend - t0) * 1e-12)
            }
        };
        let hmin = (tend - t0) * 1e-15;

        // Nordsieck array z[j] = h^j y^(j) / j!, j = 0..=q.
        let mut z: Vec<Vec<f64>> = vec![y.to_vec(), ws.rhs.iter().map(|&f| f * h).collect()];
        let mut t = t0;
        let mut q = 1usize;
        let mut qwait = 2usize; // steps until an order change is considered
        let mut newton_fails = 0usize;
        let mut err_fails = 0usize;
        let mut have_acor_prev = false;

        macro_rules! fail {
            ($kind:expr, $z:expr, $q:expr) => {{
                y.copy_from_slice(&$z[0]);
                stats.final_order = $q;
                return Err(BdfError { kind: $kind, stats });
            }};
        }

        while t < tend - 1e-14 * (tend - t0).abs() {
            if stats.steps + stats.rejected > self.opts.max_steps as u64 {
                fail!(BdfErrorKind::MaxSteps, z, q);
            }
            // Clamp to land on tend.
            if t + h > tend {
                let r = (tend - t) / h;
                rescale(&mut z, q, r);
                h = tend - t;
            }
            bdf_l(q, &mut l);
            let gamma = l[0] * h;
            self.error_weights(&z[0], &mut ws.ewt);

            predict(&mut z, q);
            let tn = t + h;
            // Corrector: G(y) = y − γ f(y) − a with a = z0_pred − l₀ z1_pred
            // (follows from requiring z1_new = h f and l₁ = 1).
            ws.ycur.copy_from_slice(&z[0]);
            sys.jac(tn, &ws.ycur, &mut ws.jac);
            stats.jac_evals += 1;
            stats.factorizations += 1;
            let t_factor = Instant::now();
            let factored = solver.factor(&ws.jac, gamma);
            stats.solve_ns += t_factor.elapsed().as_nanos() as u64;
            if factored.is_err() {
                unpredict(&mut z, q);
                stats.rejected += 1;
                if h * 0.25 < hmin {
                    fail!(BdfErrorKind::SingularMatrix, z, q);
                }
                rescale(&mut z, q, 0.25);
                h *= 0.25;
                continue;
            }

            // Newton iteration; acor accumulates e = y − y_pred.
            ws.acor.iter_mut().for_each(|v| *v = 0.0);
            let mut converged = false;
            let mut last_dnorm = f64::INFINITY;
            for _ in 0..4 {
                sys.rhs(tn, &ws.ycur, &mut ws.rhs);
                stats.rhs_evals += 1;
                // resid = −G(y) = γ f(y) − l₀ z1_pred − acor.
                for i in 0..n {
                    ws.resid[i] = gamma * ws.rhs[i] - l[0] * z[1][i] - ws.acor[i];
                }
                let t_solve = Instant::now();
                solver.solve(&mut ws.resid);
                stats.solve_ns += t_solve.elapsed().as_nanos() as u64;
                stats.newton_iters += 1;
                for i in 0..n {
                    ws.acor[i] += ws.resid[i];
                    ws.ycur[i] = z[0][i] + ws.acor[i];
                }
                let dnorm = Self::wrms(&ws.resid, &ws.ewt);
                if !dnorm.is_finite() {
                    break;
                }
                if dnorm < 0.1 {
                    converged = true;
                    break;
                }
                if dnorm > 2.0 * last_dnorm {
                    break;
                }
                last_dnorm = dnorm;
            }
            if !converged {
                unpredict(&mut z, q);
                stats.rejected += 1;
                newton_fails += 1;
                if h * 0.25 < hmin {
                    fail!(BdfErrorKind::StepUnderflow { t }, z, q);
                }
                rescale(&mut z, q, 0.25);
                h *= 0.25;
                if newton_fails > 2 && q > 1 {
                    z.truncate(2);
                    q = 1;
                    qwait = 2;
                    have_acor_prev = false;
                }
                continue;
            }
            newton_fails = 0;

            // Error test: LTE ≈ acor / (q+1).
            let est = Self::wrms(&ws.acor, &ws.ewt) / (q as f64 + 1.0);
            if est > 1.0 {
                unpredict(&mut z, q);
                stats.rejected += 1;
                err_fails += 1;
                let r = (0.9 * est.powf(-1.0 / (q as f64 + 1.0))).clamp(0.1, 0.9);
                if h * r < hmin {
                    fail!(BdfErrorKind::StepUnderflow { t }, z, q);
                }
                rescale(&mut z, q, r);
                h *= r;
                if err_fails >= 3 && q > 1 {
                    // Persistent failures: drop to order 1 (VODE's ETAMIN
                    // path) — the high-order history is not trustworthy.
                    z.truncate(2);
                    q = 1;
                    qwait = 2;
                    have_acor_prev = false;
                }
                continue;
            }
            err_fails = 0;

            // Accept: z += l_j · acor.
            for j in 0..=q {
                for i in 0..n {
                    z[j][i] += l[j] * ws.acor[i];
                }
            }
            t = tn;
            stats.steps += 1;

            // Step/order adaptation (one decision per qwait window).
            let eta_q = 0.9 * est.max(1e-12).powf(-1.0 / (q as f64 + 1.0));
            let mut eta = eta_q;
            let mut new_q = q;
            if qwait > 0 {
                qwait -= 1;
            } else {
                if q > 1 {
                    // Error at order q−1 from the highest Nordsieck entry.
                    let est_dn = Self::wrms(&z[q], &ws.ewt) / q as f64;
                    let eta_dn = 0.9 * est_dn.max(1e-12).powf(-1.0 / q as f64);
                    if eta_dn > eta {
                        eta = eta_dn;
                        new_q = q - 1;
                    }
                }
                if q < max_order && have_acor_prev {
                    // Error at order q+1 from the change in corrections.
                    let mut acc = 0.0;
                    for i in 0..n {
                        let d = (ws.acor[i] - ws.acor_prev[i]) * ws.ewt[i];
                        acc += d * d;
                    }
                    let est_up = (acc / n as f64).sqrt() / (q as f64 + 2.0);
                    let eta_up = 0.9 * est_up.max(1e-12).powf(-1.0 / (q as f64 + 2.0));
                    if eta_up > eta {
                        eta = eta_up;
                        new_q = q + 1;
                    }
                }
            }
            ws.acor_prev.copy_from_slice(&ws.acor);
            have_acor_prev = true;

            if new_q != q {
                if new_q > q {
                    // Seed the new highest Nordsieck entry from the
                    // correction (the next derivative's contribution).
                    let mut zq1 = vec![0.0; n];
                    for i in 0..n {
                        zq1[i] = ws.acor[i] * l[q] / (q as f64 + 1.0);
                    }
                    z.push(zq1);
                } else {
                    z.truncate(new_q + 1);
                }
                q = new_q;
                qwait = q + 1;
                have_acor_prev = false;
            }
            let eta = eta.clamp(0.2, 5.0);
            if !(0.9..=1.3).contains(&eta) {
                rescale(&mut z, q, eta);
                h *= eta;
            }
        }
        y.copy_from_slice(&z[0]);
        stats.final_order = q;
        Ok(stats)
    }
}

/// Classic fixed-step RK4, for non-stiff references and the stiffness
/// demonstration tests.
pub fn rk4(sys: &dyn OdeSystem, t0: f64, tend: f64, nsteps: usize, y: &mut [f64]) {
    let n = sys.dim();
    let h = (tend - t0) / nsteps as f64;
    let (mut k1, mut k2, mut k3, mut k4) = (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut tmp = vec![0.0; n];
    let mut t = t0;
    for _ in 0..nsteps {
        sys.rhs(t, y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        sys.rhs(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        sys.rhs(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + h * k3[i];
        }
        sys.rhs(t + h, &tmp, &mut k4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y' = -k y, solution y = e^{-kt}.
    struct Decay {
        k: f64,
    }
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -self.k * y[0];
        }
        fn jac(&self, _t: f64, _y: &[f64], jac: &mut [f64]) {
            jac[0] = -self.k;
        }
    }

    /// The classic stiff Robertson problem.
    struct Robertson;
    impl OdeSystem for Robertson {
        fn dim(&self) -> usize {
            3
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            d[2] = 3e7 * y[1] * y[1];
            d[1] = -d[0] - d[2];
        }
        fn jac(&self, _t: f64, y: &[f64], j: &mut [f64]) {
            j[0] = -0.04;
            j[1] = 1e4 * y[2];
            j[2] = 1e4 * y[1];
            j[6] = 0.0;
            j[7] = 6e7 * y[1];
            j[8] = 0.0;
            j[3] = -j[0] - j[6];
            j[4] = -j[1] - j[7];
            j[5] = -j[2] - j[8];
        }
    }

    /// Oscillator for accuracy/order checking: y'' = -y.
    struct Oscillator;
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = y[1];
            d[1] = -y[0];
        }
        fn jac(&self, _t: f64, _y: &[f64], j: &mut [f64]) {
            j[0] = 0.0;
            j[1] = 1.0;
            j[2] = -1.0;
            j[3] = 0.0;
        }
    }

    #[test]
    fn bdf_l_coefficients_match_tables() {
        let mut l = [0.0; 6];
        bdf_l(1, &mut l);
        assert_eq!(&l[..2], &[1.0, 1.0]);
        bdf_l(2, &mut l);
        assert!((l[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((l[2] - 1.0 / 3.0).abs() < 1e-15);
        bdf_l(3, &mut l);
        assert!((l[0] - 6.0 / 11.0).abs() < 1e-15);
        assert!((l[2] - 6.0 / 11.0).abs() < 1e-15);
        assert!((l[3] - 1.0 / 11.0).abs() < 1e-15);
        bdf_l(5, &mut l);
        assert!((l[0] - 120.0 / 274.0).abs() < 1e-14);
        assert!((l[5] - 1.0 / 274.0).abs() < 1e-15);
    }

    #[test]
    fn pascal_predict_unpredict_roundtrip() {
        let mut z = vec![vec![1.0, 2.0], vec![0.5, -1.0], vec![0.25, 0.125]];
        let orig = z.clone();
        predict(&mut z, 2);
        assert_ne!(z, orig);
        // z0 after prediction = y + hy' + h²y''/2 (Taylor shift).
        assert_eq!(z[0][0], 1.0 + 0.5 + 0.25);
        unpredict(&mut z, 2);
        for (a, b) in z.iter().zip(&orig) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn rescale_is_geometric() {
        let mut z = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        rescale(&mut z, 3, 0.5);
        assert_eq!(z[0][0], 1.0);
        assert_eq!(z[1][0], 0.5);
        assert_eq!(z[2][0], 0.25);
        assert_eq!(z[3][0], 0.125);
    }

    #[test]
    fn decay_matches_analytic() {
        let sys = Decay { k: 2.5 };
        let mut y = [1.0];
        let integ = BdfIntegrator::new(BdfOptions::default());
        let stats = integ.integrate(&sys, 0.0, 3.0, &mut y).unwrap();
        let exact = (-2.5f64 * 3.0).exp();
        // Global error can exceed rtol by a couple of orders (as in VODE).
        assert!(
            (y[0] - exact).abs() < 1e-4 * exact.max(1e-6),
            "y = {}, exact = {exact}",
            y[0]
        );
        assert!(stats.steps > 0);
    }

    #[test]
    fn stiff_decay_takes_few_steps() {
        // k = 1e8 over t = 1: explicit would need ~1e8 steps.
        let sys = Decay { k: 1e8 };
        let mut y = [1.0];
        let opts = BdfOptions::builder().rtol(1e-6).build().unwrap();
        let integ = BdfIntegrator::new(opts);
        let stats = integ.integrate(&sys, 0.0, 1.0, &mut y).unwrap();
        assert!(y[0].abs() < 1e-8);
        assert!(
            stats.steps < 2000,
            "implicit integrator took {} steps on a stiff decay",
            stats.steps
        );
    }

    #[test]
    fn robertson_standard_checkpoint() {
        let mut y = [1.0, 0.0, 0.0];
        let opts = BdfOptions::builder()
            .rtol(1e-8)
            .atol_vec(vec![1e-12, 1e-14, 1e-12])
            .build()
            .unwrap();
        let integ = BdfIntegrator::new(opts);
        let stats = integ.integrate(&Robertson, 0.0, 40.0, &mut y).unwrap();
        // Reference values at t = 40 (from published stiff test suites).
        assert!((y[0] - 0.7158271).abs() < 1e-4, "y0 = {}", y[0]);
        assert!((y[1] - 9.186e-6).abs() < 1e-7, "y1 = {}", y[1]);
        assert!((y[2] - 0.2841636).abs() < 1e-4, "y2 = {}", y[2]);
        assert!((y[0] + y[1] + y[2] - 1.0).abs() < 1e-7);
        assert!(stats.steps < 20_000, "{} steps", stats.steps);
        assert!(stats.solve_ns > 0, "linear-solve time must be attributed");
    }

    #[test]
    fn oscillator_accuracy_and_order_raising() {
        let mut y = [1.0, 0.0];
        let opts = BdfOptions::builder()
            .rtol(1e-9)
            .atol(1e-12)
            .build()
            .unwrap();
        let integ = BdfIntegrator::new(opts);
        let stats = integ.integrate(&Oscillator, 0.0, 10.0, &mut y).unwrap();
        assert!((y[0] - 10f64.cos()).abs() < 1e-5, "y0 = {}", y[0]);
        assert!((y[1] + 10f64.sin()).abs() < 1e-5, "y1 = {}", y[1]);
        assert!(
            stats.final_order >= 3,
            "tight tolerances should drive the order up (got {})",
            stats.final_order
        );
    }

    #[test]
    fn tighter_tolerance_means_smaller_error() {
        let run = |rtol: f64| {
            let mut y = [1.0, 0.0];
            let opts = BdfOptions::builder()
                .rtol(rtol)
                .atol(rtol * 1e-3)
                .build()
                .unwrap();
            let integ = BdfIntegrator::new(opts);
            integ.integrate(&Oscillator, 0.0, 5.0, &mut y).unwrap();
            (y[0] - 5f64.cos()).abs()
        };
        let loose = run(1e-4);
        let tight = run(1e-10);
        assert!(tight < loose, "tight {tight} vs loose {loose}");
        assert!(tight < 1e-6);
    }

    #[test]
    fn sparse_solver_matches_dense() {
        let pattern = CsrPattern::new(
            3,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
            ],
        );
        let run = |solver: NewtonSolver| {
            let opts = BdfOptions::builder()
                .rtol(1e-8)
                .atol_vec(vec![1e-12, 1e-14, 1e-12])
                .solver(solver)
                .build()
                .unwrap();
            let mut y = [1.0, 0.0, 0.0];
            let integ = BdfIntegrator::new(opts);
            integ.integrate(&Robertson, 0.0, 40.0, &mut y).unwrap();
            y
        };
        let yd = run(NewtonSolver::Dense);
        let ys = run(NewtonSolver::Sparse(pattern));
        for i in 0..3 {
            assert!(
                (yd[i] - ys[i]).abs() < 1e-6 * yd[i].abs().max(1e-10),
                "component {i}: dense {} vs sparse {}",
                yd[i],
                ys[i]
            );
        }
    }

    #[test]
    fn rk4_oscillator_reference() {
        let mut y = [1.0, 0.0];
        rk4(&Oscillator, 0.0, 10.0, 10_000, &mut y);
        assert!((y[0] - 10f64.cos()).abs() < 1e-9);
    }

    #[test]
    fn max_steps_is_enforced() {
        let sys = Decay { k: 1.0 };
        let mut y = [1.0];
        let opts = BdfOptions::builder()
            .max_steps(3)
            .rtol(1e-12)
            .atol(1e-14)
            .h0(1e-9)
            .build()
            .unwrap();
        let integ = BdfIntegrator::new(opts);
        assert_eq!(
            integ.integrate(&sys, 0.0, 1.0, &mut y).unwrap_err().kind,
            BdfErrorKind::MaxSteps
        );
    }

    #[test]
    fn failed_integration_reports_its_cost() {
        let sys = Decay { k: 1.0 };
        let mut y = [1.0];
        let opts = BdfOptions::builder()
            .max_steps(3)
            .rtol(1e-12)
            .atol(1e-14)
            .h0(1e-9)
            .build()
            .unwrap();
        let integ = BdfIntegrator::new(opts);
        let err = integ.integrate(&sys, 0.0, 1.0, &mut y).unwrap_err();
        assert_eq!(err.kind, BdfErrorKind::MaxSteps);
        assert!(
            err.stats.rhs_evals > 0,
            "failed run must still report its cost"
        );
        assert!(err.stats.steps + err.stats.rejected > 3);

        // Accumulation across attempts is the caller's merge.
        let mut total = err.stats;
        let mut y2 = [1.0];
        let err2 = integ.integrate(&sys, 0.0, 1.0, &mut y2).unwrap_err();
        total.merge(&err2.stats);
        assert_eq!(err2.kind, BdfErrorKind::MaxSteps);
        assert!(total.rhs_evals > err.stats.rhs_evals);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let a = BdfStats {
            steps: 3,
            rejected: 1,
            rhs_evals: 10,
            jac_evals: 4,
            factorizations: 4,
            newton_iters: 8,
            solve_ns: 100,
            final_order: 2,
        };
        let mut m = a;
        m.merge(&BdfStats {
            steps: 2,
            rejected: 0,
            rhs_evals: 5,
            jac_evals: 2,
            factorizations: 2,
            newton_iters: 4,
            solve_ns: 50,
            final_order: 4,
        });
        assert_eq!(m.steps, 5);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.rhs_evals, 15);
        assert_eq!(m.jac_evals, 6);
        assert_eq!(m.factorizations, 6);
        assert_eq!(m.newton_iters, 12);
        assert_eq!(m.solve_ns, 150);
        assert_eq!(m.final_order, 4, "final_order takes the latest value");
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(BdfOptions::builder().build().is_ok());
        assert_eq!(
            BdfOptions::builder().rtol(0.0).build().unwrap_err(),
            BdfConfigError::NonPositiveTolerance {
                which: "rtol",
                value: 0.0
            }
        );
        assert!(matches!(
            BdfOptions::builder().rtol(f64::NAN).build().unwrap_err(),
            BdfConfigError::NonPositiveTolerance { which: "rtol", .. }
        ));
        assert_eq!(
            BdfOptions::builder().atol(-1e-9).build().unwrap_err(),
            BdfConfigError::NonPositiveTolerance {
                which: "atol",
                value: -1e-9
            }
        );
        assert_eq!(
            BdfOptions::builder().atol_vec(vec![]).build().unwrap_err(),
            BdfConfigError::EmptyAtol
        );
        assert_eq!(
            BdfOptions::builder().max_steps(0).build().unwrap_err(),
            BdfConfigError::ZeroMaxSteps
        );
        assert_eq!(
            BdfOptions::builder().max_order(7).build().unwrap_err(),
            BdfConfigError::MaxOrderOutOfRange(7)
        );
        assert_eq!(
            BdfOptions::builder().h0(-1.0).build().unwrap_err(),
            BdfConfigError::NonPositiveInitialStep(-1.0)
        );
        let opts = BdfOptions::builder()
            .rtol(1e-10)
            .atol(1e-14)
            .max_order(3)
            .max_steps(1000)
            .h0(1e-12)
            .solver(NewtonSolver::Sparse(CsrPattern::new(2, vec![(0, 1)])))
            .build()
            .unwrap();
        assert_eq!(opts.rtol, 1e-10);
        assert_eq!(opts.max_order, 3);
        assert_eq!(opts.solver.kind(), "sparse");
    }

    #[test]
    fn mismatched_atol_is_a_structured_error_not_a_panic() {
        // Robertson has dim 3; a 2-component atol used to index out of
        // bounds inside error_weights once the integrator was mid-step.
        let opts = BdfOptions::builder()
            .atol_vec(vec![1e-12, 1e-12])
            .build()
            .unwrap();
        let integ = BdfIntegrator::new(opts);
        let mut y = [1.0, 0.0, 0.0];
        let err = integ.integrate(&Robertson, 0.0, 40.0, &mut y).unwrap_err();
        assert_eq!(
            err.kind,
            BdfErrorKind::AtolMismatch {
                atol_len: 2,
                dim: 3
            }
        );
        // Caught at entry: no work was spent, and the state is untouched.
        assert_eq!(err.stats, BdfStats::default());
        assert_eq!(y, [1.0, 0.0, 0.0]);
        // Broadcast (1) and exact-match (dim) lengths still integrate.
        for atol in [vec![1e-12], vec![1e-12, 1e-14, 1e-12]] {
            let opts = BdfOptions::builder().atol_vec(atol).build().unwrap();
            let integ = BdfIntegrator::new(opts);
            let mut y = [1.0, 0.0, 0.0];
            assert!(integ.integrate(&Robertson, 0.0, 40.0, &mut y).is_ok());
        }
    }

    #[test]
    fn step_exactly_hits_tend() {
        struct Lin;
        impl OdeSystem for Lin {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&self, _t: f64, _y: &[f64], d: &mut [f64]) {
                d[0] = 3.0;
            }
            fn jac(&self, _t: f64, _y: &[f64], j: &mut [f64]) {
                j[0] = 0.0;
            }
        }
        let mut y = [0.5];
        let integ = BdfIntegrator::new(BdfOptions::default());
        integ.integrate(&Lin, 0.0, 7.0, &mut y).unwrap();
        assert!((y[0] - 21.5).abs() < 1e-8, "y = {}", y[0]);
    }
}
