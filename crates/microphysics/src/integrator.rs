//! A VODE-style stiff ODE integrator: variable-step, variable-order BDF
//! (orders 1–5) with a modified-Newton corrector, in Nordsieck form.
//!
//! "ODE integrators are the key component of nuclear reactions simulations"
//! (§III): VODE (Brown, Byrne & Hindmarsh 1989) is the integrator the astro
//! codes ported to GPUs. This implementation keeps VODE's essential
//! structure:
//!
//! * the history is the **Nordsieck array** `z_j = h^j y^{(j)} / j!`, so a
//!   step-size change is the exact rescale `z_j ← r^j z_j` (no
//!   interpolation error);
//! * prediction applies the Pascal-triangle shift; correction adds `e·l`
//!   with the fixed-step BDF corrector coefficients `l` generated from
//!   `Λ(x) = Π_{i=1..q} (1 + x/i)`;
//! * the nonlinear corrector equation `y − γ f(y) − a = 0` (γ = `l₀ h`) is
//!   solved by a modified Newton iteration with matrix `I − γJ`;
//! * errors are measured in the weighted-RMS norm and both the step size
//!   and the order adapt.
//!
//! The Newton linear solves go through either dense LU (the VODE default)
//! or the sparsity-pattern-compiled solver of [`crate::linalg::CompiledLu`]
//! (the paper's §VI plan), selectable per call — that switch is the
//! `ablation_sparse_jacobian` benchmark.

use crate::linalg::{CompiledLu, DenseLu, SparsePattern};

/// A first-order ODE system `dy/dt = f(t, y)` with an analytic Jacobian.
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;
    /// Evaluate the right-hand side into `dydt`.
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);
    /// Evaluate the row-major `dim²` Jacobian `∂f_i/∂y_j`.
    fn jac(&self, t: f64, y: &[f64], jac: &mut [f64]);
}

/// Linear-solver choice for the Newton iteration.
#[derive(Clone, Debug, Default)]
pub enum NewtonSolver {
    /// Dense LU with partial pivoting (VODE's default).
    #[default]
    Dense,
    /// Pattern-compiled sparse elimination (§VI future work).
    Compiled(SparsePattern),
}

/// Integrator options.
#[derive(Clone, Debug)]
pub struct BdfOptions {
    /// Relative tolerance.
    pub rtol: f64,
    /// Absolute tolerance (per component, broadcast if length 1).
    pub atol: Vec<f64>,
    /// Maximum BDF order, 1–5.
    pub max_order: usize,
    /// Maximum number of internal steps before giving up.
    pub max_steps: usize,
    /// Initial step size; `None` chooses automatically.
    pub h0: Option<f64>,
    /// Newton linear solver.
    pub solver: NewtonSolver,
}

impl Default for BdfOptions {
    fn default() -> Self {
        BdfOptions {
            rtol: 1e-8,
            atol: vec![1e-12],
            max_order: 5,
            max_steps: 500_000,
            h0: None,
            solver: NewtonSolver::Dense,
        }
    }
}

/// Statistics from one integration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BdfStats {
    /// Accepted steps.
    pub steps: u64,
    /// Error-test or Newton failures that forced a retry.
    pub rejected: u64,
    /// Right-hand-side evaluations.
    pub rhs_evals: u64,
    /// Jacobian evaluations.
    pub jac_evals: u64,
    /// Linear-system factorizations.
    pub factorizations: u64,
    /// Total Newton iterations.
    pub newton_iters: u64,
    /// Order in use when integration finished.
    pub final_order: usize,
}

/// Integration failure.
#[derive(Clone, Debug, PartialEq)]
pub enum BdfError {
    /// Too many internal steps.
    MaxSteps,
    /// Step size underflowed: the problem is too stiff for the tolerances
    /// or the RHS is returning non-finite values.
    StepUnderflow {
        /// Time reached before the failure.
        t: f64,
    },
    /// The Newton matrix was singular beyond recovery.
    SingularMatrix,
    /// The integration "succeeded" but left non-finite state behind (used
    /// by post-integration validators, e.g. the burn retry ladder).
    NonFinite,
}

impl std::fmt::Display for BdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BdfError::MaxSteps => write!(f, "BDF: exceeded maximum step count"),
            BdfError::StepUnderflow { t } => write!(f, "BDF: step size underflow at t = {t}"),
            BdfError::SingularMatrix => write!(f, "BDF: singular Newton matrix"),
            BdfError::NonFinite => write!(f, "BDF: integration produced non-finite state"),
        }
    }
}

impl std::error::Error for BdfError {}

/// Corrector coefficients `l[0..=q]` for fixed-step BDF of order `q`:
/// the coefficients of `Λ(x) = Π_{i=1..q}(1 + x/i)`, normalized to `l₁ = 1`.
/// `l₀` equals the BDF β (1, 2/3, 6/11, 12/25, 60/137).
fn bdf_l(q: usize, l: &mut [f64; 6]) {
    l.iter_mut().for_each(|v| *v = 0.0);
    l[0] = 1.0;
    for i in 1..=q {
        // Multiply the polynomial by (1 + x/i).
        for j in (1..=i).rev() {
            let prev = l[j - 1];
            l[j] += prev / i as f64;
        }
    }
    let l1 = l[1];
    for v in l.iter_mut() {
        *v /= l1;
    }
}

struct Workspace {
    ycur: Vec<f64>,
    acor: Vec<f64>,
    acor_prev: Vec<f64>,
    rhs: Vec<f64>,
    resid: Vec<f64>,
    jac: Vec<f64>,
    newton_mat: Vec<f64>,
    ewt: Vec<f64>,
    sparse_work: Vec<f64>,
}

/// The BDF integrator object; reusable across many zones to amortize
/// setup (notably the symbolic sparse factorization).
pub struct BdfIntegrator {
    opts: BdfOptions,
    compiled: Option<CompiledLu>,
}

/// Apply the Pascal-triangle prediction `z ← A z` in place.
fn predict(z: &mut [Vec<f64>], q: usize) {
    for k in 1..=q {
        for j in (k..=q).rev() {
            let (a, b) = z.split_at_mut(j);
            let zl = &mut a[j - 1];
            let zh = &b[0];
            for i in 0..zl.len() {
                zl[i] += zh[i];
            }
        }
    }
}

/// Undo [`predict`] (exact inverse; same descending loop, opposite sign,
/// as in CVODE's `cvRestore`).
fn unpredict(z: &mut [Vec<f64>], q: usize) {
    for k in 1..=q {
        for j in (k..=q).rev() {
            let (a, b) = z.split_at_mut(j);
            let zl = &mut a[j - 1];
            let zh = &b[0];
            for i in 0..zl.len() {
                zl[i] -= zh[i];
            }
        }
    }
}

/// Exact step-size rescale `z_j ← r^j z_j`.
fn rescale(z: &mut [Vec<f64>], q: usize, r: f64) {
    let mut f = 1.0;
    for zj in z.iter_mut().take(q + 1).skip(1) {
        f *= r;
        for v in zj.iter_mut() {
            *v *= f;
        }
    }
}

impl BdfIntegrator {
    /// Create an integrator with the given options.
    pub fn new(opts: BdfOptions) -> Self {
        let compiled = match &opts.solver {
            NewtonSolver::Compiled(p) => Some(CompiledLu::compile(p)),
            NewtonSolver::Dense => None,
        };
        BdfIntegrator { opts, compiled }
    }

    fn error_weights(&self, y: &[f64], ewt: &mut [f64]) {
        for i in 0..y.len() {
            let atol = if self.opts.atol.len() == 1 {
                self.opts.atol[0]
            } else {
                self.opts.atol[i]
            };
            ewt[i] = 1.0 / (self.opts.rtol * y[i].abs() + atol);
        }
    }

    fn wrms(e: &[f64], ewt: &[f64]) -> f64 {
        let n = e.len() as f64;
        (e.iter()
            .zip(ewt)
            .map(|(&ei, &wi)| (ei * wi).powi(2))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    /// Integrate `sys` from `t0` to `tend`, updating `y` in place.
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        tend: f64,
        y: &mut [f64],
    ) -> Result<BdfStats, BdfError> {
        let mut stats = BdfStats::default();
        self.integrate_with_stats(sys, t0, tend, y, &mut stats)?;
        Ok(stats)
    }

    /// Like [`BdfIntegrator::integrate`], but accumulates into a
    /// caller-owned [`BdfStats`] so the work spent is visible **even when
    /// the integration fails** — the retry ladder charges every rung's cost
    /// to the zone's failure record. Counters are added to whatever is
    /// already in `stats` (pass a fresh `BdfStats::default()` for a single
    /// attempt); `final_order` is overwritten with the order in use when
    /// this call returned.
    pub fn integrate_with_stats(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        tend: f64,
        y: &mut [f64],
        stats: &mut BdfStats,
    ) -> Result<(), BdfError> {
        assert_eq!(y.len(), sys.dim());
        assert!(tend > t0);
        let n = sys.dim();
        let max_order = self.opts.max_order.clamp(1, 5);
        let work_at_entry = stats.steps + stats.rejected;
        let mut ws = Workspace {
            ycur: vec![0.0; n],
            acor: vec![0.0; n],
            acor_prev: vec![0.0; n],
            rhs: vec![0.0; n],
            resid: vec![0.0; n],
            jac: vec![0.0; n * n],
            newton_mat: vec![0.0; n * n],
            ewt: vec![0.0; n],
            sparse_work: vec![0.0; self.compiled.as_ref().map_or(0, |c| c.nnz_filled())],
        };
        let mut l = [0.0f64; 6];

        // Initial step size from the RHS scale.
        sys.rhs(t0, y, &mut ws.rhs);
        stats.rhs_evals += 1;
        self.error_weights(y, &mut ws.ewt);
        let mut h = match self.opts.h0 {
            Some(h0) => h0,
            None => {
                let rate = Self::wrms(&ws.rhs, &ws.ewt).max(1e-30);
                ((1.0 / rate) * 1e-3)
                    .min((tend - t0) * 1e-3)
                    .max((tend - t0) * 1e-12)
            }
        };
        let hmin = (tend - t0) * 1e-15;

        // Nordsieck array z[j] = h^j y^(j) / j!, j = 0..=q.
        let mut z: Vec<Vec<f64>> = vec![y.to_vec(), ws.rhs.iter().map(|&f| f * h).collect()];
        let mut t = t0;
        let mut q = 1usize;
        let mut qwait = 2usize; // steps until an order change is considered
        let mut newton_fails = 0usize;
        let mut err_fails = 0usize;
        let mut have_acor_prev = false;

        while t < tend - 1e-14 * (tend - t0).abs() {
            if stats.steps + stats.rejected - work_at_entry > self.opts.max_steps as u64 {
                y.copy_from_slice(&z[0]);
                stats.final_order = q;
                return Err(BdfError::MaxSteps);
            }
            // Clamp to land on tend.
            if t + h > tend {
                let r = (tend - t) / h;
                rescale(&mut z, q, r);
                h = tend - t;
            }
            bdf_l(q, &mut l);
            let gamma = l[0] * h;
            self.error_weights(&z[0], &mut ws.ewt);

            predict(&mut z, q);
            let tn = t + h;
            // Corrector: G(y) = y − γ f(y) − a with a = z0_pred − l₀ z1_pred
            // (follows from requiring z1_new = h f and l₁ = 1).
            ws.ycur.copy_from_slice(&z[0]);
            sys.jac(tn, &ws.ycur, &mut ws.jac);
            stats.jac_evals += 1;
            for r in 0..n {
                for c in 0..n {
                    ws.newton_mat[r * n + c] = -gamma * ws.jac[r * n + c];
                }
                ws.newton_mat[r * n + r] += 1.0;
            }
            stats.factorizations += 1;
            let dense_fact = match &self.compiled {
                None => match DenseLu::factor(&ws.newton_mat, n) {
                    Ok(f) => Some(f),
                    Err(_) => {
                        unpredict(&mut z, q);
                        stats.rejected += 1;
                        if h * 0.25 < hmin {
                            y.copy_from_slice(&z[0]);
                            stats.final_order = q;
                            return Err(BdfError::SingularMatrix);
                        }
                        rescale(&mut z, q, 0.25);
                        h *= 0.25;
                        continue;
                    }
                },
                Some(_) => None,
            };

            // Newton iteration; acor accumulates e = y − y_pred.
            ws.acor.iter_mut().for_each(|v| *v = 0.0);
            let mut converged = false;
            let mut last_dnorm = f64::INFINITY;
            for _ in 0..4 {
                sys.rhs(tn, &ws.ycur, &mut ws.rhs);
                stats.rhs_evals += 1;
                // resid = −G(y) = γ f(y) − l₀ z1_pred − acor.
                for i in 0..n {
                    ws.resid[i] = gamma * ws.rhs[i] - l[0] * z[1][i] - ws.acor[i];
                }
                let solved = match &dense_fact {
                    Some(f) => {
                        f.solve(&mut ws.resid);
                        true
                    }
                    None => {
                        let c = self.compiled.as_ref().unwrap();
                        c.factor_solve(&ws.newton_mat, &mut ws.resid, &mut ws.sparse_work)
                            .is_ok()
                    }
                };
                if !solved {
                    break;
                }
                stats.newton_iters += 1;
                for i in 0..n {
                    ws.acor[i] += ws.resid[i];
                    ws.ycur[i] = z[0][i] + ws.acor[i];
                }
                let dnorm = Self::wrms(&ws.resid, &ws.ewt);
                if !dnorm.is_finite() {
                    break;
                }
                if dnorm < 0.1 {
                    converged = true;
                    break;
                }
                if dnorm > 2.0 * last_dnorm {
                    break;
                }
                last_dnorm = dnorm;
            }
            if !converged {
                unpredict(&mut z, q);
                stats.rejected += 1;
                newton_fails += 1;
                if h * 0.25 < hmin {
                    y.copy_from_slice(&z[0]);
                    stats.final_order = q;
                    return Err(BdfError::StepUnderflow { t });
                }
                rescale(&mut z, q, 0.25);
                h *= 0.25;
                if newton_fails > 2 && q > 1 {
                    z.truncate(2);
                    q = 1;
                    qwait = 2;
                    have_acor_prev = false;
                }
                continue;
            }
            newton_fails = 0;

            // Error test: LTE ≈ acor / (q+1).
            let est = Self::wrms(&ws.acor, &ws.ewt) / (q as f64 + 1.0);
            if est > 1.0 {
                unpredict(&mut z, q);
                stats.rejected += 1;
                err_fails += 1;
                let r = (0.9 * est.powf(-1.0 / (q as f64 + 1.0))).clamp(0.1, 0.9);
                if h * r < hmin {
                    y.copy_from_slice(&z[0]);
                    stats.final_order = q;
                    return Err(BdfError::StepUnderflow { t });
                }
                rescale(&mut z, q, r);
                h *= r;
                if err_fails >= 3 && q > 1 {
                    // Persistent failures: drop to order 1 (VODE's ETAMIN
                    // path) — the high-order history is not trustworthy.
                    z.truncate(2);
                    q = 1;
                    qwait = 2;
                    have_acor_prev = false;
                }
                continue;
            }
            err_fails = 0;

            // Accept: z += l_j · acor.
            for j in 0..=q {
                for i in 0..n {
                    z[j][i] += l[j] * ws.acor[i];
                }
            }
            t = tn;
            stats.steps += 1;

            // Step/order adaptation (one decision per qwait window).
            let eta_q = 0.9 * est.max(1e-12).powf(-1.0 / (q as f64 + 1.0));
            let mut eta = eta_q;
            let mut new_q = q;
            if qwait > 0 {
                qwait -= 1;
            } else {
                if q > 1 {
                    // Error at order q−1 from the highest Nordsieck entry.
                    let est_dn = Self::wrms(&z[q], &ws.ewt) / q as f64;
                    let eta_dn = 0.9 * est_dn.max(1e-12).powf(-1.0 / q as f64);
                    if eta_dn > eta {
                        eta = eta_dn;
                        new_q = q - 1;
                    }
                }
                if q < max_order && have_acor_prev {
                    // Error at order q+1 from the change in corrections.
                    let mut acc = 0.0;
                    for i in 0..n {
                        let d = (ws.acor[i] - ws.acor_prev[i]) * ws.ewt[i];
                        acc += d * d;
                    }
                    let est_up = (acc / n as f64).sqrt() / (q as f64 + 2.0);
                    let eta_up = 0.9 * est_up.max(1e-12).powf(-1.0 / (q as f64 + 2.0));
                    if eta_up > eta {
                        eta = eta_up;
                        new_q = q + 1;
                    }
                }
            }
            ws.acor_prev.copy_from_slice(&ws.acor);
            have_acor_prev = true;

            if new_q != q {
                if new_q > q {
                    // Seed the new highest Nordsieck entry from the
                    // correction (the next derivative's contribution).
                    let mut zq1 = vec![0.0; n];
                    for i in 0..n {
                        zq1[i] = ws.acor[i] * l[q] / (q as f64 + 1.0);
                    }
                    z.push(zq1);
                } else {
                    z.truncate(new_q + 1);
                }
                q = new_q;
                qwait = q + 1;
                have_acor_prev = false;
            }
            let eta = eta.clamp(0.2, 5.0);
            if !(0.9..=1.3).contains(&eta) {
                rescale(&mut z, q, eta);
                h *= eta;
            }
        }
        y.copy_from_slice(&z[0]);
        stats.final_order = q;
        Ok(())
    }
}

/// Classic fixed-step RK4, for non-stiff references and the stiffness
/// demonstration tests.
pub fn rk4(sys: &dyn OdeSystem, t0: f64, tend: f64, nsteps: usize, y: &mut [f64]) {
    let n = sys.dim();
    let h = (tend - t0) / nsteps as f64;
    let (mut k1, mut k2, mut k3, mut k4) = (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut tmp = vec![0.0; n];
    let mut t = t0;
    for _ in 0..nsteps {
        sys.rhs(t, y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        sys.rhs(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        sys.rhs(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + h * k3[i];
        }
        sys.rhs(t + h, &tmp, &mut k4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y' = -k y, solution y = e^{-kt}.
    struct Decay {
        k: f64,
    }
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -self.k * y[0];
        }
        fn jac(&self, _t: f64, _y: &[f64], jac: &mut [f64]) {
            jac[0] = -self.k;
        }
    }

    /// The classic stiff Robertson problem.
    struct Robertson;
    impl OdeSystem for Robertson {
        fn dim(&self) -> usize {
            3
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            d[2] = 3e7 * y[1] * y[1];
            d[1] = -d[0] - d[2];
        }
        fn jac(&self, _t: f64, y: &[f64], j: &mut [f64]) {
            j[0] = -0.04;
            j[1] = 1e4 * y[2];
            j[2] = 1e4 * y[1];
            j[6] = 0.0;
            j[7] = 6e7 * y[1];
            j[8] = 0.0;
            j[3] = -j[0] - j[6];
            j[4] = -j[1] - j[7];
            j[5] = -j[2] - j[8];
        }
    }

    /// Oscillator for accuracy/order checking: y'' = -y.
    struct Oscillator;
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = y[1];
            d[1] = -y[0];
        }
        fn jac(&self, _t: f64, _y: &[f64], j: &mut [f64]) {
            j[0] = 0.0;
            j[1] = 1.0;
            j[2] = -1.0;
            j[3] = 0.0;
        }
    }

    #[test]
    fn bdf_l_coefficients_match_tables() {
        let mut l = [0.0; 6];
        bdf_l(1, &mut l);
        assert_eq!(&l[..2], &[1.0, 1.0]);
        bdf_l(2, &mut l);
        assert!((l[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((l[2] - 1.0 / 3.0).abs() < 1e-15);
        bdf_l(3, &mut l);
        assert!((l[0] - 6.0 / 11.0).abs() < 1e-15);
        assert!((l[2] - 6.0 / 11.0).abs() < 1e-15);
        assert!((l[3] - 1.0 / 11.0).abs() < 1e-15);
        bdf_l(5, &mut l);
        assert!((l[0] - 120.0 / 274.0).abs() < 1e-14);
        assert!((l[5] - 1.0 / 274.0).abs() < 1e-15);
    }

    #[test]
    fn pascal_predict_unpredict_roundtrip() {
        let mut z = vec![vec![1.0, 2.0], vec![0.5, -1.0], vec![0.25, 0.125]];
        let orig = z.clone();
        predict(&mut z, 2);
        assert_ne!(z, orig);
        // z0 after prediction = y + hy' + h²y''/2 (Taylor shift).
        assert_eq!(z[0][0], 1.0 + 0.5 + 0.25);
        unpredict(&mut z, 2);
        for (a, b) in z.iter().zip(&orig) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn rescale_is_geometric() {
        let mut z = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        rescale(&mut z, 3, 0.5);
        assert_eq!(z[0][0], 1.0);
        assert_eq!(z[1][0], 0.5);
        assert_eq!(z[2][0], 0.25);
        assert_eq!(z[3][0], 0.125);
    }

    #[test]
    fn decay_matches_analytic() {
        let sys = Decay { k: 2.5 };
        let mut y = [1.0];
        let integ = BdfIntegrator::new(BdfOptions::default());
        let stats = integ.integrate(&sys, 0.0, 3.0, &mut y).unwrap();
        let exact = (-2.5f64 * 3.0).exp();
        // Global error can exceed rtol by a couple of orders (as in VODE).
        assert!(
            (y[0] - exact).abs() < 1e-4 * exact.max(1e-6),
            "y = {}, exact = {exact}",
            y[0]
        );
        assert!(stats.steps > 0);
    }

    #[test]
    fn stiff_decay_takes_few_steps() {
        // k = 1e8 over t = 1: explicit would need ~1e8 steps.
        let sys = Decay { k: 1e8 };
        let mut y = [1.0];
        let integ = BdfIntegrator::new(BdfOptions {
            rtol: 1e-6,
            ..Default::default()
        });
        let stats = integ.integrate(&sys, 0.0, 1.0, &mut y).unwrap();
        assert!(y[0].abs() < 1e-8);
        assert!(
            stats.steps < 2000,
            "implicit integrator took {} steps on a stiff decay",
            stats.steps
        );
    }

    #[test]
    fn robertson_standard_checkpoint() {
        let mut y = [1.0, 0.0, 0.0];
        let integ = BdfIntegrator::new(BdfOptions {
            rtol: 1e-8,
            atol: vec![1e-12, 1e-14, 1e-12],
            ..Default::default()
        });
        let stats = integ.integrate(&Robertson, 0.0, 40.0, &mut y).unwrap();
        // Reference values at t = 40 (from published stiff test suites).
        assert!((y[0] - 0.7158271).abs() < 1e-4, "y0 = {}", y[0]);
        assert!((y[1] - 9.186e-6).abs() < 1e-7, "y1 = {}", y[1]);
        assert!((y[2] - 0.2841636).abs() < 1e-4, "y2 = {}", y[2]);
        assert!((y[0] + y[1] + y[2] - 1.0).abs() < 1e-7);
        assert!(stats.steps < 20_000, "{} steps", stats.steps);
    }

    #[test]
    fn oscillator_accuracy_and_order_raising() {
        let mut y = [1.0, 0.0];
        let integ = BdfIntegrator::new(BdfOptions {
            rtol: 1e-9,
            atol: vec![1e-12],
            ..Default::default()
        });
        let stats = integ.integrate(&Oscillator, 0.0, 10.0, &mut y).unwrap();
        assert!((y[0] - 10f64.cos()).abs() < 1e-5, "y0 = {}", y[0]);
        assert!((y[1] + 10f64.sin()).abs() < 1e-5, "y1 = {}", y[1]);
        assert!(
            stats.final_order >= 3,
            "tight tolerances should drive the order up (got {})",
            stats.final_order
        );
    }

    #[test]
    fn tighter_tolerance_means_smaller_error() {
        let run = |rtol: f64| {
            let mut y = [1.0, 0.0];
            let integ = BdfIntegrator::new(BdfOptions {
                rtol,
                atol: vec![rtol * 1e-3],
                ..Default::default()
            });
            integ.integrate(&Oscillator, 0.0, 5.0, &mut y).unwrap();
            (y[0] - 5f64.cos()).abs()
        };
        let loose = run(1e-4);
        let tight = run(1e-10);
        assert!(tight < loose, "tight {tight} vs loose {loose}");
        assert!(tight < 1e-6);
    }

    #[test]
    fn compiled_solver_matches_dense() {
        let pattern = SparsePattern::new(
            3,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
            ],
        );
        let run = |solver: NewtonSolver| {
            let mut y = [1.0, 0.0, 0.0];
            let integ = BdfIntegrator::new(BdfOptions {
                rtol: 1e-8,
                atol: vec![1e-12, 1e-14, 1e-12],
                solver,
                ..Default::default()
            });
            integ.integrate(&Robertson, 0.0, 40.0, &mut y).unwrap();
            y
        };
        let yd = run(NewtonSolver::Dense);
        let ys = run(NewtonSolver::Compiled(pattern));
        for i in 0..3 {
            assert!(
                (yd[i] - ys[i]).abs() < 1e-6 * yd[i].abs().max(1e-10),
                "component {i}: dense {} vs compiled {}",
                yd[i],
                ys[i]
            );
        }
    }

    #[test]
    fn rk4_oscillator_reference() {
        let mut y = [1.0, 0.0];
        rk4(&Oscillator, 0.0, 10.0, 10_000, &mut y);
        assert!((y[0] - 10f64.cos()).abs() < 1e-9);
    }

    #[test]
    fn max_steps_is_enforced() {
        let sys = Decay { k: 1.0 };
        let mut y = [1.0];
        let integ = BdfIntegrator::new(BdfOptions {
            max_steps: 3,
            rtol: 1e-12,
            atol: vec![1e-14],
            h0: Some(1e-9),
            ..Default::default()
        });
        assert_eq!(
            integ.integrate(&sys, 0.0, 1.0, &mut y).unwrap_err(),
            BdfError::MaxSteps
        );
    }

    #[test]
    fn stats_survive_a_failed_integration() {
        let sys = Decay { k: 1.0 };
        let mut y = [1.0];
        let integ = BdfIntegrator::new(BdfOptions {
            max_steps: 3,
            rtol: 1e-12,
            atol: vec![1e-14],
            h0: Some(1e-9),
            ..Default::default()
        });
        let mut stats = BdfStats::default();
        let err = integ
            .integrate_with_stats(&sys, 0.0, 1.0, &mut y, &mut stats)
            .unwrap_err();
        assert_eq!(err, BdfError::MaxSteps);
        assert!(stats.rhs_evals > 0, "failed run must still report its cost");
        assert!(stats.steps + stats.rejected > 3);

        // Accumulation: a second call adds to the same counters and the
        // max-steps budget is measured from entry, not from zero.
        let before = stats.rhs_evals;
        let mut y2 = [1.0];
        let err2 = integ
            .integrate_with_stats(&sys, 0.0, 1.0, &mut y2, &mut stats)
            .unwrap_err();
        assert_eq!(err2, BdfError::MaxSteps);
        assert!(stats.rhs_evals > before);
    }

    #[test]
    fn step_exactly_hits_tend() {
        struct Lin;
        impl OdeSystem for Lin {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&self, _t: f64, _y: &[f64], d: &mut [f64]) {
                d[0] = 3.0;
            }
            fn jac(&self, _t: f64, _y: &[f64], j: &mut [f64]) {
                j[0] = 0.0;
            }
        }
        let mut y = [0.5];
        let integ = BdfIntegrator::new(BdfOptions::default());
        integ.integrate(&Lin, 0.0, 7.0, &mut y).unwrap();
        assert!((y[0] - 21.5).abs() < 1e-8, "y = {}", y[0]);
    }
}
