//! # exastro-microphysics
//!
//! The shared microphysics substrate of the `exastro` suite — the Rust
//! analogue of the AMReX-Astro Microphysics repository that Castro and
//! MAESTROeX both build on (§II of *Preparing Nuclear Astrophysics for
//! Exascale*).
//!
//! * [`constants`] — CGS physical constants;
//! * [`species`] — isotope data, compositions, binding-energy bookkeeping;
//! * [`eos`] — gamma-law and analytic stellar (ion + radiation + degenerate
//!   electron) equations of state;
//! * [`rates`] — Gamow-peak reaction-rate fits and plasma screening;
//! * [`network`] — the reaction-network framework and the `cburn2`,
//!   `triple_alpha`, `iso7`, and `aprox13` networks;
//! * [`linalg`] — dense LU and the [`linalg::LinearSolver`] Newton-solver
//!   interface;
//! * [`sparse`] — pattern-specialized sparse LU with precomputed symbolic
//!   factorization (the analytic sparse-Jacobian path of the paper's §VI);
//! * [`integrator`] — the VODE-style variable-order BDF integrator;
//! * [`burner`] — the self-heating zone burner and the [`burner::Burner`]
//!   trait the hydro codes drive it through;
//! * [`recovery`] — the burn retry ladder (relaxed tolerances → subcycling
//!   → §VI outlier offload) with deterministic fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed-extent arrays (species, dims, stencil
// points) are the house style in this numerical code; iterator rewrites
// obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod burner;
pub mod constants;
pub mod eos;
pub mod integrator;
pub mod linalg;
pub mod network;
pub mod rates;
pub mod recovery;
pub mod sparse;
pub mod species;

pub use batch::{BatchBdf, BatchBurner, LaneOde, LaneReport, LaneStatus, ZoneBurn};
pub use burner::{BurnOutcome, BurnTally, Burner, BurnerConfig, PlainBurner, SolverChoice};
pub use eos::{Eos, EosResult, GammaLaw, StellarEos};
pub use integrator::{
    rk4, BdfConfigError, BdfError, BdfErrorKind, BdfIntegrator, BdfOptions, BdfOptionsBuilder,
    BdfStats, NewtonSolver, OdeSystem,
};
pub use linalg::{CompiledLu, DenseLu, DenseNewton, LinearSolver, Singular, SparsePattern};
pub use network::{Aprox13, CBurn2, Iso7, Network, Reaction, TripleAlpha};
pub use rates::{gamow_tau_alpha, screening_factor, Rate};
pub use recovery::{
    BurnFailure, BurnFaultConfig, LadderRung, OffloadOptions, RecoveredBurn, RecoveringBurner,
    RetryLadder,
};
pub use sparse::{CsrPattern, SparseLu, SparseNewton};
pub use species::{energy_rate, mass_to_molar, molar_to_mass, Composition, Species};
