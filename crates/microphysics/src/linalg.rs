//! Small dense and sparse linear algebra for the stiff-ODE Newton solves.
//!
//! Implicit integration of an `N`-isotope network requires factoring and
//! solving an `(N+1)²` Jacobian system every Newton iteration (§IV-B). Two
//! paths are provided:
//!
//! * [`DenseLu`] — LU with partial pivoting, the VODE default;
//! * [`CompiledLu`] — the §VI "future work" path: the sparsity pattern of a
//!   reaction network is known and constant, so the exact sequence of
//!   elimination operations (including fill-in) is generated once and then
//!   replayed with no index searches — the moral equivalent of the paper's
//!   code-generation plan, and the basis of the sparse-Jacobian ablation.

/// Row-major dense matrix storage helper: `a[r * n + c]`.
#[inline]
fn idx(n: usize, r: usize, c: usize) -> usize {
    r * n + c
}

/// LU factorization with partial pivoting of a small dense matrix.
#[derive(Clone, Debug)]
pub struct DenseLu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

/// Error returned when a matrix is numerically singular.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular;

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is numerically singular")
    }
}

impl std::error::Error for Singular {}

impl DenseLu {
    /// Factor the row-major `n × n` matrix `a`.
    pub fn factor(a: &[f64], n: usize) -> Result<Self, Singular> {
        assert_eq!(a.len(), n * n);
        let mut lu = a.to_vec();
        let mut piv = vec![0usize; n];
        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            let mut pmax = lu[idx(n, k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[idx(n, r, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = r;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return Err(Singular);
            }
            piv[k] = p;
            if p != k {
                for c in 0..n {
                    lu.swap(idx(n, k, c), idx(n, p, c));
                }
            }
            let dinv = 1.0 / lu[idx(n, k, k)];
            for r in (k + 1)..n {
                let m = lu[idx(n, r, k)] * dinv;
                lu[idx(n, r, k)] = m;
                if m != 0.0 {
                    for c in (k + 1)..n {
                        lu[idx(n, r, c)] -= m * lu[idx(n, k, c)];
                    }
                }
            }
        }
        Ok(DenseLu { n, lu, piv })
    }

    /// Solve `A x = b` in place: `b` becomes `x`.
    pub fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Apply the full permutation first (rows were swapped in whole
        // during factorization, LAPACK-style), then substitute.
        for k in 0..n {
            b.swap(k, self.piv[k]);
        }
        for k in 0..n {
            let bk = b[k];
            if bk != 0.0 {
                for r in (k + 1)..n {
                    b[r] -= self.lu[idx(n, r, k)] * bk;
                }
            }
        }
        for k in (0..n).rev() {
            b[k] /= self.lu[idx(n, k, k)];
            let bk = b[k];
            if bk != 0.0 {
                for r in 0..k {
                    b[r] -= self.lu[idx(n, r, k)] * bk;
                }
            }
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }
}

/// A Newton-matrix linear solver: factor `I − γJ` once per BDF step, then
/// back-solve once per Newton iteration. Implemented by [`DenseNewton`]
/// (partial-pivoted LU, the VODE default) and
/// [`crate::sparse::SparseNewton`] (pattern-specialized sparse LU, the
/// paper's §VI plan). The factor/solve split is the point: the old
/// pattern-compiled path re-factored on every iteration, paying the O(n³)
/// (or O(nnz)) elimination `newton_iters` times per step instead of once.
pub trait LinearSolver: Send {
    /// Short solver name for telemetry ("dense" / "sparse").
    fn kind(&self) -> &'static str;
    /// Form and factor the Newton matrix `I − γJ` from the dense row-major
    /// Jacobian `jac`.
    fn factor(&mut self, jac: &[f64], gamma: f64) -> Result<(), Singular>;
    /// Solve `(I − γJ) x = b` in place using the last factorization.
    /// Panics if [`LinearSolver::factor`] has not succeeded yet.
    fn solve(&mut self, b: &mut [f64]);
}

/// The dense [`LinearSolver`]: builds `I − γJ` into a scratch matrix and
/// factors it with [`DenseLu`].
pub struct DenseNewton {
    n: usize,
    mat: Vec<f64>,
    fact: Option<DenseLu>,
}

impl DenseNewton {
    /// Create a solver for `n × n` Newton systems.
    pub fn new(n: usize) -> Self {
        DenseNewton {
            n,
            mat: vec![0.0; n * n],
            fact: None,
        }
    }
}

impl LinearSolver for DenseNewton {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn factor(&mut self, jac: &[f64], gamma: f64) -> Result<(), Singular> {
        let n = self.n;
        assert_eq!(jac.len(), n * n);
        for r in 0..n {
            for c in 0..n {
                self.mat[idx(n, r, c)] = -gamma * jac[idx(n, r, c)];
            }
            self.mat[idx(n, r, r)] += 1.0;
        }
        self.fact = Some(DenseLu::factor(&self.mat, n)?);
        Ok(())
    }

    fn solve(&mut self, b: &mut [f64]) {
        self.fact
            .as_ref()
            .expect("DenseNewton::solve before a successful factor")
            .solve(b);
    }
}

/// A fixed sparsity pattern for an `n × n` matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    /// Sorted, deduplicated (row, col) pairs of structurally nonzero slots.
    entries: Vec<(usize, usize)>,
}

impl SparsePattern {
    /// Build from a list of (row, col) nonzero positions. The diagonal is
    /// always included (Newton matrices are `I - hγJ`).
    pub fn new(n: usize, mut entries: Vec<(usize, usize)>) -> Self {
        for d in 0..n {
            entries.push((d, d));
        }
        entries.sort_unstable();
        entries.dedup();
        for &(r, c) in &entries {
            assert!(r < n && c < n, "entry ({r},{c}) out of range for n={n}");
        }
        SparsePattern { n, entries }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structurally nonzero slots.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of the dense matrix that is structurally zero.
    pub fn empty_fraction(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.n * self.n) as f64
    }

    /// True if `(r, c)` is a structural nonzero.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        self.entries.binary_search(&(r, c)).is_ok()
    }

    /// The entry list.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }
}

/// One recorded elimination operation: `a[target] -= a[mult] * a[src]`.
#[derive(Clone, Copy, Debug)]
struct ElimOp {
    mult: u32,
    src: u32,
    target: u32,
}

/// A no-pivot LU solver specialized ("compiled") for one sparsity pattern.
///
/// Construction performs symbolic factorization: it computes the fill-in of
/// Gaussian elimination without pivoting on the pattern and records the exact
/// sequence of multiply–subtract operations. [`CompiledLu::factor_solve`]
/// then replays that sequence on the numeric values with zero searching or
/// branching — the same operation count a code generator would emit.
///
/// Reaction-network Newton matrices are strongly diagonally dominant
/// (`I - hγJ` with `hγ` small), so pivot-free elimination is safe; this is
/// the same property VODE's sparse variants rely on.
#[derive(Clone, Debug)]
pub struct CompiledLu {
    n: usize,
    /// Dense slot index for each structural nonzero after fill-in, row-major.
    slots: Vec<(usize, usize)>,
    /// slot index of a[k][k] for each k.
    diag: Vec<u32>,
    /// Division ops: (target slot, diag k) meaning a[t] /= a[diag_k], per k
    /// grouped; encoded in ops stream below.
    div_ops: Vec<(u32, u32)>,
    elim_ops: Vec<ElimOp>,
    /// Map from (r, c) to slot for scattering the input matrix.
    scatter: Vec<(usize, usize, u32)>,
    /// For the triangular solves.
    lower: Vec<ElimOp>, // b[target_row] -= a[slot] * b[src_row] (forward)
    upper: Vec<ElimOp>,
}

impl CompiledLu {
    /// Symbolically factor `pattern`.
    pub fn compile(pattern: &SparsePattern) -> Self {
        let n = pattern.dim();
        // Build a boolean dense pattern and run symbolic elimination to find
        // fill-in.
        let mut nz = vec![false; n * n];
        for &(r, c) in pattern.entries() {
            nz[idx(n, r, c)] = true;
        }
        for k in 0..n {
            assert!(nz[idx(n, k, k)], "diagonal must be structurally nonzero");
            for r in (k + 1)..n {
                if nz[idx(n, r, k)] {
                    for c in (k + 1)..n {
                        if nz[idx(n, k, c)] {
                            nz[idx(n, r, c)] = true; // fill-in
                        }
                    }
                }
            }
        }
        // Assign compact slots to the filled pattern.
        let mut slot_of = vec![u32::MAX; n * n];
        let mut slots = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if nz[idx(n, r, c)] {
                    slot_of[idx(n, r, c)] = slots.len() as u32;
                    slots.push((r, c));
                }
            }
        }
        let diag: Vec<u32> = (0..n).map(|k| slot_of[idx(n, k, k)]).collect();
        // Record the elimination schedule.
        let mut div_ops = Vec::new();
        let mut elim_ops = Vec::new();
        for k in 0..n {
            for r in (k + 1)..n {
                if slot_of[idx(n, r, k)] != u32::MAX {
                    div_ops.push((slot_of[idx(n, r, k)], diag[k]));
                    for c in (k + 1)..n {
                        if slot_of[idx(n, k, c)] != u32::MAX {
                            elim_ops.push(ElimOp {
                                mult: slot_of[idx(n, r, k)],
                                src: slot_of[idx(n, k, c)],
                                target: slot_of[idx(n, r, c)],
                            });
                        }
                    }
                }
            }
        }
        // Scatter list for the user's (row, col) input values.
        let scatter = pattern
            .entries()
            .iter()
            .map(|&(r, c)| (r, c, slot_of[idx(n, r, c)]))
            .collect();
        // Triangular solve schedules.
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for k in 0..n {
            for r in (k + 1)..n {
                if slot_of[idx(n, r, k)] != u32::MAX {
                    lower.push(ElimOp {
                        mult: slot_of[idx(n, r, k)],
                        src: k as u32,
                        target: r as u32,
                    });
                }
            }
        }
        for k in (0..n).rev() {
            for r in 0..k {
                if slot_of[idx(n, r, k)] != u32::MAX {
                    upper.push(ElimOp {
                        mult: slot_of[idx(n, r, k)],
                        src: k as u32,
                        target: r as u32,
                    });
                }
            }
        }
        CompiledLu {
            n,
            slots,
            diag,
            div_ops,
            elim_ops,
            scatter,
            lower,
            upper,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored values after fill-in.
    pub fn nnz_filled(&self) -> usize {
        self.slots.len()
    }

    /// Factor the row-major dense matrix `a` (only pattern slots are read)
    /// and solve `A x = b` in place, replaying the precompiled elimination
    /// schedule. `work` must have length [`CompiledLu::nnz_filled`].
    /// Returns `Err(Singular)` on a zero pivot (the pattern solver does not
    /// pivot; Newton matrices `I - hγJ` are diagonally dominant).
    pub fn factor_solve(&self, a: &[f64], b: &mut [f64], work: &mut [f64]) -> Result<(), Singular> {
        assert_eq!(a.len(), self.n * self.n);
        assert_eq!(b.len(), self.n);
        assert_eq!(work.len(), self.slots.len());
        work.iter_mut().for_each(|v| *v = 0.0);
        for &(r, c, slot) in &self.scatter {
            work[slot as usize] = a[idx(self.n, r, c)];
        }
        let mut di = 0usize;
        let mut ei = 0usize;
        for k in 0..self.n {
            // All divisions with pivot k, each followed by its row update.
            while di < self.div_ops.len() && self.div_ops[di].1 == self.diag[k] {
                let (t, dk) = self.div_ops[di];
                let d = work[dk as usize];
                if d == 0.0 || !d.is_finite() {
                    return Err(Singular);
                }
                work[t as usize] /= d;
                let m = work[t as usize];
                // Elim ops for this (k, r) pair are contiguous and share
                // `mult == t`.
                while ei < self.elim_ops.len() && self.elim_ops[ei].mult == t {
                    let op = self.elim_ops[ei];
                    work[op.target as usize] -= m * work[op.src as usize];
                    ei += 1;
                }
                di += 1;
            }
        }
        // Forward substitution (unit lower).
        for op in &self.lower {
            b[op.target as usize] -= work[op.mult as usize] * b[op.src as usize];
        }
        // Back substitution.
        let mut ui = 0usize;
        for k in (0..self.n).rev() {
            let d = work[self.diag[k] as usize];
            if d == 0.0 || !d.is_finite() {
                return Err(Singular);
            }
            b[k] /= d;
            while ui < self.upper.len() && self.upper[ui].src == k as u32 {
                let op = self.upper[ui];
                b[op.target as usize] -= work[op.mult as usize] * b[op.src as usize];
                ui += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        (0..n)
            .map(|r| (0..n).map(|c| a[idx(n, r, c)] * x[c]).sum())
            .collect()
    }

    #[test]
    fn dense_lu_solves_known_system() {
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let lu = DenseLu::factor(&a, 3).unwrap();
        let mut b = [8.0, -11.0, -3.0];
        lu.solve(&mut b);
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
        assert!((b[2] - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn dense_lu_requires_pivoting() {
        // Zero in the (0,0) slot: fails without partial pivoting.
        let a = [0.0, 1.0, 1.0, 0.0];
        let lu = DenseLu::factor(&a, 2).unwrap();
        let mut b = [3.0, 7.0];
        lu.solve(&mut b);
        assert!((b[0] - 7.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_lu_detects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert_eq!(DenseLu::factor(&a, 2).unwrap_err(), Singular);
    }

    #[test]
    fn dense_lu_random_roundtrip() {
        // Deterministic pseudo-random diagonally dominant matrices.
        let mut seed = 12345u64;
        let mut rng = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for n in [1, 2, 5, 14, 30] {
            let mut a = vec![0.0; n * n];
            for r in 0..n {
                for c in 0..n {
                    a[idx(n, r, c)] = rng();
                }
                a[idx(n, r, r)] += n as f64; // dominance
            }
            let x: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let mut b = matvec(&a, &x, n);
            let lu = DenseLu::factor(&a, n).unwrap();
            lu.solve(&mut b);
            for i in 0..n {
                assert!((b[i] - x[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    fn tridiag_pattern(n: usize) -> SparsePattern {
        let mut e = Vec::new();
        for i in 0..n {
            if i > 0 {
                e.push((i, i - 1));
            }
            if i + 1 < n {
                e.push((i, i + 1));
            }
        }
        SparsePattern::new(n, e)
    }

    #[test]
    fn pattern_bookkeeping() {
        let p = tridiag_pattern(5);
        assert_eq!(p.nnz(), 13);
        assert!(p.contains(2, 2) && p.contains(2, 1) && !p.contains(0, 4));
        assert!((p.empty_fraction() - (1.0 - 13.0 / 25.0)).abs() < 1e-15);
    }

    #[test]
    fn compiled_lu_matches_dense_on_tridiagonal() {
        let n = 8;
        let p = tridiag_pattern(n);
        let c = CompiledLu::compile(&p);
        // Tridiagonal elimination has no fill-in.
        assert_eq!(c.nnz_filled(), p.nnz());
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[idx(n, i, i)] = 4.0 + i as f64;
            if i > 0 {
                a[idx(n, i, i - 1)] = -1.0;
            }
            if i + 1 < n {
                a[idx(n, i, i + 1)] = -2.0;
            }
        }
        let x: Vec<f64> = (0..n).map(|i| (i * i) as f64 - 3.0).collect();
        let mut b = matvec(&a, &x, n);
        let mut work = vec![0.0; c.nnz_filled()];
        c.factor_solve(&a, &mut b, &mut work).unwrap();
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-10, "i={i}: {} vs {}", b[i], x[i]);
        }
    }

    #[test]
    fn compiled_lu_handles_fill_in_arrow_matrix() {
        // Arrow matrix: dense first row/col + diagonal. Elimination fills
        // the entire lower-right block if eliminated first... our pattern
        // has the arrow on row/col 0, which creates full fill-in: a good
        // stress test that symbolic fill matches numeric reality.
        let n = 6;
        let mut e = Vec::new();
        for i in 1..n {
            e.push((0, i));
            e.push((i, 0));
        }
        let p = SparsePattern::new(n, e);
        let c = CompiledLu::compile(&p);
        assert_eq!(c.nnz_filled(), n * n, "arrow head first → full fill");
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[idx(n, i, i)] = 10.0;
        }
        for i in 1..n {
            a[idx(n, 0, i)] = 1.0;
            a[idx(n, i, 0)] = -1.0 - i as f64 * 0.1;
        }
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut b = matvec(&a, &x, n);
        let mut work = vec![0.0; c.nnz_filled()];
        c.factor_solve(&a, &mut b, &mut work).unwrap();
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn compiled_matches_dense_on_random_patterns() {
        let mut seed = 777u64;
        let mut rng = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for n in [3usize, 7, 14] {
            let mut entries = Vec::new();
            for r in 0..n {
                for c in 0..n {
                    if r != c && rng() < 0.3 {
                        entries.push((r, c));
                    }
                }
            }
            let p = SparsePattern::new(n, entries);
            let comp = CompiledLu::compile(&p);
            let mut a = vec![0.0; n * n];
            for &(r, c) in p.entries() {
                a[idx(n, r, c)] = if r == c { 5.0 + rng() } else { rng() - 0.5 };
            }
            let x: Vec<f64> = (0..n).map(|_| rng() * 2.0 - 1.0).collect();
            let mut b_sparse = matvec(&a, &x, n);
            let mut work = vec![0.0; comp.nnz_filled()];
            comp.factor_solve(&a, &mut b_sparse, &mut work).unwrap();
            let lu = DenseLu::factor(&a, n).unwrap();
            let mut b_dense = matvec(&a, &x, n);
            lu.solve(&mut b_dense);
            for i in 0..n {
                assert!(
                    (b_sparse[i] - b_dense[i]).abs() < 1e-8,
                    "n={n} i={i}: sparse {} dense {}",
                    b_sparse[i],
                    b_dense[i]
                );
                assert!((b_sparse[i] - x[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn dense_newton_factor_solve_split() {
        let n = 2;
        let jac = [-3.0, 1.0, 2.0, -4.0];
        let gamma = 0.5;
        let mut m = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                m[idx(n, r, c)] = -gamma * jac[idx(n, r, c)];
            }
            m[idx(n, r, r)] += 1.0;
        }
        let x = [0.75, -1.25];
        let mut b = matvec(&m, &x, n);
        let mut solver = DenseNewton::new(n);
        assert_eq!(solver.kind(), "dense");
        solver.factor(&jac, gamma).unwrap();
        solver.solve(&mut b);
        // A second solve reuses the factorization.
        let mut b2 = matvec(&m, &x, n);
        solver.solve(&mut b2);
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-12, "i={i}");
            assert!((b2[i] - x[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn compiled_lu_detects_zero_pivot() {
        let p = SparsePattern::new(2, vec![(0, 1), (1, 0)]);
        let c = CompiledLu::compile(&p);
        let a = [0.0, 1.0, 1.0, 0.0]; // needs pivoting → must error, not lie
        let mut b = [1.0, 1.0];
        let mut work = vec![0.0; c.nnz_filled()];
        assert!(c.factor_solve(&a, &mut b, &mut work).is_err());
    }
}
