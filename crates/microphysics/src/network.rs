//! Nuclear reaction networks.
//!
//! A network is a set of species plus a set of reactions with molar rate
//! coefficients. The right-hand side and the analytic Jacobian (with respect
//! to both the molar abundances *and* the temperature) are assembled
//! generically from the reaction list, so adding a network is declarative.
//!
//! Three networks are provided, mirroring the paper's problems:
//!
//! * [`CBurn2`] — the N = 2 carbon-burning network of the MAESTROeX
//!   reacting-bubble test (§IV-B);
//! * [`TripleAlpha`] — helium burning with its ~T⁴⁰ sensitivity (§IV-B);
//! * [`Aprox13`] — the 13-isotope alpha chain used for the white-dwarf
//!   collision science runs (§V), whose Jacobian is ~40% structurally empty
//!   (§VI).

use crate::linalg::SparsePattern;
use crate::rates::{gamow_tau_alpha, screening_factor, Rate};
use crate::sparse::CsrPattern;
use crate::species::{energy_rate, iso, Species};

/// One reaction: `Σ count_i · reactant_i → Σ count_j · product_j`.
#[derive(Clone, Debug)]
pub struct Reaction {
    /// Reactant species indices with stoichiometric counts.
    pub reactants: Vec<(usize, u32)>,
    /// Product species indices with stoichiometric counts.
    pub products: Vec<(usize, u32)>,
    /// Rate coefficient fit.
    pub rate: Rate,
    /// Symmetry factor: the product of `count!` over reactants (2 for an
    /// identical pair, 6 for triple-alpha).
    pub symmetry: f64,
}

impl Reaction {
    /// Two distinct reactants → products.
    pub fn two_body(i: usize, j: usize, products: Vec<(usize, u32)>, rate: Rate) -> Self {
        assert_ne!(i, j);
        Reaction {
            reactants: vec![(i, 1), (j, 1)],
            products,
            rate,
            symmetry: 1.0,
        }
    }

    /// An identical pair `X + X` → products.
    pub fn pair(i: usize, products: Vec<(usize, u32)>, rate: Rate) -> Self {
        Reaction {
            reactants: vec![(i, 2)],
            products,
            rate,
            symmetry: 2.0,
        }
    }

    /// Triple identical `3X` → products.
    pub fn triple(i: usize, products: Vec<(usize, u32)>, rate: Rate) -> Self {
        Reaction {
            reactants: vec![(i, 3)],
            products,
            rate,
            symmetry: 6.0,
        }
    }

    /// Total reactant count (the reaction's molecularity).
    fn order(&self) -> u32 {
        self.reactants.iter().map(|&(_, c)| c).sum()
    }
}

/// A nuclear reaction network.
pub trait Network: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The species tracked.
    fn species(&self) -> &[Species];

    /// The reaction list.
    fn reactions(&self) -> &[Reaction];

    /// Whether to apply the plasma screening enhancement.
    fn screening(&self) -> bool {
        true
    }

    /// Number of species.
    fn nspec(&self) -> usize {
        self.species().len()
    }

    /// Index of a species by name; panics if absent.
    fn index_of(&self, name: &str) -> usize {
        self.species()
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("species {name} not in network {}", self.name()))
    }

    /// Molar reaction rate `r` (mol g⁻¹ s⁻¹) and its T-derivative for
    /// reaction `rx` at (ρ, T) with abundances `y`.
    fn reaction_rate(&self, rx: &Reaction, rho: f64, t: f64, y: &[f64]) -> (f64, f64) {
        let t9 = t / 1e9;
        let (mut lam, mut dlam_dt9) = rx.rate.eval(t9);
        if self.screening() && rx.order() >= 2 {
            // Screening applied with the charges of the first two reactants.
            let (i0, _) = rx.reactants[0];
            let z1 = self.species()[i0].z;
            let z2 = if rx.reactants.len() > 1 {
                self.species()[rx.reactants[1].0].z
            } else {
                z1
            };
            let comp_abar = 12.0; // mean values matter only logarithmically here
            let comp_zbar = 6.0;
            let f = screening_factor(z1, z2, rho, t, comp_abar, comp_zbar);
            lam *= f;
            dlam_dt9 *= f; // d(screening)/dT neglected (weak screening)
        }
        let mut yprod = 1.0;
        for &(i, c) in &rx.reactants {
            yprod *= y[i].max(0.0).powi(c as i32);
        }
        let rho_pow = rho.powi(rx.order() as i32 - 1);
        let r = rho_pow * lam * yprod / rx.symmetry;
        let drdt = rho_pow * dlam_dt9 * yprod / rx.symmetry / 1e9;
        (r, drdt)
    }

    /// Fill `ydot` (length nspec) with dY/dt at (ρ, T, Y).
    fn ydot(&self, rho: f64, t: f64, y: &[f64], ydot: &mut [f64]) {
        ydot.iter_mut().for_each(|v| *v = 0.0);
        for rx in self.reactions() {
            let (r, _) = self.reaction_rate(rx, rho, t, y);
            for &(i, c) in &rx.reactants {
                ydot[i] -= c as f64 * r;
            }
            for &(i, c) in &rx.products {
                ydot[i] += c as f64 * r;
            }
        }
    }

    /// Specific nuclear energy generation rate ε (erg g⁻¹ s⁻¹) at the state.
    fn eps(&self, rho: f64, t: f64, y: &[f64]) -> f64 {
        let n = self.nspec();
        let mut ydot = vec![0.0; n];
        self.ydot(rho, t, y, &mut ydot);
        energy_rate(self.species(), &ydot)
    }

    /// Fill the `(n+1) × (n+1)` row-major Jacobian block for the species:
    /// rows `0..n` hold ∂Ẏᵢ/∂Yⱼ in columns `0..n` and ∂Ẏᵢ/∂T in column `n`.
    /// Row `n` (the temperature equation) is left zero for the burner to
    /// fill. `jac` has length `(n+1)²`.
    fn jac(&self, rho: f64, t: f64, y: &[f64], jac: &mut [f64]) {
        let n = self.nspec();
        let m = n + 1;
        assert_eq!(jac.len(), m * m);
        jac.iter_mut().for_each(|v| *v = 0.0);
        for rx in self.reactions() {
            let (r, drdt) = self.reaction_rate(rx, rho, t, y);
            // dr/dY_j for each distinct reactant j: r * c_j / Y_j computed
            // robustly (avoid dividing by tiny Y by re-deriving the product).
            for rj in 0..rx.reactants.len() {
                let (j, cj) = rx.reactants[rj];
                // d(Π Y_i^{c_i})/dY_j = c_j Y_j^{c_j-1} Π_{i≠j} Y_i^{c_i}
                let mut dyprod = cj as f64 * y[j].max(0.0).powi(cj as i32 - 1);
                for (ri, &(i, ci)) in rx.reactants.iter().enumerate() {
                    if ri != rj {
                        dyprod *= y[i].max(0.0).powi(ci as i32);
                    }
                }
                let t9 = t / 1e9;
                let (mut lam, _) = rx.rate.eval(t9);
                if self.screening() && rx.order() >= 2 {
                    let z1 = self.species()[rx.reactants[0].0].z;
                    let z2 = if rx.reactants.len() > 1 {
                        self.species()[rx.reactants[1].0].z
                    } else {
                        z1
                    };
                    lam *= screening_factor(z1, z2, rho, t, 12.0, 6.0);
                }
                let drdy = rho.powi(rx.order() as i32 - 1) * lam * dyprod / rx.symmetry;
                for &(i, c) in &rx.reactants {
                    jac[i * m + j] -= c as f64 * drdy;
                }
                for &(i, c) in &rx.products {
                    jac[i * m + j] += c as f64 * drdy;
                }
            }
            // Temperature column.
            for &(i, c) in &rx.reactants {
                jac[i * m + n] -= c as f64 * drdt;
            }
            for &(i, c) in &rx.products {
                jac[i * m + n] += c as f64 * drdt;
            }
            let _ = r;
        }
    }

    /// The structural sparsity of the full `(n+1)²` burner Jacobian
    /// (species block plus the dense temperature row/column).
    fn sparsity(&self) -> SparsePattern {
        let n = self.nspec();
        let m = n + 1;
        let mut entries = Vec::new();
        for rx in self.reactions() {
            let mut involved: Vec<usize> = Vec::new();
            for &(i, _) in &rx.reactants {
                involved.push(i);
            }
            for &(i, _) in &rx.products {
                involved.push(i);
            }
            for &i in &involved {
                for &(j, _) in &rx.reactants {
                    entries.push((i, j));
                }
                entries.push((i, n)); // T column
            }
        }
        // Temperature row couples to everything a reaction touches.
        for rx in self.reactions() {
            for &(j, _) in &rx.reactants {
                entries.push((n, j));
            }
        }
        entries.push((n, n));
        SparsePattern::new(m, entries)
    }

    /// [`Network::sparsity`] in compressed-sparse-row form, ready for
    /// symbolic factorization by [`crate::sparse::SparseLu`].
    fn sparsity_csr(&self) -> CsrPattern {
        CsrPattern::from_coords(&self.sparsity())
    }
}

/// The 2-species carbon network of the reacting-bubble problem:
/// `C¹² + C¹² → Mg²⁴` (ash lumped, as in the MAESTROeX test problem).
#[derive(Clone, Debug)]
pub struct CBurn2 {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
}

impl Default for CBurn2 {
    fn default() -> Self {
        Self::new()
    }
}

impl CBurn2 {
    /// Build the network.
    pub fn new() -> Self {
        let species = vec![iso::C12, iso::MG24];
        let reactions = vec![Reaction::pair(0, vec![(1, 1)], Rate::C12C12)];
        CBurn2 { species, reactions }
    }
}

impl Network for CBurn2 {
    fn name(&self) -> &'static str {
        "cburn2"
    }
    fn species(&self) -> &[Species] {
        &self.species
    }
    fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }
}

/// Helium burning: `3 He⁴ → C¹²` (+ optional `C¹²(α,γ)O¹⁶`).
#[derive(Clone, Debug)]
pub struct TripleAlpha {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
}

impl Default for TripleAlpha {
    fn default() -> Self {
        Self::new()
    }
}

impl TripleAlpha {
    /// Build the network (He4, C12, O16).
    pub fn new() -> Self {
        let species = vec![iso::HE4, iso::C12, iso::O16];
        let reactions = vec![
            Reaction::triple(0, vec![(1, 1)], Rate::TripleAlpha),
            Reaction::two_body(
                1,
                0,
                vec![(2, 1)],
                Rate::AlphaCapture {
                    c: 3.0e7,
                    tau: gamow_tau_alpha(6.0, 12.0),
                },
            ),
        ];
        TripleAlpha { species, reactions }
    }
}

impl Network for TripleAlpha {
    fn name(&self) -> &'static str {
        "triple_alpha"
    }
    fn species(&self) -> &[Species] {
        &self.species
    }
    fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }
}

/// The 7-isotope network (iso7 structure): the cheaper production
/// alternative to aprox13, covering He/C/O burning through silicon with
/// nickel as the terminal ash. Silicon burning to nickel is lumped as the
/// crude `2 Si²⁸ → Ni⁵⁶` closure used by minimal silicon-burning networks.
#[derive(Clone, Debug)]
pub struct Iso7 {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
}

impl Default for Iso7 {
    fn default() -> Self {
        Self::new()
    }
}

impl Iso7 {
    /// Build the network.
    pub fn new() -> Self {
        let species = vec![
            iso::HE4,
            iso::C12,
            iso::O16,
            iso::NE20,
            iso::MG24,
            iso::SI28,
            iso::NI56,
        ];
        let (he, c12, o16, ne20, mg24, si28, ni56) = (0usize, 1, 2, 3, 4, 5, 6);
        let reactions = vec![
            Reaction::triple(he, vec![(c12, 1)], Rate::TripleAlpha),
            Reaction::two_body(
                c12,
                he,
                vec![(o16, 1)],
                Rate::AlphaCapture {
                    c: 3.0e7,
                    tau: gamow_tau_alpha(6.0, 12.0),
                },
            ),
            Reaction::pair(c12, vec![(ne20, 1), (he, 1)], Rate::C12C12),
            Reaction::two_body(c12, o16, vec![(mg24, 1), (he, 1)], Rate::C12O16),
            Reaction::pair(o16, vec![(si28, 1), (he, 1)], Rate::O16O16),
            Reaction::two_body(
                o16,
                he,
                vec![(ne20, 1)],
                Rate::AlphaCapture {
                    c: 1.5e7,
                    tau: gamow_tau_alpha(8.0, 16.0),
                },
            ),
            Reaction::two_body(
                ne20,
                he,
                vec![(mg24, 1)],
                Rate::AlphaCapture {
                    c: 1.0e9,
                    tau: gamow_tau_alpha(10.0, 20.0),
                },
            ),
            Reaction::two_body(
                mg24,
                he,
                vec![(si28, 1)],
                Rate::AlphaCapture {
                    c: 8.0e8,
                    tau: gamow_tau_alpha(12.0, 24.0),
                },
            ),
            // Lumped silicon → nickel closure (2×28 = 56 nucleons).
            Reaction::pair(
                si28,
                vec![(ni56, 1)],
                Rate::AlphaCapture {
                    c: 5.0e10,
                    tau: gamow_tau_alpha(14.0, 28.0) * 2.0,
                },
            ),
        ];
        Iso7 { species, reactions }
    }
}

impl Network for Iso7 {
    fn name(&self) -> &'static str {
        "iso7"
    }
    fn species(&self) -> &[Species] {
        &self.species
    }
    fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }
}

/// The 13-isotope alpha chain (aprox13 structure): He⁴ through Ni⁵⁶
/// connected by `(α,γ)` captures, plus ³α, C+C, C+O and O+O heavy-ion
/// reactions. Forward rates only — adequate below T₉ ≈ 5, which covers the
/// paper's science runs (ignition is declared at 4×10⁹ K).
#[derive(Clone, Debug)]
pub struct Aprox13 {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
}

impl Default for Aprox13 {
    fn default() -> Self {
        Self::new()
    }
}

impl Aprox13 {
    /// Build the network.
    pub fn new() -> Self {
        let species = vec![
            iso::HE4,
            iso::C12,
            iso::O16,
            iso::NE20,
            iso::MG24,
            iso::SI28,
            iso::S32,
            iso::AR36,
            iso::CA40,
            iso::TI44,
            iso::CR48,
            iso::FE52,
            iso::NI56,
        ];
        let he = 0usize;
        let mut reactions = vec![
            Reaction::triple(he, vec![(1, 1)], Rate::TripleAlpha),
            // C12 + C12 → Ne20 + He4 (dominant channel in aprox13)
            Reaction::pair(1, vec![(3, 1), (he, 1)], Rate::C12C12),
            // C12 + O16 → Mg24 + He4
            Reaction::two_body(1, 2, vec![(4, 1), (he, 1)], Rate::C12O16),
            // O16 + O16 → Si28 + He4
            Reaction::pair(2, vec![(5, 1), (he, 1)], Rate::O16O16),
        ];
        // The alpha chain: X_i (α,γ) X_{i+1} for C12 → Ni56.
        for i in 1..12 {
            let sp = &species[i];
            // Normalizations chosen to give silicon-group burning at the
            // right temperatures qualitatively; heavier captures have
            // higher Coulomb barriers through τ.
            let c = 8.0e9 / (1.0 + i as f64);
            reactions.push(Reaction::two_body(
                i,
                he,
                vec![(i + 1, 1)],
                Rate::AlphaCapture {
                    c,
                    tau: gamow_tau_alpha(sp.z, sp.a),
                },
            ));
        }
        Aprox13 { species, reactions }
    }
}

impl Network for Aprox13 {
    fn name(&self) -> &'static str {
        "aprox13"
    }
    fn species(&self) -> &[Species] {
        &self.species
    }
    fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::mass_to_molar;

    fn molar(net: &dyn Network, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; net.nspec()];
        mass_to_molar(net.species(), x, &mut y);
        y
    }

    /// Nucleon conservation: Σ A_i dY_i/dt = 0 for any reaction set.
    fn check_nucleon_conservation(net: &dyn Network, rho: f64, t: f64, y: &[f64]) {
        let mut ydot = vec![0.0; net.nspec()];
        net.ydot(rho, t, y, &mut ydot);
        let sum: f64 = net.species().iter().zip(&ydot).map(|(s, &d)| s.a * d).sum();
        let scale: f64 = ydot.iter().map(|d| d.abs()).sum::<f64>().max(1e-300);
        assert!(
            (sum / scale).abs() < 1e-12,
            "{}: nucleons not conserved: {sum}",
            net.name()
        );
    }

    #[test]
    fn cburn2_consumes_carbon_makes_magnesium() {
        let net = CBurn2::new();
        let y = molar(&net, &[1.0, 0.0]);
        let mut ydot = vec![0.0; 2];
        net.ydot(2.6e9 / 1e3, 6e8, &y, &mut ydot); // bubble-ish conditions
        let mut ydot2 = vec![0.0; 2];
        net.ydot(2.6e6, 6e8, &y, &mut ydot2);
        assert!(ydot2[0] < 0.0 && ydot2[1] > 0.0);
        assert!((ydot2[0] + 2.0 * ydot2[1]).abs() < 1e-12 * ydot2[1].abs());
        check_nucleon_conservation(&net, 2.6e6, 6e8, &y);
        assert!(net.eps(2.6e6, 6e8, &y) > 0.0);
    }

    #[test]
    fn rates_feedback_with_temperature() {
        let net = CBurn2::new();
        let y = molar(&net, &[1.0, 0.0]);
        let e1 = net.eps(2.6e6, 5e8, &y);
        let e2 = net.eps(2.6e6, 6e8, &y);
        assert!(
            e2 > 10.0 * e1,
            "carbon burning should be extremely T-sensitive"
        );
    }

    #[test]
    fn triple_alpha_makes_carbon_then_oxygen() {
        let net = TripleAlpha::new();
        let y = molar(&net, &[1.0, 0.0, 0.0]);
        let mut ydot = vec![0.0; 3];
        net.ydot(1e5, 2e8, &y, &mut ydot);
        assert!(ydot[0] < 0.0 && ydot[1] > 0.0);
        check_nucleon_conservation(&net, 1e5, 2e8, &y);
        // With carbon present, O16 production turns on.
        let y2 = molar(&net, &[0.5, 0.5, 0.0]);
        let mut ydot2 = vec![0.0; 3];
        net.ydot(1e5, 3e8, &y2, &mut ydot2);
        assert!(ydot2[2] > 0.0);
    }

    #[test]
    fn aprox13_structure() {
        let net = Aprox13::new();
        assert_eq!(net.nspec(), 13);
        assert_eq!(net.index_of("he4"), 0);
        assert_eq!(net.index_of("ni56"), 12);
        let y = molar(
            &net,
            &[
                0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ],
        );
        check_nucleon_conservation(&net, 1e7, 3e9, &y);
        // C/O fuel at 3e9 K burns exothermically.
        assert!(net.eps(1e7, 3e9, &y) > 0.0);
    }

    #[test]
    fn aprox13_jacobian_sparsity_roughly_matches_paper() {
        // §VI: "about 40% of the dense matrix [is] empty" for the 13-isotope
        // network (14×14 with temperature). Our forward-only chain lacks the
        // reverse and (α,p)(p,γ) links, so it is somewhat emptier (~60%);
        // the structure — dense He/T rows and columns, near-tridiagonal
        // chain block — is the same, which is what the sparse-solver
        // ablation exercises.
        let net = Aprox13::new();
        let p = net.sparsity();
        assert_eq!(p.dim(), 14);
        let empty = p.empty_fraction();
        assert!(
            empty > 0.35 && empty < 0.70,
            "empty fraction {empty} out of plausible range"
        );
    }

    /// Wrapper disabling screening: the analytic Jacobian deliberately
    /// neglects d(screening)/dT (weak screening), so the FD comparison is
    /// run unscreened.
    struct NoScreen(Aprox13);
    impl Network for NoScreen {
        fn name(&self) -> &'static str {
            "aprox13-noscreen"
        }
        fn species(&self) -> &[Species] {
            self.0.species()
        }
        fn reactions(&self) -> &[Reaction] {
            self.0.reactions()
        }
        fn screening(&self) -> bool {
            false
        }
    }

    #[test]
    fn analytic_jacobian_matches_finite_difference() {
        let net = NoScreen(Aprox13::new());
        let n = net.nspec();
        let m = n + 1;
        let mut x = vec![0.01; n];
        x[0] = 0.2;
        x[1] = 0.4;
        x[2] = 0.29;
        let y = molar(&net, &x);
        let (rho, t) = (5e6, 2.5e9);
        let mut jac = vec![0.0; m * m];
        net.jac(rho, t, &y, &mut jac);
        let mut ydot0 = vec![0.0; n];
        net.ydot(rho, t, &y, &mut ydot0);
        // Species-species block.
        for j in 0..n {
            // h must be large enough that Δf clears the round-off floor of
            // |f| ~ 1e4 at these conditions; rates are at most cubic in Y so
            // central differences stay accurate at h ~ 1% of Y.
            let h = (y[j].abs() * 1e-2).max(1e-8);
            let mut yp = y.clone();
            yp[j] += h;
            let mut ym = y.clone();
            ym[j] -= h;
            let mut ydot1 = vec![0.0; n];
            net.ydot(rho, t, &yp, &mut ydot1);
            let mut ydotm = vec![0.0; n];
            net.ydot(rho, t, &ym, &mut ydotm);
            for i in 0..n {
                let fd = (ydot1[i] - ydotm[i]) / (2.0 * h);
                let an = jac[i * m + j];
                let row_scale = ydot0.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
                let tol = 1e-3 * fd.abs().max(an.abs()) + 1e-9 * row_scale + 1e-300;
                assert!(
                    (an - fd).abs() < tol,
                    "J[{i}][{j}]: analytic {an} vs fd {fd}"
                );
            }
        }
        // Temperature column (central difference).
        let ht = t * 1e-6;
        let mut ydot1 = vec![0.0; n];
        net.ydot(rho, t + ht, &y, &mut ydot1);
        let mut ydotm = vec![0.0; n];
        net.ydot(rho, t - ht, &y, &mut ydotm);
        for i in 0..n {
            let fd = (ydot1[i] - ydotm[i]) / (2.0 * ht);
            let an = jac[i * m + n];
            let scale = fd.abs().max(an.abs()).max(1e-300);
            if scale > 1e-300 {
                assert!(
                    (an - fd).abs() / scale < 1e-2,
                    "dYdot[{i}]/dT: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn jacobian_respects_declared_sparsity() {
        // Every network's declared pattern must be a superset of the
        // numerically nonzero Jacobian entries — the sparse Newton solver
        // only allocates storage for declared slots, so an undeclared
        // nonzero would be silently dropped. Probe several (ρ, T, Y)
        // states so rate cutoffs don't hide couplings.
        let nets: [&dyn Network; 4] = [
            &CBurn2::new(),
            &TripleAlpha::new(),
            &Iso7::new(),
            &Aprox13::new(),
        ];
        for net in nets {
            let n = net.nspec();
            let m = n + 1;
            let p = net.sparsity();
            let csr = net.sparsity_csr();
            assert_eq!(csr.dim(), m);
            for (rho, t) in [(5e6, 3e9), (1e8, 5e9), (1e4, 5e8)] {
                let mut y = vec![0.01; n];
                y[0] = 0.05;
                let mut jac = vec![0.0; m * m];
                net.jac(rho, t, &y, &mut jac);
                for r in 0..n {
                    for c in 0..m {
                        if jac[r * m + c] != 0.0 {
                            assert!(
                                p.contains(r, c) && csr.contains(r, c),
                                "{}: nonzero J[{r}][{c}] outside pattern",
                                net.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod iso7_tests {
    use super::*;
    use crate::species::mass_to_molar;

    #[test]
    fn iso7_structure_and_conservation() {
        let net = Iso7::new();
        assert_eq!(net.nspec(), 7);
        assert_eq!(net.index_of("ni56"), 6);
        let mut y = vec![0.0; 7];
        mass_to_molar(net.species(), &[0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0], &mut y);
        let mut ydot = vec![0.0; 7];
        net.ydot(1e7, 3e9, &y, &mut ydot);
        let sum: f64 = net.species().iter().zip(&ydot).map(|(s, &d)| s.a * d).sum();
        let scale: f64 = ydot.iter().map(|d| d.abs()).sum::<f64>().max(1e-300);
        assert!((sum / scale).abs() < 1e-12, "nucleons: {sum}");
        assert!(net.eps(1e7, 3e9, &y) > 0.0);
    }

    #[test]
    fn iso7_is_cheaper_than_aprox13_but_same_shape() {
        // The point of iso7: same qualitative chain, 8×8 Jacobian instead
        // of 14×14 — the N² linear-solve scaling of §IV-B.
        let i7 = Iso7::new();
        let a13 = Aprox13::new();
        let p7 = i7.sparsity();
        let p13 = a13.sparsity();
        assert!(p7.dim() < p13.dim());
        assert!(p7.nnz() < p13.nnz());
        // Both burn C/O exothermically at detonation conditions.
        let mut y7 = vec![0.0; 7];
        mass_to_molar(i7.species(), &[0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0], &mut y7);
        let mut y13 = vec![0.0; 13];
        let mut x13 = vec![0.0; 13];
        x13[1] = 0.5;
        x13[2] = 0.5;
        mass_to_molar(a13.species(), &x13, &mut y13);
        let e7 = i7.eps(1e7, 3e9, &y7);
        let e13 = a13.eps(1e7, 3e9, &y13);
        assert!(e7 > 0.0 && e13 > 0.0);
        assert!(
            (e7 / e13).log10().abs() < 1.0,
            "iso7 {e7:.2e} vs aprox13 {e13:.2e} should be within 10×"
        );
    }
}
