//! Thermonuclear reaction-rate fits.
//!
//! Rates are expressed as `N_A <σv>`-style molar rate coefficients λ(T₉)
//! (cm³ mol⁻¹ s⁻¹ for two-body, cm⁶ mol⁻² s⁻¹ for three-body), with T₉ the
//! temperature in units of 10⁹ K. The fits are simplified versions of the
//! Caughlan & Fowler (1988) expressions — they keep the Gamow-peak
//! exponentials that give the extreme temperature sensitivity the paper
//! discusses (the triple-alpha rate goes like ~T⁴⁰ near 10⁸ K) but drop
//! low-impact correction polynomials. Each rate returns both λ and dλ/dT₉
//! for analytic Jacobians.

/// A reaction-rate coefficient fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Rate {
    /// Triple-alpha: 3 He⁴ → C¹², λ₃α(T₉) (cm⁶ mol⁻² s⁻¹).
    TripleAlpha,
    /// C¹² + C¹² fusion (CF88 leading term).
    C12C12,
    /// C¹² + O¹⁶ fusion.
    C12O16,
    /// O¹⁶ + O¹⁶ fusion.
    O16O16,
    /// Generic alpha capture `X(α,γ)Y` with a Gamow-barrier fit determined
    /// by the target charge `z` and mass `a`: λ = c · T₉^{-2/3} exp(-τ/T₉^{1/3}).
    AlphaCapture {
        /// Normalization constant (cm³ mol⁻¹ s⁻¹ scale).
        c: f64,
        /// Gamow barrier parameter τ.
        tau: f64,
    },
    /// Constant-rate coefficient (testing).
    Const(f64),
}

/// The Gamow barrier parameter for an α capture on a nucleus of charge `z`
/// and mass number `a`: `τ = 4.2487 (Z₁² Z₂² Â)^{1/3}` with Â the reduced
/// mass number.
pub fn gamow_tau_alpha(z: f64, a: f64) -> f64 {
    let ared = 4.0 * a / (4.0 + a);
    4.2487 * (4.0 * z * z * ared).powf(1.0 / 3.0)
}

impl Rate {
    /// Evaluate `(λ, dλ/dT₉)` at temperature `t9`.
    pub fn eval(&self, t9: f64) -> (f64, f64) {
        let t9 = t9.max(1e-4);
        match *self {
            Rate::TripleAlpha => {
                // λ ∝ T₉⁻³ exp(-4.4027/T₉): the classic helium-burning fit.
                // Logarithmic slope: -3 + 4.4027/T₉ ≈ 41 at T₉ = 0.1.
                let c = 2.79e-8;
                let l = c * t9.powi(-3) * (-4.4027 / t9).exp();
                let dln = -3.0 / t9 + 4.4027 / (t9 * t9);
                (l, l * dln)
            }
            Rate::C12C12 => {
                // CF88 leading term with the T₉a shift.
                let t9a = t9 / (1.0 + 0.0396 * t9);
                let dt9a = t9a / t9 - 0.0396 * t9a * t9a / t9; // d(t9a)/dt9
                let ex = -84.165 / t9a.powf(1.0 / 3.0);
                let l = 4.27e26 * t9a.powf(5.0 / 6.0) * t9.powf(-1.5) * ex.exp();
                let dln = (5.0 / 6.0) * dt9a / t9a - 1.5 / t9
                    + (84.165 / 3.0) * t9a.powf(-4.0 / 3.0) * dt9a;
                (l, l * dln)
            }
            Rate::C12O16 => {
                let ex = -106.594 / t9.powf(1.0 / 3.0);
                let l = 1.72e31 * t9.powf(-1.5) * ex.exp();
                let dln = -1.5 / t9 + (106.594 / 3.0) * t9.powf(-4.0 / 3.0);
                (l, l * dln)
            }
            Rate::O16O16 => {
                let ex = -135.93 / t9.powf(1.0 / 3.0);
                let l = 7.10e36 * t9.powf(-1.5) * ex.exp();
                let dln = -1.5 / t9 + (135.93 / 3.0) * t9.powf(-4.0 / 3.0);
                (l, l * dln)
            }
            Rate::AlphaCapture { c, tau } => {
                let l = c * t9.powf(-2.0 / 3.0) * (-tau / t9.powf(1.0 / 3.0)).exp();
                let dln = -2.0 / (3.0 * t9) + (tau / 3.0) * t9.powf(-4.0 / 3.0);
                (l, l * dln)
            }
            Rate::Const(c) => (c, 0.0),
        }
    }

    /// Logarithmic temperature sensitivity `d ln λ / d ln T` at `t9`.
    pub fn log_slope(&self, t9: f64) -> f64 {
        let (l, dl) = self.eval(t9);
        dl / l * t9
    }
}

/// Graboske weak-screening enhancement factor for a reaction between
/// charges `z1`, `z2` at density `rho` (g/cc), temperature `t` (K), with
/// composition means `abar`, `zbar`. Capped to keep the weak-screening
/// expression from being extrapolated far outside its validity.
pub fn screening_factor(z1: f64, z2: f64, rho: f64, t: f64, abar: f64, zbar: f64) -> f64 {
    // ζ ≈ Σ (Z² + Z) X/A ≈ (zbar² + zbar)/abar for a mean composition.
    let zeta = (zbar * zbar + zbar) / abar;
    let t9 = t / 1e9;
    let h12 = 0.188 * z1 * z2 * (rho * zeta).sqrt() * (t9 * 1e3).powf(-1.5);
    h12.min(2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_alpha_t40_sensitivity() {
        // The paper: "the energy generation rate ... may have a temperature
        // dependence as sensitive as T^40". At T = 1e8 K (T₉ = 0.1):
        let slope = Rate::TripleAlpha.log_slope(0.1);
        assert!((slope - 41.0).abs() < 1.5, "slope = {slope}");
        // Sensitivity falls at higher temperature.
        assert!(Rate::TripleAlpha.log_slope(1.0) < 5.0);
    }

    #[test]
    fn rates_increase_steeply_with_t() {
        for r in [Rate::TripleAlpha, Rate::C12C12, Rate::C12O16, Rate::O16O16] {
            let (l1, _) = r.eval(0.5);
            let (l2, _) = r.eval(1.0);
            let (l3, _) = r.eval(2.0);
            assert!(l1 < l2 && l2 < l3, "{r:?} not increasing");
            assert!(l2 / l1 > 10.0, "{r:?} not steep");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let tau = gamow_tau_alpha(6.0, 12.0);
        for r in [
            Rate::TripleAlpha,
            Rate::C12C12,
            Rate::C12O16,
            Rate::O16O16,
            Rate::AlphaCapture { c: 1e10, tau },
        ] {
            for &t9 in &[0.1, 0.3, 1.0, 3.0] {
                let (_, d) = r.eval(t9);
                let h = t9 * 1e-6;
                let (lp, _) = r.eval(t9 + h);
                let (lm, _) = r.eval(t9 - h);
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (d - fd).abs() <= 1e-4 * fd.abs().max(1e-300),
                    "{r:?} at T9={t9}: analytic {d} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn gamow_tau_grows_with_charge() {
        let t_c = gamow_tau_alpha(6.0, 12.0);
        let t_si = gamow_tau_alpha(14.0, 28.0);
        let t_fe = gamow_tau_alpha(26.0, 52.0);
        assert!(t_c < t_si && t_si < t_fe);
        // So heavier captures are slower at fixed T.
        let lc = Rate::AlphaCapture { c: 1.0, tau: t_c }.eval(1.0).0;
        let lf = Rate::AlphaCapture { c: 1.0, tau: t_fe }.eval(1.0).0;
        assert!(lc > lf * 1e3);
    }

    #[test]
    fn screening_moderate_and_bounded() {
        // WD interior conditions: enhancement > 1 but bounded by the cap.
        let f = screening_factor(6.0, 6.0, 2e7, 4e8, 13.7, 6.9);
        assert!(f >= 1.0 && f <= 2.0f64.exp() + 1e-9, "f = {f}");
        // Hot, sparse plasma: negligible screening.
        let f2 = screening_factor(6.0, 6.0, 1.0, 1e9, 13.7, 6.9);
        assert!((f2 - 1.0).abs() < 0.01);
    }

    #[test]
    fn const_rate_is_flat() {
        let (l, d) = Rate::Const(5.0).eval(1.3);
        assert_eq!(l, 5.0);
        assert_eq!(d, 0.0);
    }
}
