//! The burn **retry ladder**: zone-level failure recovery for the stiff
//! burner.
//!
//! Production astro codes do not abort a 10⁶-node run because one zone's
//! Newton iteration diverged. Castro retries the offending step with
//! adjusted integrator settings (Zingale et al. 2019), and the source
//! paper's §VI proposes *offloading outlier zones* — the few cells whose
//! burn is orders of magnitude harder than their neighbours' — to a
//! separate scalar path with its own integrator configuration. This module
//! implements both as an escalation ladder:
//!
//! 1. [`LadderRung::Direct`] — the normal vectorized burn;
//! 2. [`LadderRung::RelaxedTol`] — retry with tolerances relaxed by
//!    [`RetryLadder::tol_relax`];
//! 3. [`LadderRung::Subcycle`] — split the burn interval into
//!    [`RetryLadder::subcycles`] pieces and integrate them in sequence
//!    (each sub-interval restarts the Nordsieck history, which is often
//!    enough to step over a rate discontinuity);
//! 4. [`LadderRung::Offload`] — the §VI outlier path: a low-order,
//!    large-budget integrator configuration ([`OffloadOptions`]) that
//!    trades speed for robustness.
//!
//! Only when every rung fails does the zone surface a structured
//! [`BurnFailure`] carrying the thermodynamic entry state and the
//! integrator statistics accumulated across *all* attempts — the driver
//! turns that into a step rejection rather than a panic.
//!
//! Deterministic **fault injection** ([`BurnFaultConfig`], in the style of
//! `exastro-resilience`'s `KillSchedule`) makes every rung exercisable in
//! tests and CI: a seeded per-zone predicate forces the first N attempts of
//! selected zones to fail with a configurable [`BdfErrorKind`].

use crate::burner::{BurnOutcome, Burner, PlainBurner};
use crate::eos::Eos;
use crate::integrator::{BdfErrorKind, BdfOptions, BdfStats};
use crate::network::Network;

/// Tolerated |ΣX − 1| drift in a recovered outcome; anything worse fails
/// the rung's validation and escalates the ladder.
pub const SPECIES_SUM_TOL: f64 = 1e-6;

/// Which rung of the retry ladder produced (or failed to produce) a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// The normal burn path, no adjustments.
    Direct,
    /// Retry with relaxed tolerances.
    RelaxedTol,
    /// Subcycled integration over the burn interval.
    Subcycle,
    /// The §VI outlier-offload scalar path.
    Offload,
}

impl std::fmt::Display for LadderRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LadderRung::Direct => "direct",
            LadderRung::RelaxedTol => "relaxed-tol",
            LadderRung::Subcycle => "subcycle",
            LadderRung::Offload => "offload",
        };
        f.write_str(s)
    }
}

/// Integrator configuration for the outlier-offload rung: low order and a
/// large step budget, the robust-over-fast trade the paper's §VI assigns
/// to the scalar CPU path.
#[derive(Clone, Debug)]
pub struct OffloadOptions {
    /// Relative tolerance for offloaded zones.
    pub rtol: f64,
    /// Absolute tolerance for offloaded zones.
    pub atol: f64,
    /// Maximum BDF order (low orders have wider stability regions).
    pub max_order: usize,
    /// Step budget — offloaded zones may take millions of tiny steps.
    pub max_steps: usize,
}

impl Default for OffloadOptions {
    fn default() -> Self {
        OffloadOptions {
            rtol: 1e-6,
            atol: 1e-10,
            max_order: 2,
            max_steps: 2_000_000,
        }
    }
}

impl OffloadOptions {
    fn to_bdf(&self) -> BdfOptions {
        // The offload path stays scalar and dense by construction (it is
        // the conservative fallback; sparse-pattern bugs must not be able
        // to take it down with the direct rung).
        BdfOptions::builder()
            .rtol(self.rtol)
            .atol(self.atol)
            .max_order(self.max_order)
            .max_steps(self.max_steps)
            .build()
            .expect("offload options are valid")
    }
}

/// The retry-ladder configuration. Each `Some` field enables a rung (in
/// the fixed order relaxed-tol → subcycle → offload); `None` skips it.
#[derive(Clone, Debug)]
pub struct RetryLadder {
    /// Factor by which to multiply rtol/atol on the first retry.
    pub tol_relax: Option<f64>,
    /// Number of sub-intervals for the subcycled retry.
    pub subcycles: Option<u32>,
    /// Integrator configuration for the outlier-offload rung.
    pub offload: Option<OffloadOptions>,
}

impl Default for RetryLadder {
    fn default() -> Self {
        RetryLadder {
            tol_relax: Some(100.0),
            subcycles: Some(4),
            offload: Some(OffloadOptions::default()),
        }
    }
}

impl RetryLadder {
    /// Disable all retries: a failed direct burn fails the zone outright
    /// (the pre-recovery behaviour, useful for A/B tests).
    pub fn none() -> Self {
        RetryLadder {
            tol_relax: None,
            subcycles: None,
            offload: None,
        }
    }
}

/// Deterministic fault injection for the burner, in the consume-free style
/// of `resilience::faults`: a seeded hash of the zone index selects
/// ~`rate` of zones, whose first `rungs_to_fail` burn attempts return
/// `error` without running the integrator. Tests and the CI smoke run use
/// this to drive every rung of the ladder on demand.
#[derive(Clone, Debug)]
pub struct BurnFaultConfig {
    /// Seed mixed into the per-zone hash.
    pub seed: u64,
    /// Fraction of zones to fault, in `[0, 1]`.
    pub rate: f64,
    /// How many ladder attempts fail before the zone burns normally.
    /// `1` = recovered by the first retry; a large value makes the zone
    /// unrecoverable and exercises the driver's failure path.
    pub rungs_to_fail: u32,
    /// The error each injected failure reports.
    pub error: BdfErrorKind,
}

/// splitmix64 finalizer — a cheap, well-mixed hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl BurnFaultConfig {
    /// Is this zone in the faulted set? Deterministic in (`seed`, `zone`).
    pub fn zone_is_faulty(&self, zone: u64) -> bool {
        let h = splitmix64(self.seed ^ zone.wrapping_mul(0xD1B54A32D192ED03));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.rate
    }

    /// Should attempt number `attempt` (0-based) on `zone` be failed?
    pub fn injects(&self, zone: u64, attempt: u32) -> bool {
        attempt < self.rungs_to_fail && self.zone_is_faulty(zone)
    }
}

/// A zone that exhausted the whole ladder: the structured failure record
/// the driver embeds in its step error.
#[derive(Clone, Debug)]
pub struct BurnFailure {
    /// Flat zone index within the sweep that failed.
    pub zone: u64,
    /// Density at burn entry, g/cm³.
    pub rho: f64,
    /// Temperature at burn entry, K.
    pub t0: f64,
    /// Mass fractions at burn entry.
    pub x0: Vec<f64>,
    /// The last rung that was attempted.
    pub rung_reached: LadderRung,
    /// Total burn attempts made (ladder rungs tried).
    pub attempts: u32,
    /// The error from the final attempt.
    pub error: BdfErrorKind,
    /// Integrator statistics accumulated over **all** attempts — the cost
    /// this zone consumed before being given up on.
    pub stats: BdfStats,
}

impl std::fmt::Display for BurnFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "zone {} (rho = {:.3e}, T = {:.3e}) failed all {} burn attempts \
             (last rung: {}): {}",
            self.zone, self.rho, self.t0, self.attempts, self.rung_reached, self.error
        )
    }
}

impl std::error::Error for BurnFailure {}

/// A successful burn, annotated with how hard it was to get.
#[derive(Clone, Debug)]
pub struct RecoveredBurn {
    /// The burn result (stats cover all attempts, not just the winner).
    pub outcome: BurnOutcome,
    /// The rung that succeeded.
    pub rung: LadderRung,
    /// Retries spent before success (0 = direct burn succeeded).
    pub retries: u32,
}

/// Validate a rung's outcome: everything finite, no significantly negative
/// abundance, ΣX within [`SPECIES_SUM_TOL`] of unity. Shared by the plain
/// burner's [`Burner`] impl and the ladder.
pub(crate) fn validate_outcome(out: &BurnOutcome) -> Result<(), BdfErrorKind> {
    let finite = out.t.is_finite()
        && out.t > 0.0
        && out.enuc.is_finite()
        && out.x.iter().all(|x| x.is_finite() && *x > -1e-8);
    let sum: f64 = out.x.iter().sum();
    if finite && (sum - 1.0).abs() <= SPECIES_SUM_TOL {
        Ok(())
    } else {
        Err(BdfErrorKind::NonFinite)
    }
}

/// A [`PlainBurner`] wrapped in the retry ladder, with optional fault
/// injection. Drivers consume it through the [`Burner`] trait.
pub struct RecoveringBurner<'a> {
    direct: PlainBurner<'a>,
    relaxed: Option<PlainBurner<'a>>,
    offload: Option<PlainBurner<'a>>,
    subcycles: Option<u32>,
    faults: Option<BurnFaultConfig>,
}

impl<'a> RecoveringBurner<'a> {
    /// Build the ladder over base integrator options `opts`.
    pub fn new(
        net: &'a dyn Network,
        eos: &'a dyn Eos,
        opts: BdfOptions,
        ladder: &RetryLadder,
    ) -> Self {
        let relaxed = ladder.tol_relax.map(|f| {
            let mut o = opts.clone();
            o.rtol *= f;
            o.atol.iter_mut().for_each(|a| *a *= f);
            PlainBurner::new(net, eos, o)
        });
        let offload = ladder
            .offload
            .as_ref()
            .map(|o| PlainBurner::new(net, eos, o.to_bdf()));
        RecoveringBurner {
            direct: PlainBurner::new(net, eos, opts),
            relaxed,
            offload,
            subcycles: ladder.subcycles,
            faults: None,
        }
    }

    /// Attach a deterministic fault-injection schedule.
    pub fn with_faults(mut self, faults: Option<BurnFaultConfig>) -> Self {
        self.faults = faults;
        self
    }

    /// Run one rung. Both arms carry their own statistics (the outcome's on
    /// success, the error's on failure); the caller merges them into the
    /// zone's running total.
    fn attempt(
        &self,
        rung: LadderRung,
        rho: f64,
        t0: f64,
        x0: &[f64],
        dt: f64,
    ) -> Result<BurnOutcome, crate::integrator::BdfError> {
        match rung {
            LadderRung::Direct => self.direct.burn(rho, t0, x0, dt),
            LadderRung::RelaxedTol => self
                .relaxed
                .as_ref()
                .expect("relaxed rung not configured")
                .burn(rho, t0, x0, dt),
            LadderRung::Offload => self
                .offload
                .as_ref()
                .expect("offload rung not configured")
                .burn(rho, t0, x0, dt),
            LadderRung::Subcycle => {
                let k = self.subcycles.unwrap_or(1).max(1);
                let sub = dt / k as f64;
                let mut t = t0;
                let mut x = x0.to_vec();
                let mut enuc = 0.0;
                let mut stats = BdfStats::default();
                for _ in 0..k {
                    match self.direct.burn(rho, t, &x, sub) {
                        Ok(out) => {
                            stats.merge(&out.stats);
                            t = out.t;
                            x = out.x;
                            enuc += out.enuc;
                        }
                        Err(mut e) => {
                            stats.merge(&e.stats);
                            e.stats = stats;
                            return Err(e);
                        }
                    }
                }
                Ok(BurnOutcome { x, t, enuc, stats })
            }
        }
    }
}

impl Burner for RecoveringBurner<'_> {
    /// Burn one zone through the ladder.
    fn burn_zone(
        &self,
        zone: u64,
        rho: f64,
        t0: f64,
        x0: &[f64],
        dt: f64,
    ) -> Result<RecoveredBurn, Box<BurnFailure>> {
        // One physical zone per `burn_zone` call, however many ladder rungs
        // it climbs (a subcycled recovery must contribute exactly 1 zone).
        let _prof = exastro_parallel::Profiler::region("burner");
        exastro_parallel::Profiler::record_zones(1);
        let mut rungs = vec![LadderRung::Direct];
        if self.relaxed.is_some() {
            rungs.push(LadderRung::RelaxedTol);
        }
        if self.subcycles.is_some() {
            rungs.push(LadderRung::Subcycle);
        }
        if self.offload.is_some() {
            rungs.push(LadderRung::Offload);
        }

        let mut stats = BdfStats::default();
        let mut last_err = BdfErrorKind::NonFinite;
        let mut last_rung = LadderRung::Direct;
        let mut attempts = 0u32;
        for rung in rungs {
            let injected = self
                .faults
                .as_ref()
                .map(|f| f.injects(zone, attempts))
                .unwrap_or(false);
            attempts += 1;
            last_rung = rung;
            if injected {
                last_err = self.faults.as_ref().unwrap().error.clone();
                continue;
            }
            match self.attempt(rung, rho, t0, x0, dt) {
                Ok(out) => {
                    stats.merge(&out.stats);
                    match validate_outcome(&out) {
                        Ok(()) => {
                            let mut out = out;
                            out.stats = stats;
                            let rec = RecoveredBurn {
                                outcome: out,
                                rung,
                                retries: attempts - 1,
                            };
                            crate::burner::record_burn_telemetry(&rec);
                            return Ok(rec);
                        }
                        Err(kind) => last_err = kind,
                    }
                }
                Err(e) => {
                    stats.merge(&e.stats);
                    last_err = e.kind;
                }
            }
        }
        Err(Box::new(BurnFailure {
            zone,
            rho,
            t0,
            x0: x0.to_vec(),
            rung_reached: last_rung,
            attempts,
            error: last_err,
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::StellarEos;
    use crate::network::CBurn2;

    fn hot_zone() -> (f64, f64, Vec<f64>, f64) {
        // Exothermic carbon burn: hard enough to be a real integration.
        (5e7, 3e9, vec![1.0, 0.0], 1e-6)
    }

    fn faults(rate: f64, rungs_to_fail: u32, error: BdfErrorKind) -> BurnFaultConfig {
        BurnFaultConfig {
            seed: 42,
            rate,
            rungs_to_fail,
            error,
        }
    }

    fn check_recovered(r: &RecoveredBurn) {
        assert!(r.outcome.t.is_finite() && r.outcome.t > 0.0);
        assert!(r.outcome.x.iter().all(|x| x.is_finite()));
        let sum: f64 = r.outcome.x.iter().sum();
        assert!((sum - 1.0).abs() <= SPECIES_SUM_TOL, "ΣX = {sum}");
    }

    #[test]
    fn direct_path_is_unchanged_when_healthy() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let plain = PlainBurner::new(&net, &eos, PlainBurner::default_options())
            .burn(rho, t0, &x0, dt)
            .unwrap();
        let rb = RecoveringBurner::new(
            &net,
            &eos,
            PlainBurner::default_options(),
            &RetryLadder::default(),
        );
        let rec = rb.burn_zone(7, rho, t0, &x0, dt).unwrap();
        assert_eq!(rec.rung, LadderRung::Direct);
        assert_eq!(rec.retries, 0);
        // Bit-identical to the pre-recovery burn path.
        assert_eq!(rec.outcome.t.to_bits(), plain.t.to_bits());
        for (a, b) in rec.outcome.x.iter().zip(&plain.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn one_injected_failure_recovers_on_relaxed_tol() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let rb = RecoveringBurner::new(
            &net,
            &eos,
            PlainBurner::default_options(),
            &RetryLadder::default(),
        )
        .with_faults(Some(faults(1.0, 1, BdfErrorKind::MaxSteps)));
        let rec = rb.burn_zone(3, rho, t0, &x0, dt).unwrap();
        assert_eq!(rec.rung, LadderRung::RelaxedTol);
        assert_eq!(rec.retries, 1);
        check_recovered(&rec);
    }

    #[test]
    fn two_injected_failures_recover_on_subcycle() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let rb = RecoveringBurner::new(
            &net,
            &eos,
            PlainBurner::default_options(),
            &RetryLadder::default(),
        )
        .with_faults(Some(faults(1.0, 2, BdfErrorKind::StepUnderflow { t: 0.0 })));
        let rec = rb.burn_zone(3, rho, t0, &x0, dt).unwrap();
        assert_eq!(rec.rung, LadderRung::Subcycle);
        assert_eq!(rec.retries, 2);
        check_recovered(&rec);
    }

    #[test]
    fn three_injected_failures_recover_on_offload() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let rb = RecoveringBurner::new(
            &net,
            &eos,
            PlainBurner::default_options(),
            &RetryLadder::default(),
        )
        .with_faults(Some(faults(1.0, 3, BdfErrorKind::SingularMatrix)));
        let rec = rb.burn_zone(3, rho, t0, &x0, dt).unwrap();
        assert_eq!(rec.rung, LadderRung::Offload);
        assert_eq!(rec.retries, 3);
        check_recovered(&rec);
    }

    #[test]
    fn every_bdf_error_variant_rides_the_ladder() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        for err in [
            BdfErrorKind::MaxSteps,
            BdfErrorKind::StepUnderflow { t: 1.5e-7 },
            BdfErrorKind::SingularMatrix,
            BdfErrorKind::NonFinite,
        ] {
            let rb = RecoveringBurner::new(
                &net,
                &eos,
                PlainBurner::default_options(),
                &RetryLadder::default(),
            )
            .with_faults(Some(faults(1.0, 99, err.clone())));
            let fail = rb.burn_zone(11, rho, t0, &x0, dt).unwrap_err();
            assert_eq!(fail.error, err);
            assert_eq!(fail.attempts, 4);
            assert_eq!(fail.rung_reached, LadderRung::Offload);
            assert_eq!(fail.zone, 11);
            assert_eq!(fail.rho, rho);
            assert_eq!(fail.x0, x0);
            // Injected failures never ran the integrator.
            assert_eq!(fail.stats.rhs_evals, 0);
        }
    }

    #[test]
    fn ladder_none_fails_after_single_attempt() {
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let rb = RecoveringBurner::new(
            &net,
            &eos,
            PlainBurner::default_options(),
            &RetryLadder::none(),
        )
        .with_faults(Some(faults(1.0, 1, BdfErrorKind::MaxSteps)));
        let fail = rb.burn_zone(0, rho, t0, &x0, dt).unwrap_err();
        assert_eq!(fail.attempts, 1);
        assert_eq!(fail.rung_reached, LadderRung::Direct);
    }

    #[test]
    fn genuine_max_steps_failure_is_rescued_by_offload() {
        // No injection: a starved step budget genuinely fails the direct,
        // relaxed, and subcycled rungs; the offload rung's large budget
        // completes the burn. Accumulated stats must show the failed work.
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let mut opts = PlainBurner::default_options();
        opts.max_steps = 4;
        let rb = RecoveringBurner::new(&net, &eos, opts, &RetryLadder::default());
        let rec = rb.burn_zone(0, rho, t0, &x0, dt).unwrap();
        assert_eq!(rec.rung, LadderRung::Offload);
        assert!(rec.retries >= 1);
        check_recovered(&rec);
        assert!(
            rec.outcome.stats.rejected + rec.outcome.stats.steps > 12,
            "stats must accumulate across failed rungs: {:?}",
            rec.outcome.stats
        );
    }

    #[test]
    fn subcycled_recovery_counts_exactly_one_zone() {
        // Regression: zone counting used to live inside `PlainBurner::burn`
        // and fired once per *attempt*, so a zone recovered on the subcycle
        // rung (2 failed rungs + 4 sub-burns) counted as up to 7 zones and
        // inflated every zones/µs metric. Wrap the burn in a unique outer
        // region so this test reads its own profiler path regardless of
        // what other tests record concurrently.
        let net = CBurn2::new();
        let eos = StellarEos;
        let (rho, t0, x0, dt) = hot_zone();
        let rb = RecoveringBurner::new(
            &net,
            &eos,
            PlainBurner::default_options(),
            &RetryLadder::default(),
        )
        .with_faults(Some(faults(1.0, 2, BdfErrorKind::MaxSteps)));
        let rec = {
            let _outer = exastro_parallel::Profiler::region("one_zone_test");
            rb.burn_zone(11, rho, t0, &x0, dt).unwrap()
        };
        assert_eq!(rec.rung, LadderRung::Subcycle, "the fault forced rung 2");
        assert_eq!(rec.retries, 2);
        let stats = exastro_parallel::Profiler::get("one_zone_test/burner")
            .expect("the burn recorded under the test's region");
        assert_eq!(
            stats.zones, 1,
            "one physical zone, however many attempts the ladder took"
        );
    }

    #[test]
    fn fault_rate_selects_roughly_that_fraction_of_zones() {
        let f = faults(0.01, 1, BdfErrorKind::MaxSteps);
        let n = 100_000u64;
        let hit = (0..n).filter(|&z| f.zone_is_faulty(z)).count() as f64 / n as f64;
        assert!((0.005..0.02).contains(&hit), "hit rate {hit}");
        // Deterministic: same seed, same selection.
        let again = (0..n).filter(|&z| f.zone_is_faulty(z)).count() as f64 / n as f64;
        assert_eq!(hit, again);
        // Different seed, different selection (with overwhelming probability).
        let other = BurnFaultConfig {
            seed: 43,
            ..f.clone()
        };
        let mismatch = (0..n).any(|z| f.zone_is_faulty(z) != other.zone_is_faulty(z));
        assert!(mismatch);
    }
}
