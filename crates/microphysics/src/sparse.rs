//! Sparse-Jacobian linear algebra for the stiff-burner Newton solves — the
//! paper's §VI plan ("we can straightforwardly replace the dense linear
//! system with a sparse linear system; we know what the sparsity pattern
//! is") made concrete.
//!
//! A reaction network's Jacobian sparsity is fixed at compile time, so all
//! of the *symbolic* work of a sparse LU — the fill-reducing elimination
//! order, the fill-in pattern, and the exact multiply–subtract schedule —
//! is done **once per network** ([`SparseLu::compile`]) and replayed every
//! Newton iteration with no index searches, no branching, and no pivot
//! hunting. This is a Gilbert–Peierls-style factorization specialized to a
//! fixed pattern: Gilbert & Peierls compute each column's reach by a
//! depth-first traversal during numeric factorization; with a pattern that
//! never changes the traversal is hoisted into the one-time symbolic phase
//! and the numeric phase degenerates to a straight-line replay.
//!
//! Pivot-free elimination is safe here for the same reason it is in VODE's
//! sparse variants: the Newton matrix is `I − γJ` with `γ = l₀h` small, so
//! it is strongly diagonally dominant. The symbolic phase still orders the
//! elimination by **minimum degree** — without it, the dense He⁴ and
//! temperature rows/columns of an alpha-chain network act as an arrowhead
//! and elimination at step 0 fills the entire matrix (see the arrow-matrix
//! test in [`crate::linalg`]); eliminating the near-tridiagonal chain block
//! first keeps the fill close to zero.

use crate::linalg::{LinearSolver, Singular, SparsePattern};
use std::sync::Arc;

/// A fixed sparsity pattern in compressed-sparse-row form: for each row, a
/// sorted run of column indices. The diagonal is always included (Newton
/// matrices are `I − γJ`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrPattern {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
}

impl CsrPattern {
    /// Build from a list of (row, col) nonzero positions; duplicates are
    /// merged and the diagonal is forced in.
    pub fn new(n: usize, mut entries: Vec<(usize, usize)>) -> Self {
        for d in 0..n {
            entries.push((d, d));
        }
        entries.sort_unstable();
        entries.dedup();
        let mut row_ptr = vec![0usize; n + 1];
        let mut cols = Vec::with_capacity(entries.len());
        for &(r, c) in &entries {
            assert!(r < n && c < n, "entry ({r},{c}) out of range for n={n}");
            row_ptr[r + 1] += 1;
            cols.push(c);
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrPattern { n, row_ptr, cols }
    }

    /// Convert a coordinate-list [`SparsePattern`].
    pub fn from_coords(p: &SparsePattern) -> Self {
        Self::new(p.dim(), p.entries().to_vec())
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structurally nonzero slots.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Fraction of the dense matrix that is structurally zero.
    pub fn empty_fraction(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.n * self.n) as f64
    }

    /// The sorted column indices of row `r`.
    pub fn row(&self, r: usize) -> &[usize] {
        &self.cols[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// True if `(r, c)` is a structural nonzero.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }

    /// Iterate all (row, col) entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |r| self.row(r).iter().map(move |&c| (r, c)))
    }
}

/// Greedy minimum-degree ordering on the symmetrized pattern: at each step
/// eliminate the node with the fewest remaining neighbours, then connect
/// those neighbours into a clique (the fill that elimination would create).
/// O(n³) worst case — run once per network on matrices of dimension ≲ 20.
fn min_degree_order(n: usize, pattern: &CsrPattern) -> Vec<usize> {
    let mut adj = vec![false; n * n];
    for (r, c) in pattern.entries() {
        if r != c {
            adj[r * n + c] = true;
            adj[c * n + r] = true;
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if eliminated[v] {
                continue;
            }
            let deg = (0..n).filter(|&u| !eliminated[u] && adj[v * n + u]).count();
            if deg < best_deg {
                best_deg = deg;
                best = v;
            }
        }
        let nbrs: Vec<usize> = (0..n)
            .filter(|&u| !eliminated[u] && adj[best * n + u])
            .collect();
        for &a in &nbrs {
            for &b in &nbrs {
                if a != b {
                    adj[a * n + b] = true;
                }
            }
        }
        eliminated[best] = true;
        order.push(best);
    }
    order
}

/// One pivot-column operation of the numeric factorization: divide the
/// sub-diagonal slot `mult` by pivot `diag`, then apply the elimination
/// updates `elims[e0..e1]` with that multiplier.
#[derive(Clone, Copy, Debug)]
struct ColOp {
    mult: u32,
    diag: u32,
    e0: u32,
    e1: u32,
}

/// Precomputed symbolic sparse LU for one pattern: fill-reducing minimum
/// degree order, fill-in, and the complete numeric schedule.
///
/// Numeric factorization ([`SparseLu::factor`] /
/// [`SparseLu::factor_newton`]) and the triangular solves
/// ([`SparseLu::solve`]) are straight-line replays of the schedule — the
/// operation count a code generator would emit, which is the paper's §VI
/// code-generation plan.
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    /// `perm[k]` = original index eliminated k-th (factors `P A Pᵀ`).
    perm: Vec<usize>,
    /// Structural nonzeros after fill-in, in permuted row-major order.
    nnz_filled: usize,
    /// Number of structural slots before fill-in.
    nnz_pattern: usize,
    /// Slot of permuted (k, k).
    diag: Vec<u32>,
    col_ops: Vec<ColOp>,
    /// Elimination updates `(src, target)`: `v[target] -= m · v[src]`.
    elims: Vec<(u32, u32)>,
    /// `(slot, dense index r·n+c in ORIGINAL numbering)` for each pattern
    /// entry — the gather that loads a dense row-major Jacobian.
    scatter: Vec<(u32, u32)>,
    /// Forward-substitution schedule `(slot, src row, target row)`.
    lower: Vec<(u32, u32, u32)>,
    /// Back-substitution schedule, pivot rows descending.
    upper: Vec<(u32, u32, u32)>,
}

impl SparseLu {
    /// Run the symbolic factorization for `pattern`: choose the elimination
    /// order, compute the fill, and record the numeric schedule.
    pub fn compile(pattern: &CsrPattern) -> Self {
        let n = pattern.dim();
        let perm = min_degree_order(n, pattern);
        let mut inv = vec![0usize; n];
        for (k, &p) in perm.iter().enumerate() {
            inv[p] = k;
        }
        // Permuted boolean pattern, then fill-in by no-pivot elimination.
        let mut nz = vec![false; n * n];
        for (r, c) in pattern.entries() {
            nz[inv[r] * n + inv[c]] = true;
        }
        for k in 0..n {
            debug_assert!(nz[k * n + k], "diagonal is structurally guaranteed");
            for r in (k + 1)..n {
                if nz[r * n + k] {
                    for c in (k + 1)..n {
                        if nz[k * n + c] {
                            nz[r * n + c] = true;
                        }
                    }
                }
            }
        }
        let mut slot_of = vec![u32::MAX; n * n];
        let mut nnz_filled = 0usize;
        for r in 0..n {
            for c in 0..n {
                if nz[r * n + c] {
                    slot_of[r * n + c] = nnz_filled as u32;
                    nnz_filled += 1;
                }
            }
        }
        let diag: Vec<u32> = (0..n).map(|k| slot_of[k * n + k]).collect();
        let mut col_ops = Vec::new();
        let mut elims: Vec<(u32, u32)> = Vec::new();
        for k in 0..n {
            for r in (k + 1)..n {
                if slot_of[r * n + k] != u32::MAX {
                    let e0 = elims.len() as u32;
                    for c in (k + 1)..n {
                        if slot_of[k * n + c] != u32::MAX {
                            elims.push((slot_of[k * n + c], slot_of[r * n + c]));
                        }
                    }
                    col_ops.push(ColOp {
                        mult: slot_of[r * n + k],
                        diag: diag[k],
                        e0,
                        e1: elims.len() as u32,
                    });
                }
            }
        }
        let scatter = pattern
            .entries()
            .map(|(r, c)| (slot_of[inv[r] * n + inv[c]], (r * n + c) as u32))
            .collect();
        let mut lower = Vec::new();
        for k in 0..n {
            for r in (k + 1)..n {
                if slot_of[r * n + k] != u32::MAX {
                    lower.push((slot_of[r * n + k], k as u32, r as u32));
                }
            }
        }
        let mut upper = Vec::new();
        for k in (0..n).rev() {
            for r in 0..k {
                if slot_of[r * n + k] != u32::MAX {
                    upper.push((slot_of[r * n + k], k as u32, r as u32));
                }
            }
        }
        SparseLu {
            n,
            perm,
            nnz_filled,
            nnz_pattern: pattern.nnz(),
            diag,
            col_ops,
            elims,
            scatter,
            lower,
            upper,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored values after fill-in (the factor workspace length).
    pub fn nnz_filled(&self) -> usize {
        self.nnz_filled
    }

    /// Fill-in created by the chosen elimination order (0 = perfect).
    pub fn fill_in(&self) -> usize {
        self.nnz_filled - self.nnz_pattern
    }

    /// The fill-reducing elimination order (`order[k]` = original index
    /// eliminated k-th).
    pub fn elimination_order(&self) -> &[usize] {
        &self.perm
    }

    /// Multiply–subtract operations per numeric factorization — the flop
    /// count the dense O(n³/3) elimination is being compared against.
    pub fn factor_ops(&self) -> usize {
        self.col_ops.len() + self.elims.len()
    }

    fn eliminate(&self, vals: &mut [f64]) -> Result<(), Singular> {
        for op in &self.col_ops {
            let d = vals[op.diag as usize];
            if d == 0.0 || !d.is_finite() {
                return Err(Singular);
            }
            let m = vals[op.mult as usize] / d;
            vals[op.mult as usize] = m;
            for &(src, tgt) in &self.elims[op.e0 as usize..op.e1 as usize] {
                vals[tgt as usize] -= m * vals[src as usize];
            }
        }
        for &d in &self.diag {
            let v = vals[d as usize];
            if v == 0.0 || !v.is_finite() {
                return Err(Singular);
            }
        }
        Ok(())
    }

    /// Numerically factor the dense row-major matrix `a` (only pattern
    /// slots are read) into `vals`, which must have length
    /// [`SparseLu::nnz_filled`].
    pub fn factor(&self, a: &[f64], vals: &mut [f64]) -> Result<(), Singular> {
        assert_eq!(a.len(), self.n * self.n);
        assert_eq!(vals.len(), self.nnz_filled);
        vals.iter_mut().for_each(|v| *v = 0.0);
        for &(slot, didx) in &self.scatter {
            vals[slot as usize] = a[didx as usize];
        }
        self.eliminate(vals)
    }

    /// Form and factor the Newton matrix `I − γJ` from the dense row-major
    /// Jacobian `jac` in one pass — the integrator's hot path.
    pub fn factor_newton(&self, jac: &[f64], gamma: f64, vals: &mut [f64]) -> Result<(), Singular> {
        assert_eq!(jac.len(), self.n * self.n);
        assert_eq!(vals.len(), self.nnz_filled);
        vals.iter_mut().for_each(|v| *v = 0.0);
        for &(slot, didx) in &self.scatter {
            vals[slot as usize] = -gamma * jac[didx as usize];
        }
        for &d in &self.diag {
            vals[d as usize] += 1.0;
        }
        self.eliminate(vals)
    }

    /// Batched [`SparseLu::factor_newton`]: form and factor the Newton
    /// matrices `I − γJ_l` of `width` systems at once. `jacs` holds the
    /// lanes' dense row-major Jacobians back to back (`jacs[l·n²..][..n²]`
    /// is lane `l`); `vals` is the slot-major structure-of-arrays factor
    /// workspace (`vals[slot·width + l]` is slot `slot` of lane `l`),
    /// length `nnz_filled × width`. The replay schedule runs ops-outer /
    /// lanes-inner, so the lane loop is the unit-stride hot loop the
    /// auto-vectorizer SIMDs across the batch.
    ///
    /// Unlike the scalar path there is no early-out on a bad pivot — a
    /// branch per lane per op would serialize the replay. A zero pivot
    /// produces inf/NaN that propagates through that lane only; lanes
    /// flagged `true` in `singular` on return carry garbage factors and
    /// must be discarded, while every clean lane's factor is **bit
    /// identical** to what the scalar [`SparseLu::factor_newton`] produces
    /// (same operations in the same order).
    pub fn factor_newton_batch(
        &self,
        jacs: &[f64],
        gamma: f64,
        width: usize,
        vals: &mut [f64],
        singular: &mut [bool],
    ) {
        let nn = self.n * self.n;
        assert_eq!(jacs.len(), nn * width);
        assert_eq!(vals.len(), self.nnz_filled * width);
        assert_eq!(singular.len(), width);
        vals.iter_mut().for_each(|v| *v = 0.0);
        for &(slot, didx) in &self.scatter {
            let row = &mut vals[slot as usize * width..][..width];
            for (l, v) in row.iter_mut().enumerate() {
                *v = -gamma * jacs[l * nn + didx as usize];
            }
        }
        for &d in &self.diag {
            for v in &mut vals[d as usize * width..][..width] {
                *v += 1.0;
            }
        }
        for op in &self.col_ops {
            let diag0 = op.diag as usize * width;
            let mult0 = op.mult as usize * width;
            for l in 0..width {
                vals[mult0 + l] /= vals[diag0 + l];
            }
            for &(src, tgt) in &self.elims[op.e0 as usize..op.e1 as usize] {
                let src0 = src as usize * width;
                let tgt0 = tgt as usize * width;
                for l in 0..width {
                    vals[tgt0 + l] -= vals[mult0 + l] * vals[src0 + l];
                }
            }
        }
        // Per-lane singularity check, hoisted out of the replay: a lane is
        // bad if any stored value went non-finite or any pivot is zero.
        singular.iter_mut().for_each(|s| *s = false);
        for row in vals.chunks_exact(width) {
            for l in 0..width {
                if !row[l].is_finite() {
                    singular[l] = true;
                }
            }
        }
        for &d in &self.diag {
            let row = &vals[d as usize * width..][..width];
            for l in 0..width {
                if row[l] == 0.0 {
                    singular[l] = true;
                }
            }
        }
    }

    /// Batched triangular solves from [`SparseLu::factor_newton_batch`]:
    /// solve `A_l x_l = b_l` for every lane at once. `b` and `scratch` are
    /// component-major structure-of-arrays (`b[i·width + l]`), length
    /// `dim × width`. Lanes flagged singular by the factorization produce
    /// garbage here (harmless — the caller drops them); clean lanes match
    /// the scalar [`SparseLu::solve`] bit for bit.
    pub fn solve_batch(&self, vals: &[f64], width: usize, b: &mut [f64], scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(vals.len(), self.nnz_filled * width);
        assert_eq!(b.len(), n * width);
        assert_eq!(scratch.len(), n * width);
        for k in 0..n {
            let p = self.perm[k];
            scratch[k * width..][..width].copy_from_slice(&b[p * width..][..width]);
        }
        for &(slot, src, tgt) in &self.lower {
            let slot0 = slot as usize * width;
            let src0 = src as usize * width;
            let tgt0 = tgt as usize * width;
            for l in 0..width {
                scratch[tgt0 + l] -= vals[slot0 + l] * scratch[src0 + l];
            }
        }
        let mut ui = 0usize;
        for k in (0..n).rev() {
            let diag0 = self.diag[k] as usize * width;
            for l in 0..width {
                scratch[k * width + l] /= vals[diag0 + l];
            }
            while ui < self.upper.len() && self.upper[ui].1 == k as u32 {
                let (slot, src, tgt) = self.upper[ui];
                let slot0 = slot as usize * width;
                let src0 = src as usize * width;
                let tgt0 = tgt as usize * width;
                for l in 0..width {
                    scratch[tgt0 + l] -= vals[slot0 + l] * scratch[src0 + l];
                }
                ui += 1;
            }
        }
        for k in 0..n {
            let p = self.perm[k];
            b[p * width..][..width].copy_from_slice(&scratch[k * width..][..width]);
        }
    }

    /// Solve `A x = b` in place from a successful factorization. `scratch`
    /// must have length `dim` (it carries the permuted right-hand side).
    pub fn solve(&self, vals: &[f64], b: &mut [f64], scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(scratch.len(), n);
        for k in 0..n {
            scratch[k] = b[self.perm[k]];
        }
        for &(slot, src, tgt) in &self.lower {
            scratch[tgt as usize] -= vals[slot as usize] * scratch[src as usize];
        }
        let mut ui = 0usize;
        for k in (0..n).rev() {
            scratch[k] /= vals[self.diag[k] as usize];
            while ui < self.upper.len() && self.upper[ui].1 == k as u32 {
                let (slot, src, tgt) = self.upper[ui];
                scratch[tgt as usize] -= vals[slot as usize] * scratch[src as usize];
                ui += 1;
            }
        }
        for k in 0..n {
            b[self.perm[k]] = scratch[k];
        }
    }
}

/// The sparse [`LinearSolver`]: a shared symbolic factorization (computed
/// once per network and reused across every zone the integrator burns) plus
/// this solver's private numeric workspace.
pub struct SparseNewton {
    lu: Arc<SparseLu>,
    vals: Vec<f64>,
    scratch: Vec<f64>,
}

impl SparseNewton {
    /// Create a solver over a precompiled symbolic factorization.
    pub fn new(lu: Arc<SparseLu>) -> Self {
        let vals = vec![0.0; lu.nnz_filled()];
        let scratch = vec![0.0; lu.dim()];
        SparseNewton { lu, vals, scratch }
    }
}

impl LinearSolver for SparseNewton {
    fn kind(&self) -> &'static str {
        "sparse"
    }

    fn factor(&mut self, jac: &[f64], gamma: f64) -> Result<(), Singular> {
        self.lu.factor_newton(jac, gamma, &mut self.vals)
    }

    fn solve(&mut self, b: &mut [f64]) {
        self.lu.solve(&self.vals, b, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::DenseLu;

    fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * x[c]).sum())
            .collect()
    }

    #[test]
    fn csr_pattern_bookkeeping() {
        let p = CsrPattern::new(4, vec![(0, 2), (2, 0), (3, 1), (0, 2)]);
        assert_eq!(p.dim(), 4);
        assert_eq!(p.nnz(), 7, "4 diagonal + 3 off-diagonal, deduped");
        assert!(p.contains(0, 2) && p.contains(2, 0) && p.contains(3, 1));
        assert!(!p.contains(1, 3));
        assert_eq!(p.row(0), &[0, 2]);
        let e: Vec<_> = p.entries().collect();
        assert_eq!(e.len(), 7);
        assert!(e.windows(2).all(|w| w[0] < w[1]), "row-major sorted");
    }

    #[test]
    fn csr_matches_coordinate_pattern() {
        let coords = SparsePattern::new(3, vec![(0, 1), (2, 0)]);
        let csr = CsrPattern::from_coords(&coords);
        assert_eq!(csr.nnz(), coords.nnz());
        for (r, c) in csr.entries() {
            assert!(coords.contains(r, c));
        }
    }

    #[test]
    fn min_degree_defeats_the_arrowhead() {
        // Dense first row/col + diagonal: natural order fills everything;
        // minimum degree eliminates the head last and creates NO fill.
        let n = 8;
        let mut e = Vec::new();
        for i in 1..n {
            e.push((0, i));
            e.push((i, 0));
        }
        let p = CsrPattern::new(n, e);
        let lu = SparseLu::compile(&p);
        assert_eq!(lu.fill_in(), 0, "min-degree creates no arrowhead fill");
        // The dense head is deferred until its degree decays to a leaf's:
        // it appears in the last two elimination positions, never early
        // (natural order would eliminate it first and fill everything).
        let pos = lu.elimination_order().iter().position(|&k| k == 0).unwrap();
        assert!(
            pos >= n - 2,
            "the dense head goes (nearly) last: {:?}",
            lu.elimination_order()
        );
    }

    #[test]
    fn sparse_lu_solves_the_arrow_system_exactly() {
        let n = 6;
        let mut e = Vec::new();
        for i in 1..n {
            e.push((0, i));
            e.push((i, 0));
        }
        let p = CsrPattern::new(n, e);
        let lu = SparseLu::compile(&p);
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 10.0 + i as f64;
        }
        for i in 1..n {
            a[i] = 1.0 + 0.3 * i as f64;
            a[i * n] = -1.0 - 0.2 * i as f64;
        }
        let x: Vec<f64> = (0..n).map(|i| 1.0 - 0.5 * i as f64).collect();
        let mut b = matvec(&a, &x, n);
        let mut vals = vec![0.0; lu.nnz_filled()];
        lu.factor(&a, &mut vals).unwrap();
        let mut scratch = vec![0.0; n];
        lu.solve(&vals, &mut b, &mut scratch);
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-12, "i={i}: {} vs {}", b[i], x[i]);
        }
    }

    #[test]
    fn sparse_matches_dense_on_random_patterns() {
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for n in [2usize, 5, 8, 14] {
            let mut entries = Vec::new();
            for r in 0..n {
                for c in 0..n {
                    if r != c && rng() < 0.35 {
                        entries.push((r, c));
                    }
                }
            }
            let p = CsrPattern::new(n, entries);
            let lu = SparseLu::compile(&p);
            let mut a = vec![0.0; n * n];
            for (r, c) in p.entries() {
                a[r * n + c] = if r == c {
                    n as f64 + 2.0 + rng()
                } else {
                    rng() - 0.5
                };
            }
            let x: Vec<f64> = (0..n).map(|_| rng() * 2.0 - 1.0).collect();
            let b0 = matvec(&a, &x, n);
            let mut bs = b0.clone();
            let mut vals = vec![0.0; lu.nnz_filled()];
            lu.factor(&a, &mut vals).unwrap();
            let mut scratch = vec![0.0; n];
            lu.solve(&vals, &mut bs, &mut scratch);
            let mut bd = b0;
            DenseLu::factor(&a, n).unwrap().solve(&mut bd);
            for i in 0..n {
                assert!((bs[i] - bd[i]).abs() < 1e-8, "n={n} i={i}");
                assert!((bs[i] - x[i]).abs() < 1e-8, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn factor_newton_builds_i_minus_gamma_j() {
        let n = 3;
        let p = CsrPattern::new(n, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        let lu = SparseLu::compile(&p);
        let jac = [0.5, 2.0, 0.0, -1.0, 0.25, 3.0, 0.0, -2.0, 1.5];
        let gamma = 0.1;
        // Dense reference of I - γJ.
        let mut m = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                m[r * n + c] = -gamma * jac[r * n + c];
            }
            m[r * n + r] += 1.0;
        }
        let x = [1.0, -2.0, 0.5];
        let mut b = matvec(&m, &x, n);
        let mut vals = vec![0.0; lu.nnz_filled()];
        lu.factor_newton(&jac, gamma, &mut vals).unwrap();
        let mut scratch = vec![0.0; n];
        lu.solve(&vals, &mut b, &mut scratch);
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        let p = CsrPattern::new(2, vec![(0, 1), (1, 0)]);
        let lu = SparseLu::compile(&p);
        let a = [0.0, 1.0, 1.0, 0.0]; // needs pivoting → must error, not lie
        let mut vals = vec![0.0; lu.nnz_filled()];
        assert_eq!(lu.factor(&a, &mut vals).unwrap_err(), Singular);
    }

    #[test]
    fn alpha_chain_pattern_stays_sparse_under_min_degree() {
        // An aprox13-shaped pattern: near-tridiagonal chain plus dense
        // first (He) and last (T) rows/columns. The natural order would
        // fill it completely; minimum degree must keep the factor well
        // below dense and the flop schedule below the dense n³/3 count.
        let n = 14;
        let mut e = Vec::new();
        for i in 1..n - 1 {
            e.push((0, i));
            e.push((i, 0));
            e.push((n - 1, i));
            e.push((i, n - 1));
            if i + 1 < n - 1 {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
        }
        e.push((0, n - 1));
        e.push((n - 1, 0));
        let p = CsrPattern::new(n, e);
        let lu = SparseLu::compile(&p);
        assert!(
            lu.nnz_filled() < n * n * 2 / 3,
            "filled {} of {} — ordering failed",
            lu.nnz_filled(),
            n * n
        );
        assert!(
            lu.factor_ops() < n * n * n / 6,
            "{} scheduled ops vs dense ~{}",
            lu.factor_ops(),
            n * n * n / 3
        );
    }

    #[test]
    fn batched_factor_solve_is_bit_identical_to_scalar_lanes() {
        // Random lanes through the batched replay must match running each
        // lane through the scalar factor/solve exactly (same operations in
        // the same order ⇒ identical floating point).
        let mut seed = 7u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let n = 9;
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r != c && (r + 2 * c) % 3 == 0 {
                    entries.push((r, c));
                }
            }
        }
        let p = CsrPattern::new(n, entries);
        let lu = SparseLu::compile(&p);
        for width in [1usize, 3, 8] {
            let gamma = 0.07;
            let mut jacs = vec![0.0; n * n * width];
            let mut rhs_soa = vec![0.0; n * width];
            let mut lanes_scalar: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
            for l in 0..width {
                let mut jac = vec![0.0; n * n];
                for (r, c) in p.entries() {
                    jac[r * n + c] = rng() - 0.5;
                }
                let b: Vec<f64> = (0..n).map(|_| rng() * 2.0 - 1.0).collect();
                jacs[l * n * n..][..n * n].copy_from_slice(&jac);
                for i in 0..n {
                    rhs_soa[i * width + l] = b[i];
                }
                lanes_scalar.push((jac, b));
            }
            let mut vals = vec![0.0; lu.nnz_filled() * width];
            let mut sing = vec![true; width];
            lu.factor_newton_batch(&jacs, gamma, width, &mut vals, &mut sing);
            assert!(sing.iter().all(|s| !s), "well-conditioned lanes");
            let mut scratch = vec![0.0; n * width];
            lu.solve_batch(&vals, width, &mut rhs_soa, &mut scratch);
            for (l, (jac, b)) in lanes_scalar.iter().enumerate() {
                let mut sv = vec![0.0; lu.nnz_filled()];
                lu.factor_newton(jac, gamma, &mut sv).unwrap();
                let mut sb = b.clone();
                let mut ss = vec![0.0; n];
                lu.solve(&sv, &mut sb, &mut ss);
                for i in 0..n {
                    assert_eq!(
                        rhs_soa[i * width + l].to_bits(),
                        sb[i].to_bits(),
                        "width {width} lane {l} component {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_factor_flags_only_the_singular_lane() {
        // γ = 1 with J = I makes I − γJ exactly zero for one lane; the
        // batch must flag that lane and leave its neighbours' factors
        // matching the scalar path.
        let n = 3;
        let p = CsrPattern::new(n, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        let lu = SparseLu::compile(&p);
        let width = 4;
        let good = [0.5, 2.0, 0.0, -1.0, 0.25, 3.0, 0.0, -2.0, 1.5];
        let mut bad = [0.0; 9];
        for k in 0..n {
            bad[k * n + k] = 1.0; // I − 1·I = 0: structurally singular
        }
        let mut jacs = vec![0.0; n * n * width];
        for l in 0..width {
            let src: &[f64] = if l == 2 { &bad } else { &good };
            jacs[l * n * n..][..n * n].copy_from_slice(src);
        }
        let mut vals = vec![0.0; lu.nnz_filled() * width];
        let mut sing = vec![false; width];
        lu.factor_newton_batch(&jacs, 1.0, width, &mut vals, &mut sing);
        assert_eq!(sing, vec![false, false, true, false]);
        // Healthy lanes still solve correctly.
        let x = [1.0, -2.0, 0.5];
        let mut m = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                m[r * n + c] = -good[r * n + c];
            }
            m[r * n + r] += 1.0;
        }
        let bref = matvec(&m, &x, n);
        let mut b = vec![0.0; n * width];
        for l in 0..width {
            for i in 0..n {
                b[i * width + l] = bref[i];
            }
        }
        let mut scratch = vec![0.0; n * width];
        lu.solve_batch(&vals, width, &mut b, &mut scratch);
        for l in [0usize, 1, 3] {
            for i in 0..n {
                assert!(
                    (b[i * width + l] - x[i]).abs() < 1e-12,
                    "lane {l} component {i}"
                );
            }
        }
    }

    #[test]
    fn sparse_newton_solver_roundtrip() {
        let n = 4;
        let p = CsrPattern::new(n, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut solver = SparseNewton::new(Arc::new(SparseLu::compile(&p)));
        assert_eq!(solver.kind(), "sparse");
        let mut jac = vec![0.0; n * n];
        for (r, c) in p.entries() {
            jac[r * n + c] = if r == c { -2.0 } else { 0.7 };
        }
        let gamma = 0.25;
        let mut m = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                m[r * n + c] = -gamma * jac[r * n + c];
            }
            m[r * n + r] += 1.0;
        }
        let x = [0.5, -1.0, 2.0, 0.25];
        let mut b = matvec(&m, &x, n);
        solver.factor(&jac, gamma).unwrap();
        solver.solve(&mut b);
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-12, "i={i}");
        }
    }
}
