//! Nuclear species data and composition bookkeeping.

use crate::constants::{MEV_TO_ERG, N_A};

/// One atomic isotope tracked by a reaction network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Species {
    /// Short name, e.g. `"he4"`.
    pub name: &'static str,
    /// Mass number A (nucleons).
    pub a: f64,
    /// Charge number Z (protons).
    pub z: f64,
    /// Total nuclear binding energy, MeV.
    pub bind_mev: f64,
}

impl Species {
    /// Construct a species record.
    pub const fn new(name: &'static str, a: f64, z: f64, bind_mev: f64) -> Self {
        Species {
            name,
            a,
            z,
            bind_mev,
        }
    }
}

/// Standard isotopes used by the suite's networks (binding energies from the
/// AME mass tables, rounded).
pub mod iso {
    use super::Species;
    /// Helium-4.
    pub const HE4: Species = Species::new("he4", 4.0, 2.0, 28.29603);
    /// Carbon-12.
    pub const C12: Species = Species::new("c12", 12.0, 6.0, 92.16294);
    /// Oxygen-16.
    pub const O16: Species = Species::new("o16", 16.0, 8.0, 127.62093);
    /// Neon-20.
    pub const NE20: Species = Species::new("ne20", 20.0, 10.0, 160.64788);
    /// Magnesium-24.
    pub const MG24: Species = Species::new("mg24", 24.0, 12.0, 198.25790);
    /// Silicon-28.
    pub const SI28: Species = Species::new("si28", 28.0, 14.0, 236.53790);
    /// Sulfur-32.
    pub const S32: Species = Species::new("s32", 32.0, 16.0, 271.78250);
    /// Argon-36.
    pub const AR36: Species = Species::new("ar36", 36.0, 18.0, 306.72020);
    /// Calcium-40.
    pub const CA40: Species = Species::new("ca40", 40.0, 20.0, 342.05680);
    /// Titanium-44.
    pub const TI44: Species = Species::new("ti44", 44.0, 22.0, 375.47720);
    /// Chromium-48.
    pub const CR48: Species = Species::new("cr48", 48.0, 24.0, 411.46900);
    /// Iron-52.
    pub const FE52: Species = Species::new("fe52", 52.0, 26.0, 447.70800);
    /// Nickel-56.
    pub const NI56: Species = Species::new("ni56", 56.0, 28.0, 483.99500);
}

/// Mean composition parameters derived from mass fractions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Composition {
    /// Mean atomic mass: `1/abar = Σ X_i / A_i`.
    pub abar: f64,
    /// Mean charge: `zbar/abar = Σ Z_i X_i / A_i`.
    pub zbar: f64,
}

impl Composition {
    /// Compute (abar, zbar) from mass fractions `x` for `species`.
    pub fn from_mass_fractions(species: &[Species], x: &[f64]) -> Self {
        assert_eq!(species.len(), x.len());
        let mut inv_abar = 0.0;
        let mut ze = 0.0;
        for (s, &xi) in species.iter().zip(x) {
            inv_abar += xi / s.a;
            ze += s.z * xi / s.a;
        }
        let abar = 1.0 / inv_abar;
        Composition {
            abar,
            zbar: ze * abar,
        }
    }

    /// Electron mean molecular weight `μ_e = abar / zbar`.
    pub fn mu_e(&self) -> f64 {
        self.abar / self.zbar
    }
}

/// Convert mass fractions to molar fractions `Y_i = X_i / A_i`.
pub fn mass_to_molar(species: &[Species], x: &[f64], y: &mut [f64]) {
    for i in 0..species.len() {
        y[i] = x[i] / species[i].a;
    }
}

/// Convert molar fractions back to mass fractions `X_i = A_i Y_i`.
pub fn molar_to_mass(species: &[Species], y: &[f64], x: &mut [f64]) {
    for i in 0..species.len() {
        x[i] = y[i] * species[i].a;
    }
}

/// Specific nuclear energy generation rate, erg g⁻¹ s⁻¹, from molar rates:
/// `ε = N_A Σ_i (dY_i/dt) B_i` (positive when binding energy increases).
pub fn energy_rate(species: &[Species], dydt: &[f64]) -> f64 {
    let mut e = 0.0;
    for i in 0..species.len() {
        e += dydt[i] * species[i].bind_mev;
    }
    e * N_A * MEV_TO_ERG
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_pure_carbon() {
        let sp = [iso::C12];
        let c = Composition::from_mass_fractions(&sp, &[1.0]);
        assert!((c.abar - 12.0).abs() < 1e-12);
        assert!((c.zbar - 6.0).abs() < 1e-12);
        assert!((c.mu_e() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn composition_co_mix() {
        // 50/50 C/O white dwarf material.
        let sp = [iso::C12, iso::O16];
        let c = Composition::from_mass_fractions(&sp, &[0.5, 0.5]);
        let inv_abar: f64 = 0.5 / 12.0 + 0.5 / 16.0;
        assert!((c.abar - 1.0 / inv_abar).abs() < 1e-12);
        assert!((c.mu_e() - 2.0).abs() < 1e-12, "C/O both have A = 2Z");
    }

    #[test]
    fn molar_mass_roundtrip() {
        let sp = [iso::HE4, iso::C12, iso::NI56];
        let x = [0.2, 0.5, 0.3];
        let mut y = [0.0; 3];
        let mut back = [0.0; 3];
        mass_to_molar(&sp, &x, &mut y);
        molar_to_mass(&sp, &y, &mut back);
        for i in 0..3 {
            assert!((back[i] - x[i]).abs() < 1e-15);
        }
        assert!((y[0] - 0.05).abs() < 1e-15);
    }

    #[test]
    fn triple_alpha_q_value() {
        // 3 He4 → C12 releases 7.27 MeV: ε for unit molar rate.
        let sp = [iso::HE4, iso::C12];
        let dydt = [-3.0, 1.0];
        let eps = energy_rate(&sp, &dydt);
        let q_mev = iso::C12.bind_mev - 3.0 * iso::HE4.bind_mev;
        assert!((q_mev - 7.2749).abs() < 0.01);
        assert!((eps - q_mev * N_A * MEV_TO_ERG).abs() < 1e6);
        assert!(eps > 0.0);
    }

    #[test]
    fn nucleon_conservation_implies_energy_from_binding_only() {
        // C12 + C12 → Mg24: ΔB = B(Mg24) − 2 B(C12) ≈ 13.93 MeV.
        let sp = [iso::C12, iso::MG24];
        let dydt = [-2.0, 1.0];
        let q = iso::MG24.bind_mev - 2.0 * iso::C12.bind_mev;
        assert!(q > 13.0 && q < 15.0);
        assert!(energy_rate(&sp, &dydt) > 0.0);
    }
}
