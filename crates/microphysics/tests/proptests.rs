//! Property-based tests for the microphysics: EOS thermodynamic laws,
//! network conservation laws, linear-algebra correctness, and integrator
//! convergence invariants.

use exastro_microphysics::{
    mass_to_molar, molar_to_mass, BdfIntegrator, BdfOptions, CompiledLu, Composition, DenseLu, Eos,
    GammaLaw, Network, OdeSystem, SparsePattern, StellarEos, TripleAlpha,
};
use exastro_microphysics::{Aprox13, CBurn2};
use proptest::prelude::*;

fn arb_composition() -> impl Strategy<Value = (Vec<f64>, Composition)> {
    // Random C/O/Mg-ish 2-species split on the CBurn2 network.
    (0.0f64..1.0).prop_map(|xc| {
        let net = CBurn2::new();
        let x = vec![xc, 1.0 - xc];
        let comp = Composition::from_mass_fractions(net.species(), &x);
        (x, comp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eos_pressure_monotone_in_density_and_temperature(
        log_rho in -2.0f64..8.0,
        log_t in 5.0f64..9.5,
        (x, comp) in arb_composition(),
    ) {
        let _ = x;
        let eos = StellarEos;
        let rho = 10f64.powf(log_rho);
        let t = 10f64.powf(log_t);
        let r0 = eos.eval_rt(rho, t, &comp);
        let r_rho = eos.eval_rt(rho * 1.01, t, &comp);
        let r_t = eos.eval_rt(rho, t * 1.2, &comp);
        prop_assert!(r0.p > 0.0 && r0.e > 0.0 && r0.cv > 0.0 && r0.cs > 0.0);
        prop_assert!(r_rho.p > r0.p, "p must grow with rho");
        prop_assert!(r_t.p >= r0.p * (1.0 - 1e-12), "p must not fall with T");
        prop_assert!(r_t.e > r0.e, "e must grow with T");
    }

    #[test]
    fn eos_t_from_e_roundtrips_everywhere(
        log_rho in -2.0f64..8.0,
        log_t in 5.0f64..9.5,
        (x, comp) in arb_composition(),
    ) {
        let _ = x;
        let eos = StellarEos;
        let rho = 10f64.powf(log_rho);
        let t = 10f64.powf(log_t);
        let e = eos.eval_rt(rho, t, &comp).e;
        let ti = eos.t_from_e(rho, e, &comp, 1e7);
        prop_assert!((ti / t - 1.0).abs() < 1e-5, "rho={rho:.2e} T={t:.2e} -> {ti:.4e}");
    }

    #[test]
    fn gamma_law_sound_speed_identity(
        log_rho in -6.0f64..6.0,
        log_t in 2.0f64..9.0,
        gamma in 1.1f64..2.0,
        (x, comp) in arb_composition(),
    ) {
        let _ = x;
        let eos = GammaLaw { gamma };
        let rho = 10f64.powf(log_rho);
        let t = 10f64.powf(log_t);
        let r = eos.eval_rt(rho, t, &comp);
        prop_assert!((r.cs * r.cs / (gamma * r.p / rho) - 1.0).abs() < 1e-9);
        prop_assert!((r.gam1 / gamma - 1.0).abs() < 1e-9);
    }

    #[test]
    fn networks_conserve_nucleons_at_any_state(
        log_rho in 3.0f64..9.0,
        log_t in 8.0f64..9.7,
        xs in prop::collection::vec(0.01f64..1.0, 13),
    ) {
        let net = Aprox13::new();
        let rho = 10f64.powf(log_rho);
        let t = 10f64.powf(log_t);
        let total: f64 = xs.iter().sum();
        let x: Vec<f64> = xs.iter().map(|v| v / total).collect();
        let mut y = vec![0.0; 13];
        mass_to_molar(net.species(), &x, &mut y);
        let mut ydot = vec![0.0; 13];
        net.ydot(rho, t, &y, &mut ydot);
        let sum: f64 = net.species().iter().zip(&ydot).map(|(s, &d)| s.a * d).sum();
        let scale: f64 = ydot.iter().map(|d| d.abs()).sum::<f64>().max(1e-300);
        prop_assert!((sum / scale).abs() < 1e-10, "nucleon drift {sum:e}");
    }

    #[test]
    fn molar_mass_roundtrip_any_composition(xs in prop::collection::vec(0.0f64..1.0, 3)) {
        let net = TripleAlpha::new();
        let total: f64 = xs.iter().sum::<f64>().max(1e-12);
        let x: Vec<f64> = xs.iter().map(|v| v / total).collect();
        let mut y = vec![0.0; 3];
        let mut back = vec![0.0; 3];
        mass_to_molar(net.species(), &x, &mut y);
        molar_to_mass(net.species(), &y, &mut back);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn dense_lu_solves_diagonally_dominant_systems(
        n in 2usize..12,
        seed in 0u64..10_000,
    ) {
        let mut s = seed.wrapping_mul(31).wrapping_add(17);
        let mut rng = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut a = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                a[r * n + c] = rng();
            }
            a[r * n + r] += n as f64 + 1.0;
        }
        let x: Vec<f64> = (0..n).map(|i| rng() * (i as f64 + 1.0)).collect();
        let mut b: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * x[c]).sum())
            .collect();
        let lu = DenseLu::factor(&a, n).unwrap();
        lu.solve(&mut b);
        for i in 0..n {
            prop_assert!((b[i] - x[i]).abs() < 1e-8, "i={i}: {} vs {}", b[i], x[i]);
        }
    }

    #[test]
    fn compiled_lu_matches_dense_on_random_patterns(
        n in 2usize..10,
        seed in 0u64..10_000,
        density in 0.1f64..0.9,
    ) {
        let mut s = seed.wrapping_mul(97).wrapping_add(13);
        let mut rng = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r != c && rng() < density {
                    entries.push((r, c));
                }
            }
        }
        let p = SparsePattern::new(n, entries);
        let comp = CompiledLu::compile(&p);
        let mut a = vec![0.0; n * n];
        for &(r, c) in p.entries() {
            a[r * n + c] = if r == c { n as f64 + rng() } else { rng() - 0.5 };
        }
        let x: Vec<f64> = (0..n).map(|_| rng() * 4.0 - 2.0).collect();
        let b0: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * x[c]).sum())
            .collect();
        let mut b1 = b0.clone();
        let mut work = vec![0.0; comp.nnz_filled()];
        comp.factor_solve(&a, &mut b1, &mut work).unwrap();
        let lu = DenseLu::factor(&a, n).unwrap();
        let mut b2 = b0;
        lu.solve(&mut b2);
        for i in 0..n {
            prop_assert!((b1[i] - b2[i]).abs() < 1e-7, "i={i}");
            prop_assert!((b1[i] - x[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn bdf_solves_linear_decay_for_any_rate(log_k in -2.0f64..6.0) {
        struct Decay { k: f64 }
        impl OdeSystem for Decay {
            fn dim(&self) -> usize { 1 }
            fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) { d[0] = -self.k * y[0]; }
            fn jac(&self, _t: f64, _y: &[f64], j: &mut [f64]) { j[0] = -self.k; }
        }
        let k = 10f64.powf(log_k);
        let sys = Decay { k };
        let mut y = [1.0];
        let tend = (3.0 / k).min(10.0);
        let opts = BdfOptions::builder().rtol(1e-8).build().unwrap();
        let integ = BdfIntegrator::new(opts);
        integ.integrate(&sys, 0.0, tend, &mut y).unwrap();
        let exact = (-k * tend).exp();
        prop_assert!((y[0] - exact).abs() < 1e-4 * exact.max(1e-8), "k={k}: {} vs {exact}", y[0]);
    }

    #[test]
    fn eps_is_nonnegative_for_pure_fuel(
        log_rho in 4.0f64..9.0,
        log_t in 8.3f64..9.6,
    ) {
        // Burning pure fuel through exothermic forward reactions can only
        // release energy.
        let net = CBurn2::new();
        let rho = 10f64.powf(log_rho);
        let t = 10f64.powf(log_t);
        let mut y = vec![0.0; 2];
        mass_to_molar(net.species(), &[1.0, 0.0], &mut y);
        prop_assert!(net.eps(rho, t, &y) >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovered_burns_are_finite_and_conserve_species(
        log_rho in 5.0f64..7.8,
        log_t in 8.8f64..9.5,
        xc in 0.3f64..1.0,
        log_dt in -8.0f64..-5.0,
        seed in 0u64..1000,
        rungs_to_fail in 0u32..4,
        variant in 0usize..4,
    ) {
        // Whatever rung of the retry ladder ends up rescuing a zone, the
        // recovered state must be physical: finite everywhere with the
        // species mass fractions summing to one.
        use exastro_microphysics::{
            BdfErrorKind, BurnFaultConfig, Burner, LadderRung, PlainBurner, RecoveringBurner,
            RetryLadder,
        };
        let net = CBurn2::new();
        let eos = StellarEos;
        let rho = 10f64.powf(log_rho);
        let t0 = 10f64.powf(log_t);
        let dt = 10f64.powf(log_dt);
        let x0 = vec![xc, 1.0 - xc];
        let error = match variant {
            0 => BdfErrorKind::MaxSteps,
            1 => BdfErrorKind::StepUnderflow { t: 0.0 },
            2 => BdfErrorKind::SingularMatrix,
            _ => BdfErrorKind::NonFinite,
        };
        let ladder = RetryLadder::default();
        let burner = RecoveringBurner::new(&net, &eos, PlainBurner::default_options(), &ladder)
            .with_faults(Some(BurnFaultConfig {
                seed,
                rate: 1.0,
                rungs_to_fail,
                error,
            }));
        match burner.burn_zone(seed, rho, t0, &x0, dt) {
            Ok(rec) => {
                prop_assert!(rec.outcome.t.is_finite() && rec.outcome.t > 0.0);
                prop_assert!(rec.outcome.enuc.is_finite());
                let mut sum = 0.0;
                for &x in &rec.outcome.x {
                    prop_assert!(x.is_finite() && (-1e-8..=1.0 + 1e-8).contains(&x));
                    sum += x;
                }
                prop_assert!((sum - 1.0).abs() <= 1e-6, "sum X = {sum}");
                prop_assert!(rec.retries >= rungs_to_fail);
                if rungs_to_fail > 0 {
                    prop_assert!(rec.rung > LadderRung::Direct);
                }
            }
            // The highest injected rung leaves only genuine attempts; a
            // genuine failure must still be a fully structured report.
            Err(f) => {
                prop_assert_eq!(f.zone, seed);
                prop_assert!(f.attempts >= 1);
                prop_assert_eq!(f.x0.len(), 2);
                prop_assert!(f.rho.is_finite() && f.t0.is_finite());
            }
        }
    }
}

proptest! {
    // Tight-tolerance burns are expensive; fewer cases, same coverage via
    // the network index being part of the random input.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_newton_agrees_with_dense_on_every_network(
        net_idx in 0usize..4,
        log_rho in 5.0f64..7.5,
        log_t in 8.7f64..9.3,
        frac in 0.2f64..0.8,
        log_dt in -8.0f64..-6.0,
    ) {
        // The analytic sparse-Jacobian path must be a pure implementation
        // detail: over random (rho, T, X) on all four networks, dense and
        // sparse Newton burns agree in the final abundances to 1e-10 —
        // far below any physical significance, at integration tolerances
        // tight enough that the linear solver is the only moving part.
        use exastro_microphysics::{BdfOptions, Iso7, NewtonSolver, PlainBurner};
        let nets: [Box<dyn Network>; 4] = [
            Box::new(CBurn2::new()),
            Box::new(TripleAlpha::new()),
            Box::new(Iso7::new()),
            Box::new(Aprox13::new()),
        ];
        let net = &*nets[net_idx];
        let eos = StellarEos;
        let rho = 10f64.powf(log_rho);
        let t0 = 10f64.powf(log_t);
        let dt = 10f64.powf(log_dt);
        let mut x0 = vec![0.0; net.nspec()];
        x0[0] = frac;
        x0[1] = 1.0 - frac;
        let burn = |solver: NewtonSolver| {
            let opts = BdfOptions::builder()
                .rtol(1e-10)
                .atol(1e-14)
                .solver(solver)
                .build()
                .unwrap();
            PlainBurner::new(net, &eos, opts).burn(rho, t0, &x0, dt)
        };
        let dense = burn(NewtonSolver::Dense);
        let sparse = burn(NewtonSolver::Sparse(net.sparsity_csr()));
        match (dense, sparse) {
            (Ok(d), Ok(s)) => {
                for (i, (a, b)) in d.x.iter().zip(&s.x).enumerate() {
                    prop_assert!(
                        (a - b).abs() <= 1e-10,
                        "{} X[{i}]: dense {a:.16e} vs sparse {b:.16e}",
                        net.name()
                    );
                }
                prop_assert!(
                    ((d.t - s.t) / d.t).abs() <= 1e-9,
                    "{} T: dense {:.16e} vs sparse {:.16e}", net.name(), d.t, s.t
                );
            }
            // Both paths must at least agree on whether the state is
            // integrable at these tolerances.
            (d, s) => prop_assert!(
                d.is_err() && s.is_err(),
                "{}: one solver failed where the other succeeded", net.name()
            ),
        }
    }
}

proptest! {
    // Tight-tolerance burns on every network again: fewer cases, the
    // network index is part of the random input.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_burns_agree_with_the_scalar_ladder_on_every_network(
        net_idx in 0usize..4,
        log_rho in 5.0f64..7.5,
        log_t in 8.7f64..9.3,
        frac in 0.2f64..0.8,
        log_dt in -8.0f64..-6.0,
    ) {
        // The batched SoA path shares every physics kernel with the scalar
        // burner but runs its own step-size controller, so the lanes take a
        // different h-sequence than the scalar ladder would. Agreement is
        // therefore bounded by the integration tolerances rather than being
        // bit-exact: at rtol 1e-11 / atol 1e-15 both paths must land within
        // 1e-10 in every mass fraction.
        use exastro_microphysics::{
            BdfOptions, Burner, BurnerConfig, Iso7, SolverChoice, ZoneBurn,
        };
        let nets: [Box<dyn Network>; 4] = [
            Box::new(CBurn2::new()),
            Box::new(TripleAlpha::new()),
            Box::new(Iso7::new()),
            Box::new(Aprox13::new()),
        ];
        let net = &*nets[net_idx];
        let eos = StellarEos;
        let rho = 10f64.powf(log_rho);
        let t0 = 10f64.powf(log_t);
        let dt = 10f64.powf(log_dt);
        let cfg = BurnerConfig {
            bdf: BdfOptions::builder().rtol(1e-11).atol(1e-15).build().unwrap(),
            solver: SolverChoice::Sparse,
            batch_width: 4,
            ..Default::default()
        };
        // Four slightly perturbed zones so every lane carries distinct
        // state and the shared controller has real work to arbitrate.
        let zones: Vec<ZoneBurn> = (0..4)
            .map(|l| {
                let mut x0 = vec![0.0; net.nspec()];
                x0[0] = frac;
                x0[1] = 1.0 - frac;
                ZoneBurn {
                    zone: l as u64,
                    rho: rho * (1.0 + 1e-3 * l as f64),
                    t0: t0 * (1.0 + 1e-3 * l as f64),
                    x0,
                }
            })
            .collect();
        let batched = cfg.build_batched(net, &eos).burn_all(&zones, dt);
        let ladder = cfg.build(net, &eos);
        for (zb, res) in zones.iter().zip(batched) {
            let sref = ladder.burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt);
            match (res, sref) {
                (Ok(b), Ok(s)) => {
                    for (i, (a, c)) in b.outcome.x.iter().zip(&s.outcome.x).enumerate() {
                        prop_assert!(
                            (a - c).abs() <= 1e-10,
                            "{} zone {} X[{i}]: batch {a:.16e} vs scalar {c:.16e}",
                            net.name(), zb.zone
                        );
                    }
                    prop_assert!(
                        ((b.outcome.t - s.outcome.t) / s.outcome.t).abs() <= 1e-9,
                        "{} zone {} T: batch {:.16e} vs scalar {:.16e}",
                        net.name(), zb.zone, b.outcome.t, s.outcome.t
                    );
                }
                // Both paths must agree on whether the zone is burnable.
                (b, s) => prop_assert!(
                    b.is_err() && s.is_err(),
                    "{} zone {}: batch and scalar disagree on failure",
                    net.name(), zb.zone
                ),
            }
        }
    }

    #[test]
    fn starved_batches_fall_back_bit_identical_to_the_ladder(
        net_idx in 0usize..2,
        log_rho in 5.0f64..7.2,
        log_t in 8.8f64..9.3,
        frac in 0.2f64..0.8,
        max_steps in 2usize..5,
    ) {
        // Starve the integrator so every lane drops out of the batch. The
        // dropouts are re-burned from their entry state through the exact
        // scalar retry ladder, so — success or structured failure — the
        // result must be bit-identical to never having batched at all,
        // modulo the one extra attempt the batch itself consumed.
        use exastro_microphysics::{Burner, BurnerConfig, PlainBurner, SolverChoice, ZoneBurn};
        let nets: [Box<dyn Network>; 2] =
            [Box::new(CBurn2::new()), Box::new(TripleAlpha::new())];
        let net = &*nets[net_idx];
        let eos = StellarEos;
        let rho = 10f64.powf(log_rho);
        let t0 = 10f64.powf(log_t);
        let dt = 1e-6;
        let mut bdf = PlainBurner::default_options();
        bdf.max_steps = max_steps;
        let cfg = BurnerConfig {
            bdf,
            solver: SolverChoice::Sparse,
            batch_width: 4,
            ..Default::default()
        };
        let zones: Vec<ZoneBurn> = (0..4)
            .map(|l| {
                let mut x0 = vec![0.0; net.nspec()];
                x0[0] = frac;
                x0[1] = 1.0 - frac;
                ZoneBurn {
                    zone: l as u64,
                    rho: rho * (1.0 + 1e-2 * l as f64),
                    t0: t0 * (1.0 + 1e-2 * l as f64),
                    x0,
                }
            })
            .collect();
        let batched = cfg.build_batched(net, &eos).burn_all(&zones, dt);
        let ladder = cfg.build(net, &eos);
        for (zb, res) in zones.iter().zip(batched) {
            let sref = ladder.burn_zone(zb.zone, zb.rho, zb.t0, &zb.x0, dt);
            match (res, sref) {
                (Ok(b), Ok(s)) => {
                    prop_assert_eq!(b.outcome.t.to_bits(), s.outcome.t.to_bits());
                    for (a, c) in b.outcome.x.iter().zip(&s.outcome.x) {
                        prop_assert_eq!(a.to_bits(), c.to_bits());
                    }
                    prop_assert_eq!(b.rung, s.rung);
                    prop_assert_eq!(b.retries, s.retries + 1);
                }
                (Err(b), Err(s)) => {
                    prop_assert_eq!(&b.error, &s.error);
                    prop_assert_eq!(b.attempts, s.attempts + 1);
                    prop_assert_eq!(b.t0.to_bits(), s.t0.to_bits());
                }
                _ => prop_assert!(false, "{} zone {}: batch and scalar disagree on failure",
                    net.name(), zb.zone),
            }
        }
    }
}
