//! Scratch-memory arenas.
//!
//! The astro codes allocate temporary storage inside the timestep loop
//! (primitive-variable scratch, flux arrays, integrator work space). On CPUs
//! this is tolerable; on a device, every allocation is a synchronizing,
//! high-latency operation. AMReX's answer — adopted as the CUDA-build default
//! after the work in this paper — is a *caching (pool) allocator*: in the
//! asymptotic limit, "allocations" and "frees" exchange handles to previously
//! allocated blocks and never touch the device allocator (§III).
//!
//! Two implementations of the [`Arena`] trait are provided so the benefit is
//! measurable:
//!
//! * [`PoolArena`] — size-class bins of recycled buffers (the paper's fix);
//! * [`MallocArena`] — a fresh allocation every time (the "disastrous"
//!   baseline), charging the simulated device allocation latency per call.
//!
//! Byte accounting is canonical on the **size class**: an allocation of `len`
//! elements is charged `size_class(len) * 8` bytes at alloc time, and exactly
//! the same amount is credited on free/recycle. (`Vec::with_capacity` may
//! round capacity up, so using `capacity()` on one side and the class on the
//! other — as an earlier revision did — made `bytes_live` drift and
//! eventually underflow.)

use crate::device::SimDevice;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Allocation statistics for an arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total `alloc` calls served.
    pub allocs: u64,
    /// Allocations served from the pool without touching the device
    /// allocator (always 0 for [`MallocArena`]).
    pub pool_hits: u64,
    /// Allocations that had to perform a real (simulated-device) allocation.
    pub device_allocs: u64,
    /// Real (simulated-device) frees performed.
    pub device_frees: u64,
    /// Bytes currently held by live buffers handed to callers.
    pub bytes_live: u64,
    /// Peak of `bytes_live` plus pooled bytes.
    pub bytes_peak: u64,
}

/// A scratch-buffer allocator for `f64` workspaces.
pub trait Arena: Send + Sync {
    /// Allocate a zero-filled buffer of `len` elements. Dropping the buffer
    /// returns it to the arena.
    fn alloc(&self, len: usize) -> ScratchBuf;

    /// Snapshot of allocation statistics.
    fn stats(&self) -> ArenaStats;
}

enum Home {
    Pool(Arc<PoolInner>),
    Malloc {
        device: Option<Arc<SimDevice>>,
        stats: Arc<MallocStats>,
    },
}

/// An owned scratch buffer of `f64` values. Dereferences to a slice of the
/// requested length; returns itself to its arena when dropped.
pub struct ScratchBuf {
    data: Vec<f64>,
    len: usize,
    /// The size class this buffer was charged as — the single source of
    /// truth for its byte accounting on both the alloc and free sides.
    class: usize,
    home: Option<Home>,
}

impl ScratchBuf {
    /// The requested length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the requested length was zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the underlying block (the size class), in elements.
    pub fn capacity(&self) -> usize {
        self.class
    }
}

impl Deref for ScratchBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.data[..self.len]
    }
}

impl DerefMut for ScratchBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data[..self.len]
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        let bytes = (self.class * 8) as u64;
        match self.home.take() {
            Some(Home::Pool(pool)) => pool.give_back(data, self.class),
            Some(Home::Malloc { device, stats }) => {
                if let Some(d) = &device {
                    d.free(bytes);
                }
                stats.device_frees.fetch_add(1, Ordering::Relaxed);
                stats.bytes_live.fetch_sub(bytes, Ordering::Relaxed);
            }
            None => {}
        }
    }
}

/// The power-of-two size class (in elements) that an allocation of `len`
/// elements is served from.
pub fn size_class(len: usize) -> usize {
    len.max(64).next_power_of_two()
}

struct PoolInner {
    device: Option<Arc<SimDevice>>,
    bins: Mutex<HashMap<usize, Vec<Vec<f64>>>>,
    allocs: AtomicU64,
    hits: AtomicU64,
    device_allocs: AtomicU64,
    device_frees: AtomicU64,
    bytes_live: AtomicU64,
    bytes_pooled: AtomicU64,
    /// Bytes currently backed by device allocations (live + pooled). Only
    /// changes when memory enters the arena (device alloc) or leaves it
    /// (trim), so peak tracking is a single atomic `fetch_max` — the old
    /// separate live + pooled reads raced and could miss or overshoot peaks.
    bytes_held: AtomicU64,
    bytes_peak: AtomicU64,
}

impl PoolInner {
    fn give_back(&self, buf: Vec<f64>, class: usize) {
        let bytes = (class * 8) as u64;
        self.bytes_live.fetch_sub(bytes, Ordering::Relaxed);
        self.bytes_pooled.fetch_add(bytes, Ordering::Relaxed);
        self.bins
            .lock()
            .unwrap()
            .entry(class)
            .or_default()
            .push(buf);
    }
}

/// The caching (pool) allocator: buffers are binned by power-of-two size
/// class and recycled. Device memory is only allocated on a pool miss, so in
/// steady state the timestep loop performs **zero** device allocations.
#[derive(Clone)]
pub struct PoolArena {
    inner: Arc<PoolInner>,
}

impl PoolArena {
    /// Create a pool, optionally charging allocations to a simulated device.
    pub fn new(device: Option<Arc<SimDevice>>) -> Self {
        PoolArena {
            inner: Arc::new(PoolInner {
                device,
                bins: Mutex::new(HashMap::new()),
                allocs: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                device_allocs: AtomicU64::new(0),
                device_frees: AtomicU64::new(0),
                bytes_live: AtomicU64::new(0),
                bytes_pooled: AtomicU64::new(0),
                bytes_held: AtomicU64::new(0),
                bytes_peak: AtomicU64::new(0),
            }),
        }
    }

    /// Release all pooled (idle) buffers back to the device.
    pub fn trim(&self) {
        let mut bins = self.inner.bins.lock().unwrap();
        for (class, bufs) in bins.drain() {
            for _b in bufs {
                let bytes = (class * 8) as u64;
                self.inner.bytes_pooled.fetch_sub(bytes, Ordering::Relaxed);
                self.inner.bytes_held.fetch_sub(bytes, Ordering::Relaxed);
                self.inner.device_frees.fetch_add(1, Ordering::Relaxed);
                if let Some(d) = &self.inner.device {
                    d.free(bytes);
                }
            }
        }
    }

    /// Bytes currently sitting idle in the pool.
    pub fn bytes_pooled(&self) -> u64 {
        self.inner.bytes_pooled.load(Ordering::Relaxed)
    }
}

impl Arena for PoolArena {
    fn alloc(&self, len: usize) -> ScratchBuf {
        let class = size_class(len);
        let bytes = (class * 8) as u64;
        self.inner.allocs.fetch_add(1, Ordering::Relaxed);
        let recycled = self
            .inner
            .bins
            .lock()
            .unwrap()
            .get_mut(&class)
            .and_then(Vec::pop);
        let mut data = match recycled {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                self.inner.bytes_pooled.fetch_sub(bytes, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.device_allocs.fetch_add(1, Ordering::Relaxed);
                if let Some(d) = &self.inner.device {
                    d.malloc(bytes);
                }
                let held = self.inner.bytes_held.fetch_add(bytes, Ordering::Relaxed) + bytes;
                self.inner.bytes_peak.fetch_max(held, Ordering::Relaxed);
                Vec::with_capacity(class)
            }
        };
        data.clear();
        data.resize(len, 0.0);
        self.inner.bytes_live.fetch_add(bytes, Ordering::Relaxed);
        ScratchBuf {
            data,
            len,
            class,
            home: Some(Home::Pool(self.inner.clone())),
        }
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            allocs: self.inner.allocs.load(Ordering::Relaxed),
            pool_hits: self.inner.hits.load(Ordering::Relaxed),
            device_allocs: self.inner.device_allocs.load(Ordering::Relaxed),
            device_frees: self.inner.device_frees.load(Ordering::Relaxed),
            bytes_live: self.inner.bytes_live.load(Ordering::Relaxed),
            bytes_peak: self.inner.bytes_peak.load(Ordering::Relaxed),
        }
    }
}

#[derive(Default)]
struct MallocStats {
    allocs: AtomicU64,
    device_frees: AtomicU64,
    bytes_live: AtomicU64,
    bytes_peak: AtomicU64,
}

/// The baseline arena: every allocation is a fresh (simulated-device)
/// allocation and every drop a synchronizing free.
#[derive(Clone)]
pub struct MallocArena {
    device: Option<Arc<SimDevice>>,
    stats: Arc<MallocStats>,
}

impl MallocArena {
    /// Create a malloc-per-call arena, optionally charging a simulated device.
    pub fn new(device: Option<Arc<SimDevice>>) -> Self {
        MallocArena {
            device,
            stats: Arc::new(MallocStats::default()),
        }
    }
}

impl Arena for MallocArena {
    fn alloc(&self, len: usize) -> ScratchBuf {
        let class = size_class(len);
        let bytes = (class * 8) as u64;
        self.stats.allocs.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = &self.device {
            d.malloc(bytes);
        }
        let mut data = Vec::with_capacity(class);
        data.resize(len, 0.0);
        let live = self.stats.bytes_live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.stats.bytes_peak.fetch_max(live, Ordering::Relaxed);
        ScratchBuf {
            data,
            len,
            class,
            home: Some(Home::Malloc {
                device: self.device.clone(),
                stats: self.stats.clone(),
            }),
        }
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            allocs: self.stats.allocs.load(Ordering::Relaxed),
            pool_hits: 0,
            device_allocs: self.stats.allocs.load(Ordering::Relaxed),
            device_frees: self.stats.device_frees.load(Ordering::Relaxed),
            bytes_live: self.stats.bytes_live.load(Ordering::Relaxed),
            bytes_peak: self.stats.bytes_peak.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    #[test]
    fn pool_reuses_buffers() {
        let pool = PoolArena::new(None);
        {
            let a = pool.alloc(1000);
            assert_eq!(a.len(), 1000);
            assert!(a.iter().all(|&v| v == 0.0));
        }
        {
            let mut b = pool.alloc(900); // same 1024-element size class
            b[0] = 7.0;
        }
        let s = pool.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.device_allocs, 1);
    }

    #[test]
    fn pool_hit_is_zeroed() {
        let pool = PoolArena::new(None);
        {
            let mut a = pool.alloc(128);
            a.iter_mut().for_each(|v| *v = 3.25);
        }
        let b = pool.alloc(128);
        assert!(
            b.iter().all(|&v| v == 0.0),
            "recycled buffer must be zeroed"
        );
    }

    #[test]
    fn pool_steady_state_has_no_device_allocs() {
        let dev = SimDevice::new(DeviceConfig::v100());
        let pool = PoolArena::new(Some(dev.clone()));
        // Warm-up step allocates; the next 100 "timesteps" must not.
        for _ in 0..3 {
            let _a = pool.alloc(4096);
        }
        let warm = dev.stats().allocs;
        for _ in 0..100 {
            let _a = pool.alloc(4096);
            let _b = pool.alloc(4096);
        }
        // Two live per step but dropped in order: at most one extra block.
        assert!(dev.stats().allocs <= warm + 1);
    }

    #[test]
    fn malloc_arena_always_hits_device() {
        let dev = SimDevice::new(DeviceConfig::v100());
        let arena = MallocArena::new(Some(dev.clone()));
        for _ in 0..10 {
            let _a = arena.alloc(4096);
        }
        let ds = dev.stats();
        assert_eq!(ds.allocs, 10);
        assert_eq!(ds.frees, 10);
        let s = arena.stats();
        assert_eq!(s.allocs, 10);
        assert_eq!(s.device_frees, 10);
        assert_eq!(s.bytes_live, 0);
    }

    #[test]
    fn malloc_accounting_balances_off_class_sizes() {
        // Lengths that are not a power of two force the class to round up;
        // both sides must still charge/credit the same canonical amount.
        let dev = SimDevice::new(DeviceConfig::v100());
        let arena = MallocArena::new(Some(dev.clone()));
        for len in [0usize, 1, 63, 65, 1000, 4097, 100_000] {
            let _a = arena.alloc(len);
        }
        let s = arena.stats();
        assert_eq!(s.bytes_live, 0, "alloc/free byte accounting must balance");
        assert_eq!(dev.stats().bytes_resident, 0);
        assert_eq!(s.device_frees, s.allocs);
    }

    #[test]
    fn distinct_live_buffers_never_alias() {
        let pool = PoolArena::new(None);
        let mut bufs: Vec<_> = (0..8).map(|_| pool.alloc(256)).collect();
        for (n, b) in bufs.iter_mut().enumerate() {
            b[0] = n as f64;
        }
        for (n, b) in bufs.iter().enumerate() {
            assert_eq!(b[0], n as f64);
        }
    }

    #[test]
    fn trim_returns_pooled_memory() {
        let dev = SimDevice::new(DeviceConfig::v100());
        let pool = PoolArena::new(Some(dev.clone()));
        {
            let _a = pool.alloc(1 << 20);
        }
        assert!(pool.bytes_pooled() > 0);
        assert!(dev.stats().bytes_resident > 0);
        assert_eq!(pool.stats().device_frees, 0);
        pool.trim();
        assert_eq!(pool.bytes_pooled(), 0);
        assert_eq!(dev.stats().bytes_resident, 0);
        let s = pool.stats();
        assert_eq!(
            s.device_frees, s.device_allocs,
            "trim must count the frees it performs"
        );
        assert_eq!(dev.stats().frees, s.device_frees);
    }

    #[test]
    fn pool_peak_counts_live_plus_pooled() {
        let pool = PoolArena::new(None);
        {
            let _a = pool.alloc(1024);
            let _b = pool.alloc(1024);
        }
        // Recycling from the pool must not raise the peak.
        for _ in 0..10 {
            let _a = pool.alloc(1024);
            let _b = pool.alloc(1024);
        }
        let s = pool.stats();
        assert_eq!(s.bytes_peak, 2 * 1024 * 8);
        assert_eq!(s.bytes_live, 0);
        assert_eq!(pool.bytes_pooled(), 2 * 1024 * 8);
    }

    #[test]
    fn zero_length_alloc_is_fine() {
        let pool = PoolArena::new(None);
        let b = pool.alloc(0);
        assert!(b.is_empty());
    }
}
